// Ablation — distributing authentication (Sections 6.2/8): the paper notes
// "we have seen significantly larger improvements when we tried
// distributing authentication". Here the stateful node also carries Digest
// verification and dialog accounting (the costliest Figure 3 mode), so
// moving state also moves the auth work.
//
// Configurations on the two-server chain, all verifying credentials:
//   static-all:  both nodes stateful+auth for every call (deployment
//                default; double verification)
//   static-entry: entry stateful+auth, exit stateless (hand-tuned)
//   SERvartuka:  dynamic; exactly the stateful node verifies
#include "bench_util.hpp"

namespace {

using namespace svk;
using namespace svk::bench;
using workload::PolicyKind;

double g_static_all = 0.0;
double g_static_entry = 0.0;
double g_dynamic = 0.0;

workload::ScenarioOptions auth_options(PolicyKind policy) {
  auto options = scenario(policy);
  options.stateful_mode = profile::HandlingMode::kDialogStatefulAuth;
  options.authenticate = true;
  options.distribute_auth = true;
  // Thresholds for the controller: the auth-stateful mode saturates lower.
  options.t_sf_cps =
      profile::CpuCostModel::saturation_cps(
          profile::HandlingMode::kDialogStatefulAuth);
  return options;
}

double find_sat(PolicyKind policy) {
  const auto factory = workload::series_chain(2, auth_options(policy));
  return find_saturation_full(factory, 6500.0, 13000.0, 500.0);
}

void BM_Auth_StaticAll(benchmark::State& state) {
  for (auto _ : state) g_static_all = find_sat(PolicyKind::kStaticAllStateful);
  state.counters["saturation_cps"] = g_static_all;
}
BENCHMARK(BM_Auth_StaticAll)->Iterations(1)->Unit(benchmark::kMillisecond);

void BM_Auth_StaticEntry(benchmark::State& state) {
  for (auto _ : state) {
    g_static_entry = find_sat(PolicyKind::kStaticChainFirstStateful);
  }
  state.counters["saturation_cps"] = g_static_entry;
}
BENCHMARK(BM_Auth_StaticEntry)->Iterations(1)->Unit(benchmark::kMillisecond);

void BM_Auth_Servartuka(benchmark::State& state) {
  for (auto _ : state) g_dynamic = find_sat(PolicyKind::kServartuka);
  state.counters["saturation_cps"] = g_dynamic;
}
BENCHMARK(BM_Auth_Servartuka)->Iterations(1)->Unit(benchmark::kMillisecond);

void print_summary() {
  print_header("Ablation: distributing authentication (Sections 6.2/8)",
               "two-server chain, Digest auth + dialog state");
  std::printf("\nmeasured (saturation, cps):\n");
  std::printf("  static, both nodes auth+stateful:   %10.0f\n",
              g_static_all);
  std::printf("  static, entry auth+stateful:        %10.0f\n",
              g_static_entry);
  std::printf("  SERvartuka (auth follows state):    %10.0f\n", g_dynamic);
  std::printf("\nimprovement over the static default: %+.0f%%"
              " (paper: 'significantly larger'\n than the ~15-20%% state-only"
              " gains)\n",
              100.0 * (g_dynamic / g_static_all - 1.0));
}

void write_json() {
  BenchReport report("abl_auth_distribution");
  report.add_metric("static_all_saturation_cps", g_static_all);
  report.add_metric("static_entry_saturation_cps", g_static_entry);
  report.add_metric("servartuka_saturation_cps", g_dynamic);
  report.write();
}

}  // namespace

int main(int argc, char** argv) {
  svk::bench::initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  print_summary();
  write_json();
  return 0;
}
