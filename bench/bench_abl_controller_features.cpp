// Ablation — the controller's stabilization features.
//
// The paper specifies Algorithms 1 & 2; running them verbatim inside a
// closed loop exposed three practical gaps this implementation fills (each
// toggleable in ControllerConfig):
//   share smearing   — error-diffusion of the per-window stateful share
//                      (verbatim Algorithm 1 front-loads the share, making
//                      each window start a full-stateful burst);
//   share smoothing  — EWMA across windows (rate sampling noise is
//                      amplified ~beta/(alpha-beta)-fold into the share);
//   util feedback    — closed-loop multiplicative decrease from observed
//                      CPU utilization (open-loop thresholds cannot see
//                      the work induced by rejected calls or relayed 100s).
// This bench measures the two-chain at a demanding load with each feature
// removed in turn.
#include "bench_util.hpp"

namespace {

using namespace svk;
using namespace svk::bench;
using workload::PolicyKind;

constexpr double kOffered = 10700.0;

struct Variant {
  const char* name;
  std::function<void(core::ControllerConfig&)> tweak;
  double throughput = 0.0;
};

std::vector<Variant> g_variants = {
    {"full controller", [](core::ControllerConfig&) {}, 0.0},
    {"no utilization feedback",
     [](core::ControllerConfig& c) { c.utilization_feedback = false; }, 0.0},
    {"no share smoothing",
     [](core::ControllerConfig& c) { c.share_smoothing_gain = 1.0; }, 0.0},
    {"no headroom (target util 1.0)",
     [](core::ControllerConfig& c) { c.target_utilization = 1.0; }, 0.0},
    {"paper-literal (all off)",
     [](core::ControllerConfig& c) {
       c.utilization_feedback = false;
       c.share_smoothing_gain = 1.0;
       c.target_utilization = 1.0;
     },
     0.0},
};

/// The variants are independent single-point simulations; fan them across
/// the runner's worker threads in one benchmark iteration.
void BM_ControllerVariants(benchmark::State& state) {
  for (auto _ : state) {
    std::vector<std::function<workload::PointResult()>> jobs;
    for (const Variant& variant : g_variants) {
      jobs.emplace_back([&variant] {
        auto options = scenario(PolicyKind::kServartuka);
        options.controller_tweak = variant.tweak;
        auto mo = measure_options();
        mo.measure = SimTime::seconds(15.0);
        return workload::measure_point(workload::series_chain(2, options),
                                       scaled(kOffered), mo);
      });
    }
    const auto results = workload::run_points_parallel(jobs, g_threads);
    for (std::size_t i = 0; i < results.size(); ++i) {
      g_variants[i].throughput = full(results[i].throughput_cps);
    }
  }
  state.counters["variants"] = static_cast<double>(g_variants.size());
}
BENCHMARK(BM_ControllerVariants)->Iterations(1)
    ->Unit(benchmark::kMillisecond);

void print_summary() {
  print_header("Ablation: controller stabilizations",
               "two-chain throughput at 10700 cps offered");
  std::printf("%-34s %18s\n", "variant", "throughput (cps)");
  for (const Variant& v : g_variants) {
    std::printf("%-34s %18.0f\n", v.name, v.throughput);
  }
  std::printf("\n(the paper's algorithms assume the open-loop thresholds"
              " are exact; inside a\n closed loop each stabilization"
              " recovers throughput the verbatim version loses)\n");
}

void write_json() {
  BenchReport report("abl_controller_features");
  JsonValue& variants = report.root()["variants"];
  variants = JsonValue::array();
  for (const Variant& v : g_variants) {
    JsonValue entry = JsonValue::object();
    entry["name"] = v.name;
    entry["throughput_cps"] = v.throughput;
    variants.push_back(std::move(entry));
  }
  report.add_metric("offered_cps", kOffered);
  report.write();
}

}  // namespace

int main(int argc, char** argv) {
  svk::bench::initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  print_summary();
  write_json();
  return 0;
}
