// Ablation — fault recovery.
//
// Two axes, both comparing a static all-stateful chain against the
// SERvartuka controller at an offered load between T_SF and T_SL (where
// delegation — and therefore the overload-signal channel — is load-bearing):
//
//  1. Overload-signal loss: each proxy deterministically sheds a fraction
//     of its overload advertisements before sending. The controller's
//     repair machinery (periodic re-advertisement, staleness release,
//     probing) has to keep the delegation loop converged as the channel
//     degrades; at loss = 1.0 the upstream never learns of downstream
//     overload and the system behaves as if overload control were off.
//
//  2. Crash/restart of the downstream proxy: a fail-silent outage of
//     swept duration in the middle of the measurement window (FaultPlan
//     node_crash). External calls die with the proxy; the metric is how
//     much throughput the topology retains (internal traffic keeps
//     flowing) and whether the controller re-converges after the restart
//     instead of wedging on stale overload state.
#include "bench_util.hpp"

namespace {

using namespace svk;
using namespace svk::bench;
using workload::PolicyKind;

/// Between T_SF (10360) and T_SL (12300): the controller must delegate.
constexpr double kOffered = 11000.0;

constexpr double kLossRates[] = {0.0, 0.25, 0.5, 0.75, 1.0};
constexpr double kOutagesS[] = {0.0, 0.5, 1.0, 2.0, 4.0, 8.0};

struct AxisPoint {
  double x;            // loss rate or outage seconds
  double static_tput;  // full-scale cps
  double dynamic_tput;
};
std::vector<AxisPoint> g_loss_points;
std::vector<AxisPoint> g_crash_points;

std::function<workload::PointResult()> make_loss_job(PolicyKind policy,
                                                     double loss) {
  return [policy, loss] {
    auto options = scenario(policy, 2);
    options.overload_signal_loss = loss;
    return workload::measure_point(workload::series_chain(2, options),
                                   scaled(kOffered), measure_options());
  };
}

fault::FaultPlan crash_plan(double outage_s) {
  fault::FaultPlan plan;
  plan.name = "crash_proxy1";
  if (outage_s <= 0.0) return plan;  // fault-free baseline
  fault::FaultEvent crash;
  crash.kind = fault::FaultKind::kNodeCrash;
  // Mid-measurement (warmup 10 s + 2 s); the longest outage still ends
  // inside the 10 s measurement window, so every point sees the restart.
  crash.at = SimTime::seconds(12.0);
  crash.duration = SimTime::seconds(outage_s);
  crash.host = "proxy1.example.net";
  plan.events.push_back(crash);
  return plan;
}

std::function<workload::PointResult()> make_crash_job(PolicyKind policy,
                                                      double outage_s) {
  return [policy, outage_s] {
    auto options = scenario(policy, 2);
    options.faults = crash_plan(outage_s);
    // Internal traffic terminates at the entry proxy and survives the
    // downstream outage — the recovery signal is how much of it (plus
    // resumed external traffic) each policy keeps.
    return workload::measure_point(
        workload::two_series_with_internal(0.7, options), scaled(kOffered),
        measure_options());
  };
}

void BM_FaultRecoverySweep(benchmark::State& state) {
  for (auto _ : state) {
    std::vector<std::function<workload::PointResult()>> jobs;
    for (const double loss : kLossRates) {
      jobs.push_back(make_loss_job(PolicyKind::kStaticAllStateful, loss));
      jobs.push_back(make_loss_job(PolicyKind::kServartuka, loss));
    }
    for (const double outage : kOutagesS) {
      jobs.push_back(make_crash_job(PolicyKind::kStaticAllStateful, outage));
      jobs.push_back(make_crash_job(PolicyKind::kServartuka, outage));
    }
    const auto results = workload::run_points_parallel(jobs, g_threads);

    g_loss_points.clear();
    g_crash_points.clear();
    std::size_t j = 0;
    for (const double loss : kLossRates) {
      const double s = full(results[j++].throughput_cps);
      const double d = full(results[j++].throughput_cps);
      g_loss_points.push_back(AxisPoint{loss, s, d});
    }
    for (const double outage : kOutagesS) {
      const double s = full(results[j++].throughput_cps);
      const double d = full(results[j++].throughput_cps);
      g_crash_points.push_back(AxisPoint{outage, s, d});
    }
  }
  state.counters["points"] =
      static_cast<double>(g_loss_points.size() + g_crash_points.size());
}
BENCHMARK(BM_FaultRecoverySweep)->Iterations(1)
    ->Unit(benchmark::kMillisecond);

void print_summary() {
  print_header("Ablation: fault recovery",
               "two-series throughput at 11000 cps offered");

  std::printf("\noverload-signal loss (series chain):\n");
  std::printf("%-14s %16s %16s\n", "loss", "static (cps)",
              "SERvartuka (cps)");
  for (const AxisPoint& p : g_loss_points) {
    std::printf("%-14.2f %16.0f %16.0f\n", p.x, p.static_tput,
                p.dynamic_tput);
  }

  std::printf("\nproxy1 crash/restart (two-series with 30%% internal):\n");
  std::printf("%-14s %16s %16s\n", "outage (s)", "static (cps)",
              "SERvartuka (cps)");
  for (const AxisPoint& p : g_crash_points) {
    std::printf("%-14.1f %16.0f %16.0f\n", p.x, p.static_tput,
                p.dynamic_tput);
  }
  std::printf("\n(signal loss only starves the delegation loop — the static"
              " chain has no\n signals to lose; crashes cost both policies"
              " the outage window, and the\n controller must additionally"
              " shed stale overload state after the restart)\n");
}

void write_json() {
  BenchReport report("abl_fault_recovery");

  JsonValue& loss = report.root()["signal_loss"];
  loss = JsonValue::array();
  for (const AxisPoint& p : g_loss_points) {
    JsonValue entry = JsonValue::object();
    entry["loss"] = p.x;
    entry["static_throughput_cps"] = p.static_tput;
    entry["servartuka_throughput_cps"] = p.dynamic_tput;
    loss.push_back(std::move(entry));
  }

  JsonValue& crash = report.root()["crash_outage"];
  crash = JsonValue::array();
  for (const AxisPoint& p : g_crash_points) {
    JsonValue entry = JsonValue::object();
    entry["outage_s"] = p.x;
    entry["static_throughput_cps"] = p.static_tput;
    entry["servartuka_throughput_cps"] = p.dynamic_tput;
    crash.push_back(std::move(entry));
  }

  report.add_metric("offered_cps", kOffered);
  report.write();
}

}  // namespace

int main(int argc, char** argv) {
  svk::bench::initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  print_summary();
  write_json();
  return 0;
}
