// Ablation — non-homogeneous fork (Section 6.2 text): when the entry
// server is much larger than the two exits, the static standard (entry
// stateless) is no longer right: the LP has the entry absorb most state,
// and SERvartuka should adapt without reconfiguration.
#include "bench_util.hpp"
#include "lp/state_model.hpp"

namespace {

using namespace svk;
using namespace svk::bench;
using workload::PolicyKind;

constexpr double kEntryScale = 3.0;  // entry is 3x the exits

double g_static = 0.0;
double g_dynamic = 0.0;
double g_entry_stateful_share = 0.0;

workload::ScenarioOptions hetero_options(PolicyKind policy) {
  auto options = scenario(policy);
  options.capacity_scale = {kScale * kEntryScale, kScale, kScale};
  return options;
}

double find_sat(PolicyKind policy) {
  const auto factory = workload::parallel_fork(hetero_options(policy));
  return find_saturation_full(factory, 12000.0, 26000.0, 1000.0);
}

void BM_Hetero_StaticFork(benchmark::State& state) {
  for (auto _ : state) {
    g_static = find_sat(PolicyKind::kStaticChainLastStateful);
  }
  state.counters["saturation_cps"] = g_static;
}
BENCHMARK(BM_Hetero_StaticFork)->Iterations(1)
    ->Unit(benchmark::kMillisecond);

void BM_Hetero_Servartuka(benchmark::State& state) {
  for (auto _ : state) {
    g_dynamic = find_sat(PolicyKind::kServartuka);
    // Inspect where the state ends up at high load.
    auto bed = workload::parallel_fork(
        hetero_options(PolicyKind::kServartuka))(scaled(g_dynamic));
    bed->start_load();
    bed->sim().run_until(SimTime::seconds(15.0));
    const auto& p0 = bed->proxies()[0]->stats();
    const auto& pa = bed->proxies()[1]->stats();
    const auto& pb = bed->proxies()[2]->stats();
    const double total = static_cast<double>(
        p0.forwarded_stateful + pa.forwarded_stateful + pb.forwarded_stateful);
    g_entry_stateful_share =
        total > 0.0 ? static_cast<double>(p0.forwarded_stateful) / total
                    : 0.0;
  }
  state.counters["saturation_cps"] = g_dynamic;
  state.counters["entry_state_share"] = g_entry_stateful_share;
}
BENCHMARK(BM_Hetero_Servartuka)->Iterations(1)
    ->Unit(benchmark::kMillisecond);

void print_summary() {
  print_header("Ablation: heterogeneous fork (Section 6.2)",
               "entry 3x the exits, 50/50 split");

  lp::StateDistributionModel model;
  const auto s0 =
      model.add_node("s0", kEntryScale * 10360.0, kEntryScale * 12300.0);
  const auto sa = model.add_node("sa", 10360.0, 12300.0);
  const auto sb = model.add_node("sb", 10360.0, 12300.0);
  model.add_edge(s0, sa);
  model.add_edge(s0, sb);
  model.mark_entry(s0);
  model.mark_exit(sa);
  model.mark_exit(sb);
  model.fix_split(s0, sa, 0.5);
  model.fix_split(s0, sb, 0.5);
  const auto lp_result = model.solve();

  std::printf("\nmeasured (saturation, cps):\n");
  std::printf("  static standard fork (entry stateless):   %10.0f\n",
              g_static);
  std::printf("  SERvartuka:                               %10.0f\n",
              g_dynamic);
  std::printf("  LP bound:                                 %10.0f"
              " (entry keeps %.0f cps of state)\n",
              lp_result.max_throughput, lp_result.node_stateful[0]);
  std::printf("  SERvartuka entry share of stateful calls: %10.2f\n",
              g_entry_stateful_share);
  std::printf("\n(Section 6.2: with a larger first server it is beneficial"
              " for the entry to\n maintain some or all state; SERvartuka"
              " adapts while the static standard cannot.)\n");
}

void write_json() {
  BenchReport report("abl_heterogeneous");
  report.add_metric("entry_capacity_scale", kEntryScale);
  report.add_metric("static_saturation_cps", g_static);
  report.add_metric("servartuka_saturation_cps", g_dynamic);
  report.add_metric("servartuka_entry_stateful_share",
                    g_entry_stateful_share);
  report.write();
}

}  // namespace

int main(int argc, char** argv) {
  svk::bench::initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  print_summary();
  write_json();
  return 0;
}
