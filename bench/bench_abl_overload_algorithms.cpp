// Ablation — overload-control algorithms (src/overload).
//
// Compares the three ingress controls {none, local occupancy gate,
// hop-by-hop rate feedback} under both state policies {static all-stateful,
// SERvartuka} on a two-series chain whose EXIT node has half the entry's
// capacity — the downstream-bottleneck shape hop-by-hop feedback exists
// for. The sweep runs from the static chain's knee (~5200 cps, measured)
// to 1.4x past it. The uncontrolled chain uses a lax queue-delay bound
// (800 ms — the deep-buffer regime of a vanilla server), so past the knee
// it melts down in retransmission storms; the controls must convert that
// collapse into cheap, early 503s and hold goodput. Local control pays the
// Retry-After oscillation tax (each 503 pauses a generator); hop-by-hop
// throttles at the entry against the exit's advertised rate, without
// Retry-After, so goodput holds near the bottleneck's capacity.
//
// The binary gates its own exit code on the subsystem's acceptance
// criteria:
//   * at 1.4x the knee (both policies deep past saturation there),
//     hop-by-hop goodput strictly exceeds no-control goodput under BOTH
//     state policies;
//   * the whole measurement is bit-deterministic: every point is run
//     twice and the MD5 over all serialized records must match.
//
//   --quick    CI smoke: only the gate load (the gate still runs).
#include <cstring>

#include "bench_util.hpp"
#include "common/md5.hpp"

namespace {

using namespace svk;
using namespace svk::bench;
using overload::ControlKind;
using workload::PolicyKind;

bool g_quick = false;

/// Uncontrolled knee of the half-capacity-exit static chain (cps, full
/// scale; measured — the exit saturates first at ~0.5 * T_SF with relay
/// slack at the entry).
constexpr double kKneeCps = 5200.0;
/// The acceptance gate is evaluated at 1.4x the knee: past saturation for
/// the static chain AND for SERvartuka (delegation buys ~15% more knee,
/// so 1.2x would still be sustainable for the dynamic policy).
constexpr double kGateLoad = 1.4 * kKneeCps;

struct Combo {
  ControlKind control;
  PolicyKind policy;
};

constexpr Combo kCombos[] = {
    {ControlKind::kNone, PolicyKind::kStaticAllStateful},
    {ControlKind::kLocalOccupancy, PolicyKind::kStaticAllStateful},
    {ControlKind::kHopByHopRate, PolicyKind::kStaticAllStateful},
    {ControlKind::kNone, PolicyKind::kServartuka},
    {ControlKind::kLocalOccupancy, PolicyKind::kServartuka},
    {ControlKind::kHopByHopRate, PolicyKind::kServartuka},
};

std::string combo_name(const Combo& combo) {
  return std::string(overload::to_string(combo.control)) + "/" +
         (combo.policy == PolicyKind::kServartuka ? "servartuka" : "static");
}

std::vector<double> loads() {
  if (g_quick) return {kGateLoad};
  return {kKneeCps, 1.2 * kKneeCps, kGateLoad};
}

workload::BedFactory make_factory(const Combo& combo) {
  auto options = scenario(combo.policy);
  options.capacity_scale = {kScale, 0.5 * kScale};  // bottleneck at the exit
  // More generators than the paper default: a Retry-After pause then idles
  // 1/6th of the offered load instead of half, separating the controls'
  // steady-state behavior from the pause granularity.
  options.num_uacs = 6;
  options.overload_control.kind = combo.control;
  // Deep-buffer regime: an uncontrolled node soaks up 1.6 RTTs of backlog
  // before its legacy 500 bound trips — past the knee that feeds the
  // retransmission storm the controls are measured against. The policies
  // replace this bound, so it only shapes the kNone baseline.
  options.max_queue_delay = SimTime::millis(800);
  return workload::series_chain(2, options);
}

workload::MeasureOptions storm_measure() {
  auto options = measure_options();
  options.measure = SimTime::seconds(15.0);  // storms need time to show
  return options;
}

/// One full pass over every (combo, load) pair. Each job is an independent
/// deterministic simulation; order of results is combo-major.
std::vector<workload::PointResult> run_pass() {
  std::vector<std::function<workload::PointResult()>> jobs;
  for (const Combo& combo : kCombos) {
    for (const double load : loads()) {
      jobs.push_back([combo, load] {
        return workload::measure_point(make_factory(combo), scaled(load),
                                       storm_measure());
      });
    }
  }
  return workload::run_points_parallel(jobs, g_threads);
}

/// MD5 over every serialized record of a pass, wall-clock zeroed (host
/// timing is not simulation output).
std::string pass_digest(const std::vector<workload::PointResult>& points) {
  std::string all;
  for (const auto& point : points) {
    RunRecord record = full_record(point);
    record.wall_seconds = 0.0;
    all += record.to_json().dump();
  }
  return Md5::hex(all);
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      g_quick = true;
      for (int j = i; j + 1 < argc; ++j) argv[j] = argv[j + 1];
      --argc;
      break;
    }
  }
  svk::bench::initialize(&argc, argv);

  print_header("abl_overload_algorithms",
               "overload controls {none, local, hop-by-hop} x state "
               "policies, two-series chain");

  const std::vector<double> grid = loads();
  const auto results = run_pass();
  const std::string digest = pass_digest(results);
  const auto rerun = run_pass();
  const std::string rerun_digest = pass_digest(rerun);
  const bool digest_ok = digest == rerun_digest;

  // Results in series form (one per combo, points across the load grid).
  std::vector<Series> series;
  for (std::size_t c = 0; c < std::size(kCombos); ++c) {
    Series s;
    s.name = combo_name(kCombos[c]);
    for (std::size_t l = 0; l < grid.size(); ++l) {
      const auto& point = results[c * grid.size() + l];
      s.points.emplace_back(full(point.offered_cps),
                            full(point.throughput_cps));
      s.max_value = std::max(s.max_value, full(point.throughput_cps));
      s.records.push_back(full_record(point, s.name));
    }
    series.push_back(std::move(s));
  }

  print_series_table("goodput by overload control (cps)",
                     "completed calls/second at the UASes", series);

  // Fast-fail vs slow-fail split at the gate load: the controls' value is
  // not only carried calls but rejecting in one RTT instead of 64*T1.
  std::printf("\nat %.0f cps offered (1.4x knee):\n", kGateLoad);
  const std::size_t gate_idx =
      static_cast<std::size_t>(std::find(grid.begin(), grid.end(), kGateLoad) -
                               grid.begin());
  for (std::size_t c = 0; c < std::size(kCombos); ++c) {
    const auto& point = results[c * grid.size() + gate_idx];
    std::printf("  %-22s goodput %7.0f cps   rejected(503) %8llu   "
                "timed-out %8llu\n",
                combo_name(kCombos[c]).c_str(), full(point.throughput_cps),
                static_cast<unsigned long long>(point.calls_rejected),
                static_cast<unsigned long long>(point.calls_timed_out));
  }

  // -- Acceptance gates ------------------------------------------------------
  bool gate_ok = true;
  for (const PolicyKind policy :
       {PolicyKind::kStaticAllStateful, PolicyKind::kServartuka}) {
    double none_tput = 0.0, hop_tput = 0.0;
    for (std::size_t c = 0; c < std::size(kCombos); ++c) {
      if (kCombos[c].policy != policy) continue;
      const double tput =
          full(results[c * grid.size() + gate_idx].throughput_cps);
      if (kCombos[c].control == ControlKind::kNone) none_tput = tput;
      if (kCombos[c].control == ControlKind::kHopByHopRate) hop_tput = tput;
    }
    const bool ok = hop_tput > none_tput;
    gate_ok = gate_ok && ok;
    std::printf("gate: hop-by-hop > none at 1.4x knee (%s): "
                "%7.0f > %7.0f -> %s\n",
                policy == PolicyKind::kServartuka ? "servartuka" : "static",
                hop_tput, none_tput, ok ? "ok" : "FAIL");
  }
  std::printf("gate: bit-identical rerun digest %s -> %s\n", digest.c_str(),
              digest_ok ? "ok" : "FAIL");

  BenchReport report("abl_overload_algorithms");
  report.root()["quick"] = g_quick;
  for (const Series& s : series) report.add_series(s);
  report.add_metric("knee_cps", kKneeCps);
  report.add_metric("gate_load_cps", kGateLoad);
  report.root()["determinism_digest"] = digest;
  report.root()["determinism_rerun_match"] = digest_ok;
  report.root()["gate_pass"] = gate_ok && digest_ok;
  report.write();
  return gate_ok && digest_ok ? 0 : 1;
}
