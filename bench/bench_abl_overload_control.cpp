// Ablation — overload-control queueing bound.
//
// A finding of this reproduction: the proxy's queueing-delay bound (how
// much backlog it tolerates before answering 500 Server Busy) interacts
// with the SIP retransmission timers. If four queue traversals exceed T1
// (500 ms), UAS 200-OK retransmissions and UAC INVITE retransmissions keep
// a saturated queue saturated — a storm that pins throughput well below
// capacity. Bounds comfortably under T1/4 keep saturation graceful.
#include "bench_util.hpp"

namespace {

using namespace svk;
using namespace svk::bench;
using workload::PolicyKind;

struct BoundPoint {
  double bound_ms;
  double static_tput;
  double dynamic_tput;
};
std::vector<BoundPoint> g_points;

// Offered load just past the static chain's knee.
constexpr double kOffered = 9600.0;

constexpr double kBoundsMs[] = {25.0, 50.0, 100.0, 200.0, 400.0, 800.0};

std::function<workload::PointResult()> make_job(PolicyKind policy,
                                                double bound_ms) {
  return [policy, bound_ms] {
    auto options = scenario(policy);
    options.max_queue_delay =
        SimTime::millis(static_cast<std::int64_t>(bound_ms));
    auto mo = measure_options();
    mo.measure = SimTime::seconds(15.0);  // storms need time to show
    return workload::measure_point(workload::series_chain(2, options),
                                   scaled(kOffered), mo);
  };
}

/// Every (bound, policy) combination is an independent simulation; fan all
/// of them across the runner's worker threads at once.
void BM_OverloadBoundSweep(benchmark::State& state) {
  for (auto _ : state) {
    std::vector<std::function<workload::PointResult()>> jobs;
    for (const double bound_ms : kBoundsMs) {
      jobs.push_back(make_job(PolicyKind::kStaticAllStateful, bound_ms));
      jobs.push_back(make_job(PolicyKind::kServartuka, bound_ms));
    }
    const auto results = workload::run_points_parallel(jobs, g_threads);
    g_points.clear();
    for (std::size_t i = 0; i < std::size(kBoundsMs); ++i) {
      g_points.push_back(
          BoundPoint{kBoundsMs[i], full(results[2 * i].throughput_cps),
                     full(results[2 * i + 1].throughput_cps)});
    }
  }
  state.counters["points"] = static_cast<double>(g_points.size());
}
BENCHMARK(BM_OverloadBoundSweep)->Iterations(1)
    ->Unit(benchmark::kMillisecond);

void print_summary() {
  print_header("Ablation: overload-control queue bound",
               "two-chain throughput at 9600 cps offered");
  std::printf("%-14s %16s %16s\n", "bound (ms)", "static (cps)",
              "SERvartuka (cps)");
  for (const BoundPoint& p : g_points) {
    std::printf("%-14.0f %16.0f %16.0f\n", p.bound_ms, p.static_tput,
                p.dynamic_tput);
  }
  std::printf("\n(T1 = 500 ms; bounds whose worst-case round trip exceeds"
              " T1 trigger\n retransmission storms that pin saturated"
              " queues — throughput collapses)\n");
}

void write_json() {
  BenchReport report("abl_overload_control");
  JsonValue& points = report.root()["bounds"];
  points = JsonValue::array();
  for (const BoundPoint& p : g_points) {
    JsonValue entry = JsonValue::object();
    entry["bound_ms"] = p.bound_ms;
    entry["static_throughput_cps"] = p.static_tput;
    entry["servartuka_throughput_cps"] = p.dynamic_tput;
    points.push_back(std::move(entry));
  }
  report.add_metric("offered_cps", kOffered);
  report.write();
}

}  // namespace

int main(int argc, char** argv) {
  svk::bench::initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  print_summary();
  write_json();
  return 0;
}
