// Ablation — overload-control queueing bound.
//
// A finding of this reproduction: the proxy's queueing-delay bound (how
// much backlog it tolerates before answering 500 Server Busy) interacts
// with the SIP retransmission timers. If four queue traversals exceed T1
// (500 ms), UAS 200-OK retransmissions and UAC INVITE retransmissions keep
// a saturated queue saturated — a storm that pins throughput well below
// capacity. Bounds comfortably under T1/4 keep saturation graceful.
#include "bench_util.hpp"

namespace {

using namespace svk;
using namespace svk::bench;
using workload::PolicyKind;

struct BoundPoint {
  double bound_ms;
  double static_tput;
  double dynamic_tput;
};
std::vector<BoundPoint> g_points;

// Offered load just past the static chain's knee.
constexpr double kOffered = 9600.0;

double run(PolicyKind policy, double bound_ms) {
  auto options = scenario(policy);
  options.max_queue_delay =
      SimTime::millis(static_cast<std::int64_t>(bound_ms));
  auto mo = measure_options();
  mo.measure = SimTime::seconds(15.0);  // storms need time to show
  const auto result = workload::measure_point(
      workload::series_chain(2, options), scaled(kOffered), mo);
  return full(result.throughput_cps);
}

void BM_OverloadBound(benchmark::State& state) {
  const double bound_ms = static_cast<double>(state.range(0));
  BoundPoint point{bound_ms, 0.0, 0.0};
  for (auto _ : state) {
    point.static_tput = run(PolicyKind::kStaticAllStateful, bound_ms);
    point.dynamic_tput = run(PolicyKind::kServartuka, bound_ms);
  }
  g_points.push_back(point);
  state.counters["static_cps"] = point.static_tput;
  state.counters["servartuka_cps"] = point.dynamic_tput;
}
BENCHMARK(BM_OverloadBound)->Arg(25)->Arg(50)->Arg(100)->Arg(200)->Arg(400)
    ->Arg(800)->Iterations(1)->Unit(benchmark::kMillisecond);

void print_summary() {
  print_header("Ablation: overload-control queue bound",
               "two-chain throughput at 9600 cps offered");
  std::printf("%-14s %16s %16s\n", "bound (ms)", "static (cps)",
              "SERvartuka (cps)");
  for (const BoundPoint& p : g_points) {
    std::printf("%-14.0f %16.0f %16.0f\n", p.bound_ms, p.static_tput,
                p.dynamic_tput);
  }
  std::printf("\n(T1 = 500 ms; bounds whose worst-case round trip exceeds"
              " T1 trigger\n retransmission storms that pin saturated"
              " queues — throughput collapses)\n");
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  print_summary();
  return 0;
}
