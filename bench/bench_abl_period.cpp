// Ablation — sensitivity of SERvartuka to the Algorithm 2 monitoring
// period. The paper monitors "periodically" without studying the period;
// this sweep shows the trade: very short windows are noisy (the share is
// computed from few samples), very long windows react slowly.
#include "bench_util.hpp"

namespace {

using namespace svk;
using namespace svk::bench;
using workload::PolicyKind;

struct PeriodPoint {
  double period_s;
  double throughput_cps;
};
std::vector<PeriodPoint> g_points;

// Offered just above the two-chain static knee, where the dynamic
// distribution is doing real work.
constexpr double kOffered = 10800.0;

constexpr double kPeriodsMs[] = {125.0, 250.0, 500.0, 1000.0, 2000.0,
                                 4000.0};

/// All periods are independent single-point simulations; fan them across
/// the runner's worker threads in one benchmark iteration.
void BM_AblPeriodSweep(benchmark::State& state) {
  for (auto _ : state) {
    std::vector<std::function<workload::PointResult()>> jobs;
    for (const double period_ms : kPeriodsMs) {
      jobs.emplace_back([period_ms] {
        auto options = scenario(PolicyKind::kServartuka);
        options.controller_period =
            SimTime::millis(static_cast<std::int64_t>(period_ms));
        auto mo = measure_options();
        // Give slow controllers time to converge.
        mo.warmup = SimTime::seconds(6.0 + 10.0 * period_ms / 1000.0);
        return workload::measure_point(workload::series_chain(2, options),
                                       scaled(kOffered), mo);
      });
    }
    const auto results = workload::run_points_parallel(jobs, g_threads);
    g_points.clear();
    for (std::size_t i = 0; i < results.size(); ++i) {
      g_points.push_back(PeriodPoint{kPeriodsMs[i] / 1000.0,
                                     full(results[i].throughput_cps)});
    }
  }
  state.counters["points"] = static_cast<double>(g_points.size());
}
BENCHMARK(BM_AblPeriodSweep)->Iterations(1)->Unit(benchmark::kMillisecond);

void print_summary() {
  print_header("Ablation: monitoring period",
               "SERvartuka two-chain throughput at 10800 cps offered");
  std::printf("%-14s %18s\n", "period (s)", "throughput (cps)");
  for (const PeriodPoint& p : g_points) {
    std::printf("%-14.3f %18.0f\n", p.period_s, p.throughput_cps);
  }
  std::printf("\n(the paper uses ~1 s windows; throughput should be flat"
              " around that value\n and degrade only for extreme periods)\n");
}

void write_json() {
  BenchReport report("abl_period");
  JsonValue& points = report.root()["periods"];
  points = JsonValue::array();
  for (const PeriodPoint& p : g_points) {
    JsonValue entry = JsonValue::object();
    entry["period_s"] = p.period_s;
    entry["throughput_cps"] = p.throughput_cps;
    points.push_back(std::move(entry));
  }
  report.add_metric("offered_cps", kOffered);
  report.write();
}

}  // namespace

int main(int argc, char** argv) {
  svk::bench::initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  print_summary();
  write_json();
  return 0;
}
