// Ablation — sensitivity of SERvartuka to the Algorithm 2 monitoring
// period. The paper monitors "periodically" without studying the period;
// this sweep shows the trade: very short windows are noisy (the share is
// computed from few samples), very long windows react slowly.
#include "bench_util.hpp"

namespace {

using namespace svk;
using namespace svk::bench;
using workload::PolicyKind;

struct PeriodPoint {
  double period_s;
  double throughput_cps;
};
std::vector<PeriodPoint> g_points;

// Offered just above the two-chain static knee, where the dynamic
// distribution is doing real work.
constexpr double kOffered = 10800.0;

void BM_AblPeriod(benchmark::State& state) {
  const double period_ms = static_cast<double>(state.range(0));
  PeriodPoint point{period_ms / 1000.0, 0.0};
  for (auto _ : state) {
    auto options = scenario(PolicyKind::kServartuka);
    options.controller_period =
        SimTime::millis(static_cast<std::int64_t>(period_ms));
    auto mo = measure_options();
    // Give slow controllers time to converge.
    mo.warmup = SimTime::seconds(6.0 + 10.0 * point.period_s);
    const auto result = workload::measure_point(
        workload::series_chain(2, options), scaled(kOffered), mo);
    point.throughput_cps = full(result.throughput_cps);
  }
  g_points.push_back(point);
  state.counters["throughput_cps"] = point.throughput_cps;
}
BENCHMARK(BM_AblPeriod)->Arg(125)->Arg(250)->Arg(500)->Arg(1000)->Arg(2000)
    ->Arg(4000)->Iterations(1)->Unit(benchmark::kMillisecond);

void print_summary() {
  print_header("Ablation: monitoring period",
               "SERvartuka two-chain throughput at 10800 cps offered");
  std::printf("%-14s %18s\n", "period (s)", "throughput (cps)");
  for (const PeriodPoint& p : g_points) {
    std::printf("%-14.3f %18.0f\n", p.period_s, p.throughput_cps);
  }
  std::printf("\n(the paper uses ~1 s windows; throughput should be flat"
              " around that value\n and degrade only for extreme periods)\n");
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  print_summary();
  return 0;
}
