// Figure 3 — "Server Functionality costs": per-call CPU events by proxy
// mode at 1 call/second, broken down by functional block, as OProfile
// reported for OpenSER.
//
// Paper bar heights: No-Lookup 362, Stateless 412, Tran-SF 707,
// Dialog-SF 803, Authentication 983 CPU events per call.
#include <array>

#include "bench_util.hpp"
#include "profile/cost_model.hpp"
#include "profile/profiler.hpp"

namespace {

using namespace svk;
using namespace svk::bench;
using profile::CostBlock;
using profile::HandlingMode;
using workload::PolicyKind;
using workload::ScenarioOptions;

struct ModeSpec {
  HandlingMode stateful_mode;
  PolicyKind policy;
  bool authenticate;
  double paper_events;
};

constexpr int kNumModes = 5;
const std::array<ModeSpec, kNumModes> kModes = {{
    {HandlingMode::kStatelessNoLookup, PolicyKind::kStaticAllStateless,
     false, 362.0},
    {HandlingMode::kStateless, PolicyKind::kStaticAllStateless, false,
     412.0},
    {HandlingMode::kTransactionStateful, PolicyKind::kStaticAllStateful,
     false, 707.0},
    {HandlingMode::kDialogStateful, PolicyKind::kStaticAllStateful, false,
     803.0},
    {HandlingMode::kDialogStatefulAuth, PolicyKind::kStaticAllStateful, true,
     983.0},
}};

struct ModeResult {
  double events_per_call = 0.0;
  std::uint64_t calls = 0;
  profile::CostVector breakdown;
};
std::array<ModeResult, kNumModes> g_results;

/// Runs one mode at 1 cps for the paper's 10 minutes and profiles the proxy.
void BM_Fig3_Mode(benchmark::State& state) {
  const ModeSpec& spec = kModes[static_cast<std::size_t>(state.range(0))];
  ModeResult result;
  for (auto _ : state) {
    ScenarioOptions options;  // full calibrated capacity: load is trivial
    options.policy = spec.policy;
    options.stateful_mode = spec.stateful_mode;
    // The stateless policy must also run in the scenario's *stateless*
    // mode under measurement; the no-lookup case turns lookups off.
    options.stateless_mode =
        spec.stateful_mode == HandlingMode::kStatelessNoLookup
            ? HandlingMode::kStatelessNoLookup
            : HandlingMode::kStateless;
    options.authenticate = spec.authenticate;
    options.num_uacs = 2;  // the paper: two SIPp clients at 1 cps total

    auto bed = workload::single_proxy(options)(1.0);
    bed->start_load();
    bed->sim().run_until(SimTime::seconds(600.0));  // 10 minutes
    bed->stop_load();
    bed->sim().run_until(SimTime::seconds(605.0));

    const auto& proxy = *bed->proxies()[0];
    result.calls = bed->total_completed_calls();
    result.breakdown = proxy.profiler().snapshot();
    result.events_per_call =
        proxy.profiler().application_events() /
        static_cast<double>(result.calls);
  }
  g_results[static_cast<std::size_t>(state.range(0))] = result;
  state.counters["events_per_call"] = result.events_per_call;
  state.counters["calls"] = static_cast<double>(result.calls);
}
BENCHMARK(BM_Fig3_Mode)->DenseRange(0, kNumModes - 1)->Iterations(1)
    ->Unit(benchmark::kMillisecond);

void print_summary() {
  print_header("Figure 3", "per-call CPU events by server functionality");

  static constexpr CostBlock kOrder[] = {
      CostBlock::kParsing, CostBlock::kMemory,  CostBlock::kLumping,
      CostBlock::kRouting, CostBlock::kHashing, CostBlock::kLookup,
      CostBlock::kState,   CostBlock::kAuth,    CostBlock::kOther,
  };
  std::printf("%-16s", "block");
  for (const ModeSpec& spec : kModes) {
    std::printf(" %14s", std::string(to_string(spec.stateful_mode)).c_str());
  }
  std::printf("\n");
  for (const CostBlock block : kOrder) {
    std::printf("%-16s", std::string(to_string(block)).c_str());
    for (std::size_t m = 0; m < kNumModes; ++m) {
      const double per_call =
          g_results[m].calls
              ? g_results[m].breakdown[block] /
                    static_cast<double>(g_results[m].calls)
              : 0.0;
      std::printf(" %14.1f", per_call);
    }
    std::printf("\n");
  }
  std::printf("%-16s", "TOTAL");
  for (std::size_t m = 0; m < kNumModes; ++m) {
    std::printf(" %14.1f", g_results[m].events_per_call);
  }
  std::printf("\n\npaper vs measured (application CPU events per call):\n");
  for (std::size_t m = 0; m < kNumModes; ++m) {
    print_paper_row(std::string(to_string(kModes[m].stateful_mode)).c_str(),
                    kModes[m].paper_events, g_results[m].events_per_call);
  }
}

void write_json() {
  BenchReport report("fig3_functionality_costs");
  JsonValue& modes = report.root()["modes"];
  modes = JsonValue::array();
  static constexpr CostBlock kOrder[] = {
      CostBlock::kParsing, CostBlock::kMemory,  CostBlock::kLumping,
      CostBlock::kRouting, CostBlock::kHashing, CostBlock::kLookup,
      CostBlock::kState,   CostBlock::kAuth,    CostBlock::kOther,
  };
  for (std::size_t m = 0; m < kNumModes; ++m) {
    JsonValue entry = JsonValue::object();
    entry["mode"] = std::string(to_string(kModes[m].stateful_mode));
    entry["events_per_call"] = g_results[m].events_per_call;
    entry["paper_events_per_call"] = kModes[m].paper_events;
    entry["calls"] = g_results[m].calls;
    JsonValue& blocks = entry["blocks"];
    for (const CostBlock block : kOrder) {
      const double per_call =
          g_results[m].calls
              ? g_results[m].breakdown[block] /
                    static_cast<double>(g_results[m].calls)
              : 0.0;
      blocks[std::string(to_string(block))] = per_call;
    }
    modes.push_back(std::move(entry));
  }
  report.write();
}

}  // namespace

int main(int argc, char** argv) {
  svk::bench::initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  print_summary();
  write_json();
  return 0;
}
