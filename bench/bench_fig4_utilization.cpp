// Figure 4 — "CPU Increasing Load Utilization": single-proxy CPU
// utilization vs offered load, stateful vs stateless configuration.
//
// Paper: both curves linear through the origin; the stateful server
// saturates at ~10360 cps, the stateless one at ~12300 cps.
#include "bench_util.hpp"

namespace {

using namespace svk;
using namespace svk::bench;
using workload::PolicyKind;

struct UtilSeries {
  std::string name;
  std::vector<std::pair<double, double>> points;  // offered, util %
  double saturation_cps = 0.0;
  std::vector<RunRecord> records;
};
UtilSeries g_stateful;
UtilSeries g_stateless;

UtilSeries run_utilization(const char* name, PolicyKind policy) {
  UtilSeries series;
  series.name = name;
  const auto factory = workload::single_proxy(scenario(policy, 1));
  // The paper sweeps 20..14000 cps in even steps.
  const auto sweep = workload::run_sweep_parallel(
      factory, scaled(1000.0), scaled(14000.0), scaled(1000.0),
      measure_options(), g_threads);
  for (const auto& point : sweep.points) {
    series.points.emplace_back(full(point.offered_cps),
                               100.0 * point.proxy_utilization[0]);
    series.records.push_back(full_record(point, name));
  }
  series.saturation_cps = full(sweep.max_throughput_cps);
  return series;
}

void BM_Fig4_Stateful(benchmark::State& state) {
  for (auto _ : state) {
    g_stateful = run_utilization("stateful", PolicyKind::kStaticAllStateful);
  }
  state.counters["saturation_cps"] = g_stateful.saturation_cps;
}
BENCHMARK(BM_Fig4_Stateful)->Iterations(1)->Unit(benchmark::kMillisecond);

void BM_Fig4_Stateless(benchmark::State& state) {
  for (auto _ : state) {
    g_stateless =
        run_utilization("stateless", PolicyKind::kStaticAllStateless);
  }
  state.counters["saturation_cps"] = g_stateless.saturation_cps;
}
BENCHMARK(BM_Fig4_Stateless)->Iterations(1)->Unit(benchmark::kMillisecond);

void print_summary() {
  print_header("Figure 4", "CPU utilization vs offered load, single proxy");
  std::printf("%-14s %18s %18s\n", "offered(cps)", "stateful util%",
              "stateless util%");
  for (std::size_t i = 0; i < g_stateful.points.size(); ++i) {
    std::printf("%-14.0f %18.1f %18.1f\n", g_stateful.points[i].first,
                g_stateful.points[i].second, g_stateless.points[i].second);
  }
  Series sf{"stateful", g_stateful.points, 0.0, {}};
  Series sl{"stateless", g_stateless.points, 0.0, {}};
  print_ascii_chart("CPU utilization (%) vs offered load (cps)", {sf, sl});

  std::printf("\npaper vs measured (saturation, cps):\n");
  print_paper_row("stateful saturation", 10360.0, g_stateful.saturation_cps);
  print_paper_row("stateless saturation", 12300.0,
                  g_stateless.saturation_cps);
}

void write_json() {
  BenchReport report("fig4_utilization");
  for (const UtilSeries* s : {&g_stateful, &g_stateless}) {
    Series series{s->name, s->points, s->saturation_cps, s->records};
    report.add_series(series);
    report.add_metric(s->name + "_saturation_cps", s->saturation_cps);
  }
  report.add_metric("paper_stateful_saturation_cps", 10360.0);
  report.add_metric("paper_stateless_saturation_cps", 12300.0);
  report.write();
}

}  // namespace

int main(int argc, char** argv) {
  svk::bench::initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  print_summary();
  write_json();
  return 0;
}
