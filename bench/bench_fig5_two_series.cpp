// Figure 5 — "Two Servers in Series - Throughput": offered load vs call
// throughput for the static configuration and SERvartuka.
//
// Paper: static saturates at 8540 cps, SERvartuka at 9790 cps — a 15%
// improvement. (The static baseline is the deployment default, both nodes
// stateful; see EXPERIMENTS.md for why it lands well below the single-node
// stateful limit of 10360.) The LP bound for this topology is ~11240 cps.
#include "bench_util.hpp"
#include "lp/state_model.hpp"

namespace {

using namespace svk;
using namespace svk::bench;
using workload::PolicyKind;

Series g_static;
Series g_best_static;
Series g_dynamic;

constexpr double kLo = 7000.0;
constexpr double kHi = 13000.0;
constexpr double kStep = 500.0;

void BM_Fig5_StaticConfiguration(benchmark::State& state) {
  for (auto _ : state) {
    g_static = run_throughput_series(
        "static(all-SF)",
        workload::series_chain(2, scenario(PolicyKind::kStaticAllStateful)),
        kLo, kHi, kStep);
  }
  state.counters["saturation_cps"] = g_static.max_value;
}
BENCHMARK(BM_Fig5_StaticConfiguration)->Iterations(1)
    ->Unit(benchmark::kMillisecond);

void BM_Fig5_BestStatic(benchmark::State& state) {
  for (auto _ : state) {
    g_best_static = run_throughput_series(
        "static(one-SF)",
        workload::series_chain(
            2, scenario(PolicyKind::kStaticChainFirstStateful)),
        kLo, kHi, kStep);
  }
  state.counters["saturation_cps"] = g_best_static.max_value;
}
BENCHMARK(BM_Fig5_BestStatic)->Iterations(1)->Unit(benchmark::kMillisecond);

void BM_Fig5_Servartuka(benchmark::State& state) {
  for (auto _ : state) {
    g_dynamic = run_throughput_series(
        "SERvartuka",
        workload::series_chain(2, scenario(PolicyKind::kServartuka)), kLo,
        kHi, kStep);
  }
  state.counters["saturation_cps"] = g_dynamic.max_value;
}
BENCHMARK(BM_Fig5_Servartuka)->Iterations(1)->Unit(benchmark::kMillisecond);

void print_summary() {
  print_header("Figure 5", "two servers in series — throughput");
  print_series_table("throughput vs offered load",
                     "calls/second, full-scale equivalents",
                     {g_static, g_best_static, g_dynamic});
  print_ascii_chart("throughput (cps) vs offered load (cps)",
                    {g_static, g_best_static, g_dynamic});

  lp::StateDistributionModel model;
  const auto s1 = model.add_node("s1", 10360.0, 12300.0);
  const auto s2 = model.add_node("s2", 10360.0, 12300.0);
  model.add_edge(s1, s2);
  model.mark_entry(s1);
  model.mark_exit(s2);
  const auto lp_result = model.solve();

  std::printf("\npaper vs measured (saturation, cps):\n");
  print_paper_row("static configuration", 8540.0, g_static.max_value);
  print_paper_row("SERvartuka", 9790.0, g_dynamic.max_value);
  print_paper_row("LP optimum (upper bound)", 11240.0,
                  lp_result.max_throughput);
  std::printf("\nimprovement: paper +15%%, measured %+.0f%%"
              " (best hand-tuned static: %.0f cps)\n",
              100.0 * (g_dynamic.max_value / g_static.max_value - 1.0),
              g_best_static.max_value);
}

void write_json() {
  BenchReport report("fig5_two_series");
  // With --trace= / --metrics=: one observed SERvartuka run near the
  // paper's saturation point, exporting trace + controller audit series.
  run_traced_smoke(report,
                   workload::series_chain(2, scenario(PolicyKind::kServartuka)),
                   9500.0);
  report.add_series(g_static);
  report.add_series(g_best_static);
  report.add_series(g_dynamic);
  report.add_metric("static_saturation_cps", g_static.max_value);
  report.add_metric("best_static_saturation_cps", g_best_static.max_value);
  report.add_metric("servartuka_saturation_cps", g_dynamic.max_value);
  report.add_metric("paper_static_saturation_cps", 8540.0);
  report.add_metric("paper_servartuka_saturation_cps", 9790.0);
  report.write();
}

}  // namespace

int main(int argc, char** argv) {
  svk::bench::initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  print_summary();
  write_json();
  return 0;
}
