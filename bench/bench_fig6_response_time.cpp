// Figure 6 — "Two Servers in Series - Response Times": call setup latency
// vs offered load for the static stateful configuration, SERvartuka, and a
// fully stateless chain.
//
// Paper shape: the stateful configuration bounds response times under
// ~200 ms up to its (low) saturation point; the stateless chain stays fast
// until its higher saturation and then spikes (lost messages must be
// recovered end-to-end); SERvartuka keeps stateful-like response times
// while pushing saturation higher.
#include "bench_util.hpp"

namespace {

using namespace svk;
using namespace svk::bench;
using workload::PolicyKind;

struct RtSeries {
  std::string name;
  // offered -> (mean ms, p90 ms, throughput)
  std::vector<std::tuple<double, double, double, double>> points;
  std::vector<RunRecord> records;
};
RtSeries g_stateful;
RtSeries g_dynamic;
RtSeries g_stateless;

RtSeries run_rt(const char* name, PolicyKind policy) {
  RtSeries series;
  series.name = name;
  const auto factory = workload::series_chain(2, scenario(policy));
  const auto sweep = workload::run_sweep_parallel(
      factory, scaled(7000.0), scaled(13500.0), scaled(500.0),
      measure_options(), g_threads);
  for (const auto& point : sweep.points) {
    series.points.emplace_back(full(point.offered_cps), point.setup_ms_mean,
                               point.setup_ms_p90,
                               full(point.throughput_cps));
    series.records.push_back(full_record(point, name));
  }
  return series;
}

void BM_Fig6_StaticStateful(benchmark::State& state) {
  for (auto _ : state) {
    g_stateful = run_rt("stateful", PolicyKind::kStaticAllStateful);
  }
}
BENCHMARK(BM_Fig6_StaticStateful)->Iterations(1)
    ->Unit(benchmark::kMillisecond);

void BM_Fig6_Servartuka(benchmark::State& state) {
  for (auto _ : state) {
    g_dynamic = run_rt("SERvartuka", PolicyKind::kServartuka);
  }
}
BENCHMARK(BM_Fig6_Servartuka)->Iterations(1)->Unit(benchmark::kMillisecond);

void BM_Fig6_Stateless(benchmark::State& state) {
  for (auto _ : state) {
    g_stateless = run_rt("stateless", PolicyKind::kStaticAllStateless);
  }
}
BENCHMARK(BM_Fig6_Stateless)->Iterations(1)->Unit(benchmark::kMillisecond);

void print_summary() {
  print_header("Figure 6", "two servers in series — response times");
  std::printf("%-13s | %-21s | %-21s | %-21s\n", "", "stateful static",
              "SERvartuka", "stateless static");
  std::printf("%-13s | %10s %10s | %10s %10s | %10s %10s\n", "offered(cps)",
              "mean(ms)", "p90(ms)", "mean(ms)", "p90(ms)", "mean(ms)",
              "p90(ms)");
  for (std::size_t i = 0; i < g_stateful.points.size(); ++i) {
    std::printf("%-13.0f | %10.1f %10.1f | %10.1f %10.1f | %10.1f %10.1f\n",
                std::get<0>(g_stateful.points[i]),
                std::get<1>(g_stateful.points[i]),
                std::get<2>(g_stateful.points[i]),
                std::get<1>(g_dynamic.points[i]),
                std::get<2>(g_dynamic.points[i]),
                std::get<1>(g_stateless.points[i]),
                std::get<2>(g_stateless.points[i]));
  }

  {
    bench::Series sf{"stateful", {}, 0.0, {}}, dy{"SERvartuka", {}, 0.0, {}},
        sl{"stateless", {}, 0.0, {}};
    for (const auto& [offered, mean, p90, tput] : g_stateful.points) {
      sf.points.emplace_back(offered, mean);
    }
    for (const auto& [offered, mean, p90, tput] : g_dynamic.points) {
      dy.points.emplace_back(offered, mean);
    }
    for (const auto& [offered, mean, p90, tput] : g_stateless.points) {
      sl.points.emplace_back(offered, mean);
    }
    print_ascii_chart("mean setup time (ms) vs offered load (cps)",
                      {sf, dy, sl});
  }

  // Shape checks the paper calls out: the stateful and SERvartuka
  // configurations bound response times (the paper: under ~200 ms) across
  // the whole sweep, while the stateless chain spikes once it saturates
  // (lost messages must be recovered end-to-end).
  auto worst = [](const RtSeries& s, double lo, double hi) {
    double w = 0.0;
    for (const auto& [offered, mean, p90, tput] : s.points) {
      if (offered >= lo && offered <= hi && mean > w) w = mean;
    }
    return w;
  };
  std::printf("\nshape checks (paper: Figure 6):\n");
  std::printf("  stateful static worst mean RT over sweep:  %7.1f ms"
              "  (paper: bounded <~200)\n",
              worst(g_stateful, 0.0, 1e9));
  std::printf("  SERvartuka worst mean RT up to 11500 cps:  %7.1f ms"
              "  (paper: stateful-like)\n",
              worst(g_dynamic, 0.0, 11500.0));
  std::printf("  stateless mean RT at 12000 / 13000 cps:    %7.1f /"
              " %.1f ms  (paper: low, then spikes)\n",
              worst(g_stateless, 12000.0, 12000.0),
              worst(g_stateless, 13000.0, 13000.0));
}

void write_json() {
  BenchReport report("fig6_response_time");
  for (const RtSeries* s : {&g_stateful, &g_dynamic, &g_stateless}) {
    Series series{s->name, {}, 0.0, s->records};
    for (const auto& [offered, mean, p90, tput] : s->points) {
      series.points.emplace_back(offered, mean);
    }
    report.add_series(series);
  }
  report.write();
}

}  // namespace

int main(int argc, char** argv) {
  svk::bench::initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  print_summary();
  write_json();
  return 0;
}
