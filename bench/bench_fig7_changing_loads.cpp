// Figure 7 — "Response to Varying Load Distribution": maximal throughput
// vs the fraction of external (two-hop) call load, for the static
// configuration and SERvartuka, with the LP prediction.
//
// Paper: SERvartuka >= static at every fraction; at 80% external the gap
// peaks (static 9540 vs SERvartuka 11410, ~20%; LP predicts 11960).
#include "bench_util.hpp"
#include "lp/state_model.hpp"

namespace {

using namespace svk;
using namespace svk::bench;
using workload::PolicyKind;

struct FractionPoint {
  double fraction;
  double static_sat = 0.0;
  double dynamic_sat = 0.0;
  double lp_bound = 0.0;
};
std::vector<FractionPoint> g_points;

double find_sat(PolicyKind policy, double fraction) {
  const auto factory =
      workload::two_series_with_internal(fraction, scenario(policy));
  return find_saturation_full(factory, 8000.0, 13000.0, 500.0);
}

double lp_bound(double fraction) {
  lp::StateDistributionModel model;
  const auto s1 = model.add_node("s1", 10360.0, 12300.0);
  const auto s2 = model.add_node("s2", 10360.0, 12300.0);
  model.add_edge(s1, s2);
  model.mark_entry(s1);
  model.mark_exit(s1);  // internal flow exits at s1
  model.mark_exit(s2);
  model.fix_exit_split(s1, 1.0 - fraction);
  model.fix_split(s1, s2, fraction);
  const auto result = model.solve();
  return result.optimal() ? result.max_throughput : 0.0;
}

void BM_Fig7_Fraction(benchmark::State& state) {
  const double fraction = static_cast<double>(state.range(0)) / 10.0;
  FractionPoint point;
  point.fraction = fraction;
  for (auto _ : state) {
    point.static_sat = find_sat(PolicyKind::kStaticAllStateful, fraction);
    point.dynamic_sat = find_sat(PolicyKind::kServartuka, fraction);
    point.lp_bound = lp_bound(fraction);
  }
  g_points.push_back(point);
  state.counters["static_cps"] = point.static_sat;
  state.counters["servartuka_cps"] = point.dynamic_sat;
}
BENCHMARK(BM_Fig7_Fraction)->DenseRange(0, 10)->Iterations(1)
    ->Unit(benchmark::kMillisecond);

void print_summary() {
  print_header("Figure 7", "maximal throughput vs external load fraction");
  std::printf("%-10s %14s %14s %14s\n", "fraction", "static", "SERvartuka",
              "LP bound");
  const FractionPoint* at80 = nullptr;
  for (const FractionPoint& p : g_points) {
    std::printf("%-10.1f %14.0f %14.0f %14.0f\n", p.fraction, p.static_sat,
                p.dynamic_sat, p.lp_bound);
    if (p.fraction > 0.75 && p.fraction < 0.85) at80 = &p;
  }
  Series st{"static", {}, 0.0, {}}, dy{"SERvartuka", {}, 0.0, {}},
      lp{"LP", {}, 0.0, {}};
  for (const FractionPoint& p : g_points) {
    st.points.emplace_back(p.fraction, p.static_sat);
    dy.points.emplace_back(p.fraction, p.dynamic_sat);
    lp.points.emplace_back(p.fraction, p.lp_bound);
  }
  print_ascii_chart("max throughput (cps) vs external fraction",
                    {st, dy, lp});

  if (at80 != nullptr) {
    std::printf("\npaper vs measured at the 80/20 split (cps):\n");
    print_paper_row("static configuration", 9540.0, at80->static_sat);
    print_paper_row("SERvartuka", 11410.0, at80->dynamic_sat);
    print_paper_row("LP prediction", 11960.0, at80->lp_bound);
    std::printf("\nimprovement at 80/20: paper ~+20%%, measured %+.0f%%\n",
                100.0 * (at80->dynamic_sat / at80->static_sat - 1.0));
  }
}

void write_json() {
  BenchReport report("fig7_changing_loads");
  // With --trace= / --metrics=: one observed SERvartuka run at the paper's
  // 80/20 split, exporting the Chrome trace and the controller audit series.
  run_traced_smoke(report,
                   workload::two_series_with_internal(
                       0.8, scenario(PolicyKind::kServartuka)),
                   10000.0);
  JsonValue& points = report.root()["fractions"];
  points = JsonValue::array();
  for (const FractionPoint& p : g_points) {
    JsonValue entry = JsonValue::object();
    entry["external_fraction"] = p.fraction;
    entry["static_saturation_cps"] = p.static_sat;
    entry["servartuka_saturation_cps"] = p.dynamic_sat;
    entry["lp_bound_cps"] = p.lp_bound;
    points.push_back(std::move(entry));
  }
  report.add_metric("paper_static_at_80_cps", 9540.0);
  report.add_metric("paper_servartuka_at_80_cps", 11410.0);
  report.add_metric("paper_lp_at_80_cps", 11960.0);
  report.write();
}

}  // namespace

int main(int argc, char** argv) {
  svk::bench::initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  print_summary();
  write_json();
  return 0;
}
