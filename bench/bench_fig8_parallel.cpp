// Figure 8 — "Three Server Parallel Configuration": throughput vs offered
// load for a load-balancing fork (one entry, two exits, 50/50 split).
//
// Paper: static (entry stateless, both exits stateful) reaches 11990 cps;
// SERvartuka 12830. The paper's own LP says the standard static fork is
// already optimal ("in this configuration we cannot do better than servers
// that have been statically preconfigured") and the authors note they
// cannot explain SERvartuka's extra margin; we expect (and measure)
// near-parity, with the LP bound printed alongside.
#include "bench_util.hpp"
#include "lp/state_model.hpp"

namespace {

using namespace svk;
using namespace svk::bench;
using workload::PolicyKind;

Series g_static;
Series g_dynamic;

constexpr double kLo = 8000.0;
constexpr double kHi = 13000.0;
constexpr double kStep = 500.0;

void BM_Fig8_StaticFork(benchmark::State& state) {
  for (auto _ : state) {
    g_static = run_throughput_series(
        "static(exits-SF)",
        workload::parallel_fork(
            scenario(PolicyKind::kStaticChainLastStateful)),
        kLo, kHi, kStep);
  }
  state.counters["saturation_cps"] = g_static.max_value;
}
BENCHMARK(BM_Fig8_StaticFork)->Iterations(1)->Unit(benchmark::kMillisecond);

void BM_Fig8_Servartuka(benchmark::State& state) {
  for (auto _ : state) {
    g_dynamic = run_throughput_series(
        "SERvartuka",
        workload::parallel_fork(scenario(PolicyKind::kServartuka)), kLo,
        kHi, kStep);
  }
  state.counters["saturation_cps"] = g_dynamic.max_value;
}
BENCHMARK(BM_Fig8_Servartuka)->Iterations(1)->Unit(benchmark::kMillisecond);

void print_summary() {
  print_header("Figure 8", "three-server parallel (fork) configuration");
  print_series_table("throughput vs offered load",
                     "calls/second, full-scale equivalents",
                     {g_static, g_dynamic});
  print_ascii_chart("throughput (cps) vs offered load (cps)",
                    {g_static, g_dynamic});

  lp::StateDistributionModel model;
  const auto s0 = model.add_node("s0", 10360.0, 12300.0);
  const auto sa = model.add_node("sa", 10360.0, 12300.0);
  const auto sb = model.add_node("sb", 10360.0, 12300.0);
  model.add_edge(s0, sa);
  model.add_edge(s0, sb);
  model.mark_entry(s0);
  model.mark_exit(sa);
  model.mark_exit(sb);
  model.fix_split(s0, sa, 0.5);
  model.fix_split(s0, sb, 0.5);
  const auto lp_result = model.solve();

  std::printf("\npaper vs measured (saturation, cps):\n");
  print_paper_row("static fork", 11990.0, g_static.max_value);
  print_paper_row("SERvartuka", 12830.0, g_dynamic.max_value);
  print_paper_row("LP bound", lp_result.max_throughput,
                  lp_result.max_throughput);
  std::printf("\nratio SERvartuka/static: paper 1.07, measured %.2f\n",
              g_dynamic.max_value / g_static.max_value);
}

void write_json() {
  BenchReport report("fig8_parallel");
  report.add_series(g_static);
  report.add_series(g_dynamic);
  report.add_metric("static_saturation_cps", g_static.max_value);
  report.add_metric("servartuka_saturation_cps", g_dynamic.max_value);
  report.add_metric("paper_static_saturation_cps", 11990.0);
  report.add_metric("paper_servartuka_saturation_cps", 12830.0);
  report.write();
}

}  // namespace

int main(int argc, char** argv) {
  svk::bench::initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  print_summary();
  write_json();
  return 0;
}
