// Core perf baseline — the tracked wall-clock numbers every PR is held to.
//
// Unlike the figure benches (which reproduce the paper's *simulated*
// metrics), this binary measures the simulator itself: how fast the
// discrete-event core schedules, cancels and dispatches events, how fast
// the SIP layer clones and serializes messages on the forward path, and how
// long the standard Figure-5 two-series sweep takes end to end. Results go
// to BENCH_perf_core.json; EXPERIMENTS.md records the history.
//
// Modes:
//   (default)  full run: microbenches + the standard fig5 two-series sweep
//   --quick    CI smoke: smaller iteration counts, 3-point sweep. The
//              allocation-regression gate (events scheduled per event-pool
//              slab allocation, messages finished per message-pool slab
//              allocation) is checked in BOTH modes and reflected in the
//              process exit code, so CI fails on an allocation regression
//              without depending on noisy wall-clock numbers.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "bench_util.hpp"
#include "common/flat_table.hpp"
#include "common/hash.hpp"
#include "common/slab.hpp"
#include "sim/simulator.hpp"
#include "sip/branch.hpp"
#include "sip/message.hpp"

namespace {

using namespace svk;
using namespace svk::bench;
using Clock = std::chrono::steady_clock;

bool g_quick = false;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

/// Peak resident set size of this process, in bytes (Linux VmHWM).
std::uint64_t peak_rss_bytes() {
  std::FILE* f = std::fopen("/proc/self/status", "r");
  if (f == nullptr) return 0;
  char line[256];
  std::uint64_t kib = 0;
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    if (std::strncmp(line, "VmHWM:", 6) == 0) {
      kib = std::strtoull(line + 6, nullptr, 10);
      break;
    }
  }
  std::fclose(f);
  return kib * 1024;
}

// ---------------------------------------------------------------------------
// Microbench 1: schedule + cancel churn (the RFC 3261 timer pattern).
//
// Transactions arm timers far in the future (timer B/F at 32s, timer C at
// 180s, linger timers at 5-32s) and cancel nearly all of them milliseconds
// later when the response arrives. The old priority_queue core paid
// O(log n) per schedule and left a tombstone per cancel that stayed
// resident until the queue drained past it.
// ---------------------------------------------------------------------------
double bench_schedule_cancel(sim::Simulator& sim, std::uint64_t rounds,
                             std::uint64_t batch) {
  std::vector<sim::EventId> ids(batch);
  const auto start = Clock::now();
  for (std::uint64_t r = 0; r < rounds; ++r) {
    for (std::uint64_t i = 0; i < batch; ++i) {
      // Delays spread over the RFC timer range: A/E-scale (ms) through
      // B/F (32s) up to timer C (180s).
      const SimTime delay =
          SimTime::millis(500) + SimTime::seconds(static_cast<double>(i % 180));
      ids[i] = sim.schedule(delay, [] {});
    }
    for (std::uint64_t i = 0; i < batch; ++i) sim.cancel(ids[i]);
    // Advance virtual time a little, as the event loop would between
    // arrival bursts.
    sim.schedule(SimTime::micros(100), [] {});
    sim.step();
  }
  const double elapsed = seconds_since(start);
  return static_cast<double>(rounds * batch) / elapsed;  // schedule+cancel pairs
}

// ---------------------------------------------------------------------------
// Microbench 2: event dispatch throughput. A population of self-rescheduling
// "timers" (the steady-state shape of the simulation: every executed event
// schedules its successor) run for a fixed virtual horizon.
// ---------------------------------------------------------------------------
double bench_dispatch(sim::Simulator& sim, int population, double sim_seconds) {
  std::uint64_t fired = 0;
  struct Timer {
    sim::Simulator* sim;
    std::uint64_t* fired;
    SimTime period;
    void arm() {
      sim->schedule(period, [this] {
        ++*fired;
        arm();
      });
    }
  };
  std::vector<Timer> timers(static_cast<std::size_t>(population));
  for (int i = 0; i < population; ++i) {
    timers[static_cast<std::size_t>(i)] = {&sim, &fired,
                                           SimTime::micros(50 + i % 100)};
    timers[static_cast<std::size_t>(i)].arm();
  }
  const SimTime horizon = sim.now() + SimTime::seconds(sim_seconds);
  const auto start = Clock::now();
  sim.run_until(horizon);
  const double elapsed = seconds_since(start);
  return static_cast<double>(fired) / elapsed;
}

// ---------------------------------------------------------------------------
// Microbench 3: copy-on-forward. Clone a realistic mid-chain INVITE, push a
// Via, decrement Max-Forwards and share it — exactly what ProxyServer does
// per hop.
// ---------------------------------------------------------------------------
sip::Message make_invite() {
  sip::Message msg = sip::Message::request(
      sip::Method::kInvite, sip::Uri("hal", "us.ibm.com"),
      sip::NameAddr{"", sip::Uri("alice", "uac.test"), "tag-a"},
      sip::NameAddr{"", sip::Uri("hal", "us.ibm.com"), ""},
      "cid-7f3a2b@uac", sip::CSeq{1, sip::Method::kInvite});
  msg.push_via(sip::Via{"SIP/2.0/UDP", "uac.test", "z9hG4bK-1-1"});
  msg.set_header("X-SVK-Stateful", "proxy0.test");
  return msg;
}

double bench_forward(std::uint64_t iters, std::uint64_t* forwarded,
                     std::uint64_t* steady_fresh_allocs) {
  const sip::MessagePtr base = [&] {
    sip::Message m = make_invite();
    m.push_via(sip::Via{"SIP/2.0/UDP", "proxy0.test", "z9hG4bK-2-2"});
    return std::move(m).finish();
  }();
  sip::BranchGenerator branches(3);
  // A small in-flight window models messages alive while traversing links.
  std::vector<sip::MessagePtr> window(64);
  const auto forward_one = [&](std::uint64_t i) {
    sip::Message fwd = sip::clone(*base);
    fwd.push_via(sip::Via{"SIP/2.0/UDP", "proxy1.test", branches.next()});
    fwd.decrement_max_forwards();
    window[i % window.size()] = std::move(fwd).finish();
  };
  // Warm the window and the message pool before measuring; from then on
  // every finish() must be served from the pool's freelist.
  for (std::uint64_t i = 0; i < 4096; ++i) forward_one(i);
  const std::uint64_t fresh_before = sip::message_pool_stats().fresh_allocs;
  const auto start = Clock::now();
  for (std::uint64_t i = 0; i < iters; ++i) forward_one(i);
  const double elapsed = seconds_since(start);
  *steady_fresh_allocs =
      sip::message_pool_stats().fresh_allocs - fresh_before;
  *forwarded = iters;
  return static_cast<double>(iters) / elapsed;
}

double bench_to_wire(std::uint64_t iters) {
  sip::Message msg = make_invite();
  msg.push_via(sip::Via{"SIP/2.0/UDP", "proxy0.test", "z9hG4bK-2-2"});
  msg.push_via(sip::Via{"SIP/2.0/UDP", "proxy1.test", "z9hG4bK-3-3"});
  std::uint64_t bytes = 0;
  const auto start = Clock::now();
  for (std::uint64_t i = 0; i < iters; ++i) {
    bytes += msg.to_wire().size();
  }
  const double elapsed = seconds_since(start);
  benchmark::DoNotOptimize(bytes);
  return static_cast<double>(iters) / elapsed;
}

// ---------------------------------------------------------------------------
// Microbench 4: state-store churn. The transaction/dialog tables were the
// last allocation-heavy layer of the hot loop; this measures the flat
// slab-backed store (FlatTable of precomputed-hash entries over a Slab,
// probes are hashed string_views) against the node-based layout it replaced
// (unordered_map keyed by owning TransactionKey strings, unique_ptr
// values), on the dispatch pattern the proxy actually runs: look up by key
// fields read off a message, and churn (erase + re-create) at call
// completion. The slab/table alloc counters around the steady churn phase
// are the regression gate: once warm, the store must touch no allocator.
// ---------------------------------------------------------------------------
struct StateStoreNumbers {
  double flat_dispatch_per_sec = 0.0;
  double map_dispatch_per_sec = 0.0;
  double flat_churn_per_sec = 0.0;
  double map_churn_per_sec = 0.0;
  std::uint64_t steady_allocs = 0;  // slab chunk allocs + table grows
};

StateStoreNumbers bench_state_store(std::size_t population,
                                    std::uint64_t lookups,
                                    std::uint64_t churn_iters) {
  // A slab-resident stand-in for a transaction: owns its key fields the way
  // a real transaction owns its retained request (key-inside-value).
  struct FakeTxn {
    std::string branch;
    std::string sent_by;
    sip::Method method = sip::Method::kInvite;
    std::uint64_t hits = 0;
  };

  // Key corpus with realistic shapes: per-call branch tokens, a handful of
  // sending hosts (Via sent-by values repeat across calls at one element).
  std::vector<std::string> branches(population);
  std::vector<std::string> hosts(8);
  for (std::size_t i = 0; i < hosts.size(); ++i) {
    hosts[i] = "proxy" + std::to_string(i) + ".example.test";
  }
  for (std::size_t i = 0; i < population; ++i) {
    char buf[48];
    std::snprintf(buf, sizeof(buf), "z9hG4bK-%zx-%zx", i, i * 2654435761u);
    branches[i] = buf;
  }
  const auto host_of = [&](std::size_t i) -> const std::string& {
    return hosts[i % hosts.size()];
  };
  // Deterministic scrambled visit order (no RNG: golden-ratio stride).
  const auto scrambled = [&](std::uint64_t i) {
    return static_cast<std::size_t>((i * common::kGolden64) % population);
  };

  StateStoreNumbers out;

  // ---- Flat slab-backed store (the shipped layout) ----
  {
    common::Slab<FakeTxn> slab;
    common::FlatTable<common::SlabHandle> table;
    std::vector<common::SlabHandle> handles(population);
    const auto probe_find = [&](std::size_t i) -> FakeTxn* {
      // What dispatch does: hash the key fields in place, probe, compare
      // views against the slab-resident object's own fields.
      const std::string_view branch = branches[i];
      const std::string_view sent_by = host_of(i);
      const std::uint64_t h =
          sip::txn_key_hash(branch, sent_by, sip::Method::kInvite);
      common::SlabHandle* slot =
          table.find(h, [&](const common::SlabHandle& v) {
            const FakeTxn* t = slab.get(v);
            return t->branch == branch && t->sent_by == sent_by &&
                   t->method == sip::Method::kInvite;
          });
      return slot != nullptr ? slab.get(*slot) : nullptr;
    };
    const auto create = [&](std::size_t i) {
      const std::uint64_t h = sip::txn_key_hash(branches[i], host_of(i),
                                                sip::Method::kInvite);
      handles[i] =
          slab.emplace(FakeTxn{branches[i], host_of(i), sip::Method::kInvite});
      table.insert(h, handles[i]);
    };
    const auto erase = [&](std::size_t i) {
      const std::uint64_t h = sip::txn_key_hash(branches[i], host_of(i),
                                                sip::Method::kInvite);
      table.erase(h, [&](const common::SlabHandle& v) {
        return v == handles[i];
      });
      slab.erase(handles[i]);
    };
    for (std::size_t i = 0; i < population; ++i) create(i);

    std::uint64_t found = 0;
    auto start = Clock::now();
    for (std::uint64_t i = 0; i < lookups; ++i) {
      FakeTxn* t = probe_find(scrambled(i));
      if (t != nullptr) {
        ++t->hits;
        ++found;
      }
    }
    out.flat_dispatch_per_sec =
        static_cast<double>(lookups) / seconds_since(start);
    benchmark::DoNotOptimize(found);

    // Steady churn: at a fixed live population, erase + re-create must be
    // served entirely from the freelist and the settled table capacity.
    const std::uint64_t allocs_before =
        slab.stats().chunk_allocs + table.stats().grows;
    start = Clock::now();
    for (std::uint64_t i = 0; i < churn_iters; ++i) {
      const std::size_t k = scrambled(i);
      erase(k);
      create(k);
    }
    out.flat_churn_per_sec =
        static_cast<double>(churn_iters) / seconds_since(start);
    out.steady_allocs =
        slab.stats().chunk_allocs + table.stats().grows - allocs_before;
  }

  // ---- Node-based baseline (the layout this replaced) ----
  {
    std::unordered_map<sip::TransactionKey, std::unique_ptr<FakeTxn>,
                       sip::TransactionKeyHash>
        map;
    const auto make_key = [&](std::size_t i) {
      // What the old dispatch did: materialize an owning TransactionKey
      // (two string copies) per probe.
      return sip::TransactionKey{branches[i], host_of(i),
                                 sip::Method::kInvite};
    };
    for (std::size_t i = 0; i < population; ++i) {
      map[make_key(i)] = std::make_unique<FakeTxn>(
          FakeTxn{branches[i], host_of(i), sip::Method::kInvite});
    }

    std::uint64_t found = 0;
    auto start = Clock::now();
    for (std::uint64_t i = 0; i < lookups; ++i) {
      const auto it = map.find(make_key(scrambled(i)));
      if (it != map.end()) {
        ++it->second->hits;
        ++found;
      }
    }
    out.map_dispatch_per_sec =
        static_cast<double>(lookups) / seconds_since(start);
    benchmark::DoNotOptimize(found);

    start = Clock::now();
    for (std::uint64_t i = 0; i < churn_iters; ++i) {
      const std::size_t k = scrambled(i);
      map.erase(make_key(k));
      map[make_key(k)] = std::make_unique<FakeTxn>(
          FakeTxn{branches[k], host_of(k), sip::Method::kInvite});
    }
    out.map_churn_per_sec =
        static_cast<double>(churn_iters) / seconds_since(start);
  }

  return out;
}

// ---------------------------------------------------------------------------
// The standard Figure-5 two-series sweep, timed wall-clock end to end.
// ---------------------------------------------------------------------------
double bench_fig5_sweep(double* static_sat, double* dynamic_sat) {
  using workload::PolicyKind;
  const double lo = 7000.0, hi = g_quick ? 8000.0 : 13000.0, step = 500.0;
  const auto start = Clock::now();
  const Series s_static = run_throughput_series(
      "static(all-SF)",
      workload::series_chain(2, scenario(PolicyKind::kStaticAllStateful)), lo,
      hi, step);
  const Series s_dyn = run_throughput_series(
      "SERvartuka", workload::series_chain(2, scenario(PolicyKind::kServartuka)),
      lo, hi, step);
  const double elapsed = seconds_since(start);
  *static_sat = s_static.max_value;
  *dynamic_sat = s_dyn.max_value;
  return elapsed;
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      g_quick = true;
      for (int j = i; j + 1 < argc; ++j) argv[j] = argv[j + 1];
      --argc;
      break;
    }
  }
  svk::bench::initialize(&argc, argv);

  const std::uint64_t churn_rounds = g_quick ? 2'000 : 20'000;
  const std::uint64_t churn_batch = 64;
  const int dispatch_population = 512;
  const double dispatch_sim_seconds = g_quick ? 0.5 : 4.0;
  const std::uint64_t forward_iters = g_quick ? 500'000 : 4'000'000;
  const std::uint64_t wire_iters = g_quick ? 200'000 : 1'000'000;

  print_header("perf_core", "simulator + SIP hot-path wall-clock baseline");

  sim::Simulator churn_sim;
  const double sched_cancel =
      bench_schedule_cancel(churn_sim, churn_rounds, churn_batch);
  std::printf("schedule+cancel churn : %12.0f pairs/sec (pending after: %zu)\n",
              sched_cancel, churn_sim.pending_count());

  sim::Simulator dispatch_sim;
  const double dispatch =
      bench_dispatch(dispatch_sim, dispatch_population, dispatch_sim_seconds);
  std::printf("event dispatch        : %12.0f events/sec (executed: %llu)\n",
              dispatch,
              static_cast<unsigned long long>(dispatch_sim.executed_count()));

  std::uint64_t forwarded = 0;
  std::uint64_t steady_fresh_allocs = 0;
  const double forward =
      bench_forward(forward_iters, &forwarded, &steady_fresh_allocs);
  std::printf("message forward       : %12.0f msgs/sec\n", forward);

  const double wire = bench_to_wire(wire_iters);
  std::printf("to_wire serialization : %12.0f msgs/sec\n", wire);

  // Live population models an element near saturation (thousands to tens of
  // thousands of in-flight transactions — 128k is already generous); the
  // churn phase then creates + erases well past 10^6 transactions through
  // that fixed live set, which is the ROADMAP-scale pattern (millions of
  // calls per sweep, bounded concurrency).
  const std::size_t store_population = g_quick ? 65'536 : 131'072;
  const std::uint64_t store_lookups = g_quick ? 2'000'000 : 8'000'000;
  const std::uint64_t store_churn = g_quick ? 500'000 : 2'000'000;
  const StateStoreNumbers store =
      bench_state_store(store_population, store_lookups, store_churn);
  const double dispatch_speedup =
      store.map_dispatch_per_sec > 0.0
          ? store.flat_dispatch_per_sec / store.map_dispatch_per_sec
          : 0.0;
  const double churn_speedup =
      store.map_churn_per_sec > 0.0
          ? store.flat_churn_per_sec / store.map_churn_per_sec
          : 0.0;
  std::printf("state store dispatch  : %12.0f lookups/sec flat, "
              "%12.0f map (%.2fx)\n",
              store.flat_dispatch_per_sec, store.map_dispatch_per_sec,
              dispatch_speedup);
  std::printf("state store churn     : %12.0f pairs/sec flat, "
              "%12.0f map (%.2fx)\n",
              store.flat_churn_per_sec, store.map_churn_per_sec,
              churn_speedup);

  double static_sat = 0.0, dynamic_sat = 0.0;
  const double sweep_seconds = bench_fig5_sweep(&static_sat, &dynamic_sat);
  std::printf("fig5 two-series sweep : %12.2f s wall-clock%s\n", sweep_seconds,
              g_quick ? " (--quick)" : "");
  std::printf("  simulated saturation: static %.0f cps, SERvartuka %.0f cps\n",
              static_sat, dynamic_sat);

  const std::uint64_t rss = peak_rss_bytes();
  std::printf("peak RSS              : %12.1f MiB\n",
              static_cast<double>(rss) / (1024.0 * 1024.0));

  // -- Allocation gate ------------------------------------------------------
  // Regression detection that does not depend on wall-clock noise: the
  // event pool must amortize its slab mallocs over a huge number of
  // scheduled events, and the warm message pool must serve the forward
  // loop without fresh allocations.
  const auto& churn_stats = churn_sim.event_stats();
  const auto& dispatch_stats = dispatch_sim.event_stats();
  const std::uint64_t events_scheduled =
      churn_stats.scheduled + dispatch_stats.scheduled;
  const std::uint64_t slab_allocs =
      churn_stats.slab_allocs + dispatch_stats.slab_allocs;
  const double events_per_slab =
      static_cast<double>(events_scheduled) /
      static_cast<double>(slab_allocs == 0 ? 1 : slab_allocs);
  // A healthy pool lands far above this (millions per slab); a core that
  // allocates per event would sit near the slab size (256).
  const double kMinEventsPerSlab = 50'000.0;
  const bool event_gate_ok = events_per_slab >= kMinEventsPerSlab;
  const bool message_gate_ok = steady_fresh_allocs == 0;
  std::printf("alloc gate            : %llu events / %llu slab allocs "
              "(%.0f per slab, min %.0f) -> %s\n",
              static_cast<unsigned long long>(events_scheduled),
              static_cast<unsigned long long>(slab_allocs), events_per_slab,
              kMinEventsPerSlab, event_gate_ok ? "ok" : "FAIL");
  std::printf("alloc gate            : %llu fresh message-pool allocs in "
              "steady forward loop (want 0) -> %s\n",
              static_cast<unsigned long long>(steady_fresh_allocs),
              message_gate_ok ? "ok" : "FAIL");
  // The state store's steady churn (fixed live population) must be served
  // entirely from the slab freelist and the settled table capacity.
  const bool store_gate_ok = store.steady_allocs == 0;
  std::printf("alloc gate            : %llu state-store allocs in steady "
              "churn (want 0) -> %s\n",
              static_cast<unsigned long long>(store.steady_allocs),
              store_gate_ok ? "ok" : "FAIL");

  BenchReport report("perf_core");
  report.root()["quick"] = g_quick;
  report.add_metric("schedule_cancel_pairs_per_sec", sched_cancel);
  report.add_metric("dispatch_events_per_sec", dispatch);
  report.add_metric("forward_msgs_per_sec", forward);
  report.add_metric("to_wire_msgs_per_sec", wire);
  report.add_metric("fig5_sweep_seconds", sweep_seconds);
  report.add_metric("fig5_static_saturation_cps", static_sat);
  report.add_metric("fig5_servartuka_saturation_cps", dynamic_sat);
  report.add_metric("peak_rss_bytes", static_cast<double>(rss));
  report.add_metric("events_scheduled", static_cast<double>(events_scheduled));
  report.add_metric("event_pool_slab_allocs", static_cast<double>(slab_allocs));
  report.add_metric("events_per_slab_alloc", events_per_slab);
  report.add_metric("message_pool_steady_fresh_allocs",
                    static_cast<double>(steady_fresh_allocs));
  report.add_metric("message_pool_reuses",
                    static_cast<double>(sip::message_pool_stats().reuses));
  report.add_metric("state_store_flat_dispatch_per_sec",
                    store.flat_dispatch_per_sec);
  report.add_metric("state_store_map_dispatch_per_sec",
                    store.map_dispatch_per_sec);
  report.add_metric("state_store_dispatch_speedup", dispatch_speedup);
  report.add_metric("state_store_flat_churn_per_sec",
                    store.flat_churn_per_sec);
  report.add_metric("state_store_map_churn_per_sec", store.map_churn_per_sec);
  report.add_metric("state_store_churn_speedup", churn_speedup);
  report.add_metric("state_store_steady_allocs",
                    static_cast<double>(store.steady_allocs));
  report.root()["alloc_gate_pass"] =
      event_gate_ok && message_gate_ok && store_gate_ok;
  report.write();
  return event_gate_ok && message_gate_ok && store_gate_ok ? 0 : 1;
}
