// Parallel-engine perf gate — wall-clock speedup and digest parity of the
// sharded simulator (sim::ShardSet) on the wide-fork topology.
//
// One entry balancer spreads calls over 16 stateful exit proxies; the link
// latency is raised to 10ms so the conservative engine's lookahead yields
// wide safe windows (100 per simulated second) and per-window work, not
// barrier overhead, dominates. The same load point runs at 1, 2 and 4
// shards; the binary then enforces, via its exit code:
//
//   1. Digest parity (always): every shard count must produce a
//      bit-identical RunRecord (wall clock zeroed) — the engine's cardinal
//      invariant, checked here on the exact configuration being timed.
//   2. Speedup (when the host has >= 4 CPUs): the 4-shard run must be at
//      least 2x faster wall-clock than the serial run. On smaller hosts the
//      speedup is still measured and reported but the gate is skipped —
//      threads pinned to one core cannot demonstrate parallelism.
//
// Modes:
//   (default)  5s warmup + 20s measure per engine
//   --quick    CI smoke: 2s warmup + 8s measure; both gates unchanged.
//
// Results go to BENCH_perf_parallel.json (uploaded by CI).
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "common/md5.hpp"

namespace {

using namespace svk;
using namespace svk::bench;

bool g_quick = false;

constexpr int kNumExits = 16;
constexpr double kSpeedupFloor = 2.0;
constexpr unsigned kMinCpusForGate = 4;

workload::BedFactory wide_fork_factory() {
  workload::ScenarioOptions options =
      scenario(workload::PolicyKind::kStaticChainLastStateful, kNumExits + 1);
  // More endpoint boxes than shards, so the round-robin shard assignment
  // spreads UAC/UAS work evenly alongside the exits.
  options.num_uacs = 8;
  options.num_uas = 8;
  // Dialog-stateful exits: more work per call on the spread-out shards
  // relative to the stateless balancer pinned on shard 0, which would
  // otherwise be the load-balance ceiling.
  options.stateful_mode = profile::HandlingMode::kDialogStateful;
  // 10ms one-way links: lookahead 10ms, 100 safe windows per simulated
  // second, ~11 calls of work per window. (The 250us default would mean
  // 4000 windows/s — barrier cost would swamp the tiny per-window work of
  // this scaled topology.) Still far below SIP T1 and the 100ms
  // queue-delay bound, so the scenario's behavior is unchanged in kind.
  options.link_latency = SimTime::millis(10);
  return workload::wide_fork(kNumExits, options);
}

struct EngineRun {
  std::size_t shards;
  double wall_seconds;
  std::string digest;  // MD5 of the RunRecord JSON, wall clock zeroed
  /// Events executed per shard — the work-balance diagnostic. Speedup is
  /// bounded above by total/max regardless of barrier cost.
  std::vector<std::uint64_t> per_shard_executed;
};

EngineRun run_engine(const workload::BedFactory& factory, double offered_full,
                     std::size_t shards) {
  workload::MeasureOptions options = measure_options();
  if (g_quick) {
    options.warmup = SimTime::seconds(2.0);
    options.measure = SimTime::seconds(8.0);
  } else {
    options.warmup = SimTime::seconds(5.0);
    options.measure = SimTime::seconds(20.0);
  }
  options.shards = shards;
  workload::ObservedPoint observed =
      workload::measure_point_retained(factory, scaled(offered_full), options);
  EngineRun run;
  run.shards = shards;
  run.wall_seconds = observed.point.wall_seconds;
  for (std::size_t i = 0; i < observed.bed->shard_count(); ++i) {
    run.per_shard_executed.push_back(
        observed.bed->shards().shard(i).executed_count());
  }
  RunRecord record = full_record(observed.point, "perf_parallel");
  record.wall_seconds = 0.0;
  run.digest = Md5::hex(record.to_json().dump());
  return run;
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      g_quick = true;
      for (int j = i; j + 1 < argc; ++j) argv[j] = argv[j + 1];
      --argc;
      break;
    }
  }
  svk::bench::initialize(&argc, argv);

  print_header("perf_parallel",
               "sharded-engine wall-clock speedup + digest parity gate");

  const workload::BedFactory factory = wide_fork_factory();
  // Just under the stateless balancer's saturation: every exit carries
  // ~1/16 of the load, so the shards stay busy without overload noise.
  const double offered_full = 11000.0;

  std::vector<EngineRun> runs;
  for (const std::size_t shards : {std::size_t{1}, std::size_t{2},
                                   std::size_t{4}}) {
    runs.push_back(run_engine(factory, offered_full, shards));
    const EngineRun& run = runs.back();
    std::uint64_t total = 0, max_shard = 0;
    for (const std::uint64_t executed : run.per_shard_executed) {
      total += executed;
      max_shard = std::max(max_shard, executed);
    }
    std::printf("shards=%zu : %8.2f s wall-clock  digest %s  "
                "balance %.2f (ideal %.2f)\n",
                run.shards, run.wall_seconds, run.digest.c_str(),
                max_shard > 0 ? static_cast<double>(total) /
                                    static_cast<double>(max_shard)
                              : 0.0,
                static_cast<double>(run.shards));
  }

  const EngineRun& serial = runs.front();
  bool parity_ok = true;
  for (const EngineRun& run : runs) {
    if (run.digest != serial.digest) {
      parity_ok = false;
      std::printf("digest gate   : shards=%zu DIVERGES from serial\n",
                  run.shards);
    }
  }
  if (parity_ok) {
    std::printf("digest gate   : all shard counts bit-identical -> ok\n");
  }

  const EngineRun& four = runs.back();
  const double speedup = four.wall_seconds > 0.0
                             ? serial.wall_seconds / four.wall_seconds
                             : 0.0;
  const unsigned cpus = std::thread::hardware_concurrency();
  const bool gate_applies = cpus >= kMinCpusForGate;
  const bool speedup_ok = speedup >= kSpeedupFloor;
  if (gate_applies) {
    std::printf("speedup gate  : %.2fx at 4 shards (min %.1fx) -> %s\n",
                speedup, kSpeedupFloor, speedup_ok ? "ok" : "FAIL");
  } else {
    std::printf("speedup gate  : %.2fx at 4 shards — skipped, host has "
                "%u cpu(s), need >= %u\n",
                speedup, cpus, kMinCpusForGate);
  }

  BenchReport report("perf_parallel");
  report.root()["quick"] = g_quick;
  report.add_metric("offered_cps", offered_full);
  report.add_metric("num_exits", kNumExits);
  report.add_metric("host_cpus", cpus);
  for (const EngineRun& run : runs) {
    const std::string prefix = "shards_" + std::to_string(run.shards);
    report.add_metric(prefix + "_wall_seconds", run.wall_seconds);
    report.root()["digests"][std::to_string(run.shards)] = run.digest;
    JsonValue executed = JsonValue::array();
    for (const std::uint64_t e : run.per_shard_executed) executed.push_back(e);
    report.root()["per_shard_executed"][std::to_string(run.shards)] =
        std::move(executed);
  }
  report.add_metric("speedup_4_shards", speedup);
  report.root()["digest_parity_pass"] = parity_ok;
  report.root()["speedup_gate_applies"] = gate_applies;
  report.root()["speedup_gate_pass"] = !gate_applies || speedup_ok;
  report.write();

  return parity_ok && (!gate_applies || speedup_ok) ? 0 : 1;
}
