// Section 4.1 (text) — LP optima for the paper's topologies, solved with
// the from-scratch simplex on the exact formulation. Also micro-benchmarks
// the solver itself.
//
// Paper anchors: two-in-series optimum 11240 cps (5620 stateful at each
// node); the Figure 7 LP prediction at the 80/20 mix is 11960 cps (with the
// published thresholds 10360/12300 the exact optimum is 11856; the paper's
// value implies slightly different thresholds were used — see
// EXPERIMENTS.md).
#include "bench_util.hpp"
#include "lp/state_model.hpp"

namespace {

using namespace svk;
using namespace svk::bench;
using lp::StateDistributionModel;

constexpr double kTsf = 10360.0;
constexpr double kTsl = 12300.0;

StateDistributionModel series_model(int n) {
  StateDistributionModel model;
  std::vector<lp::NodeIndex> nodes;
  for (int i = 0; i < n; ++i) {
    nodes.push_back(model.add_node("s" + std::to_string(i), kTsf, kTsl));
  }
  for (int i = 0; i + 1 < n; ++i) model.add_edge(nodes[i], nodes[i + 1]);
  model.mark_entry(nodes.front());
  model.mark_exit(nodes.back());
  return model;
}

StateDistributionModel mix_model(double external_fraction) {
  StateDistributionModel model;
  const auto s1 = model.add_node("s1", kTsf, kTsl);
  const auto s2 = model.add_node("s2", kTsf, kTsl);
  model.add_edge(s1, s2);
  model.mark_entry(s1);
  model.mark_exit(s1);
  model.mark_exit(s2);
  model.fix_exit_split(s1, 1.0 - external_fraction);
  model.fix_split(s1, s2, external_fraction);
  return model;
}

double g_two_series = 0.0;
double g_two_series_sf1 = 0.0;
double g_three_series = 0.0;
double g_mix80 = 0.0;
double g_fork = 0.0;

void BM_Lp_TwoSeries(benchmark::State& state) {
  for (auto _ : state) {
    const auto model = series_model(2);
    const auto result = model.solve();
    benchmark::DoNotOptimize(result.max_throughput);
    g_two_series = result.max_throughput;
    g_two_series_sf1 = result.node_stateful[0];
  }
}
BENCHMARK(BM_Lp_TwoSeries)->Unit(benchmark::kMicrosecond);

void BM_Lp_ThreeSeries(benchmark::State& state) {
  for (auto _ : state) {
    const auto result = series_model(3).solve();
    benchmark::DoNotOptimize(result.max_throughput);
    g_three_series = result.max_throughput;
  }
}
BENCHMARK(BM_Lp_ThreeSeries)->Unit(benchmark::kMicrosecond);

void BM_Lp_Mix80(benchmark::State& state) {
  for (auto _ : state) {
    const auto result = mix_model(0.8).solve();
    benchmark::DoNotOptimize(result.max_throughput);
    g_mix80 = result.max_throughput;
  }
}
BENCHMARK(BM_Lp_Mix80)->Unit(benchmark::kMicrosecond);

void BM_Lp_Fork(benchmark::State& state) {
  for (auto _ : state) {
    StateDistributionModel model;
    const auto s0 = model.add_node("s0", kTsf, kTsl);
    const auto sa = model.add_node("sa", kTsf, kTsl);
    const auto sb = model.add_node("sb", kTsf, kTsl);
    model.add_edge(s0, sa);
    model.add_edge(s0, sb);
    model.mark_entry(s0);
    model.mark_exit(sa);
    model.mark_exit(sb);
    model.fix_split(s0, sa, 0.5);
    model.fix_split(s0, sb, 0.5);
    const auto result = model.solve();
    benchmark::DoNotOptimize(result.max_throughput);
    g_fork = result.max_throughput;
  }
}
BENCHMARK(BM_Lp_Fork)->Unit(benchmark::kMicrosecond);

/// Solver scaling with chain length.
void BM_Lp_SeriesScaling(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    const auto result = series_model(n).solve();
    benchmark::DoNotOptimize(result.max_throughput);
  }
}
BENCHMARK(BM_Lp_SeriesScaling)->DenseRange(2, 10, 2)
    ->Unit(benchmark::kMicrosecond);

void print_summary() {
  print_header("LP optima (Section 4.1)",
               "state-distribution LP solved exactly");
  std::printf("\npaper vs computed (cps):\n");
  print_paper_row("two in series, optimum", 11240.0, g_two_series);
  print_paper_row("two in series, stateful at node 1", 5620.0,
                  g_two_series_sf1);
  print_paper_row("80/20 mix LP prediction", 11960.0, g_mix80);
  std::printf("  three in series, optimum:  %.0f cps\n", g_three_series);
  std::printf("  50/50 fork, optimum:       %.0f cps"
              " (entry stays stateless)\n", g_fork);
}

void write_json() {
  BenchReport report("tbl_lp_optima");
  report.add_metric("two_series_optimum_cps", g_two_series);
  report.add_metric("two_series_stateful_node1_cps", g_two_series_sf1);
  report.add_metric("three_series_optimum_cps", g_three_series);
  report.add_metric("mix80_optimum_cps", g_mix80);
  report.add_metric("fork_optimum_cps", g_fork);
  report.add_metric("paper_two_series_optimum_cps", 11240.0);
  report.add_metric("paper_mix80_optimum_cps", 11960.0);
  report.write();
}

}  // namespace

int main(int argc, char** argv) {
  svk::bench::initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  print_summary();
  write_json();
  return 0;
}
