// Section 6.1 (text) — three servers in series: static 8780 cps vs
// SERvartuka 10180 cps, a 16% improvement.
#include "bench_util.hpp"
#include "lp/state_model.hpp"

namespace {

using namespace svk;
using namespace svk::bench;
using workload::PolicyKind;

double g_static = 0.0;
double g_dynamic = 0.0;

double find_sat(PolicyKind policy) {
  const auto factory = workload::series_chain(3, scenario(policy));
  return find_saturation_full(factory, 7000.0, 13000.0, 500.0);
}

void BM_ThreeSeries_Static(benchmark::State& state) {
  for (auto _ : state) g_static = find_sat(PolicyKind::kStaticAllStateful);
  state.counters["saturation_cps"] = g_static;
}
BENCHMARK(BM_ThreeSeries_Static)->Iterations(1)
    ->Unit(benchmark::kMillisecond);

void BM_ThreeSeries_Servartuka(benchmark::State& state) {
  for (auto _ : state) g_dynamic = find_sat(PolicyKind::kServartuka);
  state.counters["saturation_cps"] = g_dynamic;
}
BENCHMARK(BM_ThreeSeries_Servartuka)->Iterations(1)
    ->Unit(benchmark::kMillisecond);

void print_summary() {
  print_header("Three servers in series (Section 6.1)",
               "static vs SERvartuka saturation");

  lp::StateDistributionModel model;
  const auto s1 = model.add_node("s1", 10360.0, 12300.0);
  const auto s2 = model.add_node("s2", 10360.0, 12300.0);
  const auto s3 = model.add_node("s3", 10360.0, 12300.0);
  model.add_edge(s1, s2);
  model.add_edge(s2, s3);
  model.mark_entry(s1);
  model.mark_exit(s3);
  const auto lp_result = model.solve();

  std::printf("\npaper vs measured (saturation, cps):\n");
  print_paper_row("static configuration", 8780.0, g_static);
  print_paper_row("SERvartuka", 10180.0, g_dynamic);
  std::printf("  LP upper bound: %.0f cps\n", lp_result.max_throughput);
  std::printf("\nimprovement: paper +16%%, measured %+.0f%%\n",
              100.0 * (g_dynamic / g_static - 1.0));
}

void write_json() {
  BenchReport report("tbl_three_series");
  // With --trace= / --metrics=: one observed SERvartuka run near the
  // paper's saturation point, exporting trace + controller audit series.
  run_traced_smoke(report,
                   workload::series_chain(3, scenario(PolicyKind::kServartuka)),
                   10000.0);
  report.add_metric("static_saturation_cps", g_static);
  report.add_metric("servartuka_saturation_cps", g_dynamic);
  report.add_metric("paper_static_saturation_cps", 8780.0);
  report.add_metric("paper_servartuka_saturation_cps", 10180.0);
  report.write();
}

}  // namespace

int main(int argc, char** argv) {
  svk::bench::initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  print_summary();
  write_json();
  return 0;
}
