// Shared benchmark harness utilities.
//
// Every bench binary regenerates one table or figure of the paper: it runs
// the simulated topologies at 1/10 of the calibrated capacity (linear
// scaling is verified by CostModelTest.SaturationScalesWithCapacity and the
// workload tests), converts results back to full-scale calls/second, and
// prints a paper-vs-measured summary after the google-benchmark runs.
#pragma once

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "workload/runner.hpp"
#include "workload/scenarios.hpp"

namespace svk::bench {

/// Simulation scale: capacities (and hence rates) at 1/10 of calibration.
inline constexpr double kScale = 0.1;

/// Converts a measured (scaled) rate to full-scale calls/second.
[[nodiscard]] inline double full(double scaled_cps) {
  return scaled_cps / kScale;
}
/// Converts a full-scale rate to the scaled simulation units.
[[nodiscard]] inline double scaled(double full_cps) {
  return full_cps * kScale;
}

[[nodiscard]] inline workload::ScenarioOptions scenario(
    workload::PolicyKind policy, int max_proxies = 4) {
  workload::ScenarioOptions options;
  options.policy = policy;
  options.capacity_scale.assign(max_proxies, kScale);
  options.controller_period = SimTime::seconds(1.0);  // the paper's window
  return options;
}

[[nodiscard]] inline workload::MeasureOptions measure_options() {
  workload::MeasureOptions options;
  options.warmup = SimTime::seconds(10.0);  // controller convergence
  options.measure = SimTime::seconds(10.0);
  return options;
}

/// One plotted series: (offered, value) in full-scale units.
struct Series {
  std::string name;
  std::vector<std::pair<double, double>> points;
  double max_value = 0.0;
};

[[nodiscard]] inline Series run_throughput_series(
    const std::string& name, const workload::BedFactory& factory,
    double lo_full, double hi_full, double step_full) {
  Series series;
  series.name = name;
  const auto sweep = workload::sweep(factory, scaled(lo_full),
                                     scaled(hi_full), scaled(step_full),
                                     measure_options());
  for (const auto& point : sweep.points) {
    series.points.emplace_back(full(point.offered_cps),
                               full(point.throughput_cps));
  }
  series.max_value = full(sweep.max_throughput_cps);
  return series;
}

inline void print_series_table(const char* title, const char* y_label,
                               const std::vector<Series>& series) {
  std::printf("\n%s\n", title);
  std::printf("%-14s", "offered(cps)");
  for (const Series& s : series) std::printf(" %18s", s.name.c_str());
  std::printf("\n");
  // Assume aligned x-grids (same sweep parameters).
  const std::size_t rows = series.empty() ? 0 : series.front().points.size();
  for (std::size_t i = 0; i < rows; ++i) {
    std::printf("%-14.0f", series.front().points[i].first);
    for (const Series& s : series) {
      if (i < s.points.size()) {
        std::printf(" %18.0f", s.points[i].second);
      } else {
        std::printf(" %18s", "-");
      }
    }
    std::printf("\n");
  }
  std::printf("(%s)\n", y_label);
}

/// Renders series as an ASCII scatter plot (one glyph per series), so the
/// bench output visually mirrors the paper's figure.
inline void print_ascii_chart(const char* title,
                              const std::vector<Series>& series,
                              int width = 68, int height = 20) {
  if (series.empty() || series.front().points.empty()) return;
  double x_min = 1e300, x_max = -1e300, y_min = 0.0, y_max = -1e300;
  for (const Series& s : series) {
    for (const auto& [x, y] : s.points) {
      x_min = std::min(x_min, x);
      x_max = std::max(x_max, x);
      y_max = std::max(y_max, y);
    }
  }
  if (x_max <= x_min || y_max <= y_min) return;
  y_max *= 1.05;

  static constexpr char kGlyphs[] = {'*', 'o', '+', 'x', '#'};
  std::vector<std::string> grid(height, std::string(width, ' '));
  for (std::size_t si = 0; si < series.size(); ++si) {
    const char glyph = kGlyphs[si % sizeof(kGlyphs)];
    for (const auto& [x, y] : series[si].points) {
      const int col = static_cast<int>((x - x_min) / (x_max - x_min) *
                                       (width - 1));
      const int row = static_cast<int>((y - y_min) / (y_max - y_min) *
                                       (height - 1));
      const int r = height - 1 - std::clamp(row, 0, height - 1);
      grid[r][std::clamp(col, 0, width - 1)] = glyph;
    }
  }

  std::printf("\n%s\n", title);
  for (int r = 0; r < height; ++r) {
    const double y_label =
        y_min + (y_max - y_min) * (height - 1 - r) / (height - 1);
    std::printf("%9.0f |%s\n", y_label, grid[r].c_str());
  }
  std::printf("%9s +%s\n", "", std::string(width, '-').c_str());
  std::printf("%9s  %-10.0f%*.0f\n", "", x_min, width - 10, x_max);
  std::printf("%9s  legend:", "");
  for (std::size_t si = 0; si < series.size(); ++si) {
    std::printf("  %c %s", kGlyphs[si % sizeof(kGlyphs)],
                series[si].name.c_str());
  }
  std::printf("\n");
}

inline void print_paper_row(const char* metric, double paper,
                            double measured) {
  const double ratio = paper != 0.0 ? measured / paper : 0.0;
  std::printf("  %-46s paper %10.0f   measured %10.0f   (x%.2f)\n", metric,
              paper, measured, ratio);
}

inline void print_header(const char* figure, const char* description) {
  std::printf("\n==============================================================\n");
  std::printf("%s — %s\n", figure, description);
  std::printf("==============================================================\n");
}

}  // namespace svk::bench
