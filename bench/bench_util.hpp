// Shared benchmark harness utilities.
//
// Every bench binary regenerates one table or figure of the paper: it runs
// the simulated topologies at 1/10 of the calibrated capacity (linear
// scaling is verified by CostModelTest.SaturationScalesWithCapacity and the
// workload tests), converts results back to full-scale calls/second, and
// prints a paper-vs-measured summary after the google-benchmark runs.
#pragma once

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/json.hpp"
#include "common/run_record.hpp"
#include "common/thread_pool.hpp"
#include "fault/fault_plan.hpp"
#include "workload/runner.hpp"
#include "workload/scenarios.hpp"

namespace svk::bench {

/// Worker threads for the parallel sweep runner: 0 means "hardware
/// concurrency". Set by --threads=N (stripped before google-benchmark sees
/// the flags) or the SVK_BENCH_THREADS environment variable.
inline std::size_t g_threads = 0;

/// Resolved thread count actually used by the runner.
[[nodiscard]] inline std::size_t effective_threads() {
  return g_threads != 0 ? g_threads : ThreadPool::default_threads();
}

/// Chrome trace output path (empty = tracing off). Set by --trace=<file>
/// or the SVK_TRACE environment variable.
inline std::string g_trace_path;

/// Metrics dump path (empty = off). Set by --metrics=<file> or SVK_METRICS.
inline std::string g_metrics_path;

/// Fault plan file (empty = fault-free). Set by --faults=<file> or the
/// SVK_FAULTS environment variable; the plan is armed on every scenario the
/// bench builds, so any figure can be reproduced under a fault schedule.
inline std::string g_faults_path;

/// Shared bench entry point: parses/strips the harness's own flags, then
/// hands the rest to google-benchmark.
inline void initialize(int* argc, char** argv) {
  if (const char* env = std::getenv("SVK_BENCH_THREADS")) {
    g_threads = static_cast<std::size_t>(std::strtoul(env, nullptr, 10));
  }
  if (const char* env = std::getenv("SVK_TRACE")) g_trace_path = env;
  if (const char* env = std::getenv("SVK_METRICS")) g_metrics_path = env;
  if (const char* env = std::getenv("SVK_FAULTS")) g_faults_path = env;
  int kept = 1;
  for (int i = 1; i < *argc; ++i) {
    const std::string_view arg = argv[i];
    constexpr std::string_view kThreadsFlag = "--threads=";
    constexpr std::string_view kTraceFlag = "--trace=";
    constexpr std::string_view kMetricsFlag = "--metrics=";
    constexpr std::string_view kFaultsFlag = "--faults=";
    if (arg.rfind(kFaultsFlag, 0) == 0) {
      g_faults_path = std::string(arg.substr(kFaultsFlag.size()));
      continue;
    }
    if (arg.rfind(kThreadsFlag, 0) == 0) {
      g_threads = static_cast<std::size_t>(
          std::strtoul(arg.substr(kThreadsFlag.size()).data(), nullptr, 10));
      continue;
    }
    if (arg.rfind(kTraceFlag, 0) == 0) {
      g_trace_path = std::string(arg.substr(kTraceFlag.size()));
      continue;
    }
    if (arg.rfind(kMetricsFlag, 0) == 0) {
      g_metrics_path = std::string(arg.substr(kMetricsFlag.size()));
      continue;
    }
    argv[kept++] = argv[i];
  }
  *argc = kept;
  benchmark::Initialize(argc, argv);
}

/// True when the user asked for a trace or metrics dump.
[[nodiscard]] inline bool observability_requested() {
  return !g_trace_path.empty() || !g_metrics_path.empty();
}

/// Simulation scale: capacities (and hence rates) at 1/10 of calibration.
inline constexpr double kScale = 0.1;

/// Converts a measured (scaled) rate to full-scale calls/second.
[[nodiscard]] inline double full(double scaled_cps) {
  return scaled_cps / kScale;
}
/// Converts a full-scale rate to the scaled simulation units.
[[nodiscard]] inline double scaled(double full_cps) {
  return full_cps * kScale;
}

/// Loads g_faults_path into `options.faults`. Exits on a malformed plan so
/// a typo'd file cannot silently run fault-free.
inline void apply_cli_faults(workload::ScenarioOptions& options) {
  if (g_faults_path.empty()) return;
  std::string error;
  auto plan = fault::FaultPlan::load_file(g_faults_path, &error);
  if (!plan) {
    std::fprintf(stderr, "failed to load fault plan %s: %s\n",
                 g_faults_path.c_str(), error.c_str());
    std::exit(1);
  }
  options.faults = std::move(*plan);
}

[[nodiscard]] inline workload::ScenarioOptions scenario(
    workload::PolicyKind policy, int max_proxies = 4) {
  workload::ScenarioOptions options;
  options.policy = policy;
  options.capacity_scale.assign(max_proxies, kScale);
  options.controller_period = SimTime::seconds(1.0);  // the paper's window
  apply_cli_faults(options);
  return options;
}

[[nodiscard]] inline workload::MeasureOptions measure_options() {
  workload::MeasureOptions options;
  options.warmup = SimTime::seconds(10.0);  // controller convergence
  options.measure = SimTime::seconds(10.0);
  return options;
}

/// One plotted series: (offered, value) in full-scale units, plus the full
/// measured records behind the plot for the JSON report.
struct Series {
  std::string name;
  std::vector<std::pair<double, double>> points;
  double max_value = 0.0;
  std::vector<RunRecord> records;
};

/// Converts a measured (scaled) point to a full-scale record.
[[nodiscard]] inline RunRecord full_record(const workload::PointResult& point,
                                           std::string label = {}) {
  return workload::to_run_record(point, 1.0 / kScale, std::move(label));
}

/// Runs a load sweep through the parallel runner and extracts the
/// throughput series (full-scale). The measured values are bit-identical
/// to the serial runner's; only wall-clock changes.
[[nodiscard]] inline Series run_throughput_series(
    const std::string& name, const workload::BedFactory& factory,
    double lo_full, double hi_full, double step_full) {
  Series series;
  series.name = name;
  const auto sweep = workload::run_sweep_parallel(
      factory, scaled(lo_full), scaled(hi_full), scaled(step_full),
      measure_options(), g_threads);
  for (const auto& point : sweep.points) {
    series.points.emplace_back(full(point.offered_cps),
                               full(point.throughput_cps));
    series.records.push_back(full_record(point, name));
  }
  series.max_value = full(sweep.max_throughput_cps);
  return series;
}

/// Parallel saturation search in full-scale units.
[[nodiscard]] inline double find_saturation_full(
    const workload::BedFactory& factory, double lo_full, double hi_full,
    double step_full,
    const workload::MeasureOptions& options = measure_options()) {
  return full(workload::find_saturation_parallel(
      factory, scaled(lo_full), scaled(hi_full), scaled(step_full), options,
      g_threads));
}

inline void print_series_table(const char* title, const char* y_label,
                               const std::vector<Series>& series) {
  std::printf("\n%s\n", title);
  std::printf("%-14s", "offered(cps)");
  for (const Series& s : series) std::printf(" %18s", s.name.c_str());
  std::printf("\n");
  // Assume aligned x-grids (same sweep parameters).
  const std::size_t rows = series.empty() ? 0 : series.front().points.size();
  for (std::size_t i = 0; i < rows; ++i) {
    std::printf("%-14.0f", series.front().points[i].first);
    for (const Series& s : series) {
      if (i < s.points.size()) {
        std::printf(" %18.0f", s.points[i].second);
      } else {
        std::printf(" %18s", "-");
      }
    }
    std::printf("\n");
  }
  std::printf("(%s)\n", y_label);
}

/// Renders series as an ASCII scatter plot (one glyph per series), so the
/// bench output visually mirrors the paper's figure.
inline void print_ascii_chart(const char* title,
                              const std::vector<Series>& series,
                              int width = 68, int height = 20) {
  if (series.empty() || series.front().points.empty()) return;
  double x_min = 1e300, x_max = -1e300, y_min = 0.0, y_max = -1e300;
  for (const Series& s : series) {
    for (const auto& [x, y] : s.points) {
      x_min = std::min(x_min, x);
      x_max = std::max(x_max, x);
      y_max = std::max(y_max, y);
    }
  }
  if (x_max <= x_min || y_max <= y_min) return;
  y_max *= 1.05;

  static constexpr char kGlyphs[] = {'*', 'o', '+', 'x', '#'};
  std::vector<std::string> grid(height, std::string(width, ' '));
  for (std::size_t si = 0; si < series.size(); ++si) {
    const char glyph = kGlyphs[si % sizeof(kGlyphs)];
    for (const auto& [x, y] : series[si].points) {
      const int col = static_cast<int>((x - x_min) / (x_max - x_min) *
                                       (width - 1));
      const int row = static_cast<int>((y - y_min) / (y_max - y_min) *
                                       (height - 1));
      const int r = height - 1 - std::clamp(row, 0, height - 1);
      grid[r][std::clamp(col, 0, width - 1)] = glyph;
    }
  }

  std::printf("\n%s\n", title);
  for (int r = 0; r < height; ++r) {
    const double y_label =
        y_min + (y_max - y_min) * (height - 1 - r) / (height - 1);
    std::printf("%9.0f |%s\n", y_label, grid[r].c_str());
  }
  std::printf("%9s +%s\n", "", std::string(width, '-').c_str());
  std::printf("%9s  %-10.0f%*.0f\n", "", x_min, width - 10, x_max);
  std::printf("%9s  legend:", "");
  for (std::size_t si = 0; si < series.size(); ++si) {
    std::printf("  %c %s", kGlyphs[si % sizeof(kGlyphs)],
                series[si].name.c_str());
  }
  std::printf("\n");
}

inline void print_paper_row(const char* metric, double paper,
                            double measured) {
  const double ratio = paper != 0.0 ? measured / paper : 0.0;
  std::printf("  %-46s paper %10.0f   measured %10.0f   (x%.2f)\n", metric,
              paper, measured, ratio);
}

inline void print_header(const char* figure, const char* description) {
  std::printf("\n==============================================================\n");
  std::printf("%s — %s\n", figure, description);
  std::printf("==============================================================\n");
}

/// Where BENCH_<name>.json files land: $SVK_BENCH_JSON_DIR when set,
/// otherwise the repo root (baked in at configure time), otherwise the
/// current directory.
[[nodiscard]] inline std::string json_output_dir() {
  if (const char* env = std::getenv("SVK_BENCH_JSON_DIR")) return env;
#ifdef SVK_REPO_ROOT
  return SVK_REPO_ROOT;
#else
  return ".";
#endif
}

/// Machine-readable bench results. Every bench binary fills one of these
/// alongside its stdout tables and writes BENCH_<name>.json (schema in
/// EXPERIMENTS.md). All rates are full-scale calls/second.
class BenchReport {
 public:
  explicit BenchReport(std::string name) : name_(std::move(name)) {
    root_ = JsonValue::object();
    root_["bench"] = name_;
    root_["schema_version"] = 1;
    root_["scale"] = kScale;
    root_["threads"] = static_cast<std::uint64_t>(effective_threads());
    root_["units"] = "full-scale calls/second";
  }

  /// Free-form access for bench-specific payloads.
  [[nodiscard]] JsonValue& root() { return root_; }

  /// Adds a sweep series with its full per-point records.
  void add_series(const Series& series) {
    JsonValue entry = JsonValue::object();
    entry["name"] = series.name;
    entry["max_value"] = series.max_value;
    JsonValue& points = entry["points"];
    points = JsonValue::array();
    if (!series.records.empty()) {
      for (const RunRecord& record : series.records) {
        points.push_back(record.to_json());
      }
    } else {
      for (const auto& [x, y] : series.points) {
        JsonValue p = JsonValue::object();
        p["x"] = x;
        p["y"] = y;
        points.push_back(std::move(p));
      }
    }
    root_["series"].push_back(std::move(entry));
  }

  /// Adds one scalar result (saturation points, paper anchors, ...).
  void add_metric(std::string_view key, double value) {
    root_["metrics"][key] = value;
  }

  /// Writes BENCH_<name>.json; prints where it went (or that it failed).
  void write() {
    const std::string path =
        json_output_dir() + "/BENCH_" + name_ + ".json";
    if (root_.write_file(path)) {
      std::printf("\nresults written to %s\n", path.c_str());
    } else {
      std::fprintf(stderr, "\nfailed to write %s\n", path.c_str());
    }
  }

 private:
  std::string name_;
  JsonValue root_;
};

/// When --trace=/--metrics= (or SVK_TRACE/SVK_METRICS) was given: runs one
/// extra observed load point at `offered_full` (full-scale cps), writes the
/// Chrome trace / metrics dump, and embeds the point — including its
/// per-window controller audit series — under "traced_smoke" in the report.
/// No-op when neither output was requested, so the regular (untraced) bench
/// results are never affected.
inline void run_traced_smoke(BenchReport& report,
                             const workload::BedFactory& factory,
                             double offered_full) {
  if (!observability_requested()) return;
  workload::MeasureOptions options = measure_options();
  options.observe = true;
  workload::ObservedPoint observed =
      workload::measure_point_retained(factory, scaled(offered_full), options);
  obs::Observability* obs = observed.bed->observability();

  JsonValue smoke = JsonValue::object();
  smoke["offered_cps"] = offered_full;
  smoke["point"] = full_record(observed.point, "traced_smoke").to_json();
  if (obs != nullptr && obs->tracer() != nullptr && !g_trace_path.empty()) {
    if (obs->tracer()->write_chrome_trace(g_trace_path)) {
      std::printf("trace written to %s (%zu events, %llu dropped)\n",
                  g_trace_path.c_str(), obs->tracer()->events().size(),
                  static_cast<unsigned long long>(obs->tracer()->dropped()));
      smoke["trace_file"] = g_trace_path;
    } else {
      std::fprintf(stderr, "failed to write trace %s\n",
                   g_trace_path.c_str());
    }
  }
  if (obs != nullptr && obs->metrics() != nullptr &&
      !g_metrics_path.empty()) {
    if (obs->metrics()->to_json().write_file(g_metrics_path)) {
      std::printf("metrics written to %s\n", g_metrics_path.c_str());
      smoke["metrics_file"] = g_metrics_path;
    } else {
      std::fprintf(stderr, "failed to write metrics %s\n",
                   g_metrics_path.c_str());
    }
  }
  report.root()["traced_smoke"] = std::move(smoke);
}

}  // namespace svk::bench
