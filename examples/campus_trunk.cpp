// Campus + trunk — the paper's motivating deployment (Section 6.1.2):
// users in cc.gatech.edu call both internal users (one proxy hop) and
// external ones (through the campus proxy *and* the trunk proxy). The mix
// shifts over the day; SERvartuka re-balances state without operator
// action, while a static configuration must be provisioned for one mix.
//
//   $ ./campus_trunk [external_fraction]
//
// Prints the static vs dynamic saturation at the given mix and the LP
// capacity bound.
#include <cstdio>
#include <cstdlib>

#include "lp/state_model.hpp"
#include "workload/runner.hpp"
#include "workload/scenarios.hpp"

using namespace svk;

namespace {

// Examples run at 1/10 of the calibrated capacity and report full-scale
// equivalents (scaling is linear; see EXPERIMENTS.md), so a demo finishes
// in seconds.
constexpr double kScale = 0.1;

double saturation(workload::PolicyKind policy, double external_fraction) {
  workload::ScenarioOptions options;
  options.policy = policy;
  options.capacity_scale = {kScale, kScale};
  const auto factory =
      workload::two_series_with_internal(external_fraction, options);
  workload::MeasureOptions measure;
  measure.warmup = SimTime::seconds(10.0);
  measure.measure = SimTime::seconds(8.0);
  return workload::find_saturation(factory, kScale * 8000.0,
                                   kScale * 13000.0, kScale * 500.0,
                                   measure) /
         kScale;
}

}  // namespace

int main(int argc, char** argv) {
  const double external = argc > 1 ? std::atof(argv[1]) : 0.8;
  std::printf("campus_trunk: %.0f%% of calls leave the campus (two hops),"
              " %.0f%% stay internal\n",
              100.0 * external, 100.0 * (1.0 - external));

  // LP capacity planning for this mix (Section 4.1 formulation).
  lp::StateDistributionModel model;
  const auto campus = model.add_node("campus", 10360.0, 12300.0);
  const auto trunk = model.add_node("trunk", 10360.0, 12300.0);
  model.add_edge(campus, trunk);
  model.mark_entry(campus);
  model.mark_exit(campus);  // internal calls terminate at the campus proxy
  model.mark_exit(trunk);
  model.fix_exit_split(campus, 1.0 - external);
  model.fix_split(campus, trunk, external);
  const auto lp = model.solve();
  std::printf("\n  LP bound: %.0f cps (campus keeps %.0f cps of state,"
              " trunk %.0f)\n",
              lp.max_throughput, lp.node_stateful[campus],
              lp.node_stateful[trunk]);

  std::printf("\n  measuring static (both proxies stateful)...\n");
  const double static_sat =
      saturation(workload::PolicyKind::kStaticAllStateful, external);
  std::printf("  measuring SERvartuka...\n");
  const double dynamic_sat =
      saturation(workload::PolicyKind::kServartuka, external);

  std::printf("\n  static configuration: %8.0f cps\n", static_sat);
  std::printf("  SERvartuka:           %8.0f cps  (%+.0f%%)\n", dynamic_sat,
              100.0 * (dynamic_sat / static_sat - 1.0));
  std::printf("\nRe-run with a different fraction to see the operator-free"
              " adaptation,\ne.g. ./campus_trunk 0.2\n");
  return 0;
}
