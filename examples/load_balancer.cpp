// Load balancer — the paper's Figure 8 topology as an operations story:
// an entry proxy forks calls across two exit proxies. With homogeneous
// servers the textbook static configuration (entry stateless, exits
// stateful) is optimal and SERvartuka matches it; make the entry bigger or
// skew the split and the static choice goes stale while SERvartuka adapts.
//
//   $ ./load_balancer [entry_capacity_multiplier] [split_to_upper]
#include <cstdio>
#include <cstdlib>

#include "workload/runner.hpp"
#include "workload/scenarios.hpp"

using namespace svk;

namespace {

// Examples run at 1/10 of the calibrated capacity and report full-scale
// equivalents (scaling is linear; see EXPERIMENTS.md), so a demo finishes
// in seconds.
constexpr double kScale = 0.1;

double saturation(workload::PolicyKind policy, double entry_scale,
                  double split) {
  workload::ScenarioOptions options;
  options.policy = policy;
  options.capacity_scale = {kScale * entry_scale, kScale, kScale};
  const auto factory = workload::parallel_fork(options, split);
  workload::MeasureOptions measure;
  measure.warmup = SimTime::seconds(10.0);
  measure.measure = SimTime::seconds(8.0);
  const double hi = kScale * (14000.0 + 12000.0 * (entry_scale - 1.0));
  return workload::find_saturation(factory, kScale * 9000.0, hi,
                                   kScale * 1000.0, measure) /
         kScale;
}

}  // namespace

int main(int argc, char** argv) {
  const double entry_scale = argc > 1 ? std::atof(argv[1]) : 1.0;
  const double split = argc > 2 ? std::atof(argv[2]) : 0.5;
  std::printf("load_balancer: entry %gx capacity, %.0f/%.0f split\n",
              entry_scale, 100.0 * split, 100.0 * (1.0 - split));

  std::printf("\n  measuring static standard (entry stateless, exits"
              " stateful)...\n");
  const double static_sat = saturation(
      workload::PolicyKind::kStaticChainLastStateful, entry_scale, split);
  std::printf("  measuring SERvartuka...\n");
  const double dynamic_sat =
      saturation(workload::PolicyKind::kServartuka, entry_scale, split);

  std::printf("\n  static standard: %8.0f cps\n", static_sat);
  std::printf("  SERvartuka:      %8.0f cps  (%+.0f%%)\n", dynamic_sat,
              100.0 * (dynamic_sat / static_sat - 1.0));
  if (entry_scale == 1.0 && split == 0.5) {
    std::printf("\nHomogeneous 50/50: the static standard is already"
                " optimal (the paper's LP\nsays so too) — expect parity."
                " Try ./load_balancer 3 0.5 or ./load_balancer 1 0.7\n");
  }
  return 0;
}
