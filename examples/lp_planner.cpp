// LP capacity planner — use the Section 4.1 optimization formulation as a
// standalone what-if tool: describe a proxy topology on the command line
// and get the maximum stateful-coverage call rate plus the per-node state
// placement.
//
//   $ ./lp_planner chain 3
//   $ ./lp_planner chain 2 --tsf 10360 --tsl 12300
//   $ ./lp_planner fork 0.5
//   $ ./lp_planner mix 0.8
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "lp/state_model.hpp"

using namespace svk;

namespace {

void print_result(const lp::StateDistributionModel& model,
                  const lp::StateDistributionResult& result) {
  if (!result.optimal()) {
    std::printf("no optimal solution (infeasible or unbounded topology)\n");
    return;
  }
  std::printf("maximum stateful-coverage throughput: %.0f cps\n\n",
              result.max_throughput);
  std::printf("%-10s %14s %14s\n", "node", "load (cps)",
              "stateful (cps)");
  for (std::size_t n = 0; n < model.node_count(); ++n) {
    std::printf("%-10s %14.0f %14.0f\n", model.node_name(n).c_str(),
                result.node_load[n], result.node_stateful[n]);
  }
  std::printf("\nper-edge flows (fasf = stateful before the edge, sf ="
              " stateful at its tail,\nasf = still needing state):\n");
  for (const auto& edge : result.edges) {
    const std::string from = edge.from == static_cast<std::size_t>(-1)
                                 ? "(source)"
                                 : model.node_name(edge.from);
    const std::string to = edge.to == static_cast<std::size_t>(-1)
                               ? "(sink)"
                               : model.node_name(edge.to);
    if (edge.total() < 0.5) continue;
    std::printf("  %-10s -> %-10s  fasf %8.0f  sf %8.0f  asf %8.0f\n",
                from.c_str(), to.c_str(), edge.fasf, edge.sf, edge.asf);
  }
}

}  // namespace

int main(int argc, char** argv) {
  double t_sf = 10360.0;
  double t_sl = 12300.0;
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--tsf") == 0) t_sf = std::atof(argv[i + 1]);
    if (std::strcmp(argv[i], "--tsl") == 0) t_sl = std::atof(argv[i + 1]);
  }
  const std::string kind = argc > 1 ? argv[1] : "chain";
  const double arg = argc > 2 ? std::atof(argv[2]) : 2.0;

  lp::StateDistributionModel model;
  if (kind == "chain") {
    const int n = static_cast<int>(arg);
    std::vector<lp::NodeIndex> nodes;
    for (int i = 0; i < n; ++i) {
      nodes.push_back(model.add_node("s" + std::to_string(i), t_sf, t_sl));
    }
    for (int i = 0; i + 1 < n; ++i) model.add_edge(nodes[i], nodes[i + 1]);
    model.mark_entry(nodes.front());
    model.mark_exit(nodes.back());
    std::printf("planning a %d-proxy chain (T_SF=%.0f, T_SL=%.0f)\n\n", n,
                t_sf, t_sl);
  } else if (kind == "fork") {
    const double split = arg;
    const auto s0 = model.add_node("entry", t_sf, t_sl);
    const auto sa = model.add_node("upper", t_sf, t_sl);
    const auto sb = model.add_node("lower", t_sf, t_sl);
    model.add_edge(s0, sa);
    model.add_edge(s0, sb);
    model.mark_entry(s0);
    model.mark_exit(sa);
    model.mark_exit(sb);
    model.fix_split(s0, sa, split);
    model.fix_split(s0, sb, 1.0 - split);
    std::printf("planning a fork with %.0f/%.0f split\n\n", 100.0 * split,
                100.0 * (1.0 - split));
  } else if (kind == "mix") {
    const double external = arg;
    const auto s1 = model.add_node("campus", t_sf, t_sl);
    const auto s2 = model.add_node("trunk", t_sf, t_sl);
    model.add_edge(s1, s2);
    model.mark_entry(s1);
    model.mark_exit(s1);
    model.mark_exit(s2);
    model.fix_exit_split(s1, 1.0 - external);
    model.fix_split(s1, s2, external);
    std::printf("planning a campus/trunk pair, %.0f%% external traffic\n\n",
                100.0 * external);
  } else {
    std::printf("usage: lp_planner chain N | fork SPLIT | mix FRACTION"
                " [--tsf X] [--tsl Y]\n");
    return 1;
  }

  print_result(model, model.solve());
  return 0;
}
