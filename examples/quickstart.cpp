// Quickstart — build a two-proxy SERvartuka deployment, place calls
// through it, and read out the metrics the library exposes.
//
//   $ ./quickstart [offered_cps]
//
// Demonstrates the core public API: TestBed assembly (network, proxies,
// route tables, location service), the SERvartuka controller as the
// per-proxy state policy, UAC/UAS load generation, and the measurement
// runner.
#include <cstdio>
#include <cstdlib>
#include <memory>

#include "core/controller.hpp"
#include "workload/runner.hpp"
#include "workload/scenarios.hpp"

using namespace svk;

int main(int argc, char** argv) {
  // All rates here are full-scale calls/second on the calibrated node
  // model (stateful saturation ~10360 cps, stateless ~12300 cps).
  const double offered = argc > 1 ? std::atof(argv[1]) : 10800.0;

  // --- 1. Describe the deployment ----------------------------------------
  // Two proxies in series, each running the SERvartuka dynamic state
  // distribution controller with the paper's thresholds.
  workload::ScenarioOptions options;
  options.policy = workload::PolicyKind::kServartuka;
  options.t_sf_cps = 10360.0;
  options.t_sl_cps = 12300.0;
  options.controller_period = SimTime::seconds(1.0);

  const workload::BedFactory factory = workload::series_chain(2, options);

  // --- 2. Run one measured load point -------------------------------------
  workload::MeasureOptions measure;
  measure.warmup = SimTime::seconds(10.0);   // let Algorithm 2 converge
  measure.measure = SimTime::seconds(10.0);

  std::printf("quickstart: 2-proxy SERvartuka chain, offering %.0f cps...\n",
              offered);
  const workload::PointResult result =
      workload::measure_point(factory, offered, measure);

  // --- 3. Read the results -------------------------------------------------
  std::printf("\n  offered:        %8.0f cps\n", result.offered_cps);
  std::printf("  throughput:     %8.0f cps (completed at the UAS farm)\n",
              result.throughput_cps);
  std::printf("  setup time:     %8.1f ms mean, %.1f ms p90\n",
              result.setup_ms_mean, result.setup_ms_p90);
  std::printf("  failures:       %8llu (500 Server Busy: %llu)\n",
              static_cast<unsigned long long>(result.calls_failed),
              static_cast<unsigned long long>(result.busy_500));
  for (std::size_t i = 0; i < result.proxy_utilization.size(); ++i) {
    std::printf("  proxy%zu:         %7.1f%% CPU, %llu stateful / %llu"
                " stateless forwards\n",
                i, 100.0 * result.proxy_utilization[i],
                static_cast<unsigned long long>(result.proxy_stateful[i]),
                static_cast<unsigned long long>(result.proxy_stateless[i]));
  }

  // --- 4. Peek inside a live controller ------------------------------------
  // Build a bed directly (instead of through the runner) to inspect
  // internals while the simulation runs.
  auto bed = factory(offered);
  bed->start_load();
  // Drive the bed, not bed->sim(): with SVK_SIM_SHARDS set the bed runs
  // sharded, and sim() is only shard 0.
  bed->run_until(SimTime::seconds(8.0));
  const auto& entry =
      dynamic_cast<const core::Controller&>(bed->proxies()[0]->policy());
  std::printf("\n  entry controller after 8s: load %.0f req/s, feasible"
              " stateful budget %.0f req/s\n",
              entry.last_total_rate(), entry.last_budget_rate());
  for (std::size_t p = 0; p < entry.paths().size(); ++p) {
    const auto& path = entry.paths()[p];
    std::printf("    path %zu: %s, stateful fraction %.2f%s\n", p,
                path.delegable ? "delegable" : "exit", path.sf_fraction,
                path.overloaded ? " (downstream frozen)" : "");
  }
  return 0;
}
