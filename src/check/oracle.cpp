#include "check/oracle.hpp"

#include <algorithm>
#include <utility>

#include "txn/transaction.hpp"

namespace svk::check {
namespace {

using txn::ClientEvent;
using txn::ClientState;
using txn::ServerEvent;
using txn::ServerState;

const char* client_event_name(ClientEvent event) {
  switch (event) {
    case ClientEvent::kStart: return "start";
    case ClientEvent::kRxResponse: return "rx_response";
    case ClientEvent::kTimerRetransmit: return "timer_rtx";
    case ClientEvent::kTimerTimeout: return "timer_timeout";
    case ClientEvent::kTimerLinger: return "timer_linger";
  }
  return "?";
}

const char* server_event_name(ServerEvent event) {
  switch (event) {
    case ServerEvent::kRxRequest: return "rx_request";
    case ServerEvent::kRespond: return "respond";
    case ServerEvent::kTimerRetransmit: return "timer_rtx";
    case ServerEvent::kTimerTimeout: return "timer_timeout";
    case ServerEvent::kTimerLinger: return "timer_linger";
  }
  return "?";
}

}  // namespace

std::string TxnOracle::describe(const sip::TransactionKey& key) {
  std::string out = "txn(";
  out += std::string(sip::to_string(key.method));
  out += " branch=";
  out += key.branch;
  out += " sent_by=";
  out += key.sent_by;
  out += ")";
  return out;
}

std::string TxnOracle::describe(const Send& send) {
  if (send.is_request) {
    return "req:" + std::string(sip::to_string(send.method));
  }
  return "rsp:" + std::to_string(send.code);
}

std::string TxnOracle::describe(ClientState state) {
  switch (state) {
    case ClientState::kCalling: return "Calling";
    case ClientState::kTrying: return "Trying";
    case ClientState::kProceeding: return "Proceeding";
    case ClientState::kCompleted: return "Completed";
    case ClientState::kTerminated: return "Terminated";
  }
  return "?";
}

std::string TxnOracle::describe(ServerState state) {
  switch (state) {
    case ServerState::kTrying: return "Trying";
    case ServerState::kProceeding: return "Proceeding";
    case ServerState::kCompleted: return "Completed";
    case ServerState::kConfirmed: return "Confirmed";
    case ServerState::kTerminated: return "Terminated";
  }
  return "?";
}

void TxnOracle::check_timer(const sip::TransactionKey& key,
                            const char* timer_name,
                            const std::optional<SimTime>& expected_at) {
  const SimTime now = sim_.now();
  if (!expected_at.has_value()) {
    log_.add("oracle.stale_timer", now,
             describe(key) + ": " + timer_name +
                 " fired but the RFC machine has no such timer armed");
    return;
  }
  if (*expected_at != now) {
    log_.add("oracle.timer", now,
             describe(key) + ": " + timer_name + " fired at " +
                 std::to_string(now.to_seconds()) + "s, RFC deadline is " +
                 std::to_string(expected_at->to_seconds()) + "s");
  }
}

template <typename Shadow>
void TxnOracle::check_sends(Shadow& shadow, const char* event_name) {
  if (shadow.actual != shadow.expected) {
    std::string detail = describe(shadow.key);
    detail += " event=";
    detail += event_name;
    detail += ": RFC requires sends [";
    for (const Send& s : shadow.expected) detail += describe(s) + " ";
    detail += "], production sent [";
    for (const Send& s : shadow.actual) detail += describe(s) + " ";
    detail += "]";
    log_.add("oracle.sends", sim_.now(), std::move(detail));
  }
  shadow.actual.clear();
  shadow.expected.clear();
}

// ---------------------------------------------------------------------------
// Client shadow (RFC 3261 17.1)
// ---------------------------------------------------------------------------

void TxnOracle::on_client_created(const txn::ClientTransaction* txn,
                                  const sip::TransactionKey& key,
                                  const txn::TimerConfig& timers) {
  ClientShadow shadow;
  shadow.key = key;
  shadow.timers = timers;
  shadow.is_invite = key.method == sip::Method::kInvite;
  shadow.method = key.method;
  shadow.state =
      shadow.is_invite ? ClientState::kCalling : ClientState::kTrying;
  shadow.rtx_interval = timers.t1;
  ++shadows_created_;
  clients_[txn] = std::move(shadow);  // address reuse overwrites stale entry
}

void TxnOracle::on_client_send(const txn::ClientTransaction* txn,
                               const sip::MessagePtr& msg) {
  const auto it = clients_.find(txn);
  if (it == clients_.end()) return;  // reported at the event notification
  Send send;
  send.is_request = msg->is_request();
  if (msg->is_request()) {
    send.method = msg->method();
  } else {
    send.code = msg->status_code();
  }
  it->second.actual.push_back(send);
}

void TxnOracle::client_rx_response(ClientShadow& shadow,
                                   const sip::Message& response) {
  const int code = response.status_code();
  const SimTime now = sim_.now();
  switch (shadow.state) {
    case ClientState::kCalling:
    case ClientState::kTrying:
    case ClientState::kProceeding:
      if (sip::is_provisional(code)) {
        shadow.state = ClientState::kProceeding;
        if (shadow.is_invite) {
          // 17.1.1.2: a provisional stops request retransmission; timer C
          // (16.6 step 11) bounds Proceeding and is refreshed on every
          // provisional, standing in for timer B from here on.
          shadow.rtx_at.reset();
          shadow.timeout_at = now + shadow.timers.timer_c();
        }
        // Non-INVITE (17.1.2.2): retransmissions continue, now at T2 flat;
        // the interval change applies when the armed timer next fires.
        return;
      }
      // Final response.
      if (shadow.is_invite && !sip::is_success(code)) {
        // 17.1.1.3: ACK the non-2xx final, wait in Completed on timer D.
        shadow.expected.push_back(Send{true, sip::Method::kAck, 0});
        shadow.state = ClientState::kCompleted;
        shadow.rtx_at.reset();
        shadow.timeout_at.reset();
        shadow.linger_at = now + shadow.timers.timer_d();
      } else if (shadow.is_invite) {
        // 2xx: the transaction terminates; ACK is the TU's job end-to-end.
        shadow.state = ClientState::kTerminated;
        shadow.rtx_at.reset();
        shadow.timeout_at.reset();
        shadow.linger_at.reset();
      } else {
        // 17.1.2.2: any final moves to Completed, absorb on timer K.
        shadow.state = ClientState::kCompleted;
        shadow.rtx_at.reset();
        shadow.timeout_at.reset();
        shadow.linger_at = now + shadow.timers.timer_k();
      }
      return;
    case ClientState::kCompleted:
      // Retransmitted final: re-ACK non-2xx (17.1.1.2), absorb otherwise.
      if (shadow.is_invite && sip::is_final(code) && !sip::is_success(code)) {
        shadow.expected.push_back(Send{true, sip::Method::kAck, 0});
      }
      return;
    case ClientState::kTerminated:
      return;
  }
}

void TxnOracle::step_client(ClientShadow& shadow, ClientEvent event,
                            const sip::Message* msg) {
  const SimTime now = sim_.now();
  switch (event) {
    case ClientEvent::kStart:
      // 17.1.1.2 / 17.1.2.1: send the request, arm retransmission (timer
      // A doubling / timer E capped at T2) and the 64*T1 timeout (B / F).
      shadow.expected.push_back(Send{true, shadow.method, 0});
      shadow.rtx_interval = shadow.timers.t1;
      shadow.rtx_at = now + shadow.rtx_interval;
      shadow.timeout_at =
          now + (shadow.is_invite ? shadow.timers.timer_b()
                                  : shadow.timers.timer_f());
      break;
    case ClientEvent::kRxResponse:
      client_rx_response(shadow, *msg);
      break;
    case ClientEvent::kTimerRetransmit: {
      check_timer(shadow.key, "timer A/E", shadow.rtx_at);
      const bool retransmitting =
          shadow.state == ClientState::kCalling ||
          shadow.state == ClientState::kTrying ||
          (!shadow.is_invite && shadow.state == ClientState::kProceeding);
      if (retransmitting) {
        shadow.expected.push_back(Send{true, shadow.method, 0});
        if (shadow.is_invite) {
          shadow.rtx_interval = 2 * shadow.rtx_interval;
        } else if (shadow.state == ClientState::kProceeding) {
          shadow.rtx_interval = shadow.timers.t2;
        } else {
          shadow.rtx_interval =
              std::min(2 * shadow.rtx_interval, shadow.timers.t2);
        }
        shadow.rtx_at = now + shadow.rtx_interval;
      } else {
        log_.add("oracle.stale_timer", now,
                 describe(shadow.key) +
                     ": retransmit timer fired in state " +
                     describe(shadow.state));
        shadow.rtx_at.reset();
      }
      break;
    }
    case ClientEvent::kTimerTimeout:
      check_timer(shadow.key, "timer B/F/C", shadow.timeout_at);
      shadow.timeout_at.reset();
      if (shadow.state == ClientState::kCalling ||
          shadow.state == ClientState::kTrying ||
          shadow.state == ClientState::kProceeding) {
        shadow.state = ClientState::kTerminated;
        shadow.rtx_at.reset();
        shadow.linger_at.reset();
      } else {
        log_.add("oracle.stale_timer", now,
                 describe(shadow.key) + ": timeout timer fired in state " +
                     describe(shadow.state));
      }
      break;
    case ClientEvent::kTimerLinger:
      check_timer(shadow.key, "timer D/K", shadow.linger_at);
      shadow.linger_at.reset();
      if (shadow.state == ClientState::kCompleted) {
        shadow.state = ClientState::kTerminated;
      } else {
        log_.add("oracle.stale_timer", now,
                 describe(shadow.key) + ": linger timer fired in state " +
                     describe(shadow.state));
      }
      break;
  }
}

void TxnOracle::on_client_event(const txn::ClientTransaction* txn,
                                ClientEvent event, const sip::Message* msg) {
  const auto it = clients_.find(txn);
  if (it == clients_.end()) {
    log_.add("oracle.untracked", sim_.now(),
             std::string("client event ") + client_event_name(event) +
                 " for a transaction the oracle never saw created");
    return;
  }
  ClientShadow& shadow = it->second;
  step_client(shadow, event, msg);
  check_sends(shadow, client_event_name(event));
  if (shadow.state != txn->state()) {
    log_.add("oracle.state", sim_.now(),
             describe(shadow.key) + " after " + client_event_name(event) +
                 ": RFC machine in " + describe(shadow.state) +
                 ", production in " + describe(txn->state()));
    // Track the production machine from here so one divergence does not
    // cascade into a report per subsequent event.
    shadow.state = txn->state();
  }
  ++events_checked_;
}

void TxnOracle::on_client_removed(const txn::ClientTransaction* txn) {
  const auto it = clients_.find(txn);
  if (it == clients_.end()) return;
  if (it->second.state != ClientState::kTerminated) {
    log_.add("oracle.removed_live", sim_.now(),
             describe(it->second.key) + " removed from the table in state " +
                 describe(it->second.state));
  }
  clients_.erase(it);
}

// ---------------------------------------------------------------------------
// Server shadow (RFC 3261 17.2)
// ---------------------------------------------------------------------------

void TxnOracle::on_server_created(const txn::ServerTransaction* txn,
                                  const sip::TransactionKey& key,
                                  const txn::TimerConfig& timers) {
  ServerShadow shadow;
  shadow.key = key;
  shadow.timers = timers;
  shadow.is_invite = key.method == sip::Method::kInvite;
  // 17.2.1: the INVITE server starts in Proceeding (the TU's 100 follows);
  // 17.2.2: the non-INVITE server starts in Trying.
  shadow.state =
      shadow.is_invite ? ServerState::kProceeding : ServerState::kTrying;
  shadow.rtx_interval = timers.t1;
  ++shadows_created_;
  servers_[txn] = std::move(shadow);
}

void TxnOracle::on_server_send(const txn::ServerTransaction* txn,
                               const sip::MessagePtr& msg) {
  const auto it = servers_.find(txn);
  if (it == servers_.end()) return;
  Send send;
  send.is_request = msg->is_request();
  if (msg->is_request()) {
    send.method = msg->method();
  } else {
    send.code = msg->status_code();
  }
  it->second.actual.push_back(send);
}

void TxnOracle::server_rx_request(ServerShadow& shadow,
                                  const sip::Message& request) {
  const SimTime now = sim_.now();
  if (shadow.state == ServerState::kTerminated) return;

  if (shadow.is_invite && request.method() == sip::Method::kAck) {
    if (shadow.state == ServerState::kCompleted) {
      // 17.2.1: ACK for our non-2xx final — Confirmed, absorb further ACKs
      // on timer I; response retransmission (G) and timer H stop.
      shadow.state = ServerState::kConfirmed;
      shadow.rtx_at.reset();
      shadow.timeout_at.reset();
      shadow.linger_at = now + shadow.timers.timer_i();
    }
    // ACKs in any other state are absorbed silently.
    return;
  }

  // Request retransmission: absorbed; the latest response (if one was sent)
  // is replayed in Proceeding/Completed (17.2.1 / 17.2.2).
  if (shadow.has_last_response &&
      (shadow.state == ServerState::kProceeding ||
       shadow.state == ServerState::kCompleted)) {
    shadow.expected.push_back(Send{false, sip::Method::kInvite,
                                   shadow.last_code});
  }
}

void TxnOracle::server_respond(ServerShadow& shadow,
                               const sip::Message& response) {
  const SimTime now = sim_.now();
  if (shadow.state == ServerState::kTerminated) return;
  const int code = response.status_code();

  if (sip::is_provisional(code)) {
    // Only legal before a final; a provisional afterwards must be ignored
    // (regressing Completed would strand timers G/H/J — asserted here
    // because PR5 fixed exactly that bug).
    if (shadow.state != ServerState::kTrying &&
        shadow.state != ServerState::kProceeding) {
      return;
    }
    shadow.has_last_response = true;
    shadow.last_code = code;
    shadow.expected.push_back(Send{false, sip::Method::kInvite, code});
    shadow.state = ServerState::kProceeding;
    return;
  }
  // Duplicate final from the TU: first final wins, timers stay as armed.
  if (shadow.state != ServerState::kTrying &&
      shadow.state != ServerState::kProceeding) {
    return;
  }
  shadow.has_last_response = true;
  shadow.last_code = code;
  shadow.expected.push_back(Send{false, sip::Method::kInvite, code});
  if (shadow.is_invite) {
    if (sip::is_success(code)) {
      // 17.2.1: 2xx terminates the INVITE server transaction immediately.
      shadow.state = ServerState::kTerminated;
      shadow.rtx_at.reset();
      shadow.timeout_at.reset();
      shadow.linger_at.reset();
    } else {
      // Completed: retransmit the final on timer G, give up on timer H.
      shadow.state = ServerState::kCompleted;
      shadow.rtx_at = now + shadow.rtx_interval;
      shadow.timeout_at = now + shadow.timers.timer_h();
    }
  } else {
    // 17.2.2: Completed, absorb retransmissions until timer J.
    shadow.state = ServerState::kCompleted;
    shadow.linger_at = now + shadow.timers.timer_j();
  }
}

void TxnOracle::step_server(ServerShadow& shadow, ServerEvent event,
                            const sip::Message* msg) {
  const SimTime now = sim_.now();
  switch (event) {
    case ServerEvent::kRxRequest:
      server_rx_request(shadow, *msg);
      break;
    case ServerEvent::kRespond:
      server_respond(shadow, *msg);
      break;
    case ServerEvent::kTimerRetransmit:
      check_timer(shadow.key, "timer G", shadow.rtx_at);
      if (shadow.state == ServerState::kCompleted) {
        shadow.expected.push_back(Send{false, sip::Method::kInvite,
                                       shadow.last_code});
        shadow.rtx_interval =
            std::min(2 * shadow.rtx_interval, shadow.timers.t2);
        shadow.rtx_at = now + shadow.rtx_interval;
      } else {
        log_.add("oracle.stale_timer", now,
                 describe(shadow.key) + ": timer G fired in state " +
                     describe(shadow.state));
        shadow.rtx_at.reset();
      }
      break;
    case ServerEvent::kTimerTimeout:
      check_timer(shadow.key, "timer H", shadow.timeout_at);
      shadow.timeout_at.reset();
      if (shadow.state == ServerState::kCompleted) {
        shadow.state = ServerState::kTerminated;
        shadow.rtx_at.reset();
        shadow.linger_at.reset();
      } else {
        log_.add("oracle.stale_timer", now,
                 describe(shadow.key) + ": timer H fired in state " +
                     describe(shadow.state));
      }
      break;
    case ServerEvent::kTimerLinger:
      check_timer(shadow.key, "timer I/J", shadow.linger_at);
      shadow.linger_at.reset();
      if (shadow.state == ServerState::kConfirmed ||
          shadow.state == ServerState::kCompleted) {
        shadow.state = ServerState::kTerminated;
      } else {
        log_.add("oracle.stale_timer", now,
                 describe(shadow.key) + ": linger timer fired in state " +
                     describe(shadow.state));
      }
      break;
  }
}

void TxnOracle::on_server_event(const txn::ServerTransaction* txn,
                                ServerEvent event, const sip::Message* msg) {
  const auto it = servers_.find(txn);
  if (it == servers_.end()) {
    log_.add("oracle.untracked", sim_.now(),
             std::string("server event ") + server_event_name(event) +
                 " for a transaction the oracle never saw created");
    return;
  }
  ServerShadow& shadow = it->second;
  step_server(shadow, event, msg);
  check_sends(shadow, server_event_name(event));
  if (shadow.state != txn->state()) {
    log_.add("oracle.state", sim_.now(),
             describe(shadow.key) + " after " + server_event_name(event) +
                 ": RFC machine in " + describe(shadow.state) +
                 ", production in " + describe(txn->state()));
    shadow.state = txn->state();
  }
  ++events_checked_;
}

void TxnOracle::on_server_removed(const txn::ServerTransaction* txn) {
  const auto it = servers_.find(txn);
  if (it == servers_.end()) return;
  if (it->second.state != ServerState::kTerminated) {
    log_.add("oracle.removed_live", sim_.now(),
             describe(it->second.key) + " removed from the table in state " +
                 describe(it->second.state));
  }
  servers_.erase(it);
}

}  // namespace svk::check
