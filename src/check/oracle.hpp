// Reference oracle for the RFC 3261 section 17 transaction state machines.
//
// TxnOracle implements txn::ConformanceTap: it shadows every transaction
// the production TransactionManager creates with a naive, allocation-heavy,
// obviously-correct re-statement of the RFC rules, fed the exact same
// rx/tx/timer events. After every externally visible event it compares
//
//   * the production machine's state against the shadow's,
//   * the wire sends the production machine performed during the event
//     against the sends the RFC requires (kind, order and count), and
//   * the sim time a timer fired against the absolute deadline the RFC
//     formula predicts (catching mis-armed or leaked timers, e.g. a
//     missing timer C refresh).
//
// Divergence is recorded in the ViolationLog with full event context; the
// run continues so one bug reports every symptom. The oracle deliberately
// duplicates the production semantics from the RFC text rather than
// reusing any of src/txn — where this repo interprets the RFC beyond its
// letter (timer C standing in for timer B once Proceeding, per 16.6), the
// oracle encodes the same documented interpretation.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "check/violations.hpp"
#include "sim/simulator.hpp"
#include "sip/branch.hpp"
#include "sip/message.hpp"
#include "txn/tap.hpp"
#include "txn/timers.hpp"
#include "txn/transaction.hpp"

namespace svk::check {

class TxnOracle final : public txn::ConformanceTap {
 public:
  TxnOracle(sim::Simulator& sim, ViolationLog& log) : sim_(sim), log_(log) {}

  // txn::ConformanceTap
  void on_client_created(const txn::ClientTransaction* txn,
                         const sip::TransactionKey& key,
                         const txn::TimerConfig& timers) override;
  void on_client_send(const txn::ClientTransaction* txn,
                      const sip::MessagePtr& msg) override;
  void on_client_event(const txn::ClientTransaction* txn,
                       txn::ClientEvent event,
                       const sip::Message* msg) override;
  void on_client_removed(const txn::ClientTransaction* txn) override;

  void on_server_created(const txn::ServerTransaction* txn,
                         const sip::TransactionKey& key,
                         const txn::TimerConfig& timers) override;
  void on_server_send(const txn::ServerTransaction* txn,
                      const sip::MessagePtr& msg) override;
  void on_server_event(const txn::ServerTransaction* txn,
                       txn::ServerEvent event,
                       const sip::Message* msg) override;
  void on_server_removed(const txn::ServerTransaction* txn) override;

  /// Shadows still tracked (not yet removed); equals the production
  /// managers' live transactions when the oracle covers every manager.
  [[nodiscard]] std::size_t live_shadows() const {
    return clients_.size() + servers_.size();
  }
  /// Events compared so far — lets tests assert the tap is actually live.
  [[nodiscard]] std::uint64_t events_checked() const {
    return events_checked_;
  }
  [[nodiscard]] std::uint64_t shadows_created() const {
    return shadows_created_;
  }

 private:
  /// One wire send, as the RFC predicts it or as production performed it.
  struct Send {
    bool is_request = false;
    sip::Method method = sip::Method::kInvite;
    int code = 0;  // responses only
    friend bool operator==(const Send&, const Send&) = default;
  };

  /// Shadow of one client transaction (RFC 3261 17.1).
  struct ClientShadow {
    sip::TransactionKey key;
    txn::TimerConfig timers;
    bool is_invite = false;
    sip::Method method = sip::Method::kInvite;
    txn::ClientState state = txn::ClientState::kCalling;
    // Absolute deadlines of the armed timers (nullopt = not armed).
    std::optional<SimTime> rtx_at;      // A / E
    SimTime rtx_interval;
    std::optional<SimTime> timeout_at;  // B / F / C
    std::optional<SimTime> linger_at;   // D / K
    std::vector<Send> expected;  // sends the RFC requires for this event
    std::vector<Send> actual;    // sends production performed since last event
  };

  /// Shadow of one server transaction (RFC 3261 17.2).
  struct ServerShadow {
    sip::TransactionKey key;
    txn::TimerConfig timers;
    bool is_invite = false;
    txn::ServerState state = txn::ServerState::kTrying;
    bool has_last_response = false;
    int last_code = 0;
    std::optional<SimTime> rtx_at;      // G
    SimTime rtx_interval;
    std::optional<SimTime> timeout_at;  // H
    std::optional<SimTime> linger_at;   // I / J
    std::vector<Send> expected;
    std::vector<Send> actual;
  };

  void step_client(ClientShadow& shadow, txn::ClientEvent event,
                   const sip::Message* msg);
  void step_server(ServerShadow& shadow, txn::ServerEvent event,
                   const sip::Message* msg);
  void client_rx_response(ClientShadow& shadow, const sip::Message& response);
  void server_rx_request(ServerShadow& shadow, const sip::Message& request);
  void server_respond(ServerShadow& shadow, const sip::Message& response);

  /// Validates that a timer event fired exactly at `expected_at`.
  void check_timer(const sip::TransactionKey& key, const char* timer_name,
                   const std::optional<SimTime>& expected_at);
  /// Compares buffered actual sends against the expected list, then clears
  /// both; reports any mismatch with the full context string.
  template <typename Shadow>
  void check_sends(Shadow& shadow, const char* event_name);

  [[nodiscard]] static std::string describe(const sip::TransactionKey& key);
  [[nodiscard]] static std::string describe(const Send& send);
  [[nodiscard]] static std::string describe(txn::ClientState state);
  [[nodiscard]] static std::string describe(txn::ServerState state);

  sim::Simulator& sim_;
  ViolationLog& log_;
  std::uint64_t events_checked_{0};
  std::uint64_t shadows_created_{0};
  // Keyed by production-object identity: the pointer is only ever used for
  // lookup while the manager still owns the transaction, and a reused
  // address is overwritten on the next on_*_created.
  std::unordered_map<const txn::ClientTransaction*, ClientShadow> clients_;
  std::unordered_map<const txn::ServerTransaction*, ServerShadow> servers_;
};

}  // namespace svk::check
