#include "check/run_checker.hpp"

#include <string>

namespace svk::check {

RunChecker::RunChecker(sim::Simulator& sim, CheckOptions options)
    : sim_(sim),
      options_(options),
      oracle_(sim, log_),
      wire_(sim, log_),
      sweep_(sim, options.period, [this] { tick(); }) {}

void RunChecker::start() { sweep_.start(); }

void RunChecker::tick() {
  if (!totals_source_) return;
  const RunTotals totals = totals_source_();
  if (options_.expect_single_stateful &&
      totals.double_stateful > seen_double_stateful_) {
    log_.add("run.double_stateful", sim_.now(),
             std::to_string(totals.double_stateful - seen_double_stateful_) +
                 " new call(s) handled statefully by more than one server "
                 "(exactly-one-stateful violated)");
  }
  seen_double_stateful_ = totals.double_stateful;
  if (totals.unmarked_invites > seen_unmarked_invites_) {
    log_.add("run.unmarked_invite", sim_.now(),
             std::to_string(totals.unmarked_invites - seen_unmarked_invites_) +
                 " new admitted INVITE(s) reached the UAS without any hop "
                 "taking stateful responsibility");
  }
  seen_unmarked_invites_ = totals.unmarked_invites;
}

void RunChecker::finish() {
  if (finished_) return;
  finished_ = true;
  sweep_.stop();
  tick();  // pick up counter movement since the last sweep
  wire_.at_drain(options_.expect_all_answered);
  if (oracle_.live_shadows() != 0) {
    log_.add("run.leaked_transactions", sim_.now(),
             std::to_string(oracle_.live_shadows()) +
                 " transaction(s) still live after drain");
  }
  if (!totals_source_) return;
  const RunTotals totals = totals_source_();
  if (totals.active_transactions != 0) {
    log_.add("run.leaked_transactions", sim_.now(),
             std::to_string(totals.active_transactions) +
                 " transaction(s) still in a manager table after drain");
  }
  if (totals.active_dialogs != 0) {
    log_.add("run.leaked_dialogs", sim_.now(),
             std::to_string(totals.active_dialogs) +
                 " dialog(s) still tracked after drain — early dialogs from "
                 "never-completing calls must be expired or abandoned");
  }
  if (totals.open_uac_calls != 0) {
    log_.add("run.open_calls", sim_.now(),
             std::to_string(totals.open_uac_calls) +
                 " UAC call(s) never reached a terminal state");
  }
  if (totals.calls_attempted != totals.calls_terminal) {
    log_.add("run.call_accounting", sim_.now(),
             "attempted " + std::to_string(totals.calls_attempted) +
                 " calls but completed+failed+cancelled accounts for " +
                 std::to_string(totals.calls_terminal));
  }
}

}  // namespace svk::check
