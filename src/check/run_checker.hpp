// Run-invariant checker: the umbrella over the whole checking subsystem.
//
// RunChecker composes the three layers of checking into one object the
// workload TestBed can switch on with a single call:
//
//   * a TxnOracle shadowing every transaction machine (tapped into the
//     TransactionManagers),
//   * a WireChecker watching every datagram (tapped into the Network), and
//   * its own periodic sweep over aggregate counters the paper's claims
//     rest on — most importantly that at most ONE server per admitted call
//     runs it statefully (the exactly-one-stateful property SERvartuka's
//     state-distribution argument requires) and that every admitted INVITE
//     was marked by some stateful hop.
//
// At drain (finish()) it additionally asserts conservation: no leaked
// transactions, dialogs or shadows; no open UAC calls; attempted calls all
// reached a terminal accounting bucket; no delivered request left
// unanswered. All violations land in one ViolationLog; tests assert it is
// empty and the chaos harness dumps it as a JSON artifact.
//
// Everything here is read-only with respect to the simulation. The periodic
// sweep schedules simulator events, which consumes EventIds, but ids are
// opaque, the RNG is untouched and no production decision reads them — so a
// checked run produces a bit-identical RunRecord digest to an unchecked one.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>

#include "check/oracle.hpp"
#include "check/violations.hpp"
#include "check/wire.hpp"
#include "common/json.hpp"
#include "sim/simulator.hpp"

namespace svk::check {

struct CheckOptions {
  /// Aggregate-counter sweep period.
  SimTime period = SimTime::millis(250);
  /// Assert that no call is ever handled statefully by two servers at once
  /// (true for SERvartuka assignments; a deliberately all-stateful static
  /// configuration must turn this off).
  bool expect_single_stateful = true;
  /// Assert at drain that every delivered request was answered. Turn off
  /// for runs with crash faults, which legitimately strand requests.
  bool expect_all_answered = true;
};

/// Snapshot of the aggregate counters the sweep verifies, supplied by the
/// embedding testbed via set_totals_source — the checker never links
/// against the proxy/workload layers.
struct RunTotals {
  std::uint64_t double_stateful = 0;   // calls seen stateful at 2+ servers
  std::uint64_t unmarked_invites = 0;  // admitted INVITEs no hop marked
  std::size_t active_transactions = 0;
  std::size_t active_dialogs = 0;
  std::size_t open_uac_calls = 0;
  std::uint64_t calls_attempted = 0;
  std::uint64_t calls_terminal = 0;  // completed + failed + cancelled
};

class RunChecker {
 public:
  RunChecker(sim::Simulator& sim, CheckOptions options);

  RunChecker(const RunChecker&) = delete;
  RunChecker& operator=(const RunChecker&) = delete;

  [[nodiscard]] ViolationLog& log() { return log_; }
  [[nodiscard]] const ViolationLog& log() const { return log_; }
  [[nodiscard]] TxnOracle& oracle() { return oracle_; }
  [[nodiscard]] WireChecker& wire() { return wire_; }
  [[nodiscard]] const CheckOptions& options() const { return options_; }

  /// Installs the counter-snapshot source; required before start().
  void set_totals_source(std::function<RunTotals()> source) {
    totals_source_ = std::move(source);
  }

  /// Starts the periodic sweep.
  void start();

  /// Stops the sweep and runs the drain-time conservation checks.
  /// Idempotent; must be called after the simulation has drained and
  /// before asserting on pending_count (the sweep timer is an event).
  void finish();

  /// Continuous checks, also invoked by the periodic sweep.
  void tick();

  /// {"total": N, "violations": [...]} — the artifact the chaos harness
  /// writes next to a failing FaultPlan.
  [[nodiscard]] JsonValue to_json() const { return log_.to_json(); }

 private:
  sim::Simulator& sim_;
  CheckOptions options_;
  ViolationLog log_;
  TxnOracle oracle_;
  WireChecker wire_;
  std::function<RunTotals()> totals_source_;
  sim::PeriodicTimer sweep_;
  bool finished_{false};
  // Monotone counters are flagged on *increase* so one offending call
  // yields one report, not one per sweep.
  std::uint64_t seen_double_stateful_{0};
  std::uint64_t seen_unmarked_invites_{0};
};

}  // namespace svk::check
