#include "check/violations.hpp"

#include <utility>

namespace svk::check {

void ViolationLog::add(std::string kind, SimTime at, std::string detail) {
  ++total_;
  if (entries_.size() < kMaxStored) {
    entries_.push_back(Violation{std::move(kind), at, std::move(detail)});
  }
}

JsonValue ViolationLog::to_json() const {
  JsonValue root = JsonValue::object();
  root["total"] = JsonValue(total_);
  JsonValue list = JsonValue::array();
  for (const Violation& v : entries_) {
    JsonValue entry = JsonValue::object();
    entry["kind"] = JsonValue(v.kind);
    entry["at_s"] = JsonValue(v.at.to_seconds());
    entry["detail"] = JsonValue(v.detail);
    list.push_back(std::move(entry));
  }
  root["violations"] = std::move(list);
  return root;
}

std::string ViolationLog::summary(std::size_t max_lines) const {
  std::string out;
  const std::size_t n = entries_.size() < max_lines ? entries_.size()
                                                    : max_lines;
  for (std::size_t i = 0; i < n; ++i) {
    const Violation& v = entries_[i];
    out += v.kind;
    out += " @";
    out += std::to_string(v.at.to_seconds());
    out += "s: ";
    out += v.detail;
    out += '\n';
  }
  if (total_ > n) {
    out += "... and " + std::to_string(total_ - n) + " more\n";
  }
  return out;
}

}  // namespace svk::check
