// Violation log shared by the conformance oracle and the run-invariant
// checker (src/check). Checking is diagnostic machinery: a violation is
// recorded with full context and the run continues, so one bug surfaces
// every downstream symptom in a single run instead of dying on the first
// assert. Tests assert the log is empty; the chaos harness dumps it as a
// JSON artifact next to the failing FaultPlan.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/json.hpp"
#include "common/sim_time.hpp"

namespace svk::check {

struct Violation {
  std::string kind;    // dotted id, e.g. "oracle.state", "wire.premature_483"
  SimTime at;          // sim time the divergence was observed
  std::string detail;  // full event context, human-readable
};

class ViolationLog {
 public:
  /// Entries beyond this are counted but not stored (one bug under load can
  /// produce thousands of identical reports).
  static constexpr std::size_t kMaxStored = 512;

  void add(std::string kind, SimTime at, std::string detail);

  [[nodiscard]] const std::vector<Violation>& entries() const {
    return entries_;
  }
  [[nodiscard]] std::uint64_t total() const { return total_; }
  [[nodiscard]] bool empty() const { return total_ == 0; }

  /// {"total": N, "violations": [{kind, at_s, detail}, ...]}
  [[nodiscard]] JsonValue to_json() const;

  /// First few entries on one line each — for test failure messages.
  [[nodiscard]] std::string summary(std::size_t max_lines = 10) const;

 private:
  std::vector<Violation> entries_;
  std::uint64_t total_{0};
};

}  // namespace svk::check
