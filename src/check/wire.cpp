#include "check/wire.hpp"

#include <utility>

namespace svk::check {
namespace {

// A request loop that survives Max-Forwards would still be caught here:
// no legitimate path in the simulated topologies stacks more Vias than
// UAC -> proxy chain -> UAS allows.
constexpr std::size_t kMaxViaDepth = 8;

}  // namespace

void WireChecker::register_host(Address addr, std::string name) {
  hosts_[addr.value()] = std::move(name);
}

const std::string& WireChecker::host_name(Address addr) const {
  static const std::string kUnknown = "<unregistered>";
  const auto it = hosts_.find(addr.value());
  return it != hosts_.end() ? it->second : kUnknown;
}

std::string WireChecker::request_key(Address host, const std::string& call_id,
                                     std::uint32_t seq, sip::Method method) {
  std::string key = std::to_string(host.value());
  key += '|';
  key += call_id;
  key += '|';
  key += std::to_string(seq);
  key += '|';
  key += std::to_string(static_cast<int>(method));
  return key;
}

void WireChecker::check_cseq(const sip::Message& msg) {
  // ACK and CANCEL share the CSeq of the INVITE they refer to (9.1, 13.2.2.4)
  // and so are exempt from the monotonicity rule.
  const sip::Method method = msg.cseq().method;
  if (method == sip::Method::kAck || method == sip::Method::kCancel) return;
  std::string dialog = msg.call_id();
  dialog += '|';
  dialog += msg.from().tag;
  CseqHistory& hist = cseq_[dialog];
  const std::uint32_t seq = msg.cseq().seq;
  const std::uint64_t pair =
      (static_cast<std::uint64_t>(seq) << 8) |
      static_cast<std::uint64_t>(static_cast<int>(method));
  if (!hist.seen.insert(pair).second) return;  // same request, another hop
  if (seq < hist.max_seq) {
    log_.add("wire.cseq_regress", sim_.now(),
             "dialog " + dialog + ": new request " +
                 std::string(sip::to_string(method)) + " cseq " +
                 std::to_string(seq) + " after cseq " +
                 std::to_string(hist.max_seq) + " was already used");
  }
  if (seq > hist.max_seq) hist.max_seq = seq;
}

void WireChecker::check_request_send(Address from, const sip::Message& msg) {
  const std::string& sender = host_name(from);
  if (msg.vias().empty()) {
    log_.add("wire.via_push", sim_.now(),
             sender + " sent " + std::string(sip::to_string(msg.method())) +
                 " " + msg.call_id() + " with an empty Via stack");
    return;
  }
  if (!(msg.top_via().sent_by == std::string_view(sender))) {
    log_.add("wire.via_push", sim_.now(),
             sender + " sent " + std::string(sip::to_string(msg.method())) +
                 " " + msg.call_id() + " whose top Via names " +
                 msg.top_via().sent_by.str() +
                 " — the sender must push its own Via");
  }
  if (msg.vias().size() > kMaxViaDepth) {
    log_.add("wire.via_depth", sim_.now(),
             sender + " sent " + msg.call_id() + " with " +
                 std::to_string(msg.vias().size()) +
                 " Vias — likely a forwarding loop");
  }
  if (msg.max_forwards() < 0) {
    log_.add("wire.mf_negative", sim_.now(),
             sender + " sent " + std::string(sip::to_string(msg.method())) +
                 " " + msg.call_id() + " with Max-Forwards " +
                 std::to_string(msg.max_forwards()));
  }
  // Conservation across a forwarding host. ACK and CANCEL are hop-by-hop
  // creations at a proxy (9.1, 17.1.1.3) and carry a fresh Max-Forwards.
  const sip::Method method = msg.cseq().method;
  if (msg.method() != sip::Method::kAck &&
      msg.method() != sip::Method::kCancel) {
    const auto it =
        open_.find(request_key(from, msg.call_id(), msg.cseq().seq, method));
    if (it != open_.end() &&
        msg.max_forwards() != it->second.mf_in - 1) {
      log_.add("wire.mf_balance", sim_.now(),
               sender + " forwarded " +
                   std::string(sip::to_string(msg.method())) + " " +
                   msg.call_id() + " with Max-Forwards " +
                   std::to_string(msg.max_forwards()) +
                   " but received it with " +
                   std::to_string(it->second.mf_in) +
                   " — a proxy decrements by exactly one");
    }
  }
  check_cseq(msg);
}

void WireChecker::check_response_send(Address from, Address to,
                                      const sip::Message& msg) {
  const std::string& sender = host_name(from);
  if (msg.vias().empty()) {
    log_.add("wire.via_pop", sim_.now(),
             sender + " sent response " + std::to_string(msg.status_code()) +
                 " " + msg.call_id() + " with an empty Via stack");
    return;
  }
  // 18.2.2: a response travels to the host named by its top Via; a hop that
  // forgot to pop its own Via sends the response to itself on paper.
  if (!(msg.top_via().sent_by == std::string_view(host_name(to)))) {
    log_.add("wire.via_pop", sim_.now(),
             sender + " sent response " + std::to_string(msg.status_code()) +
                 " " + msg.call_id() + " to " + host_name(to) +
                 " but its top Via names " + msg.top_via().sent_by.str());
  }
  const auto it = open_.find(
      request_key(from, msg.call_id(), msg.cseq().seq, msg.cseq().method));
  if (it == open_.end()) return;
  if (msg.status_code() == sip::status::kTooManyHops &&
      it->second.mf_in > 0) {
    log_.add("wire.premature_483", sim_.now(),
             sender + " answered 483 Too Many Hops for " + msg.call_id() +
                 " which arrived with Max-Forwards " +
                 std::to_string(it->second.mf_in) +
                 " — 483 is only correct for Max-Forwards 0 (16.3 step 4)");
  }
  if (sip::is_final(msg.status_code())) open_.erase(it);
}

void WireChecker::on_send(Address from, Address to,
                          const sip::MessagePtr& msg) {
  ++datagrams_seen_;
  if (msg->is_request() && msg->method() == sip::Method::kOptions) return;
  if (msg->is_response() && msg->cseq().method == sip::Method::kOptions) {
    return;
  }
  if (msg->is_request()) {
    check_request_send(from, *msg);
  } else {
    check_response_send(from, to, *msg);
  }
}

void WireChecker::on_deliver(Address /*from*/, Address to,
                             const sip::MessagePtr& msg) {
  if (!msg->is_request()) return;
  // ACK has no response; OPTIONS is the overload-control feedback carrier.
  if (msg->method() == sip::Method::kAck ||
      msg->method() == sip::Method::kOptions) {
    return;
  }
  OpenRequest entry;
  entry.mf_in = msg->max_forwards();
  entry.context = host_name(to) + " received " +
                  std::string(sip::to_string(msg->method())) + " " +
                  msg->call_id() + " cseq " +
                  std::to_string(msg->cseq().seq) + " (Max-Forwards " +
                  std::to_string(msg->max_forwards()) + ")";
  open_[request_key(to, msg->call_id(), msg->cseq().seq,
                    msg->cseq().method)] = std::move(entry);
}

void WireChecker::at_drain(bool expect_all_answered) {
  if (!expect_all_answered) return;
  for (const auto& [key, entry] : open_) {
    log_.add("wire.unanswered_request", sim_.now(),
             entry.context + " and never answered it");
  }
}

}  // namespace svk::check
