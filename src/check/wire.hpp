// Wire-level run invariants (the hop-by-hop half of the run checker).
//
// WireChecker observes every datagram through the sim::Network read-only
// taps and verifies per-hop SIP discipline the transaction oracle cannot
// see, because it spans hosts:
//
//   * Via stack balance — a request leaves a host with that host's own Via
//     on top (section 16.6 step 8); a response arrives at exactly the host
//     named by its top Via (section 18.2.2 return routing). An unbalanced
//     push/pop shows up as a mismatched sent-by.
//   * Max-Forwards conservation — a forwarded request carries exactly one
//     less than the value it arrived with (16.6 step 3), never goes
//     negative, and 483 Too Many Hops is only ever sent for a request that
//     actually arrived with Max-Forwards 0 (16.3 step 4). The premature-483
//     check is what catches the classic decrement-before-test off-by-one.
//   * CSeq monotonicity — within one dialog direction, a new (seq, method)
//     pair never regresses below the highest sequence already used
//     (12.2.1.1); ACK and CANCEL are exempt, they share their INVITE's CSeq.
//   * Request accounting — every non-ACK request delivered to a host is
//     eventually answered by that host (absorbed-and-dropped requests are
//     exactly the silent-shed bug class). Enforced at drain; optional,
//     because crash faults legitimately strand in-flight requests.
//
// OPTIONS is excluded throughout: the overload-control plane uses it as a
// fire-and-forget rate-feedback carrier with no response path.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <unordered_set>

#include "check/violations.hpp"
#include "common/types.hpp"
#include "sim/simulator.hpp"
#include "sip/message.hpp"

namespace svk::check {

class WireChecker {
 public:
  WireChecker(sim::Simulator& sim, ViolationLog& log)
      : sim_(sim), log_(log) {}

  /// Associates an address with the host name it stamps into Via sent-by.
  /// Every simulated host must be registered before traffic flows.
  void register_host(Address addr, std::string name);

  /// Network send tap: fires for every send attempt (pre-loss), i.e. for
  /// everything a host's logic decided to put on the wire.
  void on_send(Address from, Address to, const sip::MessagePtr& msg);
  /// Network deliver tap: fires only for datagrams actually handed over.
  void on_deliver(Address from, Address to, const sip::MessagePtr& msg);

  /// Drain-time accounting. With `expect_all_answered`, any delivered
  /// request its receiver never responded to is a violation; pass false
  /// for runs with crash faults, which legitimately strand requests.
  void at_drain(bool expect_all_answered);

  /// Delivered-but-unanswered requests currently tracked.
  [[nodiscard]] std::size_t open_requests() const { return open_.size(); }
  [[nodiscard]] std::uint64_t datagrams_seen() const {
    return datagrams_seen_;
  }

 private:
  /// One request a host received and has not yet answered.
  struct OpenRequest {
    int mf_in = 0;  // Max-Forwards as it arrived at the host
    std::string context;
  };
  /// Per (call-id | from-tag) CSeq history.
  struct CseqHistory {
    std::uint32_t max_seq = 0;
    std::unordered_set<std::uint64_t> seen;  // (seq << 8) | method
  };

  [[nodiscard]] const std::string& host_name(Address addr) const;
  /// Correlation key: responses match their request via the receiving
  /// host + Call-ID + CSeq (branch is not needed inside one run).
  [[nodiscard]] static std::string request_key(Address host,
                                               const std::string& call_id,
                                               std::uint32_t seq,
                                               sip::Method method);

  void check_request_send(Address from, const sip::Message& msg);
  void check_response_send(Address from, Address to, const sip::Message& msg);
  void check_cseq(const sip::Message& msg);

  sim::Simulator& sim_;
  ViolationLog& log_;
  std::uint64_t datagrams_seen_{0};
  std::unordered_map<std::uint32_t, std::string> hosts_;
  std::unordered_map<std::string, OpenRequest> open_;
  std::unordered_map<std::string, CseqHistory> cseq_;
};

}  // namespace svk::check
