// Open-addressing flat hash table keyed by precomputed 64-bit hashes.
//
// The state tables' replacement for node-based std::unordered_map. Design
// goals, in order:
//
//  1. No temporary keys. Every probe takes a hash the caller computed once
//     per incoming message (common/hash.hpp over string_views) plus an
//     equality predicate over the stored value — the table itself never
//     sees, copies, or owns key strings. Where the real key lives inside
//     the value (a slab-resident transaction's request message, a dialog's
//     id, a location entry's AOR), the slot holds just 8+sizeof(Value)
//     bytes and a full-table scan walks a contiguous array.
//  2. O(1) erase with no tombstones: linear probing with backward-shift
//     deletion, so lookup cost never degrades with churn.
//  3. Zero steady-state allocation: capacity only ever grows (power of
//     two), and a table whose live count has plateaued — the steady state
//     of a saturated server — performs none at all. `Stats::grows` is the
//     perf gate's regression counter.
//
// Correctness never rests on hash uniqueness: equal hashes fall through to
// the caller's predicate, exactly like a bucketed map. A hash of 0 marks an
// empty slot; real hashes are nudged off 0 internally.
#pragma once

#include <cassert>
#include <cstdint>
#include <utility>
#include <vector>

#include "common/hash.hpp"

namespace svk::common {

template <typename Value>
class FlatTable {
 public:
  struct Stats {
    std::uint64_t inserts = 0;
    std::uint64_t erases = 0;
    std::uint64_t grows = 0;  // rehash allocations ever made
  };

  static constexpr std::size_t kMinCapacity = 16;

  FlatTable() = default;

  /// The value stored under `hash` whose `eq(value)` holds, or nullptr.
  /// `eq` is consulted only for slots with an equal hash.
  template <typename Eq>
  [[nodiscard]] Value* find(std::uint64_t hash, Eq&& eq) {
    if (size_ == 0) return nullptr;
    const std::uint64_t h = normalize(hash);
    const std::size_t mask = slots_.size() - 1;
    for (std::size_t i = h & mask;; i = (i + 1) & mask) {
      Slot& slot = slots_[i];
      if (slot.hash == kEmpty) return nullptr;
      if (slot.hash == h && eq(const_cast<const Value&>(slot.value))) {
        return &slot.value;
      }
    }
  }
  template <typename Eq>
  [[nodiscard]] const Value* find(std::uint64_t hash, Eq&& eq) const {
    return const_cast<FlatTable*>(this)->find(hash, std::forward<Eq>(eq));
  }

  /// Inserts `value` under `hash`. The caller has already established the
  /// key is absent (the create-after-miss path reuses its failed probe);
  /// duplicates are therefore not checked for. Returns the stored value.
  /// References returned by find/insert are invalidated by any later
  /// insert (growth) or erase (backward shift) — take what you need before
  /// mutating again, or store indirection (a SlabHandle) as the value.
  Value& insert(std::uint64_t hash, Value value) {
    if ((size_ + 1) * 4 > slots_.size() * 3) grow();
    ++size_;
    ++stats_.inserts;
    return place(normalize(hash), std::move(value));
  }

  /// Erases the entry under `hash` matching `eq`. Returns false when
  /// absent. Backward-shift: subsequent displaced entries are moved back,
  /// so no tombstone remains.
  template <typename Eq>
  bool erase(std::uint64_t hash, Eq&& eq) {
    if (size_ == 0) return false;
    const std::uint64_t h = normalize(hash);
    const std::size_t mask = slots_.size() - 1;
    std::size_t i = h & mask;
    for (;; i = (i + 1) & mask) {
      Slot& slot = slots_[i];
      if (slot.hash == kEmpty) return false;
      if (slot.hash == h && eq(const_cast<const Value&>(slot.value))) break;
    }
    // Backward-shift deletion: pull each following cluster member whose
    // home position precedes (or is) the hole back into the hole.
    std::size_t hole = i;
    for (std::size_t j = (hole + 1) & mask;; j = (j + 1) & mask) {
      Slot& cand = slots_[j];
      if (cand.hash == kEmpty) break;
      const std::size_t home = cand.hash & mask;
      // `cand` may move back to `hole` iff its home position lies outside
      // the (cyclic) open interval (hole, j].
      const bool movable = ((j - home) & mask) >= ((j - hole) & mask);
      if (movable) {
        slots_[hole].hash = cand.hash;
        slots_[hole].value = std::move(cand.value);
        hole = j;
      }
    }
    slots_[hole].hash = kEmpty;
    slots_[hole].value = Value{};
    --size_;
    ++stats_.erases;
    return true;
  }

  /// Visits every entry as `f(std::uint64_t hash, Value&)`, in slot order.
  /// The table must not be mutated from inside `f`.
  template <typename F>
  void for_each(F&& f) {
    for (Slot& slot : slots_) {
      if (slot.hash != kEmpty) f(slot.hash, slot.value);
    }
  }

  void clear() {
    for (Slot& slot : slots_) {
      if (slot.hash != kEmpty) {
        slot.hash = kEmpty;
        slot.value = Value{};
      }
    }
    size_ = 0;
  }

  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }
  /// Slot capacity (0 until first insert; then a power of two).
  [[nodiscard]] std::size_t capacity() const { return slots_.size(); }
  [[nodiscard]] const Stats& stats() const { return stats_; }

  /// Pre-sizes for `n` live entries (setup-time; avoids growth churn).
  void reserve(std::size_t n) {
    std::size_t want = kMinCapacity;
    while (want * 3 < n * 4) want <<= 1;
    if (want > slots_.size()) rehash(want);
  }

 private:
  static constexpr std::uint64_t kEmpty = 0;

  struct Slot {
    std::uint64_t hash = kEmpty;
    Value value{};
  };

  [[nodiscard]] static std::uint64_t normalize(std::uint64_t hash) {
    return hash == kEmpty ? kGolden64 : hash;
  }

  Value& place(std::uint64_t h, Value&& value) {
    const std::size_t mask = slots_.size() - 1;
    for (std::size_t i = h & mask;; i = (i + 1) & mask) {
      Slot& slot = slots_[i];
      if (slot.hash == kEmpty) {
        slot.hash = h;
        slot.value = std::move(value);
        return slot.value;
      }
    }
  }

  void grow() {
    rehash(slots_.empty() ? kMinCapacity : slots_.size() * 2);
  }

  void rehash(std::size_t new_capacity) {
    assert((new_capacity & (new_capacity - 1)) == 0);
    std::vector<Slot> old = std::move(slots_);
    slots_.assign(new_capacity, Slot{});
    ++stats_.grows;
    for (Slot& slot : old) {
      if (slot.hash != kEmpty) place(slot.hash, std::move(slot.value));
    }
  }

  std::vector<Slot> slots_;
  std::size_t size_ = 0;
  Stats stats_;
};

}  // namespace svk::common
