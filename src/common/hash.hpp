// The one FNV-1a in the codebase.
//
// Transaction keys (sip/branch), dialog ids (dialog/dialog) and the
// network's per-datagram RNG seeding (sim/network) all hash with the same
// cheap byte loop — the "Hashing" cost block of the paper's Figure 3, the
// kind of header hash OpenSER uses for transaction lookup. Before this
// header each module carried a private copy; any drift between them would
// silently change digests (the datagram seeds feed loss/jitter draws).
// The constants are pinned by tests/state_store_test.cpp.
//
// All functions are constexpr and allocation-free: callers hash
// string_views straight off a parsed message, which is what lets the state
// tables probe without materializing owning key strings.
#pragma once

#include <cstdint>
#include <string_view>

namespace svk::common {

/// FNV-1a 64-bit offset basis and prime (the classic parameters).
inline constexpr std::uint64_t kFnvOffsetBasis = 0xcbf29ce484222325ULL;
inline constexpr std::uint64_t kFnvPrime = 0x100000001b3ULL;

/// 64-bit golden-ratio constant, used to fold small enums/integers into an
/// FNV state (and by the network's counter-based seed mixing).
inline constexpr std::uint64_t kGolden64 = 0x9E3779B97F4A7C15ULL;
/// SplitMix64's first mixing multiplier; second stream of the seed mix.
inline constexpr std::uint64_t kSplitMix64A = 0xBF58476D1CE4E5B9ULL;

/// FNV-1a over `data`, continuing from `seed` — chain calls to hash
/// multi-part keys without concatenating them.
[[nodiscard]] constexpr std::uint64_t fnv1a(
    std::string_view data, std::uint64_t seed = kFnvOffsetBasis) noexcept {
  std::uint64_t h = seed;
  for (const char c : data) {
    h ^= static_cast<std::uint8_t>(c);
    h *= kFnvPrime;
  }
  return h;
}

/// Folds one byte into an FNV-1a state (for separators like '@').
[[nodiscard]] constexpr std::uint64_t fnv1a_byte(std::uint8_t byte,
                                                 std::uint64_t seed) noexcept {
  return (seed ^ byte) * kFnvPrime;
}

/// The network layer's per-datagram seed mix: base seed x stream id x
/// per-stream counter. Cheap by design — Rng's SplitMix64 seeding finishes
/// the scrambling. Extracted verbatim from sim/network.hpp; changing this
/// changes every loss/jitter draw and therefore every digest.
[[nodiscard]] constexpr std::uint64_t counter_seed(std::uint64_t base,
                                                   std::uint64_t stream,
                                                   std::uint64_t n) noexcept {
  return base ^ (stream * kGolden64) ^ (n * kSplitMix64A);
}

}  // namespace svk::common
