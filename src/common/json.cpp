#include "common/json.hpp"

#include <charconv>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <limits>

namespace svk {
namespace {

void append_double(std::string& out, double d) {
  if (!std::isfinite(d)) {
    out += "null";  // JSON has no NaN/Inf
    return;
  }
  char buf[32];
  const auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), d);
  if (ec == std::errc{}) {
    out.append(buf, ptr);
  } else {
    std::snprintf(buf, sizeof(buf), "%.17g", d);
    out += buf;
  }
}

void append_indent(std::string& out, int indent, int depth) {
  out += '\n';
  out.append(static_cast<std::size_t>(indent) * depth, ' ');
}

}  // namespace

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
  return out;
}

JsonValue::JsonValue(std::uint64_t u) {
  if (u <= static_cast<std::uint64_t>(
               std::numeric_limits<std::int64_t>::max())) {
    value_ = static_cast<std::int64_t>(u);
  } else {
    value_ = static_cast<double>(u);
  }
}

JsonValue& JsonValue::operator[](std::string_view key) {
  if (std::holds_alternative<std::nullptr_t>(value_)) value_ = Object{};
  auto& members = std::get<Object>(value_);
  for (Member& member : members) {
    if (member.first == key) return member.second;
  }
  members.emplace_back(std::string(key), JsonValue{});
  return members.back().second;
}

void JsonValue::push_back(JsonValue v) {
  if (std::holds_alternative<std::nullptr_t>(value_)) value_ = Array{};
  std::get<Array>(value_).push_back(std::move(v));
}

std::size_t JsonValue::size() const {
  if (const auto* arr = std::get_if<Array>(&value_)) return arr->size();
  if (const auto* obj = std::get_if<Object>(&value_)) return obj->size();
  return 0;
}

void JsonValue::dump_to(std::string& out, int indent, int depth) const {
  const bool pretty = indent >= 0;
  if (std::holds_alternative<std::nullptr_t>(value_)) {
    out += "null";
  } else if (const auto* b = std::get_if<bool>(&value_)) {
    out += *b ? "true" : "false";
  } else if (const auto* i = std::get_if<std::int64_t>(&value_)) {
    char buf[24];
    const auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), *i);
    (void)ec;
    out.append(buf, ptr);
  } else if (const auto* d = std::get_if<double>(&value_)) {
    append_double(out, *d);
  } else if (const auto* s = std::get_if<std::string>(&value_)) {
    out += json_escape(*s);
  } else if (const auto* arr = std::get_if<Array>(&value_)) {
    if (arr->empty()) {
      out += "[]";
      return;
    }
    out += '[';
    for (std::size_t k = 0; k < arr->size(); ++k) {
      if (k > 0) out += ',';
      if (pretty) append_indent(out, indent, depth + 1);
      (*arr)[k].dump_to(out, indent, depth + 1);
    }
    if (pretty) append_indent(out, indent, depth);
    out += ']';
  } else {
    const auto& obj = std::get<Object>(value_);
    if (obj.empty()) {
      out += "{}";
      return;
    }
    out += '{';
    for (std::size_t k = 0; k < obj.size(); ++k) {
      if (k > 0) out += ',';
      if (pretty) append_indent(out, indent, depth + 1);
      out += json_escape(obj[k].first);
      out += pretty ? ": " : ":";
      obj[k].second.dump_to(out, indent, depth + 1);
    }
    if (pretty) append_indent(out, indent, depth);
    out += '}';
  }
}

std::string JsonValue::dump(int indent) const {
  std::string out;
  dump_to(out, indent, 0);
  return out;
}

bool JsonValue::write_file(const std::string& path, int indent) const {
  std::ofstream file(path);
  if (!file) return false;
  file << dump(indent) << '\n';
  return static_cast<bool>(file);
}

}  // namespace svk
