#include "common/json.hpp"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <limits>
#include <sstream>

namespace svk {
namespace {

void append_double(std::string& out, double d) {
  if (!std::isfinite(d)) {
    out += "null";  // JSON has no NaN/Inf
    return;
  }
  char buf[32];
  const auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), d);
  if (ec == std::errc{}) {
    out.append(buf, ptr);
  } else {
    std::snprintf(buf, sizeof(buf), "%.17g", d);
    out += buf;
  }
}

void append_indent(std::string& out, int indent, int depth) {
  out += '\n';
  out.append(static_cast<std::size_t>(indent) * depth, ' ');
}

/// Recursive-descent JSON reader over a string_view. Depth-bounded so a
/// malicious "[[[[..." file cannot blow the stack.
class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  std::optional<JsonValue> run(std::string* error) {
    JsonValue value;
    if (!parse_value(value, 0)) {
      if (error != nullptr) {
        *error = error_ + " at offset " + std::to_string(pos_);
      }
      return std::nullopt;
    }
    skip_ws();
    if (pos_ != text_.size()) {
      if (error != nullptr) {
        *error = "trailing characters at offset " + std::to_string(pos_);
      }
      return std::nullopt;
    }
    return value;
  }

 private:
  static constexpr int kMaxDepth = 64;

  bool fail(const char* message) {
    error_ = message;
    return false;
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool parse_value(JsonValue& out, int depth) {
    if (depth > kMaxDepth) return fail("nesting too deep");
    skip_ws();
    if (pos_ >= text_.size()) return fail("unexpected end of input");
    switch (text_[pos_]) {
      case '{': return parse_object(out, depth);
      case '[': return parse_array(out, depth);
      case '"': {
        std::string s;
        if (!parse_string(s)) return false;
        out = JsonValue(std::move(s));
        return true;
      }
      case 't':
        if (text_.substr(pos_, 4) == "true") {
          pos_ += 4;
          out = JsonValue(true);
          return true;
        }
        return fail("invalid literal");
      case 'f':
        if (text_.substr(pos_, 5) == "false") {
          pos_ += 5;
          out = JsonValue(false);
          return true;
        }
        return fail("invalid literal");
      case 'n':
        if (text_.substr(pos_, 4) == "null") {
          pos_ += 4;
          out = JsonValue(nullptr);
          return true;
        }
        return fail("invalid literal");
      default: return parse_number(out);
    }
  }

  bool parse_object(JsonValue& out, int depth) {
    ++pos_;  // '{'
    out = JsonValue::object();
    skip_ws();
    if (consume('}')) return true;
    while (true) {
      skip_ws();
      std::string key;
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return fail("expected object key");
      }
      if (!parse_string(key)) return false;
      skip_ws();
      if (!consume(':')) return fail("expected ':'");
      JsonValue member;
      if (!parse_value(member, depth + 1)) return false;
      out[key] = std::move(member);
      skip_ws();
      if (consume(',')) continue;
      if (consume('}')) return true;
      return fail("expected ',' or '}'");
    }
  }

  bool parse_array(JsonValue& out, int depth) {
    ++pos_;  // '['
    out = JsonValue::array();
    skip_ws();
    if (consume(']')) return true;
    while (true) {
      JsonValue element;
      if (!parse_value(element, depth + 1)) return false;
      out.push_back(std::move(element));
      skip_ws();
      if (consume(',')) continue;
      if (consume(']')) return true;
      return fail("expected ',' or ']'");
    }
  }

  bool parse_string(std::string& out) {
    ++pos_;  // opening quote
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '"') {
        ++pos_;
        return true;
      }
      if (c == '\\') {
        ++pos_;
        if (pos_ >= text_.size()) break;
        switch (text_[pos_]) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'u': {
            if (pos_ + 4 >= text_.size()) return fail("truncated \\u escape");
            unsigned code = 0;
            for (int k = 1; k <= 4; ++k) {
              const char h = text_[pos_ + static_cast<std::size_t>(k)];
              code <<= 4;
              if (h >= '0' && h <= '9') {
                code |= static_cast<unsigned>(h - '0');
              } else if (h >= 'a' && h <= 'f') {
                code |= static_cast<unsigned>(h - 'a' + 10);
              } else if (h >= 'A' && h <= 'F') {
                code |= static_cast<unsigned>(h - 'A' + 10);
              } else {
                return fail("invalid \\u escape");
              }
            }
            pos_ += 4;
            // UTF-8 encode the BMP code point (surrogate pairs are not
            // recombined — our own serializer only escapes control chars).
            if (code < 0x80) {
              out += static_cast<char>(code);
            } else if (code < 0x800) {
              out += static_cast<char>(0xC0 | (code >> 6));
              out += static_cast<char>(0x80 | (code & 0x3F));
            } else {
              out += static_cast<char>(0xE0 | (code >> 12));
              out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
              out += static_cast<char>(0x80 | (code & 0x3F));
            }
            break;
          }
          default: return fail("invalid escape");
        }
        ++pos_;
        continue;
      }
      out += c;
      ++pos_;
    }
    return fail("unterminated string");
  }

  bool parse_number(JsonValue& out) {
    const std::size_t start = pos_;
    if (consume('-')) {}
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0)) {
      ++pos_;
    }
    bool is_double = false;
    if (consume('.')) {
      is_double = true;
      while (pos_ < text_.size() &&
             (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0)) {
        ++pos_;
      }
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      is_double = true;
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      while (pos_ < text_.size() &&
             (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0)) {
        ++pos_;
      }
    }
    const std::string_view token = text_.substr(start, pos_ - start);
    if (token.empty() || token == "-") return fail("invalid number");
    if (!is_double) {
      std::int64_t i = 0;
      const auto [ptr, ec] =
          std::from_chars(token.data(), token.data() + token.size(), i);
      if (ec == std::errc{} && ptr == token.data() + token.size()) {
        out = JsonValue(i);
        return true;
      }
    }
    double d = 0.0;
    const auto [ptr, ec] =
        std::from_chars(token.data(), token.data() + token.size(), d);
    if (ec != std::errc{} || ptr != token.data() + token.size()) {
      return fail("invalid number");
    }
    out = JsonValue(d);
    return true;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  std::string error_;
};

}  // namespace

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
  return out;
}

JsonValue::JsonValue(std::uint64_t u) {
  if (u <= static_cast<std::uint64_t>(
               std::numeric_limits<std::int64_t>::max())) {
    value_ = static_cast<std::int64_t>(u);
  } else {
    value_ = static_cast<double>(u);
  }
}

JsonValue& JsonValue::operator[](std::string_view key) {
  if (std::holds_alternative<std::nullptr_t>(value_)) value_ = Object{};
  auto& members = std::get<Object>(value_);
  for (Member& member : members) {
    if (member.first == key) return member.second;
  }
  members.emplace_back(std::string(key), JsonValue{});
  return members.back().second;
}

void JsonValue::push_back(JsonValue v) {
  if (std::holds_alternative<std::nullptr_t>(value_)) value_ = Array{};
  std::get<Array>(value_).push_back(std::move(v));
}

std::size_t JsonValue::size() const {
  if (const auto* arr = std::get_if<Array>(&value_)) return arr->size();
  if (const auto* obj = std::get_if<Object>(&value_)) return obj->size();
  return 0;
}

void JsonValue::dump_to(std::string& out, int indent, int depth) const {
  const bool pretty = indent >= 0;
  if (std::holds_alternative<std::nullptr_t>(value_)) {
    out += "null";
  } else if (const auto* b = std::get_if<bool>(&value_)) {
    out += *b ? "true" : "false";
  } else if (const auto* i = std::get_if<std::int64_t>(&value_)) {
    char buf[24];
    const auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), *i);
    (void)ec;
    out.append(buf, ptr);
  } else if (const auto* d = std::get_if<double>(&value_)) {
    append_double(out, *d);
  } else if (const auto* s = std::get_if<std::string>(&value_)) {
    out += json_escape(*s);
  } else if (const auto* arr = std::get_if<Array>(&value_)) {
    if (arr->empty()) {
      out += "[]";
      return;
    }
    out += '[';
    for (std::size_t k = 0; k < arr->size(); ++k) {
      if (k > 0) out += ',';
      if (pretty) append_indent(out, indent, depth + 1);
      (*arr)[k].dump_to(out, indent, depth + 1);
    }
    if (pretty) append_indent(out, indent, depth);
    out += ']';
  } else {
    const auto& obj = std::get<Object>(value_);
    if (obj.empty()) {
      out += "{}";
      return;
    }
    out += '{';
    for (std::size_t k = 0; k < obj.size(); ++k) {
      if (k > 0) out += ',';
      if (pretty) append_indent(out, indent, depth + 1);
      out += json_escape(obj[k].first);
      out += pretty ? ": " : ":";
      obj[k].second.dump_to(out, indent, depth + 1);
    }
    if (pretty) append_indent(out, indent, depth);
    out += '}';
  }
}

std::string JsonValue::dump(int indent) const {
  std::string out;
  dump_to(out, indent, 0);
  return out;
}

bool JsonValue::write_file(const std::string& path, int indent) const {
  std::ofstream file(path);
  if (!file) return false;
  file << dump(indent) << '\n';
  return static_cast<bool>(file);
}

std::optional<JsonValue> JsonValue::parse(std::string_view text,
                                          std::string* error) {
  return Parser(text).run(error);
}

std::optional<JsonValue> JsonValue::parse_file(const std::string& path,
                                               std::string* error) {
  std::ifstream file(path);
  if (!file) {
    if (error != nullptr) *error = "cannot open " + path;
    return std::nullopt;
  }
  std::ostringstream buffer;
  buffer << file.rdbuf();
  return parse(buffer.str(), error);
}

const JsonValue* JsonValue::find(std::string_view key) const {
  const auto* obj = std::get_if<Object>(&value_);
  if (obj == nullptr) return nullptr;
  for (const Member& member : *obj) {
    if (member.first == key) return &member.second;
  }
  return nullptr;
}

std::optional<double> JsonValue::as_number() const {
  if (const auto* i = std::get_if<std::int64_t>(&value_)) {
    return static_cast<double>(*i);
  }
  if (const auto* d = std::get_if<double>(&value_)) return *d;
  return std::nullopt;
}

std::optional<bool> JsonValue::as_bool() const {
  if (const auto* b = std::get_if<bool>(&value_)) return *b;
  return std::nullopt;
}

std::optional<std::string_view> JsonValue::as_string() const {
  if (const auto* s = std::get_if<std::string>(&value_)) return *s;
  return std::nullopt;
}

}  // namespace svk
