// Minimal JSON document builder + serializer + parser (no third-party deps).
//
// Only what the bench/result/fault pipelines need: build a tree of
// objects/arrays/numbers/strings/bools and dump it as standards-compliant
// JSON text, or parse such text back (fault plans, replay artifacts).
// Object keys keep insertion order so emitted files diff cleanly across
// runs. The parser is a strict recursive-descent reader of the same
// subset the serializer emits; it exists so FaultPlan files written by the
// chaos harness can be replayed, not as a general-purpose JSON library.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <variant>
#include <vector>

namespace svk {

class JsonValue {
 public:
  using Array = std::vector<JsonValue>;
  using Member = std::pair<std::string, JsonValue>;
  using Object = std::vector<Member>;

  JsonValue() : value_(nullptr) {}
  JsonValue(std::nullptr_t) : value_(nullptr) {}
  JsonValue(bool b) : value_(b) {}
  JsonValue(double d) : value_(d) {}
  JsonValue(int i) : value_(static_cast<std::int64_t>(i)) {}
  JsonValue(unsigned u) : value_(static_cast<std::int64_t>(u)) {}
  JsonValue(std::int64_t i) : value_(i) {}
  JsonValue(std::uint64_t u);
  JsonValue(const char* s) : value_(std::string(s)) {}
  JsonValue(std::string_view s) : value_(std::string(s)) {}
  JsonValue(std::string s) : value_(std::move(s)) {}

  [[nodiscard]] static JsonValue object() {
    JsonValue v;
    v.value_ = Object{};
    return v;
  }
  [[nodiscard]] static JsonValue array() {
    JsonValue v;
    v.value_ = Array{};
    return v;
  }
  /// Builds an array from any container of values convertible to JsonValue.
  template <typename Container>
  [[nodiscard]] static JsonValue array_of(const Container& items) {
    JsonValue v = array();
    for (const auto& item : items) v.push_back(JsonValue(item));
    return v;
  }

  /// Parses JSON text. Returns nullopt on malformed input; when `error` is
  /// non-null it receives a one-line description with the byte offset.
  [[nodiscard]] static std::optional<JsonValue> parse(
      std::string_view text, std::string* error = nullptr);

  /// Reads and parses a whole file. Returns nullopt on I/O or parse error.
  [[nodiscard]] static std::optional<JsonValue> parse_file(
      const std::string& path, std::string* error = nullptr);

  [[nodiscard]] bool is_object() const {
    return std::holds_alternative<Object>(value_);
  }
  [[nodiscard]] bool is_array() const {
    return std::holds_alternative<Array>(value_);
  }
  [[nodiscard]] bool is_null() const {
    return std::holds_alternative<std::nullptr_t>(value_);
  }

  // --- Read accessors (for parsed documents) -------------------------------
  /// Object member lookup; nullptr when absent or not an object.
  [[nodiscard]] const JsonValue* find(std::string_view key) const;
  /// Number as double (accepts integer and floating members).
  [[nodiscard]] std::optional<double> as_number() const;
  [[nodiscard]] std::optional<bool> as_bool() const;
  [[nodiscard]] std::optional<std::string_view> as_string() const;
  [[nodiscard]] const Array* as_array() const {
    return std::get_if<Array>(&value_);
  }
  [[nodiscard]] const Object* as_object() const {
    return std::get_if<Object>(&value_);
  }

  /// Object member access; creates the member (and converts a null value to
  /// an object) on first use, like nlohmann/json.
  JsonValue& operator[](std::string_view key);

  /// Appends to an array (converts a null value to an array on first use).
  void push_back(JsonValue v);

  [[nodiscard]] std::size_t size() const;

  /// Serializes. `indent` < 0 produces compact single-line output;
  /// otherwise pretty-prints with that many spaces per level.
  [[nodiscard]] std::string dump(int indent = -1) const;

  /// Serializes straight to a file. Returns false on I/O failure.
  bool write_file(const std::string& path, int indent = 2) const;

 private:
  void dump_to(std::string& out, int indent, int depth) const;

  std::variant<std::nullptr_t, bool, std::int64_t, double, std::string,
               Array, Object>
      value_;
};

/// Escapes a string for embedding in JSON (adds surrounding quotes).
[[nodiscard]] std::string json_escape(std::string_view s);

}  // namespace svk
