#include "common/logging.hpp"

#include <atomic>
#include <cstdio>

namespace svk {
namespace {

std::atomic<LogLevel> g_level{LogLevel::kOff};

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}

}  // namespace

void Logger::set_level(LogLevel level) { g_level.store(level); }

LogLevel Logger::level() { return g_level.load(); }

void Logger::write(LogLevel level, const std::string& message) {
  std::fprintf(stderr, "[%s] %s\n", level_name(level), message.c_str());
}

}  // namespace svk
