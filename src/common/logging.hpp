// Minimal leveled logging. Off by default so that simulation hot paths pay
// only a branch; enable via Logger::set_level for debugging runs.
#pragma once

#include <sstream>
#include <string>

namespace svk {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Process-wide log sink writing to stderr.
class Logger {
 public:
  static void set_level(LogLevel level);
  [[nodiscard]] static LogLevel level();

  static void write(LogLevel level, const std::string& message);

  [[nodiscard]] static bool enabled(LogLevel level) {
    return level >= Logger::level();
  }
};

}  // namespace svk

// Usage: SVK_LOG(kInfo, "node " << id << " overloaded");
#define SVK_LOG(lvl, expr)                                          \
  do {                                                              \
    if (::svk::Logger::enabled(::svk::LogLevel::lvl)) {             \
      std::ostringstream svk_log_oss;                               \
      svk_log_oss << expr;                                          \
      ::svk::Logger::write(::svk::LogLevel::lvl, svk_log_oss.str()); \
    }                                                               \
  } while (0)
