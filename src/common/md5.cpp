#include "common/md5.hpp"

#include <cassert>
#include <cstring>

namespace svk {
namespace {

constexpr std::array<std::uint32_t, 64> kSines = {
    0xd76aa478, 0xe8c7b756, 0x242070db, 0xc1bdceee, 0xf57c0faf, 0x4787c62a,
    0xa8304613, 0xfd469501, 0x698098d8, 0x8b44f7af, 0xffff5bb1, 0x895cd7be,
    0x6b901122, 0xfd987193, 0xa679438e, 0x49b40821, 0xf61e2562, 0xc040b340,
    0x265e5a51, 0xe9b6c7aa, 0xd62f105d, 0x02441453, 0xd8a1e681, 0xe7d3fbc8,
    0x21e1cde6, 0xc33707d6, 0xf4d50d87, 0x455a14ed, 0xa9e3e905, 0xfcefa3f8,
    0x676f02d9, 0x8d2a4c8a, 0xfffa3942, 0x8771f681, 0x6d9d6122, 0xfde5380c,
    0xa4beea44, 0x4bdecfa9, 0xf6bb4b60, 0xbebfbc70, 0x289b7ec6, 0xeaa127fa,
    0xd4ef3085, 0x04881d05, 0xd9d4d039, 0xe6db99e5, 0x1fa27cf8, 0xc4ac5665,
    0xf4292244, 0x432aff97, 0xab9423a7, 0xfc93a039, 0x655b59c3, 0x8f0ccc92,
    0xffeff47d, 0x85845dd1, 0x6fa87e4f, 0xfe2ce6e0, 0xa3014314, 0x4e0811a1,
    0xf7537e82, 0xbd3af235, 0x2ad7d2bb, 0xeb86d391};

constexpr std::array<std::uint32_t, 64> kShifts = {
    7, 12, 17, 22, 7, 12, 17, 22, 7, 12, 17, 22, 7, 12, 17, 22,
    5, 9,  14, 20, 5, 9,  14, 20, 5, 9,  14, 20, 5, 9,  14, 20,
    4, 11, 16, 23, 4, 11, 16, 23, 4, 11, 16, 23, 4, 11, 16, 23,
    6, 10, 15, 21, 6, 10, 15, 21, 6, 10, 15, 21, 6, 10, 15, 21};

constexpr std::uint32_t rotl32(std::uint32_t x, std::uint32_t c) {
  return (x << c) | (x >> (32 - c));
}

}  // namespace

Md5::Md5() : state_{0x67452301, 0xefcdab89, 0x98badcfe, 0x10325476} {}

void Md5::process_block(const std::uint8_t* block) {
  std::uint32_t m[16];
  for (int i = 0; i < 16; ++i) {
    m[i] = static_cast<std::uint32_t>(block[i * 4]) |
           (static_cast<std::uint32_t>(block[i * 4 + 1]) << 8) |
           (static_cast<std::uint32_t>(block[i * 4 + 2]) << 16) |
           (static_cast<std::uint32_t>(block[i * 4 + 3]) << 24);
  }

  std::uint32_t a = state_[0], b = state_[1], c = state_[2], d = state_[3];
  for (std::uint32_t i = 0; i < 64; ++i) {
    std::uint32_t f;
    std::uint32_t g;
    if (i < 16) {
      f = (b & c) | (~b & d);
      g = i;
    } else if (i < 32) {
      f = (d & b) | (~d & c);
      g = (5 * i + 1) % 16;
    } else if (i < 48) {
      f = b ^ c ^ d;
      g = (3 * i + 5) % 16;
    } else {
      f = c ^ (b | ~d);
      g = (7 * i) % 16;
    }
    const std::uint32_t tmp = d;
    d = c;
    c = b;
    b = b + rotl32(a + f + kSines[i] + m[g], kShifts[i]);
    a = tmp;
  }

  state_[0] += a;
  state_[1] += b;
  state_[2] += c;
  state_[3] += d;
}

void Md5::update(std::string_view data) {
  assert(!finalized_);
  length_ += data.size();
  const auto* bytes = reinterpret_cast<const std::uint8_t*>(data.data());
  std::size_t remaining = data.size();

  if (buffered_ > 0) {
    const std::size_t take = std::min(remaining, buffer_.size() - buffered_);
    std::memcpy(buffer_.data() + buffered_, bytes, take);
    buffered_ += take;
    bytes += take;
    remaining -= take;
    if (buffered_ == buffer_.size()) {
      process_block(buffer_.data());
      buffered_ = 0;
    }
  }
  while (remaining >= 64) {
    process_block(bytes);
    bytes += 64;
    remaining -= 64;
  }
  if (remaining > 0) {
    std::memcpy(buffer_.data(), bytes, remaining);
    buffered_ = remaining;
  }
}

std::array<std::uint8_t, 16> Md5::digest() {
  assert(!finalized_);
  finalized_ = true;

  const std::uint64_t bit_length = length_ * 8;
  // Padding: 0x80 then zeros until 56 mod 64, then 64-bit little-endian
  // length.
  std::uint8_t pad[72] = {0x80};
  const std::size_t pad_len =
      (buffered_ < 56) ? (56 - buffered_) : (120 - buffered_);
  // Feed without asserting on finalized_ again.
  finalized_ = false;
  update(std::string_view(reinterpret_cast<const char*>(pad), pad_len));
  std::uint8_t len_bytes[8];
  for (int i = 0; i < 8; ++i) {
    len_bytes[i] = static_cast<std::uint8_t>((bit_length >> (8 * i)) & 0xFF);
  }
  update(std::string_view(reinterpret_cast<const char*>(len_bytes), 8));
  finalized_ = true;
  assert(buffered_ == 0);

  std::array<std::uint8_t, 16> out{};
  for (int i = 0; i < 4; ++i) {
    out[i * 4] = static_cast<std::uint8_t>(state_[i] & 0xFF);
    out[i * 4 + 1] = static_cast<std::uint8_t>((state_[i] >> 8) & 0xFF);
    out[i * 4 + 2] = static_cast<std::uint8_t>((state_[i] >> 16) & 0xFF);
    out[i * 4 + 3] = static_cast<std::uint8_t>((state_[i] >> 24) & 0xFF);
  }
  return out;
}

std::string Md5::hex(std::string_view data) {
  Md5 h;
  h.update(data);
  return to_hex(h.digest());
}

std::string to_hex(const std::array<std::uint8_t, 16>& digest) {
  static constexpr char kHex[] = "0123456789abcdef";
  std::string out(32, '0');
  for (std::size_t i = 0; i < digest.size(); ++i) {
    out[i * 2] = kHex[digest[i] >> 4];
    out[i * 2 + 1] = kHex[digest[i] & 0xF];
  }
  return out;
}

}  // namespace svk
