// MD5 message digest (RFC 1321), implemented from scratch for SIP Digest
// authentication (RFC 2617 uses MD5 for the H(A1)/H(A2) computation).
//
// MD5 is cryptographically broken; it is used here solely for protocol
// fidelity with the SIP Digest scheme the paper's OpenSER deployment ran,
// not as a security primitive.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <string_view>

namespace svk {

/// Incremental MD5 hasher.
class Md5 {
 public:
  Md5();

  void update(std::string_view data);

  /// Finalizes and returns the 16-byte digest. The hasher must not be
  /// updated afterwards.
  [[nodiscard]] std::array<std::uint8_t, 16> digest();

  /// Convenience: hex digest of a single buffer.
  [[nodiscard]] static std::string hex(std::string_view data);

 private:
  void process_block(const std::uint8_t* block);

  std::array<std::uint32_t, 4> state_;
  std::uint64_t length_{0};  // total bytes fed
  std::array<std::uint8_t, 64> buffer_{};
  std::size_t buffered_{0};
  bool finalized_{false};
};

/// Renders a 16-byte digest as 32 lowercase hex characters.
[[nodiscard]] std::string to_hex(const std::array<std::uint8_t, 16>& digest);

}  // namespace svk
