// A small Result<T> for recoverable failures (malformed wire input, lookup
// misses) where throwing would be wrong: these are expected outcomes, not
// programming errors. Modeled on std::expected (unavailable pre-C++23).
#pragma once

#include <cassert>
#include <string>
#include <utility>
#include <variant>

namespace svk {

/// Carries an error description for a failed operation.
struct Error {
  std::string message;
};

[[nodiscard]] inline Error make_error(std::string msg) {
  return Error{std::move(msg)};
}

/// Either a value of type T or an Error.
///
/// Accessing value() on a failed Result is a precondition violation
/// (asserted), mirroring std::expected.
template <typename T>
class Result {
 public:
  Result(T value) : data_(std::move(value)) {}  // NOLINT(google-explicit-constructor)
  Result(Error error) : data_(std::move(error)) {}  // NOLINT(google-explicit-constructor)

  [[nodiscard]] bool ok() const { return std::holds_alternative<T>(data_); }
  explicit operator bool() const { return ok(); }

  [[nodiscard]] const T& value() const& {
    assert(ok());
    return std::get<T>(data_);
  }
  [[nodiscard]] T& value() & {
    assert(ok());
    return std::get<T>(data_);
  }
  [[nodiscard]] T&& value() && {
    assert(ok());
    return std::get<T>(std::move(data_));
  }

  [[nodiscard]] const Error& error() const {
    assert(!ok());
    return std::get<Error>(data_);
  }

  [[nodiscard]] T value_or(T fallback) const {
    return ok() ? std::get<T>(data_) : std::move(fallback);
  }

 private:
  std::variant<T, Error> data_;
};

}  // namespace svk
