#include "common/rng.hpp"

#include <cassert>
#include <cmath>

namespace svk {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

constexpr std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  // SplitMix64 expansion guarantees a non-degenerate xoshiro state for any
  // seed, including zero.
  std::uint64_t s = seed;
  for (auto& word : state_) word = splitmix64(s);
}

std::uint64_t Rng::next() {
  const std::uint64_t result = rotl(state_[0] + state_[3], 23) + state_[0];
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  return lo + (hi - lo) * uniform();
}

std::uint64_t Rng::uniform_int(std::uint64_t n) {
  assert(n > 0);
  // Rejection sampling for an unbiased draw.
  const std::uint64_t limit = UINT64_MAX - UINT64_MAX % n;
  std::uint64_t draw = next();
  while (draw >= limit) draw = next();
  return draw % n;
}

bool Rng::bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform() < p;
}

double Rng::exponential(double mean) {
  assert(mean > 0.0);
  // Inverse transform; uniform() < 1 so log argument is > 0.
  return -mean * std::log(1.0 - uniform());
}

Rng Rng::split(std::uint64_t salt) {
  std::uint64_t mix = next() ^ (salt * 0x9E3779B97F4A7C15ULL);
  return Rng{splitmix64(mix)};
}

}  // namespace svk
