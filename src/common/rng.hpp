// Deterministic pseudo-random number generation.
//
// Simulation runs must be exactly reproducible from a seed, so we ship our
// own generator (xoshiro256++, public domain algorithm by Blackman & Vigna)
// rather than relying on the unspecified std::default_random_engine, and our
// own distribution transforms rather than the implementation-defined
// std::*_distribution.
#pragma once

#include <array>
#include <cstdint>

namespace svk {

/// xoshiro256++ generator with SplitMix64 seeding.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x5EEDC0FFEEULL);

  /// Uniform 64-bit draw.
  std::uint64_t next();

  // UniformRandomBitGenerator interface.
  std::uint64_t operator()() { return next(); }
  static constexpr std::uint64_t min() { return 0; }
  static constexpr std::uint64_t max() { return UINT64_MAX; }

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [0, n). Precondition: n > 0.
  std::uint64_t uniform_int(std::uint64_t n);

  /// Bernoulli trial with probability p of returning true.
  bool bernoulli(double p);

  /// Exponentially distributed draw with the given mean (> 0).
  double exponential(double mean);

  /// Splits off an independently seeded child generator. Children derived
  /// with distinct salts produce decorrelated streams.
  [[nodiscard]] Rng split(std::uint64_t salt);

 private:
  std::array<std::uint64_t, 4> state_{};
};

}  // namespace svk
