#include "common/run_record.hpp"

namespace svk {

JsonValue RunRecord::to_json() const {
  JsonValue v = JsonValue::object();
  if (!label.empty()) v["label"] = label;
  v["offered_cps"] = offered_cps;
  v["achieved_cps"] = achieved_cps;
  v["attempted_cps"] = attempted_cps;
  v["goodput_ratio"] = goodput_ratio;
  JsonValue& setup = v["setup_ms"];
  setup["mean"] = setup_ms_mean;
  setup["p50"] = setup_ms_p50;
  setup["p90"] = setup_ms_p90;
  setup["p99"] = setup_ms_p99;
  v["retransmissions"] = retransmissions;
  v["calls_failed"] = calls_failed;
  v["busy_500"] = busy_500;
  v["busy_503"] = busy_503;
  v["calls_rejected"] = calls_rejected;
  v["calls_timed_out"] = calls_timed_out;
  v["node_utilization"] = JsonValue::array_of(node_utilization);
  v["node_rejected"] = JsonValue::array_of(node_rejected);
  v["node_rejected_503"] = JsonValue::array_of(node_rejected_503);
  v["wall_seconds"] = wall_seconds;
  if (controller_windows.is_array()) {
    v["controller_windows"] = controller_windows;
  }
  return v;
}

}  // namespace svk
