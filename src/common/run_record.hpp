// RunRecord — one load point of a measurement run in a layer-neutral,
// serializable form. The workload runner fills these from its PointResults
// and the bench harness dumps them into BENCH_<name>.json (schema
// documented in EXPERIMENTS.md).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/json.hpp"

namespace svk {

struct RunRecord {
  std::string label;  // series or configuration name, may be empty

  double offered_cps = 0.0;
  double achieved_cps = 0.0;   // throughput measured at the UASes
  double attempted_cps = 0.0;
  double goodput_ratio = 0.0;

  double setup_ms_mean = 0.0;
  double setup_ms_p50 = 0.0;
  double setup_ms_p90 = 0.0;
  double setup_ms_p99 = 0.0;

  std::uint64_t retransmissions = 0;
  std::uint64_t calls_failed = 0;
  std::uint64_t busy_500 = 0;
  std::uint64_t busy_503 = 0;         // overload-control rejections seen
  std::uint64_t calls_rejected = 0;   // failed fast via 503
  std::uint64_t calls_timed_out = 0;  // failed slow via timer B/F

  std::vector<double> node_utilization;        // per node, in [0,1]
  std::vector<std::uint64_t> node_rejected;    // 500s sent per node
  std::vector<std::uint64_t> node_rejected_503;  // 503s sent per node

  double wall_seconds = 0.0;  // real time spent measuring this point

  /// Per-window controller audit series (schema in EXPERIMENTS.md),
  /// pre-serialized by the layer that owns the audit log. Null (and then
  /// omitted from to_json) unless the run had observability enabled.
  JsonValue controller_windows;

  [[nodiscard]] JsonValue to_json() const;
};

}  // namespace svk
