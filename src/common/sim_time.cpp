#include "common/sim_time.hpp"

#include <cstdio>

namespace svk {

std::string SimTime::to_string() const {
  char buf[32];
  if (ns_ >= 1'000'000'000 || ns_ <= -1'000'000'000) {
    std::snprintf(buf, sizeof(buf), "%.3fs", to_seconds());
  } else if (ns_ >= 1'000'000 || ns_ <= -1'000'000) {
    std::snprintf(buf, sizeof(buf), "%.3fms", to_millis());
  } else if (ns_ >= 1'000 || ns_ <= -1'000) {
    std::snprintf(buf, sizeof(buf), "%.3fus", ns_ * 1e-3);
  } else {
    std::snprintf(buf, sizeof(buf), "%ldns", static_cast<long>(ns_));
  }
  return buf;
}

std::ostream& operator<<(std::ostream& os, SimTime t) {
  return os << t.to_string();
}

}  // namespace svk
