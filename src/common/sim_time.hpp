// Simulated time.
//
// The whole system runs on a single virtual clock owned by the discrete-event
// simulator. Time is kept as an integer nanosecond count so that event
// ordering is exact and runs are bit-reproducible (no floating-point drift).
#pragma once

#include <cstdint>
#include <ostream>
#include <string>

namespace svk {

/// A point on (or a distance along) the simulated timeline, in nanoseconds.
///
/// SimTime is used both as a time point and as a duration; the arithmetic is
/// the same and the simulation never needs wall-clock anchoring.
class SimTime {
 public:
  constexpr SimTime() = default;

  [[nodiscard]] static constexpr SimTime nanos(std::int64_t n) {
    return SimTime{n};
  }
  [[nodiscard]] static constexpr SimTime micros(std::int64_t us) {
    return SimTime{us * 1000};
  }
  [[nodiscard]] static constexpr SimTime millis(std::int64_t ms) {
    return SimTime{ms * 1'000'000};
  }
  [[nodiscard]] static constexpr SimTime seconds(double s) {
    return SimTime{static_cast<std::int64_t>(s * 1e9)};
  }
  /// The largest representable time; used as "never".
  [[nodiscard]] static constexpr SimTime max() {
    return SimTime{INT64_MAX};
  }

  [[nodiscard]] constexpr std::int64_t ns() const { return ns_; }
  [[nodiscard]] constexpr double to_seconds() const { return ns_ * 1e-9; }
  [[nodiscard]] constexpr double to_millis() const { return ns_ * 1e-6; }

  friend constexpr bool operator==(SimTime, SimTime) = default;
  friend constexpr auto operator<=>(SimTime, SimTime) = default;

  constexpr SimTime& operator+=(SimTime d) {
    ns_ += d.ns_;
    return *this;
  }
  constexpr SimTime& operator-=(SimTime d) {
    ns_ -= d.ns_;
    return *this;
  }
  friend constexpr SimTime operator+(SimTime a, SimTime b) {
    return SimTime{a.ns_ + b.ns_};
  }
  friend constexpr SimTime operator-(SimTime a, SimTime b) {
    return SimTime{a.ns_ - b.ns_};
  }
  friend constexpr SimTime operator*(SimTime a, std::int64_t k) {
    return SimTime{a.ns_ * k};
  }
  friend constexpr SimTime operator*(std::int64_t k, SimTime a) {
    return a * k;
  }

  /// Renders as a human-readable duration, e.g. "1.500s" or "250ms".
  [[nodiscard]] std::string to_string() const;

  friend std::ostream& operator<<(std::ostream& os, SimTime t);

 private:
  constexpr explicit SimTime(std::int64_t n) : ns_(n) {}

  std::int64_t ns_{0};
};

}  // namespace svk
