// Generation-tagged slab allocator — stable-address object pool for the
// state layer.
//
// Transactions and dialogs are created and destroyed once per call leg;
// holding each in its own unique_ptr made the state tables the last
// allocation-heavy layer of the hot loop (PR 4 pooled events and messages).
// A Slab instead places objects in fixed-size chunks with a freelist:
// steady-state create/erase touches no allocator, addresses are stable for
// an object's whole lifetime (chunks never move), and every slot carries a
// generation counter so a Handle held across erase-and-reuse — the
// schedule-removal-then-recreate pattern — can be detected as stale instead
// of resolving to the wrong object. The same idiom as the timer wheel's
// event-node pool (sim/timer_wheel.hpp), generalized.
#pragma once

#include <cassert>
#include <cstdint>
#include <memory>
#include <new>
#include <utility>
#include <vector>

namespace svk::common {

/// Identifies one live slab object: slot index plus the slot's generation
/// at allocation time. A default-constructed handle is null (never valid:
/// generations start at 1).
struct SlabHandle {
  std::uint32_t index = 0;
  std::uint32_t generation = 0;

  [[nodiscard]] bool null() const { return generation == 0; }
  friend bool operator==(const SlabHandle&, const SlabHandle&) = default;
};

template <typename T>
class Slab {
 public:
  static constexpr std::size_t kChunkSlots = 256;

  /// Allocation counters; `chunk_allocs` is the number of chunk mallocs
  /// ever made — the perf gate divides lifetime emplaces by it, and the
  /// steady-state microbench asserts it stops moving once warm.
  struct Stats {
    std::uint64_t emplaced = 0;
    std::uint64_t erased = 0;
    std::uint64_t chunk_allocs = 0;
    std::uint64_t freelist_reuses = 0;
  };

  Slab() = default;
  ~Slab() { clear(); }

  Slab(const Slab&) = delete;
  Slab& operator=(const Slab&) = delete;

  /// Constructs a T in a free slot. O(1); allocates only when every slot of
  /// every chunk is occupied. The object's address is stable until erase.
  template <typename... Args>
  [[nodiscard]] SlabHandle emplace(Args&&... args) {
    if (freelist_.empty()) grow();
    const std::uint32_t index = freelist_.back();
    freelist_.pop_back();
    Slot& slot = slot_at(index);
    assert(!slot.occupied);
    ::new (static_cast<void*>(&slot.storage)) T(std::forward<Args>(args)...);
    slot.occupied = true;
    ++live_;
    ++stats_.emplaced;
    if (slot.generation > 1) ++stats_.freelist_reuses;
    return SlabHandle{index, slot.generation};
  }

  /// The object behind `h`, or nullptr when the handle is stale (slot since
  /// erased, possibly reused by a different object) or null.
  [[nodiscard]] T* get(SlabHandle h) {
    if (h.null() || h.index >= slot_count()) return nullptr;
    Slot& slot = slot_at(h.index);
    if (!slot.occupied || slot.generation != h.generation) return nullptr;
    return std::launder(reinterpret_cast<T*>(&slot.storage));
  }
  [[nodiscard]] const T* get(SlabHandle h) const {
    return const_cast<Slab*>(this)->get(h);
  }

  /// Destroys the object behind `h` and recycles its slot (bumping the
  /// generation so outstanding handles go stale). Stale/null handles are a
  /// harmless no-op returning false — erase can race a scheduled removal.
  bool erase(SlabHandle h) {
    T* obj = get(h);
    if (obj == nullptr) return false;
    Slot& slot = slot_at(h.index);
    obj->~T();
    slot.occupied = false;
    ++slot.generation;
    --live_;
    ++stats_.erased;
    freelist_.push_back(h.index);
    return true;
  }

  /// Visits every live object in slot order (a fixed, deterministic order
  /// for a given history). `f(SlabHandle, T&)`. The visited object may be
  /// erased from inside `f`; erasing *other* objects mid-walk is also safe
  /// (their slots simply skip as unoccupied when reached).
  template <typename F>
  void for_each(F&& f) {
    const std::size_t n = slot_count();
    for (std::size_t i = 0; i < n; ++i) {
      Slot& slot = slot_at(static_cast<std::uint32_t>(i));
      if (!slot.occupied) continue;
      const SlabHandle h{static_cast<std::uint32_t>(i), slot.generation};
      f(h, *std::launder(reinterpret_cast<T*>(&slot.storage)));
    }
  }

  /// Destroys every live object (slot order); capacity is retained.
  void clear() {
    for_each([this](SlabHandle h, T&) { erase(h); });
  }

  [[nodiscard]] std::size_t size() const { return live_; }
  [[nodiscard]] bool empty() const { return live_ == 0; }
  [[nodiscard]] std::size_t capacity() const { return slot_count(); }
  [[nodiscard]] const Stats& stats() const { return stats_; }

 private:
  struct Slot {
    alignas(T) unsigned char storage[sizeof(T)];
    std::uint32_t generation = 1;
    bool occupied = false;
  };
  struct Chunk {
    Slot slots[kChunkSlots];
  };

  [[nodiscard]] std::size_t slot_count() const {
    return chunks_.size() * kChunkSlots;
  }
  [[nodiscard]] Slot& slot_at(std::uint32_t index) {
    return chunks_[index / kChunkSlots]->slots[index % kChunkSlots];
  }

  void grow() {
    const std::size_t base = slot_count();
    chunks_.push_back(std::make_unique<Chunk>());
    ++stats_.chunk_allocs;
    // Reverse order so emplace draws low indexes first (deterministic and
    // friendlier to for_each locality).
    freelist_.reserve(freelist_.size() + kChunkSlots);
    for (std::size_t i = kChunkSlots; i-- > 0;) {
      freelist_.push_back(static_cast<std::uint32_t>(base + i));
    }
  }

  std::vector<std::unique_ptr<Chunk>> chunks_;
  std::vector<std::uint32_t> freelist_;
  std::size_t live_ = 0;
  Stats stats_;
};

}  // namespace svk::common
