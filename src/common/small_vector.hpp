// A vector with inline storage for the first N elements.
//
// SIP messages hold a handful of tiny header lists (Vias, routes, extension
// headers) whose common sizes are 0–4 entries. std::vector heap-allocates
// for the first element, so copy-on-forward of a message paid one malloc per
// non-empty list. SmallVector keeps up to N elements in the object itself
// and only touches the allocator when a list outgrows its inline buffer —
// which on the simulated topologies essentially never happens.
//
// Deliberately minimal: the subset of the std::vector interface the message
// model uses, contiguous iterators (raw pointers), strong typing via
// placement new. Elements must be nothrow-move-constructible or copyable;
// capacity never shrinks.
#pragma once

#include <algorithm>
#include <cstddef>
#include <iterator>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>

namespace svk {

template <typename T, std::size_t N>
class SmallVector {
  static_assert(N > 0, "inline capacity must be at least 1");
  static_assert(alignof(T) <= alignof(std::max_align_t),
                "over-aligned element types are not supported");

 public:
  using value_type = T;
  using size_type = std::size_t;
  using iterator = T*;
  using const_iterator = const T*;
  using reverse_iterator = std::reverse_iterator<iterator>;
  using const_reverse_iterator = std::reverse_iterator<const_iterator>;

  SmallVector() noexcept : data_(inline_ptr()) {}

  SmallVector(const SmallVector& other) : SmallVector() {
    assign(other.begin(), other.end());
  }

  SmallVector(SmallVector&& other) noexcept : SmallVector() {
    take_from(std::move(other));
  }

  SmallVector(std::initializer_list<T> init) : SmallVector() {
    assign(init.begin(), init.end());
  }

  SmallVector& operator=(const SmallVector& other) {
    if (this != &other) assign(other.begin(), other.end());
    return *this;
  }

  SmallVector& operator=(SmallVector&& other) noexcept {
    if (this != &other) {
      destroy_all();
      release_heap();
      data_ = inline_ptr();
      capacity_ = N;
      take_from(std::move(other));
    }
    return *this;
  }

  ~SmallVector() {
    destroy_all();
    release_heap();
  }

  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }
  [[nodiscard]] size_type size() const noexcept { return size_; }
  [[nodiscard]] size_type capacity() const noexcept { return capacity_; }
  /// True while the elements still live in the inline buffer (perf tests
  /// pin that the common header counts never spill).
  [[nodiscard]] bool inlined() const noexcept { return data_ == inline_ptr(); }

  [[nodiscard]] iterator begin() noexcept { return data_; }
  [[nodiscard]] const_iterator begin() const noexcept { return data_; }
  [[nodiscard]] iterator end() noexcept { return data_ + size_; }
  [[nodiscard]] const_iterator end() const noexcept { return data_ + size_; }
  [[nodiscard]] reverse_iterator rbegin() noexcept {
    return reverse_iterator(end());
  }
  [[nodiscard]] const_reverse_iterator rbegin() const noexcept {
    return const_reverse_iterator(end());
  }
  [[nodiscard]] reverse_iterator rend() noexcept {
    return reverse_iterator(begin());
  }
  [[nodiscard]] const_reverse_iterator rend() const noexcept {
    return const_reverse_iterator(begin());
  }

  [[nodiscard]] T& operator[](size_type i) { return data_[i]; }
  [[nodiscard]] const T& operator[](size_type i) const { return data_[i]; }
  [[nodiscard]] T& front() { return data_[0]; }
  [[nodiscard]] const T& front() const { return data_[0]; }
  [[nodiscard]] T& back() { return data_[size_ - 1]; }
  [[nodiscard]] const T& back() const { return data_[size_ - 1]; }

  void reserve(size_type n) {
    if (n > capacity_) grow_to(n);
  }

  void clear() noexcept {
    destroy_all();
    size_ = 0;
  }

  void push_back(const T& value) { emplace_back(value); }
  void push_back(T&& value) { emplace_back(std::move(value)); }

  template <typename... Args>
  T& emplace_back(Args&&... args) {
    if (size_ == capacity_) grow_to(capacity_ * 2);
    T* slot = data_ + size_;
    ::new (static_cast<void*>(slot)) T(std::forward<Args>(args)...);
    ++size_;
    return *slot;
  }

  void pop_back() {
    --size_;
    data_[size_].~T();
  }

  /// Inserts before `pos`; shifts the tail right by one. O(distance to end).
  iterator insert(const_iterator pos, T value) {
    const size_type at = static_cast<size_type>(pos - data_);
    emplace_back(std::move(value));  // may reallocate; re-derive pointers
    std::rotate(data_ + at, data_ + size_ - 1, data_ + size_);
    return data_ + at;
  }

  /// Erases the element at `pos`; shifts the tail left. O(distance to end).
  iterator erase(const_iterator pos) {
    const size_type at = static_cast<size_type>(pos - data_);
    std::move(data_ + at + 1, data_ + size_, data_ + at);
    pop_back();
    return data_ + at;
  }

  template <typename It>
  void assign(It first, It last) {
    clear();
    if constexpr (std::is_base_of_v<
                      std::random_access_iterator_tag,
                      typename std::iterator_traits<It>::iterator_category>) {
      reserve(static_cast<size_type>(std::distance(first, last)));
    }
    for (; first != last; ++first) emplace_back(*first);
  }

  friend bool operator==(const SmallVector& a, const SmallVector& b) {
    return std::equal(a.begin(), a.end(), b.begin(), b.end());
  }

 private:
  [[nodiscard]] T* inline_ptr() noexcept {
    return std::launder(reinterpret_cast<T*>(inline_storage_));
  }
  [[nodiscard]] const T* inline_ptr() const noexcept {
    return std::launder(reinterpret_cast<const T*>(inline_storage_));
  }

  void destroy_all() noexcept {
    std::destroy(data_, data_ + size_);
  }

  void release_heap() noexcept {
    if (data_ != inline_ptr()) ::operator delete(data_);
  }

  /// Moves `other`'s contents into this (empty, inline-state) vector.
  void take_from(SmallVector&& other) noexcept {
    if (!other.inlined()) {
      // Steal the heap buffer wholesale.
      data_ = other.data_;
      capacity_ = other.capacity_;
      size_ = other.size_;
      other.data_ = other.inline_ptr();
      other.capacity_ = N;
      other.size_ = 0;
      return;
    }
    for (size_type i = 0; i < other.size_; ++i) {
      ::new (static_cast<void*>(data_ + i)) T(std::move(other.data_[i]));
    }
    size_ = other.size_;
    other.clear();
  }

  void grow_to(size_type n) {
    const size_type new_cap = std::max<size_type>(n, capacity_ * 2);
    T* fresh = static_cast<T*>(::operator new(new_cap * sizeof(T)));
    for (size_type i = 0; i < size_; ++i) {
      ::new (static_cast<void*>(fresh + i)) T(std::move(data_[i]));
      data_[i].~T();
    }
    release_heap();
    data_ = fresh;
    capacity_ = new_cap;
  }

  alignas(alignof(T)) unsigned char inline_storage_[N * sizeof(T)];
  T* data_;
  size_type size_ = 0;
  size_type capacity_ = N;
};

}  // namespace svk
