#include "common/stats.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace svk {

void OnlineStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double OnlineStats::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double OnlineStats::stddev() const { return std::sqrt(variance()); }

void OnlineStats::reset() { *this = OnlineStats{}; }

Histogram::Histogram(double limit, std::size_t num_bins)
    : limit_(limit), bin_width_(limit / static_cast<double>(num_bins)),
      bins_(num_bins, 0) {
  assert(limit > 0.0 && num_bins >= 1);
}

void Histogram::add(double x) {
  sum_ += x;
  ++total_;
  std::size_t idx;
  if (x <= 0.0) {
    idx = 0;
  } else if (x >= limit_) {
    idx = bins_.size() - 1;
  } else {
    idx = static_cast<std::size_t>(x / bin_width_);
    idx = std::min(idx, bins_.size() - 1);
  }
  ++bins_[idx];
}

double Histogram::quantile(double q) const {
  if (total_ == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * static_cast<double>(total_);
  double cum = 0.0;
  for (std::size_t i = 0; i < bins_.size(); ++i) {
    if (bins_[i] == 0) continue;  // an empty bin holds no quantile
    const double next = cum + static_cast<double>(bins_[i]);
    if (next >= target) {
      // Interpolate within bin i.
      const double frac = (target - cum) / static_cast<double>(bins_[i]);
      return (static_cast<double>(i) + frac) * bin_width_;
    }
    cum = next;
  }
  return limit_;
}

double Histogram::mean() const {
  return total_ ? sum_ / static_cast<double>(total_) : 0.0;
}

void Histogram::reset() {
  std::fill(bins_.begin(), bins_.end(), 0);
  total_ = 0;
  sum_ = 0.0;
}

double WindowedRate::close_window(SimTime window_start, SimTime now) {
  const double secs = (now - window_start).to_seconds();
  const double rate =
      secs > 0.0 ? static_cast<double>(count_) / secs : 0.0;
  count_ = 0;
  return rate;
}

}  // namespace svk
