// Online statistics used by the measurement layer: streaming mean/variance,
// a fixed-memory quantile sketch for response times, and windowed rates.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/sim_time.hpp"

namespace svk {

/// Welford streaming mean / variance / extrema.
class OnlineStats {
 public:
  void add(double x);

  [[nodiscard]] std::size_t count() const { return n_; }
  [[nodiscard]] double mean() const { return n_ ? mean_ : 0.0; }
  /// Sample variance (n-1 denominator); 0 with fewer than two samples.
  [[nodiscard]] double variance() const;
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const { return n_ ? min_ : 0.0; }
  [[nodiscard]] double max() const { return n_ ? max_ : 0.0; }
  [[nodiscard]] double sum() const { return sum_; }

  void reset();

 private:
  std::size_t n_{0};
  double mean_{0.0};
  double m2_{0.0};
  double min_{0.0};
  double max_{0.0};
  double sum_{0.0};
};

/// Fixed-bin histogram over [0, limit); out-of-range samples clamp to the
/// last bin. Supports quantile queries by bin interpolation. Used for
/// response-time distributions where thousands of samples per second make
/// exact storage wasteful.
class Histogram {
 public:
  /// \param limit     upper edge of the tracked range (exclusive)
  /// \param num_bins  number of equal-width bins (>= 1)
  Histogram(double limit, std::size_t num_bins);

  void add(double x);

  [[nodiscard]] std::size_t count() const { return total_; }

  /// Value below which the given fraction q in [0,1] of samples fall,
  /// linearly interpolated within the containing bin. Returns 0 when empty.
  [[nodiscard]] double quantile(double q) const;

  [[nodiscard]] double mean() const;

  void reset();

 private:
  double limit_;
  double bin_width_;
  std::vector<std::uint64_t> bins_;
  std::size_t total_{0};
  double sum_{0.0};
};

/// Counts events and converts to a rate over explicit windows of simulated
/// time. The SERvartuka controller and the measurement probes both sample
/// rates this way (the paper: "measurements in any system cannot be
/// instantaneous", Section 5).
class WindowedRate {
 public:
  void record(std::uint64_t n = 1) { count_ += n; }

  /// Closes the window that started at `window_start` and ends `now`;
  /// returns events/second over that window and restarts the counter.
  double close_window(SimTime window_start, SimTime now);

  [[nodiscard]] std::uint64_t raw_count() const { return count_; }
  void reset() { count_ = 0; }

 private:
  std::uint64_t count_{0};
};

}  // namespace svk
