#include "common/thread_pool.hpp"

#include <algorithm>
#include <utility>

namespace svk {

std::size_t ThreadPool::default_threads() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw != 0 ? static_cast<std::size_t>(hw) : 1;
}

ThreadPool::ThreadPool(std::size_t num_threads) {
  if (num_threads == 0) num_threads = default_threads();
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock lock(mutex_);
    stopping_ = true;
  }
  work_available_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::unique_lock lock(mutex_);
    tasks_.push_back(std::move(task));
  }
  work_available_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock lock(mutex_);
  all_done_.wait(lock, [this] { return tasks_.empty() && active_ == 0; });
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      work_available_.wait(lock,
                           [this] { return stopping_ || !tasks_.empty(); });
      if (tasks_.empty()) return;  // stopping_ and nothing left to drain
      task = std::move(tasks_.front());
      tasks_.pop_front();
      ++active_;
    }
    task();
    {
      std::unique_lock lock(mutex_);
      --active_;
      if (tasks_.empty() && active_ == 0) all_done_.notify_all();
    }
  }
}

void parallel_for_index(std::size_t threads, std::size_t count,
                        const std::function<void(std::size_t)>& fn) {
  if (count == 0) return;
  if (threads == 0) threads = ThreadPool::default_threads();
  if (threads <= 1 || count == 1) {
    for (std::size_t i = 0; i < count; ++i) fn(i);
    return;
  }
  ThreadPool pool(std::min(threads, count));
  for (std::size_t i = 0; i < count; ++i) {
    pool.submit([&fn, i] { fn(i); });
  }
  pool.wait_idle();
}

}  // namespace svk
