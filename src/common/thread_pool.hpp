// Fixed-size thread pool for fanning independent simulations across cores.
//
// Deliberately minimal: a shared FIFO of tasks, no work stealing, no
// futures. The measurement layer only needs "run these N independent jobs
// and wait"; determinism is preserved by indexing results, never by
// completion order.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace svk {

class ThreadPool {
 public:
  /// Spawns `num_threads` workers (0 picks the hardware concurrency).
  explicit ThreadPool(std::size_t num_threads = 0);

  /// Drains outstanding work, then joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task. Tasks must not throw (the simulation layer reports
  /// failures through its results, not exceptions).
  void submit(std::function<void()> task);

  /// Blocks until every submitted task has finished executing.
  void wait_idle();

  [[nodiscard]] std::size_t size() const { return workers_.size(); }

  /// The pool size used when callers pass 0 threads.
  [[nodiscard]] static std::size_t default_threads();

 private:
  void worker_loop();

  std::mutex mutex_;
  std::condition_variable work_available_;
  std::condition_variable all_done_;
  std::deque<std::function<void()>> tasks_;
  std::size_t active_{0};
  bool stopping_{false};
  std::vector<std::thread> workers_;
};

/// Runs fn(0) .. fn(count-1) across `threads` workers and waits for all of
/// them. With `threads` <= 1 the calls run inline, in index order. `fn` must
/// be safe to invoke concurrently for distinct indices.
void parallel_for_index(std::size_t threads, std::size_t count,
                        const std::function<void(std::size_t)>& fn);

}  // namespace svk
