// Strong identifier types shared across the library.
//
// A StrongId<Tag> wraps an integer so that, e.g., a node address can never be
// accidentally passed where a transaction sequence number is expected
// (CppCoreGuidelines P.1/P.4: express ideas directly in code, prefer static
// type safety).
#pragma once

#include <cstdint>
#include <functional>
#include <ostream>

namespace svk {

/// An opaque, strongly-typed integer identifier.
///
/// \tparam Tag   phantom type distinguishing unrelated id spaces
/// \tparam Rep   underlying representation
template <typename Tag, typename Rep = std::uint64_t>
class StrongId {
 public:
  using rep_type = Rep;

  constexpr StrongId() = default;
  constexpr explicit StrongId(Rep value) : value_(value) {}

  [[nodiscard]] constexpr Rep value() const { return value_; }

  friend constexpr bool operator==(StrongId, StrongId) = default;
  friend constexpr auto operator<=>(StrongId, StrongId) = default;

  friend std::ostream& operator<<(std::ostream& os, StrongId id) {
    return os << id.value_;
  }

 private:
  Rep value_{0};
};

/// Address of an element on the simulated network (proxy, UA, ...).
using Address = StrongId<struct AddressTag, std::uint32_t>;

/// Identifies one node of a proxy topology in the LP model.
using NodeId = StrongId<struct NodeTag, std::uint32_t>;

/// Monotonic per-process event sequence number (FIFO tie-breaking).
using SeqNo = StrongId<struct SeqTag, std::uint64_t>;

}  // namespace svk

namespace std {
template <typename Tag, typename Rep>
struct hash<svk::StrongId<Tag, Rep>> {
  size_t operator()(svk::StrongId<Tag, Rep> id) const noexcept {
    return std::hash<Rep>{}(id.value());
  }
};
}  // namespace std
