#include "core/controller.hpp"

#include <algorithm>
#include <cassert>

#include "obs/audit.hpp"
#include "obs/trace.hpp"

namespace svk::core {

ControllerConfig ControllerConfig::from_call_rates(double t_sf_cps,
                                                   double t_sl_cps,
                                                   SimTime period) {
  ControllerConfig config;
  config.t_sf = t_sf_cps * kRequestsPerCall;
  config.t_sl = t_sl_cps * kRequestsPerCall;
  config.period = period;
  return config;
}

Controller::Controller(ControllerConfig config)
    : config_(config),
      alpha_(1.0 / config.t_sf),
      beta_(1.0 / config.t_sl) {
  assert(config.t_sl > config.t_sf && config.t_sf > 0.0);
}

void Controller::register_paths(const std::vector<proxy::PathInfo>& paths) {
  paths_.clear();
  paths_.reserve(paths.size());
  for (const auto& info : paths) {
    PathState state;
    state.delegable = info.delegable;
    state.seen = true;
    paths_.push_back(state);
  }
}

PathState& Controller::path_at(std::size_t index, bool delegable) {
  // Paths can appear after registration (route-set forwarding to a neighbor
  // not in the static table); grow defensively. Entries created as filler
  // for indices we have not actually observed stay `seen = false` and adopt
  // their true delegability on first contact — resize() alone used to
  // default *intermediate* entries to non-delegable forever.
  if (index >= paths_.size()) {
    paths_.resize(index + 1);
  }
  PathState& path = paths_[index];
  if (!path.seen) {
    path.seen = true;
    path.delegable = delegable;
  }
  return path;
}

proxy::StateDecision Controller::decide(const proxy::RequestContext& ctx) {
  PathState& path = path_at(ctx.path_index, ctx.delegable);
  ++path.msg_count;
  ++tot_msg_;

  // Algorithm 1: already-stateful traffic is always forwarded statelessly.
  if (ctx.already_stateful) {
    ++path.fasf_count;
    return proxy::StateDecision::kStateless;
  }
  // Exit paths cannot delegate: this node is the last chance to be
  // stateful, so it always takes the state (CPU admission is the final
  // backstop when that is infeasible).
  if (!path.delegable) {
    ++path.sf_count;
    ++tot_sf_;
    return proxy::StateDecision::kStateful;
  }
  // Delegable path: take state for sf_fraction of the not-yet-stateful
  // requests (error diffusion keeps the realized ratio exact and evenly
  // interleaved), delegating the remainder downstream unmarked. The
  // window-count cap is kept as a guard against rate overshoots.
  if (path.sf_fraction >= 1.0) {
    ++path.sf_count;
    ++tot_sf_;
    return proxy::StateDecision::kStateful;
  }
  path.sf_accumulator += path.sf_fraction;
  // The 1.5x window-count guard only trips on large rate overshoots; the
  // fraction is what realizes the share in steady state.
  if (path.sf_accumulator >= 1.0 &&
      static_cast<double>(path.sf_count) <= 1.5 * path.myshare) {
    path.sf_accumulator -= 1.0;
    ++path.sf_count;
    ++tot_sf_;
    return proxy::StateDecision::kStateful;
  }
  return proxy::StateDecision::kStateless;
}

void Controller::on_overload_signal(std::size_t path_index, bool on,
                                    double c_asf_rate) {
  // Overload signals come from downstream proxies, so the signalling path
  // is delegable by definition.
  PathState& path = path_at(path_index, /*delegable=*/true);
  path.overloaded = on;
  path.frozen_c_asf = on ? c_asf_rate : 0.0;
  // Any signal (on, refresh, or off) proves the downstream is alive and
  // restarts the staleness/probe clocks.
  path.windows_since_signal = 0;
  path.probe_backoff = 0;
  path.windows_until_probe = 0;
  if (obs != nullptr && obs->tracer != nullptr) {
    obs->tracer->instant(on ? "overload_rx_on" : "overload_rx_off",
                         "overload", last_tick_, obs_tid, "path",
                         static_cast<double>(path_index), "c_asf",
                         c_asf_rate);
  }
}

void Controller::age_overload_state(SimTime now) {
  for (std::size_t i = 0; i < paths_.size(); ++i) {
    PathState& path = paths_[i];
    if (!path.delegable || !path.overloaded) continue;
    ++path.windows_since_signal;
    if (config_.overload_stale_windows > 0 &&
        path.windows_since_signal >= config_.overload_stale_windows) {
      // No refresh for too long: the neighbor crashed, was partitioned
      // away, or its "off" was lost. Drop the frozen allowance so myshare
      // is recomputed from live measurements instead of wedging forever.
      path.overloaded = false;
      path.frozen_c_asf = 0.0;
      path.smoothed_share = -1.0;
      path.windows_since_signal = 0;
      path.probe_backoff = 0;
      path.windows_until_probe = 0;
      ++stale_releases_;
      if (obs != nullptr && obs->tracer != nullptr) {
        obs->tracer->instant("overload_stale_release", "overload", now,
                             obs_tid, "path", static_cast<double>(i));
      }
      continue;
    }
    if (config_.probe_after_windows == 0 ||
        path.windows_since_signal < config_.probe_after_windows) {
      continue;
    }
    if (path.windows_until_probe > 0) {
      --path.windows_until_probe;
      continue;
    }
    // Probe now, then back off exponentially (1, 2, 4, ... windows): a
    // live-but-quiet neighbor answers the first probe, a dead one should
    // not be hammered until the staleness timeout reaps it.
    path.probe_backoff =
        path.probe_backoff == 0 ? 1 : std::min(path.probe_backoff * 2, 8u);
    path.windows_until_probe = path.probe_backoff;
    ++probes_requested_;
    if (obs != nullptr && obs->tracer != nullptr) {
      obs->tracer->instant("overload_probe_tx", "overload", now, obs_tid,
                           "path", static_cast<double>(i));
    }
    if (send_probe) send_probe(i);
  }
}

void Controller::on_tick(SimTime now) {
  if (!first_tick_done_) {
    // First tick: adopt the window and start measuring from here.
    first_tick_done_ = true;
    last_tick_ = now;
    reset_window_counters();
    return;
  }
  const double elapsed = (now - last_tick_).to_seconds();
  last_tick_ = now;
  if (elapsed <= 0.0) return;

  // Lost-signal tolerance first: frozen paths whose advertisements went
  // silent are probed and eventually released, so the share computation
  // below never runs against permanently stale allowances.
  age_overload_state(now);

  const double total_rate = static_cast<double>(tot_msg_) / elapsed;
  last_total_rate_ = total_rate;

  // Feasible aggregate stateful rate at the current load (Eq. 6/8),
  // against the configured utilization ceiling.
  const double u = config_.target_utilization;
  const double inv_ab = 1.0 / (alpha_ - beta_);
  const double budget_rate =
      std::max(0.0, (u - beta_ * total_rate) * inv_ab);
  last_budget_rate_ = budget_rate;

  if (total_rate <= config_.t_sf) {
    // Eq. 8 case 1: everything not yet stateful can be handled statefully.
    for (PathState& path : paths_) {
      path.myshare = std::numeric_limits<double>::infinity();
      path.sf_fraction = 1.0;
      path.smoothed_share = -1.0;
    }
    // The closed-loop correction must relax while the node is cool: an
    // overload episode backs it off multiplicatively, and below T_SF the
    // case-2 feedback branch never runs, so without this a node that cooled
    // down re-entered case 2 with the stale multiplier and under-took
    // state indefinitely. Below T_SF the CPU is under its target by
    // construction, so halve the gap to 1.0 each quiet window.
    correction_ += 0.5 * (1.0 - correction_);
    if (correction_ > 0.995) correction_ = 1.0;
    bool overload_changed = false;
    if (self_overloaded_) {
      self_overloaded_ = false;
      overload_changed = true;
      if (send_overload) send_overload(false, 0.0);
    }
    emit_audit(now, elapsed, /*below_t_sf=*/true, overload_changed);
    reset_window_counters();
    return;
  }

  // Closed-loop drift correction (see ControllerConfig): back the share
  // off while the CPU runs at/above target or builds a queue, recover
  // slowly once it cools down.
  if (config_.utilization_feedback && observed_utilization >= 0.0) {
    if (observed_backlog_fraction > 0.3 ||
        observed_utilization > config_.target_utilization) {
      correction_ = std::max(0.02, correction_ * 0.85);
    } else if (observed_utilization < config_.target_utilization - 0.03) {
      correction_ = std::min(1.0, correction_ + 0.05);
    }
  }

  // Eq. 8 case 2 / Algorithm 2: split the budget across paths.
  //
  // Fixed commitments first: exit paths must absorb all their
  // not-yet-stateful traffic; overloaded paths force us to absorb whatever
  // exceeds the frozen downstream allowance c_ASF.
  //
  // Window counts (`myshare`) are sized with the *measured* elapsed time,
  // not the configured period: the per-path rates are measured over
  // `elapsed`, and mixing time bases mis-sized the window-count guard in
  // decide() whenever a tick arrived late or early.
  double required_rate = 0.0;  // stateful work we cannot avoid
  double c_rate = u * inv_ab;  // Algorithm 2's constant `c` (per second)
  std::size_t not_ovld_count = 0;
  for (PathState& path : paths_) {
    const double rate = static_cast<double>(path.msg_count) / elapsed;
    const double fasf_rate = static_cast<double>(path.fasf_count) / elapsed;
    if (!path.delegable) {
      // Exit flow t_iz: contributes -alpha*t_z/(alpha-beta) + fasf_z to c.
      c_rate += fasf_rate - alpha_ * rate * inv_ab;
      required_rate += std::max(0.0, rate - fasf_rate);
      path.myshare = std::numeric_limits<double>::infinity();
    } else if (path.overloaded) {
      c_rate += path.frozen_c_asf + fasf_rate - alpha_ * rate * inv_ab;
      const double forced =
          std::max(0.0, rate - path.frozen_c_asf - fasf_rate);
      required_rate += forced;
      // Handle exactly the overflow statefully; the rest rides the frozen
      // downstream allowance.
      path.myshare = forced * elapsed;
      path.smoothed_share = -1.0;
      const double nasf_rate = std::max(rate - fasf_rate, 1e-9);
      path.sf_fraction = std::min(1.0, forced / nasf_rate);
    } else {
      ++not_ovld_count;
    }
  }

  if (not_ovld_count > 0) {
    for (PathState& path : paths_) {
      if (!path.delegable || path.overloaded) continue;
      const double rate = static_cast<double>(path.msg_count) / elapsed;
      const double raw_share =
          std::max(0.0, c_rate / static_cast<double>(not_ovld_count) -
                            beta_ * rate * inv_ab);
      if (path.smoothed_share < 0.0) {
        path.smoothed_share = raw_share;
      } else {
        const double g = config_.share_smoothing_gain;
        path.smoothed_share = (1.0 - g) * path.smoothed_share + g * raw_share;
      }
      const double share_rate = path.smoothed_share * correction_;
      path.myshare = share_rate * elapsed;
      const double fasf_rate =
          static_cast<double>(path.fasf_count) / elapsed;
      const double nasf_rate = std::max(rate - fasf_rate, 1e-9);
      path.sf_fraction = std::min(1.0, share_rate / nasf_rate);
    }
  }

  // Self-overload detection (Algorithm 2's upstream signal): the stateful
  // work this node cannot shed exceeds its feasible budget.
  const bool overloaded_now =
      not_ovld_count == 0 &&
      required_rate > budget_rate * config_.overload_headroom;
  bool overload_changed = false;
  // The advertised rate is what the subtree rooted here keeps absorbing:
  // our own feasible budget plus everything frozen further downstream.
  const auto advertised_c_asf = [&] {
    double c_asf = budget_rate;
    for (const PathState& path : paths_) {
      if (path.delegable && path.overloaded) c_asf += path.frozen_c_asf;
    }
    return c_asf;
  };
  if (overloaded_now && !self_overloaded_) {
    self_overloaded_ = true;
    overload_changed = true;
    windows_since_advert_ = 0;
    if (send_overload) send_overload(true, advertised_c_asf());
  } else if (self_overloaded_ &&
             required_rate < budget_rate * config_.recover_factor) {
    self_overloaded_ = false;
    overload_changed = true;
    if (send_overload) send_overload(false, 0.0);
  } else if (self_overloaded_ && config_.readvertise_period_windows > 0 &&
             ++windows_since_advert_ >= config_.readvertise_period_windows) {
    // Periodic refresh while frozen: repairs an upstream that missed the
    // original "on" and keeps the advertised c_ASF current as downstream
    // conditions move.
    windows_since_advert_ = 0;
    if (send_overload) send_overload(true, advertised_c_asf());
  }

  emit_audit(now, elapsed, /*below_t_sf=*/false, overload_changed);
  reset_window_counters();
}

void Controller::emit_audit(SimTime now, double elapsed, bool below_t_sf,
                            bool overload_changed) {
  if (obs == nullptr) return;
  if (obs->tracer != nullptr) {
    obs->tracer->instant("window_tick", "controller", now, obs_tid,
                         "total_rate", last_total_rate_, "budget_rate",
                         last_budget_rate_);
    if (overload_changed) {
      obs->tracer->instant(self_overloaded_ ? "overload_on" : "overload_off",
                           "overload", now, obs_tid, "required_vs_budget",
                           last_budget_rate_);
    }
  }
  if (obs->audit == nullptr) return;
  obs::AuditWindow window;
  window.node_tid = obs_tid;
  window.at = now;
  window.elapsed = elapsed;
  window.total_rate = last_total_rate_;
  window.budget_rate = last_budget_rate_;
  window.correction = correction_;
  window.below_t_sf = below_t_sf;
  window.self_overloaded = self_overloaded_;
  window.overload_changed = overload_changed;
  window.paths.reserve(paths_.size());
  for (std::size_t i = 0; i < paths_.size(); ++i) {
    const PathState& path = paths_[i];
    obs::AuditPathRow row;
    row.path_index = i;
    row.delegable = path.delegable;
    row.overloaded = path.overloaded;
    row.msg_count = path.msg_count;
    row.fasf_count = path.fasf_count;
    row.sf_count = path.sf_count;
    row.myshare = path.myshare;
    row.sf_fraction = path.sf_fraction;
    row.smoothed_share = path.smoothed_share;
    row.frozen_c_asf = path.frozen_c_asf;
    window.paths.push_back(row);
  }
  obs->audit->append(std::move(window));
}

void Controller::reset_window_counters() {
  for (PathState& path : paths_) {
    path.msg_count = 0;
    path.fasf_count = 0;
    path.sf_count = 0;
  }
  tot_msg_ = 0;
  tot_sf_ = 0;
}

}  // namespace svk::core
