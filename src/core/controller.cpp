#include "core/controller.hpp"

#include <algorithm>
#include <cassert>

namespace svk::core {

ControllerConfig ControllerConfig::from_call_rates(double t_sf_cps,
                                                   double t_sl_cps,
                                                   SimTime period) {
  ControllerConfig config;
  config.t_sf = t_sf_cps * kRequestsPerCall;
  config.t_sl = t_sl_cps * kRequestsPerCall;
  config.period = period;
  return config;
}

Controller::Controller(ControllerConfig config)
    : config_(config),
      alpha_(1.0 / config.t_sf),
      beta_(1.0 / config.t_sl) {
  assert(config.t_sl > config.t_sf && config.t_sf > 0.0);
}

void Controller::register_paths(const std::vector<proxy::PathInfo>& paths) {
  paths_.clear();
  paths_.reserve(paths.size());
  for (const auto& info : paths) {
    PathState state;
    state.delegable = info.delegable;
    paths_.push_back(state);
  }
}

proxy::StateDecision Controller::decide(const proxy::RequestContext& ctx) {
  // Paths can appear after registration (route-set forwarding to a neighbor
  // not in the static table); grow defensively.
  if (ctx.path_index >= paths_.size()) {
    paths_.resize(ctx.path_index + 1);
    paths_[ctx.path_index].delegable = ctx.delegable;
  }
  PathState& path = paths_[ctx.path_index];
  ++path.msg_count;
  ++tot_msg_;

  // Algorithm 1: already-stateful traffic is always forwarded statelessly.
  if (ctx.already_stateful) {
    ++path.fasf_count;
    return proxy::StateDecision::kStateless;
  }
  // Exit paths cannot delegate: this node is the last chance to be
  // stateful, so it always takes the state (CPU admission is the final
  // backstop when that is infeasible).
  if (!path.delegable) {
    ++path.sf_count;
    ++tot_sf_;
    return proxy::StateDecision::kStateful;
  }
  // Delegable path: take state for sf_fraction of the not-yet-stateful
  // requests (error diffusion keeps the realized ratio exact and evenly
  // interleaved), delegating the remainder downstream unmarked. The
  // window-count cap is kept as a guard against rate overshoots.
  if (path.sf_fraction >= 1.0) {
    ++path.sf_count;
    ++tot_sf_;
    return proxy::StateDecision::kStateful;
  }
  path.sf_accumulator += path.sf_fraction;
  // The 1.5x window-count guard only trips on large rate overshoots; the
  // fraction is what realizes the share in steady state.
  if (path.sf_accumulator >= 1.0 &&
      static_cast<double>(path.sf_count) <= 1.5 * path.myshare) {
    path.sf_accumulator -= 1.0;
    ++path.sf_count;
    ++tot_sf_;
    return proxy::StateDecision::kStateful;
  }
  return proxy::StateDecision::kStateless;
}

void Controller::on_overload_signal(std::size_t path_index, bool on,
                                    double c_asf_rate) {
  if (path_index >= paths_.size()) {
    paths_.resize(path_index + 1);
    paths_[path_index].delegable = true;
  }
  PathState& path = paths_[path_index];
  path.overloaded = on;
  path.frozen_c_asf = on ? c_asf_rate : 0.0;
}

void Controller::on_tick(SimTime now) {
  if (!first_tick_done_) {
    // First tick: adopt the window and start measuring from here.
    first_tick_done_ = true;
    last_tick_ = now;
    reset_window_counters();
    return;
  }
  const double elapsed = (now - last_tick_).to_seconds();
  last_tick_ = now;
  if (elapsed <= 0.0) return;

  const double window = config_.period.to_seconds();
  const double total_rate = static_cast<double>(tot_msg_) / elapsed;
  last_total_rate_ = total_rate;

  // Feasible aggregate stateful rate at the current load (Eq. 6/8),
  // against the configured utilization ceiling.
  const double u = config_.target_utilization;
  const double inv_ab = 1.0 / (alpha_ - beta_);
  const double budget_rate =
      std::max(0.0, (u - beta_ * total_rate) * inv_ab);
  last_budget_rate_ = budget_rate;

  if (total_rate <= config_.t_sf) {
    // Eq. 8 case 1: everything not yet stateful can be handled statefully.
    for (PathState& path : paths_) {
      path.myshare = std::numeric_limits<double>::infinity();
      path.sf_fraction = 1.0;
      path.smoothed_share = -1.0;
    }
    if (self_overloaded_) {
      self_overloaded_ = false;
      if (send_overload) send_overload(false, 0.0);
    }
    reset_window_counters();
    return;
  }

  // Closed-loop drift correction (see ControllerConfig): back the share
  // off while the CPU runs at/above target or builds a queue, recover
  // slowly once it cools down.
  if (config_.utilization_feedback && observed_utilization >= 0.0) {
    if (observed_backlog_fraction > 0.3 ||
        observed_utilization > config_.target_utilization) {
      correction_ = std::max(0.02, correction_ * 0.85);
    } else if (observed_utilization < config_.target_utilization - 0.03) {
      correction_ = std::min(1.0, correction_ + 0.05);
    }
  }

  // Eq. 8 case 2 / Algorithm 2: split the budget across paths.
  //
  // Fixed commitments first: exit paths must absorb all their
  // not-yet-stateful traffic; overloaded paths force us to absorb whatever
  // exceeds the frozen downstream allowance c_ASF.
  double required_rate = 0.0;  // stateful work we cannot avoid
  double c_rate = u * inv_ab;  // Algorithm 2's constant `c` (per second)
  std::size_t not_ovld_count = 0;
  for (PathState& path : paths_) {
    const double rate = static_cast<double>(path.msg_count) / elapsed;
    const double fasf_rate = static_cast<double>(path.fasf_count) / elapsed;
    if (!path.delegable) {
      // Exit flow t_iz: contributes -alpha*t_z/(alpha-beta) + fasf_z to c.
      c_rate += fasf_rate - alpha_ * rate * inv_ab;
      required_rate += std::max(0.0, rate - fasf_rate);
      path.myshare = std::numeric_limits<double>::infinity();
    } else if (path.overloaded) {
      c_rate += path.frozen_c_asf + fasf_rate - alpha_ * rate * inv_ab;
      const double forced =
          std::max(0.0, rate - path.frozen_c_asf - fasf_rate);
      required_rate += forced;
      // Handle exactly the overflow statefully; the rest rides the frozen
      // downstream allowance.
      path.myshare = forced * window;
      path.smoothed_share = -1.0;
      const double nasf_rate = std::max(rate - fasf_rate, 1e-9);
      path.sf_fraction = std::min(1.0, forced / nasf_rate);
    } else {
      ++not_ovld_count;
    }
  }

  if (not_ovld_count > 0) {
    for (PathState& path : paths_) {
      if (!path.delegable || path.overloaded) continue;
      const double rate = static_cast<double>(path.msg_count) / elapsed;
      const double raw_share =
          std::max(0.0, c_rate / static_cast<double>(not_ovld_count) -
                            beta_ * rate * inv_ab);
      if (path.smoothed_share < 0.0) {
        path.smoothed_share = raw_share;
      } else {
        const double g = config_.share_smoothing_gain;
        path.smoothed_share = (1.0 - g) * path.smoothed_share + g * raw_share;
      }
      const double share_rate = path.smoothed_share * correction_;
      path.myshare = share_rate * window;
      const double fasf_rate =
          static_cast<double>(path.fasf_count) / elapsed;
      const double nasf_rate = std::max(rate - fasf_rate, 1e-9);
      path.sf_fraction = std::min(1.0, share_rate / nasf_rate);
    }
  }

  // Self-overload detection (Algorithm 2's upstream signal): the stateful
  // work this node cannot shed exceeds its feasible budget.
  const bool overloaded_now =
      not_ovld_count == 0 &&
      required_rate > budget_rate * config_.overload_headroom;
  if (overloaded_now && !self_overloaded_) {
    self_overloaded_ = true;
    // Advertise the stateful rate the subtree rooted here keeps absorbing:
    // our own feasible budget plus everything frozen further downstream.
    double c_asf = budget_rate;
    for (const PathState& path : paths_) {
      if (path.delegable && path.overloaded) c_asf += path.frozen_c_asf;
    }
    if (send_overload) send_overload(true, c_asf);
  } else if (self_overloaded_ &&
             required_rate < budget_rate * config_.recover_factor) {
    self_overloaded_ = false;
    if (send_overload) send_overload(false, 0.0);
  }

  reset_window_counters();
}

void Controller::reset_window_counters() {
  for (PathState& path : paths_) {
    path.msg_count = 0;
    path.fasf_count = 0;
    path.sf_count = 0;
  }
  tot_msg_ = 0;
  tot_sf_ = 0;
}

}  // namespace svk::core
