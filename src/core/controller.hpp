// The SERvartuka dynamic state-distribution controller — the paper's core
// contribution (Sections 4.2 and 5, Algorithms 1 and 2).
//
// Per node, per downstream path, windowed counters track the offered load
// and its split into already-stateful (FASF) and not-yet-stateful traffic.
// Every monitoring period the controller recomputes `myshare` — how many
// requests this node should handle statefully on each delegable path —
// from the closed-form operating point (Eq. 8):
//
//     sf_total = t                      while t <= T_SF
//     sf_total = (1 - beta*t)/(alpha-beta)   once t > T_SF
//
// with alpha = 1/T_SF, beta = 1/T_SL. State beyond the share is *delegated*
// by forwarding the request statelessly (unmarked), so a node further
// downstream takes it. Exit paths (local delivery) can never delegate and
// are always handled statefully. When the required stateful work exceeds
// the feasible budget and no downstream path can absorb more, the node
// freezes and signals overload upstream, advertising the stateful rate its
// subtree keeps absorbing (c_ASF). Recovery uses hysteresis (the paper
// leaves recovery unspecified; see DESIGN.md).
//
// Units: counters count transaction-creating requests (INVITE and BYE each
// count once — both consume state when handled statefully). Thresholds are
// therefore requests/second; use ControllerConfig::from_call_rates to
// convert from the paper's calls/second (1 call = 2 transactions).
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

#include "proxy/policy.hpp"

namespace svk::core {

struct ControllerConfig {
  /// Stateful saturation threshold, transaction requests/second.
  double t_sf = 20720.0;
  /// Stateless saturation threshold, transaction requests/second.
  double t_sl = 24600.0;
  /// Algorithm 2 monitoring period.
  SimTime period = SimTime::seconds(1.0);
  /// Utilization ceiling the budget is computed against. The paper's
  /// Eq. 8 uses 1.0 (run the node exactly at capacity); a whisker of
  /// headroom keeps the delegating node out of its own queue. Overshooting
  /// is costlier than undershooting (rejected calls vs. extra delegation),
  /// so the default sits slightly below 1.
  double target_utilization = 0.98;
  /// EWMA gain for the per-path stateful share: window-sampling noise on
  /// the observed rate is amplified ~beta/(alpha-beta)-fold into the raw
  /// share, so the share is low-pass filtered across windows.
  double share_smoothing_gain = 0.4;
  /// Closed-loop correction on the delegable share from the node's
  /// *observed* utilization/backlog (multiplicative decrease when the CPU
  /// runs hot, slow additive recovery). Compensates model drift that the
  /// paper's open-loop thresholds cannot see (e.g. work induced by the
  /// rejected calls themselves). Set false for the paper-literal ablation.
  bool utilization_feedback = true;
  /// Self-overload trigger: required > headroom * budget.
  double overload_headroom = 1.02;
  /// Overload clears when required < recover_factor * budget.
  double recover_factor = 0.85;

  // --- Lost-signal tolerance (overload signals ride unacknowledged OPTIONS
  // --- and can be dropped by the network; see DESIGN.md §controller) ------
  /// While self-overloaded, re-send the overload advertisement every this
  /// many windows so an upstream that missed the original "on" (or a
  /// refreshed c_ASF) converges anyway. 0 disables re-advertisement.
  std::uint32_t readvertise_period_windows = 2;
  /// Release a downstream path's frozen overload state when no signal has
  /// refreshed it for this many windows: a crashed or partitioned neighbor
  /// stops re-advertising, and without a timeout a lost "off" wedges
  /// frozen_c_asf forever. 0 disables the timeout.
  std::uint32_t overload_stale_windows = 6;
  /// Probe a silent overloaded downstream path (via send_probe) once its
  /// signal is this many windows old, backing off exponentially between
  /// probes. Must be below overload_stale_windows to matter. 0 disables
  /// probing.
  std::uint32_t probe_after_windows = 3;

  /// Number of transaction-creating requests per call in the measured
  /// workload (INVITE + BYE).
  static constexpr double kRequestsPerCall = 2.0;

  /// Builds a config from the paper's call-per-second thresholds.
  [[nodiscard]] static ControllerConfig from_call_rates(
      double t_sf_cps, double t_sl_cps,
      SimTime period = SimTime::seconds(1.0));
};

/// Per-downstream-path controller state (counters are per window).
struct PathState {
  bool delegable = false;
  /// False for entries created as resize() filler when a path index beyond
  /// the registered table appears mid-run: their delegability is unknown
  /// until the first request (or overload signal) arrives for *that* index.
  /// Without this flag, a delegable path first seen at a lower index than
  /// an earlier stray index was permanently misclassified as an exit path.
  bool seen = false;
  // --- Algorithm 1/2 window counters -------------------------------------
  std::uint64_t msg_count = 0;   // transaction-creating requests routed here
  std::uint64_t fasf_count = 0;  // arrived already stateful
  std::uint64_t sf_count = 0;    // this node took state
  // --- cross-window state --------------------------------------------------
  /// Allowed stateful count per window; infinity below T_SF.
  double myshare = std::numeric_limits<double>::infinity();
  /// Fraction of not-yet-stateful requests to take state for, derived from
  /// myshare and the previous window's observed rate. Spreads the stateful
  /// share uniformly across the window (a burst of all-stateful handling at
  /// each window start would periodically overrun the CPU even when the
  /// aggregate share is feasible).
  double sf_fraction = 1.0;
  /// Error-diffusion accumulator realizing sf_fraction deterministically.
  double sf_accumulator = 0.0;
  /// EWMA state for the share rate; negative = unset.
  double smoothed_share = -1.0;
  bool overloaded = false;      // downstream froze
  double frozen_c_asf = 0.0;    // stateful rate the frozen subtree absorbs
  // --- lost-signal tolerance ----------------------------------------------
  /// Windows since the last overload signal refreshed this path; aged every
  /// tick while overloaded, reset by on_overload_signal.
  std::uint32_t windows_since_signal = 0;
  /// Current probe backoff interval in windows (0 = no probe sent yet).
  std::uint32_t probe_backoff = 0;
  /// Windows left before the next probe fires.
  std::uint32_t windows_until_probe = 0;
};

class Controller final : public proxy::StatePolicy {
 public:
  explicit Controller(ControllerConfig config);

  [[nodiscard]] proxy::StateDecision decide(
      const proxy::RequestContext& ctx) override;
  void on_tick(SimTime now) override;
  [[nodiscard]] SimTime tick_period() const override {
    return config_.period;
  }
  void on_overload_signal(std::size_t path_index, bool on,
                          double c_asf_rate) override;
  void register_paths(const std::vector<proxy::PathInfo>& paths) override;
  [[nodiscard]] std::string_view name() const override {
    return "servartuka";
  }

  // --- Introspection (tests, benchmarks) ----------------------------------
  [[nodiscard]] const std::vector<PathState>& paths() const { return paths_; }
  [[nodiscard]] bool self_overloaded() const { return self_overloaded_; }
  [[nodiscard]] double last_total_rate() const { return last_total_rate_; }
  [[nodiscard]] double last_budget_rate() const { return last_budget_rate_; }
  [[nodiscard]] double share_correction() const { return correction_; }
  [[nodiscard]] const ControllerConfig& config() const { return config_; }
  [[nodiscard]] std::uint64_t stale_releases() const {
    return stale_releases_;
  }
  [[nodiscard]] std::uint64_t probes_requested() const {
    return probes_requested_;
  }

 private:
  void reset_window_counters();
  /// Ages overloaded paths' signal freshness, releases stale frozen state
  /// and schedules probes of silent downstream paths. Runs every window.
  void age_overload_state(SimTime now);
  /// Grows paths_ to cover `index` (new entries unseen) and returns the
  /// entry, marking it seen with the given delegability on first sight.
  PathState& path_at(std::size_t index, bool delegable);
  /// Appends this window's record to the attached audit log / tracer.
  void emit_audit(SimTime now, double elapsed, bool below_t_sf,
                  bool overload_changed);

  ControllerConfig config_;
  double alpha_;
  double beta_;
  std::vector<PathState> paths_;
  std::uint64_t tot_msg_{0};
  std::uint64_t tot_sf_{0};
  SimTime last_tick_;
  bool first_tick_done_{false};
  bool self_overloaded_{false};
  double correction_{1.0};
  std::uint32_t windows_since_advert_{0};
  std::uint64_t stale_releases_{0};
  std::uint64_t probes_requested_{0};
  double last_total_rate_{0.0};
  double last_budget_rate_{0.0};
};

}  // namespace svk::core
