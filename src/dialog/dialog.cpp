#include "dialog/dialog.hpp"

#include <utility>

#include "common/hash.hpp"

namespace svk::dialog {

using common::fnv1a;

DialogId DialogId::make(const std::string& call_id, std::string tag1,
                        std::string tag2) {
  if (tag2 < tag1) std::swap(tag1, tag2);
  return DialogId{call_id, std::move(tag1), std::move(tag2)};
}

std::uint64_t dialog_id_hash(std::string_view call_id, std::string_view tag_a,
                             std::string_view tag_b) noexcept {
  std::uint64_t h = fnv1a(call_id);
  h = fnv1a(tag_a, h);
  h = fnv1a(tag_b, h);
  return h;
}

std::size_t DialogIdHash::operator()(const DialogId& id) const noexcept {
  return static_cast<std::size_t>(
      dialog_id_hash(id.call_id, id.tag_a, id.tag_b));
}

DialogProbe DialogProbe::make(std::string_view call_id, std::string_view tag1,
                              std::string_view tag2) {
  if (tag2 < tag1) std::swap(tag1, tag2);
  return DialogProbe{dialog_id_hash(call_id, tag1, tag2), call_id, tag1,
                     tag2};
}

Dialog* DialogManager::find(const DialogProbe& probe) {
  common::SlabHandle* slot =
      table_.find(probe.hash, [&](const common::SlabHandle& h) {
        return probe.matches(slab_.get(h)->id);
      });
  return slot != nullptr ? slab_.get(*slot) : nullptr;
}

void DialogManager::erase(const Dialog& dialog, common::SlabHandle slot) {
  const std::uint64_t hash =
      dialog_id_hash(dialog.id.call_id, dialog.id.tag_a, dialog.id.tag_b);
  table_.erase(hash,
               [&](const common::SlabHandle& h) { return h == slot; });
  slab_.erase(slot);
}

Dialog& DialogManager::create_early(const sip::Message& invite, SimTime now) {
  const DialogProbe probe =
      DialogProbe::make(invite.call_id(), invite.from().tag, {});
  if (Dialog* existing = find(probe)) return *existing;
  const common::SlabHandle slot = slab_.emplace();
  Dialog& dialog = *slab_.get(slot);
  dialog.id = DialogId::make(invite.call_id(), invite.from().tag, {});
  dialog.created_at = now;
  table_.insert(probe.hash, slot);
  ++created_;
  return dialog;
}

Dialog* DialogManager::confirm(const sip::Message& response_2xx) {
  const DialogProbe early =
      DialogProbe::make(response_2xx.call_id(), response_2xx.from().tag, {});
  common::SlabHandle* early_slot =
      table_.find(early.hash, [&](const common::SlabHandle& h) {
        return early.matches(slab_.get(h)->id);
      });
  if (early_slot == nullptr) {
    // Maybe already confirmed (retransmitted 2xx).
    return find(DialogProbe::make(response_2xx.call_id(),
                                  response_2xx.from().tag,
                                  response_2xx.to().tag));
  }
  // Re-key in place: the record never moves, only its table entry does.
  const common::SlabHandle slot = *early_slot;
  table_.erase(early.hash,
               [&](const common::SlabHandle& h) { return h == slot; });
  Dialog& dialog = *slab_.get(slot);
  dialog.id = DialogId::make(response_2xx.call_id(), response_2xx.from().tag,
                             response_2xx.to().tag);
  dialog.state = DialogState::kConfirmed;
  table_.insert(
      dialog_id_hash(dialog.id.call_id, dialog.id.tag_a, dialog.id.tag_b),
      slot);
  return &dialog;
}

Dialog* DialogManager::match(const sip::Message& request) {
  if (request.to().tag.empty()) return nullptr;  // not in-dialog
  Dialog* dialog = find(DialogProbe::make(request.call_id(),
                                          request.from().tag,
                                          request.to().tag));
  if (dialog == nullptr) return nullptr;
  ++dialog->transactions_seen;
  return dialog;
}

void DialogManager::terminate(const DialogProbe& probe) {
  common::SlabHandle* slot =
      table_.find(probe.hash, [&](const common::SlabHandle& h) {
        return probe.matches(slab_.get(h)->id);
      });
  if (slot == nullptr) return;
  const common::SlabHandle s = *slot;
  table_.erase(probe.hash,
               [&](const common::SlabHandle& h) { return h == s; });
  slab_.erase(s);
}

bool DialogManager::abandon_early(const sip::Message& msg) {
  const DialogProbe probe =
      DialogProbe::make(msg.call_id(), msg.from().tag, {});
  common::SlabHandle* slot =
      table_.find(probe.hash, [&](const common::SlabHandle& h) {
        return probe.matches(slab_.get(h)->id);
      });
  if (slot == nullptr || slab_.get(*slot)->state != DialogState::kEarly) {
    return false;
  }
  const common::SlabHandle s = *slot;
  table_.erase(probe.hash,
               [&](const common::SlabHandle& h) { return h == s; });
  slab_.erase(s);
  ++abandoned_;
  return true;
}

std::size_t DialogManager::expire_early(SimTime now, SimTime ttl) {
  // Slot-order sweep: the *set* removed is order-independent (every early
  // dialog past its ttl), so the walk order cannot affect behavior.
  std::size_t removed = 0;
  slab_.for_each([&](common::SlabHandle slot, Dialog& dialog) {
    if (dialog.state == DialogState::kEarly &&
        now - dialog.created_at >= ttl) {
      erase(dialog, slot);
      ++removed;
    }
  });
  expired_ += removed;
  return removed;
}

}  // namespace svk::dialog
