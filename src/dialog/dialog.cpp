#include "dialog/dialog.hpp"

#include <utility>

namespace svk::dialog {
namespace {

std::uint64_t fnv1a(std::string_view data, std::uint64_t seed) {
  std::uint64_t h = seed;
  for (const char c : data) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

}  // namespace

DialogId DialogId::make(const std::string& call_id, std::string tag1,
                        std::string tag2) {
  if (tag2 < tag1) std::swap(tag1, tag2);
  return DialogId{call_id, std::move(tag1), std::move(tag2)};
}

std::size_t DialogIdHash::operator()(const DialogId& id) const noexcept {
  std::uint64_t h = fnv1a(id.call_id, 0xcbf29ce484222325ULL);
  h = fnv1a(id.tag_a, h);
  h = fnv1a(id.tag_b, h);
  return static_cast<std::size_t>(h);
}

Dialog& DialogManager::create_early(const sip::Message& invite, SimTime now) {
  auto id = DialogId::make(invite.call_id(), invite.from().tag, "");
  auto [it, inserted] = dialogs_.try_emplace(id);
  if (inserted) {
    it->second.id = id;
    it->second.created_at = now;
    ++created_;
  }
  return it->second;
}

Dialog* DialogManager::confirm(const sip::Message& response_2xx) {
  const auto early_id =
      DialogId::make(response_2xx.call_id(), response_2xx.from().tag, "");
  const auto it = dialogs_.find(early_id);
  if (it == dialogs_.end()) {
    // Maybe already confirmed (retransmitted 2xx).
    const auto confirmed_id = DialogId::make(
        response_2xx.call_id(), response_2xx.from().tag, response_2xx.to().tag);
    const auto cit = dialogs_.find(confirmed_id);
    return cit != dialogs_.end() ? &cit->second : nullptr;
  }
  Dialog moved = std::move(it->second);
  dialogs_.erase(it);
  moved.id = DialogId::make(response_2xx.call_id(), response_2xx.from().tag,
                            response_2xx.to().tag);
  moved.state = DialogState::kConfirmed;
  auto [nit, inserted] = dialogs_.try_emplace(moved.id, std::move(moved));
  (void)inserted;
  return &nit->second;
}

Dialog* DialogManager::match(const sip::Message& request) {
  if (request.to().tag.empty()) return nullptr;  // not in-dialog
  const auto id = DialogId::make(request.call_id(), request.from().tag,
                                 request.to().tag);
  const auto it = dialogs_.find(id);
  if (it == dialogs_.end()) return nullptr;
  ++it->second.transactions_seen;
  return &it->second;
}

void DialogManager::terminate(const DialogId& id) { dialogs_.erase(id); }

bool DialogManager::abandon_early(const sip::Message& msg) {
  const auto id = DialogId::make(msg.call_id(), msg.from().tag, "");
  const auto it = dialogs_.find(id);
  if (it == dialogs_.end() || it->second.state != DialogState::kEarly) {
    return false;
  }
  dialogs_.erase(it);
  ++abandoned_;
  return true;
}

std::size_t DialogManager::expire_early(SimTime now, SimTime ttl) {
  std::size_t removed = 0;
  for (auto it = dialogs_.begin(); it != dialogs_.end();) {
    if (it->second.state == DialogState::kEarly &&
        now - it->second.created_at >= ttl) {
      it = dialogs_.erase(it);
      ++removed;
    } else {
      ++it;
    }
  }
  expired_ += removed;
  return removed;
}

}  // namespace svk::dialog
