// Dialog-layer state (RFC 3261 12), as kept by a dialog-stateful proxy.
//
// A dialog ties the INVITE transaction to later in-dialog transactions
// (re-INVITE, BYE). The paper's "Dialog Stateful" mode keeps one of these
// records per call for the whole call duration — the costliest mode in its
// Figure 3 profile.
//
// Records live in a Slab (stable addresses, freelist reuse); the table is a
// FlatTable of (precomputed id hash, slab handle). The only owning strings
// are inside the Dialog record itself (its id — the key-inside-value
// layout of DESIGN.md §12); lookups hash Call-ID + tags straight off the
// message into a DialogProbe and compare views, so the in-dialog hot path
// (match on every BYE, confirm on every 2xx) allocates nothing.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "common/flat_table.hpp"
#include "common/sim_time.hpp"
#include "common/slab.hpp"
#include "sip/message.hpp"

namespace svk::dialog {

/// Dialog identifier: Call-ID plus the two tags. Proxies can see a dialog
/// from either direction (caller's BYE vs callee's BYE), so the key
/// normalizes tag order.
struct DialogId {
  std::string call_id;
  std::string tag_a;  // lexicographically smaller tag
  std::string tag_b;

  [[nodiscard]] static DialogId make(const std::string& call_id,
                                     std::string tag1, std::string tag2);

  friend bool operator==(const DialogId&, const DialogId&) = default;
};

struct DialogIdHash {
  std::size_t operator()(const DialogId& id) const noexcept;
};

/// Non-owning dialog lookup key: the precomputed id hash plus views of the
/// normalized (call_id, tag_a, tag_b) triple. Views borrow from the probed
/// message; a probe must not outlive it.
struct DialogProbe {
  std::uint64_t hash = 0;
  std::string_view call_id;
  std::string_view tag_a;
  std::string_view tag_b;

  /// Builds a probe, normalizing tag order exactly like DialogId::make.
  [[nodiscard]] static DialogProbe make(std::string_view call_id,
                                        std::string_view tag1,
                                        std::string_view tag2);

  [[nodiscard]] bool matches(const DialogId& id) const noexcept {
    return call_id == id.call_id && tag_a == id.tag_a && tag_b == id.tag_b;
  }
};

/// The hash DialogProbe and DialogIdHash share.
[[nodiscard]] std::uint64_t dialog_id_hash(std::string_view call_id,
                                           std::string_view tag_a,
                                           std::string_view tag_b) noexcept;

enum class DialogState { kEarly, kConfirmed, kTerminated };

/// One dialog record.
struct Dialog {
  DialogId id;
  DialogState state = DialogState::kEarly;
  SimTime created_at;
  std::uint32_t transactions_seen = 1;
};

/// The dialog table of one element.
class DialogManager {
 public:
  /// Creates an early dialog from a forwarded INVITE (From tag known, To
  /// tag still empty). The early key uses the empty To tag.
  Dialog& create_early(const sip::Message& invite, SimTime now);

  /// Promotes an early dialog to confirmed when the 2xx arrives carrying
  /// the UAS tag; re-keys the record (in place — the record's address is
  /// slab-stable). Returns the confirmed dialog, or nullptr when no early
  /// dialog matches.
  Dialog* confirm(const sip::Message& response_2xx);

  /// Finds the dialog an in-dialog request (e.g. BYE) belongs to.
  [[nodiscard]] Dialog* match(const sip::Message& request);

  /// Removes a dialog (after the BYE transaction completes).
  void terminate(const DialogProbe& probe);
  void terminate(const DialogId& id) {
    terminate(DialogProbe::make(id.call_id, id.tag_a, id.tag_b));
  }

  /// Removes the early dialog a failed INVITE belongs to (non-2xx final or
  /// transaction timeout — the call will never confirm). Keyed like
  /// create_early: Call-ID + From tag + empty To tag. Returns true when an
  /// early dialog was removed.
  bool abandon_early(const sip::Message& msg);

  /// Reaps early dialogs older than `ttl` (lost finals, crashed endpoints —
  /// calls that will never complete and whose failure this element never
  /// saw). Returns the number removed. Confirmed dialogs are never expired:
  /// an established call legitimately lasts arbitrarily long.
  std::size_t expire_early(SimTime now, SimTime ttl);

  [[nodiscard]] std::size_t active_count() const { return slab_.size(); }
  [[nodiscard]] std::uint64_t created_count() const { return created_; }
  [[nodiscard]] std::uint64_t expired_count() const { return expired_; }
  [[nodiscard]] std::uint64_t abandoned_count() const { return abandoned_; }

  /// Allocation events ever made by the store (perf-gate counter).
  [[nodiscard]] std::uint64_t store_allocs() const {
    return slab_.stats().chunk_allocs + table_.stats().grows;
  }

 private:
  [[nodiscard]] Dialog* find(const DialogProbe& probe);
  void erase(const Dialog& dialog, common::SlabHandle slot);

  common::Slab<Dialog> slab_;
  common::FlatTable<common::SlabHandle> table_;
  std::uint64_t created_{0};
  std::uint64_t expired_{0};
  std::uint64_t abandoned_{0};
};

}  // namespace svk::dialog
