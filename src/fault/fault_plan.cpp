#include "fault/fault_plan.hpp"

#include <algorithm>

namespace svk::fault {
namespace {

/// Reads an optional numeric member, falling back to `fallback`.
double number_or(const JsonValue& obj, std::string_view key,
                 double fallback) {
  if (const JsonValue* member = obj.find(key)) {
    if (const auto n = member->as_number()) return *n;
  }
  return fallback;
}

std::string string_or(const JsonValue& obj, std::string_view key) {
  if (const JsonValue* member = obj.find(key)) {
    if (const auto s = member->as_string()) return std::string(*s);
  }
  return {};
}

}  // namespace

std::string_view to_string(FaultKind kind) {
  switch (kind) {
    case FaultKind::kNodeCrash: return "node_crash";
    case FaultKind::kLinkDown: return "link_down";
    case FaultKind::kPartition: return "partition";
    case FaultKind::kLossBurst: return "loss_burst";
    case FaultKind::kLatencyBurst: return "latency_burst";
    case FaultKind::kCpuDegrade: return "cpu_degrade";
  }
  return "unknown";
}

std::optional<FaultKind> fault_kind_from(std::string_view name) {
  if (name == "node_crash") return FaultKind::kNodeCrash;
  if (name == "link_down") return FaultKind::kLinkDown;
  if (name == "partition") return FaultKind::kPartition;
  if (name == "loss_burst") return FaultKind::kLossBurst;
  if (name == "latency_burst") return FaultKind::kLatencyBurst;
  if (name == "cpu_degrade") return FaultKind::kCpuDegrade;
  return std::nullopt;
}

SimTime FaultPlan::end_time() const {
  SimTime end;
  for (const FaultEvent& event : events) {
    end = std::max(end, event.at + event.duration);
  }
  return end;
}

JsonValue FaultPlan::to_json() const {
  JsonValue root = JsonValue::object();
  root["name"] = name;
  root["seed"] = seed;
  JsonValue& list = root["events"];
  list = JsonValue::array();
  for (const FaultEvent& event : events) {
    JsonValue e = JsonValue::object();
    e["kind"] = to_string(event.kind);
    e["at_s"] = event.at.to_seconds();
    if (event.duration > SimTime{}) {
      e["duration_s"] = event.duration.to_seconds();
    }
    if (!event.host.empty()) e["host"] = event.host;
    if (!event.peer.empty()) e["peer"] = event.peer;
    if (!event.group.empty()) e["group"] = JsonValue::array_of(event.group);
    switch (event.kind) {
      case FaultKind::kLossBurst: e["loss"] = event.value; break;
      case FaultKind::kCpuDegrade: e["factor"] = event.value; break;
      default: break;
    }
    if (event.kind == FaultKind::kLatencyBurst) {
      e["extra_latency_ms"] = event.extra_latency.to_millis();
    }
    if (event.kind == FaultKind::kLinkDown && !event.bidirectional) {
      e["bidirectional"] = false;
    }
    list.push_back(std::move(e));
  }
  return root;
}

std::optional<FaultPlan> FaultPlan::from_json(const JsonValue& json,
                                              std::string* error) {
  const auto fail = [error](std::string message) -> std::optional<FaultPlan> {
    if (error != nullptr) *error = std::move(message);
    return std::nullopt;
  };
  if (!json.is_object()) return fail("fault plan must be a JSON object");

  FaultPlan plan;
  plan.name = string_or(json, "name");
  plan.seed = static_cast<std::uint64_t>(number_or(json, "seed", 0.0));

  const JsonValue* events = json.find("events");
  if (events == nullptr || !events->is_array()) {
    return fail("fault plan needs an \"events\" array");
  }
  for (const JsonValue& entry : *events->as_array()) {
    if (!entry.is_object()) return fail("event must be an object");
    const std::string kind_name = string_or(entry, "kind");
    const auto kind = fault_kind_from(kind_name);
    if (!kind) return fail("unknown event kind \"" + kind_name + "\"");

    FaultEvent event;
    event.kind = *kind;
    const JsonValue* at = entry.find("at_s");
    if (at == nullptr || !at->as_number()) {
      return fail("event needs a numeric \"at_s\"");
    }
    event.at = SimTime::seconds(*at->as_number());
    event.duration = SimTime::seconds(number_or(entry, "duration_s", 0.0));
    if (event.duration < SimTime{}) return fail("negative duration");
    event.host = string_or(entry, "host");
    event.peer = string_or(entry, "peer");
    if (const JsonValue* group = entry.find("group");
        group != nullptr && group->is_array()) {
      for (const JsonValue& member : *group->as_array()) {
        if (const auto s = member.as_string()) {
          event.group.emplace_back(*s);
        }
      }
    }
    if (const JsonValue* flag = entry.find("bidirectional")) {
      event.bidirectional = flag->as_bool().value_or(true);
    }
    switch (event.kind) {
      case FaultKind::kNodeCrash:
        if (event.host.empty()) return fail("node_crash needs \"host\"");
        break;
      case FaultKind::kLinkDown:
        if (event.host.empty() || event.peer.empty()) {
          return fail("link_down needs \"host\" and \"peer\"");
        }
        break;
      case FaultKind::kPartition:
        if (event.group.empty()) return fail("partition needs \"group\"");
        break;
      case FaultKind::kLossBurst:
        event.value = number_or(entry, "loss", 0.0);
        if (event.value < 0.0 || event.value > 1.0) {
          return fail("loss must be in [0, 1]");
        }
        break;
      case FaultKind::kLatencyBurst:
        event.extra_latency = SimTime::seconds(
            number_or(entry, "extra_latency_ms", 0.0) / 1000.0);
        if (event.extra_latency < SimTime{}) {
          return fail("negative extra_latency_ms");
        }
        break;
      case FaultKind::kCpuDegrade:
        if (event.host.empty()) return fail("cpu_degrade needs \"host\"");
        event.value = number_or(entry, "factor", 1.0);
        if (event.value <= 0.0) return fail("factor must be positive");
        break;
    }
    plan.events.push_back(std::move(event));
  }
  return plan;
}

std::optional<FaultPlan> FaultPlan::load_file(const std::string& path,
                                              std::string* error) {
  const auto json = JsonValue::parse_file(path, error);
  if (!json) return std::nullopt;
  return from_json(*json, error);
}

bool FaultPlan::write_file(const std::string& path) const {
  return to_json().write_file(path);
}

}  // namespace svk::fault
