// FaultPlan — a deterministic, serializable schedule of fault events.
//
// A plan is a list of timed events (node crash/restart, directed link-down,
// partitions, loss/latency bursts, CPU-capacity degradation) applied to a
// running simulation by the FaultInjector. Every event carries an absolute
// simulation time and an optional duration; an event with a duration is
// automatically reverted when it elapses. Plans are value types: they can
// be generated from a seed (tests/generators.hpp), written to JSON for
// replay artifacts, and loaded back from JSON (`--faults=<file>` /
// SVK_FAULTS on the bench binaries). The JSON schema is documented in
// EXPERIMENTS.md.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/json.hpp"
#include "common/sim_time.hpp"

namespace svk::fault {

enum class FaultKind {
  kNodeCrash,     // host stops transmitting and receiving; CPU drains to
                  // nowhere. duration = outage length (0 = never restarts).
  kLinkDown,      // directed (or bidirectional) link drops everything
  kPartition,     // `group` is isolated from every other host
  kLossBurst,     // extra Bernoulli loss on a link (or network-wide)
  kLatencyBurst,  // extra one-way latency on a link (or network-wide)
  kCpuDegrade,    // host CPU runs at `value` times nominal capacity
};

[[nodiscard]] std::string_view to_string(FaultKind kind);
[[nodiscard]] std::optional<FaultKind> fault_kind_from(std::string_view name);

struct FaultEvent {
  FaultKind kind = FaultKind::kNodeCrash;
  /// Absolute simulation time the fault begins.
  SimTime at;
  /// How long the fault lasts; zero means it is never reverted.
  SimTime duration;
  /// Target host (crash, degrade) or link endpoint A (link faults).
  std::string host;
  /// Link endpoint B; empty on a loss/latency burst = every link.
  std::string peer;
  /// Partition: the hosts cut off from the rest of the network.
  std::vector<std::string> group;
  /// Loss probability (kLossBurst) or capacity factor (kCpuDegrade).
  double value = 0.0;
  /// Added one-way latency (kLatencyBurst).
  SimTime extra_latency;
  /// Link faults: apply to both directions (default) or `host`->`peer` only.
  bool bidirectional = true;
};

struct FaultPlan {
  std::string name;
  /// Seed of the generator that produced the plan (0 = hand-written); kept
  /// for provenance in replay artifacts.
  std::uint64_t seed = 0;
  std::vector<FaultEvent> events;

  [[nodiscard]] bool empty() const { return events.empty(); }
  /// The time the last fault (including its revert) has settled.
  [[nodiscard]] SimTime end_time() const;

  [[nodiscard]] JsonValue to_json() const;
  /// Parses a plan from its JSON form. On failure returns nullopt and, when
  /// `error` is non-null, a description of the offending field.
  [[nodiscard]] static std::optional<FaultPlan> from_json(
      const JsonValue& json, std::string* error = nullptr);
  [[nodiscard]] static std::optional<FaultPlan> load_file(
      const std::string& path, std::string* error = nullptr);
  bool write_file(const std::string& path) const;
};

}  // namespace svk::fault
