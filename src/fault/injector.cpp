#include "fault/injector.hpp"

#include <algorithm>

#include "obs/metrics.hpp"
#include "obs/sinks.hpp"
#include "obs/trace.hpp"

namespace svk::fault {
namespace {

/// Trace-event names must have static lifetime (the tracer stores views).
struct KindNames {
  std::string_view apply;
  std::string_view revert;
};

KindNames names_for(FaultKind kind) {
  switch (kind) {
    case FaultKind::kNodeCrash:
      return {"fault_node_crash", "fault_node_restart"};
    case FaultKind::kLinkDown: return {"fault_link_down", "fault_link_up"};
    case FaultKind::kPartition:
      return {"fault_partition", "fault_partition_heal"};
    case FaultKind::kLossBurst:
      return {"fault_loss_burst", "fault_loss_burst_end"};
    case FaultKind::kLatencyBurst:
      return {"fault_latency_burst", "fault_latency_burst_end"};
    case FaultKind::kCpuDegrade:
      return {"fault_cpu_degrade", "fault_cpu_restore"};
  }
  return {"fault", "fault_end"};
}

}  // namespace

void FaultInjector::add_host(const std::string& name, Address address,
                             std::function<void(double)> set_cpu_factor) {
  hosts_[name] = Host{address, std::move(set_cpu_factor)};
  all_addresses_.push_back(address);
}

const FaultInjector::Host* FaultInjector::resolve(const std::string& name,
                                                  const FaultEvent& event) {
  const auto it = hosts_.find(name);
  if (it == hosts_.end()) {
    errors_.push_back(std::string(to_string(event.kind)) +
                      ": unknown host \"" + name + "\"");
    return nullptr;
  }
  return &it->second;
}

void FaultInjector::schedule(SimTime at, std::function<void()> fn) {
  if (scheduler_) {
    scheduler_(at, std::move(fn));
  } else {
    sim_.schedule_at(at, sim::EventAction(std::move(fn)));
  }
}

void FaultInjector::arm(const FaultPlan& plan) {
  plan_ = plan;
  for (std::size_t i = 0; i < plan_.events.size(); ++i) {
    const FaultEvent& event = plan_.events[i];
    schedule(event.at, [this, i] {
      apply(plan_.events[i], /*revert=*/false);
    });
    if (event.duration > SimTime{}) {
      schedule(event.at + event.duration, [this, i] {
        apply(plan_.events[i], /*revert=*/true);
      });
    }
  }
}

void FaultInjector::record(const FaultEvent& event, bool revert,
                           std::uint32_t tid) {
  ++applied_;
  const obs::Sinks& obs = sim_.obs();
  if (obs.tracer != nullptr) {
    const KindNames names = names_for(event.kind);
    obs.tracer->instant(revert ? names.revert : names.apply, "fault",
                        sim_.now(), tid, "value", event.value,
                        "duration_s", event.duration.to_seconds());
  }
  if (obs.metrics != nullptr) obs.metrics->counter("fault.applied").inc();
}

void FaultInjector::apply(const FaultEvent& event, bool revert) {
  switch (event.kind) {
    case FaultKind::kNodeCrash: {
      const Host* host = resolve(event.host, event);
      if (host == nullptr) return;
      net_.set_host_down(host->address, !revert);
      record(event, revert, host->address.value());
      return;
    }
    case FaultKind::kLinkDown: {
      const Host* a = resolve(event.host, event);
      const Host* b = resolve(event.peer, event);
      if (a == nullptr || b == nullptr) return;
      net_.set_link_down(a->address, b->address, !revert);
      if (event.bidirectional) {
        net_.set_link_down(b->address, a->address, !revert);
      }
      record(event, revert, a->address.value());
      return;
    }
    case FaultKind::kPartition: {
      std::vector<Address> isolated;
      for (const std::string& name : event.group) {
        if (const Host* host = resolve(name, event)) {
          isolated.push_back(host->address);
        }
      }
      if (isolated.empty()) return;
      for (const Address inside : isolated) {
        for (const Address other : all_addresses_) {
          if (std::find(isolated.begin(), isolated.end(), other) !=
              isolated.end()) {
            continue;
          }
          net_.set_link_down(inside, other, !revert);
          net_.set_link_down(other, inside, !revert);
        }
      }
      record(event, revert, isolated.front().value());
      return;
    }
    case FaultKind::kLossBurst:
    case FaultKind::kLatencyBurst: {
      // Empty endpoints = network-wide (the Address{0} wildcard). Bursts on
      // the same directed link must not overlap in time: reverting one
      // clears the link's whole disturbance entry.
      Address from{};
      Address to{};
      if (!event.host.empty() || !event.peer.empty()) {
        const Host* a = resolve(event.host, event);
        const Host* b = resolve(event.peer, event);
        if (a == nullptr || b == nullptr) return;
        from = a->address;
        to = b->address;
      }
      const auto set = [&](Address f, Address t) {
        if (revert) {
          net_.clear_disturbance(f, t);
          return;
        }
        sim::NetworkFaultState::Disturbance d;
        if (event.kind == FaultKind::kLossBurst) {
          d.extra_loss = event.value;
        } else {
          d.extra_latency = event.extra_latency;
        }
        net_.set_disturbance(f, t, d);
      };
      set(from, to);
      if (event.bidirectional && from != to) set(to, from);
      record(event, revert, from.value());
      return;
    }
    case FaultKind::kCpuDegrade: {
      const Host* host = resolve(event.host, event);
      if (host == nullptr) return;
      if (host->set_cpu_factor == nullptr) {
        errors_.push_back("cpu_degrade: host \"" + event.host +
                          "\" has no CPU");
        return;
      }
      host->set_cpu_factor(revert ? 1.0 : event.value);
      record(event, revert, host->address.value());
      return;
    }
  }
}

}  // namespace svk::fault
