// FaultInjector — executes a FaultPlan against a running simulation.
//
// The injector resolves a plan's host names to addresses, schedules every
// event (and its revert) on the Simulator, and applies them through the
// network's NetworkFaultState overlay plus per-node hooks (CPU capacity).
// It is entirely deterministic: the plan fixes what happens and when; any
// randomness lives in the plan *generator* (tests/generators.hpp), never
// in the execution. Applied faults are recorded in the observability layer
// (trace instants in the "fault" category, fault.applied counter).
#pragma once

#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/types.hpp"
#include "fault/fault_plan.hpp"
#include "sim/network.hpp"
#include "sim/simulator.hpp"

namespace svk::fault {

class FaultInjector {
 public:
  FaultInjector(sim::Simulator& sim, sim::NetworkFaultState& net)
      : sim_(sim), net_(net) {}

  /// Declares a host the plan may reference. `set_cpu_factor` may be null
  /// for hosts without a CPU model (UAC/UAS boxes).
  void add_host(const std::string& name, Address address,
                std::function<void(double)> set_cpu_factor = nullptr);

  /// Overrides how arm() schedules fault events. Default: the simulator
  /// (rank-0 events, which sort before same-tick host events). A sharded
  /// TestBed routes them to ShardSet::schedule_global instead, which
  /// applies them at window barriers with identical ordering semantics.
  using Scheduler = std::function<void(SimTime, std::function<void()>)>;
  void set_scheduler(Scheduler scheduler) {
    scheduler_ = std::move(scheduler);
  }

  /// Schedules every event of `plan` at its absolute simulation time (past
  /// times fire on the next simulator step). Events naming unknown hosts
  /// are skipped and recorded in errors(). Call once per injector.
  void arm(const FaultPlan& plan);

  [[nodiscard]] const FaultPlan& plan() const { return plan_; }
  [[nodiscard]] const std::vector<std::string>& errors() const {
    return errors_;
  }
  /// Events applied so far (reverts count separately).
  [[nodiscard]] std::uint64_t applied() const { return applied_; }

 private:
  struct Host {
    Address address;
    std::function<void(double)> set_cpu_factor;
  };

  void apply(const FaultEvent& event, bool revert);
  [[nodiscard]] const Host* resolve(const std::string& name,
                                    const FaultEvent& event);
  void record(const FaultEvent& event, bool revert, std::uint32_t tid);

  void schedule(SimTime at, std::function<void()> fn);

  sim::Simulator& sim_;
  sim::NetworkFaultState& net_;
  Scheduler scheduler_;
  std::unordered_map<std::string, Host> hosts_;
  std::vector<Address> all_addresses_;  // declaration order, for partitions
  FaultPlan plan_;
  std::vector<std::string> errors_;
  std::uint64_t applied_{0};
};

}  // namespace svk::fault
