#include "lp/simplex.hpp"

#include <cassert>
#include <cmath>
#include <cstdint>
#include <limits>

namespace svk::lp {
namespace {

constexpr double kTol = 1e-9;
constexpr int kMaxIterations = 20000;

/// Dense tableau state for one simplex run.
struct Tableau {
  std::size_t rows;          // constraints
  std::size_t cols;          // total variables (structural+slack+artificial)
  std::vector<std::vector<double>> a;  // rows x cols
  std::vector<double> b;               // rhs, kept >= 0
  std::vector<std::size_t> basis;      // basic variable per row

  void pivot(std::size_t row, std::size_t col) {
    const double p = a[row][col];
    assert(std::abs(p) > kTol);
    for (std::size_t j = 0; j < cols; ++j) a[row][j] /= p;
    b[row] /= p;
    for (std::size_t i = 0; i < rows; ++i) {
      if (i == row) continue;
      const double factor = a[i][col];
      if (std::abs(factor) < kTol) continue;
      for (std::size_t j = 0; j < cols; ++j) {
        a[i][j] -= factor * a[row][j];
      }
      b[i] -= factor * b[row];
    }
    basis[row] = col;
  }
};

/// Runs primal simplex with Bland's rule on the given cost vector
/// (maximize). `allowed[j]` excludes columns (used to bar artificials in
/// phase 2). Returns status.
SolveStatus run_simplex(Tableau& t, const std::vector<double>& cost,
                        const std::vector<bool>& allowed) {
  for (int iter = 0; iter < kMaxIterations; ++iter) {
    // Reduced costs r_j = c_j - c_B' * column_j.
    std::size_t entering = t.cols;
    for (std::size_t j = 0; j < t.cols; ++j) {
      if (!allowed[j]) continue;
      double r = cost[j];
      for (std::size_t i = 0; i < t.rows; ++i) {
        const double cb = cost[t.basis[i]];
        if (cb != 0.0) r -= cb * t.a[i][j];
      }
      if (r > kTol) {
        entering = j;  // Bland: first improving index
        break;
      }
    }
    if (entering == t.cols) return SolveStatus::kOptimal;

    // Ratio test (Bland tie-break on smallest basis variable index).
    std::size_t leaving_row = t.rows;
    double best_ratio = std::numeric_limits<double>::infinity();
    for (std::size_t i = 0; i < t.rows; ++i) {
      if (t.a[i][entering] > kTol) {
        const double ratio = t.b[i] / t.a[i][entering];
        if (ratio < best_ratio - kTol ||
            (ratio < best_ratio + kTol &&
             (leaving_row == t.rows ||
              t.basis[i] < t.basis[leaving_row]))) {
          best_ratio = ratio;
          leaving_row = i;
        }
      }
    }
    if (leaving_row == t.rows) return SolveStatus::kUnbounded;
    t.pivot(leaving_row, entering);
  }
  return SolveStatus::kIterationLimit;
}

}  // namespace

Constraint& Problem::add_constraint(Relation relation, double rhs) {
  Constraint c;
  c.coeffs.assign(num_vars, 0.0);
  c.relation = relation;
  c.rhs = rhs;
  constraints.push_back(std::move(c));
  return constraints.back();
}

Solution solve(const Problem& problem) {
  const std::size_t n = problem.num_vars;
  const std::size_t m = problem.constraints.size();
  assert(problem.objective.size() == n);

  // Count auxiliary columns.
  std::size_t num_slack = 0;
  for (const Constraint& c : problem.constraints) {
    assert(c.coeffs.size() == n);
    // After rhs normalization (b >= 0), <= rows get a slack, >= rows get a
    // surplus; = rows get none. All non-<= rows get an artificial; <= rows
    // start feasible with their slack basic.
    if (c.relation != Relation::kEqual) ++num_slack;
  }

  Tableau t;
  t.rows = m;
  // Layout: [structural n][slack/surplus num_slack][artificial, up to m]
  std::vector<std::size_t> artificial_cols;
  t.cols = n + num_slack;  // artificials appended below
  t.a.assign(m, {});
  t.b.assign(m, 0.0);
  t.basis.assign(m, 0);

  // First pass: figure out final column count (artificials added for rows
  // that are '=' or '>='-after-normalization without a basic slack).
  struct RowPlan {
    Relation relation = Relation::kLessEqual;
    bool flipped = false;
    std::size_t slack_col = std::numeric_limits<std::size_t>::max();
  };
  std::vector<RowPlan> plan(m);
  std::size_t next_slack = n;
  std::size_t artificial_needed = 0;
  for (std::size_t i = 0; i < m; ++i) {
    const Constraint& c = problem.constraints[i];
    RowPlan& rp = plan[i];
    rp.flipped = c.rhs < 0.0;
    rp.relation = c.relation;
    if (rp.flipped) {
      // Multiply row by -1: relation flips.
      if (c.relation == Relation::kLessEqual) {
        rp.relation = Relation::kGreaterEqual;
      } else if (c.relation == Relation::kGreaterEqual) {
        rp.relation = Relation::kLessEqual;
      }
    }
    if (c.relation != Relation::kEqual) {
      rp.slack_col = next_slack++;
    }
    if (rp.relation != Relation::kLessEqual) ++artificial_needed;
  }
  const std::size_t total_cols = n + num_slack + artificial_needed;
  t.cols = total_cols;

  std::size_t next_artificial = n + num_slack;
  for (std::size_t i = 0; i < m; ++i) {
    const Constraint& c = problem.constraints[i];
    const RowPlan& rp = plan[i];
    const double sign = rp.flipped ? -1.0 : 1.0;
    std::vector<double> row(total_cols, 0.0);
    for (std::size_t j = 0; j < n; ++j) row[j] = sign * c.coeffs[j];
    t.b[i] = sign * c.rhs;

    if (rp.slack_col != std::numeric_limits<std::size_t>::max()) {
      // slack (+1) for <=, surplus (-1) for >= — in *normalized* relation.
      row[rp.slack_col] =
          (rp.relation == Relation::kLessEqual) ? 1.0 : -1.0;
    }
    if (rp.relation == Relation::kLessEqual) {
      t.basis[i] = rp.slack_col;
    } else {
      const std::size_t art = next_artificial++;
      row[art] = 1.0;
      t.basis[i] = art;
      artificial_cols.push_back(art);
    }
    t.a[i] = std::move(row);
  }

  Solution result;

  // ---- Phase 1: drive artificials to zero ----
  if (!artificial_cols.empty()) {
    std::vector<double> cost1(total_cols, 0.0);
    for (const std::size_t col : artificial_cols) cost1[col] = -1.0;
    std::vector<bool> allowed(total_cols, true);
    const SolveStatus s1 = run_simplex(t, cost1, allowed);
    if (s1 == SolveStatus::kIterationLimit) {
      result.status = s1;
      return result;
    }
    double infeasibility = 0.0;
    for (std::size_t i = 0; i < m; ++i) {
      if (t.basis[i] >= n + num_slack) infeasibility += t.b[i];
    }
    if (infeasibility > 1e-6) {
      result.status = SolveStatus::kInfeasible;
      return result;
    }
    // Pivot remaining zero-level artificials out of the basis when a
    // non-artificial column with a nonzero entry exists.
    for (std::size_t i = 0; i < m; ++i) {
      if (t.basis[i] < n + num_slack) continue;
      for (std::size_t j = 0; j < n + num_slack; ++j) {
        if (std::abs(t.a[i][j]) > kTol) {
          t.pivot(i, j);
          break;
        }
      }
    }
  }

  // ---- Phase 2: optimize the real objective ----
  std::vector<double> cost2(total_cols, 0.0);
  for (std::size_t j = 0; j < n; ++j) cost2[j] = problem.objective[j];
  std::vector<bool> allowed(total_cols, true);
  for (const std::size_t col : artificial_cols) allowed[col] = false;
  const SolveStatus s2 = run_simplex(t, cost2, allowed);
  if (s2 != SolveStatus::kOptimal) {
    result.status = s2;
    return result;
  }

  result.status = SolveStatus::kOptimal;
  result.values.assign(n, 0.0);
  for (std::size_t i = 0; i < m; ++i) {
    if (t.basis[i] < n) result.values[t.basis[i]] = t.b[i];
  }
  result.objective = 0.0;
  for (std::size_t j = 0; j < n; ++j) {
    result.objective += problem.objective[j] * result.values[j];
  }
  return result;
}

}  // namespace svk::lp
