// Dense two-phase primal simplex solver (from scratch).
//
// Solves   maximize c'x   subject to   A x {<=,=,>=} b,   x >= 0.
// Bland's anti-cycling rule throughout; built for the small, well-scaled
// instances the state-distribution model produces (tens of variables).
#pragma once

#include <cstddef>
#include <vector>

namespace svk::lp {

enum class Relation { kLessEqual, kEqual, kGreaterEqual };

struct Constraint {
  std::vector<double> coeffs;  // one per structural variable
  Relation relation = Relation::kLessEqual;
  double rhs = 0.0;
};

struct Problem {
  std::size_t num_vars = 0;
  std::vector<double> objective;  // size num_vars; maximized
  std::vector<Constraint> constraints;

  /// Convenience builders.
  Constraint& add_constraint(Relation relation, double rhs);
};

enum class SolveStatus { kOptimal, kInfeasible, kUnbounded, kIterationLimit };

struct Solution {
  SolveStatus status = SolveStatus::kInfeasible;
  double objective = 0.0;
  std::vector<double> values;  // structural variable values at the optimum

  [[nodiscard]] bool optimal() const {
    return status == SolveStatus::kOptimal;
  }
};

/// Solves the problem. Every constraint's coeffs must have exactly
/// `num_vars` entries.
[[nodiscard]] Solution solve(const Problem& problem);

}  // namespace svk::lp
