#include "lp/state_model.hpp"

#include <cassert>

namespace svk::lp {
namespace {

/// Index helpers into the 3-variables-per-edge layout.
constexpr std::size_t kFasf = 0;
constexpr std::size_t kSf = 1;
constexpr std::size_t kAsf = 2;

}  // namespace

NodeIndex StateDistributionModel::add_node(std::string name, double t_sf,
                                           double t_sl) {
  assert(t_sf > 0.0 && t_sl >= t_sf);
  nodes_.push_back(Node{std::move(name), 1.0 / t_sf, 1.0 / t_sl});
  exit_splits_.push_back(std::nullopt);
  return nodes_.size() - 1;
}

void StateDistributionModel::add_edge(NodeIndex from, NodeIndex to) {
  assert(from < nodes_.size() && to < nodes_.size() && from != to);
  edges_.push_back(Edge{from, to, std::nullopt});
}

void StateDistributionModel::mark_entry(NodeIndex node) {
  nodes_[node].entry = true;
}

void StateDistributionModel::mark_exit(NodeIndex node) {
  nodes_[node].exit = true;
}

void StateDistributionModel::fix_split(NodeIndex from, NodeIndex to,
                                       double fraction) {
  for (Edge& e : edges_) {
    if (e.from == from && e.to == to) {
      e.split = fraction;
      return;
    }
  }
  assert(false && "fix_split: no such edge");
}

void StateDistributionModel::fix_exit_split(NodeIndex node, double fraction) {
  assert(nodes_[node].exit);
  exit_splits_[node] = fraction;
}

StateDistributionResult StateDistributionModel::solve() const {
  // Extended edge list: [source->entries][real edges][exits->sink].
  // The imaginary source/sink endpoint marker.
  constexpr NodeIndex kImaginary = static_cast<NodeIndex>(-1);
  struct XEdge {
    NodeIndex from;
    NodeIndex to;
    std::optional<double> split;
  };
  std::vector<XEdge> xedges;
  std::vector<std::size_t> source_edges;  // indices into xedges
  for (NodeIndex i = 0; i < nodes_.size(); ++i) {
    if (nodes_[i].entry) {
      source_edges.push_back(xedges.size());
      xedges.push_back(XEdge{kImaginary, i, std::nullopt});
    }
  }
  const std::size_t first_real = xedges.size();
  for (const Edge& e : edges_) {
    xedges.push_back(XEdge{e.from, e.to, e.split});
  }
  for (NodeIndex i = 0; i < nodes_.size(); ++i) {
    if (nodes_[i].exit) {
      xedges.push_back(XEdge{i, kImaginary, exit_splits_[i]});
    }
  }

  const std::size_t num_edges = xedges.size();
  Problem problem;
  problem.num_vars = 3 * num_edges;
  problem.objective.assign(problem.num_vars, 0.0);

  auto var = [](std::size_t edge, std::size_t which) {
    return 3 * edge + which;
  };

  // Objective: maximize not-yet-stateful inflow on source edges (all
  // entering traffic is ASF by construction).
  for (const std::size_t e : source_edges) {
    problem.objective[var(e, kAsf)] = 1.0;
  }

  // Source edges carry no stateful traffic: t_FASF = 0, t_SF = 0.
  for (const std::size_t e : source_edges) {
    problem.add_constraint(Relation::kEqual, 0.0)
        .coeffs[var(e, kFasf)] = 1.0;
    problem.add_constraint(Relation::kEqual, 0.0).coeffs[var(e, kSf)] = 1.0;
  }

  // Exit (to-sink) edges must carry no not-yet-stateful traffic.
  for (std::size_t e = 0; e < num_edges; ++e) {
    if (xedges[e].to == kImaginary) {
      problem.add_constraint(Relation::kEqual, 0.0)
          .coeffs[var(e, kAsf)] = 1.0;
    }
  }

  // Per-node constraints.
  for (NodeIndex i = 0; i < nodes_.size(); ++i) {
    std::vector<std::size_t> in_edges;
    std::vector<std::size_t> out_edges;
    for (std::size_t e = 0; e < num_edges; ++e) {
      if (xedges[e].to == i) in_edges.push_back(e);
      if (xedges[e].from == i) out_edges.push_back(e);
    }

    // FASF conservation (paper eq. 2): in(FASF + SF) = out(FASF).
    {
      Constraint& c = problem.add_constraint(Relation::kEqual, 0.0);
      for (const std::size_t e : in_edges) {
        c.coeffs[var(e, kFasf)] += 1.0;
        c.coeffs[var(e, kSf)] += 1.0;
      }
      for (const std::size_t e : out_edges) {
        c.coeffs[var(e, kFasf)] -= 1.0;
      }
    }
    // ASF conservation (paper eq. 3): in(ASF) = out(SF + ASF).
    {
      Constraint& c = problem.add_constraint(Relation::kEqual, 0.0);
      for (const std::size_t e : in_edges) {
        c.coeffs[var(e, kAsf)] += 1.0;
      }
      for (const std::size_t e : out_edges) {
        c.coeffs[var(e, kSf)] -= 1.0;
        c.coeffs[var(e, kAsf)] -= 1.0;
      }
    }
    // CPU feasibility (paper eq. 4): alpha*SF + beta*(ASF + FASF) <= 1.
    {
      Constraint& c = problem.add_constraint(Relation::kLessEqual, 1.0);
      for (const std::size_t e : out_edges) {
        c.coeffs[var(e, kSf)] += nodes_[i].alpha;
        c.coeffs[var(e, kAsf)] += nodes_[i].beta;
        c.coeffs[var(e, kFasf)] += nodes_[i].beta;
      }
    }
    // Routing constraints: t_e = phi_e * t_i for constrained out-edges.
    for (const std::size_t e : out_edges) {
      if (!xedges[e].split) continue;
      Constraint& c = problem.add_constraint(Relation::kEqual, 0.0);
      for (const std::size_t which : {kFasf, kSf, kAsf}) {
        c.coeffs[var(e, which)] += 1.0;
      }
      for (const std::size_t in : in_edges) {
        for (const std::size_t which : {kFasf, kSf, kAsf}) {
          c.coeffs[var(in, which)] -= *xedges[e].split;
        }
      }
    }
  }

  const Solution solution = lp::solve(problem);

  StateDistributionResult result;
  result.status = solution.status;
  if (!solution.optimal()) return result;

  result.max_throughput = solution.objective;
  result.node_stateful.assign(nodes_.size(), 0.0);
  result.node_load.assign(nodes_.size(), 0.0);
  for (std::size_t e = 0; e < num_edges; ++e) {
    EdgeFlows flows;
    flows.from = xedges[e].from;
    flows.to = xedges[e].to;
    flows.fasf = solution.values[var(e, kFasf)];
    flows.sf = solution.values[var(e, kSf)];
    flows.asf = solution.values[var(e, kAsf)];
    if (e >= first_real || xedges[e].from == kImaginary) {
      result.edges.push_back(flows);
    }
    if (flows.from != kImaginary) {
      result.node_stateful[flows.from] += flows.sf;
      result.node_load[flows.from] += flows.total();
    }
  }
  return result;
}

}  // namespace svk::lp
