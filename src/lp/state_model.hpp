// The paper's Section 4.1 optimization formulation.
//
// Builds, for an arbitrary proxy topology, the LP that maximizes admitted
// call rate subject to (a) flow conservation of already-stateful (FASF) and
// not-yet-stateful (ASF) traffic, (b) every call being handled statefully
// at exactly one node before it exits, and (c) per-node CPU feasibility
// alpha*SF + beta*SL <= 1. Optional routing constraints fix the fractional
// split of a node's input across its outgoing edges (t_id = phi_id * t_i).
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

#include "lp/simplex.hpp"

namespace svk::lp {

using NodeIndex = std::size_t;

/// Per-edge flow split at the optimum.
struct EdgeFlows {
  NodeIndex from;
  NodeIndex to;
  double fasf = 0.0;  // stateful before reaching `from`
  double sf = 0.0;    // `from` maintains state for these
  double asf = 0.0;   // still stateless when leaving `from`

  [[nodiscard]] double total() const { return fasf + sf + asf; }
};

struct StateDistributionResult {
  SolveStatus status = SolveStatus::kInfeasible;
  double max_throughput = 0.0;        // calls/second into the system
  std::vector<EdgeFlows> edges;       // all real edges (source/sink incl.)
  std::vector<double> node_stateful;  // SF rate maintained per node
  std::vector<double> node_load;      // total rate through each node

  [[nodiscard]] bool optimal() const {
    return status == SolveStatus::kOptimal;
  }
};

class StateDistributionModel {
 public:
  /// Adds a proxy node with stateful/stateless saturation thresholds (cps).
  NodeIndex add_node(std::string name, double t_sf, double t_sl);

  /// Adds a directed edge between proxies.
  void add_edge(NodeIndex from, NodeIndex to);

  /// Marks a node as an entry (receives external call load).
  void mark_entry(NodeIndex node);

  /// Marks a node as an exit (calls leave the system after it).
  void mark_exit(NodeIndex node);

  /// Routing constraint: the flow on edge (from->to) is exactly `fraction`
  /// of the node's total input (the paper's phi_id). Exit flow counts as an
  /// implicit edge to the sink; use fix_exit_split for it.
  void fix_split(NodeIndex from, NodeIndex to, double fraction);
  void fix_exit_split(NodeIndex node, double fraction);

  [[nodiscard]] StateDistributionResult solve() const;

  [[nodiscard]] const std::string& node_name(NodeIndex node) const {
    return nodes_[node].name;
  }
  [[nodiscard]] std::size_t node_count() const { return nodes_.size(); }

 private:
  struct Node {
    std::string name;
    double alpha;
    double beta;
    bool entry = false;
    bool exit = false;
  };
  struct Edge {
    NodeIndex from;
    NodeIndex to;
    std::optional<double> split;  // phi for routing constraint
  };

  std::vector<Node> nodes_;
  std::vector<Edge> edges_;
  std::vector<std::optional<double>> exit_splits_;
};

}  // namespace svk::lp
