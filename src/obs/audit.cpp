#include "obs/audit.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <utility>

namespace svk::obs {
namespace {

/// Infinity is not representable in JSON; an unconstrained myshare
/// (below-T_SF windows, exit paths) serializes as null.
JsonValue finite_or_null(double v) {
  return std::isfinite(v) ? JsonValue(v) : JsonValue(nullptr);
}

}  // namespace

JsonValue AuditWindow::to_json() const {
  JsonValue w = JsonValue::object();
  w["node"] = static_cast<std::uint64_t>(node_tid);
  w["t"] = at.to_seconds();
  w["elapsed_s"] = elapsed;
  w["total_rate"] = total_rate;
  w["budget_rate"] = budget_rate;
  w["correction"] = correction;
  w["below_t_sf"] = below_t_sf;
  w["self_overloaded"] = self_overloaded;
  if (overload_changed) w["overload_changed"] = true;
  JsonValue& rows = w["paths"];
  rows = JsonValue::array();
  for (const AuditPathRow& path : paths) {
    JsonValue row = JsonValue::object();
    row["path"] = static_cast<std::uint64_t>(path.path_index);
    row["delegable"] = path.delegable;
    if (path.overloaded) {
      row["overloaded"] = true;
      row["frozen_c_asf"] = path.frozen_c_asf;
    }
    row["msg_count"] = path.msg_count;
    row["fasf_count"] = path.fasf_count;
    row["sf_count"] = path.sf_count;
    row["myshare"] = finite_or_null(path.myshare);
    row["sf_fraction"] = path.sf_fraction;
    row["smoothed_share"] = path.smoothed_share;
    rows.push_back(std::move(row));
  }
  return w;
}

JsonValue windows_to_json(const std::vector<AuditWindow>& windows) {
  JsonValue list = JsonValue::array();
  for (const AuditWindow& window : windows) {
    list.push_back(window.to_json());
  }
  return list;
}

ControllerAuditLog::ControllerAuditLog(std::size_t max_windows)
    : max_windows_(max_windows) {
  assert(max_windows_ > 0);
}

void ControllerAuditLog::append(AuditWindow window) {
  if (windows_.size() == max_windows_) {
    windows_.pop_front();
    ++dropped_;
  }
  windows_.push_back(std::move(window));
}

void ControllerAuditLog::absorb(ControllerAuditLog& src) {
  for (AuditWindow& window : src.windows_) append(std::move(window));
  dropped_ += src.dropped_;
  src.windows_.clear();
  src.dropped_ = 0;
  std::stable_sort(windows_.begin(), windows_.end(),
                   [](const AuditWindow& a, const AuditWindow& b) {
                     if (a.at != b.at) return a.at < b.at;
                     return a.node_tid < b.node_tid;
                   });
}

std::vector<AuditWindow> ControllerAuditLog::windows_for(
    std::uint32_t node_tid) const {
  std::vector<AuditWindow> out;
  for (const AuditWindow& window : windows_) {
    if (window.node_tid == node_tid) out.push_back(window);
  }
  return out;
}

std::vector<AuditWindow> ControllerAuditLog::snapshot() const {
  return {windows_.begin(), windows_.end()};
}

JsonValue OverloadAuditRecord::to_json() const {
  JsonValue r = JsonValue::object();
  r["node"] = static_cast<std::uint64_t>(node_tid);
  r["t"] = at.to_seconds();
  r["occupancy"] = occupancy;
  r["advertised_rate"] =
      advertised_rate >= 0.0 ? JsonValue(advertised_rate) : JsonValue(nullptr);
  r["local_rejects"] = local_rejects;
  r["throttled_rejects"] = throttled_rejects;
  return r;
}

OverloadAuditLog::OverloadAuditLog(std::size_t max_records)
    : max_records_(max_records) {
  assert(max_records_ > 0);
}

void OverloadAuditLog::append(OverloadAuditRecord record) {
  if (records_.size() == max_records_) {
    records_.pop_front();
    ++dropped_;
  }
  records_.push_back(record);
}

void OverloadAuditLog::absorb(OverloadAuditLog& src) {
  for (const OverloadAuditRecord& record : src.records_) append(record);
  dropped_ += src.dropped_;
  src.records_.clear();
  src.dropped_ = 0;
  std::stable_sort(records_.begin(), records_.end(),
                   [](const OverloadAuditRecord& a,
                      const OverloadAuditRecord& b) {
                     if (a.at != b.at) return a.at < b.at;
                     return a.node_tid < b.node_tid;
                   });
}

std::vector<OverloadAuditRecord> OverloadAuditLog::records_for(
    std::uint32_t node_tid) const {
  std::vector<OverloadAuditRecord> out;
  for (const OverloadAuditRecord& record : records_) {
    if (record.node_tid == node_tid) out.push_back(record);
  }
  return out;
}

std::vector<OverloadAuditRecord> OverloadAuditLog::snapshot() const {
  return {records_.begin(), records_.end()};
}

JsonValue overload_records_to_json(
    const std::vector<OverloadAuditRecord>& records) {
  JsonValue list = JsonValue::array();
  for (const OverloadAuditRecord& record : records) {
    list.push_back(record.to_json());
  }
  return list;
}

}  // namespace svk::obs
