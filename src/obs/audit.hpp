// Controller audit log — the per-window decision record of every
// SERvartuka controller in a run.
//
// Each closing monitoring window appends one AuditWindow: the observed
// per-path counters (msg/fasf/sf), the newly computed control outputs
// (myshare, sf_fraction, smoothed_share), the closed-loop correction, and
// the overload state transitions. This is the ground truth for debugging
// controller dynamics: regressions like a stale correction multiplier or a
// path misclassified as non-delegable are invisible in end-of-run
// aggregates but obvious in the window-by-window series.
//
// The log is bounded (ring semantics: newest windows win) and purely
// passive — appending can never change simulated results.
#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "common/json.hpp"
#include "common/sim_time.hpp"

namespace svk::obs {

/// One downstream path's state at a window boundary.
struct AuditPathRow {
  std::size_t path_index = 0;
  bool delegable = false;
  bool overloaded = false;       // downstream frozen
  std::uint64_t msg_count = 0;   // counters of the window just closed
  std::uint64_t fasf_count = 0;
  std::uint64_t sf_count = 0;
  // Control outputs for the window just opened. myshare is infinite below
  // T_SF (serialized as JSON null).
  double myshare = 0.0;
  double sf_fraction = 0.0;
  double smoothed_share = 0.0;
  double frozen_c_asf = 0.0;
};

/// One controller monitoring window.
struct AuditWindow {
  std::uint32_t node_tid = 0;  // owning node (proxy address)
  SimTime at;                  // closing tick time
  double elapsed = 0.0;        // measured window length, seconds
  double total_rate = 0.0;     // requests/second over the window
  double budget_rate = 0.0;    // feasible stateful rate (Eq. 8)
  double correction = 0.0;     // closed-loop share multiplier
  bool below_t_sf = false;     // Eq. 8 case 1 window
  bool self_overloaded = false;
  bool overload_changed = false;  // self_overloaded flipped this window
  std::vector<AuditPathRow> paths;

  [[nodiscard]] JsonValue to_json() const;
};

/// Serializes a window sequence (any container of AuditWindow).
[[nodiscard]] JsonValue windows_to_json(
    const std::vector<AuditWindow>& windows);

class ControllerAuditLog {
 public:
  static constexpr std::size_t kDefaultCapacity = 1u << 16;

  explicit ControllerAuditLog(std::size_t max_windows = kDefaultCapacity);

  void append(AuditWindow window);

  /// Drains `src`'s windows into this log (shard merge), then re-sorts the
  /// whole log by (time, node): the order a serial run appends in — each
  /// node's closing tick executes in (time, locus rank) order — so merged
  /// snapshots serialize bit-identically to serial ones.
  void absorb(ControllerAuditLog& src);

  [[nodiscard]] const std::deque<AuditWindow>& windows() const {
    return windows_;
  }
  [[nodiscard]] std::uint64_t dropped() const { return dropped_; }

  /// Windows of one node, in time order.
  [[nodiscard]] std::vector<AuditWindow> windows_for(
      std::uint32_t node_tid) const;

  /// All retained windows as a flat copy (time order, nodes interleaved).
  [[nodiscard]] std::vector<AuditWindow> snapshot() const;

 private:
  std::size_t max_windows_;
  std::deque<AuditWindow> windows_;
  std::uint64_t dropped_{0};
};

/// One overload-control tick of one node: the occupancy the controller saw,
/// the rate it advertises upstream, and the cumulative reject counters.
/// Appended by the proxy each control period when the overload policy is
/// active; the window-by-window series makes controller dynamics (ramp-in,
/// release, throttle hand-off between hops) debuggable the same way the
/// ControllerAuditLog does for delegation.
struct OverloadAuditRecord {
  std::uint32_t node_tid = 0;
  SimTime at;
  double occupancy = 0.0;        // smoothed estimate after this sample
  double advertised_rate = -1.0; // cps; negative = unrestricted
  std::uint64_t local_rejects = 0;      // cumulative
  std::uint64_t throttled_rejects = 0;  // cumulative

  [[nodiscard]] JsonValue to_json() const;
};

class OverloadAuditLog {
 public:
  static constexpr std::size_t kDefaultCapacity = 1u << 16;

  explicit OverloadAuditLog(std::size_t max_records = kDefaultCapacity);

  void append(OverloadAuditRecord record);

  /// Drains `src`'s records into this log and re-sorts by (time, node) —
  /// see ControllerAuditLog::absorb.
  void absorb(OverloadAuditLog& src);

  [[nodiscard]] const std::deque<OverloadAuditRecord>& records() const {
    return records_;
  }
  [[nodiscard]] std::uint64_t dropped() const { return dropped_; }

  [[nodiscard]] std::vector<OverloadAuditRecord> records_for(
      std::uint32_t node_tid) const;
  [[nodiscard]] std::vector<OverloadAuditRecord> snapshot() const;

 private:
  std::size_t max_records_;
  std::deque<OverloadAuditRecord> records_;
  std::uint64_t dropped_{0};
};

[[nodiscard]] JsonValue overload_records_to_json(
    const std::vector<OverloadAuditRecord>& records);

}  // namespace svk::obs
