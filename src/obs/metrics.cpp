#include "obs/metrics.hpp"

#include <cassert>

namespace svk::obs {

TimeSeries::TimeSeries(std::size_t capacity) : buffer_(capacity) {
  assert(capacity > 0);
}

void TimeSeries::sample(SimTime at, double value) {
  if (size_ == buffer_.size()) {
    ++dropped_;  // the slot being overwritten held the oldest sample
  } else {
    ++size_;
  }
  buffer_[head_] = Sample{at, value};
  head_ = (head_ + 1) % buffer_.size();
}

void TimeSeries::drain_into(TimeSeries& dst) {
  for (const Sample& s : samples()) dst.sample(s.at, s.value);
  dst.dropped_ += dropped_;
  head_ = 0;
  size_ = 0;
  dropped_ = 0;
}

std::vector<Sample> TimeSeries::samples() const {
  std::vector<Sample> out;
  out.reserve(size_);
  const std::size_t start =
      (head_ + buffer_.size() - size_) % buffer_.size();
  for (std::size_t i = 0; i < size_; ++i) {
    out.push_back(buffer_[(start + i) % buffer_.size()]);
  }
  return out;
}

Counter& MetricRegistry::counter(std::string_view name) {
  if (const auto it = counter_index_.find(std::string(name));
      it != counter_index_.end()) {
    return counters_[it->second].second;
  }
  counters_.emplace_back(std::string(name), Counter{});
  counter_index_.emplace(std::string(name), counters_.size() - 1);
  return counters_.back().second;
}

Gauge& MetricRegistry::gauge(std::string_view name) {
  if (const auto it = gauge_index_.find(std::string(name));
      it != gauge_index_.end()) {
    return gauges_[it->second].second;
  }
  gauges_.emplace_back(std::string(name), Gauge{});
  gauge_index_.emplace(std::string(name), gauges_.size() - 1);
  return gauges_.back().second;
}

TimeSeries& MetricRegistry::series(std::string_view name,
                                   std::size_t capacity) {
  if (const auto it = series_index_.find(std::string(name));
      it != series_index_.end()) {
    return series_[it->second].second;
  }
  series_.emplace_back(std::string(name), TimeSeries{capacity});
  series_index_.emplace(std::string(name), series_.size() - 1);
  return series_.back().second;
}

void MetricRegistry::absorb(MetricRegistry& src) {
  for (auto& [name, c] : src.counters_) c.drain_into(counter(name));
  for (auto& [name, g] : src.gauges_) {
    gauge(name).set(g.value());
  }
  for (auto& [name, ts] : src.series_) {
    ts.drain_into(series(name, ts.capacity()));
  }
}

JsonValue MetricRegistry::to_json() const {
  JsonValue root = JsonValue::object();
  JsonValue& counters = root["counters"];
  counters = JsonValue::object();
  for (const auto& [name, counter] : counters_) {
    counters[name] = counter.value();
  }
  JsonValue& gauges = root["gauges"];
  gauges = JsonValue::object();
  for (const auto& [name, gauge] : gauges_) {
    gauges[name] = gauge.value();
  }
  JsonValue& series = root["series"];
  series = JsonValue::object();
  for (const auto& [name, ts] : series_) {
    JsonValue entry = JsonValue::object();
    entry["capacity"] = static_cast<std::uint64_t>(ts.capacity());
    entry["dropped"] = ts.dropped();
    JsonValue& points = entry["points"];
    points = JsonValue::array();
    for (const Sample& sample : ts.samples()) {
      JsonValue p = JsonValue::object();
      p["t"] = sample.at.to_seconds();
      p["v"] = sample.value;
      points.push_back(std::move(p));
    }
    series[name] = std::move(entry);
  }
  return root;
}

}  // namespace svk::obs
