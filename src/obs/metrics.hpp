// MetricRegistry — named counters, gauges, and sim-time-windowed
// time-series samplers.
//
// The registry is a passive recording surface: nothing in the simulation
// reads metrics back, so attaching or detaching a registry can never change
// simulated results. Instruments are created on first use and live for the
// registry's lifetime (entries are held in deques, so references handed out
// stay valid as more instruments are registered). Time series are
// fixed-capacity ring buffers that keep the most recent samples and count
// what they dropped — memory use is bounded no matter how long a run is.
#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/json.hpp"
#include "common/sim_time.hpp"

namespace svk::obs {

/// Monotonically increasing event count.
class Counter {
 public:
  void inc(std::uint64_t n = 1) { value_ += n; }
  [[nodiscard]] std::uint64_t value() const { return value_; }
  /// Moves this counter's whole value into `dst` (shard-merge drain).
  void drain_into(Counter& dst) {
    dst.value_ += value_;
    value_ = 0;
  }

 private:
  std::uint64_t value_{0};
};

/// Last-write-wins instantaneous value.
class Gauge {
 public:
  void set(double v) { value_ = v; }
  [[nodiscard]] double value() const { return value_; }

 private:
  double value_{0.0};
};

/// One (sim time, value) observation.
struct Sample {
  SimTime at;
  double value = 0.0;
};

/// Fixed-capacity ring buffer of samples: keeps the newest `capacity`
/// observations, counts the rest as dropped.
class TimeSeries {
 public:
  explicit TimeSeries(std::size_t capacity);

  void sample(SimTime at, double value);

  /// Appends this ring's retained samples to `dst` and empties this ring
  /// (shard-merge drain); dropped counts carry over.
  void drain_into(TimeSeries& dst);

  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] std::size_t capacity() const { return buffer_.size(); }
  [[nodiscard]] std::uint64_t dropped() const { return dropped_; }

  /// Retained samples, oldest first.
  [[nodiscard]] std::vector<Sample> samples() const;

 private:
  std::vector<Sample> buffer_;
  std::size_t head_{0};  // next write position
  std::size_t size_{0};
  std::uint64_t dropped_{0};
};

/// Name-indexed instrument registry with stable creation order.
class MetricRegistry {
 public:
  /// Default ring capacity for series created without an explicit one.
  static constexpr std::size_t kDefaultSeriesCapacity = 4096;

  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  TimeSeries& series(std::string_view name,
                     std::size_t capacity = kDefaultSeriesCapacity);

  /// Drains every instrument of `src` into this registry (sharded runs:
  /// per-shard registries merge into the primary at window barriers).
  /// Counters add-and-zero, gauges last-write-wins, series append-and-clear.
  void absorb(MetricRegistry& src);

  /// Serializes every instrument:
  /// {"counters": {...}, "gauges": {...}, "series": {name: {...}}}.
  [[nodiscard]] JsonValue to_json() const;

 private:
  // Deques keep references stable; the maps index into them by name.
  std::deque<std::pair<std::string, Counter>> counters_;
  std::deque<std::pair<std::string, Gauge>> gauges_;
  std::deque<std::pair<std::string, TimeSeries>> series_;
  std::unordered_map<std::string, std::size_t> counter_index_;
  std::unordered_map<std::string, std::size_t> gauge_index_;
  std::unordered_map<std::string, std::size_t> series_index_;
};

}  // namespace svk::obs
