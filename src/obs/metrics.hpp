// MetricRegistry — named counters, gauges, and sim-time-windowed
// time-series samplers.
//
// The registry is a passive recording surface: nothing in the simulation
// reads metrics back, so attaching or detaching a registry can never change
// simulated results. Instruments are created on first use and live for the
// registry's lifetime (entries are held in deques, so references handed out
// stay valid as more instruments are registered). Time series are
// fixed-capacity ring buffers that keep the most recent samples and count
// what they dropped — memory use is bounded no matter how long a run is.
#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/json.hpp"
#include "common/sim_time.hpp"

namespace svk::obs {

/// Monotonically increasing event count.
class Counter {
 public:
  void inc(std::uint64_t n = 1) { value_ += n; }
  [[nodiscard]] std::uint64_t value() const { return value_; }
  /// Moves this counter's whole value into `dst` (shard-merge drain).
  void drain_into(Counter& dst) {
    dst.value_ += value_;
    value_ = 0;
  }

 private:
  std::uint64_t value_{0};
};

/// Last-write-wins instantaneous value.
class Gauge {
 public:
  void set(double v) { value_ = v; }
  [[nodiscard]] double value() const { return value_; }

 private:
  double value_{0.0};
};

/// One (sim time, value) observation.
struct Sample {
  SimTime at;
  double value = 0.0;
};

/// Fixed-capacity ring buffer of samples: keeps the newest `capacity`
/// observations, counts the rest as dropped.
class TimeSeries {
 public:
  explicit TimeSeries(std::size_t capacity);

  void sample(SimTime at, double value);

  /// Appends this ring's retained samples to `dst` and empties this ring
  /// (shard-merge drain); dropped counts carry over.
  void drain_into(TimeSeries& dst);

  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] std::size_t capacity() const { return buffer_.size(); }
  [[nodiscard]] std::uint64_t dropped() const { return dropped_; }

  /// Retained samples, oldest first.
  [[nodiscard]] std::vector<Sample> samples() const;

 private:
  std::vector<Sample> buffer_;
  std::size_t head_{0};  // next write position
  std::size_t size_{0};
  std::uint64_t dropped_{0};
};

class MetricRegistry;

/// Pre-resolved counter reference for hot paths. Looking an instrument up
/// by name costs a string hash plus a map probe per event; a handle does
/// that once per registry and afterwards is a pointer compare + increment.
/// Registries attach late and differ per shard, so the handle re-resolves
/// whenever the registry pointer it is shown changes (instrument references
/// are stable for a registry's lifetime — deque-backed).
class CounterHandle {
 public:
  explicit CounterHandle(std::string name) : name_(std::move(name)) {}

  void inc(MetricRegistry* registry, std::uint64_t n = 1);

 private:
  std::string name_;
  MetricRegistry* registry_{nullptr};
  Counter* counter_{nullptr};
};

/// Pre-resolved gauge reference; same contract as CounterHandle.
class GaugeHandle {
 public:
  explicit GaugeHandle(std::string name) : name_(std::move(name)) {}

  void set(MetricRegistry* registry, double v);

 private:
  std::string name_;
  MetricRegistry* registry_{nullptr};
  Gauge* gauge_{nullptr};
};

/// Pre-resolved time-series reference; same contract as CounterHandle.
class SeriesHandle {
 public:
  explicit SeriesHandle(std::string name) : name_(std::move(name)) {}

  void sample(MetricRegistry* registry, SimTime at, double v);

 private:
  std::string name_;
  MetricRegistry* registry_{nullptr};
  TimeSeries* series_{nullptr};
};

/// Name-indexed instrument registry with stable creation order.
class MetricRegistry {
 public:
  /// Default ring capacity for series created without an explicit one.
  static constexpr std::size_t kDefaultSeriesCapacity = 4096;

  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  TimeSeries& series(std::string_view name,
                     std::size_t capacity = kDefaultSeriesCapacity);

  /// Drains every instrument of `src` into this registry (sharded runs:
  /// per-shard registries merge into the primary at window barriers).
  /// Counters add-and-zero, gauges last-write-wins, series append-and-clear.
  void absorb(MetricRegistry& src);

  /// Serializes every instrument:
  /// {"counters": {...}, "gauges": {...}, "series": {name: {...}}}.
  [[nodiscard]] JsonValue to_json() const;

 private:
  // Deques keep references stable; the maps index into them by name.
  std::deque<std::pair<std::string, Counter>> counters_;
  std::deque<std::pair<std::string, Gauge>> gauges_;
  std::deque<std::pair<std::string, TimeSeries>> series_;
  std::unordered_map<std::string, std::size_t> counter_index_;
  std::unordered_map<std::string, std::size_t> gauge_index_;
  std::unordered_map<std::string, std::size_t> series_index_;
};

inline void CounterHandle::inc(MetricRegistry* registry, std::uint64_t n) {
  if (registry == nullptr) return;
  if (registry != registry_) {
    registry_ = registry;
    counter_ = &registry->counter(name_);
  }
  counter_->inc(n);
}

inline void GaugeHandle::set(MetricRegistry* registry, double v) {
  if (registry == nullptr) return;
  if (registry != registry_) {
    registry_ = registry;
    gauge_ = &registry->gauge(name_);
  }
  gauge_->set(v);
}

inline void SeriesHandle::sample(MetricRegistry* registry, SimTime at,
                                 double v) {
  if (registry == nullptr) return;
  if (registry != registry_) {
    registry_ = registry;
    series_ = &registry->series(name_);
  }
  series_->sample(at, v);
}

}  // namespace svk::obs
