#include "obs/observability.hpp"

namespace svk::obs {

Observability::Observability(Options options) {
  if (options.metrics) metrics_ = std::make_unique<MetricRegistry>();
  if (options.trace) {
    tracer_ = std::make_unique<Tracer>(options.trace_capacity);
  }
  if (options.audit) {
    audit_ = std::make_unique<ControllerAuditLog>(options.audit_capacity);
    overload_audit_ =
        std::make_unique<OverloadAuditLog>(options.audit_capacity);
  }
}

Sinks Observability::sinks() {
  Sinks s;
  s.metrics = metrics_.get();
  s.tracer = tracer_.get();
  s.audit = audit_.get();
  s.overload_audit = overload_audit_.get();
  return s;
}

}  // namespace svk::obs
