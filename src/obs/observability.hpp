// Observability — the owning bundle behind a Sinks handle.
//
// One Observability instance per observed run: it owns the metric
// registry, the tracer, and the controller audit log, and hands out a
// Sinks value pointing at whichever backends are enabled. The TestBed
// installs the sinks on its simulator; everything downstream records
// through them without knowing who owns what.
#pragma once

#include <memory>
#include <string>

#include "obs/audit.hpp"
#include "obs/metrics.hpp"
#include "obs/sinks.hpp"
#include "obs/trace.hpp"

namespace svk::obs {

struct Options {
  bool metrics = true;
  bool trace = true;
  bool audit = true;
  std::size_t trace_capacity = Tracer::kDefaultCapacity;
  std::size_t audit_capacity = ControllerAuditLog::kDefaultCapacity;
};

class Observability {
 public:
  explicit Observability(Options options = {});

  /// Handles to the enabled backends (null for disabled ones).
  [[nodiscard]] Sinks sinks();

  [[nodiscard]] MetricRegistry* metrics() { return metrics_.get(); }
  [[nodiscard]] Tracer* tracer() { return tracer_.get(); }
  [[nodiscard]] ControllerAuditLog* audit() { return audit_.get(); }
  [[nodiscard]] OverloadAuditLog* overload_audit() {
    return overload_audit_.get();
  }

 private:
  std::unique_ptr<MetricRegistry> metrics_;
  std::unique_ptr<Tracer> tracer_;
  std::unique_ptr<ControllerAuditLog> audit_;
  std::unique_ptr<OverloadAuditLog> overload_audit_;
};

}  // namespace svk::obs
