// Observability sink handles.
//
// A Sinks struct is a bundle of non-owning pointers to the three
// observability backends (metric registry, event tracer, controller audit
// log). The simulator owns one Sinks value; every component that can reach
// the simulator — or that is handed a pointer to the simulator's struct —
// reads its sinks through it. All pointers default to null: with
// observability disabled every instrumentation site reduces to a null check,
// and the simulated results are bit-identical to a build without any
// instrumentation at all (asserted by ObsDeterminismTest).
#pragma once

namespace svk::obs {

class MetricRegistry;
class Tracer;
class ControllerAuditLog;
class OverloadAuditLog;

struct Sinks {
  MetricRegistry* metrics = nullptr;
  Tracer* tracer = nullptr;
  ControllerAuditLog* audit = nullptr;
  OverloadAuditLog* overload_audit = nullptr;

  [[nodiscard]] bool any() const {
    return metrics != nullptr || tracer != nullptr || audit != nullptr ||
           overload_audit != nullptr;
  }
};

}  // namespace svk::obs
