#include "obs/trace.hpp"

#include <algorithm>
#include <utility>

namespace svk::obs {
namespace {

/// trace_event timestamps are microseconds. Integer export keeps the JSON
/// compact and avoids scientific notation ("1e+06") in viewers.
std::int64_t to_us(SimTime t) { return t.ns() / 1000; }

}  // namespace

Tracer::Tracer(std::size_t max_events) : max_events_(max_events) {
  events_.reserve(max_events_ < 4096 ? max_events_ : 4096);
}

void Tracer::push(TraceEvent event) {
  if (events_.size() >= max_events_) {
    ++dropped_;
    return;
  }
  events_.push_back(event);
}

void Tracer::instant(std::string_view name, std::string_view category,
                     SimTime ts, std::uint32_t tid,
                     std::string_view arg0_name, double arg0,
                     std::string_view arg1_name, double arg1) {
  push(TraceEvent{name, category, 'i', ts, SimTime{}, tid, arg0_name, arg0,
                  arg1_name, arg1});
}

void Tracer::complete(std::string_view name, std::string_view category,
                      SimTime start, SimTime dur, std::uint32_t tid,
                      std::string_view arg0_name, double arg0) {
  push(TraceEvent{name, category, 'X', start, dur, tid, arg0_name, arg0,
                  {}, 0.0});
}

void Tracer::counter(std::string_view name, SimTime ts, std::uint32_t tid,
                     std::string_view value_name, double value) {
  push(TraceEvent{name, "counter", 'C', ts, SimTime{}, tid, value_name,
                  value, {}, 0.0});
}

void Tracer::set_thread_name(std::uint32_t tid, std::string name) {
  thread_names_[tid] = std::move(name);
}

void Tracer::absorb(Tracer& src) {
  for (const TraceEvent& event : src.events_) push(event);
  dropped_ += src.dropped_;
  src.events_.clear();
  src.dropped_ = 0;
  for (auto& [tid, name] : src.thread_names_) {
    thread_names_.try_emplace(tid, std::move(name));
  }
  src.thread_names_.clear();
}

JsonValue Tracer::to_chrome_json() const {
  JsonValue root = JsonValue::object();
  JsonValue& list = root["traceEvents"];
  list = JsonValue::array();

  // Metadata first: name each node's timeline. Sorted for stable output.
  std::vector<std::pair<std::uint32_t, std::string>> names(
      thread_names_.begin(), thread_names_.end());
  std::sort(names.begin(), names.end());
  for (const auto& [tid, name] : names) {
    JsonValue meta = JsonValue::object();
    meta["name"] = "thread_name";
    meta["ph"] = "M";
    meta["pid"] = 1;
    meta["tid"] = static_cast<std::uint64_t>(tid);
    meta["args"]["name"] = name;
    list.push_back(std::move(meta));
  }

  for (const TraceEvent& event : events_) {
    JsonValue e = JsonValue::object();
    e["name"] = event.name;
    if (event.phase != 'C') e["cat"] = event.category;
    e["ph"] = std::string(1, event.phase);
    e["ts"] = to_us(event.ts);
    if (event.phase == 'X') e["dur"] = to_us(event.dur);
    if (event.phase == 'i') e["s"] = "t";  // thread-scoped instant
    e["pid"] = 1;
    e["tid"] = static_cast<std::uint64_t>(event.tid);
    if (!event.arg0_name.empty() || !event.arg1_name.empty()) {
      JsonValue& args = e["args"];
      args = JsonValue::object();
      if (!event.arg0_name.empty()) args[event.arg0_name] = event.arg0;
      if (!event.arg1_name.empty()) args[event.arg1_name] = event.arg1;
    }
    list.push_back(std::move(e));
  }

  root["displayTimeUnit"] = "ms";
  JsonValue& meta = root["metadata"];
  meta["tool"] = "servartuka";
  meta["clock"] = "simulated";
  meta["dropped_events"] = dropped_;
  return root;
}

bool Tracer::write_chrome_trace(const std::string& path) const {
  // Compact output: traces get large and viewers do not need indentation.
  return to_chrome_json().write_file(path, /*indent=*/-1);
}

}  // namespace svk::obs
