// Tracer — typed simulation events exported as Chrome trace_event JSON.
//
// Components record instants (message rx/tx, state decisions, CPU rejects,
// overload signals, window ticks), complete spans (CPU service time), and
// counter tracks (utilization, backlog) against the simulated clock. The
// export is the Chrome/Perfetto `trace_event` "JSON Array Format": load the
// file in chrome://tracing or https://ui.perfetto.dev and every node shows
// up as its own named thread with its CPU occupancy and control events on a
// shared timeline.
//
// Event names/categories/argument names must be string literals (or other
// static-lifetime strings): the tracer stores string_views unescaped and
// the hot path must not allocate. The buffer is bounded — once
// `max_events` is reached new events are counted as dropped, never
// reallocated — so tracing a runaway run cannot exhaust memory.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/json.hpp"
#include "common/sim_time.hpp"

namespace svk::obs {

/// One recorded event in (a subset of) the trace_event model.
struct TraceEvent {
  std::string_view name;      // static lifetime
  std::string_view category;  // static lifetime
  char phase = 'i';           // 'i' instant, 'X' complete, 'C' counter
  SimTime ts;
  SimTime dur;                // complete events only
  std::uint32_t tid = 0;      // node id (proxy address)
  // Up to two numeric arguments; unused when the name view is empty.
  std::string_view arg0_name;
  double arg0 = 0.0;
  std::string_view arg1_name;
  double arg1 = 0.0;
};

class Tracer {
 public:
  static constexpr std::size_t kDefaultCapacity = 1u << 18;  // ~262k events

  explicit Tracer(std::size_t max_events = kDefaultCapacity);

  /// Point-in-time event ('i').
  void instant(std::string_view name, std::string_view category, SimTime ts,
               std::uint32_t tid, std::string_view arg0_name = {},
               double arg0 = 0.0, std::string_view arg1_name = {},
               double arg1 = 0.0);

  /// Duration span ('X'), e.g. one unit of CPU service.
  void complete(std::string_view name, std::string_view category,
                SimTime start, SimTime dur, std::uint32_t tid,
                std::string_view arg0_name = {}, double arg0 = 0.0);

  /// Counter track ('C'): renders as a per-node stacked area chart.
  void counter(std::string_view name, SimTime ts, std::uint32_t tid,
               std::string_view value_name, double value);

  /// Names the per-node timeline ("thread") in the viewer.
  void set_thread_name(std::uint32_t tid, std::string name);

  /// Drains `src` into this tracer (sharded runs: per-shard tracers merge
  /// into the primary at window barriers). Events append up to capacity —
  /// overflow counts as dropped — and `src` is left empty; thread names
  /// transfer without overwriting existing ones.
  void absorb(Tracer& src);

  [[nodiscard]] const std::vector<TraceEvent>& events() const {
    return events_;
  }
  [[nodiscard]] std::uint64_t dropped() const { return dropped_; }

  /// Builds {"traceEvents": [...], "displayTimeUnit": "ms", ...}.
  [[nodiscard]] JsonValue to_chrome_json() const;

  /// Writes the Chrome trace file. Returns false on I/O failure.
  bool write_chrome_trace(const std::string& path) const;

 private:
  void push(TraceEvent event);

  std::size_t max_events_;
  std::vector<TraceEvent> events_;
  std::uint64_t dropped_{0};
  std::unordered_map<std::uint32_t, std::string> thread_names_;
};

}  // namespace svk::obs
