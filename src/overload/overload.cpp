#include "overload/overload.hpp"

#include <algorithm>
#include <cassert>

namespace svk::overload {

std::string_view to_string(ControlKind kind) {
  switch (kind) {
    case ControlKind::kNone:
      return "none";
    case ControlKind::kLocalOccupancy:
      return "local";
    case ControlKind::kHopByHopRate:
      return "hop-by-hop";
  }
  return "?";
}

namespace {

// ---------------------------------------------------------------------------
// Local occupancy gate
// ---------------------------------------------------------------------------

/// Occupancy-based local admission: EWMA the occupancy samples; above the
/// target, shed the fraction of arrivals that would bring the carried load
/// back to target (accept_fraction = target / smoothed), realized
/// deterministically by error diffusion.
class LocalOccupancyPolicy : public OverloadPolicy {
 public:
  explicit LocalOccupancyPolicy(OverloadConfig config)
      : OverloadPolicy(config) {}

  AdmitDecision admit(std::size_t path_index, SimTime now) override {
    (void)path_index;
    (void)now;
    return local_gate();
  }

  void on_occupancy_sample(double occupancy, SimTime now) override {
    (void)now;
    ++stats_.occupancy_samples;
    const double g = config_.smoothing_gain;
    stats_.smoothed_occupancy =
        (1.0 - g) * stats_.smoothed_occupancy + g * occupancy;
  }

  double advertised_rate() const override { return -1.0; }

  void on_rate_advertisement(std::size_t, double, SimTime) override {
    ++stats_.advertisements_received;  // counted but unused by this control
  }

  void on_downstream_503(std::size_t, SimTime) override {
    ++stats_.downstream_503;
  }

  std::string_view name() const override { return "local"; }

 protected:
  /// The shared shedding step: admit unless smoothed occupancy exceeds the
  /// target, in which case pass accept_fraction of arrivals through.
  [[nodiscard]] AdmitDecision local_gate() {
    const double occ = stats_.smoothed_occupancy;
    if (occ <= config_.target_occupancy) return AdmitDecision::kAdmit;
    const double accept = config_.target_occupancy / occ;
    shed_acc_ += 1.0 - accept;
    if (shed_acc_ >= 1.0) {
      shed_acc_ -= 1.0;
      ++stats_.local_rejects;
      return AdmitDecision::kRejectLocal;
    }
    return AdmitDecision::kAdmit;
  }

 private:
  double shed_acc_ = 0.0;  // error-diffusion accumulator (no RNG)
};

// ---------------------------------------------------------------------------
// Hop-by-hop rate feedback
// ---------------------------------------------------------------------------

/// RFC 7339-style control. Two roles in one object:
///
///  * Restrictor (this node as the overloaded server): measures its own
///    offered rate per control period; when smoothed occupancy crosses the
///    target it advertises rate = offered * target / occupancy, then
///    adjusts multiplicatively each period (clamped to
///    [min_decrease, increase_factor] per step). It leaves controlled mode
///    after `release_periods` consecutive periods comfortably below target.
///
///  * Throttler (this node as the upstream neighbor): one token bucket per
///    path, parameterized by the advert last read off that path's Via
///    `oc`. Buckets refill lazily on access from sim-time deltas; an advert
///    not refreshed within advert_validity expires and the path runs
///    unrestricted again.
class HopByHopPolicy : public LocalOccupancyPolicy {
 public:
  HopByHopPolicy(OverloadConfig config, std::size_t num_paths)
      : LocalOccupancyPolicy(config), buckets_(num_paths) {}

  AdmitDecision admit(std::size_t path_index, SimTime now) override {
    ++offered_in_period_;
    // The local gate guards this node; the bucket guards the next hop.
    const AdmitDecision local = local_gate();
    if (local != AdmitDecision::kAdmit) return local;
    if (path_index >= buckets_.size()) return AdmitDecision::kAdmit;
    Bucket& bucket = buckets_[path_index];
    if (!bucket.active(now, config_.advert_validity)) {
      return AdmitDecision::kAdmit;
    }
    bucket.refill(now);
    if (bucket.tokens >= 1.0) {
      bucket.tokens -= 1.0;
      return AdmitDecision::kAdmit;
    }
    ++stats_.throttled_rejects;
    return AdmitDecision::kRejectThrottled;
  }

  void on_occupancy_sample(double occupancy, SimTime now) override {
    LocalOccupancyPolicy::on_occupancy_sample(occupancy, now);
    const double occ = stats_.smoothed_occupancy;
    const double period_s = config_.control_period.to_seconds();
    const double offered_rps =
        period_s > 0.0 ? static_cast<double>(offered_in_period_) / period_s
                       : 0.0;
    offered_in_period_ = 0;

    if (!controlled_) {
      if (occ > config_.target_occupancy) {
        // Enter controlled mode: carry what the target allows of what was
        // actually offered this period.
        controlled_ = true;
        below_target_periods_ = 0;
        stats_.advertised_rate_rps =
            std::max(config_.min_rate_rps,
                     offered_rps * config_.target_occupancy / occ);
        ++stats_.rate_updates;
      }
      return;
    }

    // Controlled: multiplicative adjustment toward the setpoint, clamped so
    // one bad sample cannot slam the rate to zero or double it.
    const double ratio =
        occ > 0.0 ? config_.target_occupancy / occ : config_.increase_factor;
    const double step =
        std::clamp(ratio, config_.min_decrease, config_.increase_factor);
    stats_.advertised_rate_rps =
        std::max(config_.min_rate_rps, stats_.advertised_rate_rps * step);
    ++stats_.rate_updates;

    if (occ < 0.8 * config_.target_occupancy) {
      if (++below_target_periods_ >= config_.release_periods) {
        controlled_ = false;
        below_target_periods_ = 0;
        stats_.advertised_rate_rps = -1.0;
      }
    } else {
      below_target_periods_ = 0;
    }
  }

  double advertised_rate() const override {
    return controlled_ ? stats_.advertised_rate_rps : -1.0;
  }

  void on_rate_advertisement(std::size_t path_index, double rate_rps,
                             SimTime now) override {
    ++stats_.advertisements_received;
    if (path_index >= buckets_.size() || rate_rps < 0.0) return;
    Bucket& bucket = buckets_[path_index];
    if (bucket.active(now, config_.advert_validity) &&
        bucket.rate_rps == rate_rps) {
      bucket.last_advert = now;  // refresh only; keep the token level
      return;
    }
    const bool was_active = bucket.active(now, config_.advert_validity);
    if (was_active) bucket.refill(now);
    bucket.rate_rps = rate_rps;
    const double depth = std::max(1.0, rate_rps * config_.bucket_depth_s);
    if (!was_active) {
      bucket.tokens = depth;  // fresh restriction starts with a full burst
    } else {
      bucket.tokens = std::min(bucket.tokens, depth);
    }
    bucket.depth = depth;
    bucket.last_refill = now;
    bucket.last_advert = now;
  }

  void on_downstream_503(std::size_t path_index, SimTime now) override {
    ++stats_.downstream_503;
    // A bare 503 (no oc param — e.g. a legacy hop) is a one-shot overload
    // hint: tax the bucket if one is active, otherwise nothing to do — the
    // UAC-facing Retry-After already slows the source.
    if (path_index >= buckets_.size()) return;
    Bucket& bucket = buckets_[path_index];
    if (bucket.active(now, config_.advert_validity)) {
      bucket.refill(now);
      bucket.tokens = std::max(0.0, bucket.tokens - 1.0);
    }
  }

  std::string_view name() const override { return "hop-by-hop"; }

 private:
  struct Bucket {
    double rate_rps = -1.0;  // negative = no advert ever received
    double tokens = 0.0;
    double depth = 0.0;
    SimTime last_refill;
    SimTime last_advert;

    [[nodiscard]] bool active(SimTime now, SimTime validity) const {
      return rate_rps >= 0.0 && now - last_advert <= validity;
    }

    void refill(SimTime now) {
      if (now > last_refill) {
        tokens = std::min(depth,
                          tokens + rate_rps *
                                       (now - last_refill).to_seconds());
        last_refill = now;
      }
    }
  };

  std::vector<Bucket> buckets_;
  std::uint64_t offered_in_period_ = 0;
  bool controlled_ = false;
  int below_target_periods_ = 0;
};

}  // namespace

std::unique_ptr<OverloadPolicy> make_overload_policy(
    const OverloadConfig& config, std::size_t num_paths) {
  switch (config.kind) {
    case ControlKind::kNone:
      return nullptr;
    case ControlKind::kLocalOccupancy:
      return std::make_unique<LocalOccupancyPolicy>(config);
    case ControlKind::kHopByHopRate:
      return std::make_unique<HopByHopPolicy>(config, num_paths);
  }
  return nullptr;
}

}  // namespace svk::overload
