// Overload control (src/overload).
//
// SERvartuka's delegation decides *where* transaction state lives but sheds
// no load: once the whole chain saturates, retransmission storms pin goodput
// far below capacity (the classic SIP congestion collapse studied by Shen,
// Schulzrinne & Nahum and by Hong, Huang & Yan). This subsystem adds the
// missing piece: a pluggable OverloadPolicy the proxy consults on ingress
// for every session-initiating request.
//
// Two concrete controls are provided:
//
//  * kLocalOccupancy — occupancy-based local admission. A smoothed CPU
//    occupancy estimate is compared against a target; above target, a
//    deterministic fraction of new INVITEs is rejected with
//    `503 Service Unavailable` + `Retry-After`, replacing the raw
//    queue-delay bound (which rejects only after the damage — a full
//    backlog — is already done).
//
//  * kHopByHopRate — RFC 7339-style rate-based feedback. In addition to the
//    local gate, the node runs a token-bucket restrictor per upstream
//    neighbor: when occupancy crosses the target it computes a permitted
//    upstream rate and piggybacks it as an `oc` parameter on the Via of
//    every response it sends upstream. The upstream neighbor throttles
//    before the wire (rejecting locally with 503 on the overloaded hop's
//    behalf), so the overloaded server never spends CPU on work it would
//    shed anyway.
//
// Determinism invariants (the whole simulator is bit-reproducible):
//  * No wall clock, no RNG. All control state advances on sim time only:
//    occupancy samples arrive from the proxy's periodic control tick, token
//    buckets refill lazily from `now` deltas, and fractional shedding uses
//    error diffusion (acc += fraction; acc >= 1 -> act) instead of coin
//    flips.
//  * admit() mutates only policy-local state; identical call sequences give
//    identical decisions.
#pragma once

#include <cstdint>
#include <memory>
#include <string_view>
#include <vector>

#include "common/sim_time.hpp"

namespace svk::overload {

enum class ControlKind {
  kNone,            // legacy behavior: queue-delay bound + 500
  kLocalOccupancy,  // local 503 + Retry-After above target occupancy
  kHopByHopRate,    // local gate + oc Via feedback to upstream throttlers
};

[[nodiscard]] std::string_view to_string(ControlKind kind);

struct OverloadConfig {
  ControlKind kind = ControlKind::kNone;
  /// Occupancy setpoint the controller regulates toward. Occupancy is
  /// utilization plus normalized backlog growth, so it exceeds 1.0 when the
  /// queue is building — that surplus is the control error.
  double target_occupancy = 0.9;
  /// EWMA gain for the occupancy estimate (per control period).
  double smoothing_gain = 0.3;
  /// Control period: how often the proxy feeds an occupancy sample.
  SimTime control_period = SimTime::millis(200);
  /// Retry-After value stamped on locally generated 503s, in seconds.
  double retry_after_s = 1.0;
  /// Per-period multiplicative rate adjustment clamps.
  double min_decrease = 0.5;
  double increase_factor = 1.1;
  /// The advertised rate never drops below this (cps); a trickle must keep
  /// flowing so responses keep refreshing the advertisement upstream.
  double min_rate_rps = 1.0;
  /// Token bucket depth, as seconds of burst at the advertised rate.
  double bucket_depth_s = 0.2;
  /// An advertisement not refreshed within this window expires and the
  /// throttler stops restricting (RFC 7339 oc-validity analog; guarantees
  /// recovery if the overloaded hop goes quiet).
  SimTime advert_validity = SimTime::millis(1000);
  /// Consecutive below-target control periods required before the
  /// restrictor leaves controlled mode.
  int release_periods = 5;
};

struct OverloadStats {
  std::uint64_t local_rejects = 0;      // shed by the local occupancy gate
  std::uint64_t throttled_rejects = 0;  // shed on a neighbor's behalf
  std::uint64_t occupancy_samples = 0;
  std::uint64_t rate_updates = 0;       // restrictor recomputations
  std::uint64_t advertisements_received = 0;
  std::uint64_t downstream_503 = 0;     // 503s seen from downstream
  double smoothed_occupancy = 0.0;
  /// Current advertised upstream rate (cps); negative = unrestricted.
  double advertised_rate_rps = -1.0;
};

enum class AdmitDecision {
  kAdmit,
  kRejectLocal,      // this node is overloaded (local occupancy gate)
  kRejectThrottled,  // a downstream neighbor's advertised rate is exhausted
};

/// Ingress admission + feedback control, consulted by ProxyServer. One
/// instance per proxy; paths index the proxy's RouteTable paths.
class OverloadPolicy {
 public:
  explicit OverloadPolicy(OverloadConfig config) : config_(config) {}
  virtual ~OverloadPolicy() = default;

  OverloadPolicy(const OverloadPolicy&) = delete;
  OverloadPolicy& operator=(const OverloadPolicy&) = delete;

  /// Admission decision for a new session-initiating request bound for
  /// `path_index`. Mutates throttle/shed state (a decision is a commitment).
  [[nodiscard]] virtual AdmitDecision admit(std::size_t path_index,
                                            SimTime now) = 0;

  /// Periodic occupancy sample from the proxy's control tick. `occupancy`
  /// is utilization + backlog growth (may exceed 1.0 under overload).
  virtual void on_occupancy_sample(double occupancy, SimTime now) = 0;

  /// Rate this node currently advertises to its upstream neighbors (cps);
  /// negative = no restriction. Stamped as `oc` on outgoing responses.
  [[nodiscard]] virtual double advertised_rate() const = 0;

  /// An `oc` advertisement arrived from the next hop of `path_index`.
  virtual void on_rate_advertisement(std::size_t path_index, double rate_rps,
                                     SimTime now) = 0;

  /// A 503 (without oc feedback) arrived from the next hop of `path_index`.
  virtual void on_downstream_503(std::size_t path_index, SimTime now) = 0;

  [[nodiscard]] virtual std::string_view name() const = 0;

  [[nodiscard]] const OverloadStats& stats() const { return stats_; }
  [[nodiscard]] const OverloadConfig& config() const { return config_; }

 protected:
  OverloadConfig config_;
  OverloadStats stats_;
};

/// Builds the policy for `config.kind`; returns nullptr for kNone (the
/// proxy then keeps its legacy queue-bound + 500 behavior, bit-identical
/// to builds before this subsystem existed).
[[nodiscard]] std::unique_ptr<OverloadPolicy> make_overload_policy(
    const OverloadConfig& config, std::size_t num_paths);

}  // namespace svk::overload
