#include "profile/cost_model.hpp"

#include <cassert>

namespace svk::profile {
namespace {

using enum CostBlock;

/// Builds an application-level cost vector (no transport).
CostVector app(double parsing, double memory, double lumping, double routing,
               double hashing, double lookup, double state, double auth,
               double other) {
  CostVector v;
  v[kParsing] = parsing;
  v[kMemory] = memory;
  v[kLumping] = lumping;
  v[kRouting] = routing;
  v[kHashing] = hashing;
  v[kLookup] = lookup;
  v[kState] = state;
  v[kAuth] = auth;
  v[kOther] = other;
  return v;
}

CostVector with_transport(CostVector v, int message_events) {
  v[kTransport] = CpuCostModel::kTransportPerMessage * message_events;
  return v;
}

/// Application cost of forwarding one message, by mode and kind. The
/// per-call sums over {INVITE, 180, 200-INV, ACK, BYE, 200-BYE} (+ the
/// generated 100 in stateful modes) reproduce the Figure 3 bar heights:
/// 362 / 412 / 707 / 803 / 983 events.
CostVector forward_app(HandlingMode mode, MsgKind kind) {
  switch (mode) {
    case HandlingMode::kStatelessNoLookup:
      switch (kind) {
        case MsgKind::kInvite:    return app(38, 10, 8, 20, 0, 0, 0, 0, 16);
        case MsgKind::kInvite200: return app(22, 8, 5, 8, 0, 0, 0, 0, 12);
        case MsgKind::kAck:       return app(18, 6, 4, 8, 0, 0, 0, 0, 10);
        case MsgKind::kBye:       return app(28, 10, 4, 8, 0, 0, 0, 0, 10);
        case MsgKind::kBye200:    return app(22, 8, 4, 8, 0, 0, 0, 0, 12);
        case MsgKind::kProvisional:
        case MsgKind::kOther:     return app(22, 8, 5, 8, 0, 0, 0, 0, 12);
      }
      break;
    case HandlingMode::kStateless:
      switch (kind) {
        case MsgKind::kInvite:    return app(40, 12, 8, 20, 8, 38, 0, 0, 16);
        case MsgKind::kInvite200: return app(22, 8, 5, 8, 0, 0, 0, 0, 12);
        case MsgKind::kAck:       return app(18, 6, 4, 8, 0, 0, 0, 0, 10);
        case MsgKind::kBye:       return app(28, 10, 4, 8, 0, 0, 0, 0, 10);
        case MsgKind::kBye200:    return app(22, 8, 4, 8, 0, 0, 0, 0, 12);
        case MsgKind::kProvisional:
        case MsgKind::kOther:     return app(22, 8, 5, 8, 0, 0, 0, 0, 12);
      }
      break;
    case HandlingMode::kTransactionStateful:
      switch (kind) {
        case MsgKind::kInvite:    return app(60, 35, 9, 20, 20, 38, 50, 0, 20);
        case MsgKind::kInvite200: return app(28, 14, 5, 8, 5, 0, 17, 0, 12);
        case MsgKind::kAck:       return app(22, 8, 4, 8, 2, 0, 5, 0, 10);
        case MsgKind::kBye:       return app(35, 22, 4, 8, 6, 0, 45, 0, 10);
        case MsgKind::kBye200:    return app(22, 13, 4, 8, 2, 0, 20, 0, 10);
        case MsgKind::kProvisional:
        case MsgKind::kOther:     return app(28, 12, 5, 8, 5, 0, 8, 0, 12);
      }
      break;
    case HandlingMode::kDialogStateful:
      switch (kind) {
        case MsgKind::kInvite:    return app(68, 40, 9, 20, 20, 38, 75, 0, 22);
        case MsgKind::kInvite200: return app(31, 17, 5, 8, 5, 0, 27, 0, 12);
        case MsgKind::kAck:       return app(24, 10, 4, 8, 2, 0, 9, 0, 10);
        case MsgKind::kBye:       return app(39, 26, 4, 8, 6, 0, 57, 0, 10);
        case MsgKind::kBye200:    return app(22, 15, 4, 8, 2, 0, 28, 0, 12);
        case MsgKind::kProvisional:
        case MsgKind::kOther:     return app(28, 12, 5, 8, 5, 0, 8, 0, 12);
      }
      break;
    case HandlingMode::kDialogStatefulAuth:
      switch (kind) {
        case MsgKind::kInvite:    return app(74, 40, 9, 20, 20, 38, 75, 110, 26);
        case MsgKind::kInvite200: return app(31, 17, 5, 8, 5, 0, 27, 0, 12);
        case MsgKind::kAck:       return app(24, 10, 4, 8, 2, 0, 9, 0, 10);
        case MsgKind::kBye:       return app(42, 26, 4, 8, 6, 0, 57, 55, 12);
        case MsgKind::kBye200:    return app(22, 15, 4, 8, 2, 0, 28, 0, 12);
        case MsgKind::kProvisional:
        case MsgKind::kOther:     return app(28, 12, 5, 8, 5, 0, 8, 0, 12);
      }
      break;
  }
  assert(false && "unreachable");
  return {};
}

bool is_stateful(HandlingMode mode) {
  return mode == HandlingMode::kTransactionStateful ||
         mode == HandlingMode::kDialogStateful ||
         mode == HandlingMode::kDialogStatefulAuth;
}

constexpr std::array<MsgKind, 6> kCallMessages = {
    MsgKind::kInvite, MsgKind::kProvisional, MsgKind::kInvite200,
    MsgKind::kAck,    MsgKind::kBye,         MsgKind::kBye200,
};

}  // namespace

std::string_view to_string(CostBlock block) {
  switch (block) {
    case kTransport: return "Transport";
    case kParsing: return "Parsing";
    case kMemory: return "Memory";
    case kLumping: return "Lumping";
    case kRouting: return "Routing";
    case kHashing: return "Hashing";
    case kLookup: return "Lookup";
    case kState: return "State";
    case kAuth: return "Authentication";
    case kOther: return "Others";
    case CostBlock::kCount: break;
  }
  return "?";
}

std::string_view to_string(HandlingMode mode) {
  switch (mode) {
    case HandlingMode::kStatelessNoLookup: return "No-Lookup";
    case HandlingMode::kStateless: return "Stateless";
    case HandlingMode::kTransactionStateful: return "Tran-SF";
    case HandlingMode::kDialogStateful: return "Dialog-SF";
    case HandlingMode::kDialogStatefulAuth: return "Authentication";
  }
  return "?";
}

double CostVector::total() const {
  double sum = 0.0;
  for (const double e : events) sum += e;
  return sum;
}

double CostVector::application_total() const {
  return total() - events[static_cast<std::size_t>(kTransport)];
}

CostVector& CostVector::operator+=(const CostVector& other) {
  for (std::size_t i = 0; i < kNumCostBlocks; ++i) {
    events[i] += other.events[i];
  }
  return *this;
}

MsgKind classify(const sip::Message& msg) {
  if (msg.is_request()) {
    switch (msg.method()) {
      case sip::Method::kInvite: return MsgKind::kInvite;
      case sip::Method::kAck: return MsgKind::kAck;
      case sip::Method::kBye: return MsgKind::kBye;
      default: return MsgKind::kOther;
    }
  }
  if (sip::is_provisional(msg.status_code())) return MsgKind::kProvisional;
  switch (msg.cseq().method) {
    case sip::Method::kInvite: return MsgKind::kInvite200;
    case sip::Method::kBye: return MsgKind::kBye200;
    default: return MsgKind::kOther;
  }
}

CostVector CpuCostModel::forward(HandlingMode mode, MsgKind kind) {
  // One receive; the send is charged at transmission time.
  return with_transport(forward_app(mode, kind), 1);
}

CostVector CpuCostModel::generate_100(HandlingMode mode) {
  assert(is_stateful(mode));
  (void)mode;
  return app(0, 6, 3, 0, 0, 0, 5, 0, 6);
}

CostVector CpuCostModel::generate_error() {
  return app(20, 8, 4, 0, 0, 0, 0, 0, 8);
}

CostVector CpuCostModel::absorb_retransmit() {
  // Receive + hash-match; the replayed response send is charged at
  // transmission time.
  return with_transport(app(20, 0, 0, 0, 10, 0, 5, 0, 5), 1);
}

CostVector CpuCostModel::receive_only() {
  return with_transport(app(10, 0, 0, 0, 0, 0, 0, 0, 5), 1);
}

CostVector CpuCostModel::transport_send() {
  return with_transport(CostVector{}, 1);
}

double CpuCostModel::per_call_application_events(HandlingMode mode) {
  double sum = 0.0;
  for (const MsgKind kind : kCallMessages) {
    sum += forward_app(mode, kind).total();
  }
  if (is_stateful(mode)) {
    sum += generate_100(mode).application_total();
  }
  return sum;
}

double CpuCostModel::per_call_total_events(HandlingMode mode) {
  const int message_events = is_stateful(mode) ? 13 : 12;
  return per_call_application_events(mode) +
         kTransportPerMessage * message_events;
}

double CpuCostModel::saturation_cps(HandlingMode mode, double capacity) {
  return capacity / per_call_total_events(mode);
}

}  // namespace svk::profile
