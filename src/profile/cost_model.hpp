// Calibrated CPU cost model.
//
// Costs are expressed in abstract "CPU events" — the unit oprofile reported
// in the paper's Figure 3. Two calibration anchors:
//
//  1. Figure 3 (application-level profile at 1 cps): per-call event totals
//     by proxy mode — No-Lookup 362, Stateless 412, Transaction-Stateful
//     707, Dialog-Stateful 803, Authentication 983 — with a block breakdown
//     (parsing, memory, state, ...) that grows monotonically with service
//     richness.
//  2. Figure 4 (saturation): a stateless server saturates at ~12300 cps and
//     a transaction-stateful one at ~10360 cps.
//
// The per-call ratio in (1) is 707/412 = 1.72x while the saturation ratio in
// (2) is only 12300/10360 = 1.19x. The two are reconciled by a fixed
// per-message *transport* overhead (kernel/UDP/interrupt work invisible to
// the application profile): with k = 175 events per message received or
// sent, capacity C = 12300 * (412 + 12*175) events/s makes the stateless
// node saturate at exactly 12300 cps and the transaction-stateful one at
// C / (707 + 13*175) = 10361 cps. (A stateless proxy touches 12
// message-events per call — 6 received + 6 forwarded; a stateful one 13,
// because it also generates a 100 Trying.) See DESIGN.md section 5.
#pragma once

#include <array>
#include <cstddef>
#include <string_view>

#include "sip/message.hpp"

namespace svk::profile {

/// Functional blocks of Figure 3 plus the transport overhead block.
enum class CostBlock : std::size_t {
  kTransport,  // kernel/UDP work; NOT part of the Figure 3 application bars
  kParsing,
  kMemory,
  kLumping,
  kRouting,
  kHashing,
  kLookup,
  kState,
  kAuth,
  kOther,
  kCount,
};

inline constexpr std::size_t kNumCostBlocks =
    static_cast<std::size_t>(CostBlock::kCount);

[[nodiscard]] std::string_view to_string(CostBlock block);

/// Events per block for one operation.
struct CostVector {
  std::array<double, kNumCostBlocks> events{};

  [[nodiscard]] double& operator[](CostBlock b) {
    return events[static_cast<std::size_t>(b)];
  }
  [[nodiscard]] double operator[](CostBlock b) const {
    return events[static_cast<std::size_t>(b)];
  }

  /// Total events across all blocks.
  [[nodiscard]] double total() const;
  /// Total excluding kTransport (the Figure 3 application view).
  [[nodiscard]] double application_total() const;

  CostVector& operator+=(const CostVector& other);
  friend CostVector operator+(CostVector a, const CostVector& b) {
    a += b;
    return a;
  }
};

/// The five server modes of the paper's Section 3.1.
enum class HandlingMode {
  kStatelessNoLookup,
  kStateless,
  kTransactionStateful,
  kDialogStateful,
  kDialogStatefulAuth,
};

[[nodiscard]] std::string_view to_string(HandlingMode mode);

/// Message classes that the cost tables distinguish.
enum class MsgKind {
  kInvite,
  kProvisional,   // 180 and other 1xx traversing the proxy
  kInvite200,
  kAck,
  kBye,
  kBye200,
  kOther,         // OPTIONS etc.; costed like a provisional
};

/// Classifies a message for cost lookup.
[[nodiscard]] MsgKind classify(const sip::Message& msg);

/// The calibrated cost tables.
class CpuCostModel {
 public:
  /// Events charged per message *event* (one receive or one send) for
  /// kernel/transport work.
  static constexpr double kTransportPerMessage = 175.0;

  /// Calibrated node capacity in events/second: a stateless-with-lookup
  /// node saturates at 12300 cps, transaction-stateful at ~10360 cps.
  static constexpr double kCalibratedCapacity =
      12300.0 * (412.0 + 12.0 * kTransportPerMessage);

  /// Cost of receiving + processing one message in the given mode,
  /// including one transport receive event. Transmissions are charged
  /// separately via transport_send() at each actual send, so that
  /// timer-driven retransmissions are accounted too.
  [[nodiscard]] static CostVector forward(HandlingMode mode, MsgKind kind);

  /// Application cost of locally generating a response (e.g. the 100 Trying
  /// a stateful proxy emits, or a 500 at overload). The send itself is
  /// charged via transport_send().
  [[nodiscard]] static CostVector generate_100(HandlingMode mode);
  [[nodiscard]] static CostVector generate_error();

  /// Cost of absorbing a retransmitted request at a stateful server
  /// (receive, match via hash); the replayed response send is charged via
  /// transport_send().
  [[nodiscard]] static CostVector absorb_retransmit();

  /// Cost of receiving a message that is simply dropped (e.g. a stray
  /// response at an overloaded node): one transport receive + minimal parse.
  [[nodiscard]] static CostVector receive_only();

  /// Transport cost of putting one message on the wire.
  [[nodiscard]] static CostVector transport_send();

  /// Per-call application-level event total in the given mode (the height
  /// of the Figure 3 bar): the sum over the 6 forwarded messages of a call,
  /// plus the generated 100 Trying in stateful modes.
  [[nodiscard]] static double per_call_application_events(HandlingMode mode);

  /// Per-call total including transport (what saturation is governed by).
  [[nodiscard]] static double per_call_total_events(HandlingMode mode);

  /// Saturation call rate of a node with `capacity` events/s running every
  /// call in `mode`.
  [[nodiscard]] static double saturation_cps(
      HandlingMode mode, double capacity = kCalibratedCapacity);
};

}  // namespace svk::profile
