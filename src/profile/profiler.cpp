#include "profile/profiler.hpp"

#include <cstdio>

namespace svk::profile {

std::string CpuProfiler::format_breakdown(double calls) const {
  std::string out;
  char line[96];
  // Figure 3 stacking order, bottom-up.
  static constexpr CostBlock kOrder[] = {
      CostBlock::kParsing, CostBlock::kMemory,  CostBlock::kLumping,
      CostBlock::kRouting, CostBlock::kHashing, CostBlock::kLookup,
      CostBlock::kState,   CostBlock::kAuth,    CostBlock::kOther,
  };
  for (const CostBlock block : kOrder) {
    double value = totals_[block];
    if (calls > 0.0) value /= calls;
    std::snprintf(line, sizeof(line), "  %-15s %10.1f\n",
                  std::string(to_string(block)).c_str(), value);
    out += line;
  }
  double total = application_events();
  if (calls > 0.0) total /= calls;
  std::snprintf(line, sizeof(line), "  %-15s %10.1f\n", "TOTAL", total);
  out += line;
  return out;
}

}  // namespace svk::profile
