// Per-functional-block CPU event accounting — the role OProfile played in
// the paper's Section 3.1 measurement.
#pragma once

#include <array>
#include <string>

#include "profile/cost_model.hpp"

namespace svk::profile {

/// Accumulates CPU events by block for one server.
class CpuProfiler {
 public:
  void charge(const CostVector& cost) { totals_ += cost; }

  [[nodiscard]] const CostVector& totals() const { return totals_; }
  [[nodiscard]] double events(CostBlock block) const {
    return totals_[block];
  }
  /// Application-level events (excluding transport), i.e. what an oprofile
  /// run over the server binary reports.
  [[nodiscard]] double application_events() const {
    return totals_.application_total();
  }

  void reset() { totals_ = CostVector{}; }

  /// Snapshot-diff support for windowed profiles.
  [[nodiscard]] CostVector snapshot() const { return totals_; }

  /// Renders a Figure-3-style breakdown (one line per block, app blocks
  /// only), normalized per call when `calls` > 0.
  [[nodiscard]] std::string format_breakdown(double calls = 0.0) const;

 private:
  CostVector totals_;
};

}  // namespace svk::profile
