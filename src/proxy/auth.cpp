#include "proxy/auth.hpp"

#include "common/md5.hpp"

namespace svk::proxy {
namespace {

std::string_view trim(std::string_view s) {
  while (!s.empty() && s.front() == ' ') s.remove_prefix(1);
  while (!s.empty() && s.back() == ' ') s.remove_suffix(1);
  return s;
}

/// Extracts a quoted parameter value, e.g. username="hal".
std::optional<std::string> quoted_param(std::string_view params,
                                        std::string_view name) {
  std::string needle = std::string(name) + "=\"";
  const auto pos = params.find(needle);
  if (pos == std::string_view::npos) return std::nullopt;
  const auto start = pos + needle.size();
  const auto end = params.find('"', start);
  if (end == std::string_view::npos) return std::nullopt;
  return std::string(params.substr(start, end - start));
}

}  // namespace

std::optional<DigestCredentials> parse_digest(std::string_view value) {
  value = trim(value);
  if (!value.starts_with("Digest ")) return std::nullopt;
  const std::string_view params = value.substr(7);

  DigestCredentials creds;
  auto get = [&](std::string_view name, std::string& out) {
    auto v = quoted_param(params, name);
    if (!v) return false;
    out = std::move(*v);
    return true;
  };
  if (!get("username", creds.username) || !get("realm", creds.realm) ||
      !get("nonce", creds.nonce) || !get("uri", creds.uri) ||
      !get("response", creds.response)) {
    return std::nullopt;
  }
  return creds;
}

void DigestAuthenticator::add_user(const std::string& username,
                                   const std::string& password) {
  passwords_[username] = password;
}

std::string DigestAuthenticator::compute_response(
    const std::string& username, const std::string& realm,
    const std::string& password, const std::string& nonce,
    const std::string& method, const std::string& uri) {
  const std::string ha1 = Md5::hex(username + ":" + realm + ":" + password);
  const std::string ha2 = Md5::hex(method + ":" + uri);
  return Md5::hex(ha1 + ":" + nonce + ":" + ha2);
}

std::string DigestAuthenticator::make_authorization(
    const std::string& username, const std::string& realm,
    const std::string& password, const std::string& nonce,
    const std::string& method, const std::string& uri) {
  const std::string response =
      compute_response(username, realm, password, nonce, method, uri);
  return "Digest username=\"" + username + "\", realm=\"" + realm +
         "\", nonce=\"" + nonce + "\", uri=\"" + uri + "\", response=\"" +
         response + "\"";
}

bool DigestAuthenticator::verify(const sip::Message& req) const {
  const auto header = req.header(kProxyAuthorizationHeader);
  if (!header) return false;
  const auto creds = parse_digest(*header);
  if (!creds) return false;
  if (creds->realm != realm_ || creds->nonce != nonce_) return false;
  const auto it = passwords_.find(creds->username);
  if (it == passwords_.end()) return false;
  const std::string expected =
      compute_response(creds->username, realm_, it->second, nonce_,
                       std::string(sip::to_string(req.method())), creds->uri);
  return expected == creds->response;
}

std::string DigestAuthenticator::challenge() const {
  return "Digest realm=\"" + realm_ + "\", nonce=\"" + nonce_ + "\"";
}

}  // namespace svk::proxy
