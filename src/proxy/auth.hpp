// SIP Digest authentication (RFC 2617 as profiled by RFC 3261 22).
//
// The paper's "Dialog Stateful with Authentication" mode has the proxy
// check client credentials on each request. Our UACs send credentials
// preemptively (as SIPp does once it has learned the challenge), so the
// common path is a single verification, not a 407 round trip — matching
// the steady-state behaviour the paper profiled. The challenge path is
// implemented too and used when a request arrives without credentials.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>

#include "sip/message.hpp"

namespace svk::proxy {

/// Parsed Digest credentials from a Proxy-Authorization header.
struct DigestCredentials {
  std::string username;
  std::string realm;
  std::string nonce;
  std::string uri;
  std::string response;
};

/// Parses 'Digest username="u", realm="r", nonce="n", uri="s", response="h"'.
[[nodiscard]] std::optional<DigestCredentials> parse_digest(
    std::string_view header_value);

class DigestAuthenticator {
 public:
  DigestAuthenticator(std::string realm, std::string nonce)
      : realm_(std::move(realm)), nonce_(std::move(nonce)) {}

  void add_user(const std::string& username, const std::string& password);

  /// Checks the Proxy-Authorization header of `req` against the user table.
  /// False when the header is absent, malformed, for an unknown user, for a
  /// stale nonce, or carries a wrong response hash.
  [[nodiscard]] bool verify(const sip::Message& req) const;

  /// The Proxy-Authenticate challenge value for a 407.
  [[nodiscard]] std::string challenge() const;

  /// Computes the Digest response hash (used by clients and by verify):
  /// MD5(MD5(user:realm:password) ":" nonce ":" MD5(method:uri)).
  [[nodiscard]] static std::string compute_response(
      const std::string& username, const std::string& realm,
      const std::string& password, const std::string& nonce,
      const std::string& method, const std::string& uri);

  /// Builds a full Proxy-Authorization header value for a client.
  [[nodiscard]] static std::string make_authorization(
      const std::string& username, const std::string& realm,
      const std::string& password, const std::string& nonce,
      const std::string& method, const std::string& uri);

  [[nodiscard]] const std::string& realm() const { return realm_; }
  [[nodiscard]] const std::string& nonce() const { return nonce_; }

 private:
  std::string realm_;
  std::string nonce_;
  std::unordered_map<std::string, std::string> passwords_;
};

/// Header name used for credentials (proxy authentication).
inline constexpr std::string_view kProxyAuthorizationHeader =
    "Proxy-Authorization";
inline constexpr std::string_view kProxyAuthenticateHeader =
    "Proxy-Authenticate";

}  // namespace svk::proxy
