// Host-name to network-address resolution — the DNS of the simulated
// testbed. Every element (proxy, UAC, UAS) registers its hostname; Via
// sent-by values and contact hosts resolve through here.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>

#include "common/types.hpp"

namespace svk::proxy {

class HostRegistry {
 public:
  /// Binds a hostname to its network address (replacing any previous one).
  void add(std::string host, Address address) {
    hosts_[std::move(host)] = address;
  }

  /// Resolves a hostname; nullopt when unknown.
  [[nodiscard]] std::optional<Address> resolve(std::string_view host) const {
    const auto it = hosts_.find(std::string(host));
    if (it == hosts_.end()) return std::nullopt;
    return it->second;
  }

 private:
  std::unordered_map<std::string, Address> hosts_;
};

}  // namespace svk::proxy
