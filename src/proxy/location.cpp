#include "proxy/location.hpp"

#include <utility>

#include "common/hash.hpp"

namespace svk::proxy {
namespace {

using common::fnv1a;

/// Hash of "user@host" (or just "host" when user is empty) computed from
/// the parts — FNV-1a is byte-sequential, so this equals fnv1a over the
/// materialized AOR string.
std::uint64_t aor_hash_parts(std::string_view user, std::string_view host) {
  if (user.empty()) return fnv1a(host);
  std::uint64_t h = fnv1a(user);
  h = common::fnv1a_byte('@', h);
  return fnv1a(host, h);
}

/// `aor` == "user@host" (or "host" when user is empty), compared in place.
bool aor_matches(std::string_view aor, std::string_view user,
                 std::string_view host) {
  if (user.empty()) return aor == host;
  return aor.size() == user.size() + 1 + host.size() &&
         aor.substr(0, user.size()) == user && aor[user.size()] == '@' &&
         aor.substr(user.size() + 1) == host;
}

}  // namespace

void LocationService::register_binding(std::string_view aor,
                                       sip::Uri contact, SimTime expires_at) {
  std::unique_lock lock(mutex_);
  const std::uint64_t hash = fnv1a(aor);
  common::SlabHandle* slot =
      table_.find(hash, [&](const common::SlabHandle& h) {
        return slab_.get(h)->aor == aor;
      });
  if (slot != nullptr) {
    slab_.get(*slot)->binding = Binding{std::move(contact), expires_at};
    return;
  }
  const common::SlabHandle h = slab_.emplace();
  Entry& entry = *slab_.get(h);
  entry.aor = aor;
  entry.binding = Binding{std::move(contact), expires_at};
  table_.insert(hash, h);
}

void LocationService::unregister(std::string_view aor) {
  std::unique_lock lock(mutex_);
  const std::uint64_t hash = fnv1a(aor);
  common::SlabHandle* slot =
      table_.find(hash, [&](const common::SlabHandle& h) {
        return slab_.get(h)->aor == aor;
      });
  if (slot == nullptr) return;
  const common::SlabHandle h = *slot;
  table_.erase(hash, [&](const common::SlabHandle& v) { return v == h; });
  slab_.erase(h);
}

std::optional<Binding> LocationService::lookup(std::string_view aor,
                                               SimTime now) const {
  queries_.fetch_add(1, std::memory_order_relaxed);
  std::shared_lock lock(mutex_);
  const common::SlabHandle* slot =
      table_.find(fnv1a(aor), [&](const common::SlabHandle& h) {
        return slab_.get(h)->aor == aor;
      });
  if (slot == nullptr) return std::nullopt;
  const Binding& binding = slab_.get(*slot)->binding;
  if (binding.expires_at < now) return std::nullopt;
  return binding;
}

std::optional<Binding> LocationService::lookup_uri(const sip::Uri& uri,
                                                   SimTime now) const {
  return lookup_hashed(aor_hash_parts(uri.user(), uri.host()), uri.user(),
                       uri.host(), now);
}

std::optional<Binding> LocationService::lookup_hashed(std::uint64_t hash,
                                                      std::string_view user,
                                                      std::string_view host,
                                                      SimTime now) const {
  queries_.fetch_add(1, std::memory_order_relaxed);
  std::shared_lock lock(mutex_);
  const common::SlabHandle* slot =
      table_.find(hash, [&](const common::SlabHandle& h) {
        return aor_matches(slab_.get(h)->aor, user, host);
      });
  if (slot == nullptr) return std::nullopt;
  const Binding& binding = slab_.get(*slot)->binding;
  if (binding.expires_at < now) return std::nullopt;
  return binding;
}

}  // namespace svk::proxy
