#include "proxy/location.hpp"

#include <utility>

namespace svk::proxy {

void LocationService::register_binding(const std::string& aor,
                                       sip::Uri contact,
                                       SimTime expires_at) {
  std::unique_lock lock(mutex_);
  bindings_[aor] = Binding{std::move(contact), expires_at};
}

void LocationService::unregister(const std::string& aor) {
  std::unique_lock lock(mutex_);
  bindings_.erase(aor);
}

std::optional<Binding> LocationService::lookup(const std::string& aor,
                                               SimTime now) const {
  queries_.fetch_add(1, std::memory_order_relaxed);
  std::shared_lock lock(mutex_);
  const auto it = bindings_.find(aor);
  if (it == bindings_.end()) return std::nullopt;
  if (it->second.expires_at < now) return std::nullopt;
  return it->second;
}

}  // namespace svk::proxy
