// Location service (RFC 3261 10): the URI -> current contact binding
// database an exit proxy consults to reach the callee's device. The paper's
// "Lookup" cost block is the query against this service (OpenSER's usrloc
// table).
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <optional>
#include <shared_mutex>
#include <string>
#include <unordered_map>

#include "common/sim_time.hpp"
#include "sip/uri.hpp"

namespace svk::proxy {

/// One registered binding: where the AOR's device currently is.
struct Binding {
  sip::Uri contact;
  /// Simulated time after which the binding is gone (RFC 3261 10.2.4);
  /// SimTime::max() = never expires (out-of-band provisioning).
  SimTime expires_at = SimTime::max();
};

class LocationService {
 public:
  /// Registers (or replaces) the binding for `aor` ("user@domain").
  void register_binding(const std::string& aor, sip::Uri contact,
                        SimTime expires_at = SimTime::max());

  void unregister(const std::string& aor);

  /// Looks up the current contact for the given address-of-record.
  /// Bindings whose expiry has passed `now` are treated as absent.
  [[nodiscard]] std::optional<Binding> lookup(const std::string& aor,
                                              SimTime now = SimTime{}) const;

  [[nodiscard]] std::size_t size() const {
    std::shared_lock lock(mutex_);
    return bindings_.size();
  }
  [[nodiscard]] std::uint64_t query_count() const {
    return queries_.load(std::memory_order_relaxed);
  }

 private:
  /// One service is shared by every proxy of a bed, so under the sharded
  /// engine different shard threads may touch it in the same safe window.
  /// The lock makes the *container* safe; result determinism holds because
  /// all traffic for one AOR goes through its registrar proxy — a single
  /// host, hence a single shard (see DESIGN.md §11).
  mutable std::shared_mutex mutex_;
  std::unordered_map<std::string, Binding> bindings_;
  mutable std::atomic<std::uint64_t> queries_{0};
};

}  // namespace svk::proxy
