// Location service (RFC 3261 10): the URI -> current contact binding
// database an exit proxy consults to reach the callee's device. The paper's
// "Lookup" cost block is the query against this service (OpenSER's usrloc
// table).
//
// Storage follows the flat state-store layout (DESIGN.md §12): entries live
// in a Slab and the index is a FlatTable of (AOR hash, slab handle) — the
// AOR string is owned once, inside the entry. The hot-path query is
// lookup_uri, which hashes user '@' host straight off the request URI's
// parts and compares piecewise, so the per-call routing lookup neither
// builds the "user@host" string nor allocates.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <optional>
#include <shared_mutex>
#include <string>
#include <string_view>

#include "common/flat_table.hpp"
#include "common/sim_time.hpp"
#include "common/slab.hpp"
#include "sip/uri.hpp"

namespace svk::proxy {

/// One registered binding: where the AOR's device currently is.
struct Binding {
  sip::Uri contact;
  /// Simulated time after which the binding is gone (RFC 3261 10.2.4);
  /// SimTime::max() = never expires (out-of-band provisioning).
  SimTime expires_at = SimTime::max();
};

class LocationService {
 public:
  /// Registers (or replaces) the binding for `aor` ("user@domain").
  void register_binding(std::string_view aor, sip::Uri contact,
                        SimTime expires_at = SimTime::max());

  void unregister(std::string_view aor);

  /// Looks up the current contact for the given address-of-record.
  /// Bindings whose expiry has passed `now` are treated as absent.
  [[nodiscard]] std::optional<Binding> lookup(std::string_view aor,
                                              SimTime now = SimTime{}) const;

  /// lookup for `uri.aor()` without materializing the AOR string: hashes
  /// and compares the user/host parts in place.
  [[nodiscard]] std::optional<Binding> lookup_uri(const sip::Uri& uri,
                                                  SimTime now) const;

  [[nodiscard]] std::size_t size() const {
    std::shared_lock lock(mutex_);
    return table_.size();
  }
  [[nodiscard]] std::uint64_t query_count() const {
    return queries_.load(std::memory_order_relaxed);
  }

 private:
  struct Entry {
    std::string aor;
    Binding binding;
  };

  [[nodiscard]] std::optional<Binding> lookup_hashed(std::uint64_t hash,
                                                     std::string_view user,
                                                     std::string_view host,
                                                     SimTime now) const;

  /// One service is shared by every proxy of a bed, so under the sharded
  /// engine different shard threads may touch it in the same safe window.
  /// The lock makes the *container* safe; result determinism holds because
  /// all traffic for one AOR goes through its registrar proxy — a single
  /// host, hence a single shard (see DESIGN.md §11).
  mutable std::shared_mutex mutex_;
  common::Slab<Entry> slab_;
  common::FlatTable<common::SlabHandle> table_;
  mutable std::atomic<std::uint64_t> queries_{0};
};

}  // namespace svk::proxy
