// State-handling policy interface.
//
// The proxy core asks its policy, per transaction-creating request, whether
// to handle it statefully or statelessly. Static policies (today's OpenSER
// configuration) answer unconditionally; the SERvartuka controller
// (src/core) answers from its dynamic myshare computation.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <optional>
#include <string_view>
#include <vector>

#include "common/sim_time.hpp"
#include "obs/sinks.hpp"
#include "profile/cost_model.hpp"
#include "proxy/routing.hpp"

namespace svk::proxy {

enum class StateDecision { kStateless, kStateful };

/// Everything the policy may inspect about a request being routed.
struct RequestContext {
  std::size_t path_index = 0;      // downstream path (see RouteTable)
  bool delegable = false;          // path leads to another proxy
  bool already_stateful = false;   // an upstream node took state (X-Stateful)
  profile::MsgKind kind = profile::MsgKind::kInvite;
};

class StatePolicy {
 public:
  virtual ~StatePolicy() = default;

  /// Decides how to handle one new transaction-creating request. Called
  /// once per such request (retransmissions are absorbed before reaching
  /// the policy). Implementations update their own counters here.
  [[nodiscard]] virtual StateDecision decide(const RequestContext& ctx) = 0;

  /// Periodic window processing (Algorithm 2). Only called when
  /// tick_period() is non-zero.
  virtual void on_tick(SimTime now) { (void)now; }
  [[nodiscard]] virtual SimTime tick_period() const { return SimTime{}; }

  /// A downstream neighbor on `path_index` signalled overload (`on`) with
  /// the stateful load it froze at (`c_asf_rate`, requests/second), or
  /// recovery (`!on`).
  virtual void on_overload_signal(std::size_t path_index, bool on,
                                  double c_asf_rate) {
    (void)path_index;
    (void)on;
    (void)c_asf_rate;
  }

  /// Paths of the owning proxy, indexed by path_index; called once before
  /// traffic flows.
  virtual void register_paths(const std::vector<PathInfo>& paths) {
    (void)paths;
  }

  [[nodiscard]] virtual std::string_view name() const = 0;

  /// For policies whose answer never varies (the static baselines): lets
  /// the proxy cost messages that carry no per-request decision (ACKs,
  /// responses) at the configured static mode. Dynamic policies return
  /// nullopt and those messages are costed at the stateless tables.
  [[nodiscard]] virtual std::optional<StateDecision> static_decision() const {
    return std::nullopt;
  }

  /// Set by the owning proxy: emits an overload signal (`on`, frozen
  /// stateful rate) to all upstream proxies.
  std::function<void(bool on, double c_asf_rate)> send_overload;

  /// Set by the owning proxy: asks the downstream proxy on `path_index` to
  /// restate its current overload status (X-Overload-Probe). Policies call
  /// this when a frozen path has gone silent — a lost "off" signal is then
  /// repaired by the probe reply instead of wedging the path until its
  /// staleness timeout.
  std::function<void(std::size_t path_index)> send_probe;

  /// Filled by the owning proxy just before each on_tick: mean CPU
  /// utilization over the last window (-1 when unknown) and the current
  /// CPU backlog as a fraction of the admission bound. Policies may close
  /// the loop on these to correct model drift.
  double observed_utilization = -1.0;
  double observed_backlog_fraction = 0.0;

  /// Set by the owning proxy: the simulator's observability sinks (stable
  /// address, pointers inside may be null) and this node's trace id.
  /// Policies append audit windows / trace events through these; both are
  /// purely passive and never alter decisions.
  const obs::Sinks* obs = nullptr;
  std::uint32_t obs_tid = 0;
};

/// Static policy: handle every request statefully (OpenSER configured
/// stateful — cases (i)/(ii) of the paper's Section 4 discussion).
class AlwaysStateful final : public StatePolicy {
 public:
  [[nodiscard]] StateDecision decide(const RequestContext&) override {
    return StateDecision::kStateful;
  }
  [[nodiscard]] std::string_view name() const override {
    return "static-stateful";
  }
  [[nodiscard]] std::optional<StateDecision> static_decision() const override {
    return StateDecision::kStateful;
  }
};

/// Static policy: handle every request statelessly.
class AlwaysStateless final : public StatePolicy {
 public:
  [[nodiscard]] StateDecision decide(const RequestContext&) override {
    return StateDecision::kStateless;
  }
  [[nodiscard]] std::string_view name() const override {
    return "static-stateless";
  }
  [[nodiscard]] std::optional<StateDecision> static_decision() const override {
    return StateDecision::kStateless;
  }
};

}  // namespace svk::proxy
