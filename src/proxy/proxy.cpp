#include "proxy/proxy.hpp"

#include <cassert>
#include <charconv>
#include <utility>

#include "common/logging.hpp"
#include "obs/audit.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sip/parser.hpp"

namespace svk::proxy {
namespace {

using profile::CostVector;
using profile::CpuCostModel;
using profile::HandlingMode;
using profile::MsgKind;

bool is_transaction_creating(const sip::Message& msg) {
  return msg.is_request() && msg.method() != sip::Method::kAck;
}

}  // namespace

ProxyServer::ProxyServer(sim::Simulator& sim, SipNetwork& network,
                         const HostRegistry& registry,
                         std::shared_ptr<LocationService> location,
                         RouteTable routes,
                         std::unique_ptr<StatePolicy> policy,
                         ProxyConfig config)
    : sim_(sim),
      network_(network),
      registry_(registry),
      location_(std::move(location)),
      routes_(std::move(routes)),
      policy_(std::move(policy)),
      config_(std::move(config)),
      cpu_(sim, sim::CpuQueueConfig{config_.cpu_capacity,
                                    config_.max_queue_delay}),
      txns_(sim, config_.timers),
      auth_(config_.auth_realm.empty() ? config_.host : config_.auth_realm,
            config_.auth_nonce.empty() ? "nonce-" + config_.host
                                       : config_.auth_nonce),
      branches_(config_.address.value()),
      dialogs_live_gauge_("dialogs_live." + config_.host) {
  assert(policy_ != nullptr);
  policy_->register_paths(routes_.paths());
  policy_->send_overload = [this](bool on, double rate) {
    send_overload_signal(on, rate);
  };
  policy_->send_probe = [this](std::size_t path_index) {
    send_overload_probe(path_index);
  };
  // Observability: the simulator's Sinks struct has a stable address, so
  // wiring it here also covers enablement after construction.
  policy_->obs = &sim_.obs();
  policy_->obs_tid = config_.address.value();
  cpu_.set_trace_tid(config_.address.value());
  txns_.set_trace_tid(config_.address.value());
  if (policy_->tick_period() > SimTime{}) {
    tick_probe_ = std::make_unique<sim::UtilizationProbe>(cpu_, sim_);
    policy_timer_ = std::make_unique<sim::PeriodicTimer>(
        sim_, policy_->tick_period(), [this] {
          policy_->observed_utilization = tick_probe_->utilization();
          tick_probe_->restart();
          const double bound = config_.max_queue_delay.to_seconds();
          policy_->observed_backlog_fraction =
              bound > 0.0 ? cpu_.backlog().to_seconds() / bound : 0.0;
          const obs::Sinks& obs = sim_.obs();
          if (obs.tracer != nullptr) {
            obs.tracer->counter("utilization", sim_.now(),
                                config_.address.value(), "util",
                                policy_->observed_utilization);
            obs.tracer->counter("backlog", sim_.now(),
                                config_.address.value(), "fraction",
                                policy_->observed_backlog_fraction);
          }
          policy_->on_tick(sim_.now());
        });
    policy_timer_->start();
  }
  const bool dialog_mode =
      config_.stateful_mode == HandlingMode::kDialogStateful ||
      config_.stateful_mode == HandlingMode::kDialogStatefulAuth;
  if (dialog_mode && config_.dialog_ttl > SimTime{}) {
    // Reap early dialogs nothing will ever confirm (lost finals, crashed
    // endpoints). Sweeping at ttl/2 bounds residency at 1.5*ttl.
    dialog_sweep_ = std::make_unique<sim::PeriodicTimer>(
        sim_, SimTime::nanos(config_.dialog_ttl.ns() / 2), [this] {
          stats_.dialogs_expired +=
              dialogs_.expire_early(sim_.now(), config_.dialog_ttl);
          dialogs_live_gauge_.set(
              sim_.obs().metrics,
              static_cast<double>(dialogs_.active_count()));
        });
    dialog_sweep_->start();
  }
  overload_ = overload::make_overload_policy(config_.overload,
                                             routes_.paths().size());
  if (overload_ != nullptr) {
    overload_probe_ = std::make_unique<sim::UtilizationProbe>(cpu_, sim_);
    overload_timer_ = std::make_unique<sim::PeriodicTimer>(
        sim_, config_.overload.control_period, [this] { overload_tick(); });
    overload_timer_->start();
  }
  network_.attach(config_.address,
                  [this](Address from, const sip::MessagePtr& msg) {
                    on_datagram(from, msg);
                  });
}

ProxyServer::~ProxyServer() { network_.detach(config_.address); }

void ProxyServer::set_upstream_proxies(std::vector<Address> upstream) {
  upstream_proxies_ = std::move(upstream);
}

profile::HandlingMode ProxyServer::mode_for(StateDecision decision) const {
  return decision == StateDecision::kStateful ? config_.stateful_mode
                                              : config_.stateless_mode;
}

bool ProxyServer::is_control(const sip::Message& msg) const {
  return msg.is_request() && msg.method() == sip::Method::kOptions &&
         (msg.header(kOverloadHeader).has_value() ||
          msg.header(kOverloadProbeHeader).has_value());
}

void ProxyServer::on_datagram(Address from, const sip::MessagePtr& msg) {
  if (const obs::Sinks& obs = sim_.obs(); obs.any()) {
    rx_counter_.inc(obs.metrics);
    if (obs.tracer != nullptr) {
      obs.tracer->instant("rx", "msg", sim_.now(), config_.address.value(),
                          "from", static_cast<double>(from.value()),
                          "request", msg->is_request() ? 1.0 : 0.0);
    }
  }
  if (msg->is_request()) {
    if (is_control(*msg)) {
      // Control plane: cheap, never rejected (a saturated node must still
      // hear recovery signals).
      const CostVector cost = CpuCostModel::receive_only();
      charge(cost);
      cpu_.submit_urgent(cost.total(),
                         [this, from, msg] { handle_control(from, *msg); });
      return;
    }
    admit_request(from, msg);
  } else {
    admit_response(from, msg);
  }
}

// ---------------------------------------------------------------------------
// Requests
// ---------------------------------------------------------------------------

void ProxyServer::admit_request(Address from, const sip::MessagePtr& msg) {
  ++stats_.requests_in;

  // Retransmission of a request we hold state for: absorb (the paper's key
  // stateful benefit — the retransmission never propagates downstream).
  if (txns_.find_server(*msg) != nullptr) {
    // Absorbing is cheap and protects downstream: never shed it.
    const CostVector cost = CpuCostModel::absorb_retransmit();
    charge(cost);
    ++stats_.absorbed_retransmits;
    cpu_.submit_urgent(cost.total(), [this, msg] {
      if (auto* txn = txns_.find_server(*msg)) {
        txn->receive_request(msg);
      }
      // If the transaction ended in the queueing gap the retransmission is
      // simply dropped; the far end's timers cover it.
    });
    return;
  }

  if (msg->method() == sip::Method::kCancel) {
    handle_cancel(from, msg);
    return;
  }

  plan_new_request(from, msg);
}

void ProxyServer::plan_new_request(Address from, const sip::MessagePtr& msg) {
  // --- Routing --------------------------------------------------------
  sip::Message fwd = sip::clone(*msg);
  // RFC 3261 16.3 step 4: hop-count exhaustion means the request *arrived*
  // with Max-Forwards 0 — the check precedes the decrement, so a request
  // arriving with 1 is still forwarded (carrying 0).
  int mf_on_arrival = msg->max_forwards();
  if (config_.debug_predecrement_max_forwards) {
    --mf_on_arrival;  // reintroduces the off-by-one for the mutation smoke
  }
  if (mf_on_arrival <= 0) {
    ++stats_.rejected_483;
    respond_urgent(*msg, sip::status::kTooManyHops, from);
    return;
  }
  fwd.decrement_max_forwards();

  // Route-set handling (RFC 3261 16.4): strip our own Route entry, then
  // prefer the remaining route set over request-URI routing.
  if (!fwd.routes().empty() && fwd.routes().front().host() == config_.host) {
    fwd.routes().erase(fwd.routes().begin());
  }

  Address target;
  std::size_t path_index = 0;
  bool delegable = false;
  if (!fwd.routes().empty()) {
    const auto resolved = registry_.resolve(fwd.routes().front().host());
    if (!resolved) {
      ++stats_.route_failures;
      respond_urgent(*msg, sip::status::kNotFound, from);
      return;
    }
    target = *resolved;
    if (const auto path = routes_.path_of(target)) {
      path_index = *path;
      delegable = routes_.paths()[path_index].delegable;
    }
  } else {
    const auto decision = routes_.route(fwd.request_uri());
    if (!decision) {
      ++stats_.route_failures;
      respond_urgent(*msg, sip::status::kNotFound, from);
      return;
    }
    path_index = decision->path_index;
    delegable = !decision->local;
    if (decision->local) {
      if (msg->method() == sip::Method::kRegister) {
        // We are the registrar for this domain.
        handle_register(from, msg);
        return;
      }
      const auto resolved = resolve_local_target(fwd.request_uri());
      if (!resolved) {
        ++stats_.route_failures;
        respond_urgent(*msg, sip::status::kNotFound, from);
        return;
      }
      target = resolved->address;
      if (resolved->retarget) {
        // RFC 3261 16.5: the exit proxy replaces the request-URI with the
        // registered contact.
        fwd.set_request_uri(*resolved->retarget);
      }
    } else {
      target = decision->next_hop;
    }
  }

  // --- State decision -----------------------------------------------------
  const MsgKind kind = profile::classify(*msg);
  if (!is_transaction_creating(*msg)) {
    // ACK travels end-to-end with no transaction; forward statelessly,
    // costed at the policy's static mode when one exists.
    const HandlingMode mode =
        mode_for(policy_->static_decision().value_or(StateDecision::kStateless));
    CostVector cost = CpuCostModel::forward(mode, kind);
    if (config_.stateful_mode == HandlingMode::kDialogStateful ||
        config_.stateful_mode == HandlingMode::kDialogStatefulAuth) {
      (void)dialogs_.match(*msg);  // dialog accounting for in-dialog ACK
    }
    fwd.push_via(sip::Via{"SIP/2.0/UDP", config_.host,
                          sip::stateless_branch(msg->top_via().branch,
                                                config_.host)});
    auto fwd_ptr = std::move(fwd).finish();
    // In-call messages are never shed at admission: dropping an ACK wastes
    // a whole established call (overload control sheds *new* work first).
    charge(cost);
    ++stats_.forwarded_stateless;
    cpu_.submit_urgent(cost.total(), [this, fwd_ptr, target] {
      execute_stateless_forward(fwd_ptr, target);
    });
    return;
  }

  // --- Overload control ---------------------------------------------------
  // The admission gate sheds session-INITIATING work only, before the state
  // decision (a shed INVITE must not pollute the delegation controller's
  // per-path counters).
  if (overload_ != nullptr && msg->method() == sip::Method::kInvite) {
    const overload::AdmitDecision verdict =
        overload_->admit(path_index, sim_.now());
    if (verdict != overload::AdmitDecision::kAdmit) {
      if (verdict == overload::AdmitDecision::kRejectLocal) {
        ++stats_.rejected_503;
      } else {
        ++stats_.throttled_503;
      }
      if (const obs::Sinks& obs = sim_.obs(); obs.any()) {
        rejected_503_counter_.inc(obs.metrics);
        if (obs.tracer != nullptr) {
          obs.tracer->instant(
              "overload_503", "overload", sim_.now(),
              config_.address.value(), "throttled",
              verdict == overload::AdmitDecision::kRejectThrottled ? 1.0
                                                                   : 0.0);
        }
      }
      respond_overload_503(
          *msg, from,
          verdict == overload::AdmitDecision::kRejectLocal);
      return;
    }
  }

  RequestContext ctx;
  ctx.path_index = path_index;
  ctx.delegable = delegable;
  ctx.already_stateful = msg->header(kStatefulMarkHeader).has_value();
  ctx.kind = kind;
  const StateDecision decision = policy_->decide(ctx);

  CostVector cost = CpuCostModel::forward(mode_for(decision), kind);
  const bool stateful = decision == StateDecision::kStateful;
  if (const obs::Sinks& obs = sim_.obs(); obs.any()) {
    (stateful ? decision_stateful_counter_ : decision_stateless_counter_)
        .inc(obs.metrics);
    if (obs.tracer != nullptr) {
      obs.tracer->instant("state_decision", "policy", sim_.now(),
                          config_.address.value(), "stateful",
                          stateful ? 1.0 : 0.0, "path",
                          static_cast<double>(path_index));
    }
  }

  // --- Authentication -----------------------------------------------------
  // With AuthScope::kWhenStateful, verification travels with the state
  // decision: exactly the node accountable for the call checks credentials
  // (already-stateful traffic was verified upstream).
  const bool auth_applies =
      config_.authenticate &&
      (msg->method() == sip::Method::kInvite ||
       msg->method() == sip::Method::kBye) &&
      (config_.auth_scope == ProxyConfig::AuthScope::kAll ||
       (stateful && !ctx.already_stateful));
  if (auth_applies && !auth_.verify(*msg)) {
    ++stats_.auth_failures;
    const int code = msg->header(kProxyAuthorizationHeader)
                         ? sip::status::kForbidden
                         : sip::status::kProxyAuthRequired;
    respond_urgent(*msg, code, from);
    return;
  }
  if (stateful && msg->method() == sip::Method::kInvite) {
    cost += CpuCostModel::generate_100(config_.stateful_mode);
  }

  const bool dialog_mode =
      config_.stateful_mode == HandlingMode::kDialogStateful ||
      config_.stateful_mode == HandlingMode::kDialogStatefulAuth;

  if (stateful) {
    if (ctx.already_stateful) ++stats_.double_stateful;
    fwd.push_via(sip::Via{"SIP/2.0/UDP", config_.host, branches_.next()});
    fwd.set_header(std::string(kStatefulMarkHeader), config_.host);
    if (dialog_mode) {
      if (msg->method() == sip::Method::kInvite) {
        dialogs_.create_early(fwd, sim_.now());
        fwd.record_routes().insert(fwd.record_routes().begin(),
                                   sip::Uri("", config_.host));
      } else {
        (void)dialogs_.match(*msg);
      }
    }
  } else {
    fwd.push_via(sip::Via{"SIP/2.0/UDP", config_.host,
                          sip::stateless_branch(msg->top_via().branch,
                                                config_.host)});
  }

  auto fwd_ptr = std::move(fwd).finish();
  auto action = [this, from, msg, fwd_ptr, target, stateful] {
    if (stateful) {
      execute_stateful_forward(from, msg, fwd_ptr, target);
    } else {
      execute_stateless_forward(fwd_ptr, target);
    }
  };
  // Overload control sheds session-INITIATING work only: a rejected INVITE
  // costs one failed setup, while shedding an in-dialog BYE would waste an
  // entire established call's worth of completed work. With an overload
  // policy installed the occupancy gate above has already made the shedding
  // decision and replaces the raw queue-delay bound (which only reacts once
  // the backlog — and thus the damage — has fully built up).
  if (msg->method() == sip::Method::kInvite && overload_ == nullptr) {
    if (!cpu_.submit(cost.total(), std::move(action))) {
      ++stats_.rejected_busy;
      rejected_busy_counter_.inc(sim_.obs().metrics);
      respond_urgent(*msg, sip::status::kServerError, from);
      return;
    }
  } else {
    cpu_.submit_urgent(cost.total(), std::move(action));
  }
  charge(cost);
  if (stateful) {
    ++stats_.forwarded_stateful;
  } else {
    ++stats_.forwarded_stateless;
  }
}

void ProxyServer::execute_stateful_forward(Address from, sip::MessagePtr msg,
                                           sip::MessagePtr fwd,
                                           Address target) {
  // A retransmission may have raced us through admission before the server
  // transaction existed; if one exists now, absorb instead of duplicating.
  if (auto* existing = txns_.find_server(*msg)) {
    existing->receive_request(msg);
    ++stats_.absorbed_retransmits;
    return;
  }

  txn::ServerCallbacks server_callbacks;
  if (msg->method() == sip::Method::kInvite) {
    // The relay's key is the upstream INVITE's server-transaction key; the
    // INVITE itself rides in the value, so removal and CANCEL lookup
    // compare against it instead of an owning key copy.
    const sip::TxnProbe probe = sip::key_for_request(*msg);
    invite_relays_.insert(probe.hash, InviteRelay{msg, fwd, target});
    server_callbacks.on_terminated = [this, hash = probe.hash, msg] {
      invite_relays_.erase(
          hash, [&](const InviteRelay& r) { return r.invite == msg; });
    };
  }
  txn::TxnHandle server_handle;
  auto& server_txn = txns_.create_server(
      msg, sender_to(from), std::move(server_callbacks), &server_handle);

  if (msg->method() == sip::Method::kInvite) {
    auto trying = sip::Message::response(*msg, sip::status::kTrying);
    trying.set_header("X-Stateful-At", config_.host);
    stamp_oc(trying);
    server_txn.respond(std::move(trying).finish());
    ++stats_.generated_100;
  }

  const bool dialog_mode =
      config_.stateful_mode == HandlingMode::kDialogStateful ||
      config_.stateful_mode == HandlingMode::kDialogStatefulAuth;

  txn::ClientCallbacks callbacks;
  callbacks.on_response = [this, server_handle, dialog_mode](
                              const sip::MessagePtr& response) {
    sip::Message up = sip::clone(*response);
    if (up.vias().empty() || up.top_via().sent_by != config_.host) {
      return;  // malformed; drop
    }
    up.pop_via();
    if (dialog_mode && sip::is_success(response->status_code())) {
      if (response->cseq().method == sip::Method::kInvite) {
        dialogs_.confirm(*response);
      } else if (response->cseq().method == sip::Method::kBye) {
        dialogs_.terminate(dialog::DialogProbe::make(
            response->call_id(), response->from().tag, response->to().tag));
      }
    } else if (dialog_mode && sip::is_final(response->status_code()) &&
               response->cseq().method == sip::Method::kInvite) {
      // The INVITE failed: its early dialog will never confirm and must
      // not linger in the table (PR7 leak fix).
      if (dialogs_.abandon_early(*response)) ++stats_.dialogs_abandoned;
    }
    stamp_oc(up);
    auto up_ptr = std::move(up).finish();
    if (auto* srv = txns_.find_server(server_handle)) {
      srv->respond(up_ptr);
    } else {
      forward_response_stateless(up_ptr);
    }
    ++stats_.responses_forwarded;
  };
  callbacks.on_timeout = [this, server_handle, msg, dialog_mode] {
    ++stats_.proxy_timeouts;
    if (dialog_mode && msg->method() == sip::Method::kInvite) {
      // Downstream never answered: the early dialog is dead.
      if (dialogs_.abandon_early(*msg)) ++stats_.dialogs_abandoned;
    }
    if (auto* srv = txns_.find_server(server_handle)) {
      sip::Message timeout =
          sip::Message::response(*msg, sip::status::kRequestTimeout);
      stamp_oc(timeout);
      srv->respond(std::move(timeout).finish());
    }
  };

  txns_.create_client(fwd, sender_to(target), std::move(callbacks));
}

void ProxyServer::execute_stateless_forward(sip::MessagePtr msg,
                                            Address target) {
  send_charged(target, msg);
}

// ---------------------------------------------------------------------------
// Responses
// ---------------------------------------------------------------------------

void ProxyServer::admit_response(Address from, const sip::MessagePtr& msg) {
  ++stats_.responses_in;

  // Hop-by-hop overload feedback rides the response path: the downstream
  // neighbor stamps its permitted rate as `oc` on *our* Via before sending
  // the response up, so the param is read here — off our own top Via, keyed
  // by the path the sender terminates.
  if (overload_ != nullptr && !msg->vias().empty() &&
      msg->top_via().sent_by == config_.host) {
    if (const auto path = routes_.path_of(from)) {
      if (msg->top_via().oc_rate >= 0.0) {
        ++stats_.oc_advertisements;
        overload_->on_rate_advertisement(*path, msg->top_via().oc_rate,
                                         sim_.now());
      } else if (msg->status_code() == sip::status::kServiceUnavailable) {
        // A bare 503 from a hop that advertises no rate (e.g. a legacy
        // neighbor) is still an overload hint. With an advert present the
        // rate update above already carries the signal — no double penalty.
        ++stats_.downstream_503;
        overload_->on_downstream_503(*path, sim_.now());
      }
    }
  }
  const bool matched = txns_.find_client(*msg) != nullptr;
  const HandlingMode mode =
      matched
          ? config_.stateful_mode
          : mode_for(policy_->static_decision().value_or(
                StateDecision::kStateless));
  const CostVector cost = CpuCostModel::forward(mode, profile::classify(*msg));

  charge(cost);
  cpu_.submit_urgent(cost.total(), [this, msg] {
    if (auto* client = txns_.find_client(*msg)) {
      client->receive_response(msg);
      return;
    }
    // No transaction here (we were stateless for it, or it is a
    // retransmitted 2xx after the transaction ended): relay by Via.
    const bool dialog_mode =
        config_.stateful_mode == HandlingMode::kDialogStateful ||
        config_.stateful_mode == HandlingMode::kDialogStatefulAuth;
    if (dialog_mode && sip::is_success(msg->status_code())) {
      if (msg->cseq().method == sip::Method::kInvite) {
        dialogs_.confirm(*msg);
      } else if (msg->cseq().method == sip::Method::kBye) {
        dialogs_.terminate(dialog::DialogProbe::make(
            msg->call_id(), msg->from().tag, msg->to().tag));
      }
    } else if (dialog_mode && sip::is_final(msg->status_code()) &&
               msg->cseq().method == sip::Method::kInvite) {
      if (dialogs_.abandon_early(*msg)) ++stats_.dialogs_abandoned;
    }
    sip::Message up = sip::clone(*msg);
    if (up.vias().empty() || up.top_via().sent_by != config_.host) {
      return;  // not ours; drop
    }
    up.pop_via();
    stamp_oc(up);
    forward_response_stateless(std::move(up).finish());
    ++stats_.responses_forwarded;
  });
}

void ProxyServer::forward_response_stateless(const sip::MessagePtr& msg) {
  if (msg->vias().empty()) return;
  const auto target = registry_.resolve(msg->top_via().sent_by);
  if (!target) return;
  send_charged(*target, msg);
}

// ---------------------------------------------------------------------------
// Local generation, control plane, helpers
// ---------------------------------------------------------------------------

void ProxyServer::respond_urgent(const sip::Message& req, int code,
                                 Address to) {
  if (req.method() == sip::Method::kAck) return;  // never respond to ACK
  const CostVector cost = CpuCostModel::generate_error();
  charge(cost);
  sip::Message response = sip::Message::response(req, code);
  stamp_oc(response);
  auto ptr = std::move(response).finish();
  cpu_.submit_urgent(cost.total(),
                     [this, ptr, to] { send_charged(to, ptr); });
}

void ProxyServer::respond_overload_503(const sip::Message& req, Address to,
                                       bool with_retry_after) {
  if (req.method() == sip::Method::kAck) return;
  const CostVector cost = CpuCostModel::generate_error();
  charge(cost);
  sip::Message response =
      sip::Message::response(req, sip::status::kServiceUnavailable);
  // Retry-After is integer delta-seconds (RFC 3261 20.33). Only the local
  // gate's 503s carry it: a locally overloaded node needs the source to
  // back off wholesale. Throttled rejections (shed on a neighbor's behalf)
  // deliberately omit it — the token bucket already meters the flow to the
  // advertised rate, and stacking an on/off generator pause on top of rate
  // control re-creates the oscillation RFC 7339 exists to avoid.
  if (with_retry_after) {
    response.set_header(
        "Retry-After",
        std::to_string(
            static_cast<int>(config_.overload.retry_after_s + 0.5)));
  }
  stamp_oc(response);
  auto ptr = std::move(response).finish();
  cpu_.submit_urgent(cost.total(),
                     [this, ptr, to] { send_charged(to, ptr); });
}

void ProxyServer::stamp_oc(sip::Message& response) const {
  if (overload_ == nullptr || response.vias().empty()) return;
  const double rate = overload_->advertised_rate();
  if (rate >= 0.0) response.top_via().oc_rate = rate;
}

void ProxyServer::overload_tick() {
  // Occupancy = mean utilization over the period plus the backlog's growth
  // normalized to the period. Utilization alone pins at 1.0 under overload
  // (no control error left to regulate on); the backlog term keeps the
  // signal proportional when the queue is building, which both the shed
  // fraction and the advertised rate divide by.
  const double period_s = config_.overload.control_period.to_seconds();
  const double util = overload_probe_->utilization();
  overload_probe_->restart();
  const double backlog_growth =
      period_s > 0.0 ? cpu_.backlog().to_seconds() / period_s : 0.0;
  overload_->on_occupancy_sample(util + backlog_growth, sim_.now());

  const overload::OverloadStats& ostats = overload_->stats();
  const obs::Sinks& obs = sim_.obs();
  if (obs.tracer != nullptr) {
    obs.tracer->counter("occupancy", sim_.now(), config_.address.value(),
                        "occ", ostats.smoothed_occupancy);
    obs.tracer->counter("advertised_rate", sim_.now(),
                        config_.address.value(), "cps",
                        overload_->advertised_rate());
  }
  if (obs.overload_audit != nullptr) {
    obs::OverloadAuditRecord record;
    record.node_tid = config_.address.value();
    record.at = sim_.now();
    record.occupancy = ostats.smoothed_occupancy;
    record.advertised_rate = overload_->advertised_rate();
    record.local_rejects = ostats.local_rejects;
    record.throttled_rejects = ostats.throttled_rejects;
    obs.overload_audit->append(record);
  }
}

void ProxyServer::handle_cancel(Address from, const sip::MessagePtr& msg) {
  const CostVector cost =
      CpuCostModel::forward(config_.stateless_mode, MsgKind::kOther);
  charge(cost);
  cpu_.submit_urgent(cost.total(), [this, from, msg] {
    if (auto* existing = txns_.find_server(*msg)) {
      existing->receive_request(msg);
      return;
    }
    // RFC 3261 16.3 step 4 applies to CANCEL like any other request: an
    // exhausted hop count is answered 483 — never silently dropped, the
    // canceller's transaction must complete.
    if (msg->max_forwards() <= 0) {
      ++stats_.rejected_483;
      auto& cancel_txn =
          txns_.create_server(msg, sender_to(from), txn::ServerCallbacks{});
      sip::Message reject =
          sip::Message::response(*msg, sip::status::kTooManyHops);
      stamp_oc(reject);
      cancel_txn.respond(std::move(reject).finish());
      return;
    }
    // The CANCEL gets its own transaction and an immediate 200.
    auto& cancel_txn =
        txns_.create_server(msg, sender_to(from), txn::ServerCallbacks{});
    sip::Message ok = sip::Message::response(*msg, sip::status::kOk);
    stamp_oc(ok);
    cancel_txn.respond(std::move(ok).finish());

    // Did we relay the INVITE statefully? Then cancel our own downstream
    // leg with the branch of the forwarded INVITE (RFC 3261 9.1). The
    // CANCEL shares branch and sent-by with its INVITE, so the relay probe
    // is the CANCEL's key with the method swapped — hashed off the message,
    // no key temporary.
    const sip::Via& cancel_via = msg->top_via();
    const std::uint64_t invite_hash = sip::txn_key_hash(
        cancel_via.branch, cancel_via.sent_by, sip::Method::kInvite);
    const InviteRelay* relay =
        invite_relays_.find(invite_hash, [&](const InviteRelay& r) {
          const sip::Via& via = r.invite->top_via();
          return via.branch == cancel_via.branch &&
                 via.sent_by == cancel_via.sent_by;
        });
    if (relay != nullptr) {
      // Copy out before any further table mutation: FlatTable references
      // do not survive insert/erase.
      const sip::MessagePtr fwd_invite = relay->fwd;
      const Address target = relay->target;
      sip::Message cancel = sip::Message::request(
          sip::Method::kCancel, fwd_invite->request_uri(),
          fwd_invite->from(), fwd_invite->to(), fwd_invite->call_id(),
          sip::CSeq{fwd_invite->cseq().seq, sip::Method::kCancel});
      cancel.push_via(fwd_invite->top_via());
      // CANCEL responses terminate at this hop (hop-by-hop method).
      txns_.create_client(std::move(cancel).finish(), sender_to(target),
                          txn::ClientCallbacks{});
      return;
    }

    // Statelessly relayed INVITE (or unknown): forward the CANCEL along
    // the same route; the deterministic stateless branch reproduces the
    // branch the INVITE carried downstream, so it matches there.
    sip::Message fwd = sip::clone(*msg);
    fwd.decrement_max_forwards();  // arrival value >= 1, checked above
    const auto decision = routes_.route(fwd.request_uri());
    if (!decision) return;
    Address target;
    if (decision->local) {
      const auto resolved = resolve_local_target(fwd.request_uri());
      if (!resolved) return;
      target = resolved->address;
      if (resolved->retarget) fwd.set_request_uri(*resolved->retarget);
    } else {
      target = decision->next_hop;
    }
    fwd.push_via(sip::Via{"SIP/2.0/UDP", config_.host,
                          sip::stateless_branch(msg->top_via().branch,
                                                config_.host)});
    send_charged(target, std::move(fwd).finish());
  });
}

void ProxyServer::handle_register(Address from, const sip::MessagePtr& msg) {
  // Registrar processing: bind the To AOR to the Contact for the requested
  // lifetime and answer 200 through a server transaction (which absorbs
  // REGISTER retransmissions).
  const CostVector cost =
      CpuCostModel::forward(config_.stateless_mode, MsgKind::kOther);
  charge(cost);
  cpu_.submit_urgent(cost.total(), [this, from, msg] {
    if (auto* existing = txns_.find_server(*msg)) {
      existing->receive_request(msg);
      return;
    }
    int expires_s = 3600;
    if (const auto header = msg->header("Expires")) {
      std::from_chars(header->data(), header->data() + header->size(),
                      expires_s);
    }
    const std::string aor = msg->to().uri.aor();
    if (msg->contact()) {
      if (expires_s <= 0) {
        location_->unregister(aor);
      } else {
        location_->register_binding(
            aor, msg->contact()->uri,
            sim_.now() + SimTime::seconds(static_cast<double>(expires_s)));
      }
      ++stats_.registrations;
    }
    auto& txn = txns_.create_server(msg, sender_to(from),
                                    txn::ServerCallbacks{});
    sip::Message ok = sip::Message::response(*msg, sip::status::kOk);
    ok.set_header("Expires", std::to_string(expires_s));
    stamp_oc(ok);
    txn.respond(std::move(ok).finish());
  });
}

void ProxyServer::handle_control(Address from, const sip::Message& msg) {
  if (msg.header(kOverloadProbeHeader).has_value()) {
    // A frozen upstream lost track of our status; restate it directly to
    // the prober as a normal X-Overload signal.
    ++stats_.overload_probes_received;
    send_overload_status(from);
    return;
  }
  ++stats_.overload_signals_received;
  const auto value = msg.header(kOverloadHeader);
  if (!value) return;
  // Format: "on;rate=<double>" or "off;rate=<double>".
  const std::string_view text = *value;
  const bool on = text.starts_with("on");
  double rate = 0.0;
  if (const auto pos = text.find("rate="); pos != std::string_view::npos) {
    const std::string_view num = text.substr(pos + 5);
    std::from_chars(num.data(), num.data() + num.size(), rate);
  }
  const auto path = routes_.path_of(from);
  if (path) {
    policy_->on_overload_signal(*path, on, rate);
  }
}

sip::MessagePtr ProxyServer::make_overload_options(std::string_view header,
                                                   const std::string& value) {
  sip::Message options = sip::Message::request(
      sip::Method::kOptions, sip::Uri("overload", config_.host),
      sip::NameAddr{"", sip::Uri("control", config_.host), "svk"},
      sip::NameAddr{"", sip::Uri("control", config_.host), ""},
      config_.host + "-ovl-" + std::to_string(++overload_signal_seq_),
      sip::CSeq{1, sip::Method::kOptions});
  options.push_via(sip::Via{"SIP/2.0/UDP", config_.host, branches_.next()});
  options.set_header(std::string(header), value);
  return std::move(options).finish();
}

void ProxyServer::send_overload_signal(bool on, double c_asf_rate) {
  last_overload_on_ = on;
  last_overload_rate_ = c_asf_rate;
  if (const obs::Sinks& obs = sim_.obs(); obs.tracer != nullptr) {
    obs.tracer->instant(on ? "overload_tx_on" : "overload_tx_off",
                        "overload", sim_.now(), config_.address.value(),
                        "c_asf", c_asf_rate);
  }
  char value[48];
  std::snprintf(value, sizeof(value), "%s;rate=%.3f", on ? "on" : "off",
                c_asf_rate);
  for (const Address upstream : upstream_proxies_) {
    // Fault-ablation knob: shed a deterministic fraction of advertisements
    // before they reach the wire (error diffusion, no RNG draw).
    if (config_.overload_signal_loss > 0.0) {
      signal_loss_acc_ += config_.overload_signal_loss;
      if (signal_loss_acc_ >= 1.0) {
        signal_loss_acc_ -= 1.0;
        ++stats_.overload_signals_dropped;
        continue;
      }
    }
    auto msg = make_overload_options(kOverloadHeader, value);
    // Control sends bypass admission: signalling must survive saturation.
    cpu_.submit_urgent(CpuCostModel::generate_error().total(), nullptr);
    send_charged(upstream, msg);
    ++stats_.overload_signals_sent;
  }
}

void ProxyServer::send_overload_status(Address to) {
  char value[48];
  std::snprintf(value, sizeof(value), "%s;rate=%.3f",
                last_overload_on_ ? "on" : "off", last_overload_rate_);
  auto msg = make_overload_options(kOverloadHeader, value);
  cpu_.submit_urgent(CpuCostModel::generate_error().total(), nullptr);
  send_charged(to, msg);
  ++stats_.overload_signals_sent;
}

void ProxyServer::send_overload_probe(std::size_t path_index) {
  if (path_index >= routes_.paths().size()) return;
  const PathInfo& path = routes_.paths()[path_index];
  if (!path.delegable) return;
  if (const obs::Sinks& obs = sim_.obs(); obs.tracer != nullptr) {
    obs.tracer->instant("overload_probe_sent", "overload", sim_.now(),
                        config_.address.value(), "path",
                        static_cast<double>(path_index));
  }
  auto msg = make_overload_options(kOverloadProbeHeader, "request");
  cpu_.submit_urgent(CpuCostModel::generate_error().total(), nullptr);
  send_charged(path.next_hop, msg);
  ++stats_.overload_probes_sent;
}

std::optional<ProxyServer::LocalTarget> ProxyServer::resolve_local_target(
    const sip::Uri& uri) {
  // Direct contact (host of a registered element), as in ACK/BYE whose
  // request URI is the callee's contact.
  if (const auto direct = registry_.resolve(uri.host())) {
    return LocalTarget{*direct, std::nullopt};
  }
  // Otherwise an address-of-record: consult the location service and
  // retarget to the current contact. lookup_uri hashes user@host off the
  // URI parts — no AOR string is built for the per-call routing query.
  const auto binding = location_->lookup_uri(uri, sim_.now());
  if (!binding) return std::nullopt;
  const auto address = registry_.resolve(binding->contact.host());
  if (!address) return std::nullopt;
  return LocalTarget{*address, binding->contact};
}

void ProxyServer::send_charged(Address to, const sip::MessagePtr& msg) {
  const CostVector cost = CpuCostModel::transport_send();
  charge(cost);
  cpu_.submit_urgent(cost.total(), nullptr);
  tx_counter_.inc(sim_.obs().metrics);
  network_.send(config_.address, to, msg);
}

txn::SendFn ProxyServer::sender_to(Address to) {
  return [this, to](const sip::MessagePtr& msg) { send_charged(to, msg); };
}

}  // namespace svk::proxy
