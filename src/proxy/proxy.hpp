// The SIP proxy server.
//
// Functionally an OpenSER-alike: it routes requests by domain hierarchy,
// consults a location service at the exit hop, optionally verifies Digest
// credentials, and — per request — handles the transaction either
// *statefully* (server+client transaction pair, retransmission absorption,
// a locally generated 100 Trying) or *statelessly* (deterministic-branch
// Via push and blind forward). Which of the two happens per request is the
// StatePolicy's call: static policies model today's servers, the
// SERvartuka controller (src/core) implements the paper's algorithm.
//
// CPU is modelled explicitly: every message charges the calibrated cost
// model and is serviced through a bounded FIFO CpuQueue; when the backlog
// bound is exceeded requests are rejected with 500 Server Busy, exactly the
// saturation signature the paper reports.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "common/flat_table.hpp"
#include "common/types.hpp"
#include "dialog/dialog.hpp"
#include "obs/metrics.hpp"
#include "overload/overload.hpp"
#include "profile/cost_model.hpp"
#include "profile/profiler.hpp"
#include "proxy/auth.hpp"
#include "proxy/host_registry.hpp"
#include "proxy/location.hpp"
#include "proxy/policy.hpp"
#include "proxy/routing.hpp"
#include "sim/cpu_queue.hpp"
#include "sim/network.hpp"
#include "sim/simulator.hpp"
#include "sip/branch.hpp"
#include "sip/message.hpp"
#include "txn/manager.hpp"

namespace svk::proxy {

using SipNetwork = sim::Network<sip::MessagePtr>;

/// Header a SERvartuka node stamps on a request once some node has taken
/// state for it (the paper leaves the wire encoding unspecified).
inline constexpr std::string_view kStatefulMarkHeader = "X-Stateful";

/// Header carrying an overload control signal between neighbor proxies.
/// Value: "on;rate=<cps>" or "off;rate=0".
inline constexpr std::string_view kOverloadHeader = "X-Overload";

/// Header asking a neighbor to restate its current overload status. The
/// reply is a normal X-Overload OPTIONS sent straight back to the prober,
/// repairing lost "on"/"off" advertisements.
inline constexpr std::string_view kOverloadProbeHeader = "X-Overload-Probe";

struct ProxyConfig {
  std::string host;
  Address address;
  double cpu_capacity = profile::CpuCostModel::kCalibratedCapacity;
  SimTime max_queue_delay = SimTime::millis(1500);
  /// Mode used when a request is handled statefully.
  profile::HandlingMode stateful_mode =
      profile::HandlingMode::kTransactionStateful;
  /// Mode used when a request is handled statelessly.
  profile::HandlingMode stateless_mode = profile::HandlingMode::kStateless;
  /// Verify Proxy-Authorization on INVITE/BYE requests.
  bool authenticate = false;
  /// kAll: verify every transaction-creating request (classic edge-proxy
  /// auth). kWhenStateful: verify only requests this node handles
  /// statefully — the paper's "distribute other functionality such as
  /// authentication" extension, where the accountable (stateful) node
  /// carries the verification cost.
  enum class AuthScope { kAll, kWhenStateful };
  AuthScope auth_scope = AuthScope::kAll;
  /// Digest realm/nonce; empty derives "<host>" / "nonce-<host>". Nodes
  /// sharing auth duty must share these.
  std::string auth_realm;
  std::string auth_nonce;
  txn::TimerConfig timers;
  /// Fraction of outgoing overload *advertisements* silently dropped before
  /// they reach the wire, realized deterministically by error diffusion
  /// (fault-ablation knob; probes and probe replies are never dropped here
  /// so they stay available as the repair channel).
  double overload_signal_loss = 0.0;
  /// Overload-control subsystem (src/overload). kNone keeps the legacy
  /// queue-delay bound + 500; the other kinds replace it with 503-based
  /// admission (local occupancy gate, optionally hop-by-hop rate feedback).
  overload::OverloadConfig overload;
  /// Early (unconfirmed) dialogs older than this are expired by a periodic
  /// sweep — they belong to calls that will never complete (lost finals,
  /// crashed endpoints) and would otherwise accumulate forever. Only
  /// consulted in dialog-stateful modes. Zero disables the sweep.
  SimTime dialog_ttl = SimTime::seconds(300);
  /// Test hook for the conformance mutation smoke: reintroduces the
  /// decrement-before-test Max-Forwards off-by-one (a request arriving
  /// with Max-Forwards 1 is wrongly rejected 483).
  bool debug_predecrement_max_forwards = false;
};

struct ProxyStats {
  std::uint64_t requests_in = 0;
  std::uint64_t responses_in = 0;
  std::uint64_t absorbed_retransmits = 0;
  std::uint64_t forwarded_stateful = 0;
  std::uint64_t forwarded_stateless = 0;
  std::uint64_t responses_forwarded = 0;
  std::uint64_t generated_100 = 0;
  std::uint64_t rejected_busy = 0;       // 500 Server Busy sent
  std::uint64_t dropped = 0;             // silently dropped at overload
  std::uint64_t auth_failures = 0;
  std::uint64_t route_failures = 0;
  std::uint64_t proxy_timeouts = 0;      // client transactions timed out
  std::uint64_t rejected_483 = 0;        // 483 Too Many Hops sent
  std::uint64_t dialogs_expired = 0;     // early dialogs reaped by the sweep
  std::uint64_t dialogs_abandoned = 0;   // early dialogs ended by failure
  std::uint64_t registrations = 0;       // REGISTER bindings accepted
  std::uint64_t overload_signals_sent = 0;
  std::uint64_t overload_signals_received = 0;
  std::uint64_t overload_signals_dropped = 0;  // shed by overload_signal_loss
  std::uint64_t overload_probes_sent = 0;
  std::uint64_t overload_probes_received = 0;
  std::uint64_t rejected_503 = 0;      // 503 sent by the local occupancy gate
  std::uint64_t throttled_503 = 0;     // 503 sent on a neighbor's behalf
  std::uint64_t downstream_503 = 0;    // bare 503s received from downstream
  std::uint64_t oc_advertisements = 0; // oc Via params read off responses
  /// Stateful decisions taken on traffic already marked stateful upstream.
  /// Legitimate under static all-stateful; must stay 0 under SERvartuka
  /// (Algorithm 1 forwards marked traffic statelessly) — the chaos
  /// harness's exactly-one-stateful invariant.
  std::uint64_t double_stateful = 0;
};

class ProxyServer {
 public:
  ProxyServer(sim::Simulator& sim, SipNetwork& network,
              const HostRegistry& registry,
              std::shared_ptr<LocationService> location, RouteTable routes,
              std::unique_ptr<StatePolicy> policy, ProxyConfig config);
  ~ProxyServer();

  ProxyServer(const ProxyServer&) = delete;
  ProxyServer& operator=(const ProxyServer&) = delete;

  /// Proxies that may send us traffic; overload signals go to them.
  void set_upstream_proxies(std::vector<Address> upstream);

  [[nodiscard]] const ProxyStats& stats() const { return stats_; }
  [[nodiscard]] const profile::CpuProfiler& profiler() const {
    return profiler_;
  }
  [[nodiscard]] profile::CpuProfiler& profiler() { return profiler_; }
  [[nodiscard]] const sim::CpuQueue& cpu() const { return cpu_; }
  [[nodiscard]] sim::CpuQueue& cpu() { return cpu_; }
  [[nodiscard]] StatePolicy& policy() { return *policy_; }
  /// Overload-control policy; null when ControlKind::kNone.
  [[nodiscard]] const overload::OverloadPolicy* overload_policy() const {
    return overload_.get();
  }
  [[nodiscard]] DigestAuthenticator& authenticator() { return auth_; }
  [[nodiscard]] const ProxyConfig& config() const { return config_; }
  /// The simulator this proxy schedules on — in a sharded bed, its shard's.
  [[nodiscard]] sim::Simulator& sim() { return sim_; }
  [[nodiscard]] const txn::TransactionManager& transactions() const {
    return txns_;
  }
  [[nodiscard]] const dialog::DialogManager& dialogs() const {
    return dialogs_;
  }

  /// Installs a conformance tap on this proxy's transaction manager (see
  /// txn/tap.hpp). Install before traffic flows; null disables.
  void set_conformance_tap(txn::ConformanceTap* tap) {
    txns_.set_conformance_tap(tap);
  }

 private:
  /// Network receive entry point: classifies, charges CPU, queues effects.
  void on_datagram(Address from, const sip::MessagePtr& msg);

  void admit_request(Address from, const sip::MessagePtr& msg);
  void admit_response(Address from, const sip::MessagePtr& msg);
  void handle_control(Address from, const sip::Message& msg);

  /// Routes and forwards a new transaction-creating request (decision made
  /// at admission; effects deferred `after` the CPU service completes).
  void plan_new_request(Address from, const sip::MessagePtr& msg);

  /// Registrar role (RFC 3261 10.3): accepts REGISTER for domains this
  /// proxy delivers locally, updating the location service.
  void handle_register(Address from, const sip::MessagePtr& msg);

  /// CANCEL handling (RFC 3261 16.10): answer the CANCEL, and either
  /// cancel our own downstream INVITE (stateful relay) or pass the CANCEL
  /// along statelessly (its deterministic branch matches the statelessly
  /// forwarded INVITE downstream).
  void handle_cancel(Address from, const sip::MessagePtr& msg);

  void execute_stateful_forward(Address from, sip::MessagePtr msg,
                                sip::MessagePtr fwd, Address target);
  void execute_stateless_forward(sip::MessagePtr msg, Address target);

  /// Builds and sends a locally generated response, bypassing admission
  /// (servers answer 500 even when saturated).
  void respond_urgent(const sip::Message& req, int code, Address to);

  /// Overload rejection: 503 (+ oc feedback when advertising). Retry-After
  /// goes only on local-gate rejections; throttled ones are already
  /// rate-metered by the token bucket (see the definition for why).
  void respond_overload_503(const sip::Message& req, Address to,
                            bool with_retry_after);

  /// Stamps this node's advertised rate as an `oc` param on the top Via of
  /// an outgoing response (the upstream neighbor's Via — it reads the param
  /// off its own Via on receipt). No-op when no policy or no restriction.
  void stamp_oc(sip::Message& response) const;

  /// Overload control tick: occupancy sample -> policy, audit, trace.
  void overload_tick();

  /// Forwards a response (our Via already popped) toward the previous hop.
  void forward_response_stateless(const sip::MessagePtr& msg);

  /// Sends a message, charging the transport cost to this node's CPU.
  void send_charged(Address to, const sip::MessagePtr& msg);
  /// A SendFn bound to a fixed destination, with transport charging.
  [[nodiscard]] txn::SendFn sender_to(Address to);

  struct LocalTarget {
    Address address;
    std::optional<sip::Uri> retarget;  // contact to rewrite the R-URI to
  };
  [[nodiscard]] std::optional<LocalTarget> resolve_local_target(
      const sip::Uri& uri);
  [[nodiscard]] profile::HandlingMode mode_for(StateDecision decision) const;
  [[nodiscard]] bool is_control(const sip::Message& msg) const;
  void send_overload_signal(bool on, double c_asf_rate);
  /// Sends an X-Overload-Probe OPTIONS to the next hop of `path_index`.
  void send_overload_probe(std::size_t path_index);
  /// Answers a probe: restates our current overload status to `to`.
  void send_overload_status(Address to);
  [[nodiscard]] sip::MessagePtr make_overload_options(
      std::string_view header, const std::string& value);
  void charge(const profile::CostVector& cost) { profiler_.charge(cost); }

  sim::Simulator& sim_;
  SipNetwork& network_;
  const HostRegistry& registry_;
  std::shared_ptr<LocationService> location_;
  RouteTable routes_;
  std::unique_ptr<StatePolicy> policy_;
  ProxyConfig config_;

  sim::CpuQueue cpu_;
  txn::TransactionManager txns_;
  dialog::DialogManager dialogs_;
  profile::CpuProfiler profiler_;
  DigestAuthenticator auth_;
  sip::BranchGenerator branches_;
  std::unique_ptr<sim::PeriodicTimer> policy_timer_;
  std::unique_ptr<sim::UtilizationProbe> tick_probe_;
  /// Overload-control subsystem (null when ControlKind::kNone).
  std::unique_ptr<overload::OverloadPolicy> overload_;
  std::unique_ptr<sim::UtilizationProbe> overload_probe_;
  std::unique_ptr<sim::PeriodicTimer> overload_timer_;
  /// Early-dialog expiry sweep; only armed in dialog-stateful modes.
  std::unique_ptr<sim::PeriodicTimer> dialog_sweep_;
  /// Stateful INVITE relay: the upstream INVITE (whose top Via is the
  /// table key — key-inside-value, no owning key strings) plus the INVITE
  /// we forwarded downstream (needed to construct a matching CANCEL) and
  /// its destination. Entries are removed when the server transaction
  /// terminates.
  struct InviteRelay {
    sip::MessagePtr invite;
    sip::MessagePtr fwd;
    Address target;
  };
  /// Keyed by the upstream server-transaction key hash.
  common::FlatTable<InviteRelay> invite_relays_;
  std::vector<Address> upstream_proxies_;
  std::uint64_t overload_signal_seq_{0};
  /// Error-diffusion accumulator realizing overload_signal_loss.
  double signal_loss_acc_{0.0};
  /// Last advertised overload status, restated when a probe arrives.
  bool last_overload_on_{false};
  double last_overload_rate_{0.0};
  /// Pre-resolved hot-path instruments (one pointer compare per event
  /// instead of a name hash + map probe; see obs::CounterHandle).
  obs::CounterHandle rx_counter_{"proxy.rx"};
  obs::CounterHandle tx_counter_{"proxy.tx"};
  obs::CounterHandle rejected_503_counter_{"overload.rejected_503"};
  obs::CounterHandle rejected_busy_counter_{"proxy.rejected_busy"};
  obs::CounterHandle decision_stateful_counter_{"decision.stateful"};
  obs::CounterHandle decision_stateless_counter_{"decision.stateless"};
  obs::GaugeHandle dialogs_live_gauge_;  // name carries the host; see ctor
  ProxyStats stats_;
};

}  // namespace svk::proxy
