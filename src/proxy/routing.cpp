#include "proxy/routing.hpp"

#include <algorithm>
#include <cassert>

namespace svk::proxy {

bool RouteTable::suffix_matches(const std::string& host,
                                const std::string& suffix) {
  if (host.size() < suffix.size()) return false;
  if (host.size() == suffix.size()) return host == suffix;
  // Proper suffix must align on a label boundary: "cc.gatech.edu" matches
  // suffix "gatech.edu" but "notgatech.edu" does not.
  const std::size_t offset = host.size() - suffix.size();
  return host.compare(offset, suffix.size(), suffix) == 0 &&
         host[offset - 1] == '.';
}

std::size_t RouteTable::path_for(Address next_hop) {
  for (std::size_t i = 0; i < paths_.size(); ++i) {
    if (paths_[i].delegable && paths_[i].next_hop == next_hop) return i;
  }
  paths_.push_back(PathInfo{true, next_hop});
  return paths_.size() - 1;
}

std::size_t RouteTable::local_path() {
  if (!local_path_) {
    paths_.push_back(PathInfo{false, Address{}});
    local_path_ = paths_.size() - 1;
  }
  return *local_path_;
}

void RouteTable::add_route(std::string domain_suffix,
                           std::vector<Address> next_hops) {
  assert(!next_hops.empty());
  Entry entry;
  entry.suffix = std::move(domain_suffix);
  entry.local = false;
  for (const Address hop : next_hops) {
    entry.path_indices.push_back(path_for(hop));
  }
  entries_.push_back(std::move(entry));
}

void RouteTable::add_local(std::string domain_suffix) {
  Entry entry;
  entry.suffix = std::move(domain_suffix);
  entry.local = true;
  entry.path_indices.push_back(local_path());
  entries_.push_back(std::move(entry));
}

std::optional<RouteDecision> RouteTable::route(const sip::Uri& uri) {
  Entry* best = nullptr;
  for (Entry& entry : entries_) {
    if (!suffix_matches(uri.host(), entry.suffix)) continue;
    if (!best || entry.suffix.size() > best->suffix.size()) best = &entry;
  }
  if (!best) return std::nullopt;

  const std::size_t choice =
      best->path_indices[best->rr_counter++ % best->path_indices.size()];
  RouteDecision decision;
  decision.path_index = choice;
  decision.local = !paths_[choice].delegable;
  if (!decision.local) decision.next_hop = paths_[choice].next_hop;
  return decision;
}

std::optional<std::size_t> RouteTable::path_of(Address neighbor) const {
  for (std::size_t i = 0; i < paths_.size(); ++i) {
    if (paths_[i].delegable && paths_[i].next_hop == neighbor) return i;
  }
  return std::nullopt;
}

}  // namespace svk::proxy
