// Proxy routing table.
//
// Routes a request URI to either a downstream proxy (by domain suffix, as
// in the paper's gatech.edu -> cc.gatech.edu hierarchy) or to local
// delivery through the location service (this proxy is the exit for that
// domain). An entry may list several next hops — the load-balancing fork of
// the paper's Figure 8 — split round-robin.
//
// Every distinct forwarding target gets a stable *path index*; the
// SERvartuka controller keeps its per-downstream-path counters keyed on it.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "sip/uri.hpp"

namespace svk::proxy {

/// Where a routed request goes.
struct RouteDecision {
  bool local = false;       // deliver via location service (exit path)
  Address next_hop;         // valid when !local
  std::size_t path_index = 0;
};

/// Static description of one path, exposed to the state policy.
struct PathInfo {
  bool delegable = false;   // has a downstream proxy to delegate state to
  Address next_hop;         // valid when delegable
};

class RouteTable {
 public:
  /// Adds a domain-suffix route to one or more downstream proxies.
  /// Longer suffixes win; among equal hops traffic is split round-robin.
  void add_route(std::string domain_suffix, std::vector<Address> next_hops);

  /// Marks a domain suffix as locally delivered (this proxy is its exit).
  void add_local(std::string domain_suffix);

  /// Routes by the request-URI host. Returns nullopt when no rule matches.
  [[nodiscard]] std::optional<RouteDecision> route(const sip::Uri& uri);

  /// All paths, indexed by path_index.
  [[nodiscard]] const std::vector<PathInfo>& paths() const { return paths_; }

  /// Maps a neighbor address back to its path index (for overload signals
  /// arriving from a downstream proxy).
  [[nodiscard]] std::optional<std::size_t> path_of(Address neighbor) const;

 private:
  struct Entry {
    std::string suffix;
    bool local = false;
    std::vector<std::size_t> path_indices;  // round-robin set
    std::uint64_t rr_counter = 0;
  };

  [[nodiscard]] static bool suffix_matches(const std::string& host,
                                           const std::string& suffix);

  std::size_t path_for(Address next_hop);
  std::size_t local_path();

  std::vector<Entry> entries_;
  std::vector<PathInfo> paths_;
  std::optional<std::size_t> local_path_;
};

}  // namespace svk::proxy
