#include "sim/cpu_queue.hpp"

#include <algorithm>
#include <cassert>
#include <utility>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace svk::sim {

CpuQueue::CpuQueue(Simulator& sim, CpuQueueConfig config)
    : sim_(sim), config_(config) {
  assert(config_.capacity > 0.0);
}

bool CpuQueue::submit(double cost, Completion done) {
  if (backlog() > config_.max_queue_delay) {
    ++stats_.rejected;
    const obs::Sinks& obs = sim_.obs();
    if (obs.tracer != nullptr) {
      obs.tracer->instant("cpu_reject", "cpu", sim_.now(), trace_tid_,
                          "backlog_ms", backlog().to_millis());
    }
    rejected_counter_.inc(obs.metrics);
    return false;
  }
  enqueue(cost, std::move(done));
  return true;
}

void CpuQueue::submit_urgent(double cost, Completion done) {
  enqueue(cost, std::move(done));
}

void CpuQueue::enqueue(double cost, Completion done) {
  assert(cost >= 0.0);
  ++stats_.admitted;
  stats_.total_cost += cost;
  const SimTime service =
      SimTime::seconds(cost / (config_.capacity * capacity_factor_));
  const SimTime start = std::max(busy_until_, sim_.now());
  busy_until_ = start + service;
  total_service_ += service;
  const obs::Sinks& obs = sim_.obs();
  if (obs.tracer != nullptr && service > SimTime{}) {
    // One span per unit of work at its scheduled service slot: the node's
    // trace track shows CPU occupancy directly (gaps = idle time).
    obs.tracer->complete("service", "cpu", start, service, trace_tid_,
                         "cost", cost);
  }
  admitted_counter_.inc(obs.metrics);
  if (done) {
    sim_.schedule_at(busy_until_, std::move(done));
  }
}

void CpuQueue::set_capacity_factor(double factor) {
  assert(factor > 0.0);
  if (factor == capacity_factor_) return;
  const SimTime now = sim_.now();
  if (busy_until_ > now) {
    // Rescale the unserved portion of the backlog: work that needed
    // `remaining` wall time at the old speed needs remaining * old/new at
    // the new one.
    const SimTime remaining = busy_until_ - now;
    const SimTime rescaled =
        SimTime::seconds(remaining.to_seconds() * capacity_factor_ / factor);
    busy_until_ = now + rescaled;
    // busy_elapsed(t) = total_service_ - (busy_until_ - t): folding the
    // backlog delta into total_service_ keeps busy_elapsed continuous at
    // the change instant (past busy time already accrued stays accrued) and
    // integrates to the new busy_until_ going forward, so UtilizationProbe
    // windows spanning the change stay in [0, 1].
    total_service_ += rescaled - remaining;
  }
  capacity_factor_ = factor;
}

SimTime CpuQueue::backlog() const {
  const SimTime now = sim_.now();
  return busy_until_ > now ? busy_until_ - now : SimTime{};
}

SimTime CpuQueue::busy_elapsed(SimTime now) const {
  const SimTime future =
      busy_until_ > now ? busy_until_ - now : SimTime{};
  return total_service_ - future;
}

UtilizationProbe::UtilizationProbe(const CpuQueue& cpu, const Simulator& sim)
    : cpu_(cpu), sim_(sim) {
  restart();
}

void UtilizationProbe::restart() {
  start_ = sim_.now();
  busy_at_start_ = cpu_.busy_elapsed(start_);
}

double UtilizationProbe::utilization() const {
  const SimTime now = sim_.now();
  const double span = (now - start_).to_seconds();
  if (span <= 0.0) return 0.0;
  const double busy = (cpu_.busy_elapsed(now) - busy_at_start_).to_seconds();
  return std::clamp(busy / span, 0.0, 1.0);
}

}  // namespace svk::sim
