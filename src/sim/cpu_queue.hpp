// Single-core CPU model.
//
// Each server node owns a CpuQueue: a non-idling FIFO work queue with a
// fixed processing capacity (abstract "CPU events" per second, matching the
// oprofile unit of Figure 3). Work is admitted unless the backlog already
// exceeds a configured queueing-delay bound, which is how the paper's
// OpenSER behaves at saturation (rejecting with 500 Server Busy when its
// internal queues fill).
#pragma once

#include <cstdint>
#include <functional>

#include "common/sim_time.hpp"
#include "obs/metrics.hpp"
#include "sim/simulator.hpp"

namespace svk::sim {

struct CpuQueueConfig {
  /// Processing capacity in cost units per second.
  double capacity = 1.0;
  /// Admission bound: work is rejected when the current backlog implies a
  /// queueing delay beyond this.
  SimTime max_queue_delay = SimTime::millis(1500);
};

struct CpuStats {
  std::uint64_t admitted = 0;
  std::uint64_t rejected = 0;
  double total_cost = 0.0;  // admitted cost units
};

/// FIFO CPU with admission control and utilization accounting.
class CpuQueue {
 public:
  using Completion = std::function<void()>;

  CpuQueue(Simulator& sim, CpuQueueConfig config);

  /// Tries to admit `cost` units of work; on completion (after queueing +
  /// service time) runs `done`. Returns false (and runs nothing) when the
  /// backlog bound is exceeded.
  [[nodiscard]] bool submit(double cost, Completion done);

  /// Admits work unconditionally (used for cheap overload responses such as
  /// generating a 500, which a real server performs even when saturated).
  void submit_urgent(double cost, Completion done);

  /// Backlog ahead of newly submitted work, as a delay.
  [[nodiscard]] SimTime backlog() const;

  /// Cumulative busy time up to `now`. Because the server is non-idling and
  /// FIFO, busy time = total admitted service time minus the part still
  /// scheduled in the future.
  [[nodiscard]] SimTime busy_elapsed(SimTime now) const;

  [[nodiscard]] const CpuStats& stats() const { return stats_; }
  [[nodiscard]] double capacity() const { return config_.capacity; }

  /// Fault injection: scales the effective capacity (1.0 = nominal, 0.5 =
  /// half speed). The unserved backlog is rescaled to the new speed at the
  /// change instant, so a degrade (or recovery) immediately stretches (or
  /// shrinks) the queueing delay admission and utilization see — not just
  /// the service time of work submitted afterwards. Completion callbacks
  /// already in the event queue keep their original fire times (the model
  /// treats queued jobs as dispatched); the backlog clock is what admission,
  /// backlog() and busy_elapsed() read.
  void set_capacity_factor(double factor);
  [[nodiscard]] double capacity_factor() const { return capacity_factor_; }

  /// Node id used for trace events (the owning proxy's address); 0 until
  /// set. Tracing reads the simulator's observability sinks.
  void set_trace_tid(std::uint32_t tid) { trace_tid_ = tid; }

 private:
  void enqueue(double cost, Completion done);

  Simulator& sim_;
  CpuQueueConfig config_;
  double capacity_factor_{1.0};  // fault-injected degradation multiplier
  SimTime busy_until_;        // when the last admitted work completes
  SimTime total_service_;     // sum of all admitted service times
  CpuStats stats_;
  std::uint32_t trace_tid_{0};
  // Pre-resolved instruments: enqueue runs once per message per node.
  obs::CounterHandle admitted_counter_{"cpu.admitted"};
  obs::CounterHandle rejected_counter_{"cpu.rejected"};
};

/// Measures mean CPU utilization over an interval by snapshotting
/// CpuQueue::busy_elapsed at the interval start.
class UtilizationProbe {
 public:
  UtilizationProbe(const CpuQueue& cpu, const Simulator& sim);

  /// Restarts the measurement interval at the current time.
  void restart();

  /// Mean utilization in [restart time, now], in [0, 1].
  [[nodiscard]] double utilization() const;

 private:
  const CpuQueue& cpu_;
  const Simulator& sim_;
  SimTime start_;
  SimTime busy_at_start_;
};

}  // namespace svk::sim
