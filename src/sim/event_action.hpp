// Small-buffer-optimized callable for simulator events.
//
// The old core stored every scheduled action as a std::function<void()>,
// which heap-allocates for captures beyond the implementation's tiny inline
// buffer (16 bytes on libstdc++). Event actions routinely capture a payload
// shared_ptr plus a couple of addresses, so steady-state scheduling was one
// malloc/free per event. EventAction keeps a 64-byte inline buffer — sized
// for the network-delivery lambda (this + from + to + MessagePtr) with room
// to spare — and only falls back to the heap for oversized or
// throwing-move captures.
#pragma once

#include <cstddef>
#include <memory>
#include <type_traits>
#include <utility>

namespace svk::sim {

/// Move-only type-erased void() callable with 64 bytes of inline storage.
class EventAction {
 public:
  static constexpr std::size_t kInlineSize = 64;

  EventAction() noexcept = default;

  template <typename F,
            std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, EventAction> &&
                    std::is_invocable_r_v<void, std::decay_t<F>&>,
                int> = 0>
  // NOLINTNEXTLINE(google-explicit-constructor): drop-in for std::function
  EventAction(F&& f) {
    using Fn = std::decay_t<F>;
    if constexpr (sizeof(Fn) <= kInlineSize &&
                  alignof(Fn) <= alignof(std::max_align_t) &&
                  std::is_nothrow_move_constructible_v<Fn>) {
      ::new (static_cast<void*>(buf_)) Fn(std::forward<F>(f));
      ops_ = inline_ops<Fn>();
    } else {
      ::new (static_cast<void*>(buf_)) Fn*(new Fn(std::forward<F>(f)));
      ops_ = heap_ops<Fn>();
    }
  }

  EventAction(EventAction&& other) noexcept { move_from(other); }

  EventAction& operator=(EventAction&& other) noexcept {
    if (this != &other) {
      reset();
      move_from(other);
    }
    return *this;
  }

  EventAction(const EventAction&) = delete;
  EventAction& operator=(const EventAction&) = delete;

  ~EventAction() { reset(); }

  /// Invokes the callable. Precondition: non-empty.
  void operator()() { ops_->invoke(buf_); }

  [[nodiscard]] explicit operator bool() const noexcept {
    return ops_ != nullptr;
  }

  /// Destroys the held callable (if any) and becomes empty.
  void reset() noexcept {
    if (ops_ != nullptr) {
      ops_->destroy(buf_);
      ops_ = nullptr;
    }
  }

 private:
  struct Ops {
    void (*invoke)(void* buf);
    /// Move-constructs dst's storage from src's and destroys src's.
    void (*relocate)(void* dst, void* src);
    void (*destroy)(void* buf);
  };

  template <typename Fn>
  static const Ops* inline_ops() {
    static constexpr Ops ops = {
        [](void* b) { (*static_cast<Fn*>(b))(); },
        [](void* dst, void* src) {
          ::new (dst) Fn(std::move(*static_cast<Fn*>(src)));
          static_cast<Fn*>(src)->~Fn();
        },
        [](void* b) { static_cast<Fn*>(b)->~Fn(); },
    };
    return &ops;
  }

  template <typename Fn>
  static const Ops* heap_ops() {
    static constexpr Ops ops = {
        [](void* b) { (**static_cast<Fn**>(b))(); },
        [](void* dst, void* src) {
          ::new (dst) Fn*(*static_cast<Fn**>(src));
        },
        [](void* b) { delete *static_cast<Fn**>(b); },
    };
    return &ops;
  }

  void move_from(EventAction& other) noexcept {
    if (other.ops_ != nullptr) {
      ops_ = other.ops_;
      ops_->relocate(buf_, other.buf_);
      other.ops_ = nullptr;
    }
  }

  alignas(std::max_align_t) unsigned char buf_[kInlineSize];
  const Ops* ops_ = nullptr;
};

}  // namespace svk::sim
