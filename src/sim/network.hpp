// Simulated datagram network.
//
// Models the testbed the paper used: hosts on a private Gigabit segment.
// Links add a fixed latency, optional uniform jitter, and optional Bernoulli
// loss. The payload type is a template parameter so the network layer stays
// independent of the SIP stack (instantiated with sip::MessagePtr by the
// transport layer).
//
// Fault injection (src/fault) layers on top through a NetworkFaultState
// overlay: crashed ("down") hosts, forced-down directed links, and
// loss/latency disturbances are consulted on every send without touching
// the configured LinkParams — reverting a fault restores the exact
// pre-fault behaviour, and a run with no faults installed draws the same
// random numbers as before the overlay existed.
#pragma once

#include <cassert>
#include <cstdint>
#include <functional>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "common/rng.hpp"
#include "common/sim_time.hpp"
#include "common/types.hpp"
#include "obs/sinks.hpp"
#include "obs/trace.hpp"
#include "sim/simulator.hpp"

namespace svk::sim {

/// Per-link transmission characteristics.
struct LinkParams {
  SimTime latency = SimTime::micros(100);  // one-way propagation
  SimTime jitter;                          // uniform extra in [0, jitter]
  double loss_probability = 0.0;           // i.i.d. per-datagram drop
};

/// Datagram delivery counters, per network.
struct NetworkStats {
  std::uint64_t sent = 0;
  std::uint64_t delivered = 0;
  std::uint64_t dropped_loss = 0;       // random link loss
  std::uint64_t dropped_no_route = 0;   // destination not attached or down
  std::uint64_t dropped_host_down = 0;  // sender crashed (fault injection)
  std::uint64_t dropped_link_down = 0;  // link forced down / partition
  std::uint64_t dropped_burst = 0;      // fault-injected extra loss
};

/// Mutable fault overlay consulted by Network::send. Non-templated so the
/// fault injector can manipulate it without knowing the payload type. All
/// state is reversible; an empty overlay is behaviourally invisible.
class NetworkFaultState {
 public:
  /// Extra Bernoulli loss and/or added one-way latency on a directed link.
  struct Disturbance {
    double extra_loss = 0.0;
    SimTime extra_latency;
  };

  /// Marks a host crashed: it neither transmits nor receives until cleared.
  void set_host_down(Address addr, bool down) {
    if (down) {
      down_hosts_.insert(addr.value());
    } else {
      down_hosts_.erase(addr.value());
    }
  }
  [[nodiscard]] bool host_down(Address addr) const {
    return down_hosts_.contains(addr.value());
  }

  /// Forces a directed link down (datagrams are dropped at send time).
  void set_link_down(Address from, Address to, bool down) {
    if (down) {
      down_links_.insert(key(from, to));
    } else {
      down_links_.erase(key(from, to));
    }
  }
  [[nodiscard]] bool link_down(Address from, Address to) const {
    return down_links_.contains(key(from, to));
  }

  /// Installs a loss/latency disturbance on a directed link. Address{0} for
  /// both endpoints addresses every link (network-wide burst).
  void set_disturbance(Address from, Address to, Disturbance d) {
    disturbances_[key(from, to)] = d;
  }
  void clear_disturbance(Address from, Address to) {
    disturbances_.erase(key(from, to));
  }
  /// The disturbance applying to (from, to): the exact pair wins over the
  /// network-wide wildcard; nullptr when neither exists.
  [[nodiscard]] const Disturbance* disturbance(Address from,
                                               Address to) const {
    if (disturbances_.empty()) return nullptr;
    if (const auto it = disturbances_.find(key(from, to));
        it != disturbances_.end()) {
      return &it->second;
    }
    if (const auto it = disturbances_.find(0); it != disturbances_.end()) {
      return &it->second;
    }
    return nullptr;
  }

  /// Fast-path guard: true when any fault is currently installed.
  [[nodiscard]] bool any() const {
    return !down_hosts_.empty() || !down_links_.empty() ||
           !disturbances_.empty();
  }

  static std::uint64_t key(Address from, Address to) {
    return (static_cast<std::uint64_t>(from.value()) << 32) | to.value();
  }

 private:
  std::unordered_set<std::uint32_t> down_hosts_;
  std::unordered_set<std::uint64_t> down_links_;
  std::unordered_map<std::uint64_t, Disturbance> disturbances_;
};

/// A datagram network between attached hosts.
///
/// \tparam Payload  copyable handle delivered to the receiver (typically a
///                  shared_ptr to an immutable message)
template <typename Payload>
class Network {
 public:
  /// Receiver callback: (source address, payload).
  using Handler = std::function<void(Address, Payload)>;

  Network(Simulator& sim, Rng rng) : sim_(sim), rng_(rng) {}

  /// Registers (or replaces) the host listening on `addr`.
  void attach(Address addr, Handler handler) {
    hosts_[addr] = std::move(handler);
  }

  void detach(Address addr) { hosts_.erase(addr); }

  /// Sets the default link characteristics used where no per-pair link is
  /// configured.
  void set_default_link(LinkParams params) { default_link_ = params; }

  /// Sets a directed per-pair link override.
  void set_link(Address from, Address to, LinkParams params) {
    links_[NetworkFaultState::key(from, to)] = params;
  }

  /// The fault overlay (crashes, down links, bursts) — see NetworkFaultState.
  [[nodiscard]] NetworkFaultState& faults() { return faults_; }
  [[nodiscard]] const NetworkFaultState& faults() const { return faults_; }

  /// Read-only wire taps for the checking subsystem (src/check). The send
  /// tap fires for every send attempt, before fault/loss evaluation — a
  /// checker validates the *sender's* behaviour, which loss downstream must
  /// not excuse. The deliver tap fires only for datagrams actually handed
  /// to the destination's handler (a crashed destination sees nothing).
  /// Null (the default) disables the tap; taps must not mutate anything the
  /// simulation reads, so checked runs stay bit-identical.
  using WireTap = std::function<void(Address, Address, const Payload&)>;
  void set_send_tap(WireTap tap) { send_tap_ = std::move(tap); }
  void set_deliver_tap(WireTap tap) { deliver_tap_ = std::move(tap); }

  /// Sends a datagram. Delivery (or silent loss) happens after the link
  /// latency; UDP semantics, no delivery guarantee, no reordering within a
  /// link (FIFO scheduling preserves send order for equal latencies). Link
  /// and sender fault state is evaluated at send time, destination
  /// reachability at delivery time (a host that crashes mid-flight still
  /// loses the datagram).
  void send(Address from, Address to, Payload payload) {
    ++stats_.sent;
    if (send_tap_) send_tap_(from, to, payload);
    const NetworkFaultState::Disturbance* burst = nullptr;
    if (faults_.any()) {
      if (faults_.host_down(from)) {
        // A crashed host's CPU may still drain scheduled work; its output
        // goes nowhere.
        ++stats_.dropped_host_down;
        trace_drop("drop_tx_host_down", from, to);
        return;
      }
      if (faults_.link_down(from, to)) {
        ++stats_.dropped_link_down;
        trace_drop("drop_link_down", from, to);
        return;
      }
      burst = faults_.disturbance(from, to);
    }
    const LinkParams& link = link_for(from, to);
    if (link.loss_probability > 0.0 &&
        rng_.bernoulli(link.loss_probability)) {
      ++stats_.dropped_loss;
      return;
    }
    if (burst != nullptr && burst->extra_loss > 0.0 &&
        rng_.bernoulli(burst->extra_loss)) {
      ++stats_.dropped_burst;
      trace_drop("drop_loss_burst", from, to);
      return;
    }
    SimTime delay = link.latency;
    if (link.jitter > SimTime{}) {
      delay += SimTime::nanos(static_cast<std::int64_t>(
          rng_.uniform() * static_cast<double>(link.jitter.ns())));
    }
    if (burst != nullptr) delay += burst->extra_latency;
    sim_.schedule(delay, [this, from, to, payload = std::move(payload)] {
      auto it = hosts_.find(to);
      if (it == hosts_.end() || faults_.host_down(to)) {
        ++stats_.dropped_no_route;
        ++no_route_by_dest_[to.value()];
        trace_drop("drop_no_route", from, to);
        return;
      }
      ++stats_.delivered;
      if (deliver_tap_) deliver_tap_(from, to, payload);
      it->second(from, payload);
    });
  }

  [[nodiscard]] const NetworkStats& stats() const { return stats_; }

  /// Datagrams that died because `dest` was unreachable (detached or
  /// crashed), so tests can assert *where* traffic was lost.
  [[nodiscard]] std::uint64_t no_route_drops(Address dest) const {
    const auto it = no_route_by_dest_.find(dest.value());
    return it != no_route_by_dest_.end() ? it->second : 0;
  }
  [[nodiscard]] const std::unordered_map<std::uint32_t, std::uint64_t>&
  no_route_drops_by_dest() const {
    return no_route_by_dest_;
  }

 private:
  void trace_drop(std::string_view name, Address from, Address to) {
    if (const obs::Sinks& obs = sim_.obs(); obs.tracer != nullptr) {
      obs.tracer->instant(name, "net", sim_.now(), to.value(), "from",
                          static_cast<double>(from.value()), "to",
                          static_cast<double>(to.value()));
    }
  }

  const LinkParams& link_for(Address from, Address to) const {
    auto it = links_.find(NetworkFaultState::key(from, to));
    return it != links_.end() ? it->second : default_link_;
  }

  Simulator& sim_;
  Rng rng_;
  LinkParams default_link_;
  std::unordered_map<Address, Handler> hosts_;
  std::unordered_map<std::uint64_t, LinkParams> links_;
  std::unordered_map<std::uint32_t, std::uint64_t> no_route_by_dest_;
  NetworkFaultState faults_;
  NetworkStats stats_;
  WireTap send_tap_;
  WireTap deliver_tap_;
};

}  // namespace svk::sim
