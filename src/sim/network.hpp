// Simulated datagram network.
//
// Models the testbed the paper used: hosts on a private Gigabit segment.
// Links add a fixed latency, optional uniform jitter, and optional Bernoulli
// loss. The payload type is a template parameter so the network layer stays
// independent of the SIP stack (instantiated with sip::MessagePtr by the
// transport layer).
//
// Fault injection (src/fault) layers on top through a NetworkFaultState
// overlay: crashed ("down") hosts, forced-down directed links, and
// loss/latency disturbances are consulted on every send without touching
// the configured LinkParams — reverting a fault restores the exact
// pre-fault behaviour, and a run with no faults installed draws the same
// random numbers as before the overlay existed.
//
// Sharded runs. Constructed over a ShardSet, the network routes every
// datagram by destination shard: same-shard deliveries go straight into the
// destination's wheel; cross-shard ones travel through the set's mailboxes
// with the order key the *sender's* simulator allocated, so the receiver
// orders them exactly as a serial run would. All per-send randomness
// (loss, burst loss, jitter) comes from a counter-based per-datagram
// generator — seeded by (network seed, link pair, per-pair datagram index)
// — instead of a shared draw-order-dependent stream, so the draws are
// identical no matter how sends from different hosts interleave. Mutable
// counters (stats, no-route maps, pair counters) are kept per shard and
// aggregated on read.
#pragma once

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <functional>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "common/hash.hpp"
#include "common/rng.hpp"
#include "common/sim_time.hpp"
#include "common/types.hpp"
#include "obs/sinks.hpp"
#include "obs/trace.hpp"
#include "sim/parallel_sim.hpp"
#include "sim/simulator.hpp"

namespace svk::sim {

/// Per-link transmission characteristics.
struct LinkParams {
  SimTime latency = SimTime::micros(100);  // one-way propagation
  SimTime jitter;                          // uniform extra in [0, jitter]
  double loss_probability = 0.0;           // i.i.d. per-datagram drop
};

/// Datagram delivery counters, per network.
struct NetworkStats {
  std::uint64_t sent = 0;
  std::uint64_t delivered = 0;
  std::uint64_t dropped_loss = 0;       // random link loss
  std::uint64_t dropped_no_route = 0;   // destination not attached or down
  std::uint64_t dropped_host_down = 0;  // sender crashed (fault injection)
  std::uint64_t dropped_link_down = 0;  // link forced down / partition
  std::uint64_t dropped_burst = 0;      // fault-injected extra loss
};

/// Mutable fault overlay consulted by Network::send. Non-templated so the
/// fault injector can manipulate it without knowing the payload type. All
/// state is reversible; an empty overlay is behaviourally invisible.
class NetworkFaultState {
 public:
  /// Extra Bernoulli loss and/or added one-way latency on a directed link.
  struct Disturbance {
    double extra_loss = 0.0;
    SimTime extra_latency;
  };

  /// Marks a host crashed: it neither transmits nor receives until cleared.
  void set_host_down(Address addr, bool down) {
    if (down) {
      down_hosts_.insert(addr.value());
    } else {
      down_hosts_.erase(addr.value());
    }
  }
  [[nodiscard]] bool host_down(Address addr) const {
    return down_hosts_.contains(addr.value());
  }

  /// Forces a directed link down (datagrams are dropped at send time).
  void set_link_down(Address from, Address to, bool down) {
    if (down) {
      down_links_.insert(key(from, to));
    } else {
      down_links_.erase(key(from, to));
    }
  }
  [[nodiscard]] bool link_down(Address from, Address to) const {
    return down_links_.contains(key(from, to));
  }

  /// Installs a loss/latency disturbance on a directed link. Address{0} for
  /// both endpoints addresses every link (network-wide burst).
  void set_disturbance(Address from, Address to, Disturbance d) {
    disturbances_[key(from, to)] = d;
  }
  void clear_disturbance(Address from, Address to) {
    disturbances_.erase(key(from, to));
  }
  /// The disturbance applying to (from, to): the exact pair wins over the
  /// network-wide wildcard; nullptr when neither exists.
  [[nodiscard]] const Disturbance* disturbance(Address from,
                                               Address to) const {
    if (disturbances_.empty()) return nullptr;
    if (const auto it = disturbances_.find(key(from, to));
        it != disturbances_.end()) {
      return &it->second;
    }
    if (const auto it = disturbances_.find(0); it != disturbances_.end()) {
      return &it->second;
    }
    return nullptr;
  }

  /// Fast-path guard: true when any fault is currently installed.
  [[nodiscard]] bool any() const {
    return !down_hosts_.empty() || !down_links_.empty() ||
           !disturbances_.empty();
  }

  static std::uint64_t key(Address from, Address to) {
    return (static_cast<std::uint64_t>(from.value()) << 32) | to.value();
  }

 private:
  std::unordered_set<std::uint32_t> down_hosts_;
  std::unordered_set<std::uint64_t> down_links_;
  std::unordered_map<std::uint64_t, Disturbance> disturbances_;
};

/// A datagram network between attached hosts.
///
/// \tparam Payload  copyable handle delivered to the receiver (typically a
///                  shared_ptr to an immutable message)
template <typename Payload>
class Network {
 public:
  /// Receiver callback: (source address, payload).
  using Handler = std::function<void(Address, Payload)>;

  /// Single-simulator (serial) network.
  Network(Simulator& sim, Rng rng)
      : home_sim_(&sim), seed_(rng.next()), per_shard_(1) {}

  /// Shard-routed network: datagrams execute on the destination host's
  /// shard. With a 1-shard set this is behaviourally identical to the
  /// serial constructor.
  Network(ShardSet& shards, Rng rng)
      : shards_(&shards),
        home_sim_(&shards.shard(0)),
        seed_(rng.next()),
        per_shard_(shards.shard_count()) {}

  /// Registers (or replaces) the host listening on `addr`. Setup-time
  /// only: the host table is read lock-free by every shard during a run.
  void attach(Address addr, Handler handler) {
    hosts_[addr] = std::move(handler);
  }

  void detach(Address addr) { hosts_.erase(addr); }

  /// Sets the default link characteristics used where no per-pair link is
  /// configured.
  void set_default_link(LinkParams params) {
    default_link_ = params;
    recompute_min_latency();
  }

  /// Sets a directed per-pair link override.
  void set_link(Address from, Address to, LinkParams params) {
    links_[NetworkFaultState::key(from, to)] = params;
    recompute_min_latency();
  }

  /// The smallest configured one-way latency — the parallel engine's
  /// conservative lookahead bound (jitter and fault disturbances only ever
  /// add latency, so this stays a valid lower bound under faults).
  [[nodiscard]] SimTime min_latency() const { return min_latency_; }

  /// The fault overlay (crashes, down links, bursts) — see NetworkFaultState.
  [[nodiscard]] NetworkFaultState& faults() { return faults_; }
  [[nodiscard]] const NetworkFaultState& faults() const { return faults_; }

  /// Read-only wire taps for the checking subsystem (src/check). The send
  /// tap fires for every send attempt, before fault/loss evaluation — a
  /// checker validates the *sender's* behaviour, which loss downstream must
  /// not excuse. The deliver tap fires only for datagrams actually handed
  /// to the destination's handler (a crashed destination sees nothing).
  /// Null (the default) disables the tap; taps must not mutate anything the
  /// simulation reads, so checked runs stay bit-identical.
  using WireTap = std::function<void(Address, Address, const Payload&)>;
  void set_send_tap(WireTap tap) { send_tap_ = std::move(tap); }
  void set_deliver_tap(WireTap tap) { deliver_tap_ = std::move(tap); }

  /// Sends a datagram. Delivery (or silent loss) happens after the link
  /// latency; UDP semantics, no delivery guarantee, no reordering within a
  /// link (FIFO scheduling preserves send order for equal latencies). Link
  /// and sender fault state is evaluated at send time, destination
  /// reachability at delivery time (a host that crashes mid-flight still
  /// loses the datagram).
  void send(Address from, Address to, Payload payload) {
    // Everything mutable on the send path is per-shard: the sender's event
    // is executing on `from`'s shard thread.
    Simulator& ssim = sim_for(from);
    PerShard& ps = per_shard_[shard_idx(from)];
    ++ps.stats.sent;
    if (send_tap_) send_tap_(from, to, payload);
    const NetworkFaultState::Disturbance* burst = nullptr;
    if (faults_.any()) {
      if (faults_.host_down(from)) {
        // A crashed host's CPU may still drain scheduled work; its output
        // goes nowhere.
        ++ps.stats.dropped_host_down;
        trace_drop(ssim, "drop_tx_host_down", from, to);
        return;
      }
      if (faults_.link_down(from, to)) {
        ++ps.stats.dropped_link_down;
        trace_drop(ssim, "drop_link_down", from, to);
        return;
      }
      burst = faults_.disturbance(from, to);
    }
    const LinkParams& link = link_for(from, to);
    SimTime delay = link.latency;
    const bool lossy = link.loss_probability > 0.0;
    const bool bursty = burst != nullptr && burst->extra_loss > 0.0;
    const bool jittery = link.jitter > SimTime{};
    if (lossy || bursty || jittery) {
      // Per-datagram counter-based generator: the draws depend only on the
      // link pair and this pair's datagram index — both reproducible under
      // any shard count — never on how sends from other hosts interleave.
      const std::uint64_t pair = NetworkFaultState::key(from, to);
      Rng draw(datagram_seed(pair, ++ps.pair_seq[pair]));
      if (lossy && draw.bernoulli(link.loss_probability)) {
        ++ps.stats.dropped_loss;
        return;
      }
      if (bursty && draw.bernoulli(burst->extra_loss)) {
        ++ps.stats.dropped_burst;
        trace_drop(ssim, "drop_loss_burst", from, to);
        return;
      }
      if (jittery) {
        delay += SimTime::nanos(static_cast<std::int64_t>(
            draw.uniform() * static_cast<double>(link.jitter.ns())));
      }
    }
    if (burst != nullptr) delay += burst->extra_latency;
    // The key is allocated on the sending shard (it encodes the sender's
    // identity and history); the event executes under the receiver's locus
    // on the receiver's shard.
    const SimTime at = ssim.now() + delay;
    const OrderKey key = ssim.allocate_order_key();
    EventAction deliver = [this, from, to,
                           payload = std::move(payload)]() mutable {
      deliver_now(from, to, payload);
    };
    if (shards_ != nullptr) {
      const std::size_t src = shards_->shard_of(from.value());
      const std::size_t dst = shards_->shard_of(to.value());
      if (src != dst) {
        shards_->post_remote(src, dst,
                             RemoteEvent{at, key, to.value(),
                                         std::move(deliver)});
        return;
      }
    }
    ssim.insert_keyed(at, key, to.value(), std::move(deliver));
  }

  /// Aggregated counters across shards (recomputed on every call).
  [[nodiscard]] const NetworkStats& stats() const {
    agg_stats_ = NetworkStats{};
    for (const PerShard& ps : per_shard_) {
      agg_stats_.sent += ps.stats.sent;
      agg_stats_.delivered += ps.stats.delivered;
      agg_stats_.dropped_loss += ps.stats.dropped_loss;
      agg_stats_.dropped_no_route += ps.stats.dropped_no_route;
      agg_stats_.dropped_host_down += ps.stats.dropped_host_down;
      agg_stats_.dropped_link_down += ps.stats.dropped_link_down;
      agg_stats_.dropped_burst += ps.stats.dropped_burst;
    }
    return agg_stats_;
  }

  /// Datagrams that died because `dest` was unreachable (detached or
  /// crashed), so tests can assert *where* traffic was lost.
  [[nodiscard]] std::uint64_t no_route_drops(Address dest) const {
    std::uint64_t total = 0;
    for (const PerShard& ps : per_shard_) {
      const auto it = ps.no_route_by_dest.find(dest.value());
      if (it != ps.no_route_by_dest.end()) total += it->second;
    }
    return total;
  }
  [[nodiscard]] const std::unordered_map<std::uint32_t, std::uint64_t>&
  no_route_drops_by_dest() const {
    agg_no_route_.clear();
    for (const PerShard& ps : per_shard_) {
      for (const auto& [dest, n] : ps.no_route_by_dest) {
        agg_no_route_[dest] += n;
      }
    }
    return agg_no_route_;
  }

 private:
  /// Per-shard mutable state, cache-line separated: each shard's worker
  /// only ever touches its own entry during a window.
  struct alignas(64) PerShard {
    NetworkStats stats;
    std::unordered_map<std::uint32_t, std::uint64_t> no_route_by_dest;
    /// Datagram index per directed link — the counter of the per-datagram
    /// RNG. A pair's sends all originate on one shard, so no two shards
    /// ever count the same pair.
    std::unordered_map<std::uint64_t, std::uint64_t> pair_seq;
  };

  void deliver_now(Address from, Address to, const Payload& payload) {
    // Executing on `to`'s shard.
    PerShard& ps = per_shard_[shard_idx(to)];
    auto it = hosts_.find(to);
    if (it == hosts_.end() || faults_.host_down(to)) {
      ++ps.stats.dropped_no_route;
      ++ps.no_route_by_dest[to.value()];
      trace_drop(sim_for(to), "drop_no_route", from, to);
      return;
    }
    ++ps.stats.delivered;
    if (deliver_tap_) deliver_tap_(from, to, payload);
    it->second(from, payload);
  }

  void trace_drop(Simulator& sim, std::string_view name, Address from,
                  Address to) {
    if (const obs::Sinks& obs = sim.obs(); obs.tracer != nullptr) {
      obs.tracer->instant(name, "net", sim.now(), to.value(), "from",
                          static_cast<double>(from.value()), "to",
                          static_cast<double>(to.value()));
    }
  }

  [[nodiscard]] Simulator& sim_for(Address a) {
    return shards_ != nullptr ? shards_->sim_for(a.value()) : *home_sim_;
  }
  [[nodiscard]] std::size_t shard_idx(Address a) const {
    return shards_ != nullptr ? shards_->shard_of(a.value()) : 0;
  }

  [[nodiscard]] std::uint64_t datagram_seed(std::uint64_t pair,
                                            std::uint64_t n) const {
    // Cheap mix; Rng's SplitMix64 seeding finishes the scrambling.
    // Delegates to the shared constant-pinned mixer: changing it would
    // change every loss/jitter draw and therefore every digest.
    return common::counter_seed(seed_, pair, n);
  }

  const LinkParams& link_for(Address from, Address to) const {
    auto it = links_.find(NetworkFaultState::key(from, to));
    return it != links_.end() ? it->second : default_link_;
  }

  void recompute_min_latency() {
    min_latency_ = default_link_.latency;
    for (const auto& [pair, params] : links_) {
      min_latency_ = std::min(min_latency_, params.latency);
    }
  }

  ShardSet* shards_ = nullptr;
  Simulator* home_sim_;
  std::uint64_t seed_;
  LinkParams default_link_;
  SimTime min_latency_ = LinkParams{}.latency;
  std::unordered_map<Address, Handler> hosts_;
  std::unordered_map<std::uint64_t, LinkParams> links_;
  NetworkFaultState faults_;
  std::vector<PerShard> per_shard_;
  mutable NetworkStats agg_stats_;
  mutable std::unordered_map<std::uint32_t, std::uint64_t> agg_no_route_;
  WireTap send_tap_;
  WireTap deliver_tap_;
};

}  // namespace svk::sim
