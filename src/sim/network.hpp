// Simulated datagram network.
//
// Models the testbed the paper used: hosts on a private Gigabit segment.
// Links add a fixed latency, optional uniform jitter, and optional Bernoulli
// loss. The payload type is a template parameter so the network layer stays
// independent of the SIP stack (instantiated with sip::MessagePtr by the
// transport layer).
#pragma once

#include <cassert>
#include <cstdint>
#include <unordered_map>
#include <utility>

#include "common/rng.hpp"
#include "common/sim_time.hpp"
#include "common/types.hpp"
#include "sim/simulator.hpp"

namespace svk::sim {

/// Per-link transmission characteristics.
struct LinkParams {
  SimTime latency = SimTime::micros(100);  // one-way propagation
  SimTime jitter;                          // uniform extra in [0, jitter]
  double loss_probability = 0.0;           // i.i.d. per-datagram drop
};

/// Datagram delivery counters, per network.
struct NetworkStats {
  std::uint64_t sent = 0;
  std::uint64_t delivered = 0;
  std::uint64_t dropped_loss = 0;      // random link loss
  std::uint64_t dropped_no_route = 0;  // destination not attached
};

/// A datagram network between attached hosts.
///
/// \tparam Payload  copyable handle delivered to the receiver (typically a
///                  shared_ptr to an immutable message)
template <typename Payload>
class Network {
 public:
  /// Receiver callback: (source address, payload).
  using Handler = std::function<void(Address, Payload)>;

  Network(Simulator& sim, Rng rng) : sim_(sim), rng_(rng) {}

  /// Registers (or replaces) the host listening on `addr`.
  void attach(Address addr, Handler handler) {
    hosts_[addr] = std::move(handler);
  }

  void detach(Address addr) { hosts_.erase(addr); }

  /// Sets the default link characteristics used where no per-pair link is
  /// configured.
  void set_default_link(LinkParams params) { default_link_ = params; }

  /// Sets a directed per-pair link override.
  void set_link(Address from, Address to, LinkParams params) {
    links_[key(from, to)] = params;
  }

  /// Sends a datagram. Delivery (or silent loss) happens after the link
  /// latency; UDP semantics, no delivery guarantee, no reordering within a
  /// link (FIFO scheduling preserves send order for equal latencies).
  void send(Address from, Address to, Payload payload) {
    ++stats_.sent;
    const LinkParams& link = link_for(from, to);
    if (link.loss_probability > 0.0 &&
        rng_.bernoulli(link.loss_probability)) {
      ++stats_.dropped_loss;
      return;
    }
    SimTime delay = link.latency;
    if (link.jitter > SimTime{}) {
      delay += SimTime::nanos(static_cast<std::int64_t>(
          rng_.uniform() * static_cast<double>(link.jitter.ns())));
    }
    sim_.schedule(delay, [this, from, to, payload = std::move(payload)] {
      auto it = hosts_.find(to);
      if (it == hosts_.end()) {
        ++stats_.dropped_no_route;
        return;
      }
      ++stats_.delivered;
      it->second(from, payload);
    });
  }

  [[nodiscard]] const NetworkStats& stats() const { return stats_; }

 private:
  static std::uint64_t key(Address from, Address to) {
    return (static_cast<std::uint64_t>(from.value()) << 32) | to.value();
  }

  const LinkParams& link_for(Address from, Address to) const {
    auto it = links_.find(key(from, to));
    return it != links_.end() ? it->second : default_link_;
  }

  Simulator& sim_;
  Rng rng_;
  LinkParams default_link_;
  std::unordered_map<Address, Handler> hosts_;
  std::unordered_map<std::uint64_t, LinkParams> links_;
  NetworkStats stats_;
};

}  // namespace svk::sim
