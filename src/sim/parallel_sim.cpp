#include "sim/parallel_sim.hpp"

#include <algorithm>
#include <cassert>
#include <utility>

namespace svk::sim {

ShardSet::ShardSet(std::size_t shards) {
  assert(shards >= 1);
  sims_.reserve(shards);
  for (std::size_t i = 0; i < shards; ++i) {
    sims_.push_back(std::make_unique<Simulator>());
  }
  mailboxes_.resize(shards * shards);
  rank_shard_.push_back(0);  // rank 0: the harness, pinned to shard 0
}

ShardSet::~ShardSet() {
  if (!workers_.empty()) {
    stop_ = true;
    start_barrier_->arrive_and_wait();
    for (std::thread& w : workers_) w.join();
  }
}

void ShardSet::assign_rank(std::uint32_t rank, int shard) {
  if (rank >= rank_shard_.size()) rank_shard_.resize(rank + 1, 0);
  if (rank == 0) return;
  if (shard >= 0) {
    rank_shard_[rank] = static_cast<std::size_t>(shard) % sims_.size();
  } else {
    rank_shard_[rank] = next_rr_shard_;
    next_rr_shard_ = (next_rr_shard_ + 1) % sims_.size();
  }
}

void ShardSet::schedule_global(SimTime at, std::function<void()> action) {
  if (sims_.size() == 1) {
    // Serial: a rank-0 event sorts before every same-tick host event —
    // exactly the barrier semantics, with no machinery.
    assert(sims_[0]->ambient_locus() == 0);
    sims_[0]->schedule_at(at, EventAction(std::move(action)));
    return;
  }
  globals_.push_back(GlobalEvent{at, next_global_seq_++, std::move(action)});
  globals_dirty_ = true;
}

void ShardSet::apply_globals_through(SimTime bound) {
  while (next_global_ < globals_.size() &&
         globals_[next_global_].at <= bound) {
    // Fault hooks read shard clocks (e.g. CpuQueue backlog rescaling), so
    // pin every shard to exactly the event time first — the serial engine
    // has now == T while the fault event executes.
    for (auto& sim : sims_) sim->advance_to(globals_[next_global_].at);
    globals_[next_global_].action();
    ++next_global_;
  }
}

void ShardSet::drain_mailboxes() {
  const std::size_t k = sims_.size();
  for (std::size_t src = 0; src < k; ++src) {
    for (std::size_t dst = 0; dst < k; ++dst) {
      std::vector<RemoteEvent>& box = mailboxes_[src * k + dst];
      for (RemoteEvent& ev : box) {
        assert(ev.at >= window_end_ && "cross-shard event inside the window");
        sims_[dst]->insert_keyed(ev.at, ev.key, ev.locus,
                                 std::move(ev.action));
      }
      box.clear();
    }
  }
}

void ShardSet::start_threads() {
  if (!workers_.empty()) return;
  const std::ptrdiff_t participants =
      static_cast<std::ptrdiff_t>(sims_.size()) + 1;
  start_barrier_ = std::make_unique<std::barrier<>>(participants);
  end_barrier_ = std::make_unique<std::barrier<>>(participants);
  workers_.reserve(sims_.size());
  for (std::size_t i = 0; i < sims_.size(); ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
}

void ShardSet::worker_loop(std::size_t shard) {
  for (;;) {
    start_barrier_->arrive_and_wait();
    if (stop_) return;
    sims_[shard]->run_window(window_end_);
    end_barrier_->arrive_and_wait();
  }
}

void ShardSet::run_until(SimTime until) {
  if (sims_.size() == 1) {
    sims_[0]->run_until(until);
    now_ = std::max(now_, until);
    if (barrier_hook_) barrier_hook_();
    return;
  }
  assert(lookahead_ > SimTime{} && "parallel run needs positive lookahead");
  start_threads();
  if (globals_dirty_) {
    std::stable_sort(globals_.begin() + static_cast<std::ptrdiff_t>(
                                            next_global_),
                     globals_.end(), [](const GlobalEvent& a,
                                        const GlobalEvent& b) {
                       return a.at < b.at;
                     });
    globals_dirty_ = false;
  }
  const SimTime past_until = SimTime::nanos(until.ns() + 1);
  for (;;) {
    // Globals beyond `until` belong to a later run_until call.
    apply_globals_through(std::min(now_, until));
    if (now_ > until) break;
    SimTime end = std::min(past_until, now_ + lookahead_);
    if (next_global_ < globals_.size()) {
      end = std::min(end, globals_[next_global_].at);
    }
    window_end_ = end;
    start_barrier_->arrive_and_wait();  // release workers into the window
    end_barrier_->arrive_and_wait();    // wait for every shard to finish
    drain_mailboxes();
    if (barrier_hook_) barrier_hook_();
    ++windows_;
    now_ = end;
  }
  for (auto& sim : sims_) sim->advance_to(until);
  now_ = until;
}

}  // namespace svk::sim
