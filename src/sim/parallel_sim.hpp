// ShardSet — conservative parallel discrete-event simulation within one run.
//
// Hosts are partitioned across K shards; each shard owns its hosts'
// CpuQueues and a private Simulator (timer wheel + clock). The fixed
// per-link latency is the lookahead bound: during a safe window
// [W, W + L) — L = the minimum latency of any configured link — no shard
// can affect another before W + L, so all shards execute their window
// concurrently without synchronizing. Cross-shard datagrams are posted to
// per-(src, dst) mailboxes (single writer: the sending shard's thread;
// single reader: the coordinator between windows) and transplanted into the
// destination wheel at the window barrier.
//
// Determinism. Every event carries an order key allocated by its *sender's*
// simulator — (locus rank << kLocusSeqBits | per-locus seq), see
// timer_wheel.hpp. A host executes its events in (time, key) order no
// matter which shard it lives on, and allocates the same keys for its
// follow-on events, so by induction the whole run's per-host event
// sequences — and therefore every RunRecord digest — are bit-identical for
// any shard count, including the serial engine (a ShardSet of 1 runs the
// plain Simulator loop with no threads and no windows).
//
// Global events (fault-plan applications, which mutate shared overlay state
// like NetworkFaultState) do not live in any shard's wheel when K > 1: they
// are applied by the coordinator at a window barrier whose end is clamped
// to the event's time, after every shard has finished all events < T and
// advanced its clock to exactly T. A serial run orders the same events
// under locus rank 0, which sorts before every host event of the same tick
// — the same relative order the barrier imposes.
#pragma once

#include <barrier>
#include <cstdint>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "common/sim_time.hpp"
#include "sim/event_action.hpp"
#include "sim/simulator.hpp"

namespace svk::sim {

/// A cross-shard event in flight: the sender allocated the key on its own
/// simulator; the coordinator inserts it into the destination wheel.
struct RemoteEvent {
  SimTime at;
  OrderKey key = 0;
  std::uint32_t locus = 0;
  EventAction action;
};

class ShardSet {
 public:
  /// `shards` >= 1. One Simulator per shard; threads are only created for
  /// K > 1, lazily on the first run_until.
  explicit ShardSet(std::size_t shards);
  ~ShardSet();

  ShardSet(const ShardSet&) = delete;
  ShardSet& operator=(const ShardSet&) = delete;

  [[nodiscard]] std::size_t shard_count() const { return sims_.size(); }
  [[nodiscard]] Simulator& shard(std::size_t idx) { return *sims_[idx]; }

  /// Assigns host `rank` to a shard (round-robin unless `shard` >= 0).
  /// Rank 0 (the harness locus) always maps to shard 0.
  void assign_rank(std::uint32_t rank, int shard = -1);
  [[nodiscard]] std::size_t shard_of(std::uint32_t rank) const {
    return rank < rank_shard_.size() ? rank_shard_[rank] : 0;
  }
  [[nodiscard]] Simulator& sim_for(std::uint32_t rank) {
    return *sims_[shard_of(rank)];
  }

  /// The conservative lookahead: must be <= the minimum latency of any
  /// link that can carry cross-shard traffic. The TestBed refreshes this
  /// from the Network before every run.
  void set_lookahead(SimTime lookahead) { lookahead_ = lookahead; }
  [[nodiscard]] SimTime lookahead() const { return lookahead_; }

  /// Posts a cross-shard event. Caller must be shard `src`'s thread (or
  /// the coordinator between windows); `ev.at` must be >= the current
  /// window's end — guaranteed by the lookahead bound.
  void post_remote(std::size_t src, std::size_t dst, RemoteEvent ev) {
    mailboxes_[src * sims_.size() + dst].push_back(std::move(ev));
  }

  /// Schedules a coordinator-applied global event (fault injection): runs
  /// at a window barrier at exactly `at`, after all shard events < `at`,
  /// before all shard events >= `at`. Same-time globals run in schedule
  /// order. With K == 1 this is a plain rank-0 schedule on the only shard,
  /// which has identical ordering semantics.
  void schedule_global(SimTime at, std::function<void()> action);

  /// A hook run by the coordinator after every window barrier (and once
  /// per run_until for K == 1): the TestBed uses it to drain per-shard
  /// observability into the primary bundle while all workers are parked.
  void set_barrier_hook(std::function<void()> hook) {
    barrier_hook_ = std::move(hook);
  }

  /// Advances every shard through `until` inclusive (events at exactly
  /// `until` execute), exchanging cross-shard events at safe-window
  /// boundaries, then clamps every shard clock to `until`.
  void run_until(SimTime until);

  /// Completed simulation time (across run_until calls).
  [[nodiscard]] SimTime now() const { return now_; }

  /// Safe windows executed so far (diagnostics; 0 under K == 1).
  [[nodiscard]] std::uint64_t windows_run() const { return windows_; }

 private:
  struct GlobalEvent {
    SimTime at;
    std::uint64_t seq;  // schedule order, the same-time tie-break
    std::function<void()> action;
  };

  void start_threads();
  void worker_loop(std::size_t shard);
  /// Applies every pending global with time <= `bound` (coordinator only).
  void apply_globals_through(SimTime bound);
  /// Moves every mailbox event into its destination wheel (coordinator
  /// only; workers parked). Events must be >= the finished window's end.
  void drain_mailboxes();

  std::vector<std::unique_ptr<Simulator>> sims_;
  std::vector<std::size_t> rank_shard_;
  std::size_t next_rr_shard_{0};
  SimTime lookahead_ = SimTime::micros(100);
  SimTime now_;
  std::vector<std::vector<RemoteEvent>> mailboxes_;  // [src * K + dst]

  std::vector<GlobalEvent> globals_;  // sorted by (at, seq) from next_global_
  std::size_t next_global_{0};
  std::uint64_t next_global_seq_{0};
  bool globals_dirty_{false};

  std::function<void()> barrier_hook_;
  std::uint64_t windows_{0};

  // K > 1 threading. The coordinator publishes window_end_ and stop_,
  // then arrives at start_barrier_; workers run their shard's window and
  // arrive at end_barrier_. Both barriers order all writes, so the plain
  // members need no atomics.
  std::vector<std::thread> workers_;
  std::unique_ptr<std::barrier<>> start_barrier_;
  std::unique_ptr<std::barrier<>> end_barrier_;
  SimTime window_end_;
  bool stop_{false};
};

}  // namespace svk::sim
