#include "sim/simulator.hpp"

#include <utility>

#include "obs/metrics.hpp"

namespace svk::sim {

void Simulator::set_obs(const obs::Sinks& sinks) {
  obs_ = sinks;
  depth_series_ =
      obs_.metrics != nullptr ? &obs_.metrics->series("sim.pending_events")
                              : nullptr;
}

EventId Simulator::schedule(SimTime delay, Action action) {
  if (delay < SimTime{}) delay = SimTime{};
  return schedule_at(now_ + delay, std::move(action));
}

EventId Simulator::schedule_at(SimTime when, Action action) {
  if (when < now_) when = now_;
  const EventId id = next_id_++;
  queue_.push(Event{when, id, std::move(action)});
  pending_.insert(id);
  return id;
}

void Simulator::cancel(EventId id) {
  // Only ids that are still pending grow the tombstone set; cancelling an
  // already-run (or never-issued) id would otherwise leave a stale entry
  // that no queue pop ever reclaims.
  if (pending_.erase(id) != 0) cancelled_.insert(id);
}

bool Simulator::settle_top() {
  while (!queue_.empty()) {
    if (cancelled_.erase(queue_.top().id) == 0) return true;
    queue_.pop();
  }
  return false;
}

bool Simulator::step() {
  if (!settle_top()) return false;
  Event ev = queue_.top();
  queue_.pop();
  pending_.erase(ev.id);
  now_ = ev.at;
  ++executed_;
  // Event-queue depth sampled every 1024 events: cheap enough for the hot
  // loop, dense enough to see a runaway schedule in the metrics dump.
  if (depth_series_ != nullptr && (executed_ & 1023u) == 0) {
    depth_series_->sample(now_, static_cast<double>(pending_.size()));
  }
  ev.action();
  return true;
}

void Simulator::run_until(SimTime until) {
  while (settle_top() && queue_.top().at <= until) step();
  if (now_ < until) now_ = until;
}

void Simulator::run() {
  while (step()) {
  }
}

PeriodicTimer::PeriodicTimer(Simulator& sim, SimTime period,
                             std::function<void()> on_tick)
    : sim_(sim), period_(period), on_tick_(std::move(on_tick)) {}

PeriodicTimer::~PeriodicTimer() { stop(); }

void PeriodicTimer::start() {
  if (running_) return;
  running_ = true;
  arm();
}

void PeriodicTimer::stop() {
  if (!running_) return;
  running_ = false;
  sim_.cancel(pending_);
  pending_ = 0;
}

void PeriodicTimer::arm() {
  pending_ = sim_.schedule(period_, [this] {
    if (!running_) return;
    on_tick_();
    if (running_) arm();
  });
}

}  // namespace svk::sim
