#include "sim/simulator.hpp"

#include <utility>

#include "obs/metrics.hpp"

namespace svk::sim {

void Simulator::set_obs(const obs::Sinks& sinks) {
  obs_ = sinks;
  depth_series_ =
      obs_.metrics != nullptr ? &obs_.metrics->series("sim.pending_events")
                              : nullptr;
}

EventId Simulator::schedule(SimTime delay, Action action) {
  if (delay < SimTime{}) delay = SimTime{};
  return schedule_at(now_ + delay, std::move(action));
}

EventId Simulator::schedule_at(SimTime when, Action action) {
  if (when < now_) when = now_;
  return wheel_.insert(when, std::move(action));
}

EventId Simulator::reschedule(EventId id, SimTime delay, Action action) {
  wheel_.cancel(id);
  return schedule(delay, std::move(action));
}

void Simulator::cancel(EventId id) { wheel_.cancel(id); }

bool Simulator::step_until(SimTime limit) {
  SimTime at;
  EventAction action;
  if (!wheel_.pop_until(limit, &at, &action)) return false;
  now_ = at;
  ++executed_;
  // Event-queue depth sampled every 1024 events: cheap enough for the hot
  // loop, dense enough to see a runaway schedule in the metrics dump.
  if (depth_series_ != nullptr && (executed_ & 1023u) == 0) {
    depth_series_->sample(now_, static_cast<double>(wheel_.size()));
  }
  action();
  return true;
}

bool Simulator::step() { return step_until(SimTime::max()); }

void Simulator::run_until(SimTime until) {
  while (step_until(until)) {
  }
  if (now_ < until) now_ = until;
}

void Simulator::run() {
  while (step()) {
  }
}

PeriodicTimer::PeriodicTimer(Simulator& sim, SimTime period,
                             std::function<void()> on_tick)
    : sim_(sim), period_(period), on_tick_(std::move(on_tick)) {}

PeriodicTimer::~PeriodicTimer() { stop(); }

void PeriodicTimer::start() {
  if (running_) return;
  running_ = true;
  arm();
}

void PeriodicTimer::stop() {
  if (!running_) return;
  running_ = false;
  sim_.cancel(pending_);
  pending_ = 0;
}

void PeriodicTimer::arm() {
  pending_ = sim_.schedule(period_, [this] {
    if (!running_) return;
    on_tick_();
    if (running_) arm();
  });
}

}  // namespace svk::sim
