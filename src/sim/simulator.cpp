#include "sim/simulator.hpp"

#include <utility>

#include "obs/metrics.hpp"

namespace svk::sim {

void Simulator::set_obs(const obs::Sinks& sinks) {
  obs_ = sinks;
  depth_series_ =
      obs_.metrics != nullptr ? &obs_.metrics->series("sim.pending_events")
                              : nullptr;
}

OrderKey Simulator::allocate_order_key() {
  if (ambient_locus_ >= locus_seq_.size()) {
    locus_seq_.resize(static_cast<std::size_t>(ambient_locus_) + 1, 0);
  }
  return make_order_key(ambient_locus_, ++locus_seq_[ambient_locus_]);
}

EventId Simulator::schedule(SimTime delay, Action action) {
  if (delay < SimTime{}) delay = SimTime{};
  return schedule_at(now_ + delay, std::move(action));
}

EventId Simulator::schedule_at(SimTime when, Action action) {
  return schedule_at_for(ambient_locus_, when, std::move(action));
}

EventId Simulator::schedule_for(std::uint32_t locus, SimTime delay,
                                Action action) {
  if (delay < SimTime{}) delay = SimTime{};
  return schedule_at_for(locus, now_ + delay, std::move(action));
}

EventId Simulator::schedule_at_for(std::uint32_t locus, SimTime when,
                                   Action action) {
  if (when < now_) when = now_;
  return wheel_.insert_keyed(when, allocate_order_key(), locus,
                             std::move(action));
}

EventId Simulator::insert_keyed(SimTime at, OrderKey key, std::uint32_t locus,
                                Action action) {
  if (at < now_) at = now_;
  return wheel_.insert_keyed(at, key, locus, std::move(action));
}

EventId Simulator::reschedule(EventId id, SimTime delay, Action action) {
  wheel_.cancel(id);
  return schedule(delay, std::move(action));
}

void Simulator::cancel(EventId id) { wheel_.cancel(id); }

bool Simulator::step_until(SimTime limit) {
  SimTime at;
  std::uint32_t locus;
  EventAction action;
  if (!wheel_.pop_until(limit, &at, &locus, &action)) return false;
  now_ = at;
  ++executed_;
  // Event-queue depth sampled every 1024 events: cheap enough for the hot
  // loop, dense enough to see a runaway schedule in the metrics dump.
  if (depth_series_ != nullptr && (executed_ & 1023u) == 0) {
    depth_series_->sample(now_, static_cast<double>(wheel_.size()));
  }
  // The executing event's locus is ambient for its duration, so follow-on
  // schedules carry the host's identity; the harness locus is restored
  // afterwards (events can interleave with LocusScope-guarded setup).
  const std::uint32_t prev = ambient_locus_;
  ambient_locus_ = locus;
  action();
  ambient_locus_ = prev;
  return true;
}

bool Simulator::step() { return step_until(SimTime::max()); }

void Simulator::run_until(SimTime until) {
  while (step_until(until)) {
  }
  if (now_ < until) now_ = until;
}

void Simulator::run_window(SimTime end) {
  const SimTime limit = SimTime::nanos(end.ns() - 1);
  while (step_until(limit)) {
  }
}

void Simulator::run() {
  while (step()) {
  }
}

PeriodicTimer::PeriodicTimer(Simulator& sim, SimTime period,
                             std::function<void()> on_tick)
    : sim_(sim), period_(period), on_tick_(std::move(on_tick)) {}

PeriodicTimer::~PeriodicTimer() { stop(); }

void PeriodicTimer::start() {
  if (running_) return;
  running_ = true;
  arm();
}

void PeriodicTimer::stop() {
  if (!running_) return;
  running_ = false;
  sim_.cancel(pending_);
  pending_ = 0;
}

void PeriodicTimer::arm() {
  pending_ = sim_.schedule(period_, [this] {
    if (!running_) return;
    on_tick_();
    if (running_) arm();
  });
}

}  // namespace svk::sim
