#include "sim/simulator.hpp"

#include <utility>

namespace svk::sim {

EventId Simulator::schedule(SimTime delay, Action action) {
  if (delay < SimTime{}) delay = SimTime{};
  return schedule_at(now_ + delay, std::move(action));
}

EventId Simulator::schedule_at(SimTime when, Action action) {
  if (when < now_) when = now_;
  const EventId id = next_id_++;
  queue_.push(Event{when, id, std::move(action)});
  return id;
}

void Simulator::cancel(EventId id) {
  if (id != 0 && id < next_id_) cancelled_.insert(id);
}

bool Simulator::step() {
  while (!queue_.empty()) {
    Event ev = queue_.top();
    queue_.pop();
    if (auto it = cancelled_.find(ev.id); it != cancelled_.end()) {
      cancelled_.erase(it);
      continue;
    }
    now_ = ev.at;
    ++executed_;
    ev.action();
    return true;
  }
  return false;
}

void Simulator::run_until(SimTime until) {
  while (!queue_.empty()) {
    const Event& top = queue_.top();
    if (cancelled_.contains(top.id)) {
      cancelled_.erase(top.id);
      queue_.pop();
      continue;
    }
    if (top.at > until) break;
    step();
  }
  if (now_ < until) now_ = until;
}

void Simulator::run() {
  while (step()) {
  }
}

PeriodicTimer::PeriodicTimer(Simulator& sim, SimTime period,
                             std::function<void()> on_tick)
    : sim_(sim), period_(period), on_tick_(std::move(on_tick)) {}

PeriodicTimer::~PeriodicTimer() { stop(); }

void PeriodicTimer::start() {
  if (running_) return;
  running_ = true;
  arm();
}

void PeriodicTimer::stop() {
  if (!running_) return;
  running_ = false;
  sim_.cancel(pending_);
  pending_ = 0;
}

void PeriodicTimer::arm() {
  pending_ = sim_.schedule(period_, [this] {
    if (!running_) return;
    on_tick_();
    if (running_) arm();
  });
}

}  // namespace svk::sim
