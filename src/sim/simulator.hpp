// Discrete-event simulator.
//
// A single-threaded event loop over virtual time. Events scheduled for the
// same instant run in ascending (locus rank, per-locus sequence) order — a
// tie-break that is a pure function of which host scheduled the event and
// that host's own scheduling history, never of how hosts interleave. That
// makes every run bit-reproducible for a given seed and schedule, and —
// because the key survives re-partitioning hosts across shards — lets the
// conservative parallel engine (parallel_sim.hpp) produce bit-identical
// results for any shard count.
//
// The "ambient locus" is the rank (host address) charged for scheduling:
// while an event executes it is that event's locus, so follow-on schedules
// inherit the host's identity; outside event execution it is whatever the
// harness establishes with LocusScope (rank 0 = harness/setup).
//
// The pending-event store is a hierarchical timer wheel with a slab-pooled
// node per event (see timer_wheel.hpp): schedule and cancel are O(1),
// cancellation removes the event eagerly (no tombstones), and steady-state
// scheduling performs no heap allocation — the callable lives inline in the
// pooled node (EventAction small-buffer storage).
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "common/sim_time.hpp"
#include "obs/sinks.hpp"
#include "sim/event_action.hpp"
#include "sim/timer_wheel.hpp"

namespace svk::obs {
class TimeSeries;
}  // namespace svk::obs

namespace svk::sim {

/// The event loop. Not thread-safe by design (CP: the simulation is
/// deterministic and single-threaded; parallelism belongs outside the clock).
class Simulator {
 public:
  using Action = EventAction;

  /// Current virtual time.
  [[nodiscard]] SimTime now() const { return now_; }

  /// Schedules `action` to run `delay` after now, executing under the
  /// current ambient locus. Negative delays clamp to zero (run
  /// "immediately", after already-queued lower-key same-time events).
  EventId schedule(SimTime delay, Action action);

  /// Schedules `action` at an absolute time (clamped to now).
  EventId schedule_at(SimTime when, Action action);

  /// Schedules `action` to execute under locus `locus` (e.g. a datagram
  /// delivery charged to the receiving host). The order key is still
  /// allocated from the *ambient* locus — the scheduler's identity decides
  /// same-tick order; the execution locus decides who the event "is" while
  /// it runs (and, in the parallel engine, which shard runs it).
  EventId schedule_for(std::uint32_t locus, SimTime delay, Action action);
  EventId schedule_at_for(std::uint32_t locus, SimTime when, Action action);

  /// Inserts a fully-specified event: absolute time, explicit order key,
  /// execution locus. The parallel engine uses this to transplant
  /// cross-shard events with the key their sender allocated, so the
  /// receiving wheel orders them exactly as a serial run would have.
  EventId insert_keyed(SimTime at, OrderKey key, std::uint32_t locus,
                       Action action);

  /// Allocates the next order key of the ambient locus — for events whose
  /// insertion is deferred (cross-shard sends claim their key on the
  /// sending shard, then travel through a mailbox).
  OrderKey allocate_order_key();

  /// The locus new schedules are charged to. 0 outside event execution
  /// unless a LocusScope is active; the executing event's locus inside.
  [[nodiscard]] std::uint32_t ambient_locus() const { return ambient_locus_; }
  void set_ambient_locus(std::uint32_t locus) { ambient_locus_ = locus; }

  /// Cancels `id` (tolerating stale/zero ids) and schedules `action` after
  /// `delay` in one call — the timer-refresh idiom (RFC 3261 timer A
  /// doubling, timer C re-arm per provisional). Returns the new id.
  EventId reschedule(EventId id, SimTime delay, Action action);

  /// Cancels a pending event. Cancelling an already-run, already-cancelled
  /// or unknown id is a harmless no-op (it must not disturb the pending
  /// accounting — ids are routinely cancelled from inside their own action,
  /// e.g. PeriodicTimer::stop() within its own tick). Live events are
  /// removed eagerly: no tombstone outlives this call.
  void cancel(EventId id);

  /// Runs events until the queue is empty or `until` is passed. The clock
  /// is left at the last executed event (or `until` if given and reached).
  void run_until(SimTime until);

  /// Runs every event with time strictly before `end` and stops, leaving
  /// the clock at the last executed event (NOT advanced to `end`). The
  /// parallel engine's per-shard safe-window step; see advance_to.
  void run_window(SimTime end);

  /// Clamps the clock forward to `t` (no-op if already past). Applied by
  /// the parallel engine when a run target is reached, mirroring what
  /// run_until does for the serial loop.
  void advance_to(SimTime t) {
    if (now_ < t) now_ = t;
  }

  /// Runs until the queue drains completely.
  void run();

  /// Executes the single next event, if any. Returns false when idle.
  bool step();

  /// Number of events executed so far (diagnostics).
  [[nodiscard]] std::uint64_t executed_count() const { return executed_; }

  /// Pending (non-cancelled) event count. O(1), maintained by the wheel.
  [[nodiscard]] std::size_t pending_count() const { return wheel_.size(); }

  /// Event-store allocation/behavior counters (perf benches and the
  /// zero-allocation steady-state tests read these).
  [[nodiscard]] const TimerWheel::Stats& event_stats() const {
    return wheel_.stats();
  }
  /// The wheel itself, for memory-behavior assertions (node capacity,
  /// overflow residency).
  [[nodiscard]] const TimerWheel& event_store() const { return wheel_; }

  /// Installs observability sinks. The returned struct from obs() has a
  /// stable address for the simulator's lifetime, so components may cache
  /// `&sim.obs()` and observe late enablement. Purely passive: attaching
  /// sinks never changes simulated results.
  void set_obs(const obs::Sinks& sinks);
  [[nodiscard]] const obs::Sinks& obs() const { return obs_; }

 private:
  /// Executes the next event if due at or before `limit`.
  bool step_until(SimTime limit);

  SimTime now_;
  std::uint64_t executed_{0};
  std::uint32_t ambient_locus_{0};
  /// Per-locus sequence counters, indexed by rank (grown on demand).
  std::vector<std::uint64_t> locus_seq_;
  obs::Sinks obs_;
  obs::TimeSeries* depth_series_{nullptr};  // cached metrics series
  TimerWheel wheel_;
};

/// RAII ambient-locus override: the TestBed wraps component construction
/// and load start in one of these so setup-time events are charged to the
/// owning host rather than the harness (rank 0) — a prerequisite for the
/// parallel engine, which places each host's events on that host's shard.
class LocusScope {
 public:
  LocusScope(Simulator& sim, std::uint32_t locus)
      : sim_(sim), prev_(sim.ambient_locus()) {
    sim_.set_ambient_locus(locus);
  }
  ~LocusScope() { sim_.set_ambient_locus(prev_); }

  LocusScope(const LocusScope&) = delete;
  LocusScope& operator=(const LocusScope&) = delete;

 private:
  Simulator& sim_;
  std::uint32_t prev_;
};

/// A repeating timer bound to a simulator. Ticks every `period` until
/// stopped or destroyed (RAII; R.1).
class PeriodicTimer {
 public:
  PeriodicTimer(Simulator& sim, SimTime period, std::function<void()> on_tick);
  ~PeriodicTimer();

  PeriodicTimer(const PeriodicTimer&) = delete;
  PeriodicTimer& operator=(const PeriodicTimer&) = delete;

  void start();
  void stop();
  [[nodiscard]] bool running() const { return running_; }

 private:
  void arm();

  Simulator& sim_;
  SimTime period_;
  std::function<void()> on_tick_;
  EventId pending_{0};
  bool running_{false};
};

}  // namespace svk::sim
