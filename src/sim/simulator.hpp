// Discrete-event simulator.
//
// A single-threaded event loop over virtual time. Events scheduled for the
// same instant run in FIFO order (stable sequence-number tie-break), which
// makes every run bit-reproducible for a given seed and schedule.
//
// The pending-event store is a hierarchical timer wheel with a slab-pooled
// node per event (see timer_wheel.hpp): schedule and cancel are O(1),
// cancellation removes the event eagerly (no tombstones), and steady-state
// scheduling performs no heap allocation — the callable lives inline in the
// pooled node (EventAction small-buffer storage).
#pragma once

#include <cstdint>
#include <functional>

#include "common/sim_time.hpp"
#include "obs/sinks.hpp"
#include "sim/event_action.hpp"
#include "sim/timer_wheel.hpp"

namespace svk::obs {
class TimeSeries;
}  // namespace svk::obs

namespace svk::sim {

/// The event loop. Not thread-safe by design (CP: the simulation is
/// deterministic and single-threaded; parallelism belongs outside the clock).
class Simulator {
 public:
  using Action = EventAction;

  /// Current virtual time.
  [[nodiscard]] SimTime now() const { return now_; }

  /// Schedules `action` to run `delay` after now. Negative delays clamp to
  /// zero (run "immediately", after already-queued same-time events).
  EventId schedule(SimTime delay, Action action);

  /// Schedules `action` at an absolute time (clamped to now).
  EventId schedule_at(SimTime when, Action action);

  /// Cancels `id` (tolerating stale/zero ids) and schedules `action` after
  /// `delay` in one call — the timer-refresh idiom (RFC 3261 timer A
  /// doubling, timer C re-arm per provisional). Returns the new id.
  EventId reschedule(EventId id, SimTime delay, Action action);

  /// Cancels a pending event. Cancelling an already-run, already-cancelled
  /// or unknown id is a harmless no-op (it must not disturb the pending
  /// accounting — ids are routinely cancelled from inside their own action,
  /// e.g. PeriodicTimer::stop() within its own tick). Live events are
  /// removed eagerly: no tombstone outlives this call.
  void cancel(EventId id);

  /// Runs events until the queue is empty or `until` is passed. The clock
  /// is left at the last executed event (or `until` if given and reached).
  void run_until(SimTime until);

  /// Runs until the queue drains completely.
  void run();

  /// Executes the single next event, if any. Returns false when idle.
  bool step();

  /// Number of events executed so far (diagnostics).
  [[nodiscard]] std::uint64_t executed_count() const { return executed_; }

  /// Pending (non-cancelled) event count. O(1), maintained by the wheel.
  [[nodiscard]] std::size_t pending_count() const { return wheel_.size(); }

  /// Event-store allocation/behavior counters (perf benches and the
  /// zero-allocation steady-state tests read these).
  [[nodiscard]] const TimerWheel::Stats& event_stats() const {
    return wheel_.stats();
  }
  /// The wheel itself, for memory-behavior assertions (node capacity,
  /// overflow residency).
  [[nodiscard]] const TimerWheel& event_store() const { return wheel_; }

  /// Installs observability sinks. The returned struct from obs() has a
  /// stable address for the simulator's lifetime, so components may cache
  /// `&sim.obs()` and observe late enablement. Purely passive: attaching
  /// sinks never changes simulated results.
  void set_obs(const obs::Sinks& sinks);
  [[nodiscard]] const obs::Sinks& obs() const { return obs_; }

 private:
  /// Executes the next event if due at or before `limit`.
  bool step_until(SimTime limit);

  SimTime now_;
  std::uint64_t executed_{0};
  obs::Sinks obs_;
  obs::TimeSeries* depth_series_{nullptr};  // cached metrics series
  TimerWheel wheel_;
};

/// A repeating timer bound to a simulator. Ticks every `period` until
/// stopped or destroyed (RAII; R.1).
class PeriodicTimer {
 public:
  PeriodicTimer(Simulator& sim, SimTime period, std::function<void()> on_tick);
  ~PeriodicTimer();

  PeriodicTimer(const PeriodicTimer&) = delete;
  PeriodicTimer& operator=(const PeriodicTimer&) = delete;

  void start();
  void stop();
  [[nodiscard]] bool running() const { return running_; }

 private:
  void arm();

  Simulator& sim_;
  SimTime period_;
  std::function<void()> on_tick_;
  EventId pending_{0};
  bool running_{false};
};

}  // namespace svk::sim
