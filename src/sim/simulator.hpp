// Discrete-event simulator.
//
// A single-threaded event loop over virtual time. Events scheduled for the
// same instant run in FIFO order (stable sequence-number tie-break), which
// makes every run bit-reproducible for a given seed and schedule.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "common/sim_time.hpp"
#include "obs/sinks.hpp"

namespace svk::obs {
class TimeSeries;
}  // namespace svk::obs

namespace svk::sim {

/// Identifies a scheduled event for cancellation.
using EventId = std::uint64_t;

/// The event loop. Not thread-safe by design (CP: the simulation is
/// deterministic and single-threaded; parallelism belongs outside the clock).
class Simulator {
 public:
  using Action = std::function<void()>;

  /// Current virtual time.
  [[nodiscard]] SimTime now() const { return now_; }

  /// Schedules `action` to run `delay` after now. Negative delays clamp to
  /// zero (run "immediately", after already-queued same-time events).
  EventId schedule(SimTime delay, Action action);

  /// Schedules `action` at an absolute time (clamped to now).
  EventId schedule_at(SimTime when, Action action);

  /// Cancels a pending event. Cancelling an already-run, already-cancelled
  /// or unknown id is a harmless no-op (it must not disturb the pending
  /// accounting — ids are routinely cancelled from inside their own action,
  /// e.g. PeriodicTimer::stop() within its own tick).
  void cancel(EventId id);

  /// Runs events until the queue is empty or `until` is passed. The clock
  /// is left at the last executed event (or `until` if given and reached).
  void run_until(SimTime until);

  /// Runs until the queue drains completely.
  void run();

  /// Executes the single next event, if any. Returns false when idle.
  bool step();

  /// Number of events executed so far (diagnostics).
  [[nodiscard]] std::uint64_t executed_count() const { return executed_; }

  /// Pending (non-cancelled) event count. Safe by construction: it reports
  /// the live-id set directly instead of deriving a difference of queue and
  /// tombstone sizes (which underflowed when a stale id was cancelled).
  [[nodiscard]] std::size_t pending_count() const { return pending_.size(); }

  /// Installs observability sinks. The returned struct from obs() has a
  /// stable address for the simulator's lifetime, so components may cache
  /// `&sim.obs()` and observe late enablement. Purely passive: attaching
  /// sinks never changes simulated results.
  void set_obs(const obs::Sinks& sinks);
  [[nodiscard]] const obs::Sinks& obs() const { return obs_; }

 private:
  struct Event {
    SimTime at;
    EventId id;
    Action action;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.id > b.id;  // FIFO among simultaneous events
    }
  };

  /// Discards cancelled entries from the front of the queue — the single
  /// place lazy deletion happens. Returns true when the queue top is a
  /// runnable event.
  bool settle_top();

  SimTime now_;
  EventId next_id_{1};
  std::uint64_t executed_{0};
  obs::Sinks obs_;
  obs::TimeSeries* depth_series_{nullptr};  // cached metrics series
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  std::unordered_set<EventId> pending_;    // scheduled, not run or cancelled
  std::unordered_set<EventId> cancelled_;  // tombstones still in queue_
};

/// A repeating timer bound to a simulator. Ticks every `period` until
/// stopped or destroyed (RAII; R.1).
class PeriodicTimer {
 public:
  PeriodicTimer(Simulator& sim, SimTime period, std::function<void()> on_tick);
  ~PeriodicTimer();

  PeriodicTimer(const PeriodicTimer&) = delete;
  PeriodicTimer& operator=(const PeriodicTimer&) = delete;

  void start();
  void stop();
  [[nodiscard]] bool running() const { return running_; }

 private:
  void arm();

  Simulator& sim_;
  SimTime period_;
  std::function<void()> on_tick_;
  EventId pending_{0};
  bool running_{false};
};

}  // namespace svk::sim
