#include "sim/timer_wheel.hpp"

#include <algorithm>
#include <bit>
#include <cassert>

namespace svk::sim {

TimerWheel::~TimerWheel() = default;

TimerWheel::EventNode* TimerWheel::node_at(std::uint32_t index) const {
  return const_cast<EventNode*>(
      &slabs_[index / kSlabNodes]->nodes[index % kSlabNodes]);
}

TimerWheel::EventNode* TimerWheel::alloc_node() {
  if (freelist_.empty()) {
    auto slab = std::make_unique<Slab>();
    const std::uint32_t base =
        static_cast<std::uint32_t>(slabs_.size() * kSlabNodes);
    for (std::size_t i = 0; i < kSlabNodes; ++i) {
      slab->nodes[i].index = base + static_cast<std::uint32_t>(i);
    }
    slabs_.push_back(std::move(slab));
    ++stats_.slab_allocs;
    // Reserve freelist capacity alongside the slab so steady-state frees
    // never reallocate the freelist vector.
    freelist_.reserve(slabs_.size() * kSlabNodes);
    Slab& s = *slabs_.back();
    // LIFO freelist: push in reverse so nodes hand out in index order.
    for (std::size_t i = kSlabNodes; i-- > 0;) {
      freelist_.push_back(&s.nodes[i]);
    }
  }
  EventNode* n = freelist_.back();
  freelist_.pop_back();
  return n;
}

void TimerWheel::free_node(EventNode* n) {
  n->action.reset();
  ++n->gen;  // invalidates any outstanding EventId
  n->state = kFree;
  n->prev = n->next = nullptr;
  freelist_.push_back(n);
}

void TimerWheel::append(int level, int slot, EventNode* n) {
  Slot& sl = slots_[level][slot];
  n->prev = sl.tail;
  n->next = nullptr;
  if (sl.tail != nullptr) {
    sl.tail->next = n;
  } else {
    sl.head = n;
  }
  sl.tail = n;
  bitmap_[level] |= 1ull << slot;
  n->state = kInWheel;
  n->level = static_cast<std::uint8_t>(level);
}

void TimerWheel::unlink(EventNode* n) {
  const int slot = slot_index(n->at, n->level);
  Slot& sl = slots_[n->level][slot];
  if (n->prev != nullptr) {
    n->prev->next = n->next;
  } else {
    sl.head = n->next;
  }
  if (n->next != nullptr) {
    n->next->prev = n->prev;
  } else {
    sl.tail = n->prev;
  }
  if (sl.head == nullptr) bitmap_[n->level] &= ~(1ull << slot);
  n->prev = n->next = nullptr;
}

void TimerWheel::place(EventNode* n) {
  const std::uint64_t diff = static_cast<std::uint64_t>(n->at) ^
                             static_cast<std::uint64_t>(wheel_now_);
  if ((diff >> (kLevelBits * kLevels)) != 0) {
    overflow_.push_back(OverflowEntry{n->at, n->key, n});
    std::push_heap(overflow_.begin(), overflow_.end(), OverflowLater{});
    n->state = kInOverflow;
    ++stats_.overflow_inserts;
    return;
  }
  const int level =
      diff == 0 ? 0 : (63 - std::countl_zero(diff)) / kLevelBits;
  append(level, slot_index(n->at, level), n);
}

void TimerWheel::cascade(int level, int slot) {
  const std::int64_t cycle = 1ll << (kLevelBits * (level + 1));
  const std::int64_t base = wheel_now_ & ~(cycle - 1);
  const std::int64_t slot_start =
      base + (static_cast<std::int64_t>(slot) << (kLevelBits * level));
  const std::uint64_t old_cycle =
      static_cast<std::uint64_t>(wheel_now_) >> (kLevelBits * kLevels);
  assert(slot_start >= wheel_now_);
  wheel_now_ = slot_start;

  EventNode* n = slots_[level][slot].head;
  slots_[level][slot] = Slot{};
  bitmap_[level] &= ~(1ull << slot);
  while (n != nullptr) {
    EventNode* next = n->next;
    n->prev = n->next = nullptr;
    place(n);  // re-buckets at a strictly lower level, preserving order
    n = next;
  }
  ++stats_.cascades;
  if ((static_cast<std::uint64_t>(wheel_now_) >> (kLevelBits * kLevels)) !=
      old_cycle) {
    pull_overflow();
  }
}

void TimerWheel::pull_overflow() {
  while (!overflow_.empty()) {
    const OverflowEntry top = overflow_.front();
    if (top.node->state == kOverflowDead) {
      std::pop_heap(overflow_.begin(), overflow_.end(), OverflowLater{});
      overflow_.pop_back();
      --overflow_dead_;
      free_node(top.node);
      continue;
    }
    if (beyond_horizon(top.at)) break;
    std::pop_heap(overflow_.begin(), overflow_.end(), OverflowLater{});
    overflow_.pop_back();
    top.node->prev = top.node->next = nullptr;
    place(top.node);
  }
}

void TimerWheel::maybe_compact_overflow() {
  if (overflow_dead_ * 2 <= overflow_.size() || overflow_.size() < 64) return;
  auto alive_end = overflow_.begin();
  for (OverflowEntry& e : overflow_) {
    if (e.node->state == kOverflowDead) {
      free_node(e.node);
    } else {
      *alive_end++ = e;
    }
  }
  overflow_.erase(alive_end, overflow_.end());
  std::make_heap(overflow_.begin(), overflow_.end(), OverflowLater{});
  overflow_dead_ = 0;
  ++stats_.overflow_compactions;
}

void TimerWheel::rewind(std::int64_t to) {
  // The cursor ran ahead of a newly scheduled event (possible only when a
  // peek cascaded toward a far-future event and the run stopped short).
  // Collect the live wheel events and re-bucket them against the earlier
  // cursor. Same-tick events sit in a single slot list, so concatenating
  // per-slot lists preserves per-tick sequence order.
  std::vector<EventNode*> nodes;
  nodes.reserve(live_);
  for (int level = 0; level < kLevels; ++level) {
    std::uint64_t bits = bitmap_[level];
    while (bits != 0) {
      const int slot = std::countr_zero(bits);
      bits &= bits - 1;
      for (EventNode* n = slots_[level][slot].head; n != nullptr;
           n = n->next) {
        nodes.push_back(n);
      }
      slots_[level][slot] = Slot{};
    }
    bitmap_[level] = 0;
  }
  wheel_now_ = to;
  for (EventNode* n : nodes) {
    n->prev = n->next = nullptr;
    place(n);
  }
  ++stats_.rewinds;
}

EventId TimerWheel::insert(SimTime at, EventAction action) {
  return insert_keyed(at, make_order_key(0, ++next_seq_), /*locus=*/0,
                      std::move(action));
}

EventId TimerWheel::insert_keyed(SimTime at, OrderKey key, std::uint32_t locus,
                                 EventAction action) {
  EventNode* n = alloc_node();
  n->at = at.ns();
  n->key = key;
  n->locus = locus;
  n->action = std::move(action);
  if (n->at < wheel_now_) rewind(n->at);
  place(n);
  ++live_;
  ++stats_.scheduled;
  return (static_cast<EventId>(n->gen) << 32) | n->index;
}

bool TimerWheel::cancel(EventId id) {
  const std::uint32_t index = static_cast<std::uint32_t>(id);
  const std::uint32_t gen = static_cast<std::uint32_t>(id >> 32);
  if (index >= slabs_.size() * kSlabNodes) return false;
  EventNode* n = node_at(index);
  if (n->gen != gen) return false;
  switch (n->state) {
    case kInWheel:
      unlink(n);
      free_node(n);
      break;
    case kInOverflow:
      // The heap still references the node; mark it dead, reclaim on the
      // next compaction or pull. The action is destroyed eagerly so any
      // captured resources release now.
      ++n->gen;
      n->state = kOverflowDead;
      n->action.reset();
      ++overflow_dead_;
      maybe_compact_overflow();
      break;
    default:
      return false;  // free or already dead: stale id
  }
  --live_;
  ++stats_.cancelled;
  return true;
}

bool TimerWheel::peek(SimTime* at) {
  for (;;) {
    if (bitmap_[0] != 0) {
      const int slot = std::countr_zero(bitmap_[0]);
      *at = SimTime::nanos((wheel_now_ & ~static_cast<std::int64_t>(
                                             kSlotsPerLevel - 1)) +
                           slot);
      return true;
    }
    int level = 1;
    while (level < kLevels && bitmap_[level] == 0) ++level;
    if (level < kLevels) {
      cascade(level, std::countr_zero(bitmap_[level]));
      continue;
    }
    // Wheel empty: jump the cursor to the earliest overflow event.
    while (!overflow_.empty() &&
           overflow_.front().node->state == kOverflowDead) {
      EventNode* dead = overflow_.front().node;
      std::pop_heap(overflow_.begin(), overflow_.end(), OverflowLater{});
      overflow_.pop_back();
      --overflow_dead_;
      free_node(dead);
    }
    if (overflow_.empty()) return false;
    wheel_now_ = overflow_.front().at;
    pull_overflow();
  }
}

bool TimerWheel::pop_until(SimTime limit, SimTime* at, EventAction* action) {
  std::uint32_t locus;
  return pop_until(limit, at, &locus, action);
}

bool TimerWheel::pop_until(SimTime limit, SimTime* at, std::uint32_t* locus,
                           EventAction* action) {
  SimTime next;
  if (!peek(&next) || next > limit) return false;
  const int slot = std::countr_zero(bitmap_[0]);
  // A level-0 slot is a single nanosecond tick; the list is short (usually
  // one node), so a linear min-key scan beats keeping the list sorted.
  EventNode* n = slots_[0][slot].head;
  for (EventNode* c = n->next; c != nullptr; c = c->next) {
    if (c->key < n->key) n = c;
  }
  unlink(n);
  *at = SimTime::nanos(n->at);
  *locus = n->locus;
  *action = std::move(n->action);
  free_node(n);
  --live_;
  ++stats_.executed;
  return true;
}

}  // namespace svk::sim
