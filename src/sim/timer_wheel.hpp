// Hierarchical timer wheel — the simulator's pending-event store.
//
// Replaces the binary heap + tombstone-set core. Design goals, in order:
//
//  1. Bit-identical execution order. Events run in (time, order-key) order.
//     The key is a caller-supplied 64-bit value — for plain insert() it is a
//     monotonic sequence number, reproducing the old FIFO tie-break; the
//     simulator composes it as (locus rank << kLocusSeqBits | per-locus seq)
//     so that the key is a pure function of *which host* scheduled the event
//     and *how many* events that host had scheduled before, independent of
//     how hosts interleave globally. That property is what lets the sharded
//     parallel engine (parallel_sim.hpp) replay the exact serial order: a
//     level-0 slot holds exactly one nanosecond tick, and pop_until() selects
//     the minimum-key node within the tick.
//  2. O(1) schedule and true O(1) cancel. Events live in intrusive
//     doubly-linked slot lists; an EventId resolves to its pool node in
//     O(1) (index + generation), so cancel unlinks and recycles the node
//     immediately instead of leaving a tombstone resident until the queue
//     drains past it.
//  3. Zero steady-state allocation. Nodes come from a slab pool with a
//     freelist; the callable lives inline in the node (EventAction's
//     64-byte buffer). Once the pool is warm, schedule/cancel/execute
//     touch no allocator.
//
// Structure: kLevels wheels of 64 slots over the raw nanosecond time.
// Level k buckets events whose expiry differs from the cursor in bit
// group [6k, 6k+6). Level 0 therefore spans the cursor's current 64 ns
// window and each of its slots is a single tick; level 7 spans ~78 hours.
// Events beyond the top level go to an overflow min-heap ordered by
// (time, key); cancelled overflow entries are compacted amortized so the
// heap never holds more than ~half dead entries.
//
// Ordering invariants (why determinism survives):
//  * Same-tick events always hash to the same slot at every level, so a
//    tick's events are always together in one list; pop_until() scans that
//    (short) list for the minimum key, so insertion order never matters.
//  * A cascade drains the *lowest* occupied slot into strictly lower,
//    provably empty levels; overflow events are pulled in (time, key) heap
//    order. Neither changes which list a tick's events end up in.
//
// The cursor (wheel_now_) advances monotonically as the earliest event is
// located; it is independent of the simulator's clock. The one place it can
// run ahead of schedulable time — a peek cascades toward a far-future event,
// run_until() stops short, and a later schedule lands before the cursor —
// is handled by rewind(): collect the (few) live events and re-bucket them
// against the earlier cursor. Rare by construction and counted in Stats.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/sim_time.hpp"
#include "sim/event_action.hpp"

namespace svk::sim {

/// Identifies a scheduled event for cancellation. Encodes (generation,
/// pool index); stale ids (already run or cancelled) fail the generation
/// check and cancel becomes a harmless no-op. Never 0 (generations start
/// at 1), so 0 can be used as a "no event" sentinel.
using EventId = std::uint64_t;

/// Deterministic same-tick tie-break for an event: the upper bits carry the
/// execution locus's rank (host address; 0 = harness/setup), the lower bits
/// a per-locus sequence number. Because every locus executes its own events
/// in an order independent of how other loci interleave, the key — unlike a
/// global sequence number — is reproducible under any sharding of hosts,
/// which is the foundation of the parallel engine's bit-identical digests.
using OrderKey = std::uint64_t;

/// Bits reserved for the per-locus sequence (~10^12 events per locus).
inline constexpr int kLocusSeqBits = 40;

[[nodiscard]] constexpr OrderKey make_order_key(std::uint32_t locus_rank,
                                                std::uint64_t seq) {
  return (static_cast<OrderKey>(locus_rank) << kLocusSeqBits) | seq;
}

class TimerWheel {
 public:
  /// Allocation and behavior counters. `slab_allocs` is the number of
  /// node-slab mallocs ever made — the perf-smoke CI gate divides
  /// `scheduled` by it to detect steady-state allocation regressions.
  struct Stats {
    std::uint64_t scheduled = 0;
    std::uint64_t executed = 0;
    std::uint64_t cancelled = 0;
    std::uint64_t slab_allocs = 0;
    std::uint64_t cascades = 0;
    std::uint64_t overflow_inserts = 0;
    std::uint64_t overflow_compactions = 0;
    std::uint64_t rewinds = 0;
  };

  static constexpr int kLevelBits = 6;
  static constexpr int kSlotsPerLevel = 1 << kLevelBits;  // 64
  static constexpr int kLevels = 8;  // 64^8 ns ~ 78 hours of horizon
  static constexpr std::size_t kSlabNodes = 256;

  TimerWheel() = default;
  ~TimerWheel();

  TimerWheel(const TimerWheel&) = delete;
  TimerWheel& operator=(const TimerWheel&) = delete;

  /// Schedules `action` at absolute time `at` (>= 0). O(1) amortized.
  /// The order key is an internal monotonic sequence (locus rank 0), so
  /// plain inserts keep the historical FIFO same-tick semantics.
  EventId insert(SimTime at, EventAction action);

  /// Schedules with an explicit order key and execution locus. Same-tick
  /// events run in ascending key order; `locus` is reported back by
  /// pop_until so the simulator can attribute follow-on scheduling to the
  /// host whose event is executing.
  EventId insert_keyed(SimTime at, OrderKey key, std::uint32_t locus,
                       EventAction action);

  /// Removes a pending event. Returns false for stale/unknown ids.
  /// Wheel-resident events are unlinked and recycled immediately;
  /// overflow-resident events are marked dead and reclaimed by amortized
  /// heap compaction (the heap is never more than ~half dead).
  bool cancel(EventId id);

  /// Earliest pending event time. Advances the internal cursor (cascades
  /// far buckets down) but never past the earliest event, and never
  /// observable from outside. Returns false when no events are pending.
  bool peek(SimTime* at);

  /// Pops the earliest pending event if its time is <= `limit`; same-time
  /// events pop in ascending order-key. Returns false when idle or the next
  /// event is later than `limit`.
  bool pop_until(SimTime limit, SimTime* at, EventAction* action);

  /// As above, additionally reporting the event's execution locus.
  bool pop_until(SimTime limit, SimTime* at, std::uint32_t* locus,
                 EventAction* action);

  /// Live (scheduled, not cancelled, not run) event count. O(1).
  [[nodiscard]] std::size_t size() const { return live_; }
  [[nodiscard]] bool empty() const { return live_ == 0; }

  /// Overflow heap entries currently resident, dead entries included —
  /// tests pin that this stays within a small factor of the live count
  /// under heavy schedule/cancel churn.
  [[nodiscard]] std::size_t overflow_resident() const {
    return overflow_.size();
  }

  /// Total pool capacity in nodes (never shrinks; bounded by the high-water
  /// mark of concurrently pending events).
  [[nodiscard]] std::size_t node_capacity() const {
    return slabs_.size() * kSlabNodes;
  }

  [[nodiscard]] const Stats& stats() const { return stats_; }

 private:
  struct EventNode {
    std::int64_t at = 0;   // absolute expiry, ns
    OrderKey key = 0;      // same-tick tie-break (ascending)
    EventNode* prev = nullptr;
    EventNode* next = nullptr;
    std::uint32_t index = 0;  // own slot in the pool
    std::uint32_t gen = 1;    // bumped on every free/invalidate
    std::uint8_t state = 0;   // State
    std::uint8_t level = 0;   // wheel level while state == kInWheel
    std::uint32_t locus = 0;  // execution locus (host rank; 0 = harness)
    EventAction action;
  };
  enum State : std::uint8_t {
    kFree = 0,
    kInWheel,
    kInOverflow,
    kOverflowDead,
  };
  struct Slot {
    EventNode* head = nullptr;
    EventNode* tail = nullptr;
  };
  struct Slab {
    EventNode nodes[kSlabNodes];
  };
  struct OverflowEntry {
    std::int64_t at;
    OrderKey key;
    EventNode* node;
  };
  struct OverflowLater {
    bool operator()(const OverflowEntry& a, const OverflowEntry& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.key > b.key;
    }
  };

  static int slot_index(std::int64_t at, int level) {
    return static_cast<int>((at >> (kLevelBits * level)) &
                            (kSlotsPerLevel - 1));
  }
  [[nodiscard]] bool beyond_horizon(std::int64_t at) const {
    return ((static_cast<std::uint64_t>(at) ^
             static_cast<std::uint64_t>(wheel_now_)) >>
            (kLevelBits * kLevels)) != 0;
  }

  EventNode* alloc_node();
  void free_node(EventNode* n);
  EventNode* node_at(std::uint32_t index) const;
  void append(int level, int slot, EventNode* n);
  void unlink(EventNode* n);
  /// Buckets a detached node relative to the current cursor.
  void place(EventNode* n);
  /// Moves the cursor to the start of (level, slot) and redistributes that
  /// slot's events into lower levels.
  void cascade(int level, int slot);
  /// Pulls overflow events that came within the wheel horizon.
  void pull_overflow();
  void maybe_compact_overflow();
  /// Re-buckets every wheel event against an earlier cursor.
  void rewind(std::int64_t to);

  std::int64_t wheel_now_ = 0;  // cursor; all live wheel ticks are >= this
  std::uint64_t next_seq_ = 0;
  std::size_t live_ = 0;
  Slot slots_[kLevels][kSlotsPerLevel];
  std::uint64_t bitmap_[kLevels] = {};
  std::vector<std::unique_ptr<Slab>> slabs_;
  std::vector<EventNode*> freelist_;
  std::vector<OverflowEntry> overflow_;  // min-heap by (at, key)
  std::size_t overflow_dead_ = 0;
  Stats stats_;
};

}  // namespace svk::sim
