#include "sip/branch.hpp"

#include <cstdio>

namespace svk::sip {
namespace {

/// FNV-1a, the kind of cheap header hash OpenSER uses for transaction
/// lookup (the "Hashing" cost block of Figure 3).
std::uint64_t fnv1a(std::string_view data, std::uint64_t seed = 0xcbf29ce484222325ULL) {
  std::uint64_t h = seed;
  for (const char c : data) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

}  // namespace

std::string BranchGenerator::next() {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%s-%llx-%llx", std::string(kMagicCookie).c_str(),
                static_cast<unsigned long long>(element_id_),
                static_cast<unsigned long long>(++counter_));
  return buf;
}

std::string stateless_branch(std::string_view incoming_branch,
                             std::string_view host) {
  const std::uint64_t h = fnv1a(host, fnv1a(incoming_branch));
  char buf[32];
  std::snprintf(buf, sizeof(buf), "-sl%llx",
                static_cast<unsigned long long>(h));
  return std::string(kMagicCookie) + buf;
}

std::size_t TransactionKeyHash::operator()(
    const TransactionKey& key) const noexcept {
  std::uint64_t h = fnv1a(key.branch);
  h = fnv1a(key.sent_by, h);
  h ^= static_cast<std::uint64_t>(key.method) * 0x9E3779B97F4A7C15ULL;
  return static_cast<std::size_t>(h);
}

TransactionKey server_key(const Message& req) {
  const Via& via = req.top_via();
  Method method = req.method();
  if (method == Method::kAck) method = Method::kInvite;
  return TransactionKey{via.branch, via.sent_by.str(), method};
}

TransactionKey client_key(const Message& resp) {
  const Via& via = resp.top_via();
  Method method = resp.cseq().method;
  return TransactionKey{via.branch, via.sent_by.str(), method};
}

}  // namespace svk::sip
