#include "sip/branch.hpp"

#include <cstdio>

#include "common/hash.hpp"

namespace svk::sip {

using common::fnv1a;

std::string BranchGenerator::next() {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%s-%llx-%llx", std::string(kMagicCookie).c_str(),
                static_cast<unsigned long long>(element_id_),
                static_cast<unsigned long long>(++counter_));
  return buf;
}

std::string stateless_branch(std::string_view incoming_branch,
                             std::string_view host) {
  const std::uint64_t h = fnv1a(host, fnv1a(incoming_branch));
  char buf[32];
  std::snprintf(buf, sizeof(buf), "-sl%llx",
                static_cast<unsigned long long>(h));
  return std::string(kMagicCookie) + buf;
}

std::uint64_t txn_key_hash(std::string_view branch, std::string_view sent_by,
                           Method method) noexcept {
  std::uint64_t h = fnv1a(branch);
  h = fnv1a(sent_by, h);
  h ^= static_cast<std::uint64_t>(method) * common::kGolden64;
  return h;
}

std::size_t TransactionKeyHash::operator()(
    const TransactionKey& key) const noexcept {
  return static_cast<std::size_t>(
      txn_key_hash(key.branch, key.sent_by, key.method));
}

TransactionKey server_key(const Message& req) {
  const Via& via = req.top_via();
  Method method = req.method();
  if (method == Method::kAck) method = Method::kInvite;
  return TransactionKey{via.branch, via.sent_by.str(), method};
}

TransactionKey client_key(const Message& resp) {
  const Via& via = resp.top_via();
  Method method = resp.cseq().method;
  return TransactionKey{via.branch, via.sent_by.str(), method};
}

TxnProbe key_for_request(const Message& req) {
  const Via& via = req.top_via();
  Method method = req.method();
  if (method == Method::kAck) method = Method::kInvite;
  return TxnProbe{txn_key_hash(via.branch, via.sent_by, method), via.branch,
                  via.sent_by, method};
}

TxnProbe key_for_response(const Message& resp) {
  const Via& via = resp.top_via();
  const Method method = resp.cseq().method;
  return TxnProbe{txn_key_hash(via.branch, via.sent_by, method), via.branch,
                  via.sent_by, method};
}

TxnProbe key_probe(const TransactionKey& key) {
  return TxnProbe{txn_key_hash(key.branch, key.sent_by, key.method),
                  key.branch, key.sent_by, key.method};
}

}  // namespace svk::sip
