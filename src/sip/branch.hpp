// Transaction identification (RFC 3261 17.2.3 / 8.1.1.7).
//
// Every forwarded request gets a unique branch token starting with the
// z9hG4bK magic cookie; transactions are keyed on (branch, sent-by, method).
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "sip/message.hpp"

namespace svk::sip {

inline constexpr std::string_view kMagicCookie = "z9hG4bK";

/// Deterministic branch-token source. Each element owns one, seeded with its
/// address, so runs are reproducible yet branches are globally unique.
class BranchGenerator {
 public:
  explicit BranchGenerator(std::uint64_t element_id)
      : element_id_(element_id) {}

  [[nodiscard]] std::string next();

 private:
  std::uint64_t element_id_;
  std::uint64_t counter_{0};
};

/// Key identifying a transaction at one element.
struct TransactionKey {
  std::string branch;
  std::string sent_by;
  Method method = Method::kInvite;

  friend bool operator==(const TransactionKey&,
                         const TransactionKey&) = default;
};

struct TransactionKeyHash {
  std::size_t operator()(const TransactionKey& key) const noexcept;
};

/// Key a *server* transaction uses to match an incoming request
/// (RFC 3261 17.2.3): top Via branch + sent-by + method, with ACK matching
/// the INVITE transaction. CANCEL matches its own transaction (the CANCEL
/// server transaction is distinct from the INVITE's).
/// Precondition: req has at least one Via.
[[nodiscard]] TransactionKey server_key(const Message& req);

/// Deterministic branch for *stateless* forwarding (RFC 3261 16.11): the
/// branch must be computed from the incoming request so retransmissions get
/// the same value and can be matched/absorbed by stateful nodes downstream.
[[nodiscard]] std::string stateless_branch(std::string_view incoming_branch,
                                           std::string_view host);

/// Key a *client* transaction uses to match an incoming response: the
/// response's top Via is the one this element inserted, so its branch plus
/// the CSeq method identify the transaction (RFC 3261 17.1.3).
/// Precondition: resp has at least one Via.
[[nodiscard]] TransactionKey client_key(const Message& resp);

}  // namespace svk::sip
