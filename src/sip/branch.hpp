// Transaction identification (RFC 3261 17.2.3 / 8.1.1.7).
//
// Every forwarded request gets a unique branch token starting with the
// z9hG4bK magic cookie; transactions are keyed on (branch, sent-by, method).
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>

#include "sip/message.hpp"

namespace svk::sip {

inline constexpr std::string_view kMagicCookie = "z9hG4bK";

/// Deterministic branch-token source. Each element owns one, seeded with its
/// address, so runs are reproducible yet branches are globally unique.
class BranchGenerator {
 public:
  explicit BranchGenerator(std::uint64_t element_id)
      : element_id_(element_id) {}

  [[nodiscard]] std::string next();

 private:
  std::uint64_t element_id_;
  std::uint64_t counter_{0};
};

/// Key identifying a transaction at one element.
struct TransactionKey {
  std::string branch;
  std::string sent_by;
  Method method = Method::kInvite;

  friend bool operator==(const TransactionKey&,
                         const TransactionKey&) = default;
};

struct TransactionKeyHash {
  std::size_t operator()(const TransactionKey& key) const noexcept;
};

/// A non-owning transaction probe: the precomputed 64-bit FNV-1a key hash
/// plus views of the key fields, read straight off an incoming message.
/// This is what the flat state tables match against — no TransactionKey
/// temporary, no string copies, no allocation per dispatch. The views
/// borrow from the probed message (branch) and the intern table (sent-by);
/// a probe must not outlive the message it was computed from.
struct TxnProbe {
  std::uint64_t hash = 0;
  std::string_view branch;
  std::string_view sent_by;
  Method method = Method::kInvite;

  /// True when `branch`/`sent_by`/`method` equal the stored key fields.
  [[nodiscard]] bool matches(std::string_view key_branch,
                             std::string_view key_sent_by,
                             Method key_method) const noexcept {
    return method == key_method && branch == key_branch &&
           sent_by == key_sent_by;
  }
};

/// The hash TxnProbe and TransactionKeyHash share: FNV-1a over branch and
/// sent-by, with the method folded in.
[[nodiscard]] std::uint64_t txn_key_hash(std::string_view branch,
                                         std::string_view sent_by,
                                         Method method) noexcept;

/// The probe a *server* transaction table matches an incoming request with
/// (RFC 3261 17.2.3) — the view-based equivalent of server_key, computed
/// once per message. Precondition: req has at least one Via.
[[nodiscard]] TxnProbe key_for_request(const Message& req);

/// The probe a *client* transaction table matches an incoming response with
/// (RFC 3261 17.1.3) — the view-based equivalent of client_key.
/// Precondition: resp has at least one Via.
[[nodiscard]] TxnProbe key_for_response(const Message& resp);

/// Probe over an owning key (for the key-based find overloads kept for
/// callers that store a TransactionKey).
[[nodiscard]] TxnProbe key_probe(const TransactionKey& key);

/// Key a *server* transaction uses to match an incoming request
/// (RFC 3261 17.2.3): top Via branch + sent-by + method, with ACK matching
/// the INVITE transaction. CANCEL matches its own transaction (the CANCEL
/// server transaction is distinct from the INVITE's).
/// Precondition: req has at least one Via.
[[nodiscard]] TransactionKey server_key(const Message& req);

/// Deterministic branch for *stateless* forwarding (RFC 3261 16.11): the
/// branch must be computed from the incoming request so retransmissions get
/// the same value and can be matched/absorbed by stateful nodes downstream.
[[nodiscard]] std::string stateless_branch(std::string_view incoming_branch,
                                           std::string_view host);

/// Key a *client* transaction uses to match an incoming response: the
/// response's top Via is the one this element inserted, so its branch plus
/// the CSeq method identify the transaction (RFC 3261 17.1.3).
/// Precondition: resp has at least one Via.
[[nodiscard]] TransactionKey client_key(const Message& resp);

}  // namespace svk::sip
