#include "sip/intern.hpp"

#include <mutex>
#include <shared_mutex>
#include <unordered_set>

namespace svk::sip {
namespace {

struct StringHash {
  using is_transparent = void;
  std::size_t operator()(std::string_view s) const noexcept {
    return std::hash<std::string_view>{}(s);
  }
};
struct StringEq {
  using is_transparent = void;
  bool operator()(std::string_view a, std::string_view b) const noexcept {
    return a == b;
  }
};

struct InternTable {
  std::shared_mutex mutex;
  // Node-based: element addresses survive rehash, so a returned reference
  // is stable even as the table grows.
  std::unordered_set<std::string, StringHash, StringEq> strings;
};

InternTable& table() {
  static InternTable* t = new InternTable();  // leaked: process lifetime
  return *t;
}

const std::string& empty_string() {
  static const std::string empty;
  return empty;
}

}  // namespace

const std::string& intern(std::string_view text) {
  if (text.empty()) return empty_string();
  InternTable& t = table();
  {
    std::shared_lock lock(t.mutex);
    auto it = t.strings.find(text);
    if (it != t.strings.end()) return *it;
  }
  std::unique_lock lock(t.mutex);
  return *t.strings.emplace(text).first;
}

std::size_t intern_table_size() {
  InternTable& t = table();
  std::shared_lock lock(t.mutex);
  return t.strings.size();
}

Token::Token() noexcept : str_(&empty_string()) {}

}  // namespace svk::sip
