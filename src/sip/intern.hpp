// Interned header strings.
//
// Via protocol ("SIP/2.0/UDP") and sent-by host values come from tiny,
// bounded vocabularies — one transport token, one host string per simulated
// node. Storing them as std::string made every copy-on-forward clone pay a
// string copy (and usually a malloc) per Via per hop. A Token instead holds
// a pointer into a process-lifetime intern table: copying a Via copies two
// pointers, and equality is usually a pointer compare.
//
// The table is global, guarded by a shared_mutex (read-mostly: every value
// is interned once per process, then every further lookup takes the shared
// path), and node-based, so interned strings have stable addresses for the
// life of the process — Tokens may be copied freely across threads and
// outlive the thread that created them.
//
// Only bounded value sets belong here. Branch parameters and Call-IDs are
// per-transaction unique and must stay plain std::string — interning them
// would grow the table without bound.
#pragma once

#include <cstddef>
#include <ostream>
#include <string>
#include <string_view>

namespace svk::sip {

/// Interns `text`, returning a reference valid for the process lifetime.
const std::string& intern(std::string_view text);

/// Number of distinct strings interned so far (test/diagnostic hook for
/// pinning that the table stays bounded).
std::size_t intern_table_size();

/// A pointer to an interned string. Cheap to copy and compare; implicitly
/// convertible to std::string_view. Construction from text is explicit —
/// it costs a hash lookup — so accidental re-interning on hot paths shows
/// up in the code.
class Token {
 public:
  /// The empty token (does not touch the intern table).
  Token() noexcept;

  explicit Token(std::string_view text) : str_(&intern(text)) {}
  explicit Token(const char* text) : Token(std::string_view(text)) {}

  Token& operator=(std::string_view text) {
    str_ = &intern(text);
    return *this;
  }

  [[nodiscard]] const std::string& str() const noexcept { return *str_; }
  [[nodiscard]] std::string_view view() const noexcept { return *str_; }
  operator std::string_view() const noexcept { return *str_; }

  [[nodiscard]] bool empty() const noexcept { return str_->empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return str_->size(); }

  friend bool operator==(const Token& a, const Token& b) noexcept {
    return a.str_ == b.str_ || *a.str_ == *b.str_;
  }
  friend bool operator==(const Token& a, std::string_view b) noexcept {
    return *a.str_ == b;
  }
  friend std::ostream& operator<<(std::ostream& os, const Token& t) {
    return os << *t.str_;
  }

 private:
  const std::string* str_;  // never null
};

}  // namespace svk::sip
