#include "sip/message.hpp"

#include <cstdio>
#include <utility>

namespace svk::sip {
namespace {

void append_name_addr(std::string& out, std::string_view name,
                      const NameAddr& value) {
  out += name;
  out += ": ";
  if (!value.display.empty()) {
    out += '"';
    out += value.display;
    out += "\" ";
  }
  out += '<';
  out += value.uri.to_string();
  out += '>';
  if (!value.tag.empty()) {
    out += ";tag=";
    out += value.tag;
  }
  out += "\r\n";
}

}  // namespace

Message Message::request(Method method, Uri request_uri, NameAddr from,
                         NameAddr to, std::string call_id, CSeq cseq) {
  Message msg;
  msg.is_request_ = true;
  msg.method_ = method;
  msg.request_uri_ = std::move(request_uri);
  msg.from_ = std::move(from);
  msg.to_ = std::move(to);
  msg.call_id_ = std::move(call_id);
  msg.cseq_ = cseq;
  return msg;
}

Message Message::response(const Message& req, int status_code,
                          std::string_view reason) {
  Message msg;
  msg.is_request_ = false;
  msg.status_code_ = status_code;
  msg.reason_ =
      std::string(reason.empty() ? reason_phrase(status_code) : reason);
  msg.vias_ = req.vias_;
  msg.from_ = req.from_;
  msg.to_ = req.to_;
  msg.call_id_ = req.call_id_;
  msg.cseq_ = req.cseq_;
  // Record-Route is mirrored into responses so the caller learns the
  // dialog route set (RFC 3261 16.7/12.1.1).
  msg.record_routes_ = req.record_routes_;
  return msg;
}

std::optional<std::string_view> Message::header(
    std::string_view name) const {
  for (const auto& [key, value] : extra_) {
    if (key == name) return std::string_view(value);
  }
  return std::nullopt;
}

void Message::set_header(std::string name, std::string value) {
  for (auto& [key, existing] : extra_) {
    if (key == name) {
      existing = std::move(value);
      return;
    }
  }
  extra_.emplace_back(std::move(name), std::move(value));
}

void Message::remove_header(std::string_view name) {
  auto* keep = extra_.begin();
  for (auto& entry : extra_) {
    if (entry.first != name) {
      if (keep != &entry) *keep = std::move(entry);
      ++keep;
    }
  }
  while (extra_.end() != keep) extra_.pop_back();
}

std::size_t Message::header_count() const {
  std::size_t n = vias_.size() + 4;  // From, To, Call-ID, CSeq
  n += routes_.size() + record_routes_.size() + extra_.size();
  if (contact_) ++n;
  return n;
}

std::string Message::to_wire() const {
  // Size the buffer once: per-header constants cover the literal parts
  // ("Via: ", ";branch=", CRLFs...), variable parts are summed exactly for
  // the repeated headers and estimated generously for the name-addr lines.
  std::size_t estimate = 192 + body_.size() + call_id_.size() +
                         reason_.size() + 96 * (2 + (contact_ ? 1 : 0));
  for (const Via& via : vias_) {
    estimate += 16 + via.protocol.size() + via.sent_by.size() +
                via.branch.size() + (via.oc_rate >= 0.0 ? 24 : 0);
  }
  estimate += 64 * (routes_.size() + record_routes_.size());
  for (const auto& [key, value] : extra_) {
    estimate += key.size() + value.size() + 4;
  }
  std::string out;
  out.reserve(estimate);

  if (is_request_) {
    out += to_string(method_);
    out += ' ';
    out += request_uri_.to_string();
    out += " SIP/2.0\r\n";
  } else {
    out += "SIP/2.0 ";
    out += std::to_string(status_code_);
    out += ' ';
    out += reason_;
    out += "\r\n";
  }

  // vias_ is stored bottom-first; the wire format lists the top Via first.
  for (auto it = vias_.rbegin(); it != vias_.rend(); ++it) {
    const Via& via = *it;
    out += "Via: ";
    out += via.protocol.view();
    out += ' ';
    out += via.sent_by.view();
    if (!via.branch.empty()) {
      out += ";branch=";
      out += via.branch;
    }
    if (via.oc_rate >= 0.0) {
      char oc[32];
      std::snprintf(oc, sizeof(oc), ";oc=%.3f", via.oc_rate);
      out += oc;
    }
    out += "\r\n";
  }
  for (const Uri& route : record_routes_) {
    out += "Record-Route: <";
    out += route.to_string();
    out += ">\r\n";
  }
  for (const Uri& route : routes_) {
    out += "Route: <";
    out += route.to_string();
    out += ">\r\n";
  }
  append_name_addr(out, "From", from_);
  append_name_addr(out, "To", to_);
  out += "Call-ID: ";
  out += call_id_;
  out += "\r\n";
  out += "CSeq: ";
  out += std::to_string(cseq_.seq);
  out += ' ';
  out += to_string(cseq_.method);
  out += "\r\n";
  if (contact_) {
    append_name_addr(out, "Contact", *contact_);
  }
  if (is_request_) {
    out += "Max-Forwards: ";
    out += std::to_string(max_forwards_);
    out += "\r\n";
  }
  for (const auto& [key, value] : extra_) {
    out += key;
    out += ": ";
    out += value;
    out += "\r\n";
  }
  out += "Content-Length: ";
  out += std::to_string(body_.size());
  out += "\r\n\r\n";
  out += body_;
  return out;
}

}  // namespace svk::sip
