// SIP message model (RFC 3261 subset).
//
// Messages are built mutable, then shared immutably across the simulated
// network as MessagePtr (shared_ptr<const Message>). A proxy that needs to
// modify a message in flight (push a Via, decrement Max-Forwards) copies it
// first — copy-on-forward, matching how a real proxy re-serializes.
//
// The layout is tuned for that copy: header lists live in small-inline
// vectors (no malloc for the common 1–4 entry counts), Via protocol and
// sent-by values are interned Tokens (pointer copies), and the Via stack is
// stored bottom-first so push_via/pop_via — the per-hop operations — are
// O(1) at the back instead of O(n) front inserts. finish() allocates the
// shared block from a freelist-backed pool (see message_pool.hpp), so a
// warm forward path creates and releases messages without the allocator.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <utility>

#include "common/small_vector.hpp"
#include "sip/intern.hpp"
#include "sip/message_pool.hpp"
#include "sip/methods.hpp"
#include "sip/uri.hpp"

namespace svk::sip {

/// One Via header entry (RFC 3261 8.1.1.7 / 18.2.1): the response return
/// path. `sent_by` is the sender's host identity; `branch` the transaction
/// id token. Protocol and sent-by come from bounded vocabularies and are
/// interned; branch is per-transaction unique and stays a plain string.
struct Via {
  Via() = default;
  Via(std::string_view protocol, std::string_view sent_by,
      std::string branch = {})
      : protocol(protocol),
        sent_by(sent_by),
        branch(std::move(branch)) {}

  Token protocol{"SIP/2.0/UDP"};
  Token sent_by;
  std::string branch;
  /// RFC 7339-style overload-control feedback: the permitted request rate
  /// (cps) this hop advertises to its upstream neighbor, piggybacked on the
  /// Via it stamps onto responses. Negative = no advertisement.
  double oc_rate = -1.0;

  friend bool operator==(const Via&, const Via&) = default;
};

/// From/To/Contact value: optional display name, URI and optional tag.
struct NameAddr {
  std::string display;
  Uri uri;
  std::string tag;

  friend bool operator==(const NameAddr&, const NameAddr&) = default;
};

/// CSeq header (RFC 3261 8.1.1.5).
struct CSeq {
  std::uint32_t seq = 1;
  Method method = Method::kInvite;

  friend bool operator==(const CSeq&, const CSeq&) = default;
};

class Message;
using MessagePtr = std::shared_ptr<const Message>;

/// A SIP request or response.
class Message {
 public:
  /// Via stack, stored bottom-first: the *last* element is the top Via
  /// (most recent hop). Iteration order is bottom-to-top; to_wire() emits
  /// top-first as the wire format requires.
  using ViaList = SmallVector<Via, 4>;
  using RouteList = SmallVector<Uri, 2>;
  using HeaderList = SmallVector<std::pair<std::string, std::string>, 2>;

  /// Creates a request with the mandatory header skeleton.
  [[nodiscard]] static Message request(Method method, Uri request_uri,
                                       NameAddr from, NameAddr to,
                                       std::string call_id, CSeq cseq);

  /// Creates a response to `req` per RFC 3261 8.2.6: Vias, From, To,
  /// Call-ID and CSeq are copied from the request.
  [[nodiscard]] static Message response(const Message& req, int status_code,
                                        std::string_view reason = {});

  [[nodiscard]] bool is_request() const { return is_request_; }
  [[nodiscard]] bool is_response() const { return !is_request_; }

  // -- Request line --------------------------------------------------------
  [[nodiscard]] Method method() const { return method_; }
  [[nodiscard]] const Uri& request_uri() const { return request_uri_; }
  void set_request_uri(Uri uri) { request_uri_ = std::move(uri); }

  // -- Status line ---------------------------------------------------------
  [[nodiscard]] int status_code() const { return status_code_; }
  [[nodiscard]] const std::string& reason() const { return reason_; }

  // -- Core headers --------------------------------------------------------
  /// The Via stack, bottom-first (top Via last — see ViaList).
  [[nodiscard]] const ViaList& vias() const { return vias_; }
  /// Top Via; precondition: at least one Via present.
  [[nodiscard]] const Via& top_via() const { return vias_.back(); }
  [[nodiscard]] Via& top_via() { return vias_.back(); }
  /// Pushes a new top Via. O(1).
  void push_via(Via via) { vias_.push_back(std::move(via)); }
  /// Pops the top Via. O(1).
  void pop_via() { vias_.pop_back(); }

  [[nodiscard]] const NameAddr& from() const { return from_; }
  [[nodiscard]] NameAddr& from() { return from_; }
  [[nodiscard]] const NameAddr& to() const { return to_; }
  [[nodiscard]] NameAddr& to() { return to_; }

  [[nodiscard]] const std::string& call_id() const { return call_id_; }
  [[nodiscard]] const CSeq& cseq() const { return cseq_; }

  [[nodiscard]] const std::optional<NameAddr>& contact() const {
    return contact_;
  }
  void set_contact(NameAddr contact) { contact_ = std::move(contact); }

  [[nodiscard]] int max_forwards() const { return max_forwards_; }
  void set_max_forwards(int mf) { max_forwards_ = mf; }
  void decrement_max_forwards() { --max_forwards_; }

  // -- Routing headers -----------------------------------------------------
  [[nodiscard]] const RouteList& routes() const { return routes_; }
  [[nodiscard]] RouteList& routes() { return routes_; }
  [[nodiscard]] const RouteList& record_routes() const {
    return record_routes_;
  }
  [[nodiscard]] RouteList& record_routes() { return record_routes_; }

  // -- Extension headers ---------------------------------------------------
  /// First value of an extension header, if present.
  [[nodiscard]] std::optional<std::string_view> header(
      std::string_view name) const;
  /// Sets (replacing any existing value of) an extension header.
  void set_header(std::string name, std::string value);
  void remove_header(std::string_view name);
  [[nodiscard]] const HeaderList& extension_headers() const { return extra_; }

  // -- Body ----------------------------------------------------------------
  [[nodiscard]] const std::string& body() const { return body_; }
  void set_body(std::string body) { body_ = std::move(body); }

  /// Serializes to RFC 3261 wire format (CRLF line endings).
  [[nodiscard]] std::string to_wire() const;

  /// Number of header lines a stateless forwarder must at least touch;
  /// used by the cost model's lazy-parsing account.
  [[nodiscard]] std::size_t header_count() const;

  /// Shares this message immutably. The control block and payload come
  /// from the thread-local message pool in one allocation, recycled when
  /// the last MessagePtr drops.
  [[nodiscard]] MessagePtr finish() && {
    return std::allocate_shared<const Message>(MessagePoolAllocator<Message>{},
                                               std::move(*this));
  }

 private:
  bool is_request_ = true;
  Method method_ = Method::kInvite;
  Uri request_uri_;
  int status_code_ = 0;
  std::string reason_;

  ViaList vias_;  // bottom-first; top Via is vias_.back()
  NameAddr from_;
  NameAddr to_;
  std::string call_id_;
  CSeq cseq_;
  std::optional<NameAddr> contact_;
  int max_forwards_ = 70;
  RouteList routes_;
  RouteList record_routes_;
  HeaderList extra_;
  std::string body_;

  friend class Parser;
};

/// Copies a shared message for modification (copy-on-forward).
[[nodiscard]] inline Message clone(const Message& msg) { return msg; }

}  // namespace svk::sip
