// SIP message model (RFC 3261 subset).
//
// Messages are built mutable, then shared immutably across the simulated
// network as MessagePtr (shared_ptr<const Message>). A proxy that needs to
// modify a message in flight (push a Via, decrement Max-Forwards) copies it
// first — copy-on-forward, matching how a real proxy re-serializes.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "sip/methods.hpp"
#include "sip/uri.hpp"

namespace svk::sip {

/// One Via header entry (RFC 3261 8.1.1.7 / 18.2.1): the response return
/// path. `sent_by` is the sender's host identity; `branch` the transaction
/// id token.
struct Via {
  std::string protocol = "SIP/2.0/UDP";
  std::string sent_by;
  std::string branch;

  friend bool operator==(const Via&, const Via&) = default;
};

/// From/To/Contact value: optional display name, URI and optional tag.
struct NameAddr {
  std::string display;
  Uri uri;
  std::string tag;

  friend bool operator==(const NameAddr&, const NameAddr&) = default;
};

/// CSeq header (RFC 3261 8.1.1.5).
struct CSeq {
  std::uint32_t seq = 1;
  Method method = Method::kInvite;

  friend bool operator==(const CSeq&, const CSeq&) = default;
};

class Message;
using MessagePtr = std::shared_ptr<const Message>;

/// A SIP request or response.
class Message {
 public:
  /// Creates a request with the mandatory header skeleton.
  [[nodiscard]] static Message request(Method method, Uri request_uri,
                                       NameAddr from, NameAddr to,
                                       std::string call_id, CSeq cseq);

  /// Creates a response to `req` per RFC 3261 8.2.6: Vias, From, To,
  /// Call-ID and CSeq are copied from the request.
  [[nodiscard]] static Message response(const Message& req, int status_code,
                                        std::string_view reason = {});

  [[nodiscard]] bool is_request() const { return is_request_; }
  [[nodiscard]] bool is_response() const { return !is_request_; }

  // -- Request line --------------------------------------------------------
  [[nodiscard]] Method method() const { return method_; }
  [[nodiscard]] const Uri& request_uri() const { return request_uri_; }
  void set_request_uri(Uri uri) { request_uri_ = std::move(uri); }

  // -- Status line ---------------------------------------------------------
  [[nodiscard]] int status_code() const { return status_code_; }
  [[nodiscard]] const std::string& reason() const { return reason_; }

  // -- Core headers --------------------------------------------------------
  [[nodiscard]] const std::vector<Via>& vias() const { return vias_; }
  [[nodiscard]] std::vector<Via>& vias() { return vias_; }
  /// Top Via; precondition: at least one Via present.
  [[nodiscard]] const Via& top_via() const { return vias_.front(); }
  void push_via(Via via) { vias_.insert(vias_.begin(), std::move(via)); }
  void pop_via() { vias_.erase(vias_.begin()); }

  [[nodiscard]] const NameAddr& from() const { return from_; }
  [[nodiscard]] NameAddr& from() { return from_; }
  [[nodiscard]] const NameAddr& to() const { return to_; }
  [[nodiscard]] NameAddr& to() { return to_; }

  [[nodiscard]] const std::string& call_id() const { return call_id_; }
  [[nodiscard]] const CSeq& cseq() const { return cseq_; }

  [[nodiscard]] const std::optional<NameAddr>& contact() const {
    return contact_;
  }
  void set_contact(NameAddr contact) { contact_ = std::move(contact); }

  [[nodiscard]] int max_forwards() const { return max_forwards_; }
  void set_max_forwards(int mf) { max_forwards_ = mf; }
  void decrement_max_forwards() { --max_forwards_; }

  // -- Routing headers -----------------------------------------------------
  [[nodiscard]] const std::vector<Uri>& routes() const { return routes_; }
  [[nodiscard]] std::vector<Uri>& routes() { return routes_; }
  [[nodiscard]] const std::vector<Uri>& record_routes() const {
    return record_routes_;
  }
  [[nodiscard]] std::vector<Uri>& record_routes() { return record_routes_; }

  // -- Extension headers ---------------------------------------------------
  /// First value of an extension header, if present.
  [[nodiscard]] std::optional<std::string_view> header(
      std::string_view name) const;
  /// Sets (replacing any existing value of) an extension header.
  void set_header(std::string name, std::string value);
  void remove_header(std::string_view name);
  [[nodiscard]] const std::vector<std::pair<std::string, std::string>>&
  extension_headers() const {
    return extra_;
  }

  // -- Body ----------------------------------------------------------------
  [[nodiscard]] const std::string& body() const { return body_; }
  void set_body(std::string body) { body_ = std::move(body); }

  /// Serializes to RFC 3261 wire format (CRLF line endings).
  [[nodiscard]] std::string to_wire() const;

  /// Number of header lines a stateless forwarder must at least touch;
  /// used by the cost model's lazy-parsing account.
  [[nodiscard]] std::size_t header_count() const;

  /// Shares this message immutably.
  [[nodiscard]] MessagePtr finish() && {
    return std::make_shared<const Message>(std::move(*this));
  }

 private:
  bool is_request_ = true;
  Method method_ = Method::kInvite;
  Uri request_uri_;
  int status_code_ = 0;
  std::string reason_;

  std::vector<Via> vias_;
  NameAddr from_;
  NameAddr to_;
  std::string call_id_;
  CSeq cseq_;
  std::optional<NameAddr> contact_;
  int max_forwards_ = 70;
  std::vector<Uri> routes_;
  std::vector<Uri> record_routes_;
  std::vector<std::pair<std::string, std::string>> extra_;
  std::string body_;

  friend class Parser;
};

/// Copies a shared message for modification (copy-on-forward).
[[nodiscard]] inline Message clone(const Message& msg) { return msg; }

}  // namespace svk::sip
