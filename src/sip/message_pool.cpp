#include "sip/message_pool.hpp"

#include <new>
#include <vector>

namespace svk::sip {
namespace {

// allocate_shared<const Message> produces exactly one size class per
// libstdc++ version; a second class appears if anything else ever uses the
// allocator. Linear scan over this many bins is cheaper than any map.
constexpr std::size_t kMaxBins = 8;
// Per-bin freelist cap: bounds idle pool memory at kMaxParked blocks per
// size class per thread while still absorbing the forward path's
// allocate/release churn.
constexpr std::size_t kMaxParked = 4096;

struct Bin {
  std::size_t bytes = 0;
  std::vector<void*> free;
};

struct Pool {
  Bin bins[kMaxBins];
  MessagePoolStats stats;

  ~Pool() {
    for (Bin& bin : bins) {
      for (void* p : bin.free) ::operator delete(p);
    }
  }

  Bin* find(std::size_t bytes) {
    for (Bin& bin : bins) {
      if (bin.bytes == bytes) return &bin;
      if (bin.bytes == 0) {
        bin.bytes = bytes;
        return &bin;
      }
    }
    return nullptr;  // unusual size mix; fall through to the heap
  }
};

Pool& local_pool() {
  thread_local Pool pool;
  return pool;
}

}  // namespace

const MessagePoolStats& message_pool_stats() { return local_pool().stats; }

namespace detail {

void* pool_allocate(std::size_t bytes) {
  Pool& pool = local_pool();
  Bin* bin = pool.find(bytes);
  if (bin != nullptr && !bin->free.empty()) {
    void* p = bin->free.back();
    bin->free.pop_back();
    ++pool.stats.reuses;
    return p;
  }
  ++pool.stats.fresh_allocs;
  return ::operator new(bytes);
}

void pool_deallocate(void* p, std::size_t bytes) noexcept {
  Pool& pool = local_pool();
  Bin* bin = pool.find(bytes);
  if (bin != nullptr && bin->free.size() < kMaxParked) {
    bin->free.push_back(p);
    ++pool.stats.returns;
    return;
  }
  ++pool.stats.releases;
  ::operator delete(p);
}

}  // namespace detail
}  // namespace svk::sip
