// Freelist-backed allocator for shared (immutable) messages.
//
// Message::finish() turns a built message into a shared_ptr<const Message>.
// With make_shared that is one malloc + one free per message — and the
// forward path finishes a message per hop. This allocator recycles the
// allocate_shared block (control block + Message payload, one contiguous
// allocation) through a thread-local freelist binned by size class: after
// warmup, finish() and the final MessagePtr release touch no allocator.
//
// Thread notes: the freelist is thread-local and never shared, so no locks.
// A block freed on a different thread than it was allocated on simply joins
// that thread's freelist — all blocks come from (and, past the per-bin cap
// or at thread exit, return to) the global operator new/delete, so ownership
// is fully transferable. MessagePtrs may therefore cross threads freely.
#pragma once

#include <cstddef>
#include <cstdint>

namespace svk::sip {

/// Per-thread allocation counters; the zero-allocation steady-state test
/// pins `fresh_allocs` flat while `reuses` grows.
struct MessagePoolStats {
  std::uint64_t fresh_allocs = 0;  // blocks taken from operator new
  std::uint64_t reuses = 0;        // blocks served from the freelist
  std::uint64_t returns = 0;       // blocks parked back on the freelist
  std::uint64_t releases = 0;      // blocks given back to operator delete
};

/// This thread's pool counters.
const MessagePoolStats& message_pool_stats();

namespace detail {
void* pool_allocate(std::size_t bytes);
void pool_deallocate(void* p, std::size_t bytes) noexcept;
}  // namespace detail

/// Minimal std allocator over the thread-local message pool. Stateless;
/// all instances are interchangeable.
template <typename T>
struct MessagePoolAllocator {
  using value_type = T;

  MessagePoolAllocator() noexcept = default;
  template <typename U>
  constexpr MessagePoolAllocator(const MessagePoolAllocator<U>&) noexcept {}

  [[nodiscard]] T* allocate(std::size_t n) {
    return static_cast<T*>(detail::pool_allocate(n * sizeof(T)));
  }
  void deallocate(T* p, std::size_t n) noexcept {
    detail::pool_deallocate(p, n * sizeof(T));
  }

  template <typename U>
  friend constexpr bool operator==(const MessagePoolAllocator&,
                                   const MessagePoolAllocator<U>&) noexcept {
    return true;
  }
};

}  // namespace svk::sip
