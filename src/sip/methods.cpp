#include "sip/methods.hpp"

namespace svk::sip {

std::string_view to_string(Method m) {
  switch (m) {
    case Method::kInvite: return "INVITE";
    case Method::kAck: return "ACK";
    case Method::kBye: return "BYE";
    case Method::kCancel: return "CANCEL";
    case Method::kOptions: return "OPTIONS";
    case Method::kRegister: return "REGISTER";
    case Method::kInfo: return "INFO";
    case Method::kUpdate: return "UPDATE";
    case Method::kSubscribe: return "SUBSCRIBE";
    case Method::kNotify: return "NOTIFY";
    case Method::kUnknown: return "UNKNOWN";
  }
  return "UNKNOWN";
}

Method parse_method(std::string_view token) {
  if (token == "INVITE") return Method::kInvite;
  if (token == "ACK") return Method::kAck;
  if (token == "BYE") return Method::kBye;
  if (token == "CANCEL") return Method::kCancel;
  if (token == "OPTIONS") return Method::kOptions;
  if (token == "REGISTER") return Method::kRegister;
  if (token == "INFO") return Method::kInfo;
  if (token == "UPDATE") return Method::kUpdate;
  if (token == "SUBSCRIBE") return Method::kSubscribe;
  if (token == "NOTIFY") return Method::kNotify;
  return Method::kUnknown;
}

std::string_view reason_phrase(int status_code) {
  switch (status_code) {
    case 100: return "Trying";
    case 180: return "Ringing";
    case 183: return "Session Progress";
    case 200: return "OK";
    case 202: return "Accepted";
    case 301: return "Moved Permanently";
    case 302: return "Moved Temporarily";
    case 400: return "Bad Request";
    case 401: return "Unauthorized";
    case 403: return "Forbidden";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 407: return "Proxy Authentication Required";
    case 408: return "Request Timeout";
    case 480: return "Temporarily Unavailable";
    case 481: return "Call/Transaction Does Not Exist";
    case 482: return "Loop Detected";
    case 483: return "Too Many Hops";
    case 486: return "Busy Here";
    case 487: return "Request Terminated";
    case 500: return "Server Internal Error";
    case 503: return "Service Unavailable";
    case 504: return "Server Time-out";
    case 600: return "Busy Everywhere";
    case 603: return "Decline";
    default: return "Unknown";
  }
}

}  // namespace svk::sip
