// SIP request methods and response status codes (RFC 3261 and extensions).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace svk::sip {

enum class Method {
  kInvite,
  kAck,
  kBye,
  kCancel,
  kOptions,
  kRegister,
  kInfo,
  kUpdate,
  kSubscribe,
  kNotify,
  kUnknown,
};

[[nodiscard]] std::string_view to_string(Method m);

/// Parses a method token; unrecognized tokens map to Method::kUnknown.
[[nodiscard]] Method parse_method(std::string_view token);

/// Well-known status codes used by this implementation.
namespace status {
inline constexpr int kTrying = 100;
inline constexpr int kRinging = 180;
inline constexpr int kOk = 200;
inline constexpr int kUnauthorized = 401;
inline constexpr int kForbidden = 403;
inline constexpr int kNotFound = 404;
inline constexpr int kProxyAuthRequired = 407;
inline constexpr int kRequestTimeout = 408;
inline constexpr int kTooManyHops = 483;
inline constexpr int kServerError = 500;
inline constexpr int kServiceUnavailable = 503;
}  // namespace status

/// Default reason phrase for a status code; "Unknown" if unrecognized.
[[nodiscard]] std::string_view reason_phrase(int status_code);

/// Response classification helpers (RFC 3261 7.2).
[[nodiscard]] constexpr bool is_provisional(int code) {
  return code >= 100 && code < 200;
}
[[nodiscard]] constexpr bool is_final(int code) { return code >= 200; }
[[nodiscard]] constexpr bool is_success(int code) {
  return code >= 200 && code < 300;
}

}  // namespace svk::sip
