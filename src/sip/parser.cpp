#include "sip/parser.hpp"

#include <algorithm>
#include <charconv>
#include <string>
#include <vector>

namespace svk::sip {
namespace {

std::string_view trim(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) {
    s.remove_prefix(1);
  }
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t' ||
                        s.back() == '\r')) {
    s.remove_suffix(1);
  }
  return s;
}

/// Pops the next CRLF- (or LF-) terminated line from `rest`.
std::string_view next_line(std::string_view& rest) {
  const auto nl = rest.find('\n');
  std::string_view line;
  if (nl == std::string_view::npos) {
    line = rest;
    rest = {};
  } else {
    line = rest.substr(0, nl);
    rest = rest.substr(nl + 1);
  }
  if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
  return line;
}

bool parse_int(std::string_view text, int& out) {
  const auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), out);
  return ec == std::errc{} && ptr == text.data() + text.size();
}

bool parse_u32(std::string_view text, std::uint32_t& out) {
  const auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), out);
  return ec == std::errc{} && ptr == text.data() + text.size();
}

Result<Via> parse_via(std::string_view value) {
  value = trim(value);
  const auto space = value.find(' ');
  if (space == std::string_view::npos) {
    return make_error("via: missing sent-by");
  }
  Via via;
  via.protocol = trim(value.substr(0, space));
  std::string_view rest = trim(value.substr(space + 1));
  // sent-by[;params]
  const auto semi = rest.find(';');
  via.sent_by = trim(rest.substr(0, semi));
  if (via.sent_by.empty()) return make_error("via: empty sent-by");
  if (semi != std::string_view::npos) {
    std::string_view params = rest.substr(semi + 1);
    while (!params.empty()) {
      std::string_view item = params;
      if (const auto next = params.find(';');
          next != std::string_view::npos) {
        item = params.substr(0, next);
        params = params.substr(next + 1);
      } else {
        params = {};
      }
      item = trim(item);
      if (item.starts_with("branch=")) {
        via.branch = std::string(item.substr(7));
      } else if (item.starts_with("oc=")) {
        const std::string_view num = item.substr(3);
        double rate = 0.0;
        const auto [ptr, ec] =
            std::from_chars(num.data(), num.data() + num.size(), rate);
        if (ec == std::errc{} && ptr == num.data() + num.size() &&
            rate >= 0.0) {
          via.oc_rate = rate;
        }
      }
      // Other Via params (rport, received, ...) tolerated and dropped.
    }
  }
  return via;
}

/// Splits a header value on top-level commas — the combined-row form of
/// RFC 3261 7.3.1, "Via: a, b" being equivalent to two Via lines. Commas
/// inside angle brackets or double quotes do not split.
void split_header_values(std::string_view value,
                         std::vector<std::string_view>& out) {
  std::size_t start = 0;
  int angle = 0;
  bool quoted = false;
  for (std::size_t i = 0; i < value.size(); ++i) {
    const char c = value[i];
    if (quoted) {
      if (c == '"') quoted = false;
      continue;
    }
    if (c == '"') {
      quoted = true;
    } else if (c == '<') {
      ++angle;
    } else if (c == '>') {
      if (angle > 0) --angle;
    } else if (c == ',' && angle == 0) {
      out.push_back(value.substr(start, i - start));
      start = i + 1;
    }
  }
  out.push_back(value.substr(start));
}

/// Extracts the URI between angle brackets of "<...>" header values like
/// Route / Record-Route.
Result<Uri> parse_bracketed_uri(std::string_view value) {
  value = trim(value);
  if (value.size() >= 2 && value.front() == '<') {
    const auto close = value.find('>');
    if (close == std::string_view::npos) {
      return make_error("header: unbalanced '<'");
    }
    return Uri::parse(value.substr(1, close - 1));
  }
  return Uri::parse(value);
}

}  // namespace

Result<NameAddr> parse_name_addr(std::string_view text) {
  text = trim(text);
  NameAddr result;

  if (text.starts_with('"')) {
    const auto close = text.find('"', 1);
    if (close == std::string_view::npos) {
      return make_error("name-addr: unterminated display name");
    }
    result.display = std::string(text.substr(1, close - 1));
    text = trim(text.substr(close + 1));
  }

  std::string_view uri_text = text;
  std::string_view after;
  if (text.starts_with('<')) {
    const auto close = text.find('>');
    if (close == std::string_view::npos) {
      return make_error("name-addr: unbalanced '<'");
    }
    uri_text = text.substr(1, close - 1);
    after = text.substr(close + 1);
  } else {
    // Bare URI form: the tag (if any) trails after ';'. Since URI params
    // also use ';', split at ";tag=" specifically.
    if (const auto tag_pos = text.find(";tag=");
        tag_pos != std::string_view::npos) {
      uri_text = text.substr(0, tag_pos);
      after = text.substr(tag_pos);
    }
  }

  auto uri = Uri::parse(uri_text);
  if (!uri) return uri.error();
  result.uri = std::move(uri).value();

  // ;tag=... among the after-params.
  while (!after.empty()) {
    const auto semi = after.find(';');
    if (semi == std::string_view::npos) break;
    std::string_view item = after.substr(semi + 1);
    if (const auto next = item.find(';'); next != std::string_view::npos) {
      item = item.substr(0, next);
    }
    item = trim(item);
    if (item.starts_with("tag=")) {
      result.tag = std::string(item.substr(4));
      break;
    }
    after = after.substr(semi + 1);
  }
  return result;
}

Result<Message> Parser::parse(std::string_view wire) {
  std::string_view rest = wire;
  const std::string_view start_line = next_line(rest);
  if (start_line.empty()) return make_error("parse: empty start line");

  Message msg;
  if (start_line.starts_with("SIP/2.0 ")) {
    msg.is_request_ = false;
    std::string_view status_part = start_line.substr(8);
    const auto space = status_part.find(' ');
    std::string_view code_text = status_part.substr(0, space);
    if (!parse_int(code_text, msg.status_code_) || msg.status_code_ < 100 ||
        msg.status_code_ > 699) {
      return make_error("parse: bad status code");
    }
    msg.reason_ = space == std::string_view::npos
                      ? std::string()
                      : std::string(trim(status_part.substr(space + 1)));
  } else {
    msg.is_request_ = true;
    const auto sp1 = start_line.find(' ');
    const auto sp2 = start_line.rfind(' ');
    if (sp1 == std::string_view::npos || sp2 == sp1) {
      return make_error("parse: malformed request line");
    }
    if (trim(start_line.substr(sp2 + 1)) != "SIP/2.0") {
      return make_error("parse: unsupported SIP version");
    }
    msg.method_ = parse_method(start_line.substr(0, sp1));
    auto uri = Uri::parse(trim(start_line.substr(sp1 + 1, sp2 - sp1 - 1)));
    if (!uri) return uri.error();
    msg.request_uri_ = std::move(uri).value();
  }

  bool saw_call_id = false;
  bool saw_cseq = false;
  bool saw_from = false;
  bool saw_to = false;
  std::size_t content_length = 0;

  std::string folded;  // storage for unfolded multi-line header values
  std::vector<std::string_view> parts;
  while (true) {
    if (rest.empty()) break;
    std::string_view line = next_line(rest);
    if (line.empty()) break;  // blank line: end of headers

    // RFC 3261 7.3: a line beginning with SP or HT continues the previous
    // header line; the break and leading whitespace collapse to one SP.
    if (!rest.empty() && (rest.front() == ' ' || rest.front() == '\t')) {
      folded.assign(line);
      while (!rest.empty() && (rest.front() == ' ' || rest.front() == '\t')) {
        const std::string_view continuation = trim(next_line(rest));
        folded += ' ';
        folded += continuation;
      }
      line = folded;
    }

    const auto colon = line.find(':');
    if (colon == std::string_view::npos) {
      return make_error("parse: header without ':' — '" + std::string(line) +
                        "'");
    }
    const std::string_view name = trim(line.substr(0, colon));
    const std::string_view value = trim(line.substr(colon + 1));

    if (name == "Via" || name == "v") {
      parts.clear();
      split_header_values(value, parts);
      for (const std::string_view part : parts) {
        auto via = parse_via(part);
        if (!via) return via.error();
        msg.vias_.push_back(std::move(via).value());
      }
    } else if (name == "From" || name == "f") {
      auto na = parse_name_addr(value);
      if (!na) return na.error();
      msg.from_ = std::move(na).value();
      saw_from = true;
    } else if (name == "To" || name == "t") {
      auto na = parse_name_addr(value);
      if (!na) return na.error();
      msg.to_ = std::move(na).value();
      saw_to = true;
    } else if (name == "Call-ID" || name == "i") {
      msg.call_id_ = std::string(value);
      saw_call_id = true;
    } else if (name == "CSeq") {
      const auto space = value.find(' ');
      if (space == std::string_view::npos) {
        return make_error("parse: malformed CSeq");
      }
      if (!parse_u32(trim(value.substr(0, space)), msg.cseq_.seq)) {
        return make_error("parse: bad CSeq number");
      }
      msg.cseq_.method = parse_method(trim(value.substr(space + 1)));
      saw_cseq = true;
    } else if (name == "Contact" || name == "m") {
      auto na = parse_name_addr(value);
      if (!na) return na.error();
      msg.contact_ = std::move(na).value();
    } else if (name == "Max-Forwards") {
      if (!parse_int(value, msg.max_forwards_)) {
        return make_error("parse: bad Max-Forwards");
      }
    } else if (name == "Route") {
      parts.clear();
      split_header_values(value, parts);
      for (const std::string_view part : parts) {
        auto uri = parse_bracketed_uri(part);
        if (!uri) return uri.error();
        msg.routes_.push_back(std::move(uri).value());
      }
    } else if (name == "Record-Route") {
      parts.clear();
      split_header_values(value, parts);
      for (const std::string_view part : parts) {
        auto uri = parse_bracketed_uri(part);
        if (!uri) return uri.error();
        msg.record_routes_.push_back(std::move(uri).value());
      }
    } else if (name == "Content-Length" || name == "l") {
      int length = 0;
      if (!parse_int(value, length) || length < 0) {
        return make_error("parse: bad Content-Length");
      }
      content_length = static_cast<std::size_t>(length);
    } else {
      msg.extra_.emplace_back(std::string(name), std::string(value));
    }
  }

  if (!saw_call_id) return make_error("parse: missing Call-ID");
  if (!saw_cseq) return make_error("parse: missing CSeq");
  if (!saw_from) return make_error("parse: missing From");
  if (!saw_to) return make_error("parse: missing To");
  if (msg.vias_.empty()) return make_error("parse: missing Via");
  // Wire order is top Via first; the model stores the stack bottom-first.
  std::reverse(msg.vias_.begin(), msg.vias_.end());

  if (content_length > rest.size()) {
    return make_error("parse: truncated body");
  }
  msg.body_ = std::string(rest.substr(0, content_length));
  return msg;
}

}  // namespace svk::sip
