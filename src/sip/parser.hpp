// SIP wire-format parser (RFC 3261 subset matching Message::to_wire).
#pragma once

#include <string_view>

#include "common/result.hpp"
#include "sip/message.hpp"

namespace svk::sip {

class Parser {
 public:
  /// Parses a complete datagram into a Message. Returns an Error for
  /// malformed input (never throws for bad wire data — peer input is an
  /// expected failure source, not a logic error).
  [[nodiscard]] static Result<Message> parse(std::string_view wire);
};

/// Parses a "name-addr" header value: ["display"] <uri> [;tag=x] or a bare
/// URI with optional ;tag.
[[nodiscard]] Result<NameAddr> parse_name_addr(std::string_view text);

}  // namespace svk::sip
