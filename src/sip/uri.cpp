#include "sip/uri.hpp"

#include <cctype>
#include <charconv>

namespace svk::sip {
namespace {

bool valid_port(int port) { return port > 0 && port <= 65535; }

}  // namespace

Result<Uri> Uri::parse(std::string_view text) {
  Uri uri;

  const auto colon = text.find(':');
  if (colon == std::string_view::npos) {
    return make_error("uri: missing scheme separator");
  }
  uri.scheme_ = std::string(text.substr(0, colon));
  if (uri.scheme_ != "sip" && uri.scheme_ != "sips") {
    return make_error("uri: unsupported scheme '" + uri.scheme_ + "'");
  }
  std::string_view rest = text.substr(colon + 1);
  if (rest.empty()) return make_error("uri: empty body");

  // Strip ?headers (unsupported, tolerated).
  if (const auto q = rest.find('?'); q != std::string_view::npos) {
    rest = rest.substr(0, q);
  }

  // Split off ;params.
  std::string_view params;
  if (const auto semi = rest.find(';'); semi != std::string_view::npos) {
    params = rest.substr(semi + 1);
    rest = rest.substr(0, semi);
  }

  // user@host[:port] or host[:port].
  std::string_view hostport = rest;
  if (const auto at = rest.find('@'); at != std::string_view::npos) {
    uri.user_ = std::string(rest.substr(0, at));
    if (uri.user_.empty()) return make_error("uri: empty user before '@'");
    hostport = rest.substr(at + 1);
  }
  if (hostport.empty()) return make_error("uri: empty host");

  if (const auto pcolon = hostport.rfind(':');
      pcolon != std::string_view::npos) {
    const std::string_view port_text = hostport.substr(pcolon + 1);
    int port = 0;
    const auto [ptr, ec] = std::from_chars(
        port_text.data(), port_text.data() + port_text.size(), port);
    if (ec != std::errc{} || ptr != port_text.data() + port_text.size() ||
        !valid_port(port)) {
      return make_error("uri: bad port '" + std::string(port_text) + "'");
    }
    uri.port_ = port;
    hostport = hostport.substr(0, pcolon);
    if (hostport.empty()) return make_error("uri: empty host before port");
  }
  uri.host_ = std::string(hostport);

  // ;name=value;flag params.
  while (!params.empty()) {
    std::string_view item = params;
    if (const auto semi = params.find(';'); semi != std::string_view::npos) {
      item = params.substr(0, semi);
      params = params.substr(semi + 1);
    } else {
      params = {};
    }
    if (item.empty()) continue;
    if (const auto eq = item.find('='); eq != std::string_view::npos) {
      uri.params_.emplace_back(std::string(item.substr(0, eq)),
                               std::string(item.substr(eq + 1)));
    } else {
      uri.params_.emplace_back(std::string(item), std::string());
    }
  }
  return uri;
}

std::optional<std::string_view> Uri::param(std::string_view name) const {
  for (const auto& [key, value] : params_) {
    if (key == name) return std::string_view(value);
  }
  return std::nullopt;
}

void Uri::set_param(std::string name, std::string value) {
  for (auto& [key, existing] : params_) {
    if (key == name) {
      existing = std::move(value);
      return;
    }
  }
  params_.emplace_back(std::move(name), std::move(value));
}

std::string Uri::aor() const {
  return user_.empty() ? host_ : user_ + "@" + host_;
}

std::string Uri::to_string() const {
  std::string out = scheme_ + ":";
  if (!user_.empty()) {
    out += user_;
    out += '@';
  }
  out += host_;
  if (port_ != 0) {
    out += ':';
    out += std::to_string(port_);
  }
  for (const auto& [key, value] : params_) {
    out += ';';
    out += key;
    if (!value.empty()) {
      out += '=';
      out += value;
    }
  }
  return out;
}

}  // namespace svk::sip
