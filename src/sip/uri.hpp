// SIP URI (RFC 3261 19.1), the subset needed for proxy routing and location
// lookup: scheme, user, host, port and ;name=value parameters.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/result.hpp"

namespace svk::sip {

/// A parsed sip:/sips: URI, e.g. "sip:hal@us.ibm.com:5060;transport=udp".
class Uri {
 public:
  Uri() = default;
  Uri(std::string user, std::string host, int port = 0)
      : user_(std::move(user)), host_(std::move(host)), port_(port) {}

  /// Parses the textual form. Accepts an empty user part ("sip:host").
  [[nodiscard]] static Result<Uri> parse(std::string_view text);

  [[nodiscard]] const std::string& scheme() const { return scheme_; }
  [[nodiscard]] const std::string& user() const { return user_; }
  [[nodiscard]] const std::string& host() const { return host_; }
  /// 0 when the URI carries no explicit port.
  [[nodiscard]] int port() const { return port_; }

  void set_host(std::string host) { host_ = std::move(host); }
  void set_user(std::string user) { user_ = std::move(user); }
  void set_port(int port) { port_ = port; }

  /// Parameter access; names are case-sensitive in this implementation
  /// (our own stack is the only producer).
  [[nodiscard]] std::optional<std::string_view> param(
      std::string_view name) const;
  void set_param(std::string name, std::string value);
  [[nodiscard]] bool has_param(std::string_view name) const {
    return param(name).has_value();
  }
  [[nodiscard]] const std::vector<std::pair<std::string, std::string>>&
  params() const {
    return params_;
  }

  /// "user@host" — the canonical address-of-record key used by the location
  /// service and the authentication realm.
  [[nodiscard]] std::string aor() const;

  [[nodiscard]] std::string to_string() const;

  /// Equality over scheme, user, host and port (parameters excluded, as in
  /// loose AOR comparison).
  friend bool operator==(const Uri& a, const Uri& b) {
    return a.scheme_ == b.scheme_ && a.user_ == b.user_ &&
           a.host_ == b.host_ && a.port_ == b.port_;
  }

 private:
  std::string scheme_ = "sip";
  std::string user_;
  std::string host_;
  int port_ = 0;
  std::vector<std::pair<std::string, std::string>> params_;
};

}  // namespace svk::sip
