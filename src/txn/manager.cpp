#include "txn/manager.hpp"

#include <cassert>
#include <utility>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace svk::txn {

TransactionManager::TransactionManager(sim::Simulator& sim,
                                       TimerConfig timers)
    : sim_(sim), timers_(timers) {}

Dispatch TransactionManager::dispatch(const sip::MessagePtr& msg) {
  assert(msg);
  if (msg->is_request()) {
    const auto key = sip::server_key(*msg);
    if (auto it = servers_.find(key); it != servers_.end()) {
      it->second->receive_request(msg);
      return Dispatch::kHandledByServerTxn;
    }
    return Dispatch::kNewRequest;
  }
  const auto key = sip::client_key(*msg);
  if (auto it = clients_.find(key); it != clients_.end()) {
    it->second->receive_response(msg);
    return Dispatch::kHandledByClientTxn;
  }
  return Dispatch::kStrayResponse;
}

ClientTransaction& TransactionManager::create_client(
    const sip::MessagePtr& request, SendFn send, ClientCallbacks callbacks) {
  // The response will arrive with our Via on top, so the client key is
  // derived from the request's current top Via.
  sip::TransactionKey key{request->top_via().branch,
                          request->top_via().sent_by.str(),
                          request->cseq().method};
  const auto user_terminated = std::move(callbacks.on_terminated);
  callbacks.on_terminated = [this, key, user_terminated] {
    if (user_terminated) user_terminated();
    schedule_client_removal(key);
  };
  auto txn = std::make_unique<ClientTransaction>(
      sim_, timers_, request->cseq().method == sip::Method::kInvite, request,
      std::move(send), std::move(callbacks));
  ClientTransaction& ref = *txn;
  ++created_;
  clients_[key] = std::move(txn);
  if (const obs::Sinks& obs = sim_.obs(); obs.metrics != nullptr) {
    obs.metrics->counter("txn.client_created").inc();
  }
  note_active();
  if (tap_ != nullptr) {
    ref.set_tap(tap_);
    tap_->on_client_created(&ref, key, timers_);
  }
  ref.start();
  return ref;
}

ServerTransaction& TransactionManager::create_server(
    const sip::MessagePtr& request, SendFn send, ServerCallbacks callbacks) {
  const auto key = sip::server_key(*request);
  const auto user_terminated = std::move(callbacks.on_terminated);
  callbacks.on_terminated = [this, key, user_terminated] {
    if (user_terminated) user_terminated();
    schedule_server_removal(key);
  };
  auto txn = std::make_unique<ServerTransaction>(
      sim_, timers_, request->method() == sip::Method::kInvite, request,
      std::move(send), std::move(callbacks));
  ServerTransaction& ref = *txn;
  ++created_;
  servers_[key] = std::move(txn);
  if (const obs::Sinks& obs = sim_.obs(); obs.metrics != nullptr) {
    obs.metrics->counter("txn.server_created").inc();
  }
  note_active();
  if (tap_ != nullptr) {
    ref.set_tap(tap_);
    tap_->on_server_created(&ref, key, timers_);
  }
  return ref;
}

ServerTransaction* TransactionManager::find_server(const sip::Message& msg) {
  const auto it = servers_.find(sip::server_key(msg));
  return it != servers_.end() ? it->second.get() : nullptr;
}

ClientTransaction* TransactionManager::find_client(const sip::Message& msg) {
  const auto it = clients_.find(sip::client_key(msg));
  return it != clients_.end() ? it->second.get() : nullptr;
}

ServerTransaction* TransactionManager::find_server(
    const sip::TransactionKey& key) {
  const auto it = servers_.find(key);
  return it != servers_.end() ? it->second.get() : nullptr;
}

ClientTransaction* TransactionManager::find_client(
    const sip::TransactionKey& key) {
  const auto it = clients_.find(key);
  return it != clients_.end() ? it->second.get() : nullptr;
}

void TransactionManager::schedule_client_removal(
    const sip::TransactionKey& key) {
  // Removal is deferred to a fresh event so the transaction's member
  // functions can safely finish executing on the current stack.
  sim_.schedule(SimTime{}, [this, key] {
    if (tap_ != nullptr) {
      if (const auto it = clients_.find(key); it != clients_.end()) {
        tap_->on_client_removed(it->second.get());
      }
    }
    clients_.erase(key);
    note_active();
  });
}

void TransactionManager::schedule_server_removal(
    const sip::TransactionKey& key) {
  sim_.schedule(SimTime{}, [this, key] {
    if (tap_ != nullptr) {
      if (const auto it = servers_.find(key); it != servers_.end()) {
        tap_->on_server_removed(it->second.get());
      }
    }
    servers_.erase(key);
    note_active();
  });
}

void TransactionManager::note_active() {
  if (const obs::Sinks& obs = sim_.obs(); obs.tracer != nullptr) {
    obs.tracer->counter("active_txns", sim_.now(), trace_tid_, "count",
                        static_cast<double>(active_count()));
  }
}

}  // namespace svk::txn
