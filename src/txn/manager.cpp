#include "txn/manager.hpp"

#include <cassert>
#include <utility>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace svk::txn {

namespace {

/// The stored key method of a server transaction: its retained request's
/// method, ACK-normalized like server_key (transactions are never created
/// from ACKs, but the normalization keeps lookup and creation symmetric).
sip::Method server_stored_method(const ServerTransaction& txn) {
  const sip::Method m = txn.request()->method();
  return m == sip::Method::kAck ? sip::Method::kInvite : m;
}

}  // namespace

TransactionManager::TransactionManager(sim::Simulator& sim,
                                       TimerConfig timers)
    : sim_(sim), timers_(timers) {}

Dispatch TransactionManager::dispatch(const sip::MessagePtr& msg) {
  assert(msg);
  if (msg->is_request()) {
    const sip::TxnProbe probe = sip::key_for_request(*msg);
    if (ServerTransaction* txn = find_server(probe)) {
      txn->receive_request(msg);
      return Dispatch::kHandledByServerTxn;
    }
    // Miss: the element core usually hands this same message straight back
    // to create_server — keep the probe so it is not recomputed.
    cache_probe(msg, probe);
    return Dispatch::kNewRequest;
  }
  const sip::TxnProbe probe = sip::key_for_response(*msg);
  if (ClientTransaction* txn = find_client(probe)) {
    txn->receive_response(msg);
    return Dispatch::kHandledByClientTxn;
  }
  return Dispatch::kStrayResponse;
}

ClientTransaction& TransactionManager::create_client(
    const sip::MessagePtr& request, SendFn send, ClientCallbacks callbacks,
    TxnHandle* out_handle) {
  // The response will arrive with our Via on top, so the client key is
  // derived from the request's current top Via. The transaction retains the
  // request for its whole lifetime, so the table entry needs no owning key:
  // hash once here, compare against the retained request on probe.
  const sip::Via& via = request->top_via();
  const sip::Method method = request->cseq().method;
  TxnHandle handle;
  handle.hash = sip::txn_key_hash(via.branch, via.sent_by, method);
  auto user_terminated = std::move(callbacks.on_terminated);
  handle.slot = client_slab_.emplace(
      sim_, timers_, method == sip::Method::kInvite, request, std::move(send),
      std::move(callbacks));
  ClientTransaction& ref = *client_slab_.get(handle.slot);
  // The removal wrapper needs the handle, which exists only now.
  ref.set_on_terminated(
      [this, handle, user_terminated = std::move(user_terminated)] {
        if (user_terminated) user_terminated();
        schedule_client_removal(handle);
      });
  ++created_;
  clients_.insert(handle.hash, handle.slot);
  client_created_.inc(sim_.obs().metrics);
  note_active();
  if (tap_ != nullptr) {
    ref.set_tap(tap_);
    tap_->on_client_created(
        &ref, sip::TransactionKey{via.branch, via.sent_by.str(), method},
        timers_);
  }
  if (out_handle != nullptr) *out_handle = handle;
  ref.start();
  return ref;
}

ServerTransaction& TransactionManager::create_server(
    const sip::MessagePtr& request, SendFn send, ServerCallbacks callbacks,
    TxnHandle* out_handle) {
  const sip::TxnProbe probe = request_probe(request);
  TxnHandle handle;
  handle.hash = probe.hash;
  auto user_terminated = std::move(callbacks.on_terminated);
  handle.slot = server_slab_.emplace(
      sim_, timers_, request->method() == sip::Method::kInvite, request,
      std::move(send), std::move(callbacks));
  ServerTransaction& ref = *server_slab_.get(handle.slot);
  ref.set_on_terminated(
      [this, handle, user_terminated = std::move(user_terminated)] {
        if (user_terminated) user_terminated();
        schedule_server_removal(handle);
      });
  ++created_;
  servers_.insert(handle.hash, handle.slot);
  server_created_.inc(sim_.obs().metrics);
  note_active();
  if (tap_ != nullptr) {
    ref.set_tap(tap_);
    tap_->on_server_created(&ref, sip::server_key(*request), timers_);
  }
  if (out_handle != nullptr) *out_handle = handle;
  return ref;
}

ServerTransaction* TransactionManager::find_server(
    const sip::TxnProbe& probe) {
  common::SlabHandle* slot =
      servers_.find(probe.hash, [&](const common::SlabHandle& h) {
        const ServerTransaction* txn = server_slab_.get(h);
        const sip::Via& via = txn->request()->top_via();
        return probe.matches(via.branch, via.sent_by,
                             server_stored_method(*txn));
      });
  return slot != nullptr ? server_slab_.get(*slot) : nullptr;
}

ClientTransaction* TransactionManager::find_client(
    const sip::TxnProbe& probe) {
  common::SlabHandle* slot =
      clients_.find(probe.hash, [&](const common::SlabHandle& h) {
        const ClientTransaction* txn = client_slab_.get(h);
        const sip::Via& via = txn->request()->top_via();
        return probe.matches(via.branch, via.sent_by,
                             txn->request()->cseq().method);
      });
  return slot != nullptr ? client_slab_.get(*slot) : nullptr;
}

ServerTransaction* TransactionManager::find_server(const sip::Message& msg) {
  return find_server(sip::key_for_request(msg));
}

ClientTransaction* TransactionManager::find_client(const sip::Message& msg) {
  return find_client(sip::key_for_response(msg));
}

ServerTransaction* TransactionManager::find_server(
    const sip::TransactionKey& key) {
  return find_server(sip::key_probe(key));
}

ClientTransaction* TransactionManager::find_client(
    const sip::TransactionKey& key) {
  return find_client(sip::key_probe(key));
}

sip::TxnProbe TransactionManager::request_probe(const sip::MessagePtr& msg) {
  if (probe_anchor_ == msg) return cached_probe_;
  return sip::key_for_request(*msg);
}

void TransactionManager::schedule_client_removal(TxnHandle handle) {
  // Removal is deferred to a fresh event so the transaction's member
  // functions can safely finish executing on the current stack. A stale
  // handle (slot generation moved on) means the entry is already gone.
  sim_.schedule(SimTime{}, [this, handle] {
    if (ClientTransaction* txn = client_slab_.get(handle.slot)) {
      if (tap_ != nullptr) tap_->on_client_removed(txn);
      clients_.erase(handle.hash, [&](const common::SlabHandle& h) {
        return h == handle.slot;
      });
      client_slab_.erase(handle.slot);
    }
    note_active();
  });
}

void TransactionManager::schedule_server_removal(TxnHandle handle) {
  sim_.schedule(SimTime{}, [this, handle] {
    if (ServerTransaction* txn = server_slab_.get(handle.slot)) {
      if (tap_ != nullptr) tap_->on_server_removed(txn);
      servers_.erase(handle.hash, [&](const common::SlabHandle& h) {
        return h == handle.slot;
      });
      server_slab_.erase(handle.slot);
    }
    note_active();
  });
}

void TransactionManager::note_active() {
  if (const obs::Sinks& obs = sim_.obs(); obs.tracer != nullptr) {
    obs.tracer->counter("active_txns", sim_.now(), trace_tid_, "count",
                        static_cast<double>(active_count()));
  }
}

}  // namespace svk::txn
