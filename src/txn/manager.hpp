// Transaction table: matches incoming messages to transactions
// (RFC 3261 17.1.3 / 17.2.3) and owns transaction lifetimes.
//
// Storage is the flat slab-backed state store (DESIGN.md §12): transactions
// live in per-manager Slabs (stable addresses, freelist reuse, generation
// tags), and the client/server tables are FlatTables holding just
// (precomputed key hash, slab handle) per entry. The key itself is never
// copied into the table — equality dereferences the slab-resident
// transaction and compares against its retained request's top Via — so a
// dispatch computes one TxnProbe from string_views and probes with zero
// allocation, and steady-state create/dispatch/erase touches no allocator.
#pragma once

#include <cstdint>

#include "common/flat_table.hpp"
#include "common/slab.hpp"
#include "obs/metrics.hpp"
#include "sim/simulator.hpp"
#include "sip/branch.hpp"
#include "sip/message.hpp"
#include "txn/transaction.hpp"

namespace svk::txn {

/// What the dispatcher decided about an incoming message.
enum class Dispatch {
  /// Request matched no transaction: the element core must handle it
  /// (create a transaction, forward statelessly, ...).
  kNewRequest,
  /// Request (or ACK) matched an existing server transaction and was
  /// handled there — typically a retransmission, absorbed.
  kHandledByServerTxn,
  /// Response matched a client transaction and was consumed by it.
  kHandledByClientTxn,
  /// Response matched nothing: forward statelessly (proxy) or drop (UA).
  kStrayResponse,
};

/// Stable reference to one table entry: the entry's precomputed key hash
/// plus the generation-tagged slab handle. POD, 16 bytes — owners capture
/// this in callbacks instead of an owning TransactionKey (two string
/// copies), and resolution is a generation check instead of a probe.
/// Outliving the transaction is safe: a stale handle resolves to null.
struct TxnHandle {
  std::uint64_t hash = 0;
  common::SlabHandle slot;

  [[nodiscard]] bool null() const { return slot.null(); }
};

/// Owns all transactions of one element (proxy or user agent).
class TransactionManager {
 public:
  TransactionManager(sim::Simulator& sim, TimerConfig timers);

  /// Routes an incoming message into the transaction table.
  Dispatch dispatch(const sip::MessagePtr& msg);

  /// Creates and starts a client transaction for `request` (whose top Via
  /// must already carry this element's branch). `callbacks.on_terminated`
  /// may be empty; the manager always removes the entry afterwards.
  /// `out_handle`, when given, receives the new entry's handle.
  ClientTransaction& create_client(const sip::MessagePtr& request,
                                   SendFn send, ClientCallbacks callbacks,
                                   TxnHandle* out_handle = nullptr);

  /// Creates a server transaction for an incoming `request`. A probe
  /// computed for this exact message earlier in the same event (the
  /// find-miss that led here) is reused rather than recomputed.
  ServerTransaction& create_server(const sip::MessagePtr& request,
                                   SendFn send, ServerCallbacks callbacks,
                                   TxnHandle* out_handle = nullptr);

  /// Looks up the server transaction that would match `msg`, if any.
  [[nodiscard]] ServerTransaction* find_server(const sip::Message& msg);
  [[nodiscard]] ClientTransaction* find_client(const sip::Message& msg);
  [[nodiscard]] ServerTransaction* find_server(const sip::TransactionKey& key);
  [[nodiscard]] ClientTransaction* find_client(const sip::TransactionKey& key);
  /// O(1) handle resolution (generation-checked; null when gone).
  [[nodiscard]] ServerTransaction* find_server(TxnHandle handle) {
    return server_slab_.get(handle.slot);
  }
  [[nodiscard]] ClientTransaction* find_client(TxnHandle handle) {
    return client_slab_.get(handle.slot);
  }

  [[nodiscard]] std::size_t active_count() const {
    return client_slab_.size() + server_slab_.size();
  }
  [[nodiscard]] std::uint64_t created_count() const { return created_; }

  /// State-store allocation counters, aggregated over both sides (perf
  /// tests pin that these stop moving once the pool is warm).
  [[nodiscard]] std::uint64_t store_allocs() const {
    return client_slab_.stats().chunk_allocs +
           server_slab_.stats().chunk_allocs + clients_.stats().grows +
           servers_.stats().grows;
  }

  /// Node id used for trace events (the owning element's address); 0 until
  /// set. Tracing reads the simulator's observability sinks.
  void set_trace_tid(std::uint32_t tid) { trace_tid_ = tid; }

  /// Installs the conformance tap on this table: transactions created from
  /// now on notify the tap of their creation, every wire send, every
  /// externally visible event, and their removal. Null disables checking.
  /// Install before traffic flows; already-live transactions are not
  /// retrofitted.
  void set_conformance_tap(ConformanceTap* tap) { tap_ = tap; }

 private:
  void schedule_client_removal(TxnHandle handle);
  void schedule_server_removal(TxnHandle handle);
  /// Emits the active-transaction counter track after a table change.
  void note_active();
  /// The probe for `msg`, reusing the one cached by a find earlier in the
  /// same event when it was computed for this very message.
  [[nodiscard]] sip::TxnProbe request_probe(const sip::MessagePtr& msg);
  /// Caches `probe` as the last one computed (anchoring the message so the
  /// views stay valid and the pooled block cannot be recycled under us).
  void cache_probe(const sip::MessagePtr& msg, const sip::TxnProbe& probe) {
    probe_anchor_ = msg;
    cached_probe_ = probe;
  }

  [[nodiscard]] ServerTransaction* find_server(const sip::TxnProbe& probe);
  [[nodiscard]] ClientTransaction* find_client(const sip::TxnProbe& probe);

  sim::Simulator& sim_;
  TimerConfig timers_;
  ConformanceTap* tap_{nullptr};
  std::uint32_t trace_tid_{0};
  std::uint64_t created_{0};
  common::Slab<ClientTransaction> client_slab_;
  common::Slab<ServerTransaction> server_slab_;
  common::FlatTable<common::SlabHandle> clients_;
  common::FlatTable<common::SlabHandle> servers_;
  obs::CounterHandle client_created_{"txn.client_created"};
  obs::CounterHandle server_created_{"txn.server_created"};
  /// Create-after-miss probe cache: the dispatch/find that reported "no
  /// transaction" already hashed the key; create_server reuses it when the
  /// same message is handed straight back.
  sip::MessagePtr probe_anchor_;
  sip::TxnProbe cached_probe_;
};

}  // namespace svk::txn
