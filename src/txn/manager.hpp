// Transaction table: matches incoming messages to transactions
// (RFC 3261 17.1.3 / 17.2.3) and owns transaction lifetimes.
#pragma once

#include <cstdint>
#include <memory>
#include <unordered_map>

#include "sim/simulator.hpp"
#include "sip/branch.hpp"
#include "sip/message.hpp"
#include "txn/transaction.hpp"

namespace svk::txn {

/// What the dispatcher decided about an incoming message.
enum class Dispatch {
  /// Request matched no transaction: the element core must handle it
  /// (create a transaction, forward statelessly, ...).
  kNewRequest,
  /// Request (or ACK) matched an existing server transaction and was
  /// handled there — typically a retransmission, absorbed.
  kHandledByServerTxn,
  /// Response matched a client transaction and was consumed by it.
  kHandledByClientTxn,
  /// Response matched nothing: forward statelessly (proxy) or drop (UA).
  kStrayResponse,
};

/// Owns all transactions of one element (proxy or user agent).
class TransactionManager {
 public:
  TransactionManager(sim::Simulator& sim, TimerConfig timers);

  /// Routes an incoming message into the transaction table.
  Dispatch dispatch(const sip::MessagePtr& msg);

  /// Creates and starts a client transaction for `request` (whose top Via
  /// must already carry this element's branch). `callbacks.on_terminated`
  /// may be empty; the manager always removes the entry afterwards.
  ClientTransaction& create_client(const sip::MessagePtr& request,
                                   SendFn send, ClientCallbacks callbacks);

  /// Creates a server transaction for an incoming `request`.
  ServerTransaction& create_server(const sip::MessagePtr& request,
                                   SendFn send, ServerCallbacks callbacks);

  /// Looks up the server transaction that would match `msg`, if any.
  [[nodiscard]] ServerTransaction* find_server(const sip::Message& msg);
  [[nodiscard]] ClientTransaction* find_client(const sip::Message& msg);
  [[nodiscard]] ServerTransaction* find_server(const sip::TransactionKey& key);
  [[nodiscard]] ClientTransaction* find_client(const sip::TransactionKey& key);

  [[nodiscard]] std::size_t active_count() const {
    return clients_.size() + servers_.size();
  }
  [[nodiscard]] std::uint64_t created_count() const { return created_; }

  /// Node id used for trace events (the owning element's address); 0 until
  /// set. Tracing reads the simulator's observability sinks.
  void set_trace_tid(std::uint32_t tid) { trace_tid_ = tid; }

  /// Installs the conformance tap on this table: transactions created from
  /// now on notify the tap of their creation, every wire send, every
  /// externally visible event, and their removal. Null disables checking.
  /// Install before traffic flows; already-live transactions are not
  /// retrofitted.
  void set_conformance_tap(ConformanceTap* tap) { tap_ = tap; }

 private:
  void schedule_client_removal(const sip::TransactionKey& key);
  void schedule_server_removal(const sip::TransactionKey& key);
  /// Emits the active-transaction counter track after a table change.
  void note_active();

  sim::Simulator& sim_;
  TimerConfig timers_;
  ConformanceTap* tap_{nullptr};
  std::uint32_t trace_tid_{0};
  std::uint64_t created_{0};
  std::unordered_map<sip::TransactionKey, std::unique_ptr<ClientTransaction>,
                     sip::TransactionKeyHash>
      clients_;
  std::unordered_map<sip::TransactionKey, std::unique_ptr<ServerTransaction>,
                     sip::TransactionKeyHash>
      servers_;
};

}  // namespace svk::txn
