// Conformance tap: a read-only observer interface the checking subsystem
// (src/check) implements to shadow the production transaction machines.
//
// The interface lives in svk_txn so the transaction layer carries no
// dependency on the checker; the tap pointer is null by default and every
// notification site is guarded by a single branch, which keeps the
// disabled-path cost to a well-predicted never-taken test (the
// zero-cost-when-disabled guarantee DESIGN.md section 10 documents).
//
// Protocol: the manager announces creations and (post-termination)
// removals; each transaction announces every wire send it performs and, at
// the END of every externally visible event (API call or timer fire), the
// event kind. An observer therefore sees, per event: the sends it caused,
// then the event itself — at which point the transaction's public state has
// settled and can be compared against a reference machine.
#pragma once

#include "sip/branch.hpp"
#include "sip/message.hpp"
#include "txn/timers.hpp"

namespace svk::txn {

class ClientTransaction;
class ServerTransaction;

/// Externally visible events of a client transaction's life.
enum class ClientEvent {
  kStart,            // start(): request sent, timers armed
  kRxResponse,       // receive_response()
  kTimerRetransmit,  // timer A/E fired
  kTimerTimeout,     // timer B/F/C fired
  kTimerLinger,      // timer D/K fired
};

enum class ServerEvent {
  kRxRequest,        // receive_request(): retransmission or ACK
  kRespond,          // respond(): TU supplied a response
  kTimerRetransmit,  // timer G fired
  kTimerTimeout,     // timer H fired
  kTimerLinger,      // timer I/J fired
};

class ConformanceTap {
 public:
  virtual ~ConformanceTap() = default;

  virtual void on_client_created(const ClientTransaction* txn,
                                 const sip::TransactionKey& key,
                                 const TimerConfig& timers) = 0;
  virtual void on_client_send(const ClientTransaction* txn,
                              const sip::MessagePtr& msg) = 0;
  /// `msg` is the response for kRxResponse, null for timer events/start.
  virtual void on_client_event(const ClientTransaction* txn, ClientEvent event,
                               const sip::Message* msg) = 0;
  virtual void on_client_removed(const ClientTransaction* txn) = 0;

  virtual void on_server_created(const ServerTransaction* txn,
                                 const sip::TransactionKey& key,
                                 const TimerConfig& timers) = 0;
  virtual void on_server_send(const ServerTransaction* txn,
                              const sip::MessagePtr& msg) = 0;
  /// `msg` is the request for kRxRequest, the response for kRespond, null
  /// for timer events.
  virtual void on_server_event(const ServerTransaction* txn, ServerEvent event,
                               const sip::Message* msg) = 0;
  virtual void on_server_removed(const ServerTransaction* txn) = 0;
};

}  // namespace svk::txn
