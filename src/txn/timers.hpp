// SIP transaction timer configuration (RFC 3261 17, Table 4).
#pragma once

#include "common/sim_time.hpp"

namespace svk::txn {

/// Base timers; all derived timers follow the RFC 3261 formulas. UDP
/// transport is assumed throughout (the paper's SIPp/OpenSER testbed ran
/// UDP), so the "unreliable transport" values apply.
struct TimerConfig {
  SimTime t1 = SimTime::millis(500);  // RTT estimate
  SimTime t2 = SimTime::seconds(4);   // retransmit cap for non-INVITE
  SimTime t4 = SimTime::seconds(5);   // max message lifetime in the network
  /// Timer C (RFC 3261 16.6 step 11): how long an INVITE client
  /// transaction may sit in Proceeding after a provisional before it is
  /// timed out. Without it, a peer that answers 180 and then dies leaks
  /// the transaction forever (a bug the chaos harness catches). The RFC
  /// requires > 3 minutes; OpenSER's fr_inv_timer serves the same role.
  SimTime proceeding_timeout = SimTime::seconds(180);

  [[nodiscard]] SimTime timer_a() const { return t1; }        // INVITE rtx
  [[nodiscard]] SimTime timer_b() const { return 64 * t1; }   // INVITE timeout
  [[nodiscard]] SimTime timer_c() const { return proceeding_timeout; }
  [[nodiscard]] SimTime timer_d() const {                     // wait rtx resp
    return SimTime::seconds(32);
  }
  [[nodiscard]] SimTime timer_e() const { return t1; }        // non-INV rtx
  [[nodiscard]] SimTime timer_f() const { return 64 * t1; }   // non-INV timeout
  [[nodiscard]] SimTime timer_g() const { return t1; }        // INV resp rtx
  [[nodiscard]] SimTime timer_h() const { return 64 * t1; }   // wait ACK
  [[nodiscard]] SimTime timer_i() const { return t4; }        // wait ACK rtx
  [[nodiscard]] SimTime timer_j() const { return 64 * t1; }   // non-INV absorb
  [[nodiscard]] SimTime timer_k() const { return t4; }        // wait resp rtx
};

}  // namespace svk::txn
