#include "txn/transaction.hpp"

#include <algorithm>
#include <cassert>

namespace svk::txn {
namespace {

/// Hop-by-hop ACK for a non-2xx final response (RFC 3261 17.1.1.3): same
/// branch/top Via as the INVITE, To copied from the response (it carries the
/// UAS tag).
sip::MessagePtr build_non2xx_ack(const sip::Message& invite,
                                 const sip::Message& response) {
  sip::Message ack = sip::Message::request(
      sip::Method::kAck, invite.request_uri(), invite.from(), response.to(),
      invite.call_id(),
      sip::CSeq{invite.cseq().seq, sip::Method::kAck});
  ack.push_via(invite.top_via());
  ack.set_max_forwards(invite.max_forwards());
  return std::move(ack).finish();
}

}  // namespace

// ---------------------------------------------------------------------------
// ClientTransaction
// ---------------------------------------------------------------------------

ClientTransaction::ClientTransaction(sim::Simulator& sim,
                                     const TimerConfig& timers,
                                     bool is_invite, sip::MessagePtr request,
                                     SendFn send, ClientCallbacks callbacks)
    : sim_(sim),
      timers_(timers),
      is_invite_(is_invite),
      request_(std::move(request)),
      send_(std::move(send)),
      callbacks_(std::move(callbacks)),
      state_(is_invite ? ClientState::kCalling : ClientState::kTrying),
      rtx_interval_(is_invite ? timers.timer_a() : timers.timer_e()) {
  assert(request_ && request_->is_request());
}

ClientTransaction::~ClientTransaction() { cancel_timers(); }

void ClientTransaction::cancel_timers() {
  sim_.cancel(rtx_timer_);
  sim_.cancel(timeout_timer_);
  sim_.cancel(linger_timer_);
  rtx_timer_ = timeout_timer_ = linger_timer_ = 0;
}

void ClientTransaction::wire_send(const sip::MessagePtr& msg) {
  if (tap_ != nullptr) tap_->on_client_send(this, msg);
  send_(msg);
}

void ClientTransaction::start() {
  wire_send(request_);
  arm_retransmit(rtx_interval_);
  const SimTime timeout =
      is_invite_ ? timers_.timer_b() : timers_.timer_f();
  timeout_timer_ = sim_.schedule(timeout, [this] { fire_timeout(); });
  notify(ClientEvent::kStart);
}

void ClientTransaction::fire_timeout() {
  timeout_timer_ = 0;
  // Calling/Trying: timer B/F. Proceeding: timer C (INVITE, armed per
  // provisional) or F (non-INVITE, armed at start).
  const bool may_timeout =
      state_ == ClientState::kCalling || state_ == ClientState::kTrying ||
      state_ == ClientState::kProceeding;
  if (may_timeout) {
    state_ = ClientState::kTerminated;
    cancel_timers();
    if (callbacks_.on_timeout) callbacks_.on_timeout();
    if (callbacks_.on_terminated) callbacks_.on_terminated();
  }
  notify(ClientEvent::kTimerTimeout);
}

void ClientTransaction::arm_retransmit(SimTime interval) {
  rtx_timer_ = sim_.schedule(interval, [this] {
    rtx_timer_ = 0;
    const bool retransmitting =
        state_ == ClientState::kCalling || state_ == ClientState::kTrying ||
        (!is_invite_ && state_ == ClientState::kProceeding);
    if (retransmitting) {
      ++retransmits_;
      wire_send(request_);
      // Timer A doubles unbounded; timer E doubles capped at T2; in the
      // non-INVITE Proceeding state retransmission continues at T2 flat.
      if (is_invite_) {
        rtx_interval_ = 2 * rtx_interval_;
      } else if (state_ == ClientState::kProceeding) {
        rtx_interval_ = timers_.t2;
      } else {
        rtx_interval_ = std::min(2 * rtx_interval_, timers_.t2);
      }
      arm_retransmit(rtx_interval_);
    }
    notify(ClientEvent::kTimerRetransmit);
  });
}

void ClientTransaction::send_ack_for(const sip::MessagePtr& response) {
  wire_send(build_non2xx_ack(*request_, *response));
}

void ClientTransaction::enter_completed_invite(
    const sip::MessagePtr& response) {
  send_ack_for(response);
  state_ = ClientState::kCompleted;
  sim_.cancel(rtx_timer_);
  sim_.cancel(timeout_timer_);
  rtx_timer_ = timeout_timer_ = 0;
  linger_timer_ = sim_.schedule(timers_.timer_d(), [this] {
    linger_timer_ = 0;
    terminate();
    notify(ClientEvent::kTimerLinger);
  });
}

void ClientTransaction::terminate() {
  if (state_ == ClientState::kTerminated) return;
  state_ = ClientState::kTerminated;
  cancel_timers();
  if (callbacks_.on_terminated) callbacks_.on_terminated();
}

void ClientTransaction::receive_response(const sip::MessagePtr& response) {
  receive_response_impl(response);
  notify(ClientEvent::kRxResponse, response.get());
}

void ClientTransaction::receive_response_impl(
    const sip::MessagePtr& response) {
  assert(response && response->is_response());
  const int code = response->status_code();

  switch (state_) {
    case ClientState::kCalling:  // INVITE machine
    case ClientState::kTrying:   // non-INVITE machine
    case ClientState::kProceeding: {
      if (sip::is_provisional(code)) {
        if (state_ != ClientState::kProceeding) {
          state_ = ClientState::kProceeding;
          if (is_invite_) {
            // INVITE: provisional stops request retransmission and timer B.
            sim_.cancel(rtx_timer_);
            rtx_timer_ = 0;
          }
        }
        if (is_invite_) {
          // Timer C replaces timer B: the transaction may not sit in
          // Proceeding forever waiting on a peer that died after its 1xx.
          // Refreshed on every provisional (RFC 3261 16.7 step 2).
          timeout_timer_ = sim_.reschedule(timeout_timer_, timers_.timer_c(),
                                           [this] { fire_timeout(); });
        }
        if (callbacks_.on_response) callbacks_.on_response(response);
        return;
      }
      // Final response.
      if (is_invite_) {
        if (sip::is_success(code)) {
          // 2xx: transaction terminates; ACK is the TU's end-to-end job.
          if (callbacks_.on_response) callbacks_.on_response(response);
          terminate();
        } else {
          if (callbacks_.on_response) callbacks_.on_response(response);
          enter_completed_invite(response);
        }
      } else {
        if (callbacks_.on_response) callbacks_.on_response(response);
        state_ = ClientState::kCompleted;
        sim_.cancel(rtx_timer_);
        sim_.cancel(timeout_timer_);
        rtx_timer_ = timeout_timer_ = 0;
        linger_timer_ = sim_.schedule(timers_.timer_k(), [this] {
          linger_timer_ = 0;
          terminate();
          notify(ClientEvent::kTimerLinger);
        });
      }
      return;
    }
    case ClientState::kCompleted:
      // Retransmitted final: absorb; for INVITE, re-ACK (17.1.1.2).
      if (is_invite_ && sip::is_final(code) && !sip::is_success(code)) {
        send_ack_for(response);
      }
      return;
    case ClientState::kTerminated:
      return;
  }
}

// ---------------------------------------------------------------------------
// ServerTransaction
// ---------------------------------------------------------------------------

ServerTransaction::ServerTransaction(sim::Simulator& sim,
                                     const TimerConfig& timers,
                                     bool is_invite, sip::MessagePtr request,
                                     SendFn send, ServerCallbacks callbacks)
    : sim_(sim),
      timers_(timers),
      is_invite_(is_invite),
      request_(std::move(request)),
      send_(std::move(send)),
      callbacks_(std::move(callbacks)),
      state_(is_invite ? ServerState::kProceeding : ServerState::kTrying),
      rtx_interval_(timers.timer_g()) {
  assert(request_ && request_->is_request());
}

ServerTransaction::~ServerTransaction() { cancel_timers(); }

void ServerTransaction::cancel_timers() {
  sim_.cancel(rtx_timer_);
  sim_.cancel(timeout_timer_);
  sim_.cancel(linger_timer_);
  rtx_timer_ = timeout_timer_ = linger_timer_ = 0;
}

void ServerTransaction::terminate() {
  if (state_ == ServerState::kTerminated) return;
  state_ = ServerState::kTerminated;
  cancel_timers();
  if (callbacks_.on_terminated) callbacks_.on_terminated();
}

void ServerTransaction::wire_send(const sip::MessagePtr& msg) {
  if (tap_ != nullptr) tap_->on_server_send(this, msg);
  send_(msg);
}

void ServerTransaction::receive_request(const sip::MessagePtr& request) {
  receive_request_impl(request);
  notify(ServerEvent::kRxRequest, request.get());
}

void ServerTransaction::receive_request_impl(const sip::MessagePtr& request) {
  assert(request && request->is_request());
  if (state_ == ServerState::kTerminated) return;

  if (is_invite_ && request->method() == sip::Method::kAck) {
    if (state_ == ServerState::kCompleted) {
      // ACK for our non-2xx final: stop retransmitting, linger on timer I
      // to absorb further ACKs.
      state_ = ServerState::kConfirmed;
      sim_.cancel(rtx_timer_);
      sim_.cancel(timeout_timer_);
      rtx_timer_ = timeout_timer_ = 0;
      linger_timer_ = sim_.schedule(timers_.timer_i(), [this] {
        linger_timer_ = 0;
        terminate();
        notify(ServerEvent::kTimerLinger);
      });
      if (callbacks_.on_ack) callbacks_.on_ack(request);
    }
    // ACK retransmissions in Confirmed are absorbed silently.
    return;
  }

  // Retransmitted request: absorb, replaying the latest response if any
  // (RFC 3261 17.2.1 / 17.2.2).
  ++absorbed_;
  if (last_response_ &&
      (state_ == ServerState::kProceeding ||
       state_ == ServerState::kCompleted)) {
    wire_send(last_response_);
  }
}

void ServerTransaction::respond(const sip::MessagePtr& response) {
  respond_impl(response);
  notify(ServerEvent::kRespond, response.get());
}

void ServerTransaction::respond_impl(const sip::MessagePtr& response) {
  assert(response && response->is_response());
  if (state_ == ServerState::kTerminated) return;
  const int code = response->status_code();

  if (sip::is_provisional(code)) {
    // A provisional after a final must not regress Completed/Confirmed back
    // to Proceeding: the regression would strand the armed completion
    // timers (G/H or J check for kCompleted and would never terminate the
    // transaction) and resume retransmitting the wrong last_response_.
    if (state_ != ServerState::kTrying &&
        state_ != ServerState::kProceeding) {
      return;
    }
    last_response_ = response;
    wire_send(response);
    state_ = ServerState::kProceeding;
    return;
  }
  // Duplicate final from the TU: the first final won and its timers are
  // armed; sending and re-arming here would overwrite the still-armed
  // timer ids, leaking the old events into the wheel to double-fire.
  if (state_ != ServerState::kTrying && state_ != ServerState::kProceeding) {
    return;
  }
  last_response_ = response;
  wire_send(response);
  if (is_invite_) {
    if (sip::is_success(code)) {
      // 2xx: INVITE server transaction terminates at once (17.2.1); 2xx
      // retransmission is owned by the UAS core end-to-end.
      terminate();
    } else {
      state_ = ServerState::kCompleted;
      arm_response_retransmit(rtx_interval_);
      timeout_timer_ = sim_.reschedule(timeout_timer_, timers_.timer_h(),
                                       [this] {
        timeout_timer_ = 0;
        if (state_ == ServerState::kCompleted) {
          if (callbacks_.on_timeout) callbacks_.on_timeout();
          terminate();
        }
        notify(ServerEvent::kTimerTimeout);
      });
    }
  } else {
    state_ = ServerState::kCompleted;
    linger_timer_ = sim_.reschedule(linger_timer_, timers_.timer_j(), [this] {
      linger_timer_ = 0;
      terminate();
      notify(ServerEvent::kTimerLinger);
    });
  }
}

void ServerTransaction::arm_response_retransmit(SimTime interval) {
  rtx_timer_ = sim_.schedule(interval, [this] {
    rtx_timer_ = 0;
    if (state_ == ServerState::kCompleted) {
      wire_send(last_response_);
      rtx_interval_ = std::min(2 * rtx_interval_, timers_.t2);
      arm_response_retransmit(rtx_interval_);
    }
    notify(ServerEvent::kTimerRetransmit);
  });
}

}  // namespace svk::txn
