// RFC 3261 section 17 transaction state machines.
//
// A transaction is the stateful unit the paper's servers maintain: it
// absorbs request retransmissions (server side), drives request
// retransmissions over UDP (client side), and times out abandoned exchanges.
// Four machines exist: INVITE/non-INVITE x client/server.
//
// Machines communicate with their owner purely through callbacks
// (I.25-style small interfaces): a wire-send function and transaction-user
// events. They never touch the network or the proxy core directly.
#pragma once

#include <functional>
#include <utility>

#include "sim/simulator.hpp"
#include "sip/branch.hpp"
#include "sip/message.hpp"
#include "txn/tap.hpp"
#include "txn/timers.hpp"

namespace svk::txn {

enum class ClientState { kCalling, kTrying, kProceeding, kCompleted, kTerminated };
enum class ServerState { kTrying, kProceeding, kCompleted, kConfirmed, kTerminated };

/// Callbacks from a transaction to its user (proxy core or UA core).
struct ClientCallbacks {
  /// Invoked for every response passed up (provisional and final;
  /// retransmitted finals are absorbed and NOT passed up again).
  std::function<void(const sip::MessagePtr&)> on_response;
  /// Timer B/F fired with no final response.
  std::function<void()> on_timeout;
  /// Machine reached Terminated (owner may destroy it).
  std::function<void()> on_terminated;
};

struct ServerCallbacks {
  /// ACK arrived for a non-2xx final response (INVITE server only).
  std::function<void(const sip::MessagePtr&)> on_ack;
  /// Timer H fired: no ACK for our non-2xx final.
  std::function<void()> on_timeout;
  std::function<void()> on_terminated;
};

/// Function used to put a message on the wire (destination is bound by the
/// owner when constructing the transaction).
using SendFn = std::function<void(const sip::MessagePtr&)>;

/// Client transaction (RFC 3261 17.1). Construct, then call start().
class ClientTransaction {
 public:
  /// \param is_invite  selects the INVITE (17.1.1) vs non-INVITE (17.1.2)
  ///                   machine
  ClientTransaction(sim::Simulator& sim, const TimerConfig& timers,
                    bool is_invite, sip::MessagePtr request, SendFn send,
                    ClientCallbacks callbacks);
  ~ClientTransaction();

  ClientTransaction(const ClientTransaction&) = delete;
  ClientTransaction& operator=(const ClientTransaction&) = delete;

  /// Transmits the request and arms the timers.
  void start();

  /// Feeds a response matched to this transaction.
  void receive_response(const sip::MessagePtr& response);

  [[nodiscard]] ClientState state() const { return state_; }
  [[nodiscard]] const sip::MessagePtr& request() const { return request_; }
  [[nodiscard]] int retransmit_count() const { return retransmits_; }
  [[nodiscard]] bool is_invite() const { return is_invite_; }

  /// Installs (or clears) the conformance tap. Null disables all
  /// notifications; the manager sets this before start().
  void set_tap(ConformanceTap* tap) { tap_ = tap; }

  /// Replaces the termination callback. The manager's removal wrapper
  /// captures the table handle, which exists only once the transaction sits
  /// in the slab — so it is installed right after construction, before any
  /// event can fire.
  void set_on_terminated(std::function<void()> f) {
    callbacks_.on_terminated = std::move(f);
  }

 private:
  void receive_response_impl(const sip::MessagePtr& response);
  void enter_completed_invite(const sip::MessagePtr& response);
  void send_ack_for(const sip::MessagePtr& response);
  void arm_retransmit(SimTime interval);
  void fire_timeout();
  void terminate();
  void cancel_timers();
  /// All wire output funnels through here so the tap sees every send.
  void wire_send(const sip::MessagePtr& msg);
  void notify(ClientEvent event, const sip::Message* msg = nullptr) {
    if (tap_ != nullptr) tap_->on_client_event(this, event, msg);
  }

  sim::Simulator& sim_;
  TimerConfig timers_;
  bool is_invite_;
  sip::MessagePtr request_;
  SendFn send_;
  ClientCallbacks callbacks_;
  ConformanceTap* tap_{nullptr};

  ClientState state_;
  SimTime rtx_interval_;
  int retransmits_{0};
  sim::EventId rtx_timer_{0};
  sim::EventId timeout_timer_{0};  // B or F
  sim::EventId linger_timer_{0};   // D or K
};

/// Server transaction (RFC 3261 17.2). Construct with the initial request.
class ServerTransaction {
 public:
  ServerTransaction(sim::Simulator& sim, const TimerConfig& timers,
                    bool is_invite, sip::MessagePtr request, SendFn send,
                    ServerCallbacks callbacks);
  ~ServerTransaction();

  ServerTransaction(const ServerTransaction&) = delete;
  ServerTransaction& operator=(const ServerTransaction&) = delete;

  /// Feeds a retransmitted request or an ACK matched to this transaction.
  /// Retransmissions are absorbed: the last response (if any) is replayed
  /// and nothing propagates to the transaction user.
  void receive_request(const sip::MessagePtr& request);

  /// Transaction user supplies a response to send toward the request
  /// source. Drives the state machine per its class (1xx/2xx/3xx-6xx).
  void respond(const sip::MessagePtr& response);

  [[nodiscard]] ServerState state() const { return state_; }
  [[nodiscard]] const sip::MessagePtr& request() const { return request_; }
  [[nodiscard]] int absorbed_count() const { return absorbed_; }
  [[nodiscard]] bool is_invite() const { return is_invite_; }

  /// Installs (or clears) the conformance tap (see ClientTransaction).
  void set_tap(ConformanceTap* tap) { tap_ = tap; }

  /// Replaces the termination callback (see ClientTransaction).
  void set_on_terminated(std::function<void()> f) {
    callbacks_.on_terminated = std::move(f);
  }

 private:
  void receive_request_impl(const sip::MessagePtr& request);
  void respond_impl(const sip::MessagePtr& response);
  void arm_response_retransmit(SimTime interval);
  void terminate();
  void cancel_timers();
  void wire_send(const sip::MessagePtr& msg);
  void notify(ServerEvent event, const sip::Message* msg = nullptr) {
    if (tap_ != nullptr) tap_->on_server_event(this, event, msg);
  }

  sim::Simulator& sim_;
  TimerConfig timers_;
  bool is_invite_;
  sip::MessagePtr request_;
  SendFn send_;
  ServerCallbacks callbacks_;
  ConformanceTap* tap_{nullptr};

  ServerState state_;
  sip::MessagePtr last_response_;
  SimTime rtx_interval_;
  int absorbed_{0};
  sim::EventId rtx_timer_{0};     // G
  sim::EventId timeout_timer_{0}; // H
  sim::EventId linger_timer_{0};  // I or J
};

}  // namespace svk::txn
