// Call-level metrics, as collected by the SIPp client/server scenarios in
// the paper's testbed.
#pragma once

#include <cstdint>

#include "common/stats.hpp"

namespace svk::workload {

/// Counters kept by a UAC (SIPp client role). Snapshot-diff friendly: all
/// members are monotonically increasing except the setup-time histogram,
/// which the runner resets at the measurement boundary.
struct UacMetrics {
  std::uint64_t calls_attempted = 0;
  std::uint64_t calls_established = 0;   // 200 to INVITE received
  std::uint64_t calls_completed = 0;     // 200 to BYE received
  std::uint64_t calls_failed = 0;        // timeout or non-2xx final
  std::uint64_t calls_cancelled = 0;     // we abandoned before answer
  std::uint64_t trying_received = 0;     // 100 Trying (statefulness witness)
  std::uint64_t ringing_received = 0;
  std::uint64_t busy_500_received = 0;   // 500 Server Busy finals
  std::uint64_t busy_503_received = 0;   // 503 Service Unavailable finals
  /// calls_failed split: explicit 503 rejection vs transaction timeout.
  /// Rejected calls fail in ~one RTT and cost the chain almost nothing;
  /// timed-out calls burn 64*T1 of retransmissions first — the difference
  /// between controlled shedding and congestion collapse.
  std::uint64_t calls_rejected = 0;
  std::uint64_t calls_timed_out = 0;
  /// Times the generator paused for a 503 Retry-After.
  std::uint64_t backoff_pauses = 0;
  std::uint64_t retransmissions = 0;     // request retransmits we performed
  /// INVITE-sent to 200-received latency, milliseconds.
  Histogram setup_time_ms{10000.0, 2000};
};

/// Counters kept by a UAS (SIPp server role).
struct UasMetrics {
  std::uint64_t invites_received = 0;
  std::uint64_t calls_established = 0;  // ACK received
  std::uint64_t calls_completed = 0;    // BYE answered (throughput unit)
  std::uint64_t byes_received = 0;
  std::uint64_t cancels_received = 0;   // CANCEL caught the call ringing
  std::uint64_t retransmitted_200 = 0;
  /// INVITEs that arrived without the X-Stateful mark, i.e. no proxy on the
  /// path took transaction state. Must stay 0 under any policy that
  /// guarantees at-least-one-stateful (the chaos-harness safety invariant).
  std::uint64_t unmarked_invites = 0;
};

}  // namespace svk::workload
