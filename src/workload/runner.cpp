#include "workload/runner.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <utility>

#include "common/thread_pool.hpp"
#include "sim/cpu_queue.hpp"

namespace svk::workload {
namespace {

/// Snapshot of every monotone counter we diff across the measurement window.
struct Snapshot {
  std::uint64_t completed = 0;
  std::uint64_t attempted = 0;
  std::uint64_t failed = 0;
  std::uint64_t busy_500 = 0;
  std::uint64_t busy_503 = 0;
  std::uint64_t rejected = 0;
  std::uint64_t timed_out = 0;
  std::uint64_t retransmissions = 0;
  std::uint64_t trying = 0;
  std::uint64_t established = 0;
  std::vector<std::uint64_t> proxy_rejected;
  std::vector<std::uint64_t> proxy_rejected_503;
  std::vector<std::uint64_t> proxy_stateful;
  std::vector<std::uint64_t> proxy_stateless;
};

Snapshot take_snapshot(TestBed& bed) {
  Snapshot s;
  s.completed = bed.total_completed_calls();
  s.attempted = bed.total_attempted_calls();
  for (const auto& uac : bed.uacs()) {
    const UacMetrics& m = uac->metrics();
    s.failed += m.calls_failed;
    s.busy_500 += m.busy_500_received;
    s.busy_503 += m.busy_503_received;
    s.rejected += m.calls_rejected;
    s.timed_out += m.calls_timed_out;
    s.retransmissions += m.retransmissions;
    s.trying += m.trying_received;
    s.established += m.calls_established;
  }
  for (const auto& proxy : bed.proxies()) {
    const proxy::ProxyStats& p = proxy->stats();
    s.proxy_rejected.push_back(p.rejected_busy);
    s.proxy_rejected_503.push_back(p.rejected_503 + p.throttled_503);
    s.proxy_stateful.push_back(p.forwarded_stateful);
    s.proxy_stateless.push_back(p.forwarded_stateless);
  }
  return s;
}

/// The load grid of a sweep. Accumulates exactly like the serial loop
/// always did (`offered += step`), so serial and parallel sweeps measure
/// bit-identical offered loads.
std::vector<double> load_grid(double lo, double hi, double step) {
  std::vector<double> grid;
  for (double offered = lo; offered <= hi + 1e-9; offered += step) {
    grid.push_back(offered);
  }
  return grid;
}

/// Folds measured points into a SweepResult with the serial max-tracking
/// semantics (strictly-greater updates, in grid order).
SweepResult fold_points(std::vector<PointResult> points) {
  SweepResult result;
  for (PointResult& point : points) {
    if (point.throughput_cps > result.max_throughput_cps) {
      result.max_throughput_cps = point.throughput_cps;
      result.offered_at_max = point.offered_cps;
    }
    result.points.push_back(std::move(point));
  }
  return result;
}

}  // namespace

RunRecord to_run_record(const PointResult& point, double rate_scale,
                        std::string label) {
  RunRecord record;
  record.label = std::move(label);
  record.offered_cps = point.offered_cps * rate_scale;
  record.achieved_cps = point.throughput_cps * rate_scale;
  record.attempted_cps = point.attempted_cps * rate_scale;
  record.goodput_ratio = point.goodput_ratio;
  record.setup_ms_mean = point.setup_ms_mean;
  record.setup_ms_p50 = point.setup_ms_p50;
  record.setup_ms_p90 = point.setup_ms_p90;
  record.setup_ms_p99 = point.setup_ms_p99;
  record.retransmissions = point.retransmissions;
  record.calls_failed = point.calls_failed;
  record.busy_500 = point.busy_500;
  record.busy_503 = point.busy_503;
  record.calls_rejected = point.calls_rejected;
  record.calls_timed_out = point.calls_timed_out;
  record.node_utilization = point.proxy_utilization;
  record.node_rejected = point.proxy_rejected;
  record.node_rejected_503 = point.proxy_rejected_503;
  record.wall_seconds = point.wall_seconds;
  if (!point.controller_windows.empty()) {
    record.controller_windows = obs::windows_to_json(point.controller_windows);
  }
  return record;
}

PointResult measure_point(const BedFactory& factory, double offered_cps,
                          const MeasureOptions& options) {
  return measure_point_retained(factory, offered_cps, options).point;
}

ObservedPoint measure_point_retained(const BedFactory& factory,
                                     double offered_cps,
                                     const MeasureOptions& options) {
  const auto wall_start = std::chrono::steady_clock::now();
  // Checked runs force the serial engine (the checker observes all hosts
  // from one timeline); otherwise a nonzero options.shards reaches the
  // bed through the thread-local override, even past factories that pass
  // an explicit count of their own.
  std::unique_ptr<TestBed> bed;
  if (const std::size_t requested = options.check ? 1 : options.shards;
      requested != 0) {
    TestBed::ShardsOverride force(requested);
    bed = factory(offered_cps);
  } else {
    bed = factory(offered_cps);
  }
  if (options.observe) bed->enable_observability();
  if (options.check) bed->enable_checking(options.check_options);

  bed->start_load();
  bed->run_until(options.warmup);

  const Snapshot before = take_snapshot(*bed);
  std::vector<sim::UtilizationProbe> probes;
  probes.reserve(bed->proxies().size());
  for (const auto& proxy : bed->proxies()) {
    probes.emplace_back(proxy->cpu(), proxy->sim());
  }
  for (auto& uac : bed->uacs()) {
    uac->metrics().setup_time_ms.reset();
  }

  bed->run_until(options.warmup + options.measure);
  const Snapshot after = take_snapshot(*bed);
  const double secs = options.measure.to_seconds();

  PointResult result;
  result.offered_cps = offered_cps;
  result.throughput_cps =
      static_cast<double>(after.completed - before.completed) / secs;
  result.attempted_cps =
      static_cast<double>(after.attempted - before.attempted) / secs;
  result.goodput_ratio =
      result.attempted_cps > 0.0
          ? result.throughput_cps / result.attempted_cps
          : 0.0;
  result.calls_failed = after.failed - before.failed;
  result.busy_500 = after.busy_500 - before.busy_500;
  result.busy_503 = after.busy_503 - before.busy_503;
  result.calls_rejected = after.rejected - before.rejected;
  result.calls_timed_out = after.timed_out - before.timed_out;
  result.retransmissions = after.retransmissions - before.retransmissions;
  result.trying_received = after.trying - before.trying;
  result.calls_established_uac = after.established - before.established;

  // Setup-time distribution: aggregate across UACs (histograms were reset
  // at the window start).
  Histogram merged(10000.0, 2000);
  double weighted_mean = 0.0;
  std::size_t samples = 0;
  for (const auto& uac : bed->uacs()) {
    const Histogram& h = uac->metrics().setup_time_ms;
    weighted_mean += h.mean() * static_cast<double>(h.count());
    samples += h.count();
  }
  if (samples > 0) {
    result.setup_ms_mean = weighted_mean / static_cast<double>(samples);
  }
  // Percentiles from the largest UAC histogram when several exist (they
  // see statistically identical traffic); exact merge is unnecessary.
  const Histogram* biggest = nullptr;
  for (const auto& uac : bed->uacs()) {
    const Histogram& h = uac->metrics().setup_time_ms;
    if (!biggest || h.count() > biggest->count()) biggest = &h;
  }
  if (biggest != nullptr && biggest->count() > 0) {
    result.setup_ms_p50 = biggest->quantile(0.50);
    result.setup_ms_p90 = biggest->quantile(0.90);
    result.setup_ms_p99 = biggest->quantile(0.99);
  }

  for (std::size_t i = 0; i < probes.size(); ++i) {
    result.proxy_utilization.push_back(probes[i].utilization());
    result.proxy_rejected.push_back(after.proxy_rejected[i] -
                                    before.proxy_rejected[i]);
    result.proxy_rejected_503.push_back(after.proxy_rejected_503[i] -
                                        before.proxy_rejected_503[i]);
    result.proxy_stateful.push_back(after.proxy_stateful[i] -
                                    before.proxy_stateful[i]);
    result.proxy_stateless.push_back(after.proxy_stateless[i] -
                                     before.proxy_stateless[i]);
  }
  if (obs::Observability* obs = bed->observability();
      obs != nullptr && obs->audit() != nullptr) {
    result.controller_windows = obs->audit()->snapshot();
  }
  if (check::RunChecker* checker = bed->checker(); checker != nullptr) {
    result.check_violations = checker->log().total();
  }
  result.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    wall_start)
          .count();
  return {std::move(result), std::move(bed)};
}

SweepResult sweep(const BedFactory& factory, double lo, double hi,
                  double step, const MeasureOptions& options,
                  bool early_stop) {
  SweepResult result;
  int declining = 0;
  for (const double offered : load_grid(lo, hi, step)) {
    PointResult point = measure_point(factory, offered, options);
    if (point.throughput_cps > result.max_throughput_cps) {
      result.max_throughput_cps = point.throughput_cps;
      result.offered_at_max = offered;
      declining = 0;
    } else if (point.throughput_cps < 0.98 * result.max_throughput_cps) {
      ++declining;
    }
    result.points.push_back(std::move(point));
    if (early_stop && declining >= 2) break;
  }
  return result;
}

double find_saturation(const BedFactory& factory, double lo, double hi,
                       double step, const MeasureOptions& options) {
  return sweep(factory, lo, hi, step, options, /*early_stop=*/true)
      .max_throughput_cps;
}

SweepResult run_sweep_parallel(const BedFactory& factory, double lo,
                               double hi, double step,
                               const MeasureOptions& options,
                               std::size_t threads) {
  const std::vector<double> grid = load_grid(lo, hi, step);
  std::vector<PointResult> points(grid.size());
  parallel_for_index(threads, grid.size(), [&](std::size_t i) {
    points[i] = measure_point(factory, grid[i], options);
  });
  return fold_points(std::move(points));
}

std::vector<PointResult> run_points_parallel(
    const std::vector<std::function<PointResult()>>& jobs,
    std::size_t threads) {
  std::vector<PointResult> results(jobs.size());
  parallel_for_index(threads, jobs.size(),
                     [&](std::size_t i) { results[i] = jobs[i](); });
  return results;
}

double find_saturation_parallel(const BedFactory& factory, double lo,
                                double hi, double step,
                                const MeasureOptions& options,
                                std::size_t threads, double coarse_mult) {
  if (hi < lo) return 0.0;
  const double coarse =
      std::min(std::max(step * std::max(coarse_mult, 1.0), step), hi - lo);
  if (coarse <= 0.0) {  // degenerate range: a single point
    return measure_point(factory, lo, options).throughput_cps;
  }

  // Phase 1 — serial coarse bracket around the knee.
  const SweepResult bracket =
      sweep(factory, lo, hi, coarse, options, /*early_stop=*/true);
  double best = bracket.max_throughput_cps;
  double center = bracket.offered_at_max;

  // Phase 2 — bisect the bracket: each halving probes both flanks of the
  // current center concurrently and re-centers on the best point seen.
  for (double span = coarse / 2.0; span >= step - 1e-9; span /= 2.0) {
    std::vector<double> probes;
    if (center - span >= lo - 1e-9) probes.push_back(center - span);
    if (center + span <= hi + 1e-9) probes.push_back(center + span);
    if (probes.empty()) break;
    std::vector<PointResult> results(probes.size());
    parallel_for_index(threads, probes.size(), [&](std::size_t i) {
      results[i] = measure_point(factory, probes[i], options);
    });
    for (const PointResult& point : results) {
      if (point.throughput_cps > best) {
        best = point.throughput_cps;
        center = point.offered_cps;
      }
    }
  }
  return best;
}

}  // namespace svk::workload
