#include "workload/runner.hpp"

#include <algorithm>

#include "sim/cpu_queue.hpp"

namespace svk::workload {
namespace {

/// Snapshot of every monotone counter we diff across the measurement window.
struct Snapshot {
  std::uint64_t completed = 0;
  std::uint64_t attempted = 0;
  std::uint64_t failed = 0;
  std::uint64_t busy_500 = 0;
  std::uint64_t retransmissions = 0;
  std::uint64_t trying = 0;
  std::uint64_t established = 0;
  std::vector<std::uint64_t> proxy_rejected;
  std::vector<std::uint64_t> proxy_stateful;
  std::vector<std::uint64_t> proxy_stateless;
};

Snapshot take_snapshot(TestBed& bed) {
  Snapshot s;
  s.completed = bed.total_completed_calls();
  s.attempted = bed.total_attempted_calls();
  for (const auto& uac : bed.uacs()) {
    const UacMetrics& m = uac->metrics();
    s.failed += m.calls_failed;
    s.busy_500 += m.busy_500_received;
    s.retransmissions += m.retransmissions;
    s.trying += m.trying_received;
    s.established += m.calls_established;
  }
  for (const auto& proxy : bed.proxies()) {
    const proxy::ProxyStats& p = proxy->stats();
    s.proxy_rejected.push_back(p.rejected_busy);
    s.proxy_stateful.push_back(p.forwarded_stateful);
    s.proxy_stateless.push_back(p.forwarded_stateless);
  }
  return s;
}

}  // namespace

PointResult measure_point(const BedFactory& factory, double offered_cps,
                          const MeasureOptions& options) {
  std::unique_ptr<TestBed> bed = factory(offered_cps);
  sim::Simulator& sim = bed->sim();

  bed->start_load();
  sim.run_until(options.warmup);

  const Snapshot before = take_snapshot(*bed);
  std::vector<sim::UtilizationProbe> probes;
  probes.reserve(bed->proxies().size());
  for (const auto& proxy : bed->proxies()) {
    probes.emplace_back(proxy->cpu(), sim);
  }
  for (auto& uac : bed->uacs()) {
    uac->metrics().setup_time_ms.reset();
  }

  sim.run_until(options.warmup + options.measure);
  const Snapshot after = take_snapshot(*bed);
  const double secs = options.measure.to_seconds();

  PointResult result;
  result.offered_cps = offered_cps;
  result.throughput_cps =
      static_cast<double>(after.completed - before.completed) / secs;
  result.attempted_cps =
      static_cast<double>(after.attempted - before.attempted) / secs;
  result.goodput_ratio =
      result.attempted_cps > 0.0
          ? result.throughput_cps / result.attempted_cps
          : 0.0;
  result.calls_failed = after.failed - before.failed;
  result.busy_500 = after.busy_500 - before.busy_500;
  result.retransmissions = after.retransmissions - before.retransmissions;
  result.trying_received = after.trying - before.trying;
  result.calls_established_uac = after.established - before.established;

  // Setup-time distribution: aggregate across UACs (histograms were reset
  // at the window start).
  Histogram merged(10000.0, 2000);
  double weighted_mean = 0.0;
  std::size_t samples = 0;
  for (const auto& uac : bed->uacs()) {
    const Histogram& h = uac->metrics().setup_time_ms;
    weighted_mean += h.mean() * static_cast<double>(h.count());
    samples += h.count();
  }
  if (samples > 0) {
    result.setup_ms_mean = weighted_mean / static_cast<double>(samples);
  }
  // Percentiles from the largest UAC histogram when several exist (they
  // see statistically identical traffic); exact merge is unnecessary.
  const Histogram* biggest = nullptr;
  for (const auto& uac : bed->uacs()) {
    const Histogram& h = uac->metrics().setup_time_ms;
    if (!biggest || h.count() > biggest->count()) biggest = &h;
  }
  if (biggest != nullptr && biggest->count() > 0) {
    result.setup_ms_p50 = biggest->quantile(0.50);
    result.setup_ms_p90 = biggest->quantile(0.90);
    result.setup_ms_p99 = biggest->quantile(0.99);
  }

  for (std::size_t i = 0; i < probes.size(); ++i) {
    result.proxy_utilization.push_back(probes[i].utilization());
    result.proxy_rejected.push_back(after.proxy_rejected[i] -
                                    before.proxy_rejected[i]);
    result.proxy_stateful.push_back(after.proxy_stateful[i] -
                                    before.proxy_stateful[i]);
    result.proxy_stateless.push_back(after.proxy_stateless[i] -
                                     before.proxy_stateless[i]);
  }
  return result;
}

SweepResult sweep(const BedFactory& factory, double lo, double hi,
                  double step, const MeasureOptions& options,
                  bool early_stop) {
  SweepResult result;
  int declining = 0;
  for (double offered = lo; offered <= hi + 1e-9; offered += step) {
    PointResult point = measure_point(factory, offered, options);
    if (point.throughput_cps > result.max_throughput_cps) {
      result.max_throughput_cps = point.throughput_cps;
      result.offered_at_max = offered;
      declining = 0;
    } else if (point.throughput_cps < 0.98 * result.max_throughput_cps) {
      ++declining;
    }
    result.points.push_back(std::move(point));
    if (early_stop && declining >= 2) break;
  }
  return result;
}

double find_saturation(const BedFactory& factory, double lo, double hi,
                       double step, const MeasureOptions& options) {
  return sweep(factory, lo, hi, step, options, /*early_stop=*/true)
      .max_throughput_cps;
}

}  // namespace svk::workload
