// Measurement runner: drives a TestBed through warmup + measurement
// windows and extracts the paper's metrics (throughput at the UAS, setup
// times at the UAC, per-proxy utilization and rejection counts); sweeps
// offered load to find saturation.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/run_record.hpp"
#include "common/sim_time.hpp"
#include "obs/audit.hpp"
#include "workload/testbed.hpp"

namespace svk::workload {

struct MeasureOptions {
  SimTime warmup = SimTime::seconds(2.0);
  SimTime measure = SimTime::seconds(5.0);
  /// Enables the observability layer (metrics/trace/audit) on the measured
  /// bed. Purely passive: simulated results are bit-identical either way
  /// (asserted by ObsDeterminismTest); only PointResult::controller_windows
  /// and the retained bed's trace/metric contents change.
  bool observe = false;
  /// Runs the conformance oracle + invariant checker (src/check) in
  /// lockstep with the measured bed. Read-only like observe: simulated
  /// results stay bit-identical (asserted by the conformance suite). The
  /// load is still flowing at the measurement snapshot, so the drain-time
  /// checks do NOT run here — only continuous ones; violations observed so
  /// far are surfaced via PointResult::check_violations.
  bool check = false;
  check::CheckOptions check_options;
  /// Shard count for the intra-run parallel engine (sim::ShardSet). 0 =
  /// leave the bed's own resolution alone (constructor argument /
  /// SVK_SIM_SHARDS / serial); any other value is forced onto the bed via
  /// TestBed::ShardsOverride. Results are bit-identical for every value —
  /// only wall_seconds changes. Ignored when `check` is set: checked
  /// points always run the serial engine.
  std::size_t shards = 0;
};

/// One (offered load -> observed behaviour) sample.
struct PointResult {
  double offered_cps = 0.0;
  double throughput_cps = 0.0;  // calls completed at UASes per second
  double attempted_cps = 0.0;
  /// Fraction of attempted calls that completed during the window.
  double goodput_ratio = 0.0;

  double setup_ms_mean = 0.0;
  double setup_ms_p50 = 0.0;
  double setup_ms_p90 = 0.0;
  double setup_ms_p99 = 0.0;

  std::uint64_t calls_failed = 0;
  std::uint64_t busy_500 = 0;
  std::uint64_t busy_503 = 0;          // 503 Service Unavailable finals
  std::uint64_t calls_rejected = 0;    // failed via explicit 503 (cheap)
  std::uint64_t calls_timed_out = 0;   // failed via timer B/F (expensive)
  std::uint64_t retransmissions = 0;
  std::uint64_t trying_received = 0;
  std::uint64_t calls_established_uac = 0;

  std::vector<double> proxy_utilization;       // per proxy, in [0,1]
  std::vector<std::uint64_t> proxy_rejected;   // 500s sent per proxy
  std::vector<std::uint64_t> proxy_rejected_503;  // 503s sent per proxy
  std::vector<std::uint64_t> proxy_stateful;   // stateful forwards per proxy
  std::vector<std::uint64_t> proxy_stateless;  // stateless forwards per proxy

  /// Real (host) time spent simulating this point. Not part of the
  /// simulation output: identical runs may report different wall times.
  double wall_seconds = 0.0;

  /// Violations the checking subsystem recorded (0 unless
  /// MeasureOptions::check). Diagnostic only — deliberately NOT part of
  /// to_run_record, so checked and unchecked digests stay identical.
  std::uint64_t check_violations = 0;

  /// Controller audit windows captured during the run (empty unless
  /// MeasureOptions::observe was set), all nodes interleaved in emission
  /// order; AuditWindow::node_tid tells them apart.
  std::vector<obs::AuditWindow> controller_windows;
};

/// Converts a measured point into the serializable record form. `rate_scale`
/// multiplies every calls/second figure (benches use it to convert scaled
/// simulation units back to full-scale cps); counts, times and utilizations
/// are scale-free and pass through.
[[nodiscard]] RunRecord to_run_record(const PointResult& point,
                                      double rate_scale = 1.0,
                                      std::string label = {});

/// Builds a fresh, fully wired TestBed whose UACs offer `offered_cps` total.
using BedFactory =
    std::function<std::unique_ptr<TestBed>(double offered_cps)>;

/// Runs one load point: warmup, then a measurement window.
[[nodiscard]] PointResult measure_point(const BedFactory& factory,
                                        double offered_cps,
                                        const MeasureOptions& options = {});

/// A measured point together with its (finished) TestBed, kept alive so
/// callers can export traces/metrics accumulated during the run.
struct ObservedPoint {
  PointResult point;
  std::unique_ptr<TestBed> bed;
};

/// Like measure_point, but hands back the bed as well. Use with
/// `options.observe = true` to export the trace/metrics afterwards.
[[nodiscard]] ObservedPoint measure_point_retained(
    const BedFactory& factory, double offered_cps,
    const MeasureOptions& options = {});

struct SweepResult {
  std::vector<PointResult> points;
  double max_throughput_cps = 0.0;
  double offered_at_max = 0.0;
};

/// Sweeps offered load from `lo` to `hi` in steps of `step`. When
/// `early_stop` is set, stops after the throughput curve has clearly
/// flattened past its maximum (saves time in saturation searches).
[[nodiscard]] SweepResult sweep(const BedFactory& factory, double lo,
                                double hi, double step,
                                const MeasureOptions& options = {},
                                bool early_stop = false);

/// Convenience: the maximum sustained throughput of the topology.
[[nodiscard]] double find_saturation(const BedFactory& factory, double lo,
                                     double hi, double step,
                                     const MeasureOptions& options = {});

// ---------------------------------------------------------------------------
// Parallel measurement. Every load point builds its own TestBed/Simulator,
// so points are independent, deterministic simulations; fanning them across
// threads changes wall-clock time only, never the measured values.
// ---------------------------------------------------------------------------

/// Same grid and same per-point simulations as `sweep` (without early
/// stopping), with the points fanned across `threads` workers (0 = hardware
/// concurrency). The result is bit-identical to the serial sweep.
[[nodiscard]] SweepResult run_sweep_parallel(const BedFactory& factory,
                                             double lo, double hi,
                                             double step,
                                             const MeasureOptions& options = {},
                                             std::size_t threads = 0);

/// Parallel saturation search: brackets the knee serially at a coarse step
/// (early-stopping, as `find_saturation` does), then repeatedly bisects the
/// bracket down to `step` resolution with the probe points of each level
/// measured concurrently. Returns the maximum sustained throughput found.
[[nodiscard]] double find_saturation_parallel(
    const BedFactory& factory, double lo, double hi, double step,
    const MeasureOptions& options = {}, std::size_t threads = 0,
    double coarse_mult = 4.0);

/// Runs arbitrary independent measurement jobs across `threads` workers,
/// returning results in job order. For heterogeneous sweeps (per-point
/// scenario options) that cannot go through run_sweep_parallel.
[[nodiscard]] std::vector<PointResult> run_points_parallel(
    const std::vector<std::function<PointResult()>>& jobs,
    std::size_t threads = 0);

}  // namespace svk::workload
