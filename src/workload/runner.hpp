// Measurement runner: drives a TestBed through warmup + measurement
// windows and extracts the paper's metrics (throughput at the UAS, setup
// times at the UAC, per-proxy utilization and rejection counts); sweeps
// offered load to find saturation.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "common/sim_time.hpp"
#include "workload/testbed.hpp"

namespace svk::workload {

struct MeasureOptions {
  SimTime warmup = SimTime::seconds(2.0);
  SimTime measure = SimTime::seconds(5.0);
};

/// One (offered load -> observed behaviour) sample.
struct PointResult {
  double offered_cps = 0.0;
  double throughput_cps = 0.0;  // calls completed at UASes per second
  double attempted_cps = 0.0;
  /// Fraction of attempted calls that completed during the window.
  double goodput_ratio = 0.0;

  double setup_ms_mean = 0.0;
  double setup_ms_p50 = 0.0;
  double setup_ms_p90 = 0.0;
  double setup_ms_p99 = 0.0;

  std::uint64_t calls_failed = 0;
  std::uint64_t busy_500 = 0;
  std::uint64_t retransmissions = 0;
  std::uint64_t trying_received = 0;
  std::uint64_t calls_established_uac = 0;

  std::vector<double> proxy_utilization;       // per proxy, in [0,1]
  std::vector<std::uint64_t> proxy_rejected;   // 500s sent per proxy
  std::vector<std::uint64_t> proxy_stateful;   // stateful forwards per proxy
  std::vector<std::uint64_t> proxy_stateless;  // stateless forwards per proxy
};

/// Builds a fresh, fully wired TestBed whose UACs offer `offered_cps` total.
using BedFactory =
    std::function<std::unique_ptr<TestBed>(double offered_cps)>;

/// Runs one load point: warmup, then a measurement window.
[[nodiscard]] PointResult measure_point(const BedFactory& factory,
                                        double offered_cps,
                                        const MeasureOptions& options = {});

struct SweepResult {
  std::vector<PointResult> points;
  double max_throughput_cps = 0.0;
  double offered_at_max = 0.0;
};

/// Sweeps offered load from `lo` to `hi` in steps of `step`. When
/// `early_stop` is set, stops after the throughput curve has clearly
/// flattened past its maximum (saves time in saturation searches).
[[nodiscard]] SweepResult sweep(const BedFactory& factory, double lo,
                                double hi, double step,
                                const MeasureOptions& options = {},
                                bool early_stop = false);

/// Convenience: the maximum sustained throughput of the topology.
[[nodiscard]] double find_saturation(const BedFactory& factory, double lo,
                                     double hi, double step,
                                     const MeasureOptions& options = {});

}  // namespace svk::workload
