#include "workload/scenarios.hpp"

#include <cassert>
#include <cmath>
#include <string>
#include <utility>

#include "core/controller.hpp"

namespace svk::workload {
namespace {

constexpr std::string_view kCalleeDomain = "callee.example.net";
constexpr std::string_view kInternalDomain = "internal.example.net";
constexpr std::string_view kAuthUser = "alice";
constexpr std::string_view kAuthPassword = "secret";
constexpr std::string_view kSharedRealm = "example.net";
constexpr std::string_view kSharedNonce = "nonce-example.net";

double capacity_scale(const ScenarioOptions& options, std::size_t idx) {
  if (idx < options.capacity_scale.size()) {
    return options.capacity_scale[idx];
  }
  return 1.0;
}

std::unique_ptr<proxy::StatePolicy> policy_for(const ScenarioOptions& options,
                                               std::size_t idx,
                                               bool is_entry, bool is_exit) {
  switch (options.policy) {
    case PolicyKind::kStaticChainFirstStateful:
      return is_entry ? std::unique_ptr<proxy::StatePolicy>(
                            std::make_unique<proxy::AlwaysStateful>())
                      : std::make_unique<proxy::AlwaysStateless>();
    case PolicyKind::kStaticChainLastStateful:
      return is_exit ? std::unique_ptr<proxy::StatePolicy>(
                           std::make_unique<proxy::AlwaysStateful>())
                     : std::make_unique<proxy::AlwaysStateless>();
    case PolicyKind::kStaticAllStateful:
      return std::make_unique<proxy::AlwaysStateful>();
    case PolicyKind::kStaticAllStateless:
      return std::make_unique<proxy::AlwaysStateless>();
    case PolicyKind::kServartuka: {
      const double scale = capacity_scale(options, idx);
      auto config = core::ControllerConfig::from_call_rates(
          options.t_sf_cps * scale, options.t_sl_cps * scale,
          options.controller_period);
      if (options.controller_tweak) options.controller_tweak(config);
      return std::make_unique<core::Controller>(config);
    }
  }
  return std::make_unique<proxy::AlwaysStateful>();
}

proxy::ProxyConfig proxy_config(const ScenarioOptions& options,
                                std::size_t idx, const std::string& host,
                                bool authenticate) {
  proxy::ProxyConfig config;
  config.host = host;
  config.cpu_capacity =
      profile::CpuCostModel::kCalibratedCapacity * capacity_scale(options, idx);
  // Bounded queueing delay: OpenSER answers 500 once its queues fill, which
  // is what keeps the paper's stateful response times under ~200 ms. The
  // bound must keep the worst-case UAC->UAS->UAC round trip (4 queue
  // traversals) under SIP T1 (500 ms), or retransmission storms pin a
  // saturated queue at its cap.
  config.max_queue_delay = options.max_queue_delay;
  config.stateful_mode = options.stateful_mode;
  config.stateless_mode = options.stateless_mode;
  config.authenticate = authenticate;
  config.overload_signal_loss = options.overload_signal_loss;
  config.overload = options.overload_control;
  config.dialog_ttl = options.dialog_ttl;
  config.debug_predecrement_max_forwards =
      options.debug_predecrement_max_forwards;
  if (options.distribute_auth) {
    config.auth_scope = proxy::ProxyConfig::AuthScope::kWhenStateful;
    config.auth_realm = std::string(kSharedRealm);
    config.auth_nonce = std::string(kSharedNonce);
  }
  return config;
}

std::vector<std::string> add_uas_farm(TestBed& bed,
                                      const ScenarioOptions& options,
                                      std::string_view domain) {
  std::vector<std::string> hosts;
  for (int j = 0; j < options.num_uas; ++j) {
    const std::string host =
        "uas" + std::to_string(j) + "." + std::string(domain);
    bed.add_uas(UasConfig{host, Address{}, {}, {}});
    hosts.push_back(host);
  }
  bed.register_users(std::string(domain), options.num_users, hosts);
  return hosts;
}

void add_uac_group(TestBed& bed, const ScenarioOptions& options,
                   std::string_view group, Address first_hop,
                   std::string_view target_domain, double total_rate,
                   const std::string& auth_realm,
                   const std::string& auth_nonce) {
  const int n = std::max(1, options.num_uacs);
  for (int k = 0; k < n; ++k) {
    UacConfig config;
    config.host =
        "uac" + std::to_string(k) + "." + std::string(group) + ".client.net";
    config.first_hop = first_hop;
    config.target_domain = std::string(target_domain);
    config.num_callees = options.num_users;
    config.call_rate_cps = total_rate / n;
    config.poisson_arrivals = options.poisson_arrivals;
    config.max_forwards = options.uac_max_forwards;
    if (total_rate > 0.0) {
      config.start_offset =
          SimTime::seconds(static_cast<double>(k) / total_rate);
    }
    if (options.authenticate) {
      config.attach_credentials = true;
      config.auth_user = std::string(kAuthUser);
      config.auth_password = std::string(kAuthPassword);
      if (options.distribute_auth) {
        config.auth_realm = std::string(kSharedRealm);
        config.auth_nonce = std::string(kSharedNonce);
      } else {
        config.auth_realm = auth_realm;
        config.auth_nonce = auth_nonce;
      }
    }
    bed.add_uac(std::move(config));
  }
}

/// Registers the test user at an authenticating proxy.
void enroll_auth_user(proxy::ProxyServer& proxy) {
  proxy.authenticator().add_user(std::string(kAuthUser),
                                 std::string(kAuthPassword));
}

/// Builds the bed every factory starts from, applying the scenario-level
/// knobs that must precede host declaration (shard count, link latency).
std::unique_ptr<TestBed> make_bed(const ScenarioOptions& options) {
  auto bed = std::make_unique<TestBed>(options.seed, options.shards);
  if (options.link_latency > SimTime{}) {
    bed->network().set_default_link(
        sim::LinkParams{options.link_latency, SimTime{}, 0.0});
  }
  return bed;
}

}  // namespace

std::unique_ptr<proxy::StatePolicy> make_policy(
    const ScenarioOptions& options, std::size_t proxy_idx,
    std::size_t num_proxies) {
  return policy_for(options, proxy_idx, proxy_idx == 0,
                    proxy_idx + 1 == num_proxies);
}

BedFactory single_proxy(ScenarioOptions options) {
  return series_chain(1, std::move(options));
}

BedFactory series_chain(int num_proxies, ScenarioOptions options) {
  assert(num_proxies >= 1);
  return [num_proxies, options](double offered_cps) {
    auto bed = make_bed(options);

    // Declare proxy hosts first so route tables can reference them.
    std::vector<std::string> hosts;
    std::vector<Address> addrs;
    for (int i = 0; i < num_proxies; ++i) {
      hosts.push_back("proxy" + std::to_string(i) + ".example.net");
      addrs.push_back(bed->declare_host(hosts.back()));
    }

    for (int i = 0; i < num_proxies; ++i) {
      proxy::RouteTable routes;
      if (i + 1 < num_proxies) {
        routes.add_route(std::string(kCalleeDomain), {addrs[i + 1]});
      } else {
        routes.add_local(std::string(kCalleeDomain));
      }
      const bool auth_here =
          options.authenticate && (options.distribute_auth || i == 0);
      auto& proxy = bed->add_proxy(
          proxy_config(options, i, hosts[i], auth_here), std::move(routes),
          policy_for(options, i, i == 0, i + 1 == num_proxies));
      if (auth_here) enroll_auth_user(proxy);
      if (i > 0) proxy.set_upstream_proxies({addrs[i - 1]});
    }

    add_uas_farm(*bed, options, kCalleeDomain);
    add_uac_group(*bed, options, "main", addrs[0], kCalleeDomain,
                  offered_cps, hosts[0], "nonce-" + hosts[0]);
    bed->install_faults(options.faults);
    return bed;
  };
}

BedFactory two_series_with_internal(double external_fraction,
                                    ScenarioOptions options) {
  assert(external_fraction >= 0.0 && external_fraction <= 1.0);
  return [external_fraction, options](double offered_cps) {
    auto bed = make_bed(options);

    const std::string host0 = "proxy0.example.net";
    const std::string host1 = "proxy1.example.net";
    const Address addr0 = bed->declare_host(host0);
    const Address addr1 = bed->declare_host(host1);

    proxy::RouteTable routes0;
    // Exit path for internal users, delegable path for external calls.
    routes0.add_local(std::string(kInternalDomain));
    routes0.add_route(std::string(kCalleeDomain), {addr1});
    const bool auth0 = options.authenticate;
    auto& p0 =
        bed->add_proxy(proxy_config(options, 0, host0, auth0),
                       std::move(routes0),
                       policy_for(options, 0, true, /*is_exit=*/false));
    if (auth0) enroll_auth_user(p0);

    proxy::RouteTable routes1;
    routes1.add_local(std::string(kCalleeDomain));
    auto& p1 = bed->add_proxy(proxy_config(options, 1, host1, false),
                              std::move(routes1),
                              policy_for(options, 1, false, true));
    p1.set_upstream_proxies({addr0});

    add_uas_farm(*bed, options, kCalleeDomain);
    add_uas_farm(*bed, options, kInternalDomain);

    add_uac_group(*bed, options, "ext", addr0, kCalleeDomain,
                  offered_cps * external_fraction, host0, "nonce-" + host0);
    add_uac_group(*bed, options, "int", addr0, kInternalDomain,
                  offered_cps * (1.0 - external_fraction), host0,
                  "nonce-" + host0);
    bed->install_faults(options.faults);
    return bed;
  };
}

BedFactory parallel_fork(ScenarioOptions options, double split_to_upper) {
  assert(split_to_upper > 0.0 && split_to_upper < 1.0 + 1e-9);
  return [options, split_to_upper](double offered_cps) {
    auto bed = make_bed(options);

    const std::string host0 = "proxy0.example.net";
    const std::string hostA = "proxya.example.net";
    const std::string hostB = "proxyb.example.net";
    const Address addr0 = bed->declare_host(host0);
    const Address addrA = bed->declare_host(hostA);
    const Address addrB = bed->declare_host(hostB);

    // Weighted round-robin across the fork: duplicate hops in tenths.
    const int upper_tenths = std::clamp(
        static_cast<int>(std::lround(split_to_upper * 10.0)), 1, 9);
    std::vector<Address> hops;
    for (int i = 0; i < upper_tenths; ++i) hops.push_back(addrA);
    for (int i = upper_tenths; i < 10; ++i) hops.push_back(addrB);

    proxy::RouteTable routes0;
    routes0.add_route(std::string(kCalleeDomain), hops);
    auto& p0 = bed->add_proxy(proxy_config(options, 0, host0,
                                           options.authenticate),
                              std::move(routes0),
                              policy_for(options, 0, true, false));
    if (options.authenticate) enroll_auth_user(p0);

    for (const auto& [host, addr] :
         {std::pair{hostA, addrA}, std::pair{hostB, addrB}}) {
      proxy::RouteTable routes;
      routes.add_local(std::string(kCalleeDomain));
      const std::size_t idx = (host == hostA) ? 1 : 2;
      auto& p = bed->add_proxy(proxy_config(options, idx, host, false),
                               std::move(routes),
                               policy_for(options, idx, false, true));
      p.set_upstream_proxies({addr0});
      (void)addr;
    }

    add_uas_farm(*bed, options, kCalleeDomain);
    add_uac_group(*bed, options, "main", addr0, kCalleeDomain, offered_cps,
                  host0, "nonce-" + host0);
    bed->install_faults(options.faults);
    return bed;
  };
}

BedFactory wide_fork(int num_exits, ScenarioOptions options) {
  assert(num_exits >= 2);
  return [num_exits, options](double offered_cps) {
    auto bed = make_bed(options);
    const int num_shards = static_cast<int>(bed->shard_count());
    // The balancer carries every call — roughly as many per-message events
    // as a whole exit-farm's worth of any other role — so it gets shard 0
    // to itself (plus the harness locus). Exits AND the UAC/UAS boxes
    // spread over the remaining shards; leaving the boxes on the default
    // all-shards round-robin would put ~40% of all events on shard 0 and
    // cap the parallel speedup there. Placement never changes simulation
    // results (the engine's shard-invariance), only wall-clock balance.
    int spread_next = 0;
    const auto spread_shard = [num_shards, &spread_next] {
      return num_shards <= 1 ? -1 : 1 + (spread_next++ % (num_shards - 1));
    };

    const std::string host0 = "lb.example.net";
    const Address addr0 = bed->declare_host(host0, /*shard_hint=*/0);
    std::vector<std::string> hosts;
    std::vector<Address> addrs;
    for (int i = 0; i < num_exits; ++i) {
      hosts.push_back("exit" + std::to_string(i) + ".example.net");
      addrs.push_back(bed->declare_host(hosts.back(), spread_shard()));
    }
    // Pre-declare the endpoint boxes (declare_host is idempotent, so the
    // add_uas/add_uac calls below pick up these placements).
    for (int j = 0; j < options.num_uas; ++j) {
      bed->declare_host("uas" + std::to_string(j) + "." +
                            std::string(kCalleeDomain),
                        spread_shard());
    }
    for (int k = 0; k < std::max(1, options.num_uacs); ++k) {
      bed->declare_host("uac" + std::to_string(k) + ".main.client.net",
                        spread_shard());
    }

    proxy::RouteTable routes0;
    routes0.add_route(std::string(kCalleeDomain), addrs);
    auto& p0 = bed->add_proxy(
        proxy_config(options, 0, host0, options.authenticate),
        std::move(routes0), policy_for(options, 0, true, false));
    if (options.authenticate) enroll_auth_user(p0);

    for (int i = 0; i < num_exits; ++i) {
      proxy::RouteTable routes;
      routes.add_local(std::string(kCalleeDomain));
      const std::size_t idx = static_cast<std::size_t>(i) + 1;
      auto& p = bed->add_proxy(proxy_config(options, idx, hosts[i], false),
                               std::move(routes),
                               policy_for(options, idx, false, true));
      p.set_upstream_proxies({addr0});
    }

    add_uas_farm(*bed, options, kCalleeDomain);
    add_uac_group(*bed, options, "main", addr0, kCalleeDomain, offered_cps,
                  host0, "nonce-" + host0);
    bed->install_faults(options.faults);
    return bed;
  };
}

}  // namespace svk::workload
