// Standard experiment topologies — the server configurations of the
// paper's Section 6, expressed as BedFactory builders so tests and
// benchmarks share one implementation:
//
//  * single proxy                      (Section 3 / Figure 4)
//  * N proxies in series               (Figures 5/6, three-series table)
//  * two-series with internal traffic  (Figure 7 changing-loads)
//  * load-balancing fork               (Figure 8, heterogeneous ablation)
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "core/controller.hpp"
#include "fault/fault_plan.hpp"
#include "profile/cost_model.hpp"
#include "workload/runner.hpp"

namespace svk::workload {

/// How the proxies decide statefulness.
enum class PolicyKind {
  kStaticChainFirstStateful,  // today's config: first stateful, rest stateless
  kStaticChainLastStateful,   // exit stateful, rest stateless
  kStaticAllStateful,
  kStaticAllStateless,        // system keeps NO state (Fig 4/6 reference)
  kServartuka,                // the paper's dynamic controller
};

struct ScenarioOptions {
  PolicyKind policy = PolicyKind::kStaticChainFirstStateful;

  /// Calibrated single-node saturation thresholds (calls/second) used by
  /// the SERvartuka controller; defaults match the measured Figure 4 values.
  double t_sf_cps = 10360.0;
  double t_sl_cps = 12300.0;
  SimTime controller_period = SimTime::seconds(1.0);

  /// Per-proxy CPU capacity multipliers (1.0 = the calibrated node). Sized
  /// to the topology's proxy count or empty for homogeneous.
  std::vector<double> capacity_scale;

  /// Workload shape (paper defaults: 2 clients, 2 servers, 2 URIs).
  int num_uacs = 2;
  int num_uas = 2;
  int num_users = 2;
  bool poisson_arrivals = false;

  /// Proxy modes.
  profile::HandlingMode stateful_mode =
      profile::HandlingMode::kTransactionStateful;
  profile::HandlingMode stateless_mode = profile::HandlingMode::kStateless;
  bool authenticate = false;
  /// With authenticate: enable verification on every proxy (sharing one
  /// realm) instead of only the entry, and scope it to stateful handling —
  /// the paper's distribute-authentication extension.
  bool distribute_auth = false;

  /// Per-proxy CPU queueing-delay bound before 500 Server Busy (overload
  /// control); see scenarios.cpp for why the default must keep round trips
  /// under SIP T1.
  SimTime max_queue_delay = SimTime::millis(100);

  /// Overload-control subsystem (src/overload), applied to every proxy.
  /// kNone keeps the legacy queue-bound + 500 behavior.
  overload::OverloadConfig overload_control;

  /// Optional hook to adjust the SERvartuka controller configuration
  /// (ablations: disable smoothing, feedback, change headroom, ...).
  std::function<void(core::ControllerConfig&)> controller_tweak;

  /// Fault schedule armed against every bed the factory builds (empty =
  /// fault-free run). Host names must match the topology's
  /// ("proxy0.example.net", "uas0.callee.example.net", ...).
  fault::FaultPlan faults;

  /// Deterministic fraction of overload advertisements each proxy sheds
  /// before sending (fault-ablation axis; see ProxyConfig).
  double overload_signal_loss = 0.0;

  /// Early-dialog time-to-live on dialog-stateful proxies (see
  /// ProxyConfig::dialog_ttl); <= 0 disables the expiry sweep.
  SimTime dialog_ttl = SimTime::seconds(300);

  /// Max-Forwards the UACs stamp on requests. Conformance tests lower it
  /// to exercise hop-count exhaustion mid-chain.
  int uac_max_forwards = 70;

  /// Debug fault hook: reintroduces the historical Max-Forwards
  /// check-after-decrement bug on every proxy (mutation smoke for the
  /// checker; see ProxyConfig::debug_predecrement_max_forwards).
  bool debug_predecrement_max_forwards = false;

  std::uint64_t seed = 1;

  /// Shard count handed to the TestBed (0 = serial unless SVK_SIM_SHARDS
  /// or a runner override says otherwise). Any value yields bit-identical
  /// simulation results; see workload/testbed.hpp.
  std::size_t shards = 0;

  /// Overrides the bed's default 250us one-way link latency when > 0.
  /// A larger value raises the parallel engine's lookahead (fewer, wider
  /// safe windows); results stay shard-count-invariant at any fixed value.
  SimTime link_latency = SimTime{};
};

/// A single proxy between UACs and UASes.
[[nodiscard]] BedFactory single_proxy(ScenarioOptions options);

/// `num_proxies` in series; calls enter at proxy0 and exit at the last.
[[nodiscard]] BedFactory series_chain(int num_proxies,
                                      ScenarioOptions options);

/// Two in series where a fraction of calls terminates at the first proxy
/// (the paper's internal/external changing-loads scenario).
/// `external_fraction` of the offered load traverses both proxies.
[[nodiscard]] BedFactory two_series_with_internal(double external_fraction,
                                                  ScenarioOptions options);

/// Load-balancing fork: entry proxy splits across two exit proxies 50/50
/// (or per `split_to_upper`).
[[nodiscard]] BedFactory parallel_fork(ScenarioOptions options,
                                       double split_to_upper = 0.5);

/// Wide load-balancing fork: one entry balancer spreads calls round-robin
/// across `num_exits` (>= 2) exit proxies. The parallel-simulation
/// showcase topology — in a sharded bed the balancer is pinned to shard 0
/// and the exits spread over the remaining shards (UAC/UAS boxes
/// round-robin over all of them). Use kStaticChainLastStateful to get the
/// classic stateless-balancer / stateful-exits split.
[[nodiscard]] BedFactory wide_fork(int num_exits, ScenarioOptions options);

/// Builds the policy for one proxy of a chain of `num_proxies`.
[[nodiscard]] std::unique_ptr<proxy::StatePolicy> make_policy(
    const ScenarioOptions& options, std::size_t proxy_idx,
    std::size_t num_proxies);

}  // namespace svk::workload
