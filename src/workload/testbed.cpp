#include "workload/testbed.hpp"

#include <cassert>
#include <cstdlib>
#include <utility>

namespace svk::workload {
namespace {

thread_local std::size_t t_shards_override = 0;

std::size_t resolve_shards(std::size_t ctor_arg) {
  if (t_shards_override != 0) return t_shards_override;
  if (ctor_arg != 0) return ctor_arg;
  if (const char* env = std::getenv("SVK_SIM_SHARDS")) {
    const long parsed = std::strtol(env, nullptr, 10);
    if (parsed > 0) return static_cast<std::size_t>(parsed);
  }
  return 1;
}

}  // namespace

TestBed::ShardsOverride::ShardsOverride(std::size_t shards)
    : prev_(t_shards_override) {
  t_shards_override = shards;
}

TestBed::ShardsOverride::~ShardsOverride() { t_shards_override = prev_; }

TestBed::TestBed(std::uint64_t seed, std::size_t shards)
    : shards_(resolve_shards(shards)),
      rng_(seed),
      location_(std::make_shared<proxy::LocationService>()),
      network_(shards_, rng_.split(0xAE7)) {
  // 250us per hop one-way gives the ~1.5ms UAC<->UAS round trip the paper
  // reports on its Gigabit segment (3 hops each way).
  network_.set_default_link(sim::LinkParams{SimTime::micros(250),
                                            SimTime{}, 0.0});
}

void TestBed::run_until(SimTime until) {
  shards_.set_lookahead(network_.min_latency());
  shards_.run_until(until);
}

Address TestBed::declare_host(const std::string& host, int shard_hint) {
  if (const auto existing = registry_.resolve(host)) return *existing;
  const Address addr{next_address_++};
  registry_.add(host, addr);
  shards_.assign_rank(addr.value(), shard_hint);
  host_names_.emplace_back(addr.value(), host);
  if (obs_ != nullptr && obs_->tracer() != nullptr) {
    obs_->tracer()->set_thread_name(addr.value(), host);
  }
  return addr;
}

obs::Observability& TestBed::enable_observability(obs::Options options) {
  if (obs_ == nullptr) {
    obs_ = std::make_unique<obs::Observability>(options);
    sim().set_obs(obs_->sinks());
    for (std::size_t s = 1; s < shards_.shard_count(); ++s) {
      shard_obs_.push_back(std::make_unique<obs::Observability>(options));
      shards_.shard(s).set_obs(shard_obs_.back()->sinks());
    }
    if (!shard_obs_.empty()) {
      shards_.set_barrier_hook([this] {
        for (auto& bundle : shard_obs_) {
          if (obs_->metrics() != nullptr && bundle->metrics() != nullptr) {
            obs_->metrics()->absorb(*bundle->metrics());
          }
          if (obs_->tracer() != nullptr && bundle->tracer() != nullptr) {
            obs_->tracer()->absorb(*bundle->tracer());
          }
          if (obs_->audit() != nullptr && bundle->audit() != nullptr) {
            obs_->audit()->absorb(*bundle->audit());
          }
          if (obs_->overload_audit() != nullptr &&
              bundle->overload_audit() != nullptr) {
            obs_->overload_audit()->absorb(*bundle->overload_audit());
          }
        }
      });
    }
    if (obs_->tracer() != nullptr) {
      for (const auto& [addr, host] : host_names_) {
        obs_->tracer()->set_thread_name(addr, host);
      }
    }
  }
  return *obs_;
}

proxy::ProxyServer& TestBed::add_proxy(
    proxy::ProxyConfig config, proxy::RouteTable routes,
    std::unique_ptr<proxy::StatePolicy> policy) {
  config.address = declare_host(config.host);
  sim::Simulator& shard_sim = shards_.sim_for(config.address.value());
  sim::LocusScope scope(shard_sim, config.address.value());
  proxies_.push_back(std::make_unique<proxy::ProxyServer>(
      shard_sim, network_, registry_, location_, std::move(routes),
      std::move(policy), std::move(config)));
  return *proxies_.back();
}

Uas& TestBed::add_uas(UasConfig config) {
  config.address = declare_host(config.host);
  sim::Simulator& shard_sim = shards_.sim_for(config.address.value());
  sim::LocusScope scope(shard_sim, config.address.value());
  uases_.push_back(std::make_unique<Uas>(shard_sim, network_, config));
  return *uases_.back();
}

Uac& TestBed::add_uac(UacConfig config) {
  config.address = declare_host(config.host);
  sim::Simulator& shard_sim = shards_.sim_for(config.address.value());
  sim::LocusScope scope(shard_sim, config.address.value());
  uacs_.push_back(std::make_unique<Uac>(
      shard_sim, network_, rng_.split(0x0AC + uacs_.size()),
      std::move(config)));
  return *uacs_.back();
}

void TestBed::register_users(const std::string& domain, int count,
                             const std::vector<std::string>& uas_hosts) {
  assert(!uas_hosts.empty());
  for (int i = 0; i < count; ++i) {
    const std::string aor = "user" + std::to_string(i) + "@" + domain;
    const std::string& uas_host = uas_hosts[i % uas_hosts.size()];
    location_->register_binding(aor, sip::Uri("", uas_host));
  }
}

void TestBed::install_faults(const fault::FaultPlan& plan) {
  if (plan.empty()) return;
  injector_ =
      std::make_unique<fault::FaultInjector>(sim(), network_.faults());
  // Fault events mutate cross-shard state (the fault overlay, CPU
  // factors), so they are global: the ShardSet applies them at window
  // barriers, which for K == 1 degenerates to the plain rank-0 schedule.
  injector_->set_scheduler([this](SimTime at, std::function<void()> fn) {
    shards_.schedule_global(at, std::move(fn));
  });
  for (const auto& [addr, host] : host_names_) {
    std::function<void(double)> set_cpu_factor;
    for (auto& proxy : proxies_) {
      if (proxy->config().host == host) {
        set_cpu_factor = [cpu = &proxy->cpu()](double factor) {
          cpu->set_capacity_factor(factor);
        };
        break;
      }
    }
    injector_->add_host(host, Address{addr}, std::move(set_cpu_factor));
  }
  injector_->arm(plan);
}

check::RunChecker& TestBed::enable_checking(check::CheckOptions options) {
  if (checker_ != nullptr) return *checker_;
  // The checker observes every host's transactions and datagrams from one
  // timeline; it only supports the serial engine (the runner forces
  // shards = 1 for checked points).
  assert(shards_.shard_count() == 1);
  checker_ = std::make_unique<check::RunChecker>(sim(), options);
  for (const auto& [addr, host] : host_names_) {
    checker_->wire().register_host(Address{addr}, host);
  }
  txn::ConformanceTap* tap = &checker_->oracle();
  for (auto& proxy : proxies_) proxy->set_conformance_tap(tap);
  for (auto& uac : uacs_) uac->set_conformance_tap(tap);
  for (auto& uas : uases_) uas->set_conformance_tap(tap);
  check::WireChecker* wire = &checker_->wire();
  network_.set_send_tap(
      [wire](Address from, Address to, const sip::MessagePtr& msg) {
        wire->on_send(from, to, msg);
      });
  network_.set_deliver_tap(
      [wire](Address from, Address to, const sip::MessagePtr& msg) {
        wire->on_deliver(from, to, msg);
      });
  checker_->set_totals_source([this] {
    check::RunTotals totals;
    for (const auto& proxy : proxies_) {
      totals.double_stateful += proxy->stats().double_stateful;
      totals.active_transactions += proxy->transactions().active_count();
      totals.active_dialogs += proxy->dialogs().active_count();
    }
    for (const auto& uas : uases_) {
      totals.unmarked_invites += uas->metrics().unmarked_invites;
    }
    for (const auto& uac : uacs_) {
      const UacMetrics& m = uac->metrics();
      totals.open_uac_calls += uac->open_calls();
      totals.calls_attempted += m.calls_attempted;
      totals.calls_terminal +=
          m.calls_completed + m.calls_failed + m.calls_cancelled;
    }
    return totals;
  });
  checker_->start();
  return *checker_;
}

void TestBed::start_load() {
  for (auto& uac : uacs_) {
    const std::uint32_t rank = uac->config().address.value();
    sim::LocusScope scope(shards_.sim_for(rank), rank);
    uac->start();
  }
}

void TestBed::stop_load() {
  for (auto& uac : uacs_) uac->stop();
}

std::uint64_t TestBed::total_completed_calls() const {
  std::uint64_t total = 0;
  for (const auto& uas : uases_) total += uas->metrics().calls_completed;
  return total;
}

std::uint64_t TestBed::total_attempted_calls() const {
  std::uint64_t total = 0;
  for (const auto& uac : uacs_) total += uac->metrics().calls_attempted;
  return total;
}

}  // namespace svk::workload
