// TestBed — assembles a complete simulated deployment: network, proxies
// with their policies and route tables, UAS farms, UAC load generators,
// user registrations. One TestBed = one experiment run (fresh simulator,
// deterministic for a given seed).
//
// Sharding. A TestBed owns a sim::ShardSet of `shards` simulators (default
// 1 = the classic serial engine). The count is resolved at construction,
// strongest first: an active ShardsOverride (the runner's
// MeasureOptions.shards, and how checked runs force the serial engine),
// then the constructor argument, then the SVK_SIM_SHARDS environment
// variable, then 1. Hosts are assigned to shards round-robin in declaration
// order (or explicitly via declare_host's shard hint); each component is
// constructed against its host's shard simulator under a LocusScope, so
// even setup-time events carry the owning host's identity. A sharded bed
// must be driven through run_until() — never through sim().run_until(),
// which advances only shard 0 — and produces bit-identical RunRecord
// digests for any shard count.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "check/run_checker.hpp"
#include "common/rng.hpp"
#include "common/types.hpp"
#include "fault/injector.hpp"
#include "obs/observability.hpp"
#include "proxy/host_registry.hpp"
#include "proxy/location.hpp"
#include "proxy/proxy.hpp"
#include "sim/parallel_sim.hpp"
#include "sim/simulator.hpp"
#include "workload/uac.hpp"
#include "workload/uas.hpp"

namespace svk::workload {

/// Factory for the per-proxy state policy, invoked once per proxy.
using PolicyFactory =
    std::function<std::unique_ptr<proxy::StatePolicy>(std::size_t proxy_idx)>;

class TestBed {
 public:
  /// `shards` == 0 defers to ShardsOverride, then SVK_SIM_SHARDS, then 1.
  explicit TestBed(std::uint64_t seed = 1, std::size_t shards = 0);

  /// Thread-local shard-count override (RAII): while one is alive, every
  /// TestBed constructed on this thread uses its count, beating even an
  /// explicit constructor argument. The runner wraps bed-factory
  /// invocations in one of these so MeasureOptions.shards reaches
  /// factories that only take a seed — and so checked runs can force the
  /// serial engine regardless of what the factory asks for.
  class ShardsOverride {
   public:
    explicit ShardsOverride(std::size_t shards);
    ~ShardsOverride();
    ShardsOverride(const ShardsOverride&) = delete;
    ShardsOverride& operator=(const ShardsOverride&) = delete;

   private:
    std::size_t prev_;
  };

  /// Shard 0's simulator — THE simulator of a serial (1-shard) bed. For
  /// sharded beds use run_until()/now(); this accessor remains for serial
  /// tests and for harness-side scheduling (rank 0 lives on shard 0).
  [[nodiscard]] sim::Simulator& sim() { return shards_.shard(0); }
  [[nodiscard]] sim::ShardSet& shards() { return shards_; }
  [[nodiscard]] std::size_t shard_count() const {
    return shards_.shard_count();
  }
  [[nodiscard]] proxy::SipNetwork& network() { return network_; }
  [[nodiscard]] proxy::HostRegistry& registry() { return registry_; }
  [[nodiscard]] const std::shared_ptr<proxy::LocationService>& location()
      const {
    return location_;
  }

  /// Advances the whole bed (every shard) through `until`, refreshing the
  /// lookahead from the network's minimum link latency first. The only
  /// correct way to drive a sharded bed; equivalent to sim().run_until()
  /// for a serial one.
  void run_until(SimTime until);
  [[nodiscard]] SimTime now() const { return shards_.now(); }

  /// Allocates an address and binds `host` to it in the registry.
  /// `shard_hint` >= 0 pins the host to that shard (modulo shard count);
  /// the default assigns round-robin in declaration order.
  Address declare_host(const std::string& host, int shard_hint = -1);

  /// Adds a proxy. The route table refers to hosts by name (declare them
  /// first or reference UAS/proxy hosts added earlier).
  proxy::ProxyServer& add_proxy(proxy::ProxyConfig config,
                                proxy::RouteTable routes,
                                std::unique_ptr<proxy::StatePolicy> policy);

  Uas& add_uas(UasConfig config);
  Uac& add_uac(UacConfig config);

  /// Registers `count` users user0..user{count-1}@domain, binding them
  /// round-robin to the given UAS hosts.
  void register_users(const std::string& domain, int count,
                      const std::vector<std::string>& uas_hosts);

  [[nodiscard]] std::vector<std::unique_ptr<proxy::ProxyServer>>& proxies() {
    return proxies_;
  }
  [[nodiscard]] std::vector<std::unique_ptr<Uac>>& uacs() { return uacs_; }
  [[nodiscard]] std::vector<std::unique_ptr<Uas>>& uases() { return uases_; }

  /// Starts every UAC.
  void start_load();
  void stop_load();

  /// Sum of UAS completed calls (the paper's throughput counter).
  [[nodiscard]] std::uint64_t total_completed_calls() const;
  /// Sum of UAC attempted calls.
  [[nodiscard]] std::uint64_t total_attempted_calls() const;

  [[nodiscard]] Rng split_rng(std::uint64_t salt) {
    return rng_.split(salt);
  }

  /// Turns on observability for this bed (idempotent): creates the backend
  /// bundle, installs its sinks on the simulator, and names each declared
  /// host's trace timeline. Works before or after elements are added —
  /// components read the simulator's Sinks struct by stable address. In a
  /// sharded bed every shard gets a private bundle, drained into the
  /// primary one at window barriers (audit logs re-sorted by (time, node),
  /// the serial append order, so snapshots stay digest-identical).
  obs::Observability& enable_observability(obs::Options options = {});

  /// Null when observability was never enabled.
  [[nodiscard]] obs::Observability* observability() { return obs_.get(); }

  /// Arms a fault plan against this bed: every declared host becomes a
  /// valid fault target (proxies additionally expose their CPU for
  /// cpu_degrade events). Call after all elements are added and before the
  /// simulation runs; a no-op for an empty plan. Fault events are global —
  /// in a sharded bed they apply at window barriers (same ordering as the
  /// serial engine's rank-0 events).
  void install_faults(const fault::FaultPlan& plan);

  /// Null when no plan was installed.
  [[nodiscard]] fault::FaultInjector* fault_injector() {
    return injector_.get();
  }

  /// Turns on the conformance/invariant checking subsystem (src/check):
  /// taps every transaction manager with the RFC 3261 oracle, watches every
  /// datagram with the wire checker, and starts the periodic run-invariant
  /// sweep. Call AFTER all elements are added and before the simulation
  /// runs (idempotent; live transactions are not retrofitted). Checking is
  /// read-only: a checked run produces bit-identical results. Serial-engine
  /// only (the checker holds cross-host state); the runner forces
  /// shards = 1 for checked points.
  check::RunChecker& enable_checking(check::CheckOptions options = {});

  /// Null when checking was never enabled.
  [[nodiscard]] check::RunChecker* checker() { return checker_.get(); }

 private:
  sim::ShardSet shards_;
  Rng rng_;
  proxy::HostRegistry registry_;
  std::shared_ptr<proxy::LocationService> location_;
  proxy::SipNetwork network_;
  std::uint32_t next_address_{1};
  /// (address, host) pairs in declaration order, for trace thread names.
  std::vector<std::pair<std::uint32_t, std::string>> host_names_;
  std::unique_ptr<obs::Observability> obs_;
  /// Shards 1..K-1's private bundles (empty for serial beds).
  std::vector<std::unique_ptr<obs::Observability>> shard_obs_;
  std::unique_ptr<fault::FaultInjector> injector_;
  /// Declared before the elements that hold raw tap pointers into it, so
  /// it outlives them on destruction.
  std::unique_ptr<check::RunChecker> checker_;
  std::vector<std::unique_ptr<proxy::ProxyServer>> proxies_;
  std::vector<std::unique_ptr<Uac>> uacs_;
  std::vector<std::unique_ptr<Uas>> uases_;
};

}  // namespace svk::workload
