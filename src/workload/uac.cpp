#include "workload/uac.hpp"

#include <algorithm>
#include <charconv>
#include <memory>
#include <utility>

#include "obs/metrics.hpp"
#include "proxy/auth.hpp"

namespace svk::workload {

Uac::Uac(sim::Simulator& sim, proxy::SipNetwork& network, Rng rng,
         UacConfig config)
    : sim_(sim),
      network_(network),
      rng_(rng),
      config_(std::move(config)),
      txns_(sim, config_.timers),
      branches_(config_.address.value() | (1ULL << 32)) {
  network_.attach(config_.address,
                  [this](Address from, const sip::MessagePtr& msg) {
                    on_datagram(from, msg);
                  });
}

Uac::~Uac() {
  stop();
  network_.detach(config_.address);
}

void Uac::start() {
  if (running_) return;
  running_ = true;
  if (config_.start_offset > SimTime{}) {
    next_call_timer_ = sim_.schedule(config_.start_offset, [this] {
      if (running_) schedule_next_call();
    });
  } else {
    schedule_next_call();
  }
}

void Uac::stop() {
  running_ = false;
  sim_.cancel(next_call_timer_);
  next_call_timer_ = 0;
}

void Uac::schedule_next_call() {
  if (!running_ || config_.call_rate_cps <= 0.0) return;
  const double mean_gap = 1.0 / config_.call_rate_cps;
  const double gap = config_.poisson_arrivals
                         ? rng_.exponential(mean_gap)
                         : mean_gap;
  SimTime delay = SimTime::seconds(gap);
  // Retry-After backoff: never place a call before the deadline, but keep
  // the nominal pacing beyond it (the load resumes at the configured rate,
  // not in a burst of deferred calls).
  if (backoff_until_ > sim_.now() + delay) {
    delay = backoff_until_ - sim_.now();
  }
  next_call_timer_ = sim_.schedule(delay, [this] {
    place_call();
    schedule_next_call();
  });
}

void Uac::apply_retry_after(const sip::Message& response) {
  const auto header = response.header("Retry-After");
  if (!header) return;  // no directive: only the failed call is lost
  int delta_s = 0;
  std::from_chars(header->data(), header->data() + header->size(), delta_s);
  if (delta_s <= 0) return;
  const SimTime until =
      sim_.now() + SimTime::seconds(static_cast<double>(delta_s));
  if (until <= backoff_until_) return;  // already backing off longer
  backoff_until_ = until;
  ++metrics_.backoff_pauses;
  if (running_ && next_call_timer_ != 0) {
    // Push the pending next-call event out to the deadline.
    next_call_timer_ =
        sim_.reschedule(next_call_timer_, backoff_until_ - sim_.now(), [this] {
          place_call();
          schedule_next_call();
        });
  }
}

txn::SendFn Uac::counting_sender(sip::Method method) {
  auto sends = std::make_shared<int>(0);
  return [this, sends, method](const sip::MessagePtr& msg) {
    if (msg->is_request() && msg->method() == method && ++*sends > 1) {
      ++metrics_.retransmissions;
    }
    network_.send(config_.address, config_.first_hop, msg);
  };
}

void Uac::maybe_attach_credentials(sip::Message& request) const {
  if (!config_.attach_credentials) return;
  request.set_header(
      std::string(proxy::kProxyAuthorizationHeader),
      proxy::DigestAuthenticator::make_authorization(
          config_.auth_user, config_.auth_realm, config_.auth_password,
          config_.auth_nonce,
          std::string(sip::to_string(request.method())),
          request.request_uri().to_string()));
}

void Uac::place_call() {
  ++metrics_.calls_attempted;
  const std::uint64_t n = ++call_counter_;

  const std::string callee =
      "user" + std::to_string(n % static_cast<std::uint64_t>(
                                      std::max(1, config_.num_callees)));
  const std::string call_id =
      config_.host + "-" + std::to_string(n);
  const std::string from_tag = "uac" + std::to_string(n);

  sip::Uri request_uri(callee, config_.target_domain);
  sip::Message invite = sip::Message::request(
      sip::Method::kInvite, request_uri,
      sip::NameAddr{"", sip::Uri("caller", config_.host), from_tag},
      sip::NameAddr{"", request_uri, ""}, call_id,
      sip::CSeq{1, sip::Method::kInvite});
  invite.push_via(sip::Via{"SIP/2.0/UDP", config_.host, branches_.next()});
  invite.set_max_forwards(config_.max_forwards);
  invite.set_contact(sip::NameAddr{"", sip::Uri("caller", config_.host), ""});
  invite.set_body("v=0 o=sim c=IN IP4 0.0.0.0 m=audio 49170 RTP/AVP 0");
  maybe_attach_credentials(invite);
  auto invite_ptr = std::move(invite).finish();

  Call call;
  call.call_id = call_id;
  call.from_tag = from_tag;
  call.invite_sent = sim_.now();
  call.invite = invite_ptr;
  calls_.emplace(call_id, std::move(call));

  txn::ClientCallbacks callbacks;
  callbacks.on_response = [this, call_id](const sip::MessagePtr& msg) {
    on_invite_response(call_id, msg);
  };
  callbacks.on_timeout = [this, call_id] {
    ++metrics_.calls_failed;
    ++metrics_.calls_timed_out;
    calls_.erase(call_id);
  };
  txns_.create_client(invite_ptr, counting_sender(sip::Method::kInvite),
                      std::move(callbacks));

  if (config_.cancel_probability > 0.0 &&
      rng_.bernoulli(config_.cancel_probability)) {
    sim_.schedule(config_.ring_abandon_after,
                  [this, call_id] { send_cancel(call_id); });
  }
}

void Uac::send_cancel(const std::string& call_id) {
  const auto it = calls_.find(call_id);
  if (it == calls_.end() || it->second.established) return;  // answered
  Call& call = it->second;
  call.cancelled = true;

  // RFC 3261 9.1: the CANCEL copies the INVITE's request-URI, Via (same
  // branch!), From, To, Call-ID; CSeq keeps the number with method CANCEL.
  const sip::Message& invite = *call.invite;
  sip::Message cancel = sip::Message::request(
      sip::Method::kCancel, invite.request_uri(), invite.from(),
      invite.to(), invite.call_id(),
      sip::CSeq{invite.cseq().seq, sip::Method::kCancel});
  cancel.push_via(invite.top_via());
  txns_.create_client(std::move(cancel).finish(),
                      counting_sender(sip::Method::kCancel),
                      txn::ClientCallbacks{});
}

void Uac::on_invite_response(const std::string& call_id,
                             const sip::MessagePtr& msg) {
  const auto it = calls_.find(call_id);
  if (it == calls_.end()) return;
  Call& call = it->second;
  const int code = msg->status_code();

  if (sip::is_provisional(code)) {
    if (code == sip::status::kTrying) ++metrics_.trying_received;
    if (code == sip::status::kRinging) ++metrics_.ringing_received;
    return;
  }
  if (sip::is_success(code)) {
    if (call.established) return;  // retransmitted 2xx, txn already fired
    call.established = true;
    ++metrics_.calls_established;
    const double setup_ms = (sim_.now() - call.invite_sent).to_millis();
    metrics_.setup_time_ms.add(setup_ms);
    if (const obs::Sinks& obs = sim_.obs(); obs.metrics != nullptr) {
      established_counter_.inc(obs.metrics);
      setup_series_.sample(obs.metrics, sim_.now(), setup_ms);
    }

    call.to_tag = msg->to().tag;
    call.remote_target = msg->contact() ? msg->contact()->uri
                                        : call.invite->request_uri();
    call.route_set.assign(msg->record_routes().rbegin(),
                          msg->record_routes().rend());
    send_ack(call, *msg);
    if (config_.hold_time > SimTime{}) {
      sim_.schedule(config_.hold_time,
                    [this, call_id] { send_bye(call_id); });
    } else {
      send_bye(call_id);
    }
    return;
  }
  // Final non-2xx: failed (or successfully abandoned) call; the
  // transaction sends the hop ACK itself.
  if (code == sip::status::kServerError) ++metrics_.busy_500_received;
  if (code == sip::status::kServiceUnavailable) {
    ++metrics_.busy_503_received;
    apply_retry_after(*msg);
  }
  if (call.cancelled) {
    ++metrics_.calls_cancelled;
  } else {
    ++metrics_.calls_failed;
    if (code == sip::status::kServiceUnavailable) ++metrics_.calls_rejected;
    failed_counter_.inc(sim_.obs().metrics);
  }
  calls_.erase(it);
}

void Uac::send_ack(Call& call, const sip::Message& ok) {
  sip::Message ack = sip::Message::request(
      sip::Method::kAck, call.remote_target,
      sip::NameAddr{"", sip::Uri("caller", config_.host), call.from_tag},
      ok.to(), call.call_id, sip::CSeq{1, sip::Method::kAck});
  ack.push_via(sip::Via{"SIP/2.0/UDP", config_.host, branches_.next()});
  ack.routes() = call.route_set;
  auto ack_ptr = std::move(ack).finish();
  call.ack = ack_ptr;
  network_.send(config_.address, config_.first_hop, ack_ptr);
}

void Uac::send_bye(const std::string& call_id) {
  const auto it = calls_.find(call_id);
  if (it == calls_.end()) return;
  Call& call = it->second;

  sip::Message bye = sip::Message::request(
      sip::Method::kBye, call.remote_target,
      sip::NameAddr{"", sip::Uri("caller", config_.host), call.from_tag},
      sip::NameAddr{"", sip::Uri(call.invite->request_uri().user(),
                                 config_.target_domain),
                    call.to_tag},
      call.call_id, sip::CSeq{2, sip::Method::kBye});
  bye.push_via(sip::Via{"SIP/2.0/UDP", config_.host, branches_.next()});
  bye.set_max_forwards(config_.max_forwards);
  bye.routes() = call.route_set;
  maybe_attach_credentials(bye);
  auto bye_ptr = std::move(bye).finish();

  txn::ClientCallbacks callbacks;
  callbacks.on_response = [this, call_id](const sip::MessagePtr& msg) {
    if (!sip::is_final(msg->status_code())) return;
    if (sip::is_success(msg->status_code())) {
      ++metrics_.calls_completed;
    } else {
      if (msg->status_code() == sip::status::kServerError) {
        ++metrics_.busy_500_received;
      }
      if (msg->status_code() == sip::status::kServiceUnavailable) {
        ++metrics_.busy_503_received;
        apply_retry_after(*msg);
      }
      ++metrics_.calls_failed;
    }
    calls_.erase(call_id);
  };
  callbacks.on_timeout = [this, call_id] {
    ++metrics_.calls_failed;
    ++metrics_.calls_timed_out;
    calls_.erase(call_id);
  };
  txns_.create_client(bye_ptr, counting_sender(sip::Method::kBye),
                      std::move(callbacks));
}

void Uac::on_datagram(Address from, const sip::MessagePtr& msg) {
  (void)from;
  if (msg->is_request()) return;  // UAC receives only responses

  const txn::Dispatch dispatch = txns_.dispatch(msg);
  if (dispatch != txn::Dispatch::kStrayResponse) return;

  // Stray 2xx to INVITE: the transaction has ended but the UAS is still
  // retransmitting its 200 (our ACK was lost or slow) — re-ACK.
  if (sip::is_success(msg->status_code()) &&
      msg->cseq().method == sip::Method::kInvite) {
    const auto it = calls_.find(msg->call_id());
    if (it != calls_.end() && it->second.ack) {
      network_.send(config_.address, config_.first_hop, it->second.ack);
    }
  }
}

}  // namespace svk::workload
