// UAC — the SIPp client scenario: places calls at a configured rate through
// an outbound proxy, drives INVITE / ACK / BYE with real client
// transactions (UDP retransmission timers included), and records the
// metrics the paper reports: throughput, setup times, 100 Trying counts
// (the witness that some node held state), 500s and retransmissions.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"
#include "obs/metrics.hpp"
#include "proxy/proxy.hpp"
#include "sim/simulator.hpp"
#include "sip/branch.hpp"
#include "sip/message.hpp"
#include "txn/manager.hpp"
#include "workload/metrics.hpp"

namespace svk::workload {

struct UacConfig {
  std::string host;
  Address address;
  Address first_hop;            // outbound proxy
  std::string target_domain;    // callee AOR domain, e.g. "cc.gatech.edu"
  int num_callees = 2;          // paper: two URIs
  double call_rate_cps = 1.0;
  bool poisson_arrivals = false;  // default: SIPp-style fixed pacing
  SimTime start_offset;           // dephases multiple generators
  SimTime hold_time;              // ACK -> BYE gap (SIPp default: none)
  /// Caller abandonment: with this probability a call is CANCELled after
  /// ring_abandon_after unless answered first (0 = never, the paper's
  /// workload).
  double cancel_probability = 0.0;
  SimTime ring_abandon_after = SimTime::seconds(2.0);
  txn::TimerConfig timers;
  /// Max-Forwards stamped on generated INVITE/BYE requests (RFC 3261
  /// default 70; conformance tests lower it to exercise hop-count
  /// exhaustion at a chosen hop).
  int max_forwards = 70;
  /// Attach Proxy-Authorization (preemptively, as SIPp does once
  /// challenged) using these credentials.
  bool attach_credentials = false;
  std::string auth_user;
  std::string auth_password;
  std::string auth_realm;
  std::string auth_nonce;
};

class Uac {
 public:
  Uac(sim::Simulator& sim, proxy::SipNetwork& network, Rng rng,
      UacConfig config);
  ~Uac();

  Uac(const Uac&) = delete;
  Uac& operator=(const Uac&) = delete;

  /// Begins call generation (first call after one inter-arrival gap).
  void start();
  void stop();

  [[nodiscard]] const UacMetrics& metrics() const { return metrics_; }
  [[nodiscard]] UacMetrics& metrics() { return metrics_; }
  [[nodiscard]] const UacConfig& config() const { return config_; }
  /// Calls currently in flight (diagnostics).
  [[nodiscard]] std::size_t open_calls() const { return calls_.size(); }
  /// Installs a conformance tap on this UAC's transactions (txn/tap.hpp).
  void set_conformance_tap(txn::ConformanceTap* tap) {
    txns_.set_conformance_tap(tap);
  }

 private:
  struct Call {
    std::string call_id;
    std::string from_tag;
    SimTime invite_sent;
    sip::MessagePtr invite;
    sip::MessagePtr ack;             // replayed on retransmitted 200s
    sip::Message::RouteList route_set;  // reversed Record-Route from the 200
    sip::Uri remote_target;          // 200's Contact
    std::string to_tag;
    bool established = false;
    bool cancelled = false;
  };

  void schedule_next_call();
  void place_call();
  /// Honors a 503's Retry-After: pushes the next-call time out to the
  /// backoff deadline (SIPp's -rsa behavior; RFC 3261 21.5.4).
  void apply_retry_after(const sip::Message& response);
  void on_datagram(Address from, const sip::MessagePtr& msg);
  void on_invite_response(const std::string& call_id,
                          const sip::MessagePtr& msg);
  void send_ack(Call& call, const sip::Message& ok);
  void send_bye(const std::string& call_id);
  void send_cancel(const std::string& call_id);
  /// Wraps a network send with duplicate counting for `method` requests.
  [[nodiscard]] txn::SendFn counting_sender(sip::Method method);
  void maybe_attach_credentials(sip::Message& request) const;

  sim::Simulator& sim_;
  proxy::SipNetwork& network_;
  Rng rng_;
  UacConfig config_;
  txn::TransactionManager txns_;
  sip::BranchGenerator branches_;
  UacMetrics metrics_;
  std::unordered_map<std::string, Call> calls_;
  bool running_{false};
  sim::EventId next_call_timer_{0};
  /// No new calls before this time (503 Retry-After backoff).
  SimTime backoff_until_;
  std::uint64_t call_counter_{0};
  // Pre-resolved per-call instruments (hot under fig5-scale call volumes).
  obs::CounterHandle established_counter_{"uac.calls_established"};
  obs::CounterHandle failed_counter_{"uac.calls_failed"};
  obs::SeriesHandle setup_series_{"uac.setup_ms"};
};

}  // namespace svk::workload
