#include "workload/uas.hpp"

#include <algorithm>
#include <utility>

namespace svk::workload {

Uas::Uas(sim::Simulator& sim, proxy::SipNetwork& network, UasConfig config)
    : sim_(sim),
      network_(network),
      config_(std::move(config)),
      txns_(sim, config_.timers) {
  network_.attach(config_.address,
                  [this](Address from, const sip::MessagePtr& msg) {
                    on_datagram(from, msg);
                  });
}

Uas::~Uas() {
  for (auto& [call_id, pending] : pending_200_) {
    sim_.cancel(pending.timer);
  }
  for (auto& [call_id, pending] : ringing_) {
    sim_.cancel(pending.timer);
  }
  network_.detach(config_.address);
}

void Uas::on_datagram(Address from, const sip::MessagePtr& msg) {
  if (!msg->is_request()) {
    // Responses to our own REGISTER transactions.
    (void)txns_.dispatch(msg);
    return;
  }

  const txn::Dispatch dispatch = txns_.dispatch(msg);
  if (dispatch == txn::Dispatch::kHandledByServerTxn) return;

  switch (msg->method()) {
    case sip::Method::kInvite:
      handle_invite(from, msg);
      break;
    case sip::Method::kAck:
      handle_ack(msg);
      break;
    case sip::Method::kBye:
      handle_bye(from, msg);
      break;
    case sip::Method::kCancel:
      handle_cancel(from, msg);
      break;
    default:
      break;  // unsupported methods ignored
  }
}

void Uas::handle_invite(Address from, const sip::MessagePtr& msg) {
  // A retransmitted INVITE whose transaction already ended with our 200:
  // replay the 200 (we are still waiting for the ACK).
  if (const auto it = pending_200_.find(msg->call_id());
      it != pending_200_.end()) {
    ++metrics_.retransmitted_200;
    network_.send(config_.address, it->second.peer, it->second.response);
    return;
  }

  ++metrics_.invites_received;
  if (!msg->header(proxy::kStatefulMarkHeader)) {
    ++metrics_.unmarked_invites;
  }
  txn::TxnHandle server_handle;
  auto& server_txn = txns_.create_server(
      msg,
      [this, from](const sip::MessagePtr& m) {
        network_.send(config_.address, from, m);
      },
      txn::ServerCallbacks{}, &server_handle);

  const std::string tag = "uas" + std::to_string(++tag_counter_);

  sip::Message ringing = sip::Message::response(*msg, sip::status::kRinging);
  ringing.to().tag = tag;
  server_txn.respond(std::move(ringing).finish());

  PendingAnswer pending;
  pending.invite = msg;
  pending.server_txn = server_handle;
  pending.tag = tag;
  pending.peer = from;
  const std::string call_id = msg->call_id();
  if (config_.answer_delay > SimTime{}) {
    pending.timer = sim_.schedule(config_.answer_delay,
                                  [this, call_id] { answer(call_id); });
    ringing_.emplace(call_id, std::move(pending));
  } else {
    ringing_.emplace(call_id, std::move(pending));
    answer(call_id);
  }
}

void Uas::answer(const std::string& call_id) {
  const auto it = ringing_.find(call_id);
  if (it == ringing_.end()) return;
  PendingAnswer ringing = std::move(it->second);
  ringing_.erase(it);

  sip::Message ok = sip::Message::response(*ringing.invite, sip::status::kOk);
  ok.to().tag = ringing.tag;
  ok.set_contact(sip::NameAddr{"", contact_uri(), ""});
  auto ok_ptr = std::move(ok).finish();
  if (auto* server_txn = txns_.find_server(ringing.server_txn)) {
    server_txn->respond(ok_ptr);
  } else {
    network_.send(config_.address, ringing.peer, ok_ptr);
  }

  // RFC 3261 13.3.1.4: the UAS core retransmits the 2xx until ACKed.
  Pending200 pending;
  pending.response = ok_ptr;
  pending.peer = ringing.peer;
  pending.interval = config_.timers.t1;
  pending.deadline = sim_.now() + 64 * config_.timers.t1;
  pending.timer = sim_.schedule(pending.interval,
                                [this, call_id] { retransmit_200(call_id); });
  pending_200_.emplace(call_id, std::move(pending));
}

void Uas::handle_cancel(Address from, const sip::MessagePtr& msg) {
  // The CANCEL gets its own transaction and an immediate 200 (RFC 3261
  // 9.2), whether or not it still catches the INVITE.
  auto& cancel_txn = txns_.create_server(
      msg,
      [this, from](const sip::MessagePtr& m) {
        network_.send(config_.address, from, m);
      },
      txn::ServerCallbacks{});
  cancel_txn.respond(
      sip::Message::response(*msg, sip::status::kOk).finish());

  const auto it = ringing_.find(msg->call_id());
  if (it == ringing_.end()) return;  // too late: already answered
  PendingAnswer ringing = std::move(it->second);
  sim_.cancel(ringing.timer);
  ringing_.erase(it);
  ++metrics_.cancels_received;

  if (auto* invite_txn = txns_.find_server(ringing.server_txn)) {
    sip::Message terminated =
        sip::Message::response(*ringing.invite, 487);
    terminated.to().tag = ringing.tag;
    invite_txn->respond(std::move(terminated).finish());
  }
}

void Uas::retransmit_200(const std::string& call_id) {
  const auto it = pending_200_.find(call_id);
  if (it == pending_200_.end()) return;
  Pending200& pending = it->second;
  if (sim_.now() >= pending.deadline) {
    pending_200_.erase(it);  // give up; the call never got its ACK
    return;
  }
  ++metrics_.retransmitted_200;
  network_.send(config_.address, pending.peer, pending.response);
  pending.interval = std::min(2 * pending.interval, config_.timers.t2);
  pending.timer = sim_.schedule(pending.interval,
                                [this, call_id] { retransmit_200(call_id); });
}

void Uas::handle_ack(const sip::MessagePtr& msg) {
  const auto it = pending_200_.find(msg->call_id());
  if (it == pending_200_.end()) return;  // duplicate ACK
  sim_.cancel(it->second.timer);
  pending_200_.erase(it);
  ++metrics_.calls_established;
}

void Uas::register_with(Address registrar, const std::string& aor,
                        SimTime expires, bool auto_refresh) {
  send_register(registrar, aor, expires, auto_refresh);
}

void Uas::send_register(Address registrar, const std::string& aor,
                        SimTime expires, bool auto_refresh) {
  const auto at = aor.find('@');
  const std::string user = aor.substr(0, at);
  const std::string domain =
      at == std::string::npos ? aor : aor.substr(at + 1);

  sip::Message reg = sip::Message::request(
      sip::Method::kRegister, sip::Uri("", domain),
      sip::NameAddr{"", sip::Uri(user, domain),
                    "reg" + std::to_string(++register_counter_)},
      sip::NameAddr{"", sip::Uri(user, domain), ""},
      config_.host + "-reg-" + std::to_string(register_counter_),
      sip::CSeq{static_cast<std::uint32_t>(register_counter_),
                sip::Method::kRegister});
  reg.push_via(sip::Via{
      "SIP/2.0/UDP", config_.host,
      std::string(sip::kMagicCookie) + "-reg-" + config_.host + "-" +
          std::to_string(register_counter_)});
  reg.set_contact(sip::NameAddr{"", contact_uri(), ""});
  reg.set_header("Expires",
                 std::to_string(static_cast<long>(expires.to_seconds())));

  txn::ClientCallbacks callbacks;
  callbacks.on_response = [this, registrar, aor, expires, auto_refresh](
                              const sip::MessagePtr& response) {
    if (!sip::is_success(response->status_code())) return;
    ++registrations_confirmed_;
    if (auto_refresh) {
      // Renew at half-life (common UA behaviour).
      sim_.schedule(SimTime::seconds(expires.to_seconds() / 2.0),
                    [this, registrar, aor, expires, auto_refresh] {
                      send_register(registrar, aor, expires, auto_refresh);
                    });
    }
  };
  txns_.create_client(
      std::move(reg).finish(),
      [this, registrar](const sip::MessagePtr& m) {
        network_.send(config_.address, registrar, m);
      },
      std::move(callbacks));
}

void Uas::handle_bye(Address from, const sip::MessagePtr& msg) {
  ++metrics_.byes_received;
  auto& server_txn = txns_.create_server(
      msg,
      [this, from](const sip::MessagePtr& m) {
        network_.send(config_.address, from, m);
      },
      txn::ServerCallbacks{});
  server_txn.respond(
      sip::Message::response(*msg, sip::status::kOk).finish());
  ++metrics_.calls_completed;
}

}  // namespace svk::workload
