// UAS — the SIPp server scenario: answers INVITE with 180 + 200, absorbs
// retransmissions through real server transactions, retransmits the 200
// until ACKed (RFC 3261 13.3.1.4), and answers BYE with 200.
//
// Like the paper's SIPp boxes, the UAS has no CPU model: the testbed was
// provisioned so only the proxy under test saturates.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>

#include "common/types.hpp"
#include "proxy/proxy.hpp"
#include "sim/simulator.hpp"
#include "sip/branch.hpp"
#include "sip/message.hpp"
#include "txn/manager.hpp"
#include "workload/metrics.hpp"

namespace svk::workload {

struct UasConfig {
  std::string host;
  Address address;
  /// Ringing time before the 200 OK (0 = answer immediately, the SIPp
  /// default). A nonzero delay opens the window in which CANCEL applies.
  SimTime answer_delay;
  txn::TimerConfig timers;
};

class Uas {
 public:
  Uas(sim::Simulator& sim, proxy::SipNetwork& network, UasConfig config);
  ~Uas();

  Uas(const Uas&) = delete;
  Uas& operator=(const Uas&) = delete;

  [[nodiscard]] const UasMetrics& metrics() const { return metrics_; }
  [[nodiscard]] const UasConfig& config() const { return config_; }
  /// The contact URI remote parties use to reach this UAS directly.
  [[nodiscard]] sip::Uri contact_uri() const {
    return sip::Uri("", config_.host);
  }

  /// Registers `aor` ("user@domain") with the given registrar proxy via a
  /// real REGISTER transaction (RFC 3261 10). With `auto_refresh`, the
  /// binding is renewed at half its lifetime for the rest of the run.
  void register_with(Address registrar, const std::string& aor,
                     SimTime expires, bool auto_refresh = false);

  [[nodiscard]] std::uint64_t registrations_confirmed() const {
    return registrations_confirmed_;
  }

  /// Installs a conformance tap on this UAS's transactions (txn/tap.hpp).
  void set_conformance_tap(txn::ConformanceTap* tap) {
    txns_.set_conformance_tap(tap);
  }

 private:
  void on_datagram(Address from, const sip::MessagePtr& msg);
  void handle_invite(Address from, const sip::MessagePtr& msg);
  void handle_bye(Address from, const sip::MessagePtr& msg);
  void handle_ack(const sip::MessagePtr& msg);
  void handle_cancel(Address from, const sip::MessagePtr& msg);
  void answer(const std::string& call_id);
  void retransmit_200(const std::string& call_id);
  void send_register(Address registrar, const std::string& aor,
                     SimTime expires, bool auto_refresh);

  sim::Simulator& sim_;
  proxy::SipNetwork& network_;
  UasConfig config_;
  txn::TransactionManager txns_;
  UasMetrics metrics_;
  std::uint64_t tag_counter_{0};
  std::uint64_t register_counter_{0};
  std::uint64_t registrations_confirmed_{0};

  /// 200-OK retransmission state per call awaiting ACK.
  struct Pending200 {
    sip::MessagePtr response;
    Address peer;
    sim::EventId timer = 0;
    SimTime interval;
    SimTime deadline;
  };
  std::unordered_map<std::string, Pending200> pending_200_;

  /// Calls ringing (180 sent, 200 pending) — cancellable.
  struct PendingAnswer {
    sip::MessagePtr invite;
    /// Handle of the INVITE server transaction: O(1) generation-checked
    /// resolution at answer/cancel time, no owning key strings.
    txn::TxnHandle server_txn;
    std::string tag;
    Address peer;
    sim::EventId timer = 0;
  };
  std::unordered_map<std::string, PendingAnswer> ringing_;
};

}  // namespace svk::workload
