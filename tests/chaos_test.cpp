// Chaos/property harness: seeded random fault schedules against full
// topologies running the SERvartuka controller, checking the invariants
// that must survive any fault sequence:
//
//   * safety      — every INVITE that reaches a UAS was taken stateful by
//                   exactly one proxy (no unmarked INVITEs, no
//                   double-stateful decisions under Algorithm 1);
//   * leak-freedom— after load stops and SIP timers drain, no proxy holds
//                   a live transaction or dialog;
//   * sanity      — controller outputs stay in range in every audit window
//                   (sf_fraction in [0,1], nonnegative shares);
//   * recovery    — once the last fault heals, calls complete again and
//                   every frozen path is released within a bounded number
//                   of controller windows;
//   * determinism — the same seed and plan reproduce a bit-identical
//                   RunRecord.
//
// Seed count comes from SVK_CHAOS_SEEDS (default 10). When a seed fails,
// its FaultPlan and a run summary are written to SVK_CHAOS_ARTIFACT_DIR
// (default: the test temp dir) for replay.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <iostream>
#include <string>
#include <vector>

#include "check/run_checker.hpp"
#include "common/json.hpp"
#include "fault/fault_plan.hpp"
#include "generators.hpp"
#include "obs/audit.hpp"
#include "workload/runner.hpp"
#include "workload/scenarios.hpp"

namespace svk {
namespace {

/// Every generated fault, including its revert, settles by this time.
constexpr double kFaultWindowEnd = 8.0;
/// Frozen paths must be released within this budget after the last heal:
/// staleness timeout (6 windows) + probe/hysteresis slack, at the 0.5 s
/// controller period used below.
constexpr double kReconvergeBudgetS = 6.5;

std::uint64_t seed_count() {
  if (const char* env = std::getenv("SVK_CHAOS_SEEDS")) {
    const int n = std::atoi(env);
    if (n > 0) return static_cast<std::uint64_t>(n);
  }
  return 10;
}

workload::ScenarioOptions base_options(std::uint64_t seed,
                                       std::size_t num_proxies) {
  workload::ScenarioOptions options;
  options.policy = workload::PolicyKind::kServartuka;
  // Scaled-down nodes keep runs fast: t_sf ~103.6 cps, t_sl ~123 cps.
  options.capacity_scale.assign(num_proxies, 0.01);
  options.controller_period = SimTime::seconds(0.5);
  options.seed = seed;
  return options;
}

struct ChaosSetup {
  workload::BedFactory factory;
  fault::FaultPlan plan;
  /// Above the scaled T_SF (~103.6) so the controller must delegate, below
  /// T_SL so the fault-free system is sustainable — any persistent overload
  /// at the end of a run is controller wedge, not offered load.
  double offered = 115.0;
};

ChaosSetup make_two_series(std::uint64_t seed) {
  chaos::FaultScheduleOptions fopt;
  fopt.crashable = {"proxy1.example.net"};
  fopt.degradable = {"proxy0.example.net", "proxy1.example.net"};
  fopt.links = {{"proxy0.example.net", "proxy1.example.net"}};
  fopt.window_end_s = kFaultWindowEnd;

  auto options = base_options(seed, 2);
  options.faults = chaos::generate_fault_schedule(seed, fopt);

  ChaosSetup setup;
  setup.plan = options.faults;
  setup.factory = workload::two_series_with_internal(0.7, options);
  return setup;
}

ChaosSetup make_parallel_fork(std::uint64_t seed) {
  chaos::FaultScheduleOptions fopt;
  fopt.crashable = {"proxya.example.net", "proxyb.example.net"};
  fopt.degradable = {"proxy0.example.net", "proxya.example.net",
                     "proxyb.example.net"};
  fopt.links = {{"proxy0.example.net", "proxya.example.net"},
                {"proxy0.example.net", "proxyb.example.net"}};
  fopt.window_end_s = kFaultWindowEnd;

  auto options = base_options(seed, 3);
  // Offset the fork's schedule stream from two-series' for the same seed.
  options.faults = chaos::generate_fault_schedule(seed + 1000, fopt);

  ChaosSetup setup;
  setup.plan = options.faults;
  setup.factory = workload::parallel_fork(options);
  return setup;
}

void dump_artifacts(const std::string& topology, workload::TestBed& bed,
                    const fault::FaultPlan& plan) {
  const char* env = std::getenv("SVK_CHAOS_ARTIFACT_DIR");
  const std::string dir = env != nullptr ? env : testing::TempDir();
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  const std::string base =
      dir + "/" + topology + "_seed" + std::to_string(plan.seed);

  plan.write_file(base + "_plan.json");

  JsonValue summary = JsonValue::object();
  summary["topology"] = topology;
  summary["seed"] = plan.seed;
  summary["completed_calls"] = bed.total_completed_calls();
  summary["attempted_calls"] = bed.total_attempted_calls();
  JsonValue& proxies = summary["proxies"];
  proxies = JsonValue::array();
  for (const auto& proxy : bed.proxies()) {
    JsonValue row = JsonValue::object();
    row["host"] = proxy->config().host;
    row["active_transactions"] =
        static_cast<std::uint64_t>(proxy->transactions().active_count());
    row["rejected_busy"] = proxy->stats().rejected_busy;
    row["double_stateful"] = proxy->stats().double_stateful;
    proxies.push_back(std::move(row));
  }
  if (auto* obs = bed.observability();
      obs != nullptr && obs->audit() != nullptr) {
    summary["controller_windows"] =
        obs::windows_to_json(obs->audit()->snapshot());
  }
  if (auto* checker = bed.checker(); checker != nullptr) {
    checker->to_json().write_file(base + "_violations.json");
  }
  summary.write_file(base + "_run.json");
  std::cerr << "[chaos] failing schedule dumped to " << base
            << "_{plan,run}.json\n";
}

void run_chaos_seed(const std::string& topology, const ChaosSetup& setup) {
  const bool prior_failure = ::testing::Test::HasFailure();
  SCOPED_TRACE(topology + " seed " + std::to_string(setup.plan.seed));

  auto bed = setup.factory(setup.offered);
  bed->enable_observability();
  check::CheckOptions check_options;
  // Crash and link faults legitimately strand in-flight requests; every
  // other wire/oracle/run invariant must still hold.
  check_options.expect_all_answered = false;
  check::RunChecker& checker = bed->enable_checking(check_options);
  ASSERT_NE(bed->fault_injector(), nullptr);

  const SimTime heal = SimTime::seconds(kFaultWindowEnd);
  const SimTime probe = heal + SimTime::seconds(1.0);
  const SimTime load_end = SimTime::seconds(14.0);

  bed->start_load();
  bed->sim().run_until(probe);
  const std::uint64_t completed_at_probe = bed->total_completed_calls();
  bed->sim().run_until(load_end);
  const std::uint64_t completed_at_end = bed->total_completed_calls();
  bed->stop_load();
  // Longest drain chain: a transaction stuck in Proceeding (peer died
  // after its 1xx) fires timer C at 180 s, and the resulting 408 final
  // runs its own completion timers (D/H, 32 s). Simulated idle time is
  // nearly free, so the generous bound costs little wall clock.
  bed->sim().run_until(load_end + SimTime::seconds(220.0));

  // The plan referenced only real hosts and actually ran.
  EXPECT_TRUE(bed->fault_injector()->errors().empty());
  EXPECT_GT(bed->fault_injector()->applied(), 0u);

  // Recovery (liveness): once every fault healed, calls complete again.
  EXPECT_GT(completed_at_end, completed_at_probe)
      << "no calls completed after the last fault healed";

  // Safety: every delivered INVITE was taken stateful exactly once.
  for (const auto& uas : bed->uases()) {
    EXPECT_EQ(uas->metrics().unmarked_invites, 0u) << uas->config().host;
  }
  for (const auto& proxy : bed->proxies()) {
    EXPECT_EQ(proxy->stats().double_stateful, 0u) << proxy->config().host;
  }

  // Conformance oracle + run invariants: the checker shadowed every
  // transaction and datagram; the drain-time checks run inside finish()
  // (which also stops the checker's sweep timer, keeping the pending-event
  // bound below exact).
  checker.finish();
  EXPECT_GT(checker.oracle().events_checked(), 0u);
  EXPECT_TRUE(checker.log().empty()) << checker.log().summary();

  // Leak-freedom: after the drain no proxy holds live state.
  for (const auto& proxy : bed->proxies()) {
    EXPECT_EQ(proxy->transactions().active_count(), 0u)
        << proxy->config().host;
    EXPECT_EQ(proxy->dialogs().active_count(), 0u) << proxy->config().host;
  }
  // ...and no transaction leaked an armed timer into the simulator: the
  // only events legitimately still pending are the per-proxy periodic
  // controller/overload ticks (at most two per proxy). A wedged
  // transaction — e.g. one knocked back to Proceeding by a late
  // provisional, retransmitting forever — would keep extra events alive
  // past any drain and trip this bound.
  EXPECT_LE(bed->sim().pending_count(), 2 * bed->proxies().size())
      << "events leaked past the post-load drain";

  // Controller sanity + bounded re-convergence, from the audit log.
  ASSERT_NE(bed->observability()->audit(), nullptr);
  const auto windows = bed->observability()->audit()->snapshot();
  EXPECT_FALSE(windows.empty());
  SimTime last_overloaded;
  for (const auto& window : windows) {
    for (const auto& row : window.paths) {
      EXPECT_GE(row.sf_fraction, 0.0);
      EXPECT_LE(row.sf_fraction, 1.0);
      EXPECT_GE(row.frozen_c_asf, 0.0);
      if (std::isfinite(row.myshare)) {
        EXPECT_GE(row.myshare, 0.0);
      }
      if (row.overloaded) {
        last_overloaded = std::max(last_overloaded, window.at);
      }
    }
  }
  EXPECT_LE(last_overloaded, heal + SimTime::seconds(kReconvergeBudgetS))
      << "a path stayed frozen past the re-convergence budget";

  if (!prior_failure && ::testing::Test::HasFailure()) {
    dump_artifacts(topology, *bed, setup.plan);
  }
}

TEST(ChaosTest, TwoSeriesSchedulesHoldInvariants) {
  const std::uint64_t seeds = seed_count();
  for (std::uint64_t seed = 1; seed <= seeds; ++seed) {
    run_chaos_seed("two_series", make_two_series(seed));
  }
}

TEST(ChaosTest, ParallelForkSchedulesHoldInvariants) {
  const std::uint64_t seeds = seed_count();
  for (std::uint64_t seed = 1; seed <= seeds; ++seed) {
    run_chaos_seed("parallel_fork", make_parallel_fork(seed));
  }
}

/// Hand-written cpu_degrade-heavy schedule: overlapping degrade/recover
/// cycles on both proxies of the two-series topology. Every transition
/// lands while the victim is loaded, so CpuQueue::set_capacity_factor must
/// rescale a non-empty backlog (the satellite bugfix) in both directions —
/// degrade mid-service and recover mid-service — without wedging the
/// controller or leaking transactions.
ChaosSetup make_degrade_storm(std::uint64_t seed) {
  fault::FaultPlan plan;
  plan.name = "degrade_storm";
  plan.seed = seed;  // provenance only; the schedule itself is fixed
  auto degrade = [&plan](double at_s, double dur_s, const char* host,
                         double factor) {
    fault::FaultEvent event;
    event.kind = fault::FaultKind::kCpuDegrade;
    event.at = SimTime::seconds(at_s);
    event.duration = SimTime::seconds(dur_s);
    event.host = host;
    event.value = factor;
    plan.events.push_back(event);
  };
  degrade(2.0, 1.2, "proxy0.example.net", 0.45);
  degrade(2.6, 1.6, "proxy1.example.net", 0.60);
  degrade(4.5, 1.0, "proxy1.example.net", 0.40);
  degrade(6.0, 1.5, "proxy0.example.net", 0.70);

  auto options = base_options(seed, 2);
  options.faults = plan;

  ChaosSetup setup;
  setup.plan = plan;
  setup.factory = workload::two_series_with_internal(0.7, options);
  return setup;
}

TEST(ChaosTest, CpuDegradeStormHoldsInvariants) {
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    run_chaos_seed("degrade_storm", make_degrade_storm(seed));
  }
}

TEST(ChaosTest, CpuDegradeStormReplayIsBitIdentical) {
  const ChaosSetup setup = make_degrade_storm(1);
  const auto a = workload::measure_point(setup.factory, setup.offered);
  const auto b = workload::measure_point(setup.factory, setup.offered);
  RunRecord ra = workload::to_run_record(a, 1.0, "degrade_storm");
  RunRecord rb = workload::to_run_record(b, 1.0, "degrade_storm");
  ra.wall_seconds = 0.0;
  rb.wall_seconds = 0.0;
  EXPECT_EQ(ra.to_json().dump(), rb.to_json().dump());
}

TEST(ChaosTest, ReplaySameSeedIsBitIdentical) {
  for (const std::uint64_t seed : {std::uint64_t{3}, std::uint64_t{7}}) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    const ChaosSetup setup = make_two_series(seed);
    const auto a = workload::measure_point(setup.factory, setup.offered);
    const auto b = workload::measure_point(setup.factory, setup.offered);
    RunRecord ra = workload::to_run_record(a, 1.0, "chaos");
    RunRecord rb = workload::to_run_record(b, 1.0, "chaos");
    // Wall-clock time is host noise, not simulation output.
    ra.wall_seconds = 0.0;
    rb.wall_seconds = 0.0;
    EXPECT_EQ(ra.to_json().dump(), rb.to_json().dump());
  }
}

TEST(ChaosTest, GeneratedPlansAreReproducibleAndBounded) {
  for (std::uint64_t seed = 1; seed <= 50; ++seed) {
    const fault::FaultPlan a = make_two_series(seed).plan;
    const fault::FaultPlan b = make_two_series(seed).plan;
    EXPECT_EQ(a.to_json().dump(), b.to_json().dump());
    EXPECT_EQ(a.seed, seed);
    EXPECT_FALSE(a.empty());
    EXPECT_LE(a.end_time(), SimTime::seconds(kFaultWindowEnd));
    for (const auto& event : a.events) {
      EXPECT_GE(event.at, SimTime::seconds(2.0));
    }
  }
}

}  // namespace
}  // namespace svk
