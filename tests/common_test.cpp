// Unit tests for the common support library: SimTime, StrongId, Result,
// Rng, statistics and MD5.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <limits>
#include <set>
#include <sstream>
#include <vector>

#include "common/json.hpp"
#include "common/logging.hpp"
#include "common/md5.hpp"
#include "common/result.hpp"
#include "common/rng.hpp"
#include "common/run_record.hpp"
#include "common/sim_time.hpp"
#include "common/small_vector.hpp"
#include "common/stats.hpp"
#include "common/thread_pool.hpp"
#include "common/types.hpp"

namespace svk {
namespace {

// ---------------------------------------------------------------------------
// SimTime
// ---------------------------------------------------------------------------

TEST(SimTimeTest, ConstructorsAgree) {
  EXPECT_EQ(SimTime::millis(1), SimTime::micros(1000));
  EXPECT_EQ(SimTime::micros(1), SimTime::nanos(1000));
  EXPECT_EQ(SimTime::seconds(1.0), SimTime::millis(1000));
}

TEST(SimTimeTest, Arithmetic) {
  const SimTime a = SimTime::millis(500);
  const SimTime b = SimTime::millis(250);
  EXPECT_EQ((a + b).to_millis(), 750.0);
  EXPECT_EQ((a - b).to_millis(), 250.0);
  EXPECT_EQ((2 * a).to_seconds(), 1.0);
  EXPECT_EQ((a * 4).to_seconds(), 2.0);
}

TEST(SimTimeTest, CompoundAssignment) {
  SimTime t;
  t += SimTime::seconds(1.5);
  t -= SimTime::millis(500);
  EXPECT_EQ(t, SimTime::seconds(1.0));
}

TEST(SimTimeTest, Ordering) {
  EXPECT_LT(SimTime::millis(1), SimTime::millis(2));
  EXPECT_GT(SimTime::seconds(1.0), SimTime::micros(999999));
  EXPECT_LE(SimTime{}, SimTime{});
}

TEST(SimTimeTest, DefaultIsZero) {
  EXPECT_EQ(SimTime{}.ns(), 0);
  EXPECT_EQ(SimTime{}.to_seconds(), 0.0);
}

TEST(SimTimeTest, MaxActsAsNever) {
  EXPECT_GT(SimTime::max(), SimTime::seconds(1e9));
}

TEST(SimTimeTest, ToStringPicksUnit) {
  EXPECT_EQ(SimTime::seconds(1.5).to_string(), "1.500s");
  EXPECT_EQ(SimTime::millis(250).to_string(), "250.000ms");
  EXPECT_EQ(SimTime::micros(10).to_string(), "10.000us");
  EXPECT_EQ(SimTime::nanos(42).to_string(), "42ns");
}

// ---------------------------------------------------------------------------
// StrongId
// ---------------------------------------------------------------------------

TEST(StrongIdTest, EqualityAndOrdering) {
  const Address a{1};
  const Address b{2};
  EXPECT_NE(a, b);
  EXPECT_LT(a, b);
  EXPECT_EQ(Address{1}, a);
}

TEST(StrongIdTest, DistinctTagTypesDoNotMix) {
  // Compile-time property: Address and NodeId are unrelated types.
  static_assert(!std::is_convertible_v<Address, NodeId>);
  static_assert(!std::is_same_v<Address, NodeId>);
}

TEST(StrongIdTest, Hashable) {
  std::set<Address> set;
  std::hash<Address> hasher;
  EXPECT_EQ(hasher(Address{7}), hasher(Address{7}));
  set.insert(Address{1});
  set.insert(Address{1});
  EXPECT_EQ(set.size(), 1u);
}

// ---------------------------------------------------------------------------
// Result
// ---------------------------------------------------------------------------

TEST(ResultTest, HoldsValue) {
  const Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(r.value_or(0), 42);
}

TEST(ResultTest, HoldsError) {
  const Result<int> r = make_error("boom");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.error().message, "boom");
  EXPECT_EQ(r.value_or(-1), -1);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r = std::string("payload");
  const std::string s = std::move(r).value();
  EXPECT_EQ(s, "payload");
}

// ---------------------------------------------------------------------------
// Rng
// ---------------------------------------------------------------------------

TEST(RngTest, DeterministicForSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next(), b.next());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next() == b.next()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(RngTest, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, UniformMeanNearHalf) {
  Rng rng(11);
  double sum = 0.0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / kN, 0.5, 0.01);
}

TEST(RngTest, UniformIntInRangeAndRoughlyUniform) {
  Rng rng(13);
  std::vector<int> buckets(10, 0);
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) {
    const auto v = rng.uniform_int(10);
    ASSERT_LT(v, 10u);
    ++buckets[v];
  }
  for (const int count : buckets) {
    EXPECT_NEAR(count, kN / 10, kN / 100);
  }
}

TEST(RngTest, BernoulliEdgeCases) {
  Rng rng(17);
  EXPECT_FALSE(rng.bernoulli(0.0));
  EXPECT_TRUE(rng.bernoulli(1.0));
  EXPECT_FALSE(rng.bernoulli(-0.5));
  EXPECT_TRUE(rng.bernoulli(1.5));
}

TEST(RngTest, BernoulliRate) {
  Rng rng(19);
  int hits = 0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) {
    if (rng.bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / kN, 0.3, 0.01);
}

TEST(RngTest, ExponentialMean) {
  Rng rng(23);
  double sum = 0.0;
  constexpr int kN = 200000;
  for (int i = 0; i < kN; ++i) sum += rng.exponential(2.0);
  EXPECT_NEAR(sum / kN, 2.0, 0.05);
}

TEST(RngTest, SplitStreamsDecorrelated) {
  Rng parent(31);
  Rng child1 = parent.split(1);
  Rng child2 = parent.split(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (child1.next() == child2.next()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(RngTest, ZeroSeedIsNotDegenerate) {
  Rng rng(0);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 16; ++i) seen.insert(rng.next());
  EXPECT_EQ(seen.size(), 16u);
}

// ---------------------------------------------------------------------------
// OnlineStats
// ---------------------------------------------------------------------------

TEST(OnlineStatsTest, EmptyIsZero) {
  OnlineStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(OnlineStatsTest, KnownSequence) {
  OnlineStats s;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_EQ(s.min(), 2.0);
  EXPECT_EQ(s.max(), 9.0);
  EXPECT_EQ(s.sum(), 40.0);
}

TEST(OnlineStatsTest, SingleSample) {
  OnlineStats s;
  s.add(3.5);
  EXPECT_EQ(s.mean(), 3.5);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.min(), 3.5);
  EXPECT_EQ(s.max(), 3.5);
}

TEST(OnlineStatsTest, ResetClears) {
  OnlineStats s;
  s.add(1.0);
  s.reset();
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
}

// ---------------------------------------------------------------------------
// Histogram
// ---------------------------------------------------------------------------

TEST(HistogramTest, QuantilesOfUniformData) {
  Histogram h(100.0, 100);
  for (int i = 0; i < 100; ++i) h.add(i + 0.5);
  EXPECT_NEAR(h.quantile(0.5), 50.0, 1.5);
  EXPECT_NEAR(h.quantile(0.9), 90.0, 1.5);
  EXPECT_NEAR(h.quantile(0.0), 0.0, 1.5);
}

TEST(HistogramTest, ClampsOutOfRange) {
  Histogram h(10.0, 10);
  h.add(-5.0);
  h.add(100.0);
  EXPECT_EQ(h.count(), 2u);
  EXPECT_LE(h.quantile(1.0), 10.0);
}

TEST(HistogramTest, MeanIsExact) {
  Histogram h(10.0, 10);
  h.add(2.0);
  h.add(4.0);
  EXPECT_DOUBLE_EQ(h.mean(), 3.0);
}

TEST(HistogramTest, EmptyQuantileIsZero) {
  Histogram h(10.0, 10);
  EXPECT_EQ(h.quantile(0.5), 0.0);
  EXPECT_EQ(h.mean(), 0.0);
}

TEST(HistogramTest, ResetClears) {
  Histogram h(10.0, 10);
  h.add(5.0);
  h.reset();
  EXPECT_EQ(h.count(), 0u);
}

// Regression: quantile() used to return the left edge of an *empty* bin
// whenever the cumulative count already met the target there (q=0 with no
// mass in bin 0 being the simplest case), instead of skipping ahead to the
// next populated bin.
TEST(HistogramTest, QuantileSkipsEmptyLeadingBins) {
  Histogram h(100.0, 10);
  h.add(55.0);
  h.add(57.0);
  // All mass lives in [50,60); q=0 must land there, not at 0.0.
  EXPECT_DOUBLE_EQ(h.quantile(0.0), 50.0);
  EXPECT_GE(h.quantile(0.5), 50.0);
  EXPECT_LE(h.quantile(1.0), 60.0);
}

TEST(HistogramTest, QuantileInterpolatesOnlyInPopulatedBins) {
  Histogram h(100.0, 10);
  for (int i = 0; i < 4; ++i) h.add(15.0);  // bin 1
  for (int i = 0; i < 4; ++i) h.add(85.0);  // bin 8
  // Every quantile must fall inside a populated bin's range, never in the
  // empty gap (20,80).
  for (const double q : {0.0, 0.25, 0.5, 0.75, 1.0}) {
    const double value = h.quantile(q);
    const bool in_low = value >= 10.0 && value <= 20.0;
    const bool in_high = value >= 80.0 && value <= 90.0;
    EXPECT_TRUE(in_low || in_high) << "q=" << q << " -> " << value;
  }
  EXPECT_DOUBLE_EQ(h.quantile(0.75), 85.0);  // target 6: 2/4 into bin 8
}

// ---------------------------------------------------------------------------
// WindowedRate
// ---------------------------------------------------------------------------

TEST(WindowedRateTest, RateOverWindow) {
  WindowedRate rate;
  rate.record(100);
  const double r =
      rate.close_window(SimTime::seconds(0.0), SimTime::seconds(2.0));
  EXPECT_DOUBLE_EQ(r, 50.0);
  EXPECT_EQ(rate.raw_count(), 0u);  // window close resets
}

TEST(WindowedRateTest, ZeroWindowYieldsZero) {
  WindowedRate rate;
  rate.record(5);
  EXPECT_EQ(rate.close_window(SimTime::seconds(1.0), SimTime::seconds(1.0)),
            0.0);
}

// ---------------------------------------------------------------------------
// Logging
// ---------------------------------------------------------------------------

TEST(LoggingTest, LevelGate) {
  const LogLevel original = Logger::level();
  Logger::set_level(LogLevel::kWarn);
  EXPECT_FALSE(Logger::enabled(LogLevel::kDebug));
  EXPECT_FALSE(Logger::enabled(LogLevel::kInfo));
  EXPECT_TRUE(Logger::enabled(LogLevel::kWarn));
  EXPECT_TRUE(Logger::enabled(LogLevel::kError));
  Logger::set_level(LogLevel::kOff);
  EXPECT_FALSE(Logger::enabled(LogLevel::kError));
  Logger::set_level(original);
}

TEST(LoggingTest, MacroEvaluatesLazily) {
  const LogLevel original = Logger::level();
  Logger::set_level(LogLevel::kOff);
  int evaluations = 0;
  auto expensive = [&] {
    ++evaluations;
    return "x";
  };
  SVK_LOG(kDebug, expensive());
  EXPECT_EQ(evaluations, 0);  // suppressed levels pay only a branch
  Logger::set_level(original);
}

// ---------------------------------------------------------------------------
// MD5 (RFC 1321 test suite)
// ---------------------------------------------------------------------------

TEST(Md5Test, Rfc1321Vectors) {
  EXPECT_EQ(Md5::hex(""), "d41d8cd98f00b204e9800998ecf8427e");
  EXPECT_EQ(Md5::hex("a"), "0cc175b9c0f1b6a831c399e269772661");
  EXPECT_EQ(Md5::hex("abc"), "900150983cd24fb0d6963f7d28e17f72");
  EXPECT_EQ(Md5::hex("message digest"), "f96b697d7cb7938d525a2f31aaf161d0");
  EXPECT_EQ(Md5::hex("abcdefghijklmnopqrstuvwxyz"),
            "c3fcd3d76192e4007dfb496cca67e13b");
  EXPECT_EQ(
      Md5::hex("ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456"
               "789"),
      "d174ab98d277d9f5a5611c2c9f419d9f");
  EXPECT_EQ(
      Md5::hex("1234567890123456789012345678901234567890123456789012345678"
               "9012345678901234567890"),
      "57edf4a22be3c955ac49da2e2107b67a");
}

TEST(Md5Test, IncrementalMatchesOneShot) {
  Md5 h;
  h.update("mess");
  h.update("age ");
  h.update("digest");
  EXPECT_EQ(to_hex(h.digest()), Md5::hex("message digest"));
}

TEST(Md5Test, BlockBoundaryLengths) {
  // Lengths around the 56/64-byte padding boundaries exercise both padding
  // branches.
  for (const std::size_t len : {55u, 56u, 57u, 63u, 64u, 65u, 128u}) {
    const std::string data(len, 'x');
    Md5 incremental;
    incremental.update(data.substr(0, len / 2));
    incremental.update(data.substr(len / 2));
    EXPECT_EQ(to_hex(incremental.digest()), Md5::hex(data)) << len;
  }
}

// ---------------------------------------------------------------------------
// JsonValue
// ---------------------------------------------------------------------------

TEST(JsonTest, ScalarDump) {
  EXPECT_EQ(JsonValue().dump(), "null");
  EXPECT_EQ(JsonValue(nullptr).dump(), "null");
  EXPECT_EQ(JsonValue(true).dump(), "true");
  EXPECT_EQ(JsonValue(false).dump(), "false");
  EXPECT_EQ(JsonValue(42).dump(), "42");
  EXPECT_EQ(JsonValue(std::int64_t{-7}).dump(), "-7");
  EXPECT_EQ(JsonValue(1.5).dump(), "1.5");
  EXPECT_EQ(JsonValue("hi").dump(), "\"hi\"");
}

TEST(JsonTest, DoublesRoundTripShortest) {
  // to_chars emits the shortest representation that parses back exactly.
  EXPECT_EQ(JsonValue(0.1).dump(), "0.1");
  EXPECT_EQ(JsonValue(10360.0).dump(), "10360");
}

TEST(JsonTest, NonFiniteDoublesBecomeNull) {
  EXPECT_EQ(JsonValue(std::numeric_limits<double>::quiet_NaN()).dump(),
            "null");
  EXPECT_EQ(JsonValue(std::numeric_limits<double>::infinity()).dump(),
            "null");
  EXPECT_EQ(JsonValue(-std::numeric_limits<double>::infinity()).dump(),
            "null");
}

TEST(JsonTest, Uint64AboveInt64MaxSurvives) {
  // Values above int64 max fall back to double rather than wrapping
  // negative.
  const std::uint64_t big = std::numeric_limits<std::uint64_t>::max();
  const std::string text = JsonValue(big).dump();
  EXPECT_EQ(text.find('-'), std::string::npos) << text;
  EXPECT_EQ(JsonValue(std::uint64_t{123}).dump(), "123");
}

TEST(JsonTest, EscapingControlAndQuoteCharacters) {
  EXPECT_EQ(json_escape("a\"b\\c"), "\"a\\\"b\\\\c\"");
  EXPECT_EQ(json_escape("line\nbreak\ttab"), "\"line\\nbreak\\ttab\"");
  EXPECT_EQ(json_escape(std::string_view("\x01", 1)), "\"\\u0001\"");
}

TEST(JsonTest, ObjectKeepsInsertionOrderAndUpdatesInPlace) {
  JsonValue obj = JsonValue::object();
  obj["zeta"] = 1;
  obj["alpha"] = 2;
  obj["zeta"] = 3;  // update must not re-append
  EXPECT_TRUE(obj.is_object());
  EXPECT_EQ(obj.size(), 2u);
  EXPECT_EQ(obj.dump(), "{\"zeta\":3,\"alpha\":2}");
}

TEST(JsonTest, NullPromotesToObjectOrArrayOnFirstUse) {
  JsonValue root = JsonValue::object();
  root["nested"]["inner"] = true;  // null -> object
  root["list"].push_back(1);       // null -> array
  root["list"].push_back("two");
  EXPECT_TRUE(root["nested"].is_object());
  EXPECT_TRUE(root["list"].is_array());
  EXPECT_EQ(root.dump(),
            "{\"nested\":{\"inner\":true},\"list\":[1,\"two\"]}");
}

TEST(JsonTest, ArrayOfBuildsFromContainers) {
  const std::vector<double> xs = {1.0, 2.5};
  EXPECT_EQ(JsonValue::array_of(xs).dump(), "[1,2.5]");
  const std::vector<std::uint64_t> ns = {3, 4};
  EXPECT_EQ(JsonValue::array_of(ns).dump(), "[3,4]");
  EXPECT_EQ(JsonValue::array().dump(), "[]");
}

TEST(JsonTest, PrettyPrintIndents) {
  JsonValue obj = JsonValue::object();
  obj["a"] = 1;
  obj["b"].push_back(2);
  EXPECT_EQ(obj.dump(2), "{\n  \"a\": 1,\n  \"b\": [\n    2\n  ]\n}");
}

TEST(JsonTest, WriteFileRoundTrips) {
  JsonValue obj = JsonValue::object();
  obj["name"] = "svk";
  obj["ok"] = true;
  const std::string path = testing::TempDir() + "svk_json_test.json";
  ASSERT_TRUE(obj.write_file(path, -1));
  std::ifstream in(path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  EXPECT_EQ(buffer.str(), "{\"name\":\"svk\",\"ok\":true}\n");
  std::remove(path.c_str());
}

TEST(JsonTest, WriteFileReportsFailure) {
  EXPECT_FALSE(JsonValue::object().write_file("/nonexistent-dir/x.json"));
}

// ---------------------------------------------------------------------------
// RunRecord
// ---------------------------------------------------------------------------

TEST(RunRecordTest, ToJsonCarriesEveryField) {
  RunRecord record;
  record.label = "stateful";
  record.offered_cps = 900.0;
  record.achieved_cps = 850.0;
  record.attempted_cps = 880.0;
  record.goodput_ratio = 850.0 / 900.0;
  record.setup_ms_mean = 12.0;
  record.setup_ms_p50 = 10.0;
  record.setup_ms_p90 = 20.0;
  record.setup_ms_p99 = 40.0;
  record.retransmissions = 17;
  record.calls_failed = 3;
  record.busy_500 = 2;
  record.node_utilization = {0.9, 0.4};
  record.node_rejected = {2, 0};
  record.wall_seconds = 0.25;

  const std::string text = record.to_json().dump();
  for (const char* fragment :
       {"\"label\":\"stateful\"", "\"offered_cps\":900",
        "\"achieved_cps\":850", "\"attempted_cps\":880",
        "\"setup_ms\":{\"mean\":12,\"p50\":10,\"p90\":20,\"p99\":40}",
        "\"retransmissions\":17", "\"calls_failed\":3", "\"busy_500\":2",
        "\"node_utilization\":[0.9,0.4]", "\"node_rejected\":[2,0]",
        "\"wall_seconds\":0.25"}) {
    EXPECT_NE(text.find(fragment), std::string::npos)
        << fragment << " missing from " << text;
  }
}

TEST(RunRecordTest, EmptyLabelIsOmitted) {
  const std::string text = RunRecord{}.to_json().dump();
  EXPECT_EQ(text.find("\"label\""), std::string::npos) << text;
}

// ---------------------------------------------------------------------------
// ThreadPool
// ---------------------------------------------------------------------------

TEST(ThreadPoolTest, RunsEverySubmittedTask) {
  std::atomic<int> counter{0};
  ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4u);
  for (int i = 0; i < 100; ++i) {
    pool.submit([&counter] { counter.fetch_add(1); });
  }
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, WaitIdleIsReusable) {
  std::atomic<int> counter{0};
  ThreadPool pool(2);
  pool.wait_idle();  // no work yet: must not deadlock
  for (int round = 0; round < 3; ++round) {
    for (int i = 0; i < 10; ++i) {
      pool.submit([&counter] { counter.fetch_add(1); });
    }
    pool.wait_idle();
    EXPECT_EQ(counter.load(), (round + 1) * 10);
  }
}

TEST(ThreadPoolTest, DestructorDrainsRemainingWork) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(1);
    for (int i = 0; i < 50; ++i) {
      pool.submit([&counter] { counter.fetch_add(1); });
    }
  }  // no wait_idle: the destructor must finish the queue before joining
  EXPECT_EQ(counter.load(), 50);
}

TEST(ThreadPoolTest, ZeroRequestsHardwareConcurrency) {
  ThreadPool pool(0);
  EXPECT_GE(pool.size(), 1u);
  EXPECT_EQ(pool.size(), ThreadPool::default_threads());
}

TEST(ParallelForIndexTest, CoversEveryIndexExactlyOnce) {
  constexpr std::size_t kCount = 64;
  std::vector<std::atomic<int>> hits(kCount);
  parallel_for_index(4, kCount,
                     [&hits](std::size_t i) { hits[i].fetch_add(1); });
  for (std::size_t i = 0; i < kCount; ++i) {
    EXPECT_EQ(hits[i].load(), 1) << i;
  }
}

TEST(ParallelForIndexTest, SingleThreadRunsInlineInOrder) {
  std::vector<std::size_t> order;
  parallel_for_index(1, 5, [&order](std::size_t i) { order.push_back(i); });
  EXPECT_EQ(order, (std::vector<std::size_t>{0, 1, 2, 3, 4}));
}

TEST(ParallelForIndexTest, ZeroCountIsNoop) {
  parallel_for_index(4, 0, [](std::size_t) { FAIL() << "must not run"; });
}

// ---------------------------------------------------------------------------
// SmallVector
// ---------------------------------------------------------------------------

TEST(SmallVectorTest, StaysInlineUpToCapacityThenSpills) {
  SmallVector<std::string, 2> v;
  EXPECT_TRUE(v.empty());
  EXPECT_TRUE(v.inlined());
  v.push_back("one");
  v.push_back("two");
  EXPECT_TRUE(v.inlined());
  v.push_back("three");  // spill to heap
  EXPECT_FALSE(v.inlined());
  ASSERT_EQ(v.size(), 3u);
  EXPECT_EQ(v[0], "one");
  EXPECT_EQ(v[1], "two");
  EXPECT_EQ(v[2], "three");
  EXPECT_EQ(v.front(), "one");
  EXPECT_EQ(v.back(), "three");
}

TEST(SmallVectorTest, InsertEraseAndEquality) {
  SmallVector<int, 2> v;
  v.push_back(1);
  v.push_back(3);
  v.insert(v.begin() + 1, 2);  // forces a spill and a shift
  ASSERT_EQ(v.size(), 3u);
  EXPECT_EQ(v[0], 1);
  EXPECT_EQ(v[1], 2);
  EXPECT_EQ(v[2], 3);
  v.erase(v.begin());
  EXPECT_EQ(v[0], 2);
  v.pop_back();
  ASSERT_EQ(v.size(), 1u);

  SmallVector<int, 2> w;
  w.push_back(2);
  EXPECT_EQ(v, w);
  w.push_back(9);
  EXPECT_FALSE(v == w);
}

TEST(SmallVectorTest, CopyAndMoveAcrossInlineAndHeapStates) {
  SmallVector<std::string, 2> heap;
  for (int i = 0; i < 5; ++i) heap.push_back("s" + std::to_string(i));

  SmallVector<std::string, 2> copied(heap);
  EXPECT_EQ(copied, heap);

  SmallVector<std::string, 2> moved(std::move(copied));
  ASSERT_EQ(moved.size(), 5u);
  EXPECT_EQ(moved[4], "s4");
  EXPECT_TRUE(copied.empty());  // NOLINT(bugprone-use-after-move)

  SmallVector<std::string, 2> inline_src;
  inline_src.push_back("only");
  SmallVector<std::string, 2> inline_dst(std::move(inline_src));
  ASSERT_EQ(inline_dst.size(), 1u);
  EXPECT_EQ(inline_dst[0], "only");
  EXPECT_TRUE(inline_dst.inlined());

  moved = inline_dst;  // heap state assigned a small value
  ASSERT_EQ(moved.size(), 1u);
  EXPECT_EQ(moved[0], "only");
}

TEST(SmallVectorTest, AssignFromReverseIterators) {
  std::vector<int> src{1, 2, 3, 4};
  SmallVector<int, 2> v;
  v.assign(src.rbegin(), src.rend());
  ASSERT_EQ(v.size(), 4u);
  EXPECT_EQ(v[0], 4);
  EXPECT_EQ(v[3], 1);
  // rbegin/rend on the SmallVector itself.
  EXPECT_EQ(*v.rbegin(), 1);
  EXPECT_EQ(*(v.rend() - 1), 4);
  v.clear();
  EXPECT_TRUE(v.empty());
}

}  // namespace
}  // namespace svk
