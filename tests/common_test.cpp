// Unit tests for the common support library: SimTime, StrongId, Result,
// Rng, statistics and MD5.
#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

#include "common/logging.hpp"
#include "common/md5.hpp"
#include "common/result.hpp"
#include "common/rng.hpp"
#include "common/sim_time.hpp"
#include "common/stats.hpp"
#include "common/types.hpp"

namespace svk {
namespace {

// ---------------------------------------------------------------------------
// SimTime
// ---------------------------------------------------------------------------

TEST(SimTimeTest, ConstructorsAgree) {
  EXPECT_EQ(SimTime::millis(1), SimTime::micros(1000));
  EXPECT_EQ(SimTime::micros(1), SimTime::nanos(1000));
  EXPECT_EQ(SimTime::seconds(1.0), SimTime::millis(1000));
}

TEST(SimTimeTest, Arithmetic) {
  const SimTime a = SimTime::millis(500);
  const SimTime b = SimTime::millis(250);
  EXPECT_EQ((a + b).to_millis(), 750.0);
  EXPECT_EQ((a - b).to_millis(), 250.0);
  EXPECT_EQ((2 * a).to_seconds(), 1.0);
  EXPECT_EQ((a * 4).to_seconds(), 2.0);
}

TEST(SimTimeTest, CompoundAssignment) {
  SimTime t;
  t += SimTime::seconds(1.5);
  t -= SimTime::millis(500);
  EXPECT_EQ(t, SimTime::seconds(1.0));
}

TEST(SimTimeTest, Ordering) {
  EXPECT_LT(SimTime::millis(1), SimTime::millis(2));
  EXPECT_GT(SimTime::seconds(1.0), SimTime::micros(999999));
  EXPECT_LE(SimTime{}, SimTime{});
}

TEST(SimTimeTest, DefaultIsZero) {
  EXPECT_EQ(SimTime{}.ns(), 0);
  EXPECT_EQ(SimTime{}.to_seconds(), 0.0);
}

TEST(SimTimeTest, MaxActsAsNever) {
  EXPECT_GT(SimTime::max(), SimTime::seconds(1e9));
}

TEST(SimTimeTest, ToStringPicksUnit) {
  EXPECT_EQ(SimTime::seconds(1.5).to_string(), "1.500s");
  EXPECT_EQ(SimTime::millis(250).to_string(), "250.000ms");
  EXPECT_EQ(SimTime::micros(10).to_string(), "10.000us");
  EXPECT_EQ(SimTime::nanos(42).to_string(), "42ns");
}

// ---------------------------------------------------------------------------
// StrongId
// ---------------------------------------------------------------------------

TEST(StrongIdTest, EqualityAndOrdering) {
  const Address a{1};
  const Address b{2};
  EXPECT_NE(a, b);
  EXPECT_LT(a, b);
  EXPECT_EQ(Address{1}, a);
}

TEST(StrongIdTest, DistinctTagTypesDoNotMix) {
  // Compile-time property: Address and NodeId are unrelated types.
  static_assert(!std::is_convertible_v<Address, NodeId>);
  static_assert(!std::is_same_v<Address, NodeId>);
}

TEST(StrongIdTest, Hashable) {
  std::set<Address> set;
  std::hash<Address> hasher;
  EXPECT_EQ(hasher(Address{7}), hasher(Address{7}));
  set.insert(Address{1});
  set.insert(Address{1});
  EXPECT_EQ(set.size(), 1u);
}

// ---------------------------------------------------------------------------
// Result
// ---------------------------------------------------------------------------

TEST(ResultTest, HoldsValue) {
  const Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(r.value_or(0), 42);
}

TEST(ResultTest, HoldsError) {
  const Result<int> r = make_error("boom");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.error().message, "boom");
  EXPECT_EQ(r.value_or(-1), -1);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r = std::string("payload");
  const std::string s = std::move(r).value();
  EXPECT_EQ(s, "payload");
}

// ---------------------------------------------------------------------------
// Rng
// ---------------------------------------------------------------------------

TEST(RngTest, DeterministicForSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next(), b.next());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next() == b.next()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(RngTest, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, UniformMeanNearHalf) {
  Rng rng(11);
  double sum = 0.0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / kN, 0.5, 0.01);
}

TEST(RngTest, UniformIntInRangeAndRoughlyUniform) {
  Rng rng(13);
  std::vector<int> buckets(10, 0);
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) {
    const auto v = rng.uniform_int(10);
    ASSERT_LT(v, 10u);
    ++buckets[v];
  }
  for (const int count : buckets) {
    EXPECT_NEAR(count, kN / 10, kN / 100);
  }
}

TEST(RngTest, BernoulliEdgeCases) {
  Rng rng(17);
  EXPECT_FALSE(rng.bernoulli(0.0));
  EXPECT_TRUE(rng.bernoulli(1.0));
  EXPECT_FALSE(rng.bernoulli(-0.5));
  EXPECT_TRUE(rng.bernoulli(1.5));
}

TEST(RngTest, BernoulliRate) {
  Rng rng(19);
  int hits = 0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) {
    if (rng.bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / kN, 0.3, 0.01);
}

TEST(RngTest, ExponentialMean) {
  Rng rng(23);
  double sum = 0.0;
  constexpr int kN = 200000;
  for (int i = 0; i < kN; ++i) sum += rng.exponential(2.0);
  EXPECT_NEAR(sum / kN, 2.0, 0.05);
}

TEST(RngTest, SplitStreamsDecorrelated) {
  Rng parent(31);
  Rng child1 = parent.split(1);
  Rng child2 = parent.split(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (child1.next() == child2.next()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(RngTest, ZeroSeedIsNotDegenerate) {
  Rng rng(0);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 16; ++i) seen.insert(rng.next());
  EXPECT_EQ(seen.size(), 16u);
}

// ---------------------------------------------------------------------------
// OnlineStats
// ---------------------------------------------------------------------------

TEST(OnlineStatsTest, EmptyIsZero) {
  OnlineStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(OnlineStatsTest, KnownSequence) {
  OnlineStats s;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_EQ(s.min(), 2.0);
  EXPECT_EQ(s.max(), 9.0);
  EXPECT_EQ(s.sum(), 40.0);
}

TEST(OnlineStatsTest, SingleSample) {
  OnlineStats s;
  s.add(3.5);
  EXPECT_EQ(s.mean(), 3.5);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.min(), 3.5);
  EXPECT_EQ(s.max(), 3.5);
}

TEST(OnlineStatsTest, ResetClears) {
  OnlineStats s;
  s.add(1.0);
  s.reset();
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
}

// ---------------------------------------------------------------------------
// Histogram
// ---------------------------------------------------------------------------

TEST(HistogramTest, QuantilesOfUniformData) {
  Histogram h(100.0, 100);
  for (int i = 0; i < 100; ++i) h.add(i + 0.5);
  EXPECT_NEAR(h.quantile(0.5), 50.0, 1.5);
  EXPECT_NEAR(h.quantile(0.9), 90.0, 1.5);
  EXPECT_NEAR(h.quantile(0.0), 0.0, 1.5);
}

TEST(HistogramTest, ClampsOutOfRange) {
  Histogram h(10.0, 10);
  h.add(-5.0);
  h.add(100.0);
  EXPECT_EQ(h.count(), 2u);
  EXPECT_LE(h.quantile(1.0), 10.0);
}

TEST(HistogramTest, MeanIsExact) {
  Histogram h(10.0, 10);
  h.add(2.0);
  h.add(4.0);
  EXPECT_DOUBLE_EQ(h.mean(), 3.0);
}

TEST(HistogramTest, EmptyQuantileIsZero) {
  Histogram h(10.0, 10);
  EXPECT_EQ(h.quantile(0.5), 0.0);
  EXPECT_EQ(h.mean(), 0.0);
}

TEST(HistogramTest, ResetClears) {
  Histogram h(10.0, 10);
  h.add(5.0);
  h.reset();
  EXPECT_EQ(h.count(), 0u);
}

// ---------------------------------------------------------------------------
// WindowedRate
// ---------------------------------------------------------------------------

TEST(WindowedRateTest, RateOverWindow) {
  WindowedRate rate;
  rate.record(100);
  const double r =
      rate.close_window(SimTime::seconds(0.0), SimTime::seconds(2.0));
  EXPECT_DOUBLE_EQ(r, 50.0);
  EXPECT_EQ(rate.raw_count(), 0u);  // window close resets
}

TEST(WindowedRateTest, ZeroWindowYieldsZero) {
  WindowedRate rate;
  rate.record(5);
  EXPECT_EQ(rate.close_window(SimTime::seconds(1.0), SimTime::seconds(1.0)),
            0.0);
}

// ---------------------------------------------------------------------------
// Logging
// ---------------------------------------------------------------------------

TEST(LoggingTest, LevelGate) {
  const LogLevel original = Logger::level();
  Logger::set_level(LogLevel::kWarn);
  EXPECT_FALSE(Logger::enabled(LogLevel::kDebug));
  EXPECT_FALSE(Logger::enabled(LogLevel::kInfo));
  EXPECT_TRUE(Logger::enabled(LogLevel::kWarn));
  EXPECT_TRUE(Logger::enabled(LogLevel::kError));
  Logger::set_level(LogLevel::kOff);
  EXPECT_FALSE(Logger::enabled(LogLevel::kError));
  Logger::set_level(original);
}

TEST(LoggingTest, MacroEvaluatesLazily) {
  const LogLevel original = Logger::level();
  Logger::set_level(LogLevel::kOff);
  int evaluations = 0;
  auto expensive = [&] {
    ++evaluations;
    return "x";
  };
  SVK_LOG(kDebug, expensive());
  EXPECT_EQ(evaluations, 0);  // suppressed levels pay only a branch
  Logger::set_level(original);
}

// ---------------------------------------------------------------------------
// MD5 (RFC 1321 test suite)
// ---------------------------------------------------------------------------

TEST(Md5Test, Rfc1321Vectors) {
  EXPECT_EQ(Md5::hex(""), "d41d8cd98f00b204e9800998ecf8427e");
  EXPECT_EQ(Md5::hex("a"), "0cc175b9c0f1b6a831c399e269772661");
  EXPECT_EQ(Md5::hex("abc"), "900150983cd24fb0d6963f7d28e17f72");
  EXPECT_EQ(Md5::hex("message digest"), "f96b697d7cb7938d525a2f31aaf161d0");
  EXPECT_EQ(Md5::hex("abcdefghijklmnopqrstuvwxyz"),
            "c3fcd3d76192e4007dfb496cca67e13b");
  EXPECT_EQ(
      Md5::hex("ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456"
               "789"),
      "d174ab98d277d9f5a5611c2c9f419d9f");
  EXPECT_EQ(
      Md5::hex("1234567890123456789012345678901234567890123456789012345678"
               "9012345678901234567890"),
      "57edf4a22be3c955ac49da2e2107b67a");
}

TEST(Md5Test, IncrementalMatchesOneShot) {
  Md5 h;
  h.update("mess");
  h.update("age ");
  h.update("digest");
  EXPECT_EQ(to_hex(h.digest()), Md5::hex("message digest"));
}

TEST(Md5Test, BlockBoundaryLengths) {
  // Lengths around the 56/64-byte padding boundaries exercise both padding
  // branches.
  for (const std::size_t len : {55u, 56u, 57u, 63u, 64u, 65u, 128u}) {
    const std::string data(len, 'x');
    Md5 incremental;
    incremental.update(data.substr(0, len / 2));
    incremental.update(data.substr(len / 2));
    EXPECT_EQ(to_hex(incremental.digest()), Md5::hex(data)) << len;
  }
}

}  // namespace
}  // namespace svk
