// Conformance suite (ctest -L conformance): the RFC 3261 oracle and
// run-invariant checker running in lockstep with full topologies.
//
//   * clean runs   — the paper's two-series shapes (Figure 5) and the fork
//                    pass a full load + drain cycle with zero violations;
//   * bit-identity — a checked measurement produces the exact RunRecord
//                    JSON of an unchecked one (checking is read-only);
//   * mutation smoke — reintroducing the historical Max-Forwards
//                    check-after-decrement bug via the debug hook makes the
//                    checker fire wire.premature_483, proving the oracle
//                    actually bites;
//   * end-to-end MF — with the fix, a request entering a 2-chain with
//                    Max-Forwards 2 still completes (the last hop forwards
//                    it carrying 0);
//   * dialog drain — dialog-stateful proxies hold zero dialogs after load
//                    stops and SIP timers drain.
#include <gtest/gtest.h>

#include <string>

#include "check/run_checker.hpp"
#include "workload/runner.hpp"
#include "workload/scenarios.hpp"

namespace svk::workload {
namespace {

constexpr double kScale = 0.01;  // 1/100-scale nodes, as integration_test

ScenarioOptions scaled(PolicyKind policy) {
  ScenarioOptions options;
  options.policy = policy;
  options.capacity_scale = {kScale, kScale, kScale, kScale};
  options.controller_period = SimTime::seconds(0.5);
  return options;
}

/// Runs a factory-built bed under load, stops, drains every SIP timer
/// (client D / server H and J linger 32 s), finishes the checker and
/// asserts it saw real traffic and recorded nothing.
void expect_clean_checked_run(const BedFactory& factory, double offered,
                              double load_seconds,
                              check::CheckOptions check_options = {}) {
  auto bed = factory(offered);
  check::RunChecker& checker = bed->enable_checking(check_options);
  bed->start_load();
  bed->sim().run_until(SimTime::seconds(load_seconds));
  bed->stop_load();
  bed->sim().run_until(SimTime::seconds(load_seconds + 40.0));
  checker.finish();

  EXPECT_GT(checker.oracle().events_checked(), 0u);
  EXPECT_GT(checker.wire().datagrams_seen(), 0u);
  EXPECT_TRUE(checker.log().empty()) << checker.log().summary();
}

// ---------------------------------------------------------------------------
// Clean runs: oracle + invariants over the paper's topologies
// ---------------------------------------------------------------------------

TEST(ConformanceTest, TwoSeriesServartukaIsClean) {
  // Figure 5's shape at an offered load that forces state delegation, so
  // both the stateful and stateless proxy paths are exercised.
  expect_clean_checked_run(
      series_chain(2, scaled(PolicyKind::kServartuka)), 110.0, 6.0);
}

TEST(ConformanceTest, TwoSeriesWithInternalTrafficIsClean) {
  expect_clean_checked_run(
      two_series_with_internal(0.7, scaled(PolicyKind::kServartuka)), 110.0,
      6.0);
}

TEST(ConformanceTest, ParallelForkIsClean) {
  expect_clean_checked_run(parallel_fork(scaled(PolicyKind::kServartuka)),
                           110.0, 6.0);
}

TEST(ConformanceTest, StaticChainUnderOverloadIsClean) {
  // Above single-node stateful saturation: 500s, retransmissions and
  // timeouts all flow past the oracle and must still be RFC-clean. The
  // all-stateful baseline duplicates state at every hop *by design*
  // (that's the paper's degraded static configuration), so the
  // exactly-one-stateful run invariant doesn't apply to it.
  check::CheckOptions check_options;
  check_options.expect_single_stateful = false;
  expect_clean_checked_run(
      series_chain(2, scaled(PolicyKind::kStaticAllStateful)), 130.0, 6.0,
      check_options);
}

TEST(ConformanceTest, DialogStatefulChainDrainsToZeroDialogs) {
  auto options = scaled(PolicyKind::kStaticChainFirstStateful);
  options.stateful_mode = profile::HandlingMode::kDialogStateful;
  const BedFactory factory = series_chain(2, options);

  auto bed = factory(60.0);
  check::RunChecker& checker = bed->enable_checking();
  bed->start_load();
  bed->sim().run_until(SimTime::seconds(6.0));
  bed->stop_load();
  bed->sim().run_until(SimTime::seconds(46.0));
  checker.finish();

  EXPECT_TRUE(checker.log().empty()) << checker.log().summary();
  for (const auto& proxy : bed->proxies()) {
    EXPECT_EQ(proxy->dialogs().active_count(), 0u) << proxy->config().host;
    EXPECT_GT(proxy->dialogs().created_count() +
                  proxy->stats().forwarded_stateless,
              0u);
  }
}

// ---------------------------------------------------------------------------
// Bit-identity: checking must never perturb the simulation
// ---------------------------------------------------------------------------

TEST(ConformanceTest, CheckedRunDigestMatchesUnchecked) {
  const BedFactory factory = series_chain(2, scaled(PolicyKind::kServartuka));
  MeasureOptions plain;
  MeasureOptions checked = plain;
  checked.check = true;

  const PointResult a = measure_point(factory, 110.0, plain);
  const PointResult b = measure_point(factory, 110.0, checked);
  EXPECT_EQ(b.check_violations, 0u);

  RunRecord ra = to_run_record(a, 1.0, "conformance");
  RunRecord rb = to_run_record(b, 1.0, "conformance");
  ra.wall_seconds = 0.0;  // host noise, not simulation output
  rb.wall_seconds = 0.0;
  EXPECT_EQ(ra.to_json().dump(), rb.to_json().dump());
}

// ---------------------------------------------------------------------------
// Max-Forwards end-to-end + mutation smoke
// ---------------------------------------------------------------------------

TEST(ConformanceTest, MaxForwardsTwoTraversesTwoChain) {
  // Entry proxy sees MF 2, exit proxy sees MF 1 and must still forward
  // (carrying 0). With the historical check-after-decrement the exit
  // rejected every call 483 — this run doubles as the regression test.
  auto options = scaled(PolicyKind::kStaticChainFirstStateful);
  options.uac_max_forwards = 2;
  const BedFactory factory = series_chain(2, options);

  auto bed = factory(50.0);
  check::RunChecker& checker = bed->enable_checking();
  bed->start_load();
  bed->sim().run_until(SimTime::seconds(4.0));
  bed->stop_load();
  bed->sim().run_until(SimTime::seconds(44.0));
  checker.finish();

  EXPECT_TRUE(checker.log().empty()) << checker.log().summary();
  EXPECT_GT(bed->total_completed_calls(), 0u);
  for (const auto& proxy : bed->proxies()) {
    EXPECT_EQ(proxy->stats().rejected_483, 0u) << proxy->config().host;
  }
}

TEST(ConformanceTest, MutationSmokeCatchesPredecrementBug) {
  // Same topology and load, with the off-by-one deliberately reintroduced
  // on every proxy. The checker must catch the premature 483s — if this
  // test fails, the oracle has gone blind and green checker runs mean
  // nothing.
  auto options = scaled(PolicyKind::kStaticChainFirstStateful);
  options.uac_max_forwards = 2;
  options.debug_predecrement_max_forwards = true;
  const BedFactory factory = series_chain(2, options);

  auto bed = factory(50.0);
  check::RunChecker& checker = bed->enable_checking();
  bed->start_load();
  bed->sim().run_until(SimTime::seconds(4.0));
  bed->stop_load();
  bed->sim().run_until(SimTime::seconds(44.0));
  checker.finish();

  EXPECT_FALSE(checker.log().empty());
  bool saw_premature_483 = false;
  for (const auto& violation : checker.log().entries()) {
    if (violation.kind == "wire.premature_483") saw_premature_483 = true;
  }
  EXPECT_TRUE(saw_premature_483) << checker.log().summary();
}

}  // namespace
}  // namespace svk::workload
