// Unit tests for the SERvartuka controller (Algorithms 1 & 2): decision
// logic, myshare computation against the closed-form operating point,
// overload signalling and recovery.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "core/controller.hpp"
#include "obs/audit.hpp"
#include "obs/sinks.hpp"

namespace svk::core {
namespace {

using proxy::PathInfo;
using proxy::RequestContext;
using proxy::StateDecision;

/// Request-rate thresholds chosen for easy arithmetic:
/// alpha = 1/100, beta = 1/200, 1/(alpha-beta) = 200.
ControllerConfig small_config() {
  ControllerConfig config;
  config.t_sf = 100.0;
  config.t_sl = 200.0;
  config.period = SimTime::seconds(1.0);
  // Unit tests check the paper's arithmetic exactly: no headroom.
  config.target_utilization = 1.0;
  return config;
}

RequestContext ctx(std::size_t path, bool delegable, bool already_stateful) {
  RequestContext c;
  c.path_index = path;
  c.delegable = delegable;
  c.already_stateful = already_stateful;
  return c;
}

/// Drives `controller` through one full measurement window: a priming tick,
/// `n_new` not-yet-stateful and `n_fasf` already-stateful requests on path
/// 0, then the closing tick. Returns decisions made during the window.
struct WindowOutcome {
  int stateful = 0;
  int stateless = 0;
};

WindowOutcome run_window(Controller& controller, int n_new, int n_fasf,
                         bool delegable, double t0 = 0.0) {
  controller.on_tick(SimTime::seconds(t0));  // open window
  WindowOutcome out;
  for (int i = 0; i < n_fasf; ++i) {
    (void)controller.decide(ctx(0, delegable, true));
    ++out.stateless;
  }
  for (int i = 0; i < n_new; ++i) {
    if (controller.decide(ctx(0, delegable, false)) ==
        StateDecision::kStateful) {
      ++out.stateful;
    } else {
      ++out.stateless;
    }
  }
  controller.on_tick(SimTime::seconds(t0 + 1.0));  // close window
  return out;
}

TEST(ControllerConfigTest, FromCallRatesDoubles) {
  const auto config = ControllerConfig::from_call_rates(10360.0, 12300.0);
  EXPECT_DOUBLE_EQ(config.t_sf, 20720.0);
  EXPECT_DOUBLE_EQ(config.t_sl, 24600.0);
}

TEST(ControllerTest, NameAndTickPeriod) {
  Controller controller(small_config());
  EXPECT_EQ(controller.name(), "servartuka");
  EXPECT_EQ(controller.tick_period(), SimTime::seconds(1.0));
  EXPECT_FALSE(controller.static_decision().has_value());
}

TEST(ControllerTest, RegisterPathsCopiesDelegability) {
  Controller controller(small_config());
  controller.register_paths({PathInfo{true, Address{1}},
                             PathInfo{false, Address{}}});
  ASSERT_EQ(controller.paths().size(), 2u);
  EXPECT_TRUE(controller.paths()[0].delegable);
  EXPECT_FALSE(controller.paths()[1].delegable);
}

TEST(ControllerTest, AlreadyStatefulAlwaysForwardedStateless) {
  Controller controller(small_config());
  controller.register_paths({PathInfo{true, Address{1}}});
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(controller.decide(ctx(0, true, true)),
              StateDecision::kStateless);
  }
}

TEST(ControllerTest, ExitPathAlwaysStateful) {
  Controller controller(small_config());
  controller.register_paths({PathInfo{false, Address{}}});
  // Even a huge count never goes stateless on an exit path.
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(controller.decide(ctx(0, false, false)),
              StateDecision::kStateful);
  }
}

TEST(ControllerTest, BelowThresholdKeepsEverythingStateful) {
  Controller controller(small_config());
  controller.register_paths({PathInfo{true, Address{1}}});
  // 80 < t_sf = 100: Eq. 8 case 1.
  const WindowOutcome w1 = run_window(controller, 80, 0, true);
  EXPECT_EQ(w1.stateful, 80);
  // Next window keeps unconstrained myshare.
  const WindowOutcome w2 = run_window(controller, 90, 0, true, 1.0);
  EXPECT_EQ(w2.stateful, 90);
  EXPECT_FALSE(controller.self_overloaded());
}

TEST(ControllerTest, AboveThresholdRelinquishesToBudget) {
  Controller controller(small_config());
  controller.register_paths({PathInfo{true, Address{1}}});
  // Window 1 at 150 req/s (> t_sf): closing tick computes
  // budget = (1 - 150/200) / (1/100 - 1/200) = 50.
  run_window(controller, 150, 0, true);
  EXPECT_NEAR(controller.last_total_rate(), 150.0, 1e-9);
  EXPECT_NEAR(controller.last_budget_rate(), 50.0, 1e-9);
  EXPECT_NEAR(controller.paths()[0].myshare, 50.0, 1e-6);

  // Window 2 at the same load: ~50 of 150 handled statefully.
  const WindowOutcome w2 = run_window(controller, 150, 0, true, 1.0);
  EXPECT_NEAR(w2.stateful, 50, 2);
  EXPECT_NEAR(w2.stateless, 100, 2);
}

TEST(ControllerTest, MyshareMatchesClosedFormWithFasfTraffic) {
  Controller controller(small_config());
  controller.register_paths({PathInfo{true, Address{1}}});
  // 100 new + 60 already-stateful = 160 total (> t_sf). Single delegable
  // path: share = c - beta*rate/(alpha-beta) with c = 1/(alpha-beta) = 200:
  // share = 200 - (160/200)*200 = 40.
  run_window(controller, 100, 60, true);
  EXPECT_NEAR(controller.paths()[0].myshare, 40.0, 1e-6);
}

TEST(ControllerTest, TwoDelegablePathsShareBudget) {
  Controller controller(small_config());
  controller.register_paths(
      {PathInfo{true, Address{1}}, PathInfo{true, Address{2}}});
  controller.on_tick(SimTime::seconds(0.0));
  // 90 requests on path 0, 60 on path 1: total 150 > 100.
  for (int i = 0; i < 90; ++i) (void)controller.decide(ctx(0, true, false));
  for (int i = 0; i < 60; ++i) (void)controller.decide(ctx(1, true, false));
  controller.on_tick(SimTime::seconds(1.0));
  // c = 200, k = 2: share_q = 100 - beta*rate_q/(alpha-beta).
  EXPECT_NEAR(controller.paths()[0].myshare, 100.0 - 90.0, 1e-6);
  EXPECT_NEAR(controller.paths()[1].myshare, 100.0 - 60.0, 1e-6);
  // Aggregate equals the budget: (1 - 150/200)/0.005 = 50.
  EXPECT_NEAR(controller.paths()[0].myshare + controller.paths()[1].myshare,
              controller.last_budget_rate(), 1e-6);
}

TEST(ControllerTest, OverloadedPathForcedShare) {
  Controller controller(small_config());
  controller.register_paths({PathInfo{true, Address{1}}});
  controller.on_overload_signal(0, true, 30.0);
  EXPECT_TRUE(controller.paths()[0].overloaded);
  // 150 req/s with downstream frozen at 30: this node must keep
  // 150 - 30 = 120 statefully (its myshare), though that exceeds budget 50.
  run_window(controller, 150, 0, true);
  EXPECT_NEAR(controller.paths()[0].myshare, 120.0, 1e-6);
  EXPECT_TRUE(controller.self_overloaded());
}

TEST(ControllerTest, OverloadSignalCarriesSubtreeCapacity) {
  Controller controller(small_config());
  controller.register_paths({PathInfo{true, Address{1}}});
  bool sent = false;
  bool sent_on = false;
  double sent_rate = 0.0;
  controller.send_overload = [&](bool on, double rate) {
    sent = true;
    sent_on = on;
    sent_rate = rate;
  };
  controller.on_overload_signal(0, true, 30.0);
  run_window(controller, 150, 0, true);
  ASSERT_TRUE(sent);
  EXPECT_TRUE(sent_on);
  // Own budget (50) + frozen downstream (30).
  EXPECT_NEAR(sent_rate, 80.0, 1e-6);
}

TEST(ControllerTest, OverloadSignalSentOnceWithoutReadvertisement) {
  ControllerConfig config = small_config();
  config.readvertise_period_windows = 0;  // periodic refresh disabled
  Controller controller(config);
  controller.register_paths({PathInfo{false, Address{}}});
  int signals = 0;
  controller.send_overload = [&](bool, double) { ++signals; };
  run_window(controller, 150, 0, false);
  run_window(controller, 150, 0, false, 1.0);
  run_window(controller, 150, 0, false, 2.0);
  EXPECT_EQ(signals, 1);
}

TEST(ControllerTest, SustainedOverloadReadvertisesPeriodically) {
  // Overload advertisements ride unacknowledged OPTIONS; periodic refresh
  // is what lets an upstream that missed the "on" converge anyway.
  ControllerConfig config = small_config();
  config.readvertise_period_windows = 2;
  Controller controller(config);
  controller.register_paths({PathInfo{false, Address{}}});
  int on_signals = 0;
  controller.send_overload = [&](bool on, double) {
    if (on) ++on_signals;
  };
  for (int w = 0; w < 7; ++w) {
    run_window(controller, 150, 0, false, static_cast<double>(w));
  }
  // Initial advertisement in window 1, refreshes every 2nd window after.
  EXPECT_EQ(on_signals, 4);
}

TEST(ControllerTest, ExitNodeOverloadsWhenRequiredExceedsBudget) {
  Controller controller(small_config());
  controller.register_paths({PathInfo{false, Address{}}});
  bool overload_sent = false;
  controller.send_overload = [&](bool on, double) { overload_sent = on; };
  // 150 req/s all needing state here; budget is 50 -> overload.
  run_window(controller, 150, 0, false);
  EXPECT_TRUE(controller.self_overloaded());
  EXPECT_TRUE(overload_sent);
}

TEST(ControllerTest, ExitNodeWithEnoughFasfStaysHealthy) {
  Controller controller(small_config());
  controller.register_paths({PathInfo{false, Address{}}});
  // 150 req/s but 110 already stateful: required = 40 < budget 50.
  run_window(controller, 40, 110, false);
  EXPECT_FALSE(controller.self_overloaded());
}

TEST(ControllerTest, RecoveryClearsOverloadWithHysteresis) {
  Controller controller(small_config());
  controller.register_paths({PathInfo{false, Address{}}});
  int on_signals = 0;
  int off_signals = 0;
  controller.send_overload = [&](bool on, double) {
    (on ? on_signals : off_signals)++;
  };
  run_window(controller, 150, 0, false);
  EXPECT_TRUE(controller.self_overloaded());
  // Load drops below t_sf: clears immediately via Eq. 8 case 1.
  run_window(controller, 80, 0, false, 1.0);
  EXPECT_FALSE(controller.self_overloaded());
  EXPECT_EQ(on_signals, 1);
  EXPECT_EQ(off_signals, 1);
}

TEST(ControllerTest, RecoveryAboveTsfViaFasfReduction) {
  Controller controller(small_config());
  controller.register_paths({PathInfo{false, Address{}}});
  int off_signals = 0;
  controller.send_overload = [&](bool on, double) {
    if (!on) ++off_signals;
  };
  run_window(controller, 150, 0, false);
  EXPECT_TRUE(controller.self_overloaded());
  // Still 150 total, but now 120 arrive already-stateful: required = 30 <
  // 0.85 * budget(50) -> recovery even above t_sf.
  run_window(controller, 30, 120, false, 1.0);
  EXPECT_FALSE(controller.self_overloaded());
  EXPECT_EQ(off_signals, 1);
}

TEST(ControllerTest, OverloadClearResetsFrozenAllowance) {
  Controller controller(small_config());
  controller.register_paths({PathInfo{true, Address{1}}});
  controller.on_overload_signal(0, true, 30.0);
  EXPECT_NEAR(controller.paths()[0].frozen_c_asf, 30.0, 1e-12);
  controller.on_overload_signal(0, false, 0.0);
  EXPECT_FALSE(controller.paths()[0].overloaded);
  EXPECT_EQ(controller.paths()[0].frozen_c_asf, 0.0);
}

TEST(ControllerTest, UnknownPathGrowsDefensively) {
  Controller controller(small_config());
  controller.register_paths({PathInfo{true, Address{1}}});
  // A request on a path index the table never announced.
  EXPECT_EQ(controller.decide(ctx(5, true, false)), StateDecision::kStateful);
  EXPECT_GE(controller.paths().size(), 6u);
}

TEST(ControllerTest, WindowCountersResetEachTick) {
  Controller controller(small_config());
  controller.register_paths({PathInfo{true, Address{1}}});
  run_window(controller, 150, 0, true);
  EXPECT_EQ(controller.paths()[0].msg_count, 0u);
  EXPECT_EQ(controller.paths()[0].sf_count, 0u);
  EXPECT_EQ(controller.paths()[0].fasf_count, 0u);
}

TEST(ControllerTest, MixedExitAndDelegablePaths) {
  Controller controller(small_config());
  controller.register_paths(
      {PathInfo{false, Address{}}, PathInfo{true, Address{2}}});
  controller.on_tick(SimTime::seconds(0.0));
  // 40 exit (all stateful, mandatory) + 110 delegable = 150 total.
  for (int i = 0; i < 40; ++i) {
    EXPECT_EQ(controller.decide(ctx(0, false, false)),
              StateDecision::kStateful);
  }
  for (int i = 0; i < 110; ++i) (void)controller.decide(ctx(1, true, false));
  controller.on_tick(SimTime::seconds(1.0));
  // c = 200 - alpha*40/(alpha-beta) = 200 - 0.4*200 = 120.
  // share(path1) = 120 - beta*110/(alpha-beta) = 120 - 110 = 10.
  // Sanity: budget 50 = mandatory exit 40 + delegable share 10.
  EXPECT_NEAR(controller.paths()[1].myshare, 10.0, 1e-6);
  EXPECT_TRUE(std::isinf(controller.paths()[0].myshare));
  EXPECT_FALSE(controller.self_overloaded());
}

TEST(ControllerTest, ShareIsSpreadEvenlyAcrossTheWindow) {
  // The error-diffusion realization must interleave stateful decisions
  // rather than front-loading them: in any prefix of the window the
  // realized count stays within one of the ideal fraction.
  Controller controller(small_config());
  controller.register_paths({PathInfo{true, Address{1}}});
  run_window(controller, 150, 0, true);  // learn: share 50 of 150
  controller.on_tick(SimTime::seconds(1.0));

  int stateful_so_far = 0;
  for (int i = 1; i <= 150; ++i) {
    if (controller.decide(ctx(0, true, false)) ==
        StateDecision::kStateful) {
      ++stateful_so_far;
    }
    const double ideal = i * (50.0 / 150.0);
    EXPECT_NEAR(stateful_so_far, ideal, 1.001) << "prefix " << i;
  }
}

TEST(ControllerTest, SmoothingFiltersRateNoise) {
  ControllerConfig config = small_config();
  config.share_smoothing_gain = 0.4;
  Controller controller(config);
  controller.register_paths({PathInfo{true, Address{1}}});
  // Converge at 150 req/s (share 50)...
  run_window(controller, 150, 0, true);
  run_window(controller, 150, 0, true, 1.0);
  EXPECT_NEAR(controller.paths()[0].myshare, 50.0, 1.0);
  // ...then one noisy window at 130 (raw share would jump to 70): the
  // smoothed share must move only ~gain of the way.
  run_window(controller, 130, 0, true, 2.0);
  EXPECT_NEAR(controller.paths()[0].myshare, 50.0 + 0.4 * 20.0, 1.0);
}

TEST(ControllerTest, SmoothingResetsBelowThreshold) {
  ControllerConfig config = small_config();
  config.share_smoothing_gain = 0.4;
  Controller controller(config);
  controller.register_paths({PathInfo{true, Address{1}}});
  run_window(controller, 150, 0, true);      // share 50
  run_window(controller, 80, 0, true, 1.0);  // below t_sf: unconstrained
  EXPECT_TRUE(std::isinf(controller.paths()[0].myshare));
  // Back above threshold: the stale EWMA state must not leak through.
  run_window(controller, 150, 0, true, 2.0);
  EXPECT_NEAR(controller.paths()[0].myshare, 50.0, 1.0);
}

TEST(ControllerTest, UtilizationFeedbackBacksOffWhenHot) {
  ControllerConfig config = small_config();
  config.utilization_feedback = true;
  config.target_utilization = 0.95;  // small_config pins it to 1.0
  Controller controller(config);
  controller.register_paths({PathInfo{true, Address{1}}});
  EXPECT_DOUBLE_EQ(controller.share_correction(), 1.0);
  // Report a hot CPU each window: the correction must decrease.
  for (int w = 0; w < 5; ++w) {
    controller.observed_utilization = 1.0;
    run_window(controller, 150, 0, true, static_cast<double>(w));
  }
  EXPECT_LT(controller.share_correction(), 0.7);
  const double low_point = controller.share_correction();
  // Cool CPU: slow additive recovery.
  for (int w = 5; w < 10; ++w) {
    controller.observed_utilization = 0.5;
    run_window(controller, 150, 0, true, static_cast<double>(w));
  }
  EXPECT_GT(controller.share_correction(), low_point);
}

TEST(ControllerTest, UtilizationFeedbackRespondsToBacklog) {
  ControllerConfig config = small_config();
  Controller controller(config);
  controller.register_paths({PathInfo{true, Address{1}}});
  controller.observed_utilization = 0.5;       // CPU looks fine...
  controller.observed_backlog_fraction = 0.9;  // ...but the queue is deep
  run_window(controller, 150, 0, true);
  run_window(controller, 150, 0, true, 1.0);
  EXPECT_LT(controller.share_correction(), 1.0);
}

TEST(ControllerTest, FeedbackDisabledLeavesCorrectionAtOne) {
  ControllerConfig config = small_config();
  config.utilization_feedback = false;
  Controller controller(config);
  controller.register_paths({PathInfo{true, Address{1}}});
  controller.observed_utilization = 1.0;
  controller.observed_backlog_fraction = 1.0;
  run_window(controller, 150, 0, true);
  run_window(controller, 150, 0, true, 1.0);
  EXPECT_DOUBLE_EQ(controller.share_correction(), 1.0);
}

TEST(ControllerTest, TargetUtilizationScalesBudget) {
  ControllerConfig config = small_config();
  config.target_utilization = 0.9;
  Controller controller(config);
  controller.register_paths({PathInfo{true, Address{1}}});
  // budget = (0.9 - 150/200) / 0.005 = 30 (vs 50 at u=1).
  run_window(controller, 150, 0, true);
  EXPECT_NEAR(controller.last_budget_rate(), 30.0, 1e-9);
  EXPECT_NEAR(controller.paths()[0].myshare, 30.0, 1e-6);
}

TEST(ControllerTest, CorrectionRelaxesWhileBelowThreshold) {
  // Regression: the closed-loop correction used to be frozen in the
  // below-T_SF branch, so a node that backed off during a hot episode
  // re-entered case 2 with the stale multiplier and under-took state
  // indefinitely. High -> low -> high load must restore the full share.
  ControllerConfig config = small_config();
  config.target_utilization = 0.95;
  Controller controller(config);
  controller.register_paths({PathInfo{true, Address{1}}});
  // Hot episode above T_SF: multiplicative back-off.
  for (int w = 0; w < 6; ++w) {
    controller.observed_utilization = 1.0;
    run_window(controller, 150, 0, true, static_cast<double>(w));
  }
  ASSERT_LT(controller.share_correction(), 0.7);
  // Quiet episode below T_SF: the correction must relax back to 1.
  controller.observed_utilization = 0.2;
  controller.observed_backlog_fraction = 0.0;
  for (int w = 6; w < 14; ++w) {
    run_window(controller, 80, 0, true, static_cast<double>(w));
  }
  EXPECT_DOUBLE_EQ(controller.share_correction(), 1.0);
  // Back above T_SF with a cool CPU: the very first case-2 window already
  // computes the full share. u = 0.95 => c = 190, share = 190 - 150 = 40.
  run_window(controller, 150, 0, true, 14.0);
  EXPECT_NEAR(controller.paths()[0].myshare, 40.0, 1e-6);
}

TEST(ControllerTest, OutOfOrderPathDiscoveryKeepsDelegability) {
  // Regression: a stray request on a high unknown index grew the table,
  // creating filler entries whose delegable=false default was permanent —
  // a delegable path first contacted at a lower index afterwards was
  // misclassified as an exit path forever.
  Controller controller(small_config());
  controller.register_paths({PathInfo{true, Address{1}}});
  (void)controller.decide(ctx(5, true, false));  // grows table to 6 entries
  ASSERT_EQ(controller.paths().size(), 6u);
  (void)controller.decide(ctx(2, true, false));  // first contact on filler
  EXPECT_TRUE(controller.paths()[2].delegable);
  EXPECT_TRUE(controller.paths()[5].delegable);

  // Behavioral check: above T_SF the window computation must treat path 2
  // as delegable — finite share, no forced all-stateful handling. (As a
  // filler exit path it would get an infinite myshare and its whole load,
  // 150 > budget 50, would be unavoidable: self-overload.)
  controller.on_tick(SimTime::seconds(0.0));
  for (int i = 0; i < 150; ++i) (void)controller.decide(ctx(2, true, false));
  controller.on_tick(SimTime::seconds(1.0));
  EXPECT_TRUE(std::isfinite(controller.paths()[2].myshare));
  EXPECT_FALSE(controller.self_overloaded());
}

TEST(ControllerTest, OverloadSignalOnUnknownPathMarksDelegable) {
  // Overload signals come from downstream proxies, so a signal on a path
  // we have never routed to still identifies a delegable path.
  Controller controller(small_config());
  controller.register_paths({PathInfo{true, Address{1}}});
  controller.on_overload_signal(3, true, 25.0);
  ASSERT_EQ(controller.paths().size(), 4u);
  EXPECT_TRUE(controller.paths()[3].delegable);
  EXPECT_TRUE(controller.paths()[3].overloaded);
  EXPECT_NEAR(controller.paths()[3].frozen_c_asf, 25.0, 1e-12);
}

TEST(ControllerTest, JitteredTickUsesMeasuredElapsed) {
  // Regression: rates were measured over the real elapsed time but myshare
  // was sized with the configured period, so a late tick under-sized the
  // per-window stateful allowance (and its 1.5x admission guard).
  Controller controller(small_config());
  controller.register_paths({PathInfo{true, Address{1}}});
  controller.on_tick(SimTime::seconds(0.0));
  for (int i = 0; i < 300; ++i) (void)controller.decide(ctx(0, true, false));
  controller.on_tick(SimTime::seconds(2.0));  // tick arrived a period late
  // Rate 150/s over the measured 2s window; share rate = 50/s; the window
  // count must be sized for the window actually seen: 100, not 50.
  EXPECT_NEAR(controller.last_total_rate(), 150.0, 1e-9);
  EXPECT_NEAR(controller.paths()[0].myshare, 100.0, 1e-6);
  // Same jittered cadence again: ~1/3 of requests go stateful, and the
  // window-count guard (1.5 x myshare) must not clip the realized share.
  int stateful = 0;
  for (int i = 0; i < 300; ++i) {
    if (controller.decide(ctx(0, true, false)) == StateDecision::kStateful) {
      ++stateful;
    }
  }
  controller.on_tick(SimTime::seconds(4.0));
  EXPECT_NEAR(stateful, 100, 3);
}

TEST(ControllerTest, AuditLogRecordsOverloadLifecycle) {
  // Freeze -> upstream c_ASF recompute -> hysteresis recovery, asserted
  // against the audit log of both nodes in a two-controller chain.
  obs::ControllerAuditLog log;
  obs::Sinks sinks;
  sinks.audit = &log;

  Controller downstream(small_config());
  downstream.register_paths({PathInfo{false, Address{}}});
  downstream.obs = &sinks;
  downstream.obs_tid = 2;

  Controller upstream(small_config());
  upstream.register_paths({PathInfo{true, Address{2}}});
  upstream.obs = &sinks;
  upstream.obs_tid = 1;
  // Wire the chain: downstream's overload signal reaches upstream's path 0.
  downstream.send_overload = [&](bool on, double rate) {
    upstream.on_overload_signal(0, on, rate);
  };

  // Window 1: downstream (exit node) takes 150 req/s, budget 50 -> freeze.
  run_window(downstream, 150, 0, false);
  ASSERT_TRUE(downstream.self_overloaded());
  ASSERT_TRUE(upstream.paths()[0].overloaded);
  {
    const auto windows = log.windows_for(2);
    ASSERT_EQ(windows.size(), 1u);
    EXPECT_TRUE(windows[0].self_overloaded);
    EXPECT_TRUE(windows[0].overload_changed);
    EXPECT_FALSE(windows[0].below_t_sf);
    EXPECT_NEAR(windows[0].total_rate, 150.0, 1e-9);
    EXPECT_NEAR(windows[0].budget_rate, 50.0, 1e-9);
    ASSERT_EQ(windows[0].paths.size(), 1u);
    EXPECT_EQ(windows[0].paths[0].msg_count, 150u);
    EXPECT_EQ(windows[0].paths[0].sf_count, 150u);
  }

  // Window 2: upstream at 150 req/s against the frozen allowance (50):
  // forced share = 150 - 50 = 100, recorded with the frozen c_ASF.
  run_window(upstream, 150, 0, true);
  {
    const auto windows = log.windows_for(1);
    ASSERT_EQ(windows.size(), 1u);
    ASSERT_EQ(windows[0].paths.size(), 1u);
    EXPECT_TRUE(windows[0].paths[0].overloaded);
    EXPECT_NEAR(windows[0].paths[0].frozen_c_asf, 50.0, 1e-9);
    EXPECT_NEAR(windows[0].paths[0].myshare, 100.0, 1e-6);
  }

  // Window 3: downstream load falls but stays above the T_SF case-1 exit;
  // required 30 < 0.85 * budget -> hysteresis recovery, signalled upstream.
  run_window(downstream, 30, 120, false, 1.0);
  EXPECT_FALSE(downstream.self_overloaded());
  EXPECT_FALSE(upstream.paths()[0].overloaded);
  {
    const auto windows = log.windows_for(2);
    ASSERT_EQ(windows.size(), 2u);
    EXPECT_FALSE(windows[1].self_overloaded);
    EXPECT_TRUE(windows[1].overload_changed);
  }
}

TEST(ControllerTest, NegativeShareClampsToZero) {
  Controller controller(small_config());
  controller.register_paths(
      {PathInfo{false, Address{}}, PathInfo{true, Address{2}}});
  controller.on_tick(SimTime::seconds(0.0));
  // Exit flow alone exceeds the budget: delegable share must clamp to 0.
  for (int i = 0; i < 80; ++i) (void)controller.decide(ctx(0, false, false));
  for (int i = 0; i < 80; ++i) (void)controller.decide(ctx(1, true, false));
  controller.on_tick(SimTime::seconds(1.0));
  EXPECT_EQ(controller.paths()[1].myshare, 0.0);
}

// ---------------------------------------------------------------------------
// Lost-signal tolerance (re-advertisement, staleness timeout, probing)
// ---------------------------------------------------------------------------

/// No-loss reference: single delegable path at 150 req/s against
/// small_config converges to myshare = budget = 50.
constexpr double kNoLossFixpointShare = 50.0;

TEST(ControllerRecoveryTest, WedgeRegressionLostOffSignalWithoutTimeout) {
  // The pre-fix behavior, pinned as a regression oracle: with staleness
  // release and probing disabled, a lost "off" leaves frozen_c_asf stuck
  // and the forced share never reconverges.
  ControllerConfig config = small_config();
  config.overload_stale_windows = 0;
  config.probe_after_windows = 0;
  Controller controller(config);
  controller.register_paths({PathInfo{true, Address{1}}});
  controller.on_overload_signal(0, true, 30.0);
  // The downstream recovered and sent "off" — but the signal was lost.
  for (int w = 0; w < 20; ++w) {
    run_window(controller, 150, 0, true, static_cast<double>(w));
  }
  EXPECT_TRUE(controller.paths()[0].overloaded);
  EXPECT_NEAR(controller.paths()[0].frozen_c_asf, 30.0, 1e-12);
  // Wedged: forced share 150 - 30 = 120, not the no-loss fixpoint 50.
  EXPECT_NEAR(controller.paths()[0].myshare, 120.0, 1e-6);
}

TEST(ControllerRecoveryTest, StaleFrozenPathReleasesWithinTimeout) {
  // Same lost "off", defaults on: the staleness timeout releases the
  // frozen allowance and myshare reconverges to the no-loss fixpoint.
  ControllerConfig config = small_config();
  config.overload_stale_windows = 6;
  config.probe_after_windows = 0;  // isolate the timeout path
  Controller controller(config);
  controller.register_paths({PathInfo{true, Address{1}}});
  controller.on_overload_signal(0, true, 30.0);
  for (int w = 0; w < 12; ++w) {
    run_window(controller, 150, 0, true, static_cast<double>(w));
  }
  EXPECT_FALSE(controller.paths()[0].overloaded);
  EXPECT_EQ(controller.paths()[0].frozen_c_asf, 0.0);
  EXPECT_EQ(controller.stale_releases(), 1u);
  EXPECT_NEAR(controller.paths()[0].myshare, kNoLossFixpointShare, 1.0);
}

TEST(ControllerRecoveryTest, SignalRefreshKeepsFrozenPathAlive) {
  // A downstream that keeps re-advertising is never reaped: freshness is
  // reset by every signal, including unchanged refreshes.
  ControllerConfig config = small_config();
  config.overload_stale_windows = 3;
  Controller controller(config);
  controller.register_paths({PathInfo{true, Address{1}}});
  controller.on_overload_signal(0, true, 30.0);
  for (int w = 0; w < 10; ++w) {
    run_window(controller, 150, 0, true, static_cast<double>(w));
    controller.on_overload_signal(0, true, 30.0);  // periodic refresh
  }
  EXPECT_TRUE(controller.paths()[0].overloaded);
  EXPECT_EQ(controller.stale_releases(), 0u);
}

TEST(ControllerRecoveryTest, ProbesSilentPathWithExponentialBackoff) {
  ControllerConfig config = small_config();
  config.probe_after_windows = 3;
  config.overload_stale_windows = 0;  // probe forever, never reap
  Controller controller(config);
  controller.register_paths({PathInfo{true, Address{1}}});
  std::vector<int> probe_windows;
  int window = 0;
  controller.send_probe = [&](std::size_t path_index) {
    EXPECT_EQ(path_index, 0u);
    probe_windows.push_back(window);
  };
  controller.on_overload_signal(0, true, 30.0);
  for (; window < 16; ++window) {
    run_window(controller, 150, 0, true, static_cast<double>(window));
  }
  // First probe once the signal is probe_after_windows old, then gaps
  // growing 2, 3, 5, ... (probe + backoff wait).
  ASSERT_GE(probe_windows.size(), 3u);
  EXPECT_EQ(controller.probes_requested(), probe_windows.size());
  for (std::size_t i = 2; i < probe_windows.size(); ++i) {
    EXPECT_GE(probe_windows[i] - probe_windows[i - 1],
              probe_windows[i - 1] - probe_windows[i - 2])
        << "backoff must not shrink";
  }
}

TEST(ControllerRecoveryTest, ProbeReplyRepairsLostOffSignal) {
  // The probe reply restates the downstream's true status ("off"), so the
  // path unfreezes well before the staleness timeout.
  ControllerConfig config = small_config();
  config.probe_after_windows = 2;
  config.overload_stale_windows = 10;
  Controller controller(config);
  controller.register_paths({PathInfo{true, Address{1}}});
  controller.send_probe = [&](std::size_t path_index) {
    // Downstream is healthy; its reply arrives as a normal "off" signal.
    controller.on_overload_signal(path_index, false, 0.0);
  };
  controller.on_overload_signal(0, true, 30.0);
  int w = 0;
  for (; w < 10 && controller.paths()[0].overloaded; ++w) {
    run_window(controller, 150, 0, true, static_cast<double>(w));
  }
  EXPECT_FALSE(controller.paths()[0].overloaded);
  EXPECT_LT(w, 5) << "probe must repair the path before the stale timeout";
  EXPECT_EQ(controller.stale_releases(), 0u);
  // Give the EWMA a few windows, then require the no-loss fixpoint.
  for (; w < 16; ++w) {
    run_window(controller, 150, 0, true, static_cast<double>(w));
  }
  EXPECT_NEAR(controller.paths()[0].myshare, kNoLossFixpointShare, 1.0);
}

TEST(ControllerRecoveryTest, DuplicatedAndDelayedSignalsConverge) {
  // Duplicate deliveries are idempotent and a late (re-ordered) "on"
  // arriving after the "off" is repaired by the probe/staleness machinery:
  // the controller still converges to the no-loss fixpoint.
  ControllerConfig config = small_config();
  config.probe_after_windows = 2;
  config.overload_stale_windows = 6;
  Controller controller(config);
  controller.register_paths({PathInfo{true, Address{1}}});
  controller.send_probe = [&](std::size_t path_index) {
    controller.on_overload_signal(path_index, false, 0.0);
  };
  controller.on_overload_signal(0, true, 30.0);
  controller.on_overload_signal(0, true, 30.0);  // duplicate "on"
  controller.on_overload_signal(0, false, 0.0);
  controller.on_overload_signal(0, false, 0.0);  // duplicate "off"
  controller.on_overload_signal(0, true, 30.0);  // delayed stale "on"
  for (int w = 0; w < 16; ++w) {
    run_window(controller, 150, 0, true, static_cast<double>(w));
  }
  EXPECT_FALSE(controller.paths()[0].overloaded);
  EXPECT_EQ(controller.paths()[0].frozen_c_asf, 0.0);
  EXPECT_NEAR(controller.paths()[0].myshare, kNoLossFixpointShare, 1.0);
}

TEST(ControllerRecoveryTest, ReadvertisementRepairsLostOnUpstream) {
  // Two-controller chain with a lossy control link: the first "on" is
  // dropped, the periodic re-advertisement gets through, and the upstream
  // converges to the same frozen state as with a lossless link.
  ControllerConfig config = small_config();
  config.readvertise_period_windows = 2;
  Controller downstream(config);
  downstream.register_paths({PathInfo{false, Address{}}});
  Controller upstream(config);
  upstream.register_paths({PathInfo{true, Address{2}}});
  int deliveries = 0;
  downstream.send_overload = [&](bool on, double rate) {
    if (++deliveries == 1) return;  // the initial "on" is lost
    upstream.on_overload_signal(0, on, rate);
  };
  for (int w = 0; w < 4; ++w) {
    run_window(downstream, 150, 0, false, static_cast<double>(w));
  }
  ASSERT_TRUE(downstream.self_overloaded());
  ASSERT_GE(deliveries, 2);
  EXPECT_TRUE(upstream.paths()[0].overloaded);
  EXPECT_NEAR(upstream.paths()[0].frozen_c_asf, 50.0, 1e-6);
}

}  // namespace
}  // namespace svk::core
