// Unit tests for the dialog layer: identifiers, lifecycle, in-dialog
// matching from either direction.
#include <gtest/gtest.h>

#include "dialog/dialog.hpp"
#include "sip/message.hpp"

namespace svk::dialog {
namespace {

using sip::CSeq;
using sip::Message;
using sip::Method;
using sip::NameAddr;
using sip::Uri;

Message make_invite(const std::string& call_id = "call-1",
                    const std::string& from_tag = "tag-a") {
  Message msg = Message::request(
      Method::kInvite, Uri("bob", "example.com"),
      NameAddr{"", Uri("alice", "client.com"), from_tag},
      NameAddr{"", Uri("bob", "example.com"), ""}, call_id,
      CSeq{1, Method::kInvite});
  msg.push_via(sip::Via{"SIP/2.0/UDP", "client.com", "z9hG4bK-1"});
  return msg;
}

Message make_200(const Message& invite, const std::string& to_tag) {
  Message resp = Message::response(invite, 200);
  resp.to().tag = to_tag;
  return resp;
}

Message make_bye(const std::string& call_id, const std::string& from_tag,
                 const std::string& to_tag) {
  Message msg = Message::request(
      Method::kBye, Uri("bob", "uas.example.com"),
      NameAddr{"", Uri("alice", "client.com"), from_tag},
      NameAddr{"", Uri("bob", "example.com"), to_tag}, call_id,
      CSeq{2, Method::kBye});
  msg.push_via(sip::Via{"SIP/2.0/UDP", "client.com", "z9hG4bK-2"});
  return msg;
}

TEST(DialogIdTest, NormalizesTagOrder) {
  const DialogId a = DialogId::make("c1", "x", "y");
  const DialogId b = DialogId::make("c1", "y", "x");
  EXPECT_EQ(a, b);
  DialogIdHash hash;
  EXPECT_EQ(hash(a), hash(b));
}

TEST(DialogIdTest, DistinctCallsDistinctIds) {
  EXPECT_FALSE(DialogId::make("c1", "x", "y") == DialogId::make("c2", "x", "y"));
  EXPECT_FALSE(DialogId::make("c1", "x", "y") == DialogId::make("c1", "x", "z"));
}

TEST(DialogManagerTest, CreateEarlyThenConfirm) {
  DialogManager manager;
  const Message invite = make_invite();
  Dialog& early = manager.create_early(invite, SimTime::seconds(1.0));
  EXPECT_EQ(early.state, DialogState::kEarly);
  EXPECT_EQ(manager.active_count(), 1u);
  EXPECT_EQ(manager.created_count(), 1u);

  Dialog* confirmed = manager.confirm(make_200(invite, "tag-b"));
  ASSERT_NE(confirmed, nullptr);
  EXPECT_EQ(confirmed->state, DialogState::kConfirmed);
  EXPECT_EQ(manager.active_count(), 1u);  // re-keyed, not duplicated
}

TEST(DialogManagerTest, CreateEarlyIsIdempotentForRetransmits) {
  DialogManager manager;
  const Message invite = make_invite();
  manager.create_early(invite, SimTime{});
  manager.create_early(invite, SimTime{});
  EXPECT_EQ(manager.active_count(), 1u);
  EXPECT_EQ(manager.created_count(), 1u);
}

TEST(DialogManagerTest, ConfirmOfRetransmitted200FindsConfirmed) {
  DialogManager manager;
  const Message invite = make_invite();
  manager.create_early(invite, SimTime{});
  const Message ok = make_200(invite, "tag-b");
  Dialog* first = manager.confirm(ok);
  Dialog* second = manager.confirm(ok);
  ASSERT_NE(first, nullptr);
  EXPECT_EQ(first, second);
}

TEST(DialogManagerTest, ConfirmWithoutEarlyReturnsNull) {
  DialogManager manager;
  const Message invite = make_invite();
  EXPECT_EQ(manager.confirm(make_200(invite, "tag-b")), nullptr);
}

TEST(DialogManagerTest, MatchesByeFromCaller) {
  DialogManager manager;
  const Message invite = make_invite();
  manager.create_early(invite, SimTime{});
  manager.confirm(make_200(invite, "tag-b"));

  Dialog* matched = manager.match(make_bye("call-1", "tag-a", "tag-b"));
  ASSERT_NE(matched, nullptr);
  EXPECT_EQ(matched->transactions_seen, 2u);
}

TEST(DialogManagerTest, MatchesByeFromCallee) {
  DialogManager manager;
  const Message invite = make_invite();
  manager.create_early(invite, SimTime{});
  manager.confirm(make_200(invite, "tag-b"));

  // Callee-initiated BYE has the tags swapped.
  Dialog* matched = manager.match(make_bye("call-1", "tag-b", "tag-a"));
  EXPECT_NE(matched, nullptr);
}

TEST(DialogManagerTest, NoMatchWithoutToTag) {
  DialogManager manager;
  const Message invite = make_invite();
  manager.create_early(invite, SimTime{});
  EXPECT_EQ(manager.match(invite), nullptr);  // To tag empty: not in-dialog
}

TEST(DialogManagerTest, NoMatchForUnknownDialog) {
  DialogManager manager;
  EXPECT_EQ(manager.match(make_bye("other", "x", "y")), nullptr);
}

TEST(DialogManagerTest, TerminateRemoves) {
  DialogManager manager;
  const Message invite = make_invite();
  manager.create_early(invite, SimTime{});
  Dialog* confirmed = manager.confirm(make_200(invite, "tag-b"));
  ASSERT_NE(confirmed, nullptr);
  manager.terminate(confirmed->id);
  EXPECT_EQ(manager.active_count(), 0u);
  EXPECT_EQ(manager.match(make_bye("call-1", "tag-a", "tag-b")), nullptr);
}

TEST(DialogManagerTest, ConcurrentDialogsIndependent) {
  DialogManager manager;
  for (int i = 0; i < 10; ++i) {
    const Message invite =
        make_invite("call-" + std::to_string(i), "tag-" + std::to_string(i));
    manager.create_early(invite, SimTime{});
    manager.confirm(make_200(invite, "uas-" + std::to_string(i)));
  }
  EXPECT_EQ(manager.active_count(), 10u);
  EXPECT_NE(manager.match(make_bye("call-3", "tag-3", "uas-3")), nullptr);
  manager.terminate(DialogId::make("call-3", "tag-3", "uas-3"));
  EXPECT_EQ(manager.active_count(), 9u);
}

TEST(DialogManagerTest, AbandonEarlyRemovesOnFinalFailure) {
  // A final non-2xx ends dialog setup: the early dialog must go away (the
  // historical leak kept it until process end).
  DialogManager manager;
  const Message invite = make_invite();
  manager.create_early(invite, SimTime{});
  Message busy = Message::response(invite, 486);

  EXPECT_TRUE(manager.abandon_early(busy));
  EXPECT_EQ(manager.active_count(), 0u);
  EXPECT_EQ(manager.abandoned_count(), 1u);
  // Idempotent for the retransmitted final.
  EXPECT_FALSE(manager.abandon_early(busy));
  EXPECT_EQ(manager.abandoned_count(), 1u);
}

TEST(DialogManagerTest, AbandonEarlyLeavesConfirmedAlone) {
  DialogManager manager;
  const Message invite = make_invite();
  manager.create_early(invite, SimTime{});
  manager.confirm(make_200(invite, "tag-b"));

  // A late failure response for the same call (e.g. a losing fork branch)
  // must not tear down the confirmed dialog.
  EXPECT_FALSE(manager.abandon_early(Message::response(invite, 486)));
  EXPECT_EQ(manager.active_count(), 1u);
}

TEST(DialogManagerTest, ExpireEarlyReapsOnlyStaleEarlyDialogs) {
  DialogManager manager;
  // d0: early, created at t=0 -> stale at t=10 with ttl 5.
  const Message stale = make_invite("call-stale", "tag-s");
  manager.create_early(stale, SimTime{});
  // d1: early but fresh (created at t=8).
  const Message fresh = make_invite("call-fresh", "tag-f");
  manager.create_early(fresh, SimTime::seconds(8.0));
  // d2: confirmed long ago — confirmed dialogs never expire (calls may
  // legitimately outlast any setup TTL).
  const Message old_call = make_invite("call-old", "tag-o");
  manager.create_early(old_call, SimTime{});
  manager.confirm(make_200(old_call, "tag-b"));

  EXPECT_EQ(manager.expire_early(SimTime::seconds(10.0),
                                 SimTime::seconds(5.0)),
            1u);
  EXPECT_EQ(manager.active_count(), 2u);
  EXPECT_EQ(manager.expired_count(), 1u);
  // The stale early dialog is gone; fresh + confirmed remain.
  EXPECT_NE(manager.match(make_bye("call-old", "tag-o", "tag-b")), nullptr);
}

}  // namespace
}  // namespace svk::dialog
