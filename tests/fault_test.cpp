// Unit tests for the fault-injection subsystem: FaultPlan JSON round-trips
// and validation, and FaultInjector execution against the network fault
// overlay (apply/revert timing, partitions, CPU hooks, error recording).
#include <gtest/gtest.h>

#include <optional>
#include <string>
#include <vector>

#include "common/json.hpp"
#include "fault/fault_plan.hpp"
#include "fault/injector.hpp"
#include "sim/network.hpp"
#include "sim/simulator.hpp"

namespace svk::fault {
namespace {

// ---------------------------------------------------------------------------
// FaultPlan JSON
// ---------------------------------------------------------------------------

FaultPlan sample_plan() {
  FaultPlan plan;
  plan.name = "sample";
  plan.seed = 42;

  FaultEvent crash;
  crash.kind = FaultKind::kNodeCrash;
  crash.at = SimTime::seconds(1.0);
  crash.duration = SimTime::seconds(2.5);
  crash.host = "proxy1.example.net";
  plan.events.push_back(crash);

  FaultEvent link;
  link.kind = FaultKind::kLinkDown;
  link.at = SimTime::seconds(3.0);
  link.host = "proxy0.example.net";
  link.peer = "proxy1.example.net";
  link.bidirectional = false;
  plan.events.push_back(link);

  FaultEvent partition;
  partition.kind = FaultKind::kPartition;
  partition.at = SimTime::seconds(4.0);
  partition.duration = SimTime::seconds(1.0);
  partition.group = {"proxy1.example.net", "uas0.callee.example.net"};
  plan.events.push_back(partition);

  FaultEvent loss;
  loss.kind = FaultKind::kLossBurst;
  loss.at = SimTime::seconds(5.0);
  loss.duration = SimTime::seconds(2.0);
  loss.value = 0.25;
  plan.events.push_back(loss);

  FaultEvent latency;
  latency.kind = FaultKind::kLatencyBurst;
  latency.at = SimTime::seconds(6.0);
  latency.duration = SimTime::seconds(1.0);
  latency.host = "proxy0.example.net";
  latency.peer = "proxy1.example.net";
  latency.extra_latency = SimTime::millis(30);
  plan.events.push_back(latency);

  FaultEvent degrade;
  degrade.kind = FaultKind::kCpuDegrade;
  degrade.at = SimTime::seconds(7.0);
  degrade.duration = SimTime::seconds(3.0);
  degrade.host = "proxy1.example.net";
  degrade.value = 0.5;
  plan.events.push_back(degrade);

  return plan;
}

TEST(FaultPlanTest, JsonRoundTripPreservesEveryField) {
  const FaultPlan plan = sample_plan();
  std::string error;
  const auto parsed = FaultPlan::from_json(plan.to_json(), &error);
  ASSERT_TRUE(parsed.has_value()) << error;

  EXPECT_EQ(parsed->name, plan.name);
  EXPECT_EQ(parsed->seed, plan.seed);
  ASSERT_EQ(parsed->events.size(), plan.events.size());
  for (std::size_t i = 0; i < plan.events.size(); ++i) {
    const FaultEvent& want = plan.events[i];
    const FaultEvent& got = parsed->events[i];
    EXPECT_EQ(got.kind, want.kind) << "event " << i;
    EXPECT_EQ(got.at, want.at) << "event " << i;
    EXPECT_EQ(got.duration, want.duration) << "event " << i;
    EXPECT_EQ(got.host, want.host) << "event " << i;
    EXPECT_EQ(got.peer, want.peer) << "event " << i;
    EXPECT_EQ(got.group, want.group) << "event " << i;
    EXPECT_DOUBLE_EQ(got.value, want.value) << "event " << i;
    EXPECT_EQ(got.extra_latency, want.extra_latency) << "event " << i;
    EXPECT_EQ(got.bidirectional, want.bidirectional) << "event " << i;
  }
}

TEST(FaultPlanTest, TextRoundTripThroughParser) {
  const FaultPlan plan = sample_plan();
  const std::string text = plan.to_json().dump(2);
  std::string error;
  const auto json = JsonValue::parse(text, &error);
  ASSERT_TRUE(json.has_value()) << error;
  const auto parsed = FaultPlan::from_json(*json, &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  // Serializing the reparsed plan must reproduce the text bit-for-bit —
  // that is what makes chaos replay artifacts trustworthy.
  EXPECT_EQ(parsed->to_json().dump(2), text);
}

TEST(FaultPlanTest, FileRoundTrip) {
  const FaultPlan plan = sample_plan();
  const std::string path = testing::TempDir() + "/fault_plan_roundtrip.json";
  ASSERT_TRUE(plan.write_file(path));
  std::string error;
  const auto loaded = FaultPlan::load_file(path, &error);
  ASSERT_TRUE(loaded.has_value()) << error;
  EXPECT_EQ(loaded->events.size(), plan.events.size());
  EXPECT_EQ(loaded->to_json().dump(), plan.to_json().dump());
}

TEST(FaultPlanTest, LoadFileReportsMissingFile) {
  std::string error;
  EXPECT_FALSE(
      FaultPlan::load_file("/nonexistent/fault_plan.json", &error));
  EXPECT_FALSE(error.empty());
}

TEST(FaultPlanTest, RejectsPlanWithoutEventsArray) {
  std::string error;
  EXPECT_FALSE(FaultPlan::from_json(*JsonValue::parse("{}"), &error));
  EXPECT_NE(error.find("events"), std::string::npos);
  EXPECT_FALSE(FaultPlan::from_json(*JsonValue::parse("[]"), &error));
}

TEST(FaultPlanTest, RejectsUnknownKind) {
  const auto json = JsonValue::parse(
      R"({"events": [{"kind": "meteor_strike", "at_s": 1}]})");
  std::string error;
  EXPECT_FALSE(FaultPlan::from_json(*json, &error));
  EXPECT_NE(error.find("meteor_strike"), std::string::npos);
}

TEST(FaultPlanTest, RejectsEventWithoutTime) {
  const auto json = JsonValue::parse(
      R"({"events": [{"kind": "node_crash", "host": "a"}]})");
  std::string error;
  EXPECT_FALSE(FaultPlan::from_json(*json, &error));
  EXPECT_NE(error.find("at_s"), std::string::npos);
}

TEST(FaultPlanTest, RejectsCrashWithoutHost) {
  const auto json = JsonValue::parse(
      R"({"events": [{"kind": "node_crash", "at_s": 1}]})");
  EXPECT_FALSE(FaultPlan::from_json(*json));
}

TEST(FaultPlanTest, RejectsLossOutOfRange) {
  const auto json = JsonValue::parse(
      R"({"events": [{"kind": "loss_burst", "at_s": 1, "loss": 1.5}]})");
  std::string error;
  EXPECT_FALSE(FaultPlan::from_json(*json, &error));
  EXPECT_NE(error.find("loss"), std::string::npos);
}

TEST(FaultPlanTest, RejectsNonPositiveCpuFactor) {
  const auto json = JsonValue::parse(
      R"({"events": [{"kind": "cpu_degrade", "at_s": 1, "host": "a",
                      "factor": 0}]})");
  EXPECT_FALSE(FaultPlan::from_json(*json));
}

TEST(FaultPlanTest, EndTimeCoversLastRevert) {
  EXPECT_EQ(FaultPlan{}.end_time(), SimTime{});
  const FaultPlan plan = sample_plan();
  // cpu_degrade at 7 s for 3 s is the last to settle.
  EXPECT_EQ(plan.end_time(), SimTime::seconds(10.0));
}

// ---------------------------------------------------------------------------
// FaultInjector execution
// ---------------------------------------------------------------------------

struct InjectorFixture {
  sim::Simulator sim;
  sim::NetworkFaultState net;
  FaultInjector injector{sim, net};
  Address a{1};
  Address b{2};
  Address c{3};

  InjectorFixture() {
    injector.add_host("a", a);
    injector.add_host("b", b);
    injector.add_host("c", c);
  }
};

TEST(FaultInjectorTest, CrashAppliesAndRevertsOnSchedule) {
  InjectorFixture f;
  FaultPlan plan;
  FaultEvent crash;
  crash.kind = FaultKind::kNodeCrash;
  crash.at = SimTime::seconds(1.0);
  crash.duration = SimTime::seconds(2.0);
  crash.host = "a";
  plan.events.push_back(crash);
  f.injector.arm(plan);

  EXPECT_FALSE(f.net.host_down(f.a));
  f.sim.run_until(SimTime::seconds(1.5));
  EXPECT_TRUE(f.net.host_down(f.a));
  EXPECT_FALSE(f.net.host_down(f.b));
  f.sim.run_until(SimTime::seconds(4.0));
  EXPECT_FALSE(f.net.host_down(f.a));
  EXPECT_EQ(f.injector.applied(), 2u);  // apply + revert
  EXPECT_TRUE(f.injector.errors().empty());
}

TEST(FaultInjectorTest, PermanentCrashNeverReverts) {
  InjectorFixture f;
  FaultPlan plan;
  FaultEvent crash;
  crash.kind = FaultKind::kNodeCrash;
  crash.at = SimTime::seconds(1.0);
  crash.host = "b";  // duration 0 = forever
  plan.events.push_back(crash);
  f.injector.arm(plan);

  f.sim.run();
  EXPECT_TRUE(f.net.host_down(f.b));
  EXPECT_EQ(f.injector.applied(), 1u);
}

TEST(FaultInjectorTest, DirectedLinkDownAffectsOneDirection) {
  InjectorFixture f;
  FaultPlan plan;
  FaultEvent link;
  link.kind = FaultKind::kLinkDown;
  link.at = SimTime::seconds(1.0);
  link.duration = SimTime::seconds(1.0);
  link.host = "a";
  link.peer = "b";
  link.bidirectional = false;
  plan.events.push_back(link);
  f.injector.arm(plan);

  f.sim.run_until(SimTime::seconds(1.5));
  EXPECT_TRUE(f.net.link_down(f.a, f.b));
  EXPECT_FALSE(f.net.link_down(f.b, f.a));
  f.sim.run();
  EXPECT_FALSE(f.net.link_down(f.a, f.b));
}

TEST(FaultInjectorTest, BidirectionalLinkDownAffectsBothDirections) {
  InjectorFixture f;
  FaultPlan plan;
  FaultEvent link;
  link.kind = FaultKind::kLinkDown;
  link.at = SimTime::seconds(1.0);
  link.duration = SimTime::seconds(1.0);
  link.host = "a";
  link.peer = "b";
  plan.events.push_back(link);
  f.injector.arm(plan);

  f.sim.run_until(SimTime::seconds(1.5));
  EXPECT_TRUE(f.net.link_down(f.a, f.b));
  EXPECT_TRUE(f.net.link_down(f.b, f.a));
  f.sim.run();
  EXPECT_FALSE(f.net.link_down(f.a, f.b));
  EXPECT_FALSE(f.net.link_down(f.b, f.a));
}

TEST(FaultInjectorTest, PartitionCutsGroupFromOthersNotWithin) {
  InjectorFixture f;
  FaultPlan plan;
  FaultEvent part;
  part.kind = FaultKind::kPartition;
  part.at = SimTime::seconds(1.0);
  part.duration = SimTime::seconds(1.0);
  part.group = {"a", "b"};
  plan.events.push_back(part);
  f.injector.arm(plan);

  f.sim.run_until(SimTime::seconds(1.5));
  // {a, b} isolated from c, both directions.
  EXPECT_TRUE(f.net.link_down(f.a, f.c));
  EXPECT_TRUE(f.net.link_down(f.c, f.a));
  EXPECT_TRUE(f.net.link_down(f.b, f.c));
  EXPECT_TRUE(f.net.link_down(f.c, f.b));
  // Links inside the partition stay up.
  EXPECT_FALSE(f.net.link_down(f.a, f.b));
  EXPECT_FALSE(f.net.link_down(f.b, f.a));

  f.sim.run();
  EXPECT_FALSE(f.net.any());
}

TEST(FaultInjectorTest, NetworkWideLossBurstInstallsWildcard) {
  InjectorFixture f;
  FaultPlan plan;
  FaultEvent loss;
  loss.kind = FaultKind::kLossBurst;
  loss.at = SimTime::seconds(1.0);
  loss.duration = SimTime::seconds(1.0);
  loss.value = 0.4;  // host/peer empty = every link
  plan.events.push_back(loss);
  f.injector.arm(plan);

  f.sim.run_until(SimTime::seconds(1.5));
  const auto* d = f.net.disturbance(f.a, f.c);
  ASSERT_NE(d, nullptr);
  EXPECT_DOUBLE_EQ(d->extra_loss, 0.4);
  EXPECT_EQ(d->extra_latency, SimTime{});
  f.sim.run();
  EXPECT_EQ(f.net.disturbance(f.a, f.c), nullptr);
}

TEST(FaultInjectorTest, LatencyBurstOnPairHitsBothDirections) {
  InjectorFixture f;
  FaultPlan plan;
  FaultEvent latency;
  latency.kind = FaultKind::kLatencyBurst;
  latency.at = SimTime::seconds(1.0);
  latency.duration = SimTime::seconds(1.0);
  latency.host = "a";
  latency.peer = "b";
  latency.extra_latency = SimTime::millis(25);
  plan.events.push_back(latency);
  f.injector.arm(plan);

  f.sim.run_until(SimTime::seconds(1.5));
  const auto* fwd = f.net.disturbance(f.a, f.b);
  const auto* rev = f.net.disturbance(f.b, f.a);
  ASSERT_NE(fwd, nullptr);
  ASSERT_NE(rev, nullptr);
  EXPECT_EQ(fwd->extra_latency, SimTime::millis(25));
  EXPECT_EQ(rev->extra_latency, SimTime::millis(25));
  // Unrelated links are untouched.
  EXPECT_EQ(f.net.disturbance(f.a, f.c), nullptr);
  f.sim.run();
  EXPECT_FALSE(f.net.any());
}

TEST(FaultInjectorTest, CpuDegradeDrivesHookAndRestores) {
  sim::Simulator sim;
  sim::NetworkFaultState net;
  FaultInjector injector{sim, net};
  std::vector<double> factors;
  injector.add_host("a", Address{1},
                    [&factors](double factor) { factors.push_back(factor); });

  FaultPlan plan;
  FaultEvent degrade;
  degrade.kind = FaultKind::kCpuDegrade;
  degrade.at = SimTime::seconds(1.0);
  degrade.duration = SimTime::seconds(2.0);
  degrade.host = "a";
  degrade.value = 0.5;
  plan.events.push_back(degrade);
  injector.arm(plan);

  sim.run();
  ASSERT_EQ(factors.size(), 2u);
  EXPECT_DOUBLE_EQ(factors[0], 0.5);
  EXPECT_DOUBLE_EQ(factors[1], 1.0);
  EXPECT_TRUE(injector.errors().empty());
}

TEST(FaultInjectorTest, UnknownHostIsRecordedNotFatal) {
  InjectorFixture f;
  FaultPlan plan;
  FaultEvent crash;
  crash.kind = FaultKind::kNodeCrash;
  crash.at = SimTime::seconds(1.0);
  crash.host = "ghost";
  plan.events.push_back(crash);
  FaultEvent good;
  good.kind = FaultKind::kNodeCrash;
  good.at = SimTime::seconds(2.0);
  good.host = "a";
  plan.events.push_back(good);
  f.injector.arm(plan);

  f.sim.run();
  ASSERT_EQ(f.injector.errors().size(), 1u);
  EXPECT_NE(f.injector.errors()[0].find("ghost"), std::string::npos);
  EXPECT_TRUE(f.net.host_down(f.a));  // the valid event still applied
}

TEST(FaultInjectorTest, CpuDegradeWithoutHookIsRecorded) {
  InjectorFixture f;  // hosts declared without CPU hooks
  FaultPlan plan;
  FaultEvent degrade;
  degrade.kind = FaultKind::kCpuDegrade;
  degrade.at = SimTime::seconds(1.0);
  degrade.host = "a";
  degrade.value = 0.5;
  plan.events.push_back(degrade);
  f.injector.arm(plan);

  f.sim.run();
  EXPECT_EQ(f.injector.errors().size(), 1u);
}

}  // namespace
}  // namespace svk::fault
