// FaultScheduleGen — seeded random FaultPlan generation for the chaos
// harness (tests/chaos_test.cpp).
//
// All randomness for a chaos run lives here: a (seed, options) pair maps
// deterministically to one FaultPlan, which the FaultInjector then executes
// without drawing any random numbers. Failing schedules can therefore be
// replayed exactly from either the seed or the dumped plan JSON.
//
// Generated schedules are *disjoint in time*: the fault window is sliced
// into one slot per event and each event (including its revert) stays
// inside its slot. This guarantees every fault has healed by
// `window_end_s`, which the harness uses as the recovery deadline, and it
// sidesteps the injector's documented restriction that two bursts on the
// same directed link must not overlap.
#pragma once

#include <algorithm>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/rng.hpp"
#include "common/sim_time.hpp"
#include "fault/fault_plan.hpp"

namespace svk::chaos {

struct FaultScheduleOptions {
  /// Hosts that may fail-silent crash or be partitioned away (downstream
  /// proxies; the harness keeps the entry proxy up so the topology always
  /// has an ingress).
  std::vector<std::string> crashable;
  /// Hosts with a CPU model, eligible for cpu_degrade.
  std::vector<std::string> degradable;
  /// Candidate links for link-down and targeted bursts.
  std::vector<std::pair<std::string, std::string>> links;
  /// Faults begin no earlier than this (lets the run warm up first).
  double window_start_s = 2.0;
  /// Every fault, including its revert, has settled by this time.
  double window_end_s = 8.0;
  int min_events = 1;
  int max_events = 4;
};

[[nodiscard]] inline fault::FaultPlan generate_fault_schedule(
    std::uint64_t seed, const FaultScheduleOptions& opt) {
  Rng rng(seed);
  fault::FaultPlan plan;
  plan.name = "chaos-" + std::to_string(seed);
  plan.seed = seed;

  const int count =
      opt.min_events +
      static_cast<int>(rng.uniform_int(
          static_cast<std::uint64_t>(opt.max_events - opt.min_events + 1)));
  const double slot =
      (opt.window_end_s - opt.window_start_s) / static_cast<double>(count);

  enum Pick { kCrash, kPartition, kLink, kLoss, kLatency, kDegrade };
  std::vector<Pick> picks = {kLoss, kLatency};
  if (!opt.crashable.empty()) {
    picks.push_back(kCrash);
    picks.push_back(kPartition);
  }
  if (!opt.links.empty()) picks.push_back(kLink);
  if (!opt.degradable.empty()) picks.push_back(kDegrade);

  const auto pick_host = [&rng](const std::vector<std::string>& hosts) {
    return hosts[rng.uniform_int(hosts.size())];
  };
  const auto pick_link = [&rng, &opt] {
    return opt.links[rng.uniform_int(opt.links.size())];
  };

  for (int i = 0; i < count; ++i) {
    const double slot_start =
        opt.window_start_s + static_cast<double>(i) * slot;
    fault::FaultEvent event;
    event.at =
        SimTime::seconds(slot_start + rng.uniform(0.0, 0.3) * slot);
    const double remaining =
        slot_start + slot - event.at.to_seconds();
    event.duration =
        SimTime::seconds(rng.uniform(0.4, 0.95) * remaining);

    switch (picks[rng.uniform_int(picks.size())]) {
      case kCrash:
        event.kind = fault::FaultKind::kNodeCrash;
        event.host = pick_host(opt.crashable);
        break;
      case kPartition:
        event.kind = fault::FaultKind::kPartition;
        event.group = {pick_host(opt.crashable)};
        break;
      case kLink: {
        event.kind = fault::FaultKind::kLinkDown;
        const auto link = pick_link();
        event.host = link.first;
        event.peer = link.second;
        event.bidirectional = rng.bernoulli(0.5);
        break;
      }
      case kLoss:
        event.kind = fault::FaultKind::kLossBurst;
        event.value = rng.uniform(0.1, 0.8);
        if (!opt.links.empty() && rng.bernoulli(0.5)) {
          const auto link = pick_link();
          event.host = link.first;
          event.peer = link.second;
        }  // else network-wide
        break;
      case kLatency:
        event.kind = fault::FaultKind::kLatencyBurst;
        // Bounded well under SIP T1 so bursts cause retransmissions, not
        // wholesale transaction death.
        event.extra_latency = SimTime::millis(
            5 + static_cast<std::int64_t>(rng.uniform_int(120)));
        if (!opt.links.empty() && rng.bernoulli(0.7)) {
          const auto link = pick_link();
          event.host = link.first;
          event.peer = link.second;
        }
        break;
      case kDegrade:
        event.kind = fault::FaultKind::kCpuDegrade;
        event.host = pick_host(opt.degradable);
        event.value = rng.uniform(0.35, 0.9);
        break;
    }
    plan.events.push_back(std::move(event));
  }
  return plan;
}

}  // namespace svk::chaos
