// Golden-digest regression suite (ctest -L golden): one representative
// quick-mode load point per bench_fig* scenario, digested (MD5 of the
// serialized RunRecord, host wall clock zeroed) and compared against the
// seed digests checked in at tests/golden_digests.json.
//
// Any change to the simulator core, SIP stack, proxies, controller, or
// runner that alters simulation results — intentionally or not — flips a
// digest here and fails this suite. To bless intentional changes,
// regenerate the file and commit it alongside the change:
//
//   SVK_UPDATE_GOLDEN=1 ./tests/golden_digest_test
//
// The scenarios mirror the bench_fig* binaries at 1/100 scale with a short
// warmup/measure window, so the whole suite runs in seconds while still
// exercising every topology and policy the figures use.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/json.hpp"
#include "common/md5.hpp"
#include "common/sim_time.hpp"
#include "workload/runner.hpp"
#include "workload/scenarios.hpp"

namespace svk::workload {
namespace {

constexpr double kScale = 0.01;

#ifndef SVK_TEST_SOURCE_DIR
#error "SVK_TEST_SOURCE_DIR must point at the tests/ source directory"
#endif
const char kGoldenPath[] = SVK_TEST_SOURCE_DIR "/golden_digests.json";

ScenarioOptions scaled_options(PolicyKind policy, std::size_t num_proxies) {
  ScenarioOptions options;
  options.policy = policy;
  options.capacity_scale.assign(num_proxies, kScale);
  options.controller_period = SimTime::seconds(0.5);
  return options;
}

struct GoldenScenario {
  std::string name;
  BedFactory factory;
  double offered_cps;  // scaled units
};

/// The representative point for each figure: same topology/policy as the
/// bench binary, one offered load near the interesting region of the plot.
std::vector<GoldenScenario> golden_scenarios() {
  std::vector<GoldenScenario> scenarios;

  // Figure 3/4: single proxy, the stateful and stateless extremes.
  scenarios.push_back({"fig3_single_all_stateful",
                       single_proxy(scaled_options(
                           PolicyKind::kStaticAllStateful, 1)),
                       90.0});
  scenarios.push_back({"fig4_single_all_stateless",
                       single_proxy(scaled_options(
                           PolicyKind::kStaticAllStateless, 1)),
                       110.0});

  // Figure 5: two in series, today's static config vs the controller.
  scenarios.push_back({"fig5_two_series_static",
                       series_chain(2, scaled_options(
                           PolicyKind::kStaticChainFirstStateful, 2)),
                       95.0});
  scenarios.push_back({"fig5_two_series_servartuka",
                       series_chain(2, scaled_options(
                           PolicyKind::kServartuka, 2)),
                       110.0});

  // Figure 6: response time on the two-series chain (the record carries
  // setup_ms_mean/p90, so latency regressions flip this digest too).
  scenarios.push_back({"fig6_two_series_last_stateful",
                       series_chain(2, scaled_options(
                           PolicyKind::kStaticChainLastStateful, 2)),
                       90.0});

  // Figure 7: changing loads — 80% of calls traverse both proxies.
  scenarios.push_back({"fig7_changing_loads_servartuka",
                       two_series_with_internal(
                           0.8, scaled_options(PolicyKind::kServartuka, 2)),
                       105.0});

  // Figure 8: three-server parallel fork, and the wide-fork variant the
  // sharded-engine benchmark uses.
  scenarios.push_back({"fig8_parallel_fork_servartuka",
                       parallel_fork(
                           scaled_options(PolicyKind::kServartuka, 3)),
                       110.0});
  {
    ScenarioOptions options =
        scaled_options(PolicyKind::kStaticChainLastStateful, 17);
    options.num_uacs = 4;
    options.num_uas = 4;
    scenarios.push_back({"fig8_wide_fork_16", wide_fork(16, options), 80.0});
  }
  return scenarios;
}

std::string compute_digest(const GoldenScenario& scenario) {
  MeasureOptions options;
  options.warmup = SimTime::seconds(1.0);
  options.measure = SimTime::seconds(2.0);
  RunRecord record = to_run_record(
      measure_point(scenario.factory, scenario.offered_cps, options), 1.0,
      scenario.name);
  record.wall_seconds = 0.0;  // host noise, not simulation output
  return Md5::hex(record.to_json().dump());
}

TEST(GoldenDigestTest, BenchScenariosMatchCheckedInDigests) {
  const std::vector<GoldenScenario> scenarios = golden_scenarios();

  if (std::getenv("SVK_UPDATE_GOLDEN") != nullptr) {
    JsonValue root = JsonValue::object();
    root["schema_version"] = 1;
    root["comment"] =
        "MD5 of each scenario's quick-mode RunRecord (wall_seconds zeroed). "
        "Regenerate with SVK_UPDATE_GOLDEN=1 ./tests/golden_digest_test.";
    JsonValue& digests = root["digests"];
    digests = JsonValue::object();
    for (const GoldenScenario& scenario : scenarios) {
      digests[scenario.name] = compute_digest(scenario);
    }
    ASSERT_TRUE(root.write_file(kGoldenPath));
    std::printf("golden digests regenerated at %s\n", kGoldenPath);
    return;
  }

  const auto parsed = JsonValue::parse_file(kGoldenPath);
  ASSERT_TRUE(parsed.has_value())
      << "missing or malformed " << kGoldenPath
      << " — regenerate with SVK_UPDATE_GOLDEN=1 ./tests/golden_digest_test";
  const JsonValue* digests = parsed->find("digests");
  ASSERT_NE(digests, nullptr);

  // Every scenario must be present and match; the file must not carry
  // stale entries for scenarios that no longer exist.
  EXPECT_EQ(digests->size(), scenarios.size())
      << "scenario set changed — regenerate golden_digests.json";
  for (const GoldenScenario& scenario : scenarios) {
    SCOPED_TRACE(scenario.name);
    const JsonValue* expected = digests->find(scenario.name);
    ASSERT_NE(expected, nullptr) << "no golden digest for " << scenario.name;
    ASSERT_TRUE(expected->as_string().has_value());
    EXPECT_EQ(compute_digest(scenario), *expected->as_string());
  }
}

}  // namespace
}  // namespace svk::workload
