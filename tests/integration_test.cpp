// End-to-end integration tests: the SERvartuka controller running inside
// full proxy chains, compared against static configurations and the LP
// bound; robustness under packet loss.
//
// All topologies run at 1/100 scale (T_SF ~ 103.6 cps, T_SL ~ 123 cps) so
// whole saturation sweeps take simulated seconds.
#include <gtest/gtest.h>

#include "lp/state_model.hpp"
#include "workload/runner.hpp"
#include "workload/scenarios.hpp"

namespace svk::workload {
namespace {

constexpr double kScale = 0.01;
constexpr double kTsf = 10360.0 * kScale;
constexpr double kTsl = 12300.0 * kScale;

ScenarioOptions scaled(PolicyKind policy) {
  ScenarioOptions options;
  options.policy = policy;
  options.capacity_scale = {kScale, kScale, kScale, kScale};
  // Faster controller reaction at small scale: 0.5 s windows.
  options.controller_period = SimTime::seconds(0.5);
  return options;
}

MeasureOptions longer_measure() {
  MeasureOptions options;
  options.warmup = SimTime::seconds(4.0);  // let Algorithm 2 converge
  options.measure = SimTime::seconds(5.0);
  return options;
}

// ---------------------------------------------------------------------------
// SERvartuka on a two-server chain (the paper's Figure 5 shape)
// ---------------------------------------------------------------------------

TEST(ServartukaIntegrationTest, ConvergesToSplitStateOnTwoChain) {
  const BedFactory factory =
      series_chain(2, scaled(PolicyKind::kServartuka));
  // Offered above T_SF but below the LP optimum (~112 cps).
  auto bed = factory(110.0);
  bed->start_load();
  bed->sim().run_until(SimTime::seconds(8.0));

  const auto& p0 = bed->proxies()[0]->stats();
  const auto& p1 = bed->proxies()[1]->stats();
  // Both nodes carry substantial stateful load (split roughly in half).
  EXPECT_GT(p0.forwarded_stateful, 0u);
  EXPECT_GT(p1.forwarded_stateful, 0u);
  const double total = static_cast<double>(p0.forwarded_stateful +
                                           p1.forwarded_stateful);
  // The realized split favors the exit (forwarding the downstream 100s
  // makes stateless relaying at the entry costlier than the pure model),
  // but both nodes carry a real share.
  EXPECT_GT(p0.forwarded_stateful / total, 0.08);
  EXPECT_LT(p0.forwarded_stateful / total, 0.75);
}

TEST(ServartukaIntegrationTest, BelowThresholdStaysFullyStatefulAtEntry) {
  const BedFactory factory =
      series_chain(2, scaled(PolicyKind::kServartuka));
  auto bed = factory(50.0);  // well below T_SF ~ 103.6
  bed->start_load();
  bed->sim().run_until(SimTime::seconds(6.0));

  const auto& p0 = bed->proxies()[0]->stats();
  const auto& p1 = bed->proxies()[1]->stats();
  // Entry takes essentially all state; downstream sees marked traffic.
  EXPECT_GT(p0.forwarded_stateful, 100u);
  EXPECT_LT(p1.forwarded_stateful, p0.forwarded_stateful / 10 + 5);
}

TEST(ServartukaIntegrationTest, EveryCallStatefulSomewhere) {
  const BedFactory factory =
      series_chain(2, scaled(PolicyKind::kServartuka));
  auto bed = factory(110.0);
  bed->start_load();
  bed->sim().run_until(SimTime::seconds(8.0));
  bed->stop_load();
  bed->sim().run_until(SimTime::seconds(11.0));

  // The paper verifies statefulness by matching calls to 100 Trying
  // responses: every established call must have produced at least one.
  std::uint64_t established = 0;
  std::uint64_t trying = 0;
  for (const auto& uac : bed->uacs()) {
    established += uac->metrics().calls_established;
    trying += uac->metrics().trying_received;
  }
  EXPECT_GT(established, 500u);
  EXPECT_GE(trying, established);
}

TEST(ServartukaIntegrationTest, BeatsStaticTwoChainByPaperMargin) {
  // The paper's static baseline is the deployment default: every node
  // stateful. Its measured two-series throughput (8540) sits well below
  // the single-node stateful limit (10360) — reproduced here because the
  // second node's 100 Trying must be relayed by the first, and both nodes
  // pay full state costs.
  const double static_sat = find_saturation(
      series_chain(2, scaled(PolicyKind::kStaticAllStateful)), 80.0, 135.0,
      5.0, longer_measure());
  const double dynamic_sat = find_saturation(
      series_chain(2, scaled(PolicyKind::kServartuka)), 80.0, 135.0, 5.0,
      longer_measure());
  // The paper reports +15% on this topology.
  EXPECT_GT(dynamic_sat, static_sat * 1.10);
  EXPECT_LT(static_sat, kTsf);           // degraded, like the paper's 8540
  EXPECT_GT(static_sat, 0.78 * kTsf);

  // SERvartuka also at least matches the best hand-tuned static split
  // (one stateful node), which the paper's LP argument implies.
  const double best_static_sat = find_saturation(
      series_chain(2, scaled(PolicyKind::kStaticChainFirstStateful)), 80.0,
      135.0, 5.0, longer_measure());
  EXPECT_GE(dynamic_sat, best_static_sat * 0.99);
}

TEST(ServartukaIntegrationTest, MeasuredThroughputWithinLpBound) {
  lp::StateDistributionModel model;
  const auto s1 = model.add_node("s1", kTsf, kTsl);
  const auto s2 = model.add_node("s2", kTsf, kTsl);
  model.add_edge(s1, s2);
  model.mark_entry(s1);
  model.mark_exit(s2);
  const auto lp_result = model.solve();
  ASSERT_TRUE(lp_result.optimal());

  const double measured = find_saturation(
      series_chain(2, scaled(PolicyKind::kServartuka)), 80.0, 135.0, 5.0,
      longer_measure());
  // The LP is an upper bound; the distributed algorithm should get within
  // ~80% of it (the paper: 9790 measured vs 11240 LP ~ 87%).
  EXPECT_LE(measured, lp_result.max_throughput * 1.03);
  EXPECT_GE(measured, lp_result.max_throughput * 0.75);
}

TEST(ServartukaIntegrationTest, OverloadSignalsFlowUpstreamPastSaturation) {
  const BedFactory factory =
      series_chain(2, scaled(PolicyKind::kServartuka));
  auto bed = factory(140.0);  // beyond the LP optimum ~112
  bed->start_load();
  bed->sim().run_until(SimTime::seconds(10.0));
  // The exit node must have told the entry it froze.
  EXPECT_GT(bed->proxies()[1]->stats().overload_signals_sent, 0u);
  EXPECT_GT(bed->proxies()[0]->stats().overload_signals_received, 0u);
}

// ---------------------------------------------------------------------------
// Three-server configurations
// ---------------------------------------------------------------------------

TEST(ServartukaIntegrationTest, ThreeChainBeatsStatic) {
  const double static_sat = find_saturation(
      series_chain(3, scaled(PolicyKind::kStaticAllStateful)), 60.0, 135.0,
      5.0, longer_measure());
  const double dynamic_sat = find_saturation(
      series_chain(3, scaled(PolicyKind::kServartuka)), 60.0, 135.0, 5.0,
      longer_measure());
  // Paper: +16% on three in series.
  EXPECT_GT(dynamic_sat, static_sat * 1.10);
}

TEST(ServartukaIntegrationTest, ParallelForkAtLeastMatchesStatic) {
  const double static_sat = find_saturation(
      parallel_fork(scaled(PolicyKind::kStaticChainLastStateful)), 90.0,
      135.0, 5.0, longer_measure());
  const double dynamic_sat = find_saturation(
      parallel_fork(scaled(PolicyKind::kServartuka)), 90.0, 135.0, 5.0,
      longer_measure());
  // The LP says the fork's static standard config is already optimal;
  // SERvartuka must not do (meaningfully) worse.
  EXPECT_GE(dynamic_sat, static_sat * 0.95);
}

// ---------------------------------------------------------------------------
// Changing loads (Figure 7 shape)
// ---------------------------------------------------------------------------

class ChangingLoadTest : public ::testing::TestWithParam<double> {};

TEST_P(ChangingLoadTest, ServartukaAtLeastMatchesStatic) {
  const double fraction = GetParam();
  const double static_sat = find_saturation(
      two_series_with_internal(fraction,
                               scaled(PolicyKind::kStaticAllStateful)),
      80.0, 130.0, 10.0, longer_measure());
  const double dynamic_sat = find_saturation(
      two_series_with_internal(fraction, scaled(PolicyKind::kServartuka)),
      80.0, 130.0, 10.0, longer_measure());
  EXPECT_GE(dynamic_sat, static_sat * 0.97) << "fraction " << fraction;
}

INSTANTIATE_TEST_SUITE_P(Fractions, ChangingLoadTest,
                         ::testing::Values(0.0, 0.5, 0.8, 1.0));

TEST(ChangingLoadsTest, GainPeaksAtHighExternalFraction) {
  // At 80% external the dynamic config clearly beats static (the paper's
  // +20% point).
  const double static_sat = find_saturation(
      two_series_with_internal(0.8,
                               scaled(PolicyKind::kStaticAllStateful)),
      80.0, 130.0, 5.0, longer_measure());
  const double dynamic_sat = find_saturation(
      two_series_with_internal(0.8, scaled(PolicyKind::kServartuka)), 80.0,
      130.0, 5.0, longer_measure());
  EXPECT_GT(dynamic_sat, static_sat * 1.08);
}

// ---------------------------------------------------------------------------
// Robustness under packet loss
// ---------------------------------------------------------------------------

TEST(LossRobustnessTest, CallsCompleteOverLossyLinks) {
  const BedFactory factory =
      series_chain(2, scaled(PolicyKind::kStaticChainFirstStateful));
  auto bed = factory(20.0);
  // 3% i.i.d. loss everywhere: SIP timers must recover the calls.
  bed->network().set_default_link(
      sim::LinkParams{SimTime::micros(250), SimTime{}, 0.03});
  bed->start_load();
  bed->sim().run_until(SimTime::seconds(20.0));
  bed->stop_load();
  bed->sim().run_until(SimTime::seconds(55.0));  // allow retransmissions

  std::uint64_t attempted = bed->total_attempted_calls();
  std::uint64_t completed = bed->total_completed_calls();
  std::uint64_t retransmissions = 0;
  for (const auto& uac : bed->uacs()) {
    retransmissions += uac->metrics().retransmissions;
  }
  EXPECT_GT(retransmissions, 0u);  // loss actually happened
  EXPECT_GE(static_cast<double>(completed),
            0.95 * static_cast<double>(attempted));
}

TEST(LossRobustnessTest, StatefulAbsorbsUpstreamRetransmissions) {
  // Loss only between the two proxies: the entry's client transactions
  // retransmit; the exit absorbs duplicates via its server transactions.
  const BedFactory factory =
      series_chain(2, scaled(PolicyKind::kStaticChainLastStateful));
  auto bed = factory(20.0);
  const Address p0 = *bed->registry().resolve("proxy0.example.net");
  const Address p1 = *bed->registry().resolve("proxy1.example.net");
  bed->network().set_link(
      p0, p1, sim::LinkParams{SimTime::micros(250), SimTime{}, 0.05});
  bed->network().set_link(
      p1, p0, sim::LinkParams{SimTime::micros(250), SimTime{}, 0.05});
  bed->start_load();
  bed->sim().run_until(SimTime::seconds(20.0));
  EXPECT_GT(bed->proxies()[1]->stats().absorbed_retransmits, 0u);
}

}  // namespace
}  // namespace svk::workload
