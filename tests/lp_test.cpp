// Tests for the simplex solver and the paper's Section 4.1 state
// distribution LP, including the paper's two-server optimum (11240 cps) and
// the changing-loads prediction.
#include <gtest/gtest.h>

#include <cmath>

#include "lp/simplex.hpp"
#include "lp/state_model.hpp"

namespace svk::lp {
namespace {

constexpr double kTsf = 10360.0;
constexpr double kTsl = 12300.0;

// ---------------------------------------------------------------------------
// Simplex
// ---------------------------------------------------------------------------

TEST(SimplexTest, SimpleMaximization) {
  // max 3x + 2y st x + y <= 4, x + 3y <= 6, x,y >= 0 -> x=4, y=0, obj 12.
  Problem p;
  p.num_vars = 2;
  p.objective = {3.0, 2.0};
  p.add_constraint(Relation::kLessEqual, 4.0).coeffs = {1.0, 1.0};
  p.add_constraint(Relation::kLessEqual, 6.0).coeffs = {1.0, 3.0};
  const Solution s = solve(p);
  ASSERT_TRUE(s.optimal());
  EXPECT_NEAR(s.objective, 12.0, 1e-9);
  EXPECT_NEAR(s.values[0], 4.0, 1e-9);
  EXPECT_NEAR(s.values[1], 0.0, 1e-9);
}

TEST(SimplexTest, ClassicTwoVariable) {
  // max 5x + 4y st 6x + 4y <= 24, x + 2y <= 6 -> x=3, y=1.5, obj 21.
  Problem p;
  p.num_vars = 2;
  p.objective = {5.0, 4.0};
  p.add_constraint(Relation::kLessEqual, 24.0).coeffs = {6.0, 4.0};
  p.add_constraint(Relation::kLessEqual, 6.0).coeffs = {1.0, 2.0};
  const Solution s = solve(p);
  ASSERT_TRUE(s.optimal());
  EXPECT_NEAR(s.objective, 21.0, 1e-9);
  EXPECT_NEAR(s.values[0], 3.0, 1e-9);
  EXPECT_NEAR(s.values[1], 1.5, 1e-9);
}

TEST(SimplexTest, EqualityConstraints) {
  // max x + y st x + y = 5, x <= 3 -> obj 5.
  Problem p;
  p.num_vars = 2;
  p.objective = {1.0, 1.0};
  p.add_constraint(Relation::kEqual, 5.0).coeffs = {1.0, 1.0};
  p.add_constraint(Relation::kLessEqual, 3.0).coeffs = {1.0, 0.0};
  const Solution s = solve(p);
  ASSERT_TRUE(s.optimal());
  EXPECT_NEAR(s.objective, 5.0, 1e-9);
}

TEST(SimplexTest, GreaterEqualConstraints) {
  // min x + y st x + 2y >= 4, 3x + y >= 6  (maximize -(x+y)).
  // Optimum at intersection: x=1.6, y=1.2, obj 2.8.
  Problem p;
  p.num_vars = 2;
  p.objective = {-1.0, -1.0};
  p.add_constraint(Relation::kGreaterEqual, 4.0).coeffs = {1.0, 2.0};
  p.add_constraint(Relation::kGreaterEqual, 6.0).coeffs = {3.0, 1.0};
  const Solution s = solve(p);
  ASSERT_TRUE(s.optimal());
  EXPECT_NEAR(s.objective, -2.8, 1e-9);
  EXPECT_NEAR(s.values[0], 1.6, 1e-9);
  EXPECT_NEAR(s.values[1], 1.2, 1e-9);
}

TEST(SimplexTest, DetectsInfeasible) {
  Problem p;
  p.num_vars = 1;
  p.objective = {1.0};
  p.add_constraint(Relation::kLessEqual, 1.0).coeffs = {1.0};
  p.add_constraint(Relation::kGreaterEqual, 2.0).coeffs = {1.0};
  EXPECT_EQ(solve(p).status, SolveStatus::kInfeasible);
}

TEST(SimplexTest, DetectsUnbounded) {
  Problem p;
  p.num_vars = 2;
  p.objective = {1.0, 0.0};
  p.add_constraint(Relation::kLessEqual, 4.0).coeffs = {0.0, 1.0};
  EXPECT_EQ(solve(p).status, SolveStatus::kUnbounded);
}

TEST(SimplexTest, NegativeRhsNormalized) {
  // x <= -1 is infeasible for x >= 0 (normalizes to -x >= 1).
  Problem p;
  p.num_vars = 1;
  p.objective = {1.0};
  p.add_constraint(Relation::kLessEqual, -1.0).coeffs = {1.0};
  EXPECT_EQ(solve(p).status, SolveStatus::kInfeasible);

  // -x >= -3 (i.e. x <= 3): max x = 3.
  Problem q;
  q.num_vars = 1;
  q.objective = {1.0};
  q.add_constraint(Relation::kGreaterEqual, -3.0).coeffs = {-1.0};
  const Solution s = solve(q);
  ASSERT_TRUE(s.optimal());
  EXPECT_NEAR(s.objective, 3.0, 1e-9);
}

TEST(SimplexTest, DegenerateProblemTerminates) {
  // Multiple redundant constraints through one vertex (degeneracy); Bland's
  // rule must still terminate.
  Problem p;
  p.num_vars = 2;
  p.objective = {1.0, 1.0};
  p.add_constraint(Relation::kLessEqual, 1.0).coeffs = {1.0, 0.0};
  p.add_constraint(Relation::kLessEqual, 1.0).coeffs = {0.0, 1.0};
  p.add_constraint(Relation::kLessEqual, 2.0).coeffs = {1.0, 1.0};
  p.add_constraint(Relation::kLessEqual, 2.0).coeffs = {1.0, 1.0};
  const Solution s = solve(p);
  ASSERT_TRUE(s.optimal());
  EXPECT_NEAR(s.objective, 2.0, 1e-9);
}

TEST(SimplexTest, ZeroObjectiveFeasibility) {
  Problem p;
  p.num_vars = 1;
  p.objective = {0.0};
  p.add_constraint(Relation::kEqual, 2.0).coeffs = {1.0};
  const Solution s = solve(p);
  ASSERT_TRUE(s.optimal());
  EXPECT_NEAR(s.values[0], 2.0, 1e-9);
}

// ---------------------------------------------------------------------------
// State distribution model
// ---------------------------------------------------------------------------

TEST(StateModelTest, SingleNodeCapsAtStatefulThreshold) {
  StateDistributionModel model;
  const NodeIndex n = model.add_node("s1", kTsf, kTsl);
  model.mark_entry(n);
  model.mark_exit(n);
  const auto result = model.solve();
  ASSERT_TRUE(result.optimal());
  // Alone, every call must be handled statefully here.
  EXPECT_NEAR(result.max_throughput, kTsf, 1.0);
  EXPECT_NEAR(result.node_stateful[n], kTsf, 1.0);
}

TEST(StateModelTest, PaperTwoSeriesOptimum) {
  // Section 4.1: two servers in series, thresholds 10360/12300 ->
  // optimal ~11240 cps with ~5620 stateful at each node.
  StateDistributionModel model;
  const NodeIndex s1 = model.add_node("s1", kTsf, kTsl);
  const NodeIndex s2 = model.add_node("s2", kTsf, kTsl);
  model.add_edge(s1, s2);
  model.mark_entry(s1);
  model.mark_exit(s2);
  const auto result = model.solve();
  ASSERT_TRUE(result.optimal());
  // Closed form: 2 / (alpha + beta) = 11247.3; the paper rounds to 11240.
  EXPECT_NEAR(result.max_throughput, 11247.3, 1.0);
  EXPECT_NEAR(result.node_stateful[s1], result.max_throughput / 2.0, 1.0);
  EXPECT_NEAR(result.node_stateful[s2], result.max_throughput / 2.0, 1.0);
}

TEST(StateModelTest, TwoSeriesBeatsAnyStaticSplit) {
  // LP optimum must dominate both static configurations (all state at one
  // node = T_SF).
  StateDistributionModel model;
  const NodeIndex s1 = model.add_node("s1", kTsf, kTsl);
  const NodeIndex s2 = model.add_node("s2", kTsf, kTsl);
  model.add_edge(s1, s2);
  model.mark_entry(s1);
  model.mark_exit(s2);
  const auto result = model.solve();
  ASSERT_TRUE(result.optimal());
  EXPECT_GT(result.max_throughput, kTsf * 1.05);
  EXPECT_LT(result.max_throughput, kTsl);
}

TEST(StateModelTest, ThreeSeriesOptimum) {
  // Three in series: system must hold state once per call; capacity sums:
  // 3 feasibility constraints, optimum = 3/(alpha + 2 beta).
  StateDistributionModel model;
  const NodeIndex s1 = model.add_node("s1", kTsf, kTsl);
  const NodeIndex s2 = model.add_node("s2", kTsf, kTsl);
  const NodeIndex s3 = model.add_node("s3", kTsf, kTsl);
  model.add_edge(s1, s2);
  model.add_edge(s2, s3);
  model.mark_entry(s1);
  model.mark_exit(s3);
  const auto result = model.solve();
  ASSERT_TRUE(result.optimal());
  const double alpha = 1.0 / kTsf;
  const double beta = 1.0 / kTsl;
  EXPECT_NEAR(result.max_throughput, 3.0 / (alpha + 2.0 * beta), 1.0);
}

TEST(StateModelTest, ChangingLoads80_20Prediction) {
  // Figure 7 LP prediction: 80% external (through both), 20% internal
  // (exits at s1). At that mix s1's feasibility dominates:
  // T = 1 / (0.2*alpha + 0.8*beta) ~ 11856 cps with these thresholds.
  StateDistributionModel model;
  const NodeIndex s1 = model.add_node("s1", kTsf, kTsl);
  const NodeIndex s2 = model.add_node("s2", kTsf, kTsl);
  model.add_edge(s1, s2);
  model.mark_entry(s1);
  model.mark_exit(s1);  // internal flow leaves at s1
  model.mark_exit(s2);
  model.fix_exit_split(s1, 0.2);
  model.fix_split(s1, s2, 0.8);
  const auto result = model.solve();
  ASSERT_TRUE(result.optimal());
  const double alpha = 1.0 / kTsf;
  const double beta = 1.0 / kTsl;
  EXPECT_NEAR(result.max_throughput, 1.0 / (0.2 * alpha + 0.8 * beta), 2.0);
  EXPECT_GT(result.max_throughput, kTsf);
}

TEST(StateModelTest, ChangingLoadsPeaksNearEighty) {
  // The paper observes the largest headroom around an 80/20 split; sweep
  // the fraction and verify the optimum peaks in [0.7, 0.9].
  double best_fraction = 0.0;
  double best = 0.0;
  for (double f = 0.0; f <= 1.0 + 1e-9; f += 0.1) {
    StateDistributionModel model;
    const NodeIndex s1 = model.add_node("s1", kTsf, kTsl);
    const NodeIndex s2 = model.add_node("s2", kTsf, kTsl);
    model.add_edge(s1, s2);
    model.mark_entry(s1);
    model.mark_exit(s1);
    model.mark_exit(s2);
    model.fix_exit_split(s1, 1.0 - f);
    model.fix_split(s1, s2, f);
    const auto result = model.solve();
    ASSERT_TRUE(result.optimal()) << "fraction " << f;
    if (result.max_throughput > best) {
      best = result.max_throughput;
      best_fraction = f;
    }
  }
  EXPECT_GE(best_fraction, 0.7);
  EXPECT_LE(best_fraction, 0.9);
}

TEST(StateModelTest, ParallelForkOptimum) {
  // Entry fans to two exits 50/50. The entry can stay stateless; each exit
  // handles half. Exits bind at (alpha+beta)/2 per unit -> T = 2/(alpha+beta)
  // until the entry's stateless bound T <= T_SL; with these numbers the
  // exits bind first at 22494... capped by the entry at T_SL = 12300.
  StateDistributionModel model;
  const NodeIndex s0 = model.add_node("s0", kTsf, kTsl);
  const NodeIndex sa = model.add_node("sa", kTsf, kTsl);
  const NodeIndex sb = model.add_node("sb", kTsf, kTsl);
  model.add_edge(s0, sa);
  model.add_edge(s0, sb);
  model.mark_entry(s0);
  model.mark_exit(sa);
  model.mark_exit(sb);
  model.fix_split(s0, sa, 0.5);
  model.fix_split(s0, sb, 0.5);
  const auto result = model.solve();
  ASSERT_TRUE(result.optimal());
  EXPECT_NEAR(result.max_throughput, kTsl, 1.0);
  // Entry keeps no state at the optimum.
  EXPECT_NEAR(result.node_stateful[s0], 0.0, 1.0);
  EXPECT_GT(result.node_stateful[sa], 0.0);
  EXPECT_GT(result.node_stateful[sb], 0.0);
}

TEST(StateModelTest, HeterogeneousForkEntryKeepsState) {
  // A beefy entry (3x capacity) over two weak exits: the optimum has the
  // entry absorbing most state (the paper's Section 6.2 observation).
  StateDistributionModel model;
  const NodeIndex s0 = model.add_node("s0", 3.0 * kTsf, 3.0 * kTsl);
  const NodeIndex sa = model.add_node("sa", kTsf, kTsl);
  const NodeIndex sb = model.add_node("sb", kTsf, kTsl);
  model.add_edge(s0, sa);
  model.add_edge(s0, sb);
  model.mark_entry(s0);
  model.mark_exit(sa);
  model.mark_exit(sb);
  model.fix_split(s0, sa, 0.5);
  model.fix_split(s0, sb, 0.5);
  const auto result = model.solve();
  ASSERT_TRUE(result.optimal());
  EXPECT_GT(result.node_stateful[s0], result.node_stateful[sa]);
  EXPECT_GT(result.max_throughput, 2.0 * kTsf);
}

TEST(StateModelTest, FlowConservationHolds) {
  StateDistributionModel model;
  const NodeIndex s1 = model.add_node("s1", kTsf, kTsl);
  const NodeIndex s2 = model.add_node("s2", kTsf, kTsl);
  model.add_edge(s1, s2);
  model.mark_entry(s1);
  model.mark_exit(s2);
  const auto result = model.solve();
  ASSERT_TRUE(result.optimal());
  // Node loads equal the admitted throughput at every node of a chain.
  EXPECT_NEAR(result.node_load[s1], result.max_throughput, 1e-6);
  EXPECT_NEAR(result.node_load[s2], result.max_throughput, 1e-6);
  // Total stateful across nodes covers every call exactly once.
  EXPECT_NEAR(result.node_stateful[s1] + result.node_stateful[s2],
              result.max_throughput, 1e-6);
}

TEST(StateModelTest, UtilizationFeasibleAtOptimum) {
  StateDistributionModel model;
  const NodeIndex s1 = model.add_node("s1", kTsf, kTsl);
  const NodeIndex s2 = model.add_node("s2", kTsf, kTsl);
  const NodeIndex s3 = model.add_node("s3", kTsf, kTsl);
  model.add_edge(s1, s2);
  model.add_edge(s2, s3);
  model.mark_entry(s1);
  model.mark_exit(s3);
  const auto result = model.solve();
  ASSERT_TRUE(result.optimal());
  const double alpha = 1.0 / kTsf;
  const double beta = 1.0 / kTsl;
  for (NodeIndex n = 0; n < 3; ++n) {
    const double sf = result.node_stateful[n];
    const double sl = result.node_load[n] - sf;
    EXPECT_LE(alpha * sf + beta * sl, 1.0 + 1e-9) << "node " << n;
  }
}

class SeriesLengthTest : public ::testing::TestWithParam<int> {};

TEST_P(SeriesLengthTest, OptimumMatchesClosedForm) {
  // N homogeneous servers in series: optimum N / (alpha + (N-1) beta);
  // approaches T_SL as N grows but never exceeds it... up to the point
  // where the budget exceeds what must be kept (N large): capped at T_SL.
  const int n = GetParam();
  StateDistributionModel model;
  std::vector<NodeIndex> nodes;
  for (int i = 0; i < n; ++i) {
    nodes.push_back(model.add_node("s" + std::to_string(i), kTsf, kTsl));
  }
  for (int i = 0; i + 1 < n; ++i) model.add_edge(nodes[i], nodes[i + 1]);
  model.mark_entry(nodes.front());
  model.mark_exit(nodes.back());
  const auto result = model.solve();
  ASSERT_TRUE(result.optimal());
  const double alpha = 1.0 / kTsf;
  const double beta = 1.0 / kTsl;
  const double closed_form = n / (alpha + (n - 1) * beta);
  EXPECT_NEAR(result.max_throughput, std::min(closed_form, kTsl), 2.0);
}

INSTANTIATE_TEST_SUITE_P(Lengths, SeriesLengthTest,
                         ::testing::Values(1, 2, 3, 4, 5, 8));

}  // namespace
}  // namespace svk::lp
