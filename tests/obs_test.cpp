// Observability-layer tests: metric registry, tracer, controller audit
// log, Chrome trace export — and the determinism guarantee that enabling
// observability never changes simulated results.
#include <gtest/gtest.h>

#include <cstdio>
#include <limits>
#include <string>

#include "obs/audit.hpp"
#include "obs/metrics.hpp"
#include "obs/observability.hpp"
#include "obs/trace.hpp"
#include "workload/runner.hpp"
#include "workload/scenarios.hpp"

namespace svk::obs {
namespace {

// ---------------------------------------------------------------------------
// MetricRegistry
// ---------------------------------------------------------------------------

TEST(TimeSeriesTest, RingKeepsNewestAndCountsDropped) {
  TimeSeries series(4);
  for (int i = 0; i < 6; ++i) {
    series.sample(SimTime::seconds(static_cast<double>(i)),
                  static_cast<double>(i * 10));
  }
  EXPECT_EQ(series.size(), 4u);
  EXPECT_EQ(series.capacity(), 4u);
  EXPECT_EQ(series.dropped(), 2u);
  const auto samples = series.samples();
  ASSERT_EQ(samples.size(), 4u);
  // Oldest-first, the two earliest observations gone.
  EXPECT_DOUBLE_EQ(samples.front().value, 20.0);
  EXPECT_DOUBLE_EQ(samples.back().value, 50.0);
}

TEST(MetricRegistryTest, InstrumentsAreCreatedOnFirstUseAndStable) {
  MetricRegistry registry;
  Counter& c = registry.counter("a.count");
  c.inc();
  Gauge& g = registry.gauge("a.gauge");
  g.set(2.5);
  TimeSeries& s = registry.series("a.series", 8);
  s.sample(SimTime::seconds(1.0), 7.0);
  // Creating more instruments must not invalidate earlier references.
  for (int i = 0; i < 100; ++i) {
    registry.counter("other." + std::to_string(i)).inc();
  }
  c.inc();
  EXPECT_EQ(registry.counter("a.count").value(), 2u);
  EXPECT_DOUBLE_EQ(registry.gauge("a.gauge").value(), 2.5);
  EXPECT_EQ(registry.series("a.series").size(), 1u);

  const std::string json = registry.to_json().dump();
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"a.count\""), std::string::npos);
  EXPECT_NE(json.find("\"series\""), std::string::npos);
}

// ---------------------------------------------------------------------------
// Tracer
// ---------------------------------------------------------------------------

TEST(TracerTest, RecordsTypedEvents) {
  Tracer tracer;
  tracer.set_thread_name(1, "p1.example.org");
  tracer.instant("rx", "msg", SimTime::millis(2), 1, "from", 7.0);
  tracer.complete("service", "cpu", SimTime::millis(3), SimTime::micros(250),
                  1, "cost", 42.0);
  tracer.counter("utilization", SimTime::millis(4), 1, "util", 0.5);
  ASSERT_EQ(tracer.events().size(), 3u);
  EXPECT_EQ(tracer.events()[0].phase, 'i');
  EXPECT_EQ(tracer.events()[1].phase, 'X');
  EXPECT_EQ(tracer.events()[2].phase, 'C');
  EXPECT_EQ(tracer.dropped(), 0u);
}

TEST(TracerTest, BoundedBufferDropsNewestPastCapacity) {
  Tracer tracer(2);
  for (int i = 0; i < 5; ++i) {
    tracer.instant("e", "t", SimTime::millis(i), 1);
  }
  EXPECT_EQ(tracer.events().size(), 2u);
  EXPECT_EQ(tracer.dropped(), 3u);
}

TEST(TracerTest, ChromeJsonHasTraceEventsAndThreadNames) {
  Tracer tracer;
  tracer.set_thread_name(3, "p1.example.org");
  tracer.instant("window_tick", "controller", SimTime::seconds(1.0), 3,
                 "total_rate", 150.0);
  tracer.complete("service", "cpu", SimTime::seconds(1.0),
                  SimTime::micros(100), 3);
  const std::string json = tracer.to_chrome_json().dump();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"thread_name\""), std::string::npos);
  EXPECT_NE(json.find("p1.example.org"), std::string::npos);
  EXPECT_NE(json.find("\"window_tick\""), std::string::npos);
  // ts is exported in microseconds: 1s -> 1000000.
  EXPECT_NE(json.find("1000000"), std::string::npos);
}

// ---------------------------------------------------------------------------
// ControllerAuditLog
// ---------------------------------------------------------------------------

AuditWindow make_window(std::uint32_t tid, double at_s) {
  AuditWindow w;
  w.node_tid = tid;
  w.at = SimTime::seconds(at_s);
  w.elapsed = 1.0;
  w.total_rate = 150.0;
  return w;
}

TEST(AuditLogTest, RingAndPerNodeFilter) {
  ControllerAuditLog log(3);
  log.append(make_window(1, 1.0));
  log.append(make_window(2, 1.0));
  log.append(make_window(1, 2.0));
  log.append(make_window(2, 2.0));  // evicts the oldest
  EXPECT_EQ(log.windows().size(), 3u);
  EXPECT_EQ(log.dropped(), 1u);
  const auto node1 = log.windows_for(1);
  ASSERT_EQ(node1.size(), 1u);  // its first window was evicted
  EXPECT_DOUBLE_EQ(node1[0].at.to_seconds(), 2.0);
  EXPECT_EQ(log.windows_for(2).size(), 2u);
}

TEST(AuditLogTest, InfiniteMyshareSerializesAsNull) {
  AuditWindow w = make_window(1, 1.0);
  AuditPathRow row;
  row.path_index = 0;
  row.myshare = std::numeric_limits<double>::infinity();
  w.paths.push_back(row);
  const std::string json = w.to_json().dump();
  EXPECT_NE(json.find("\"myshare\":null"), std::string::npos);
}

// ---------------------------------------------------------------------------
// End-to-end: observed run produces data; disabled run is bit-identical.
// ---------------------------------------------------------------------------

workload::BedFactory small_servartuka_chain() {
  workload::ScenarioOptions options;
  options.policy = workload::PolicyKind::kServartuka;
  options.capacity_scale = {0.01, 0.01, 0.01, 0.01};  // 1/100-scale nodes
  return workload::series_chain(2, options);
}

workload::MeasureOptions short_run(bool observe) {
  workload::MeasureOptions options;
  options.warmup = SimTime::seconds(3.0);
  options.measure = SimTime::seconds(4.0);
  options.observe = observe;
  return options;
}

TEST(ObsEndToEndTest, ObservedRunCapturesTraceMetricsAndAudit) {
  // 120 cps on 1/100-scale nodes sits above T_SF: the controller exercises
  // its case-2 path and every backend collects data.
  workload::ObservedPoint observed = workload::measure_point_retained(
      small_servartuka_chain(), 120.0, short_run(true));
  Observability* obs = observed.bed->observability();
  ASSERT_NE(obs, nullptr);

  EXPECT_GT(obs->tracer()->events().size(), 100u);
  EXPECT_GT(obs->metrics()->counter("proxy.rx").value(), 100u);
  EXPECT_GT(obs->metrics()->counter("decision.stateful").value(), 0u);
  EXPECT_FALSE(obs->audit()->windows().empty());
  EXPECT_FALSE(observed.point.controller_windows.empty());
  // Both proxies' controllers reported windows.
  bool any_case2 = false;
  for (const AuditWindow& w : obs->audit()->windows()) {
    EXPECT_GT(w.elapsed, 0.0);
    if (!w.below_t_sf) any_case2 = true;
  }
  EXPECT_TRUE(any_case2);

  // The Chrome export writes and looks like a trace file.
  const std::string path =
      testing::TempDir() + "obs_test_trace.json";
  ASSERT_TRUE(obs->tracer()->write_chrome_trace(path));
  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::fseek(f, 0, SEEK_END);
  const long size = std::ftell(f);
  std::fseek(f, 0, SEEK_SET);
  std::string content(static_cast<std::size_t>(size), '\0');
  const std::size_t read = std::fread(content.data(), 1, content.size(), f);
  std::fclose(f);
  std::remove(path.c_str());
  content.resize(read);
  EXPECT_EQ(content.front(), '{');
  EXPECT_NE(content.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(content.find("\"displayTimeUnit\""), std::string::npos);

  // The serialized RunRecord embeds the audit series.
  const RunRecord record = workload::to_run_record(observed.point);
  EXPECT_TRUE(record.controller_windows.is_array());
  const std::string record_json = record.to_json().dump();
  EXPECT_NE(record_json.find("\"controller_windows\""), std::string::npos);
  EXPECT_NE(record_json.find("\"sf_fraction\""), std::string::npos);
}

TEST(ObsDeterminismTest, ObservedRunIsBitIdenticalToUnobserved) {
  // The observability layer only reads simulation state; switching it on
  // must not change a single measured value.
  const workload::PointResult off =
      workload::measure_point(small_servartuka_chain(), 120.0,
                              short_run(false));
  const workload::PointResult on =
      workload::measure_point(small_servartuka_chain(), 120.0,
                              short_run(true));

  EXPECT_EQ(off.throughput_cps, on.throughput_cps);
  EXPECT_EQ(off.attempted_cps, on.attempted_cps);
  EXPECT_EQ(off.goodput_ratio, on.goodput_ratio);
  EXPECT_EQ(off.setup_ms_mean, on.setup_ms_mean);
  EXPECT_EQ(off.setup_ms_p50, on.setup_ms_p50);
  EXPECT_EQ(off.setup_ms_p90, on.setup_ms_p90);
  EXPECT_EQ(off.setup_ms_p99, on.setup_ms_p99);
  EXPECT_EQ(off.calls_failed, on.calls_failed);
  EXPECT_EQ(off.busy_500, on.busy_500);
  EXPECT_EQ(off.retransmissions, on.retransmissions);
  EXPECT_EQ(off.trying_received, on.trying_received);
  EXPECT_EQ(off.calls_established_uac, on.calls_established_uac);
  EXPECT_EQ(off.proxy_utilization, on.proxy_utilization);
  EXPECT_EQ(off.proxy_rejected, on.proxy_rejected);
  EXPECT_EQ(off.proxy_stateful, on.proxy_stateful);
  EXPECT_EQ(off.proxy_stateless, on.proxy_stateless);
  // And the observed run did actually record something.
  EXPECT_TRUE(off.controller_windows.empty());
  EXPECT_FALSE(on.controller_windows.empty());
}

}  // namespace
}  // namespace svk::obs
