// Overload-control subsystem tests (src/overload): the local occupancy
// gate, the RFC 7339-style hop-by-hop token-bucket throttler, and the two
// controls running end to end inside a proxy chain. Everything here must
// be bit-deterministic — the policies use no wall clock and no RNG.
#include <gtest/gtest.h>

#include <memory>
#include <tuple>
#include <vector>

#include "overload/overload.hpp"
#include "workload/runner.hpp"
#include "workload/scenarios.hpp"

namespace svk::overload {
namespace {

SimTime at(double seconds) { return SimTime::seconds(seconds); }

OverloadConfig local_config() {
  OverloadConfig config;
  config.kind = ControlKind::kLocalOccupancy;
  config.smoothing_gain = 1.0;  // take samples verbatim: exact arithmetic
  return config;
}

OverloadConfig hop_config() {
  OverloadConfig config = local_config();
  config.kind = ControlKind::kHopByHopRate;
  return config;
}

// ---------------------------------------------------------------------------
// Local occupancy gate
// ---------------------------------------------------------------------------

TEST(LocalOccupancyTest, NoneKindBuildsNoPolicy) {
  EXPECT_EQ(make_overload_policy(OverloadConfig{}, 1), nullptr);
}

TEST(LocalOccupancyTest, AdmitsEverythingBelowTarget) {
  auto policy = make_overload_policy(local_config(), 1);
  policy->on_occupancy_sample(0.5, at(0.2));
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(policy->admit(0, at(0.3)), AdmitDecision::kAdmit);
  }
  EXPECT_EQ(policy->stats().local_rejects, 0u);
}

TEST(LocalOccupancyTest, ShedsExactFractionAboveTarget) {
  // Target 0.9, occupancy 1.2: accept fraction 0.75, so error diffusion
  // must reject exactly every 4th arrival — 25 of 100, deterministically.
  auto policy = make_overload_policy(local_config(), 1);
  policy->on_occupancy_sample(1.2, at(0.2));
  int rejects = 0;
  for (int i = 0; i < 100; ++i) {
    if (policy->admit(0, at(0.3)) == AdmitDecision::kRejectLocal) ++rejects;
  }
  EXPECT_EQ(rejects, 25);
  EXPECT_EQ(policy->stats().local_rejects, 25u);
}

TEST(LocalOccupancyTest, EwmaSmoothsSamples) {
  OverloadConfig config = local_config();
  config.smoothing_gain = 0.5;
  auto policy = make_overload_policy(config, 1);
  policy->on_occupancy_sample(1.0, at(0.2));
  EXPECT_DOUBLE_EQ(policy->stats().smoothed_occupancy, 0.5);
  policy->on_occupancy_sample(1.0, at(0.4));
  EXPECT_DOUBLE_EQ(policy->stats().smoothed_occupancy, 0.75);
  // One spike sample does not open the gate at gain 0.5 from 0.
  EXPECT_EQ(policy->stats().occupancy_samples, 2u);
}

TEST(LocalOccupancyTest, NeverAdvertisesARate) {
  auto policy = make_overload_policy(local_config(), 1);
  policy->on_occupancy_sample(2.0, at(0.2));
  EXPECT_LT(policy->advertised_rate(), 0.0);
}

// ---------------------------------------------------------------------------
// Hop-by-hop throttler (token bucket per path)
// ---------------------------------------------------------------------------

TEST(HopByHopTest, BucketEnforcesAdvertisedRate) {
  auto policy = make_overload_policy(hop_config(), 1);
  // rate 10/s, bucket_depth_s 0.2 -> burst of 2 tokens.
  policy->on_rate_advertisement(0, 10.0, at(1.0));
  EXPECT_EQ(policy->admit(0, at(1.0)), AdmitDecision::kAdmit);
  EXPECT_EQ(policy->admit(0, at(1.0)), AdmitDecision::kAdmit);
  EXPECT_EQ(policy->admit(0, at(1.0)), AdmitDecision::kRejectThrottled);
  EXPECT_EQ(policy->stats().throttled_rejects, 1u);

  // 0.5s later the lazy refill has accrued 5 tokens, capped at depth 2.
  policy->on_rate_advertisement(0, 10.0, at(1.5));  // refresh, same rate
  EXPECT_EQ(policy->admit(0, at(1.5)), AdmitDecision::kAdmit);
  EXPECT_EQ(policy->admit(0, at(1.5)), AdmitDecision::kAdmit);
  EXPECT_EQ(policy->admit(0, at(1.5)), AdmitDecision::kRejectThrottled);
}

TEST(HopByHopTest, AdvertExpiryLiftsThrottle) {
  // An advert not refreshed within advert_validity (1s default) expires:
  // the overloaded hop going quiet must never throttle a path forever.
  auto policy = make_overload_policy(hop_config(), 1);
  policy->on_rate_advertisement(0, 1.0, at(1.0));  // depth max(1, 0.2) = 1
  EXPECT_EQ(policy->admit(0, at(1.0)), AdmitDecision::kAdmit);
  EXPECT_EQ(policy->admit(0, at(1.0)), AdmitDecision::kRejectThrottled);
  EXPECT_EQ(policy->admit(0, at(3.0)), AdmitDecision::kAdmit);  // expired
  EXPECT_EQ(policy->stats().throttled_rejects, 1u);
}

TEST(HopByHopTest, UnadvertisedPathRunsUnrestricted) {
  auto policy = make_overload_policy(hop_config(), 2);
  policy->on_rate_advertisement(1, 1.0, at(1.0));
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(policy->admit(0, at(1.0)), AdmitDecision::kAdmit);
  }
}

TEST(HopByHopTest, Downstream503TaxesActiveBucket) {
  auto policy = make_overload_policy(hop_config(), 1);
  policy->on_rate_advertisement(0, 10.0, at(1.0));  // 2 tokens
  policy->on_downstream_503(0, at(1.0));            // -> 1 token
  EXPECT_EQ(policy->admit(0, at(1.0)), AdmitDecision::kAdmit);
  EXPECT_EQ(policy->admit(0, at(1.0)), AdmitDecision::kRejectThrottled);
  EXPECT_EQ(policy->stats().downstream_503, 1u);
}

TEST(HopByHopTest, RestrictorEntersAndLeavesControlledMode) {
  OverloadConfig config = hop_config();  // period 200ms, target 0.9
  auto policy = make_overload_policy(config, 1);
  EXPECT_LT(policy->advertised_rate(), 0.0);

  // 100 arrivals in the period (500/s offered), then an overload sample:
  // advertise offered * target / occupancy = 500 * 0.9 / 1.2 = 375.
  for (int i = 0; i < 100; ++i) (void)policy->admit(0, at(0.1));
  policy->on_occupancy_sample(1.2, at(0.2));
  EXPECT_DOUBLE_EQ(policy->advertised_rate(), 375.0);

  // Comfortable recovery (occ < 0.8 * target) for release_periods ticks
  // withdraws the advertisement; each tick first raises the rate by at
  // most increase_factor.
  for (int i = 1; i <= config.release_periods; ++i) {
    EXPECT_GE(policy->advertised_rate(), 0.0) << "released too early";
    policy->on_occupancy_sample(0.1, at(0.2 + 0.2 * i));
  }
  EXPECT_LT(policy->advertised_rate(), 0.0);
  EXPECT_GE(policy->stats().rate_updates, 1u);
}

TEST(HopByHopTest, IdenticalCallSequencesGiveIdenticalDecisions) {
  auto a = make_overload_policy(hop_config(), 1);
  auto b = make_overload_policy(hop_config(), 1);
  std::vector<AdmitDecision> da, db;
  for (auto* policy : {a.get(), b.get()}) {
    auto& out = policy == a.get() ? da : db;
    policy->on_rate_advertisement(0, 25.0, at(1.0));
    policy->on_occupancy_sample(1.1, at(1.0));
    for (int i = 0; i < 200; ++i) {
      out.push_back(policy->admit(0, at(1.0 + 0.001 * i)));
    }
  }
  EXPECT_EQ(da, db);
  EXPECT_EQ(a->stats().local_rejects, b->stats().local_rejects);
  EXPECT_EQ(a->stats().throttled_rejects, b->stats().throttled_rejects);
}

}  // namespace
}  // namespace svk::overload

// ---------------------------------------------------------------------------
// End to end: the controls inside a two-proxy chain
// ---------------------------------------------------------------------------

namespace svk::workload {
namespace {

using overload::ControlKind;

/// Two proxies in series with the exit node at half the entry's capacity:
/// the bottleneck sits downstream, the shape hop-by-hop feedback exists
/// for. 1/100 scale: entry saturates ~207 cps, exit ~103.6 cps.
ScenarioOptions bottleneck_chain(ControlKind kind) {
  ScenarioOptions options;
  options.policy = PolicyKind::kStaticAllStateful;
  options.capacity_scale = {0.02, 0.01};
  options.overload_control.kind = kind;
  // Deep-buffer regime: with the legacy queue-delay bound this lax, an
  // uncontrolled node absorbs ~1.6 round trips of backlog before shedding,
  // so retransmissions pile up and goodput collapses — the regime the
  // overload controls exist for (kNone keeps this bound; the policies
  // replace it).
  options.max_queue_delay = SimTime::millis(800);
  return options;
}

struct ChainRun {
  std::unique_ptr<TestBed> bed;
  std::uint64_t busy_503 = 0;
  std::uint64_t calls_rejected = 0;
  std::uint64_t calls_timed_out = 0;
  std::uint64_t backoff_pauses = 0;
};

ChainRun run_chain(ControlKind kind, double offered_cps, double seconds) {
  ChainRun run;
  run.bed = series_chain(2, bottleneck_chain(kind))(offered_cps);
  run.bed->start_load();
  run.bed->sim().run_until(SimTime::seconds(seconds));
  for (const auto& uac : run.bed->uacs()) {
    const UacMetrics& m = uac->metrics();
    run.busy_503 += m.busy_503_received;
    run.calls_rejected += m.calls_rejected;
    run.calls_timed_out += m.calls_timed_out;
    run.backoff_pauses += m.backoff_pauses;
  }
  return run;
}

TEST(OverloadChainTest, LocalGate503RelayedUpstreamWithRetryAfter) {
  // Only the exit node is overloaded, so every 503 originates there and
  // must be relayed through the entry proxy to the UAC (the best-response
  // fix) with its Retry-After intact (witnessed by the backoff pauses).
  const ChainRun run =
      run_chain(ControlKind::kLocalOccupancy, 160.0, 10.0);
  const auto& p0 = run.bed->proxies()[0]->stats();
  const auto& p1 = run.bed->proxies()[1]->stats();
  EXPECT_GT(p1.rejected_503, 0u);
  EXPECT_EQ(p0.rejected_503, 0u);  // the entry itself is not overloaded
  EXPECT_EQ(p0.throttled_503, 0u);
  EXPECT_GT(p0.downstream_503, 0u);  // it saw and relayed the exit's 503s
  EXPECT_GT(run.busy_503, 0u);
  EXPECT_GT(run.calls_rejected, 0u);
  EXPECT_GT(run.backoff_pauses, 0u);  // Retry-After survived the relay
  EXPECT_GT(run.bed->total_completed_calls(), 0u);
}

TEST(OverloadChainTest, HopByHopThrottlesAtTheEntry) {
  // With rate feedback the entry sheds on the exit's behalf: oc adverts
  // flow upstream and most rejections become entry-local throttles, which
  // never cost the bottleneck node a cycle.
  const ChainRun run = run_chain(ControlKind::kHopByHopRate, 160.0, 10.0);
  const auto& p0 = run.bed->proxies()[0]->stats();
  EXPECT_GT(p0.oc_advertisements, 0u);
  EXPECT_GT(p0.throttled_503, 0u);
  EXPECT_GT(run.busy_503, 0u);
  EXPECT_GT(run.backoff_pauses, 0u);
  EXPECT_GT(run.bed->total_completed_calls(), 0u);
}

TEST(OverloadChainTest, ControlledSheddingBeatsCongestionCollapse) {
  // The point of the subsystem: under 1.55x overload the uncontrolled
  // chain drowns in retransmissions and times calls out; both controls
  // must convert slow timeouts into fast 503s and carry more calls.
  const ChainRun none = run_chain(ControlKind::kNone, 160.0, 10.0);
  const ChainRun local =
      run_chain(ControlKind::kLocalOccupancy, 160.0, 10.0);
  const ChainRun hop = run_chain(ControlKind::kHopByHopRate, 160.0, 10.0);

  EXPECT_GT(local.bed->total_completed_calls(),
            none.bed->total_completed_calls());
  EXPECT_GT(hop.bed->total_completed_calls(),
            none.bed->total_completed_calls());
  EXPECT_LT(local.calls_timed_out, none.calls_timed_out + 1);
  EXPECT_LT(hop.calls_timed_out, none.calls_timed_out + 1);
}

TEST(OverloadChainTest, RerunsAreBitIdentical) {
  for (const ControlKind kind :
       {ControlKind::kLocalOccupancy, ControlKind::kHopByHopRate}) {
    const ChainRun a = run_chain(kind, 160.0, 8.0);
    const ChainRun b = run_chain(kind, 160.0, 8.0);
    EXPECT_EQ(a.bed->total_completed_calls(),
              b.bed->total_completed_calls());
    EXPECT_EQ(a.busy_503, b.busy_503);
    EXPECT_EQ(a.calls_rejected, b.calls_rejected);
    EXPECT_EQ(a.backoff_pauses, b.backoff_pauses);
    for (std::size_t i = 0; i < a.bed->proxies().size(); ++i) {
      const auto& pa = a.bed->proxies()[i]->stats();
      const auto& pb = b.bed->proxies()[i]->stats();
      EXPECT_EQ(pa.rejected_503, pb.rejected_503) << "proxy " << i;
      EXPECT_EQ(pa.throttled_503, pb.throttled_503) << "proxy " << i;
      EXPECT_EQ(pa.oc_advertisements, pb.oc_advertisements) << "proxy " << i;
    }
  }
}

TEST(OverloadChainTest, NoControlMatchesLegacyBehavior) {
  // kNone must leave the legacy path untouched: no 503s anywhere, the
  // queue-delay bound still answers 500 Server Busy.
  const ChainRun run = run_chain(ControlKind::kNone, 160.0, 8.0);
  for (const auto& proxy : run.bed->proxies()) {
    EXPECT_EQ(proxy->stats().rejected_503, 0u);
    EXPECT_EQ(proxy->stats().throttled_503, 0u);
    EXPECT_EQ(proxy->overload_policy(), nullptr);
  }
  EXPECT_EQ(run.busy_503, 0u);
}

}  // namespace
}  // namespace svk::workload
