// Parallel-engine suite (ctest -L parallel): the cardinal invariant of the
// sharded simulator (sim::ShardSet) is that a run's RunRecord is
// bit-identical for ANY shard count — 2 or 4 shards must reproduce the
// serial engine exactly, fault plans and observability included. These
// tests assert that digest parity end-to-end on real topologies, plus the
// ShardSet's own ordering contracts (cross-shard delivery, barrier-applied
// globals, shard-count resolution precedence).
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "common/sim_time.hpp"
#include "fault/fault_plan.hpp"
#include "generators.hpp"
#include "sim/parallel_sim.hpp"
#include "sim/simulator.hpp"
#include "workload/runner.hpp"
#include "workload/scenarios.hpp"
#include "workload/testbed.hpp"

namespace svk::workload {
namespace {

/// 1/100-scale nodes (T_SF ~103.6 cps) keep each run to a few simulated
/// seconds; the sharded engine still executes thousands of safe windows.
constexpr double kScale = 0.01;

ScenarioOptions scaled_options(PolicyKind policy, std::size_t num_proxies) {
  ScenarioOptions options;
  options.policy = policy;
  options.capacity_scale.assign(num_proxies, kScale);
  options.controller_period = SimTime::seconds(0.5);
  return options;
}

MeasureOptions quick_measure(std::size_t shards, bool observe) {
  MeasureOptions options;
  options.warmup = SimTime::seconds(1.0);
  options.measure = SimTime::seconds(2.0);
  options.observe = observe;
  options.shards = shards;
  return options;
}

/// The digest under test: the full serialized RunRecord (controller audit
/// windows included) with only the host-noise wall clock zeroed.
std::string record_json(const PointResult& point) {
  RunRecord record = to_run_record(point, 1.0, "parallel");
  record.wall_seconds = 0.0;
  return record.to_json().dump();
}

void expect_shard_invariant(const BedFactory& factory, double offered,
                            bool observe) {
  const std::string serial =
      record_json(measure_point(factory, offered, quick_measure(1, observe)));
  for (const std::size_t shards : {std::size_t{2}, std::size_t{4}}) {
    SCOPED_TRACE("shards=" + std::to_string(shards));
    const std::string sharded = record_json(
        measure_point(factory, offered, quick_measure(shards, observe)));
    EXPECT_EQ(serial, sharded);
  }
}

// ---------------------------------------------------------------------------
// End-to-end digest parity
// ---------------------------------------------------------------------------

TEST(ShardInvarianceTest, Fig5ChainWithControllerAndObservability) {
  // The paper's two-series chain under the dynamic controller, with the
  // observability layer on: the digest then covers the merged controller
  // audit windows, so per-shard sink draining is exercised too.
  const BedFactory factory =
      series_chain(2, scaled_options(PolicyKind::kServartuka, 2));
  expect_shard_invariant(factory, 110.0, /*observe=*/true);
}

TEST(ShardInvarianceTest, WideForkSixteenExits) {
  ScenarioOptions options =
      scaled_options(PolicyKind::kStaticChainLastStateful, 17);
  options.num_uacs = 4;
  options.num_uas = 4;
  const BedFactory factory = wide_fork(16, options);
  expect_shard_invariant(factory, 80.0, /*observe=*/false);
}

TEST(ShardInvarianceTest, ChaosPlanAppliesAtBarriersIdentically) {
  // A seeded random fault schedule (crash, partition, bursts, cpu degrade)
  // against the two-series topology: every fault is a global event, applied
  // by the coordinator at a window barrier — bit-identical to the serial
  // engine's rank-0 schedule.
  chaos::FaultScheduleOptions fopt;
  fopt.crashable = {"proxy1.example.net"};
  fopt.degradable = {"proxy0.example.net", "proxy1.example.net"};
  fopt.links = {{"proxy0.example.net", "proxy1.example.net"}};
  fopt.window_start_s = 0.5;
  fopt.window_end_s = 2.5;

  ScenarioOptions options = scaled_options(PolicyKind::kServartuka, 2);
  options.seed = 7;
  options.faults = chaos::generate_fault_schedule(7, fopt);
  ASSERT_FALSE(options.faults.empty());

  const BedFactory factory = two_series_with_internal(0.7, options);
  expect_shard_invariant(factory, 115.0, /*observe=*/false);
}

// ---------------------------------------------------------------------------
// Shard-count resolution
// ---------------------------------------------------------------------------

TEST(ShardResolutionTest, OverrideBeatsConstructorBeatsEnv) {
  ASSERT_EQ(::setenv("SVK_SIM_SHARDS", "3", 1), 0);
  {
    TestBed env_only(1);
    EXPECT_EQ(env_only.shard_count(), 3u);
    TestBed ctor_set(1, 2);
    EXPECT_EQ(ctor_set.shard_count(), 2u);
    {
      TestBed::ShardsOverride force(4);
      TestBed forced(1, 2);
      EXPECT_EQ(forced.shard_count(), 4u);
    }
    TestBed after_scope(1, 2);
    EXPECT_EQ(after_scope.shard_count(), 2u);
  }
  ASSERT_EQ(::unsetenv("SVK_SIM_SHARDS"), 0);
  TestBed plain(1);
  EXPECT_EQ(plain.shard_count(), 1u);
}

TEST(ShardResolutionTest, CheckedRunsForceSerialEngine) {
  const BedFactory factory =
      series_chain(2, scaled_options(PolicyKind::kServartuka, 2));
  MeasureOptions options = quick_measure(/*shards=*/4, /*observe=*/false);
  options.check = true;
  const ObservedPoint observed =
      measure_point_retained(factory, 110.0, options);
  EXPECT_EQ(observed.bed->shard_count(), 1u);
  EXPECT_EQ(observed.point.check_violations, 0u);
}

// ---------------------------------------------------------------------------
// ShardSet ordering contracts
// ---------------------------------------------------------------------------

TEST(ShardSetTest, CrossShardEventsDeliverAfterLookahead) {
  sim::ShardSet shards(2);
  shards.assign_rank(1, 0);
  shards.assign_rank(2, 1);
  shards.set_lookahead(SimTime::micros(100));

  // Each vector is only touched by its owner shard's thread (and the
  // coordinator between barriers), so no synchronization is needed.
  std::vector<std::int64_t> shard1_log;

  sim::Simulator& s0 = shards.shard(0);
  {
    sim::LocusScope scope(s0, 1);
    s0.schedule_at(SimTime::micros(50), sim::EventAction([&] {
      // Host 1 (shard 0) sends to host 2 (shard 1): the event lands one
      // lookahead later, via the mailbox, carrying a key allocated here.
      const SimTime at = s0.now() + SimTime::micros(100);
      sim::RemoteEvent ev{at, s0.allocate_order_key(), 2,
                          sim::EventAction([&shard1_log, &shards] {
                            shard1_log.push_back(
                                shards.shard(1).now().ns());
                          })};
      shards.post_remote(0, 1, std::move(ev));
    }));
  }
  shards.run_until(SimTime::millis(1));

  ASSERT_EQ(shard1_log.size(), 1u);
  EXPECT_EQ(shard1_log[0], SimTime::micros(150).ns());
  EXPECT_EQ(shards.now(), SimTime::millis(1));
  EXPECT_GT(shards.windows_run(), 0u);
}

TEST(ShardSetTest, GlobalEventsRunBetweenWindowsAtExactTime) {
  sim::ShardSet shards(2);
  shards.assign_rank(1, 0);
  shards.assign_rank(2, 1);
  shards.set_lookahead(SimTime::micros(100));

  bool global_ran = false;
  std::int64_t global_now0 = -1;
  std::int64_t global_now1 = -1;
  bool host_saw_global = false;

  // A host event at exactly the global's time must run after it (the
  // serial engine orders the rank-0 global first at the same tick).
  {
    sim::Simulator& s1 = shards.shard(1);
    sim::LocusScope scope(s1, 2);
    s1.schedule_at(SimTime::millis(2), sim::EventAction([&] {
      host_saw_global = global_ran;
    }));
  }
  shards.schedule_global(SimTime::millis(2), [&] {
    global_ran = true;
    global_now0 = shards.shard(0).now().ns();
    global_now1 = shards.shard(1).now().ns();
  });

  shards.run_until(SimTime::millis(3));

  EXPECT_TRUE(global_ran);
  // Every shard clock is pinned to exactly the global's time when it runs
  // (fault hooks read sim.now()).
  EXPECT_EQ(global_now0, SimTime::millis(2).ns());
  EXPECT_EQ(global_now1, SimTime::millis(2).ns());
  EXPECT_TRUE(host_saw_global);
}

TEST(ShardSetTest, SingleShardRunsWithoutThreadsOrWindows) {
  sim::ShardSet shards(1);
  shards.assign_rank(1);
  int fired = 0;
  {
    sim::Simulator& s0 = shards.shard(0);
    sim::LocusScope scope(s0, 1);
    s0.schedule_at(SimTime::seconds(1.0),
                   sim::EventAction([&fired] { ++fired; }));
  }
  shards.run_until(SimTime::seconds(2.0));
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(shards.windows_run(), 0u);
  EXPECT_EQ(shards.shard(0).now(), SimTime::seconds(2.0));
}

}  // namespace
}  // namespace svk::workload
