// Tests for the calibrated cost model: the Figure 3 per-call totals, the
// Figure 4 saturation anchors, monotonicity across service richness, and
// the profiler accounting.
#include <gtest/gtest.h>

#include "profile/cost_model.hpp"
#include "profile/profiler.hpp"
#include "sip/message.hpp"

namespace svk::profile {
namespace {

using enum HandlingMode;

// ---------------------------------------------------------------------------
// CostVector
// ---------------------------------------------------------------------------

TEST(CostVectorTest, TotalsAndApplicationTotals) {
  CostVector v;
  v[CostBlock::kParsing] = 10.0;
  v[CostBlock::kTransport] = 175.0;
  EXPECT_DOUBLE_EQ(v.total(), 185.0);
  EXPECT_DOUBLE_EQ(v.application_total(), 10.0);
}

TEST(CostVectorTest, Accumulation) {
  CostVector a;
  a[CostBlock::kState] = 5.0;
  CostVector b;
  b[CostBlock::kState] = 7.0;
  b[CostBlock::kAuth] = 1.0;
  a += b;
  EXPECT_DOUBLE_EQ(a[CostBlock::kState], 12.0);
  EXPECT_DOUBLE_EQ(a[CostBlock::kAuth], 1.0);
}

// ---------------------------------------------------------------------------
// Figure 3 calibration: per-call application events by mode
// ---------------------------------------------------------------------------

TEST(CostModelTest, Figure3PerCallTotals) {
  EXPECT_DOUBLE_EQ(CpuCostModel::per_call_application_events(
                       kStatelessNoLookup), 362.0);
  EXPECT_DOUBLE_EQ(CpuCostModel::per_call_application_events(kStateless),
                   412.0);
  EXPECT_DOUBLE_EQ(
      CpuCostModel::per_call_application_events(kTransactionStateful),
      707.0);
  EXPECT_DOUBLE_EQ(CpuCostModel::per_call_application_events(kDialogStateful),
                   803.0);
  EXPECT_DOUBLE_EQ(
      CpuCostModel::per_call_application_events(kDialogStatefulAuth), 983.0);
}

TEST(CostModelTest, PaperCostRatios) {
  // Section 3.1: dialog-stateful ~2x, transaction-stateful ~1.75x stateless.
  const double stateless = CpuCostModel::per_call_application_events(kStateless);
  EXPECT_NEAR(CpuCostModel::per_call_application_events(kDialogStateful) /
                  stateless, 2.0, 0.06);
  EXPECT_NEAR(
      CpuCostModel::per_call_application_events(kTransactionStateful) /
          stateless, 1.75, 0.04);
}

TEST(CostModelTest, MonotoneAcrossServiceRichness) {
  const HandlingMode order[] = {kStatelessNoLookup, kStateless,
                                kTransactionStateful, kDialogStateful,
                                kDialogStatefulAuth};
  for (int i = 1; i < 5; ++i) {
    EXPECT_LT(CpuCostModel::per_call_application_events(order[i - 1]),
              CpuCostModel::per_call_application_events(order[i]));
  }
}

class BlockMonotoneTest : public ::testing::TestWithParam<CostBlock> {};

TEST_P(BlockMonotoneTest, BlockCostsNeverDecreaseWithRicherService) {
  const CostBlock block = GetParam();
  const HandlingMode order[] = {kStatelessNoLookup, kStateless,
                                kTransactionStateful, kDialogStateful,
                                kDialogStatefulAuth};
  const MsgKind kinds[] = {MsgKind::kInvite,    MsgKind::kProvisional,
                           MsgKind::kInvite200, MsgKind::kAck,
                           MsgKind::kBye,       MsgKind::kBye200};
  for (int i = 1; i < 5; ++i) {
    double prev = 0.0, curr = 0.0;
    for (const MsgKind kind : kinds) {
      prev += CpuCostModel::forward(order[i - 1], kind)[block];
      curr += CpuCostModel::forward(order[i], kind)[block];
    }
    EXPECT_LE(prev, curr) << to_string(block) << " between modes " << i - 1
                          << " and " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllBlocks, BlockMonotoneTest,
    ::testing::Values(CostBlock::kParsing, CostBlock::kMemory,
                      CostBlock::kLumping, CostBlock::kRouting,
                      CostBlock::kHashing, CostBlock::kLookup,
                      CostBlock::kState, CostBlock::kAuth, CostBlock::kOther));

TEST(CostModelTest, StateCostsOnlyInStatefulModes) {
  EXPECT_EQ(CpuCostModel::forward(kStateless, MsgKind::kInvite)
                [CostBlock::kState], 0.0);
  EXPECT_GT(CpuCostModel::forward(kTransactionStateful, MsgKind::kInvite)
                [CostBlock::kState], 0.0);
}

TEST(CostModelTest, LookupOnlyWithLookupModes) {
  EXPECT_EQ(CpuCostModel::forward(kStatelessNoLookup, MsgKind::kInvite)
                [CostBlock::kLookup], 0.0);
  EXPECT_GT(CpuCostModel::forward(kStateless, MsgKind::kInvite)
                [CostBlock::kLookup], 0.0);
}

TEST(CostModelTest, AuthCostsOnlyInAuthMode) {
  EXPECT_EQ(CpuCostModel::forward(kDialogStateful, MsgKind::kInvite)
                [CostBlock::kAuth], 0.0);
  EXPECT_GT(CpuCostModel::forward(kDialogStatefulAuth, MsgKind::kInvite)
                [CostBlock::kAuth], 0.0);
  EXPECT_GT(CpuCostModel::forward(kDialogStatefulAuth, MsgKind::kBye)
                [CostBlock::kAuth], 0.0);
}

// ---------------------------------------------------------------------------
// Figure 4 calibration: saturation anchors
// ---------------------------------------------------------------------------

TEST(CostModelTest, Figure4SaturationAnchors) {
  EXPECT_NEAR(CpuCostModel::saturation_cps(kStateless), 12300.0, 1.0);
  EXPECT_NEAR(CpuCostModel::saturation_cps(kTransactionStateful), 10360.0,
              5.0);
}

TEST(CostModelTest, SaturationScalesWithCapacity) {
  const double base = CpuCostModel::saturation_cps(kStateless);
  EXPECT_NEAR(CpuCostModel::saturation_cps(
                  kStateless, CpuCostModel::kCalibratedCapacity * 2.0),
              2.0 * base, 1.0);
}

TEST(CostModelTest, SaturationOrderingMatchesCostOrdering) {
  EXPECT_GT(CpuCostModel::saturation_cps(kStatelessNoLookup),
            CpuCostModel::saturation_cps(kStateless));
  EXPECT_GT(CpuCostModel::saturation_cps(kStateless),
            CpuCostModel::saturation_cps(kTransactionStateful));
  EXPECT_GT(CpuCostModel::saturation_cps(kTransactionStateful),
            CpuCostModel::saturation_cps(kDialogStateful));
  EXPECT_GT(CpuCostModel::saturation_cps(kDialogStateful),
            CpuCostModel::saturation_cps(kDialogStatefulAuth));
}

TEST(CostModelTest, TransportChargedPerMessageEvent) {
  // forward = one receive; transport_send = one send.
  EXPECT_DOUBLE_EQ(CpuCostModel::forward(kStateless, MsgKind::kInvite)
                       [CostBlock::kTransport],
                   CpuCostModel::kTransportPerMessage);
  EXPECT_DOUBLE_EQ(CpuCostModel::transport_send().total(),
                   CpuCostModel::kTransportPerMessage);
}

TEST(CostModelTest, AbsorbIsMuchCheaperThanForward) {
  // Application-level work of an absorb is a fraction of a full stateful
  // forward (the fixed transport cost applies to both equally).
  EXPECT_LT(CpuCostModel::absorb_retransmit().application_total(),
            0.25 * CpuCostModel::forward(kTransactionStateful,
                                         MsgKind::kInvite)
                       .application_total());
}

// ---------------------------------------------------------------------------
// Message classification
// ---------------------------------------------------------------------------

TEST(ClassifyTest, RequestsAndResponses) {
  using sip::CSeq;
  using sip::Message;
  using sip::Method;
  using sip::NameAddr;
  using sip::Uri;
  Message invite = Message::request(
      Method::kInvite, Uri("u", "h"), NameAddr{"", Uri("a", "x"), "t"},
      NameAddr{"", Uri("b", "y"), ""}, "c", CSeq{1, Method::kInvite});
  EXPECT_EQ(classify(invite), MsgKind::kInvite);

  EXPECT_EQ(classify(Message::response(invite, 180)), MsgKind::kProvisional);
  EXPECT_EQ(classify(Message::response(invite, 200)), MsgKind::kInvite200);

  Message bye = Message::request(
      Method::kBye, Uri("u", "h"), NameAddr{"", Uri("a", "x"), "t"},
      NameAddr{"", Uri("b", "y"), "t2"}, "c", CSeq{2, Method::kBye});
  EXPECT_EQ(classify(bye), MsgKind::kBye);
  EXPECT_EQ(classify(Message::response(bye, 200)), MsgKind::kBye200);

  Message ack = Message::request(
      Method::kAck, Uri("u", "h"), NameAddr{"", Uri("a", "x"), "t"},
      NameAddr{"", Uri("b", "y"), "t2"}, "c", CSeq{1, Method::kAck});
  EXPECT_EQ(classify(ack), MsgKind::kAck);

  Message options = Message::request(
      Method::kOptions, Uri("u", "h"), NameAddr{"", Uri("a", "x"), "t"},
      NameAddr{"", Uri("b", "y"), ""}, "c", CSeq{1, Method::kOptions});
  EXPECT_EQ(classify(options), MsgKind::kOther);
}

// ---------------------------------------------------------------------------
// CpuProfiler
// ---------------------------------------------------------------------------

TEST(ProfilerTest, AccumulatesCharges) {
  CpuProfiler profiler;
  profiler.charge(CpuCostModel::forward(kStateless, MsgKind::kInvite));
  profiler.charge(CpuCostModel::forward(kStateless, MsgKind::kBye));
  EXPECT_GT(profiler.application_events(), 0.0);
  EXPECT_GT(profiler.events(CostBlock::kParsing), 0.0);
  EXPECT_DOUBLE_EQ(profiler.events(CostBlock::kTransport),
                   2.0 * CpuCostModel::kTransportPerMessage);
}

TEST(ProfilerTest, ResetClears) {
  CpuProfiler profiler;
  profiler.charge(CpuCostModel::forward(kStateless, MsgKind::kInvite));
  profiler.reset();
  EXPECT_DOUBLE_EQ(profiler.application_events(), 0.0);
}

TEST(ProfilerTest, PerCallWorkSumsToFigure3Bar) {
  // Charging the full message set of one call reproduces the Figure 3 bar.
  CpuProfiler profiler;
  const MsgKind kinds[] = {MsgKind::kInvite,    MsgKind::kProvisional,
                           MsgKind::kInvite200, MsgKind::kAck,
                           MsgKind::kBye,       MsgKind::kBye200};
  for (const MsgKind kind : kinds) {
    profiler.charge(CpuCostModel::forward(kTransactionStateful, kind));
  }
  profiler.charge(CpuCostModel::generate_100(kTransactionStateful));
  EXPECT_DOUBLE_EQ(profiler.application_events(), 707.0);
}

TEST(ProfilerTest, BreakdownFormatsAllBlocks) {
  CpuProfiler profiler;
  profiler.charge(CpuCostModel::forward(kDialogStatefulAuth, MsgKind::kInvite));
  const std::string text = profiler.format_breakdown();
  EXPECT_NE(text.find("Parsing"), std::string::npos);
  EXPECT_NE(text.find("Authentication"), std::string::npos);
  EXPECT_NE(text.find("TOTAL"), std::string::npos);
}

}  // namespace
}  // namespace svk::profile
