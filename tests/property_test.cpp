// Property-based tests: randomized inputs against invariants that must
// hold for any input — parser robustness, simulator ordering, CPU
// accounting conservation, LP bounds, controller share feasibility, and
// end-to-end determinism.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "core/controller.hpp"
#include "lp/state_model.hpp"
#include "sim/cpu_queue.hpp"
#include "sim/simulator.hpp"
#include "sip/parser.hpp"
#include "workload/runner.hpp"
#include "workload/scenarios.hpp"

namespace svk {
namespace {

// ---------------------------------------------------------------------------
// Parser robustness: arbitrary bytes must never crash, and anything that
// parses must re-serialize to something that parses identically.
// ---------------------------------------------------------------------------

std::string random_bytes(Rng& rng, std::size_t max_len) {
  const std::size_t len = rng.uniform_int(max_len + 1);
  std::string out(len, '\0');
  for (char& c : out) {
    c = static_cast<char>(rng.uniform_int(256));
  }
  return out;
}

TEST(ParserPropertyTest, ArbitraryBytesNeverCrash) {
  Rng rng(0xF00D);
  for (int i = 0; i < 2000; ++i) {
    const std::string junk = random_bytes(rng, 512);
    (void)sip::Parser::parse(junk);  // must not crash or hang
  }
}

sip::Message random_valid_message(Rng& rng, int i) {
  const bool is_request = rng.bernoulli(0.6);
  sip::Uri uri("user" + std::to_string(rng.uniform_int(100)),
               "host" + std::to_string(rng.uniform_int(10)) + ".example");
  sip::NameAddr from{"", sip::Uri("a", "x.example"),
                     "tag" + std::to_string(i)};
  sip::NameAddr to{"", sip::Uri("b", "y.example"),
                   rng.bernoulli(0.5) ? "remote" : ""};
  const sip::Method methods[] = {sip::Method::kInvite, sip::Method::kAck,
                                 sip::Method::kBye, sip::Method::kOptions};
  const sip::Method method = methods[rng.uniform_int(4)];
  sip::Message msg = sip::Message::request(
      method, uri, from, to, "call-" + std::to_string(i),
      sip::CSeq{static_cast<std::uint32_t>(1 + rng.uniform_int(100)),
                method});
  msg.push_via(sip::Via{"SIP/2.0/UDP", "h1.example",
                        "z9hG4bK-" + std::to_string(i)});
  if (rng.bernoulli(0.5)) {
    msg.push_via(sip::Via{"SIP/2.0/UDP", "h2.example",
                          "z9hG4bK-x" + std::to_string(i)});
  }
  if (rng.bernoulli(0.4)) {
    msg.set_header("X-Stateful", "p" + std::to_string(rng.uniform_int(4)));
  }
  if (rng.bernoulli(0.3)) {
    msg.routes().push_back(sip::Uri("", "route.example"));
  }
  if (rng.bernoulli(0.3)) msg.set_body(random_bytes(rng, 64));
  if (!is_request) {
    const int codes[] = {100, 180, 200, 404, 500};
    return sip::Message::response(msg, codes[rng.uniform_int(5)]);
  }
  return msg;
}

TEST(ParserPropertyTest, SerializeParseFixpoint) {
  Rng rng(0xBEEF);
  for (int i = 0; i < 500; ++i) {
    sip::Message original = random_valid_message(rng, i);
    const std::string wire1 = original.to_wire();
    auto parsed1 = sip::Parser::parse(wire1);
    // Bodies are arbitrary bytes; embedded CR/LF may legitimately break
    // framing, in which case an error (not a crash) is acceptable.
    if (!parsed1.ok()) continue;
    const std::string wire2 = parsed1.value().to_wire();
    auto parsed2 = sip::Parser::parse(wire2);
    ASSERT_TRUE(parsed2.ok()) << wire2;
    EXPECT_EQ(wire2, parsed2.value().to_wire()) << "not a fixpoint";
  }
}

TEST(ParserPropertyTest, TruncationsNeverCrash) {
  Rng rng(0xCAFE);
  sip::Message msg = random_valid_message(rng, 1);
  const std::string wire = msg.to_wire();
  for (std::size_t cut = 0; cut < wire.size(); ++cut) {
    (void)sip::Parser::parse(std::string_view(wire).substr(0, cut));
  }
}

TEST(ParserPropertyTest, SingleByteCorruptionNeverCrashes) {
  Rng rng(0xD00D);
  const std::string wire = random_valid_message(rng, 2).to_wire();
  for (int i = 0; i < 1000; ++i) {
    std::string corrupted = wire;
    corrupted[rng.uniform_int(corrupted.size())] =
        static_cast<char>(rng.uniform_int(256));
    (void)sip::Parser::parse(corrupted);
  }
}

// ---------------------------------------------------------------------------
// Simulator: random schedules execute in nondecreasing time order, with
// FIFO among equal timestamps; cancellations remove exactly their target.
// ---------------------------------------------------------------------------

TEST(SimulatorPropertyTest, RandomScheduleExecutesInOrder) {
  Rng rng(42);
  for (int round = 0; round < 20; ++round) {
    sim::Simulator sim;
    std::vector<std::pair<std::int64_t, std::uint64_t>> executed;
    std::uint64_t seq = 0;
    for (int i = 0; i < 200; ++i) {
      const auto at = SimTime::millis(
          static_cast<std::int64_t>(rng.uniform_int(50)));
      sim.schedule_at(at, [&executed, &seq, at] {
        executed.emplace_back(at.ns(), seq++);
      });
    }
    sim.run();
    ASSERT_EQ(executed.size(), 200u);
    for (std::size_t i = 1; i < executed.size(); ++i) {
      EXPECT_LE(executed[i - 1].first, executed[i].first);
    }
  }
}

TEST(SimulatorPropertyTest, CancellationRemovesExactlyTargets) {
  Rng rng(43);
  sim::Simulator sim;
  std::vector<sim::EventId> ids;
  int executed = 0;
  for (int i = 0; i < 500; ++i) {
    ids.push_back(sim.schedule(
        SimTime::millis(static_cast<std::int64_t>(rng.uniform_int(100))),
        [&executed] { ++executed; }));
  }
  int cancelled = 0;
  for (const auto id : ids) {
    if (rng.bernoulli(0.3)) {
      sim.cancel(id);
      ++cancelled;
    }
  }
  sim.run();
  EXPECT_EQ(executed, 500 - cancelled);
}

// ---------------------------------------------------------------------------
// CPU queue: conservation — total busy time equals admitted cost/capacity;
// completions never before their submit time plus service.
// ---------------------------------------------------------------------------

TEST(CpuQueuePropertyTest, BusyTimeConservation) {
  Rng rng(7);
  for (int round = 0; round < 10; ++round) {
    sim::Simulator sim;
    const double capacity = rng.uniform(10.0, 1000.0);
    sim::CpuQueue cpu(sim, sim::CpuQueueConfig{capacity,
                                               SimTime::seconds(1e6)});
    double submitted_cost = 0.0;
    for (int i = 0; i < 200; ++i) {
      const double at = rng.uniform(0.0, 10.0);
      const double cost = rng.uniform(0.1, 5.0);
      sim.schedule(SimTime::seconds(at), [&cpu, &submitted_cost, cost] {
        if (cpu.submit(cost, nullptr)) submitted_cost += cost;
      });
    }
    sim.run();
    const SimTime end = sim.now() + SimTime::seconds(1000.0);
    EXPECT_NEAR(cpu.busy_elapsed(end).to_seconds(),
                submitted_cost / capacity, 1e-6);
    EXPECT_NEAR(cpu.stats().total_cost, submitted_cost, 1e-9);
  }
}

TEST(CpuQueuePropertyTest, CompletionsRespectFifoOrder) {
  Rng rng(11);
  sim::Simulator sim;
  sim::CpuQueue cpu(sim, sim::CpuQueueConfig{10.0, SimTime::seconds(1e6)});
  std::vector<int> completions;
  for (int i = 0; i < 100; ++i) {
    const double cost = rng.uniform(0.1, 2.0);
    ASSERT_TRUE(cpu.submit(cost, [&completions, i] {
      completions.push_back(i);
    }));
  }
  sim.run();
  ASSERT_EQ(completions.size(), 100u);
  EXPECT_TRUE(std::is_sorted(completions.begin(), completions.end()));
}

// ---------------------------------------------------------------------------
// LP: randomized chains — optimum is bounded by [T_SF, T_SL], never
// decreases when a node's capacity grows, and equals the closed form.
// ---------------------------------------------------------------------------

TEST(LpPropertyTest, ChainOptimumBoundedAndMonotone) {
  Rng rng(99);
  for (int round = 0; round < 30; ++round) {
    const int n = 2 + static_cast<int>(rng.uniform_int(4));
    const double t_sf = rng.uniform(1000.0, 20000.0);
    const double t_sl = t_sf * rng.uniform(1.05, 2.0);

    auto solve_chain = [&](double boost_first) {
      lp::StateDistributionModel model;
      std::vector<lp::NodeIndex> nodes;
      for (int i = 0; i < n; ++i) {
        const double scale = (i == 0) ? boost_first : 1.0;
        nodes.push_back(model.add_node("s" + std::to_string(i),
                                       scale * t_sf, scale * t_sl));
      }
      for (int i = 0; i + 1 < n; ++i) {
        model.add_edge(nodes[i], nodes[i + 1]);
      }
      model.mark_entry(nodes.front());
      model.mark_exit(nodes.back());
      return model.solve();
    };

    const auto base = solve_chain(1.0);
    ASSERT_TRUE(base.optimal());
    EXPECT_GE(base.max_throughput, t_sf - 1e-6);
    EXPECT_LE(base.max_throughput, t_sl + 1e-6);

    const auto boosted = solve_chain(1.5);
    ASSERT_TRUE(boosted.optimal());
    EXPECT_GE(boosted.max_throughput, base.max_throughput - 1e-6);
  }
}

TEST(LpPropertyTest, StatefulCoverageExactAtOptimum) {
  // For any chain, the total stateful rate across nodes must equal the
  // admitted throughput (every call stateful exactly once).
  Rng rng(101);
  for (int round = 0; round < 20; ++round) {
    const int n = 2 + static_cast<int>(rng.uniform_int(4));
    lp::StateDistributionModel model;
    std::vector<lp::NodeIndex> nodes;
    for (int i = 0; i < n; ++i) {
      const double t_sf = rng.uniform(5000.0, 15000.0);
      nodes.push_back(model.add_node("s" + std::to_string(i), t_sf,
                                     t_sf * rng.uniform(1.1, 1.6)));
    }
    for (int i = 0; i + 1 < n; ++i) model.add_edge(nodes[i], nodes[i + 1]);
    model.mark_entry(nodes.front());
    model.mark_exit(nodes.back());
    const auto result = model.solve();
    ASSERT_TRUE(result.optimal());
    double total_sf = 0.0;
    for (const double sf : result.node_stateful) total_sf += sf;
    EXPECT_NEAR(total_sf, result.max_throughput,
                1e-6 * std::max(1.0, result.max_throughput));
  }
}

// ---------------------------------------------------------------------------
// Controller: for random load mixes above threshold, the allocated shares
// (exit requirements + delegable shares) never exceed the feasible budget
// by more than the headroom the algorithm itself defines.
// ---------------------------------------------------------------------------

TEST(ControllerPropertyTest, SharesMatchFeasibilityConstant) {
  // For any traffic mix with no overloaded downstream paths, the computed
  // delegable shares must sum to (at most) Algorithm 2's feasibility
  // constant: c = u/(a-b) + sum_exits(fasf_z - a*t_z/(a-b)) minus
  // b*t_q/(a-b) per delegable path — i.e. the closed form of Eq. 9.
  // Clamping at zero may only reduce the sum.
  Rng rng(2024);
  for (int round = 0; round < 50; ++round) {
    core::ControllerConfig config;
    config.t_sf = 100.0;
    config.t_sl = 200.0;
    config.target_utilization = 1.0;
    config.utilization_feedback = false;
    core::Controller controller(config);
    const int num_paths = 1 + static_cast<int>(rng.uniform_int(4));
    std::vector<proxy::PathInfo> paths;
    for (int p = 0; p < num_paths; ++p) {
      paths.push_back(
          proxy::PathInfo{rng.bernoulli(0.7), Address{std::uint32_t(p)}});
    }
    paths[0].delegable = true;  // at least one delegable path
    controller.register_paths(paths);

    controller.on_tick(SimTime::seconds(0.0));
    std::vector<double> path_rate(num_paths, 0.0);
    std::vector<double> path_fasf(num_paths, 0.0);
    const int total = 120 + static_cast<int>(rng.uniform_int(140));
    for (int i = 0; i < total; ++i) {
      proxy::RequestContext ctx;
      ctx.path_index = rng.uniform_int(num_paths);
      ctx.delegable = paths[ctx.path_index].delegable;
      ctx.already_stateful = rng.bernoulli(0.2);
      path_rate[ctx.path_index] += 1.0;
      if (ctx.already_stateful) path_fasf[ctx.path_index] += 1.0;
      (void)controller.decide(ctx);
    }
    controller.on_tick(SimTime::seconds(1.0));
    if (controller.last_total_rate() <= config.t_sf) continue;

    const double alpha = 1.0 / config.t_sf;
    const double beta = 1.0 / config.t_sl;
    const double inv_ab = 1.0 / (alpha - beta);
    double expected_c = inv_ab;
    int delegable_count = 0;
    for (int p = 0; p < num_paths; ++p) {
      if (!paths[p].delegable) {
        expected_c += path_fasf[p] - alpha * path_rate[p] * inv_ab;
      } else {
        ++delegable_count;
      }
    }
    // Differential check: each delegable share must equal the clamped
    // closed form max(0, c/k - beta*t_q/(alpha-beta)) computed
    // independently from the traffic we generated. (Note the per-path
    // clamping means the *sum* may exceed the raw aggregate constant when
    // one path's raw share is negative — a property of the paper's
    // Algorithm 2 split that the utilization feedback compensates for at
    // runtime.)
    for (int p = 0; p < num_paths; ++p) {
      const auto& state = controller.paths()[p];
      if (!paths[p].delegable) {
        EXPECT_TRUE(std::isinf(state.myshare));  // exits take everything
        continue;
      }
      ASSERT_TRUE(std::isfinite(state.myshare)) << "round " << round;
      const double expected_share =
          std::max(0.0, expected_c / delegable_count -
                            beta * path_rate[p] * inv_ab);
      EXPECT_NEAR(state.myshare, expected_share, 1e-6)
          << "round " << round << " path " << p;
      // Realized fraction consistent with the share and the path's
      // not-yet-stateful traffic.
      const double nasf = std::max(path_rate[p] - path_fasf[p], 1e-9);
      EXPECT_NEAR(state.sf_fraction, std::min(1.0, expected_share / nasf),
                  1e-6)
          << "round " << round << " path " << p;
    }
  }
}

// ---------------------------------------------------------------------------
// End-to-end determinism: identical seeds give identical results.
// ---------------------------------------------------------------------------

TEST(DeterminismTest, IdenticalSeedsIdenticalRuns) {
  workload::ScenarioOptions options;
  options.policy = workload::PolicyKind::kServartuka;
  options.capacity_scale = {0.01, 0.01};
  options.controller_period = SimTime::seconds(0.5);
  options.poisson_arrivals = true;  // exercise the RNG paths too
  const auto factory = workload::series_chain(2, options);

  const auto a = workload::measure_point(factory, 105.0);
  const auto b = workload::measure_point(factory, 105.0);
  EXPECT_EQ(a.throughput_cps, b.throughput_cps);
  EXPECT_EQ(a.calls_failed, b.calls_failed);
  EXPECT_EQ(a.retransmissions, b.retransmissions);
  EXPECT_EQ(a.trying_received, b.trying_received);
  EXPECT_EQ(a.setup_ms_mean, b.setup_ms_mean);
}

TEST(DeterminismTest, DifferentSeedsDiffer) {
  workload::ScenarioOptions options;
  options.policy = workload::PolicyKind::kStaticAllStateful;
  options.capacity_scale = {0.01};
  options.poisson_arrivals = true;
  options.seed = 1;
  const auto a =
      workload::measure_point(workload::single_proxy(options), 80.0);
  options.seed = 2;
  const auto b =
      workload::measure_point(workload::single_proxy(options), 80.0);
  // Poisson arrivals with different seeds: some metric must differ.
  EXPECT_NE(a.setup_ms_mean, b.setup_ms_mean);
}

// ---------------------------------------------------------------------------
// Overload recovery: a load spike above saturation followed by a return to
// a sustainable rate must not leave the system stuck (no sticky storm).
// ---------------------------------------------------------------------------

TEST(RecoveryTest, SystemRecoversAfterLoadSpike) {
  workload::ScenarioOptions options;
  options.policy = workload::PolicyKind::kServartuka;
  options.capacity_scale = {0.01, 0.01};
  options.controller_period = SimTime::seconds(0.5);
  auto bed = workload::series_chain(2, options)(140.0);  // way over

  bed->start_load();
  bed->sim().run_until(SimTime::seconds(6.0));
  // Drop to a comfortable load.
  for (auto& uac : bed->uacs()) uac->stop();
  bed->uacs().clear();

  workload::UacConfig config;
  config.host = "uac9.recovery.client.net";
  config.first_hop = *bed->registry().resolve("proxy0.example.net");
  config.target_domain = "callee.example.net";
  config.call_rate_cps = 60.0;
  bed->add_uac(std::move(config));
  bed->start_load();
  bed->sim().run_until(SimTime::seconds(12.0));

  const std::uint64_t completed_before = bed->total_completed_calls();
  const auto& uac = *bed->uacs().back();
  const std::uint64_t failed_before = uac.metrics().calls_failed;
  bed->sim().run_until(SimTime::seconds(17.0));
  const double tput = static_cast<double>(bed->total_completed_calls() -
                                          completed_before) /
                      5.0;
  EXPECT_NEAR(tput, 60.0, 4.0);  // all offered load completes again
  EXPECT_EQ(uac.metrics().calls_failed, failed_before);
}

}  // namespace
}  // namespace svk
